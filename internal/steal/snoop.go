package steal

import (
	"fmt"

	"takegrant/internal/analysis"
	"takegrant/internal/graph"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

// CanSnoop decides information theft: can x come to know y's information
// when neither y nor any owner of explicit read authority over y
// cooperates? Following Bishop's later formalisation, snooping reduces to
// stealing read authority: the conspirators first steal an explicit r
// edge to y (can•steal(r, …)) and then exercise it de facto. Victims are
// passive throughout — they are taken from, never grant, and never apply
// a de facto rule.
func CanSnoop(g *graph.Graph, x, y graph.ID) bool {
	if !g.Valid(x) || !g.Valid(y) || x == y {
		return false
	}
	// Already knowing is not snooping, mirroring can•steal's "nothing to
	// steal" clause.
	if analysis.KnowsBase(g, x, y) {
		return false
	}
	if g.IsSubject(x) && CanSteal(g, rights.Read, x, y) {
		return true
	}
	// x an object (or not directly placeable): some subject z can steal
	// the read right and then write its takings into x without any victim
	// acting: z needs w toward x (rw-initial span) and the stolen read.
	for _, z := range analysis.RWInitialSpanners(g, x) {
		if z == y {
			continue
		}
		if !g.Explicit(z, y).Has(rights.Read) && CanSteal(g, rights.Read, z, y) {
			return true
		}
		if g.Explicit(z, y).Has(rights.Read) {
			// z is itself an owner — owners may not cooperate in a snoop.
			continue
		}
	}
	return false
}

// SynthesizeSnoop emits a replayable derivation realising the snoop: the
// stolen read edge followed by the de facto flow into x. The final graph
// satisfies the can•know base condition for (x, y).
func SynthesizeSnoop(g *graph.Graph, x, y graph.ID) (rules.Derivation, error) {
	if !CanSnoop(g, x, y) {
		return nil, fmt.Errorf("steal: can.snoop(%s, %s) is false", g.Name(x), g.Name(y))
	}
	if g.IsSubject(x) && CanSteal(g, rights.Read, x, y) {
		// The stolen explicit read edge is the base condition for a
		// subject.
		return Synthesize(g, rights.Read, x, y)
	}
	// Otherwise some accomplice z steals the read right and writes its
	// takings into x.
	for _, z := range analysis.RWInitialSpanners(g, x) {
		if z == y || g.Explicit(z, y).Has(rights.Read) {
			continue
		}
		d, err := Synthesize(g, rights.Read, z, y)
		if err != nil {
			continue
		}
		g2 := g.Clone()
		if _, err := d.Replay(g2); err != nil {
			continue
		}
		// z realises its write toward x, then passes what it reads of y.
		span, ok := analysis.RWInitiallySpans(g2, z, x)
		if !ok {
			continue
		}
		verts := []graph.ID{z}
		for _, s := range span {
			verts = append(verts, s.To)
		}
		c := verts[len(verts)-2]
		chain := verts[:len(verts)-1]
		seg := rules.TakeChain(chain)
		if c != z {
			seg = append(seg, rules.Take(z, c, x, rights.W))
		}
		seg = append(seg, rules.Pass(x, z, y))
		if _, err := rules.Derivation(seg).Replay(g2); err != nil {
			continue
		}
		if !analysis.KnowsBase(g2, x, y) {
			continue
		}
		return append(d, seg...), nil
	}
	return nil, fmt.Errorf("steal: snoop synthesis found no clean route")
}
