package steal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"takegrant/internal/analysis"
	"takegrant/internal/graph"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

// classicTheft: x' -t-> s, s -r-> y. x' can pull the right off s without
// s doing anything.
func classicTheft() (*graph.Graph, graph.ID, graph.ID, graph.ID) {
	g := graph.New(nil)
	xp := g.MustSubject("thief")
	s := g.MustSubject("owner")
	y := g.MustObject("secret")
	g.AddExplicit(xp, s, rights.T)
	g.AddExplicit(s, y, rights.R)
	return g, xp, s, y
}

func TestCanStealClassic(t *testing.T) {
	g, xp, _, y := classicTheft()
	if !CanSteal(g, rights.Read, xp, y) {
		t.Fatal("classic theft not detected")
	}
	d, err := Synthesize(g, rights.Read, xp, y)
	if err != nil {
		t.Fatal(err)
	}
	clone := g.Clone()
	if _, err := d.Replay(clone); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !clone.Explicit(xp, y).Has(rights.Read) {
		t.Error("right not stolen")
	}
	// The owner never acts at all in this theft.
	for _, app := range d {
		if g.Valid(app.X) && g.Name(app.X) == "owner" {
			t.Errorf("owner acted: %s", app.Format(clone))
		}
	}
}

func TestCannotStealWhatYouHave(t *testing.T) {
	g, xp, _, y := classicTheft()
	g.AddExplicit(xp, y, rights.R)
	if CanSteal(g, rights.Read, xp, y) {
		t.Error("stealing an owned right")
	}
}

func TestCannotStealWithoutTakeRoute(t *testing.T) {
	// Owner is only reachable via a grant edge from the owner itself: the
	// owner would have to cooperate, so it is not theft.
	g := graph.New(nil)
	xp := g.MustSubject("thief")
	s := g.MustSubject("owner")
	y := g.MustObject("secret")
	g.AddExplicit(s, xp, rights.G) // owner could grant, but won't
	g.AddExplicit(s, y, rights.R)
	if CanSteal(g, rights.Read, xp, y) {
		t.Error("theft without a take route")
	}
	// can.share would still say yes — the difference between sharing and
	// stealing.
	if !analysis.CanShare(g, rights.Read, xp, y) {
		t.Error("sharing should be possible with a cooperative owner")
	}
}

func TestStealForObjectTarget(t *testing.T) {
	// x is an object; a subject granter spans to it and the conspirators
	// can reach the owner by take.
	g := graph.New(nil)
	x := g.MustObject("x")
	xp := g.MustSubject("xp")
	s := g.MustSubject("owner")
	y := g.MustObject("secret")
	g.AddExplicit(xp, x, rights.G)
	g.AddExplicit(xp, s, rights.T)
	g.AddExplicit(s, y, rights.R)
	if !CanSteal(g, rights.Read, x, y) {
		t.Fatal("object-target theft not detected")
	}
	d, err := Synthesize(g, rights.Read, x, y)
	if err != nil {
		t.Fatal(err)
	}
	clone := g.Clone()
	if _, err := d.Replay(clone); err != nil || !clone.Explicit(x, y).Has(rights.Read) {
		t.Errorf("replay: %v", err)
	}
}

func TestStealAcrossBridge(t *testing.T) {
	// thief -t-> o -g-> helper, helper -t-> owner, owner -w-> y.
	g := graph.New(nil)
	thief := g.MustSubject("thief")
	o := g.MustObject("o")
	helper := g.MustSubject("helper")
	owner := g.MustSubject("owner")
	y := g.MustObject("y")
	g.AddExplicit(thief, o, rights.T)
	g.AddExplicit(o, helper, rights.G)
	g.AddExplicit(helper, owner, rights.T)
	g.AddExplicit(owner, y, rights.W)
	if !CanSteal(g, rights.Write, thief, y) {
		t.Fatal("bridge theft not detected")
	}
	d, err := Synthesize(g, rights.Write, thief, y)
	if err != nil {
		t.Fatal(err)
	}
	clone := g.Clone()
	if _, err := d.Replay(clone); err != nil || !clone.Explicit(thief, y).Has(rights.Write) {
		t.Errorf("replay failed: %v\n%s", err, d.Format(clone))
	}
}

func TestStealImpliesShare(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(nil)
		n := 3 + rng.Intn(5)
		for i := 0; i < n; i++ {
			name := "v" + string(rune('a'+i))
			if rng.Intn(3) > 0 {
				g.MustSubject(name)
			} else {
				g.MustObject(name)
			}
		}
		vs := g.Vertices()
		for i := 0; i < 2*n; i++ {
			a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
			if a != b {
				g.AddExplicit(a, b, rights.Set(1+rng.Intn(15)))
			}
		}
		for i := 0; i < 6; i++ {
			x, y := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
			if x == y {
				continue
			}
			alpha := rights.Right(rng.Intn(4))
			if CanSteal(g, alpha, x, y) && !analysis.CanShare(g, alpha, x, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSynthesizeMatchesCanSteal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(nil)
		n := 3 + rng.Intn(4)
		for i := 0; i < n; i++ {
			name := "v" + string(rune('a'+i))
			if rng.Intn(3) > 0 {
				g.MustSubject(name)
			} else {
				g.MustObject(name)
			}
		}
		vs := g.Vertices()
		for i := 0; i < 2*n; i++ {
			a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
			if a != b {
				g.AddExplicit(a, b, rights.Set(1+rng.Intn(15)))
			}
		}
		for i := 0; i < 4; i++ {
			x, y := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
			if x == y {
				continue
			}
			alpha := rights.Right(rng.Intn(4))
			if !CanSteal(g, alpha, x, y) {
				continue
			}
			// CanSteal is synthesis-backed, so a derivation must exist,
			// replay, deliver the right, and honour non-cooperation.
			d, err := Synthesize(g, alpha, x, y)
			if err != nil {
				t.Logf("seed %d: steal synthesis failed %s→%s: %v", seed, g.Name(x), g.Name(y), err)
				return false
			}
			clone := g.Clone()
			if _, err := d.Replay(clone); err != nil || !clone.Explicit(x, y).Has(alpha) {
				return false
			}
			owners := make(map[graph.ID]bool)
			for _, h := range g.In(y) {
				if h.Explicit.Has(alpha) {
					owners[h.Other] = true
				}
			}
			for _, app := range d {
				if app.Op == rules.OpGrant && owners[app.X] && app.Rights.Has(alpha) && app.Z == y {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

var _ = rules.OpTake
