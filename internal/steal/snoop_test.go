package steal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"takegrant/internal/analysis"
	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

func TestCanSnoopClassic(t *testing.T) {
	g, xp, _, y := classicTheft()
	if !CanSnoop(g, xp, y) {
		t.Fatal("classic snoop not detected")
	}
	d, err := SynthesizeSnoop(g, xp, y)
	if err != nil {
		t.Fatal(err)
	}
	clone := g.Clone()
	if _, err := d.Replay(clone); err != nil {
		t.Fatal(err)
	}
	if !analysis.KnowsBase(clone, xp, y) {
		t.Error("snoop did not establish knowledge")
	}
}

func TestCannotSnoopAlreadyKnown(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	g.AddExplicit(x, y, rights.R)
	if CanSnoop(g, x, y) {
		t.Error("snooping what is already known")
	}
}

func TestCannotSnoopWithoutTheft(t *testing.T) {
	// The only route is the owner's cooperation (grant edge): no snoop.
	g := graph.New(nil)
	x := g.MustSubject("x")
	s := g.MustSubject("owner")
	y := g.MustObject("secret")
	g.AddExplicit(s, x, rights.G)
	g.AddExplicit(s, y, rights.R)
	if CanSnoop(g, x, y) {
		t.Error("snoop without a take route")
	}
	// But can.know holds with the owner's help — the distinction.
	if !analysis.CanKnow(g, x, y) {
		t.Error("cooperative flow should exist")
	}
}

func TestSnoopIntoObject(t *testing.T) {
	// z can steal the read right and writes into object x.
	g := graph.New(nil)
	x := g.MustObject("x")
	z := g.MustSubject("z")
	s := g.MustSubject("owner")
	y := g.MustObject("secret")
	g.AddExplicit(z, x, rights.W)
	g.AddExplicit(z, s, rights.T)
	g.AddExplicit(s, y, rights.R)
	if !CanSnoop(g, x, y) {
		t.Fatal("object snoop not detected")
	}
	d, err := SynthesizeSnoop(g, x, y)
	if err != nil {
		t.Fatal(err)
	}
	clone := g.Clone()
	if _, err := d.Replay(clone); err != nil {
		t.Fatalf("replay: %v\n%s", err, d.Format(clone))
	}
	if !analysis.KnowsBase(clone, x, y) {
		t.Error("knowledge not established in x")
	}
}

func TestSnoopImpliesKnowAndSynthesis(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(nil)
		n := 3 + rng.Intn(4)
		for i := 0; i < n; i++ {
			name := "v" + string(rune('a'+i))
			if rng.Intn(3) > 0 {
				g.MustSubject(name)
			} else {
				g.MustObject(name)
			}
		}
		vs := g.Vertices()
		for i := 0; i < 2*n; i++ {
			a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
			if a != b {
				g.AddExplicit(a, b, rights.Set(1+rng.Intn(15)))
			}
		}
		for i := 0; i < 4; i++ {
			x, y := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
			if x == y || !CanSnoop(g, x, y) {
				continue
			}
			if !analysis.CanKnow(g, x, y) {
				return false // snoop must imply know
			}
			d, err := SynthesizeSnoop(g, x, y)
			if err != nil {
				t.Logf("seed %d: snoop synthesis failed %s→%s: %v", seed, g.Name(x), g.Name(y), err)
				return false
			}
			clone := g.Clone()
			if _, err := d.Replay(clone); err != nil || !analysis.KnowsBase(clone, x, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
