// Package steal implements Snyder's can•steal predicate, the theft
// extension of the Take-Grant model the paper builds on: can a vertex
// acquire a right when no vertex already holding that right cooperates?
//
// can•steal(α, x, y, G) is true iff x can obtain an explicit α edge to y
// through a derivation in which no owner of an α right to y ever applies a
// rule that moves that right (owners may be *victims* of take, but never
// granters). Snyder's characterisation:
//
//	can•steal(α, x, y, G) ⇔
//	  (a) x has no α edge to y in G, and
//	  (b) some subject x′ (x′ = x, or x′ initially spans to x), and
//	  (c) some vertex s holds an explicit α edge to y, and
//	  (d) can•share(t, x′, s, G): the conspirators can acquire take
//	      authority over s and pull the right off without s acting.
//
// The synthesiser composes the can•share machinery with the final
// non-cooperative take and verifies by replay that no owner ever acts.
package steal

import (
	"fmt"

	"takegrant/internal/analysis"
	"takegrant/internal/graph"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

// CanSteal decides Snyder's predicate on g, constructively: the theorem's
// conditions act as a necessary filter, and a synthesized derivation that
// replays with no owner granting the right certifies sufficiency. (The
// pure theorem conditions admit rare corner instances — an owner that is
// simultaneously the only terminal spanner of itself — where every
// realisation this package can build would need the owner's grant; those
// decide false here.)
func CanSteal(g *graph.Graph, alpha rights.Right, x, y graph.ID) bool {
	if len(plan(g, alpha, x, y)) == 0 {
		return false
	}
	_, err := Synthesize(g, alpha, x, y)
	return err == nil
}

type pair struct{ xp, s graph.ID }

// plan lists the (x′, s) pairs witnessing the theorem. The conspirator x′
// must not itself be an original owner (an owner delivering the right is
// sharing, not theft), must not be y (a vertex cannot hold a right to
// itself), and must be able to acquire take authority over s.
func plan(g *graph.Graph, alpha rights.Right, x, y graph.ID) []pair {
	if !g.Valid(x) || !g.Valid(y) || x == y {
		return nil
	}
	if g.Explicit(x, y).Has(alpha) {
		return nil // nothing to steal
	}
	xps := analysis.InitialSpanners(g, x)
	if len(xps) == 0 {
		return nil
	}
	owners := make(map[graph.ID]bool)
	var sources []graph.ID
	for _, h := range g.In(y) {
		if h.Explicit.Has(alpha) {
			sources = append(sources, h.Other)
			owners[h.Other] = true
		}
	}
	var out []pair
	for _, s := range sources {
		for _, xp := range xps {
			if xp == s || xp == y || owners[xp] {
				continue
			}
			if analysis.CanShare(g, rights.Take, xp, s) {
				out = append(out, pair{xp: xp, s: s})
			}
		}
	}
	return out
}

// Synthesize produces a replayable derivation realising the theft: the
// conspirators obtain take authority over the owner s, pull α-to-y off s,
// and deliver it to x. The derivation is verified against Snyder's
// non-cooperation condition — no original owner of α-to-y ever grants that
// right — trying each witness pair until one yields a clean theft.
func Synthesize(g *graph.Graph, alpha rights.Right, x, y graph.ID) (rules.Derivation, error) {
	pairs := plan(g, alpha, x, y)
	if len(pairs) == 0 {
		return nil, fmt.Errorf("steal: can.steal(%s, %s, %s) is false",
			g.Universe().Name(alpha), g.Name(x), g.Name(y))
	}
	owners := make(map[graph.ID]bool)
	for _, h := range g.In(y) {
		if h.Explicit.Has(alpha) {
			owners[h.Other] = true
		}
	}
	var lastErr error
	for _, w := range pairs {
		d, err := synthesizePair(g, alpha, x, y, w)
		if err != nil {
			lastErr = err
			continue
		}
		clean := true
		for i, app := range d {
			if app.Op == rules.OpGrant && owners[app.X] && app.Rights.Has(alpha) && app.Z == y {
				lastErr = fmt.Errorf("steal: step %d has owner %s granting the right", i+1, g.Name(app.X))
				clean = false
				break
			}
		}
		if clean {
			return d, nil
		}
	}
	return nil, lastErr
}

func synthesizePair(g *graph.Graph, alpha rights.Right, x, y graph.ID, w pair) (rules.Derivation, error) {
	// 1. x′ obtains t over the owner s.
	d, err := analysis.SynthesizeShare(g, rights.Take, w.xp, w.s)
	if err != nil {
		return nil, err
	}
	g2 := g.Clone()
	if _, err := d.Replay(g2); err != nil {
		return nil, err
	}
	// 2. x′ pulls the right off s without s acting.
	pull := rules.Take(w.xp, w.s, y, rights.Of(alpha))
	if err := pull.Apply(g2); err != nil {
		return nil, fmt.Errorf("steal: pull failed: %w", err)
	}
	d = append(d, pull)
	// 3. deliver to x: x′ pushes its fresh copy along its initial span.
	if w.xp != x {
		push, err := analysis.PushShare(g2, w.xp, x, y, alpha)
		if err != nil {
			return nil, err
		}
		if _, err := push.Replay(g2); err != nil {
			return nil, err
		}
		d = append(d, push...)
	}
	if !g2.Explicit(x, y).Has(alpha) {
		return nil, fmt.Errorf("steal: derivation did not deliver the right")
	}
	return d, nil
}
