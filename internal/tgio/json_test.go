package tgio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

func TestJSONRoundTrip(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, buf.String())
	}
	if WriteString(g2) != WriteString(g) {
		t.Errorf("JSON round trip changed the graph:\n%s\nvs\n%s",
			WriteString(g), WriteString(g2))
	}
}

func TestJSONPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(nil)
		g.Universe().MustDeclare("e")
		n := 2 + rng.Intn(6)
		for i := 0; i < n; i++ {
			name := "v" + string(rune('a'+i))
			if rng.Intn(2) == 0 {
				g.MustSubject(name)
			} else {
				g.MustObject(name)
			}
		}
		vs := g.Vertices()
		for i := 0; i < 3*n; i++ {
			a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
			if a == b {
				continue
			}
			if rng.Intn(4) == 0 {
				g.AddImplicit(a, b, rights.R)
			} else {
				g.AddExplicit(a, b, rights.Set(1+rng.Intn(31)))
			}
		}
		var buf bytes.Buffer
		if err := EncodeJSON(&buf, g); err != nil {
			return false
		}
		g2, err := DecodeJSON(&buf)
		if err != nil {
			return false
		}
		return WriteString(g2) == WriteString(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestJSONErrors(t *testing.T) {
	for _, bad := range []string{
		`{`,
		`{"subjects":["a"],"objects":[],"edges":[{"src":"a","dst":"ghost","rights":["r"]}]}`,
		`{"subjects":["a"],"objects":["b"],"edges":[{"src":"a","dst":"b","rights":["zz"]}]}`,
		`{"subjects":["a"],"objects":["b"],"edges":[{"src":"a","dst":"b","rights":[]}]}`,
		`{"subjects":["a","a"],"objects":[]}`,
	} {
		if _, err := DecodeJSON(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %s", bad)
		}
	}
}

func TestSummarize(t *testing.T) {
	g, _ := ParseString(sample)
	s := Summarize(g)
	if s.Subjects != 1 || s.Objects != 2 {
		t.Errorf("counts = %+v", s)
	}
	if s.ExplicitEdges != 2 || s.ImplicitEdges != 1 {
		t.Errorf("edges = %+v", s)
	}
	if s.PerRight["t"] != 1 || s.PerRight["w"] != 1 || s.PerRight["e"] != 1 {
		t.Errorf("per-right = %v", s.PerRight)
	}
}
