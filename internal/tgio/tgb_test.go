package tgio

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
	"testing"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// genWorld builds a deterministic pseudo-random world: a mix of subjects
// and objects, explicit edges with varied rights (including declared
// extras), implicit edges, and a few deleted vertices so encoding has
// holes to compact.
func genWorld(t testing.TB, n int, seed uint64) *graph.Graph {
	t.Helper()
	u := rights.NewUniverse()
	u.MustDeclare("e")
	u.MustDeclare("audit")
	g := graph.New(u)
	rng := seed
	next := func(mod uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % mod
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("v%04d", i)
		var err error
		if next(3) != 0 {
			_, err = g.AddSubject(name)
		} else {
			_, err = g.AddObject(name)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	sets := []rights.Set{
		rights.R, rights.RW, rights.TG, rights.T, rights.G.Union(rights.R),
		rights.Of(rights.Right(4)), rights.Of(rights.Right(5)).Union(rights.RW),
	}
	for i := 0; i < 4*n; i++ {
		src := graph.ID(next(uint64(n)))
		dst := graph.ID(next(uint64(n)))
		if src == dst {
			continue
		}
		if next(5) == 0 {
			_ = g.AddImplicit(src, dst, rights.R)
		} else {
			_ = g.AddExplicit(src, dst, sets[next(uint64(len(sets)))])
		}
	}
	for i := 0; i < n/10; i++ {
		id := graph.ID(next(uint64(n)))
		if g.Valid(id) {
			_ = g.DeleteVertex(id)
		}
	}
	return g
}

func encodeBytes(t testing.TB, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, g); err != nil {
		t.Fatalf("EncodeBinary: %v", err)
	}
	return buf.Bytes()
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 60, 400} {
		for seed := uint64(1); seed <= 3; seed++ {
			g := genWorld(t, n, seed)
			data := encodeBytes(t, g)
			dec, err := DecodeBinary(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("n=%d seed=%d: DecodeBinary: %v", n, seed, err)
			}
			if got, want := WriteString(dec), WriteString(g); got != want {
				t.Fatalf("n=%d seed=%d: canonical mismatch\n got: %q\nwant: %q", n, seed, got, want)
			}
			if errs := dec.Validate(); errs != nil {
				t.Fatalf("n=%d seed=%d: decoded graph invalid: %v", n, seed, errs)
			}
		}
	}
}

// TestBinaryRevisionParity: a decoded graph must land on the same revision
// counter as parsing the equivalent canonical text — the replication
// digest compares revisions across the two ingestion paths.
func TestBinaryRevisionParity(t *testing.T) {
	g := genWorld(t, 80, 9)
	text := WriteString(g)
	fromText, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := DecodeBinary(bytes.NewReader(encodeBytes(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	if fromText.Revision() != fromBin.Revision() {
		t.Fatalf("revision parity broken: text parse %d, binary decode %d",
			fromText.Revision(), fromBin.Revision())
	}
}

func TestParseAnyEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		g := genWorld(t, 120, seed)
		text := WriteString(g)
		bin := encodeBytes(t, g)

		fromText, err := ParseAny(strings.NewReader(text))
		if err != nil {
			t.Fatalf("seed=%d: ParseAny(text): %v", seed, err)
		}
		fromBin, err := ParseAny(bytes.NewReader(bin))
		if err != nil {
			t.Fatalf("seed=%d: ParseAny(binary): %v", seed, err)
		}
		if WriteString(fromText) != WriteString(fromBin) {
			t.Fatalf("seed=%d: ParseAny text/binary disagree", seed)
		}
		if fromText.Revision() != fromBin.Revision() {
			t.Fatalf("seed=%d: ParseAny revision mismatch: %d vs %d",
				seed, fromText.Revision(), fromBin.Revision())
		}
	}
}

func TestBinaryTruncation(t *testing.T) {
	g := genWorld(t, 50, 2)
	data := encodeBytes(t, g)
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeBinary(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded cleanly", cut, len(data))
		}
	}
}

// TestBinaryCorruption flips every byte of an encoded world in turn: each
// flip must be rejected — by the CRC footer if nothing structural trips
// first. CRC32 detects all single-byte errors, so no flip may decode.
func TestBinaryCorruption(t *testing.T) {
	g := genWorld(t, 30, 3)
	data := encodeBytes(t, g)
	mut := make([]byte, len(data))
	for i := 0; i < len(data); i++ {
		copy(mut, data)
		mut[i] ^= 0x5a
		if _, err := DecodeBinary(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flip at byte %d/%d decoded cleanly", i, len(data))
		}
	}
}

// TestBinaryAlphabetOverflow hand-frames a file whose label table uses a
// bit beyond the declared alphabet.
func TestBinaryAlphabetOverflow(t *testing.T) {
	var buf bytes.Buffer
	bw := newTestFramer(&buf)
	bw.section('R', func(c *crcWriter) {
		c.uvarint(0) // no extra rights: alphabet is r,w,t,g only
	})
	bw.section('V', func(c *crcWriter) {
		c.uvarint(2)
		c.Write([]byte{0})
		c.str("a")
		c.Write([]byte{1})
		c.str("b")
	})
	bw.section('L', func(c *crcWriter) {
		c.uvarint(1)
		c.uvarint(1 << 5) // bit 5: beyond the 4 declared rights
		c.uvarint(0)
	})
	bw.section('E', func(c *crcWriter) {
		c.uvarint(0)
	})
	bw.section('Z', func(c *crcWriter) {})
	bw.flush()

	_, err := DecodeBinary(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "alphabet overflow") {
		t.Fatalf("want alphabet overflow error, got %v", err)
	}
}

func TestBinaryRejectsTextAndGarbage(t *testing.T) {
	for _, in := range []string{"", "subject a\n", "TGB0xxxx", "TGB1", "TGB1\x00\x00"} {
		if _, err := DecodeBinary(strings.NewReader(in)); err == nil {
			t.Fatalf("DecodeBinary(%q) succeeded", in)
		}
	}
	// ParseAny falls back to text for non-magic input.
	g, err := ParseAny(strings.NewReader("subject a\nobject b\nedge a b r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2 {
		t.Fatalf("ParseAny text fallback lost vertices: %d", g.NumVertices())
	}
	if _, err := ParseAny(strings.NewReader("")); err != nil {
		t.Fatalf("ParseAny empty input: %v", err)
	}
}

// testFramer writes hand-built .tgb sections for corruption tests.
type testFramer struct {
	bw *crcWriter
}

func newTestFramer(buf *bytes.Buffer) *testFramer {
	f := &testFramer{bw: &crcWriter{w: bufio.NewWriter(buf)}}
	f.bw.w.WriteString(binaryMagic)
	return f
}

func (f *testFramer) section(tag byte, fill func(*crcWriter)) {
	f.bw.begin(tag)
	fill(f.bw)
	f.bw.end()
}

func (f *testFramer) flush() { f.bw.w.Flush() }
