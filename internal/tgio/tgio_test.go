package tgio

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

const sample = `
# Figure 5.1, roughly
right e
subject x
object v
object y
edge x v t
edge v y e,w    # execute and write
implicit x y r
`

func TestParseSample(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	x, ok := g.Lookup("x")
	if !ok || !g.IsSubject(x) {
		t.Fatal("x missing")
	}
	v, _ := g.Lookup("v")
	y, _ := g.Lookup("y")
	if !g.Explicit(x, v).Has(rights.Take) {
		t.Error("edge x v t missing")
	}
	e, ok := g.Universe().Lookup("e")
	if !ok {
		t.Fatal("right e not declared")
	}
	if !g.Explicit(v, y).Has(e) || !g.Explicit(v, y).Has(rights.Write) {
		t.Error("edge v y wrong")
	}
	if !g.Implicit(x, y).Has(rights.Read) {
		t.Error("implicit edge missing")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate x",
		"subject",
		"object a b",
		"edge a b r",                      // unknown vertices
		"subject a\nedge a a r",           // self edge via graph layer
		"subject a\nobject b\nedge a b",   // missing rights
		"subject a\nobject b\nedge a b q", // unknown right
		"subject a\nobject b\nedge a b ∅", // empty rights
		"right",
		"subject a\nsubject a",
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	text := WriteString(g)
	g2, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	// Structural equality up to vertex IDs: compare canonical .tg forms.
	if WriteString(g2) != text {
		t.Errorf("round trip not canonical:\n%s\nvs\n%s", text, WriteString(g2))
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(nil)
		g.Universe().MustDeclare("e")
		n := 2 + rng.Intn(8)
		for i := 0; i < n; i++ {
			name := "v" + string(rune('a'+i))
			if rng.Intn(2) == 0 {
				g.MustSubject(name)
			} else {
				g.MustObject(name)
			}
		}
		vs := g.Vertices()
		for i := 0; i < 3*n; i++ {
			a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
			if a == b {
				continue
			}
			if rng.Intn(4) == 0 {
				g.AddImplicit(a, b, rights.R)
			} else {
				g.AddExplicit(a, b, rights.Set(1+rng.Intn(31)))
			}
		}
		text := WriteString(g)
		g2, err := ParseString(text)
		if err != nil {
			return false
		}
		return WriteString(g2) == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDOT(t *testing.T) {
	g, _ := ParseString(sample)
	dot := DOT(g, "fig51")
	for _, want := range []string{"digraph", `"x" -> "v"`, "style=dashed", `label="w,e"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestRender(t *testing.T) {
	g, _ := ParseString(sample)
	out := Render(g)
	for _, want := range []string{"● x", "○ y", "→", "⇢"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	g, err := ParseString("\n\n# only comments\n   \nsubject a # trailing\n")
	if err != nil || g.NumVertices() != 1 {
		t.Errorf("= %v, %v", g, err)
	}
}
