package tgio

import (
	"strings"
	"testing"
)

// FuzzParse checks the .tg parser never panics and that everything it
// accepts round-trips through the canonical writer.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("subject a\nobject b\nedge a b r,w,t,g\n")
	f.Add("right e\nsubject s\nobject o\nimplicit s o r\n")
	f.Add("# nothing\n\n")
	f.Add("edge ghost ghost r")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseString(src)
		if err != nil {
			return
		}
		text := WriteString(g)
		g2, err := ParseString(text)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, text)
		}
		if WriteString(g2) != text {
			t.Fatalf("canonical form unstable:\n%s\nvs\n%s", text, WriteString(g2))
		}
	})
}

// FuzzJSON checks the JSON decoder against arbitrary input and round-trips
// accepted graphs.
func FuzzJSON(f *testing.F) {
	f.Add(`{"subjects":["a"],"objects":["b"],"edges":[{"src":"a","dst":"b","rights":["r"]}]}`)
	f.Add(`{"subjects":[],"objects":[]}`)
	f.Add(`{"rights":["e"],"subjects":["s"],"objects":["o"],"implicit":[{"src":"s","dst":"o","rights":["r"]}]}`)
	f.Fuzz(func(t *testing.T, src string) {
		g, err := DecodeJSON(strings.NewReader(src))
		if err != nil {
			return
		}
		text := WriteString(g)
		if _, err := ParseString(text); err != nil {
			t.Fatalf("JSON-accepted graph fails .tg round trip: %v", err)
		}
	})
}
