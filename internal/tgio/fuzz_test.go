package tgio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse checks the .tg parser never panics and that everything it
// accepts round-trips through the canonical writer.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("subject a\nobject b\nedge a b r,w,t,g\n")
	f.Add("right e\nsubject s\nobject o\nimplicit s o r\n")
	f.Add("# nothing\n\n")
	f.Add("edge ghost ghost r")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseString(src)
		if err != nil {
			return
		}
		text := WriteString(g)
		g2, err := ParseString(text)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, text)
		}
		if WriteString(g2) != text {
			t.Fatalf("canonical form unstable:\n%s\nvs\n%s", text, WriteString(g2))
		}
	})
}

// FuzzDecodeBinary checks the .tgb decoder never panics on arbitrary
// bytes and that anything it accepts survives an encode/decode round
// trip. The seed corpus covers well-formed worlds plus the corruption
// classes the decoder must reject: truncation, CRC damage, bad magic.
func FuzzDecodeBinary(f *testing.F) {
	seedWorld := func(n int, seed uint64) []byte {
		var buf bytes.Buffer
		if err := EncodeBinary(&buf, genWorld(f, n, seed)); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	small := seedWorld(12, 1)
	f.Add(small)
	f.Add(seedWorld(0, 1))
	f.Add(seedWorld(80, 7))
	f.Add(small[:len(small)/2]) // truncated
	crcHit := bytes.Clone(small)
	crcHit[len(crcHit)-1] ^= 0xff // damaged terminator CRC
	f.Add(crcHit)
	f.Add([]byte("TGB1"))
	f.Add([]byte("TGB0not-binary"))
	f.Add([]byte("subject a\nobject b\nedge a b r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := DecodeBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if errs := g.Validate(); errs != nil {
			t.Fatalf("decoder accepted an invalid graph: %v", errs)
		}
		var buf bytes.Buffer
		if err := EncodeBinary(&buf, g); err != nil {
			t.Fatalf("accepted graph fails re-encode: %v", err)
		}
		g2, err := DecodeBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded graph fails decode: %v", err)
		}
		if WriteString(g2) != WriteString(g) {
			t.Fatalf("binary round trip unstable")
		}
	})
}

// FuzzJSON checks the JSON decoder against arbitrary input and round-trips
// accepted graphs.
func FuzzJSON(f *testing.F) {
	f.Add(`{"subjects":["a"],"objects":["b"],"edges":[{"src":"a","dst":"b","rights":["r"]}]}`)
	f.Add(`{"subjects":[],"objects":[]}`)
	f.Add(`{"rights":["e"],"subjects":["s"],"objects":["o"],"implicit":[{"src":"s","dst":"o","rights":["r"]}]}`)
	f.Fuzz(func(t *testing.T, src string) {
		g, err := DecodeJSON(strings.NewReader(src))
		if err != nil {
			return
		}
		text := WriteString(g)
		if _, err := ParseString(text); err != nil {
			t.Fatalf("JSON-accepted graph fails .tg round trip: %v", err)
		}
	})
}
