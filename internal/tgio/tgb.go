package tgio

// The ".tgb" binary bulk format. A .tgb file carries the same information
// as the canonical .tg text form but in a compact, streaming-friendly
// layout: million-vertex worlds encode in tens of megabytes and decode
// without ever materializing a text rendering.
//
// Layout:
//
//	magic "TGB1"
//	section 'R'  extra rights beyond the builtin r,w,t,g
//	section 'V'  live vertices: kind byte + name, densely renumbered
//	section 'L'  interned label pairs: (explicit, implicit) bitmask uvarints
//	section 'E'  edges sorted by (src,dst), varint-delta encoded
//	section 'Z'  terminator
//
// Every section is framed as: tag byte, payload, CRC32-IEEE of the payload
// (little-endian, 4 bytes). Payloads are self-delimiting (counts up front,
// length-prefixed strings), so the decoder reads exactly the payload and
// then verifies the checksum — truncation, bit damage and framing errors
// are all detected. Integers are unsigned varints (encoding/binary).
//
// Edge records exploit the (src,dst)-sorted order: each record is
// (srcGap, dstDelta, labelIndex) where srcGap is the distance from the
// previous record's source and dstDelta encodes dst - prevDst - 1 within a
// source run (absolute dst when the source changes). Typical records are
// 3-5 bytes.
//
// Decoding replays vertices and labels through the ordinary graph
// mutation API, so a decoded graph has the same revision counter as
// parsing the equivalent canonical text — revision-keyed caches and the
// replication digest cannot tell the two apart.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// BinaryContentType is the media type of the .tgb encoding on the wire.
const BinaryContentType = "application/x-takegrant-binary"

// binaryMagic opens every .tgb stream.
const binaryMagic = "TGB1"

// IsBinary reports whether a stream prefix (at least 4 bytes) carries the
// .tgb magic.
func IsBinary(prefix []byte) bool {
	return len(prefix) >= len(binaryMagic) && string(prefix[:len(binaryMagic)]) == binaryMagic
}

// Decoder sanity caps: counts above these are rejected outright instead of
// driving huge speculative allocations from hostile headers. They bound
// worlds well past the 1e6-vertex design point.
const (
	maxBinaryName     = 1 << 16 // single vertex/right name length
	maxBinaryVertices = 1 << 28
	maxBinaryEdges    = 1 << 30
	maxBinaryLabels   = 1 << 24
	preallocCap       = 1 << 21 // largest speculative make() from a header count
)

// ParseAny reads a graph in either format, sniffing the .tgb magic from
// the first bytes and falling back to the text parser otherwise.
func ParseAny(r io.Reader) (*graph.Graph, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	prefix, err := br.Peek(len(binaryMagic))
	if err == nil && IsBinary(prefix) {
		return DecodeBinary(br)
	}
	// Short or non-magic prefixes are text (including the empty file,
	// which parses to the empty graph).
	return Parse(br)
}

// crcWriter frames one section: bytes written accumulate into a CRC32
// until the frame is closed.
type crcWriter struct {
	w       *bufio.Writer
	crc     uint32
	scratch [binary.MaxVarintLen64]byte
}

func (c *crcWriter) begin(tag byte) error {
	c.crc = 0
	return c.w.WriteByte(tag)
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

func (c *crcWriter) uvarint(v uint64) error {
	n := binary.PutUvarint(c.scratch[:], v)
	_, err := c.Write(c.scratch[:n])
	return err
}

func (c *crcWriter) str(s string) error {
	if err := c.uvarint(uint64(len(s))); err != nil {
		return err
	}
	c.crc = crc32.Update(c.crc, crc32.IEEETable, []byte(s))
	_, err := c.w.WriteString(s)
	return err
}

func (c *crcWriter) end() error {
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], c.crc)
	_, err := c.w.Write(foot[:])
	return err
}

// EncodeBinary writes g in .tgb form. Deleted-vertex holes are compacted:
// live vertices are renumbered densely in ID order, which preserves the
// snapshot's (src,dst) edge sort. The encoding streams from the frozen
// CSR snapshot and never builds a text rendering.
func EncodeBinary(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	c := &crcWriter{w: bw}
	u := g.Universe()
	s := g.Snapshot()

	// 'R': extra rights in declaration order.
	if err := c.begin('R'); err != nil {
		return err
	}
	extra := u.All()[rights.NumBuiltin:]
	if err := c.uvarint(uint64(len(extra))); err != nil {
		return err
	}
	for _, r := range extra {
		if err := c.str(u.Name(r)); err != nil {
			return err
		}
	}
	if err := c.end(); err != nil {
		return err
	}

	// 'V': live vertices, dense renumbering in ID order.
	if err := c.begin('V'); err != nil {
		return err
	}
	fileID := make([]int64, s.Cap())
	live := 0
	for v := 0; v < s.Cap(); v++ {
		if s.Live(graph.ID(v)) {
			fileID[v] = int64(live)
			live++
		} else {
			fileID[v] = -1
		}
	}
	if err := c.uvarint(uint64(live)); err != nil {
		return err
	}
	for v := 0; v < s.Cap(); v++ {
		if fileID[v] < 0 {
			continue
		}
		kind := byte(0)
		if !s.IsSubject(graph.ID(v)) {
			kind = 1
		}
		if _, err := c.Write([]byte{kind}); err != nil {
			return err
		}
		if err := c.str(g.Name(graph.ID(v))); err != nil {
			return err
		}
	}
	if err := c.end(); err != nil {
		return err
	}

	// 'L': the snapshot's interned label table, verbatim.
	if err := c.begin('L'); err != nil {
		return err
	}
	if err := c.uvarint(uint64(s.NumLabels())); err != nil {
		return err
	}
	for i := 0; i < s.NumLabels(); i++ {
		lp := s.Label(uint32(i))
		if err := c.uvarint(uint64(lp.Explicit)); err != nil {
			return err
		}
		if err := c.uvarint(uint64(lp.Implicit)); err != nil {
			return err
		}
	}
	if err := c.end(); err != nil {
		return err
	}

	// 'E': delta-coded edges in (src,dst) order.
	if err := c.begin('E'); err != nil {
		return err
	}
	if err := c.uvarint(uint64(s.NumEdges())); err != nil {
		return err
	}
	prevSrc, prevDst := int64(0), int64(-1)
	for v := 0; v < s.Cap(); v++ {
		dst, lbl := s.Out(graph.ID(v))
		if len(dst) == 0 {
			continue
		}
		src := fileID[v]
		for j, d := range dst {
			gap := src - prevSrc
			if gap != 0 {
				prevDst = -1
			}
			fd := fileID[d]
			if err := c.uvarint(uint64(gap)); err != nil {
				return err
			}
			if err := c.uvarint(uint64(fd - prevDst - 1)); err != nil {
				return err
			}
			if err := c.uvarint(uint64(lbl[j])); err != nil {
				return err
			}
			prevSrc, prevDst = src, fd
		}
	}
	if err := c.end(); err != nil {
		return err
	}

	// 'Z': terminator (empty payload, CRC 0).
	if err := c.begin('Z'); err != nil {
		return err
	}
	if err := c.end(); err != nil {
		return err
	}
	return bw.Flush()
}

// crcReader un-frames one section: bytes read accumulate into a CRC32
// that end() checks against the 4-byte footer.
type crcReader struct {
	r   *bufio.Reader
	crc uint32
	off int64 // bytes consumed from the stream, for error positions
}

func (c *crcReader) begin(want byte) error {
	tag, err := c.r.ReadByte()
	if err != nil {
		return fmt.Errorf("tgio: binary: truncated at section %q: %w", string(want), noEOF(err))
	}
	c.off++
	if tag != want {
		return fmt.Errorf("tgio: binary: expected section %q at offset %d, found %q", string(want), c.off-1, string(tag))
	}
	c.crc = 0
	return nil
}

func (c *crcReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err != nil {
		return 0, err
	}
	c.off++
	var one [1]byte
	one[0] = b
	c.crc = crc32.Update(c.crc, crc32.IEEETable, one[:])
	return b, nil
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.off += int64(n)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

func (c *crcReader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(c)
	if err != nil {
		return 0, fmt.Errorf("tgio: binary: truncated varint at offset %d: %w", c.off, noEOF(err))
	}
	return v, nil
}

func (c *crcReader) str(maxLen uint64) (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxLen {
		return "", fmt.Errorf("tgio: binary: name length %d exceeds cap %d at offset %d", n, maxLen, c.off)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c, buf); err != nil {
		return "", fmt.Errorf("tgio: binary: truncated name at offset %d: %w", c.off, noEOF(err))
	}
	return string(buf), nil
}

func (c *crcReader) end(tag byte) error {
	got := c.crc
	var foot [4]byte
	if _, err := io.ReadFull(c.r, foot[:]); err != nil {
		return fmt.Errorf("tgio: binary: truncated CRC footer of section %q: %w", string(tag), noEOF(err))
	}
	c.off += 4
	if want := binary.LittleEndian.Uint32(foot[:]); want != got {
		return fmt.Errorf("tgio: binary: CRC mismatch in section %q: file %08x, computed %08x", string(tag), want, got)
	}
	return nil
}

// noEOF maps io.EOF to io.ErrUnexpectedEOF: inside a framed section, any
// end-of-stream is truncation, never a clean end.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// DecodeBinary reads a .tgb stream into a fresh graph. Every section CRC
// is verified; label bitmasks are checked against the declared rights
// alphabet ("alphabet overflow"); edges must arrive strictly (src,dst)
// sorted. The decoded graph's revision counter matches what parsing the
// equivalent canonical text would produce.
func DecodeBinary(r io.Reader) (*graph.Graph, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	var magic [len(binaryMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("tgio: binary: missing magic: %w", noEOF(err))
	}
	if !IsBinary(magic[:]) {
		return nil, fmt.Errorf("tgio: binary: bad magic %q", string(magic[:]))
	}
	c := &crcReader{r: br, off: int64(len(magic))}

	// 'R': declare extra rights.
	u := rights.NewUniverse()
	if err := c.begin('R'); err != nil {
		return nil, err
	}
	nRights, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if nRights > rights.MaxRights {
		return nil, fmt.Errorf("tgio: binary: %d extra rights exceeds universe capacity", nRights)
	}
	for i := uint64(0); i < nRights; i++ {
		name, err := c.str(maxBinaryName)
		if err != nil {
			return nil, err
		}
		if _, err := u.Declare(name); err != nil {
			return nil, fmt.Errorf("tgio: binary: %w", err)
		}
	}
	if err := c.end('R'); err != nil {
		return nil, err
	}
	alphabet := rights.Set(1)<<rights.Set(u.Len()) - 1

	// 'V': vertices in file-ID order.
	g := graph.New(u)
	if err := c.begin('V'); err != nil {
		return nil, err
	}
	nVerts, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if nVerts > maxBinaryVertices {
		return nil, fmt.Errorf("tgio: binary: vertex count %d exceeds cap", nVerts)
	}
	g.Grow(int(min(nVerts, preallocCap)))
	for i := uint64(0); i < nVerts; i++ {
		kind, err := c.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("tgio: binary: truncated vertex record %d: %w", i, noEOF(err))
		}
		name, err := c.str(maxBinaryName)
		if err != nil {
			return nil, err
		}
		switch kind {
		case 0:
			_, err = g.AddSubject(name)
		case 1:
			_, err = g.AddObject(name)
		default:
			return nil, fmt.Errorf("tgio: binary: vertex %d has unknown kind %d", i, kind)
		}
		if err != nil {
			return nil, fmt.Errorf("tgio: binary: %w", err)
		}
	}
	if err := c.end('V'); err != nil {
		return nil, err
	}

	// 'L': interned label table, validated against the alphabet.
	if err := c.begin('L'); err != nil {
		return nil, err
	}
	nLabels, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if nLabels > maxBinaryLabels {
		return nil, fmt.Errorf("tgio: binary: label count %d exceeds cap", nLabels)
	}
	labels := make([]graph.LabelPair, 0, int(min(nLabels, preallocCap)))
	for i := uint64(0); i < nLabels; i++ {
		exp, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		imp, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		lp := graph.LabelPair{Explicit: rights.Set(exp), Implicit: rights.Set(imp)}
		if over := lp.Combined().Minus(alphabet); !over.Empty() {
			return nil, fmt.Errorf("tgio: binary: label %d: alphabet overflow (bits %x beyond %d declared rights)", i, uint64(over), u.Len())
		}
		if lp.Combined().Empty() {
			return nil, fmt.Errorf("tgio: binary: label %d is empty", i)
		}
		labels = append(labels, lp)
	}
	if err := c.end('L'); err != nil {
		return nil, err
	}

	// 'E': delta-coded edges, strictly (src,dst) ascending.
	if err := c.begin('E'); err != nil {
		return nil, err
	}
	nEdges, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if nEdges > maxBinaryEdges {
		return nil, fmt.Errorf("tgio: binary: edge count %d exceeds cap", nEdges)
	}
	src, prevDst := uint64(0), int64(-1)
	for i := uint64(0); i < nEdges; i++ {
		gap, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if gap != 0 {
			src += gap
			prevDst = -1
		}
		delta, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		dst := uint64(prevDst+1) + delta
		li, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if src >= nVerts || dst >= nVerts {
			return nil, fmt.Errorf("tgio: binary: edge %d references vertex beyond %d", i, nVerts)
		}
		if li >= uint64(len(labels)) {
			return nil, fmt.Errorf("tgio: binary: edge %d references label %d beyond table of %d", i, li, len(labels))
		}
		lp := labels[li]
		if !lp.Explicit.Empty() {
			if err := g.AddExplicit(graph.ID(src), graph.ID(dst), lp.Explicit); err != nil {
				return nil, fmt.Errorf("tgio: binary: edge %d: %w", i, err)
			}
		}
		if !lp.Implicit.Empty() {
			if err := g.AddImplicit(graph.ID(src), graph.ID(dst), lp.Implicit); err != nil {
				return nil, fmt.Errorf("tgio: binary: edge %d: %w", i, err)
			}
		}
		prevDst = int64(dst)
	}
	if err := c.end('E'); err != nil {
		return nil, err
	}

	// 'Z': terminator.
	if err := c.begin('Z'); err != nil {
		return nil, err
	}
	if err := c.end('Z'); err != nil {
		return nil, err
	}
	return g, nil
}
