package tgio

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// JSONGraph is the interchange schema for protection graphs: stable field
// names, rights as string lists, vertices referenced by name.
type JSONGraph struct {
	// Rights lists extra rights beyond r, w, t, g, in declaration order.
	Rights   []string   `json:"rights,omitempty"`
	Subjects []string   `json:"subjects"`
	Objects  []string   `json:"objects"`
	Edges    []JSONEdge `json:"edges,omitempty"`
	Implicit []JSONEdge `json:"implicit,omitempty"`
}

// JSONEdge is one labelled edge.
type JSONEdge struct {
	Src    string   `json:"src"`
	Dst    string   `json:"dst"`
	Rights []string `json:"rights"`
}

// ToJSON converts a graph into the interchange form.
func ToJSON(g *graph.Graph) *JSONGraph {
	u := g.Universe()
	out := &JSONGraph{}
	for _, r := range u.All()[4:] {
		out.Rights = append(out.Rights, u.Name(r))
	}
	for _, v := range g.Vertices() {
		if g.IsSubject(v) {
			out.Subjects = append(out.Subjects, g.Name(v))
		} else {
			out.Objects = append(out.Objects, g.Name(v))
		}
	}
	sort.Strings(out.Subjects)
	sort.Strings(out.Objects)
	for _, e := range g.Edges() {
		if !e.Explicit.Empty() {
			out.Edges = append(out.Edges, JSONEdge{
				Src: g.Name(e.Src), Dst: g.Name(e.Dst), Rights: e.Explicit.Names(u)})
		}
		if !e.Implicit.Empty() {
			out.Implicit = append(out.Implicit, JSONEdge{
				Src: g.Name(e.Src), Dst: g.Name(e.Dst), Rights: e.Implicit.Names(u)})
		}
	}
	sortJSONEdges(out.Edges)
	sortJSONEdges(out.Implicit)
	return out
}

func sortJSONEdges(es []JSONEdge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Src != es[j].Src {
			return es[i].Src < es[j].Src
		}
		return es[i].Dst < es[j].Dst
	})
}

// FromJSON rebuilds a graph from the interchange form.
func FromJSON(j *JSONGraph) (*graph.Graph, error) {
	g := graph.New(nil)
	for _, name := range j.Rights {
		if _, err := g.Universe().Declare(name); err != nil {
			return nil, err
		}
	}
	for _, s := range j.Subjects {
		if _, err := g.AddSubject(s); err != nil {
			return nil, err
		}
	}
	for _, o := range j.Objects {
		if _, err := g.AddObject(o); err != nil {
			return nil, err
		}
	}
	addEdges := func(es []JSONEdge, implicit bool) error {
		for _, e := range es {
			src, ok := g.Lookup(e.Src)
			if !ok {
				return fmt.Errorf("tgio: unknown vertex %q", e.Src)
			}
			dst, ok := g.Lookup(e.Dst)
			if !ok {
				return fmt.Errorf("tgio: unknown vertex %q", e.Dst)
			}
			var set rights.Set
			for _, name := range e.Rights {
				r, ok := g.Universe().Lookup(name)
				if !ok {
					return fmt.Errorf("tgio: unknown right %q", name)
				}
				set = set.With(r)
			}
			if set.Empty() {
				return fmt.Errorf("tgio: empty rights on %s→%s", e.Src, e.Dst)
			}
			var err error
			if implicit {
				err = g.AddImplicit(src, dst, set)
			} else {
				err = g.AddExplicit(src, dst, set)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := addEdges(j.Edges, false); err != nil {
		return nil, err
	}
	if err := addEdges(j.Implicit, true); err != nil {
		return nil, err
	}
	return g, nil
}

// EncodeJSON writes the graph as indented JSON.
func EncodeJSON(w io.Writer, g *graph.Graph) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToJSON(g))
}

// DecodeJSON reads a graph from JSON.
func DecodeJSON(r io.Reader) (*graph.Graph, error) {
	var j JSONGraph
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("tgio: %w", err)
	}
	return FromJSON(&j)
}

// Stats summarises a protection graph for reports.
type Stats struct {
	Subjects, Objects int
	ExplicitEdges     int
	ImplicitEdges     int
	// PerRight counts how many explicit edges carry each right name.
	PerRight map[string]int
}

// Summarize computes graph statistics.
func Summarize(g *graph.Graph) Stats {
	u := g.Universe()
	s := Stats{PerRight: make(map[string]int)}
	s.Subjects = len(g.Subjects())
	s.Objects = len(g.Objects())
	for _, e := range g.Edges() {
		if !e.Explicit.Empty() {
			s.ExplicitEdges++
			for _, r := range e.Explicit.Rights() {
				s.PerRight[u.Name(r)]++
			}
		}
		if !e.Implicit.Empty() {
			s.ImplicitEdges++
		}
	}
	return s
}
