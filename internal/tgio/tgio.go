// Package tgio reads and writes protection graphs.
//
// The ".tg" text format is line-oriented:
//
//	# comment                      (also after '#' anywhere on a line)
//	right e                        declare an extra right
//	subject alice                  declare a subject vertex
//	object report                  declare an object vertex
//	edge alice report r,w          explicit edge with a rights list
//	implicit alice report r        implicit edge
//
// Vertices must be declared before edges mention them. Writing a graph
// produces a canonical file (sorted declarations) that parses back to an
// Equal graph. The package also exports Graphviz DOT (explicit edges
// solid, implicit dashed, subjects as filled circles, objects hollow) and
// a plain-text rendering for terminals.
package tgio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// maxLineBytes bounds a single .tg line. Generated worlds can carry wide
// rights lists and long vertex names; the default bufio.Scanner cap
// (64KiB) fails them with a bare "token too long".
const maxLineBytes = 16 << 20

// ParseError reports a .tg parse failure with the 1-based line it
// occurred on. Parse returns it for any malformed directive; scanner-level
// failures (for example a line over maxLineBytes) carry the line the
// scanner stopped at.
type ParseError struct {
	Line int
	Err  error
}

func (e *ParseError) Error() string { return fmt.Sprintf("tgio: line %d: %v", e.Line, e.Err) }

func (e *ParseError) Unwrap() error { return e.Err }

// Parse reads a .tg document into a fresh graph. Malformed input returns
// a *ParseError carrying the offending line number.
func Parse(r io.Reader) (*graph.Graph, error) {
	g := graph.New(nil)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxLineBytes)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := parseLine(g, fields); err != nil {
			return nil, &ParseError{Line: lineNo, Err: err}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, &ParseError{Line: lineNo + 1, Err: err}
	}
	return g, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*graph.Graph, error) {
	return Parse(strings.NewReader(s))
}

func parseLine(g *graph.Graph, fields []string) error {
	switch fields[0] {
	case "right":
		if len(fields) != 2 {
			return fmt.Errorf("right takes one name")
		}
		_, err := g.Universe().Declare(fields[1])
		return err
	case "subject":
		if len(fields) != 2 {
			return fmt.Errorf("subject takes one name")
		}
		_, err := g.AddSubject(fields[1])
		return err
	case "object":
		if len(fields) != 2 {
			return fmt.Errorf("object takes one name")
		}
		_, err := g.AddObject(fields[1])
		return err
	case "edge", "implicit":
		if len(fields) != 4 {
			return fmt.Errorf("%s takes src dst rights", fields[0])
		}
		src, ok := g.Lookup(fields[1])
		if !ok {
			return fmt.Errorf("unknown vertex %q", fields[1])
		}
		dst, ok := g.Lookup(fields[2])
		if !ok {
			return fmt.Errorf("unknown vertex %q", fields[2])
		}
		set, err := rights.Parse(g.Universe(), fields[3])
		if err != nil {
			return err
		}
		if set.Empty() {
			return fmt.Errorf("empty rights list")
		}
		if fields[0] == "edge" {
			return g.AddExplicit(src, dst, set)
		}
		return g.AddImplicit(src, dst, set)
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
}

// Write emits the graph in canonical .tg form.
func Write(w io.Writer, g *graph.Graph) error {
	u := g.Universe()
	var b strings.Builder
	// Extra rights beyond the builtin four, in declaration order.
	for _, r := range u.All()[4:] {
		fmt.Fprintf(&b, "right %s\n", u.Name(r))
	}
	names := make([]string, 0, g.NumVertices())
	for _, v := range g.Vertices() {
		names = append(names, g.Name(v))
	}
	sort.Strings(names)
	for _, n := range names {
		v, _ := g.Lookup(n)
		fmt.Fprintf(&b, "%s %s\n", g.KindOf(v), n)
	}
	type edgeLine struct{ src, dst, set string }
	var explicit, implicit []edgeLine
	for _, e := range g.Edges() {
		if !e.Explicit.Empty() {
			explicit = append(explicit, edgeLine{g.Name(e.Src), g.Name(e.Dst), e.Explicit.Format(u)})
		}
		if !e.Implicit.Empty() {
			implicit = append(implicit, edgeLine{g.Name(e.Src), g.Name(e.Dst), e.Implicit.Format(u)})
		}
	}
	sortEdges := func(es []edgeLine) {
		sort.Slice(es, func(i, j int) bool {
			if es[i].src != es[j].src {
				return es[i].src < es[j].src
			}
			return es[i].dst < es[j].dst
		})
	}
	sortEdges(explicit)
	sortEdges(implicit)
	for _, e := range explicit {
		fmt.Fprintf(&b, "edge %s %s %s\n", e.src, e.dst, e.set)
	}
	for _, e := range implicit {
		fmt.Fprintf(&b, "implicit %s %s %s\n", e.src, e.dst, e.set)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteString is Write into a string.
func WriteString(g *graph.Graph) string {
	var b strings.Builder
	Write(&b, g) // strings.Builder never errors
	return b.String()
}

// DOT renders the graph in Graphviz syntax.
func DOT(g *graph.Graph, title string) string {
	u := g.Universe()
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=LR;\n")
	for _, v := range g.Vertices() {
		shape := "circle"
		style := "filled"
		if g.IsObject(v) {
			style = "solid"
		}
		fmt.Fprintf(&b, "  %q [shape=%s, style=%s];\n", g.Name(v), shape, style)
	}
	for _, e := range g.Edges() {
		if !e.Explicit.Empty() {
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n",
				g.Name(e.Src), g.Name(e.Dst), e.Explicit.Format(u))
		}
		if !e.Implicit.Empty() {
			fmt.Fprintf(&b, "  %q -> %q [label=%q, style=dashed];\n",
				g.Name(e.Src), g.Name(e.Dst), e.Implicit.Format(u))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Render produces a terminal-friendly adjacency listing: one block per
// vertex with its outgoing explicit (→) and implicit (⇢) labels.
func Render(g *graph.Graph) string {
	u := g.Universe()
	var b strings.Builder
	for _, v := range g.Vertices() {
		marker := "●"
		if g.IsObject(v) {
			marker = "○"
		}
		fmt.Fprintf(&b, "%s %s\n", marker, g.Name(v))
		for _, h := range g.Out(v) {
			if !h.Explicit.Empty() {
				fmt.Fprintf(&b, "    → %-12s %s\n", g.Name(h.Other), h.Explicit.Format(u))
			}
			if !h.Implicit.Empty() {
				fmt.Fprintf(&b, "    ⇢ %-12s %s\n", g.Name(h.Other), h.Implicit.Format(u))
			}
		}
	}
	return b.String()
}
