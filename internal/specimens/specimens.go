// Package specimens embeds the paper's figures as ready-to-load .tg
// protection graphs: worked examples for tests, documentation and the
// command-line tools. Load them by name, or List them.
package specimens

import (
	"embed"
	"fmt"
	"sort"
	"strings"

	"takegrant/internal/graph"
	"takegrant/internal/tgio"
)

//go:embed data/*.tg
var files embed.FS

// List returns the specimen names (without extension), sorted.
func List() []string {
	entries, err := files.ReadDir("data")
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		out = append(out, strings.TrimSuffix(e.Name(), ".tg"))
	}
	sort.Strings(out)
	return out
}

// Load parses the named specimen into a fresh graph.
func Load(name string) (*graph.Graph, error) {
	data, err := files.ReadFile("data/" + name + ".tg")
	if err != nil {
		return nil, fmt.Errorf("specimens: unknown specimen %q (have %v)", name, List())
	}
	return tgio.ParseString(string(data))
}

// Source returns the raw .tg text of a specimen.
func Source(name string) (string, error) {
	data, err := files.ReadFile("data/" + name + ".tg")
	if err != nil {
		return "", fmt.Errorf("specimens: unknown specimen %q", name)
	}
	return string(data), nil
}
