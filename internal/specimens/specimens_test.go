package specimens

import (
	"testing"

	"takegrant/internal/analysis"
	"takegrant/internal/hierarchy"
	"takegrant/internal/rights"
	"takegrant/internal/steal"
)

func TestListAndLoad(t *testing.T) {
	names := List()
	want := []string{"fig22", "fig51", "fig61", "military", "wu"}
	if len(names) != len(want) {
		t.Fatalf("specimens = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("names[%d] = %s", i, names[i])
		}
		g, err := Load(n)
		if err != nil {
			t.Fatalf("Load(%s): %v", n, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s empty", n)
		}
		if src, err := Source(n); err != nil || src == "" {
			t.Errorf("Source(%s) = %v", n, err)
		}
	}
	if _, err := Load("nope"); err == nil {
		t.Error("unknown specimen loaded")
	}
	if _, err := Source("nope"); err == nil {
		t.Error("unknown source loaded")
	}
}

// Each specimen's headline property, asserted against the decision
// procedures — the figures stay faithful even if the files are edited.

func TestFig22Property(t *testing.T) {
	g, err := Load("fig22")
	if err != nil {
		t.Fatal(err)
	}
	p, _ := g.Lookup("p")
	q, _ := g.Lookup("q")
	if !analysis.CanShare(g, rights.Read, p, q) {
		t.Error("fig22: can.share(r,p,q) false")
	}
	if got := len(analysis.Islands(g)); got != 3 {
		t.Errorf("fig22 islands = %d", got)
	}
}

func TestFig51Property(t *testing.T) {
	g, err := Load("fig51")
	if err != nil {
		t.Fatal(err)
	}
	x, _ := g.Lookup("x")
	y, _ := g.Lookup("y")
	e, _ := g.Universe().Lookup("e")
	if !analysis.CanShare(g, rights.Write, x, y) {
		t.Error("fig51: write-down not acquirable unrestricted")
	}
	if !analysis.CanShare(g, e, x, y) {
		t.Error("fig51: execute not acquirable")
	}
	if ok, _ := hierarchy.Secure(g); ok {
		t.Error("fig51: should be statically insecure")
	}
}

func TestFig61Property(t *testing.T) {
	g, err := Load("fig61")
	if err != nil {
		t.Fatal(err)
	}
	low, _ := g.Lookup("low")
	secret, _ := g.Lookup("secret")
	d, err := analysis.SynthesizeShare(g, rights.Read, low, secret)
	if err != nil {
		t.Fatal(err)
	}
	if !d.DeJureOnly() {
		t.Error("fig61: breach should need only de jure rules")
	}
}

func TestMilitaryProperty(t *testing.T) {
	g, err := Load("military")
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := g.Lookup("a2")
	b2, _ := g.Lookup("b2")
	bbb1, _ := g.Lookup("bbb1")
	if analysis.CanKnow(g, a2, bbb1) {
		t.Error("military: cross-category flow")
	}
	s := hierarchy.AnalyzeRW(g)
	if s.Comparable(s.LevelOf(a2), s.LevelOf(b2)) {
		t.Error("military: categories comparable")
	}
	if ok, _ := hierarchy.Secure(g); !ok {
		t.Error("military: insecure")
	}
}

func TestWuProperty(t *testing.T) {
	g, err := Load("wu")
	if err != nil {
		t.Fatal(err)
	}
	clerk, _ := g.Lookup("clerk")
	warplan, _ := g.Lookup("warplan")
	memo, _ := g.Lookup("memo")
	// All-corrupt conspiracy leaks the top document (the §2 claim)…
	if !analysis.CanShare(g, rights.Read, clerk, warplan) {
		t.Error("wu: conspiracy cannot leak the warplan")
	}
	// …but it is sharing, not theft: the chairman (sole owner) must act.
	if steal.CanSteal(g, rights.Read, clerk, warplan) {
		t.Error("wu: warplan theft should need the owner")
	}
	// The memo, however, is stealable: the chairman's take authority over
	// the manager lets the conspirators bypass the memo's owner entirely.
	if !steal.CanSteal(g, rights.Read, clerk, memo) {
		t.Error("wu: memo theft not detected")
	}
}
