// Package hierarchy implements §4–5 of the paper: rw-levels and
// rwtg-levels, the `higher` partial order, object classification
// (Theorem 4.5), and the security predicate for hierarchical protection
// graphs (Theorem 5.2).
//
// The de facto flow relation is represented as a step digraph: an edge
// u → v means "u learns v's information in one de facto step". rw-levels
// are the strongly connected components of that digraph; `higher` is the
// reachability order of its condensation (Proposition 4.4: a strict
// partial order). Everything is O(V+E) via Kosaraju's algorithm — the
// alternative, deciding can•know•f pairwise, is quadratic and appears as
// an ablation benchmark.
//
// Two derivation paths exist. AnalyzeRW/AnalyzeRWTG (derive.go) run over
// the graph's frozen CSR snapshot on flat int32 arrays with an optional
// worker pool, budget and probe; AnalyzeRWReference (rwtg.go) is the
// original map-based derivation, retained as the independent oracle for
// the equivalence property tests and the E20 ablation baseline. The
// Engine (engine.go) maintains a Structure incrementally across monotone
// mutations.
package hierarchy

import (
	"fmt"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// Structure is the level decomposition of a protection graph: a partition
// of (a subset of) its vertices into levels plus the `higher` partial order.
type Structure struct {
	g      *graph.Graph
	levels [][]graph.ID
	// of[v] is the level index of vertex v, or -1 when v is not in the
	// structure (dead vertices; objects under rwtg analysis). Indexed by
	// ID — the guard consults it on every rule application, so it is a
	// flat array load, not a map probe.
	of []int32
	// reach[i][j] reports that information can flow from level j to level i
	// (level i knows level j); i is then higher than or equal to j.
	// Invariant: reach[i][i] is false (levels already collapse cycles) and
	// the relation is transitively closed.
	reach [][]bool
}

// stepTargets returns the single-step de facto successors of u: the
// vertices whose information u learns in one step.
func stepTargets(g *graph.Graph, u graph.ID) []graph.ID {
	var out []graph.ID
	uSubj := g.IsSubject(u)
	for _, h := range g.Out(u) {
		// u reads h.Other: explicit read needs an acting subject; an
		// implicit read edge records a flow that already happened.
		if (uSubj && h.Explicit.Has(rights.Read)) || h.Implicit.Has(rights.Read) {
			out = append(out, h.Other)
		}
	}
	for _, h := range g.In(u) {
		// h.Other writes into u.
		if (g.IsSubject(h.Other) && h.Explicit.Has(rights.Write)) || h.Implicit.Has(rights.Write) {
			out = append(out, h.Other)
		}
	}
	return out
}

// AnalyzeRW computes the rw-level structure of g: levels are maximal sets
// of vertices with mutual can•know•f, i.e. strongly connected components of
// the de facto step digraph (Proposition 4.1). It runs the snapshot-backed
// flat-array derivation; see AnalyzeRWObs for the budgeted, instrumented,
// parallel entry point.
func AnalyzeRW(g *graph.Graph) *Structure {
	s, err := AnalyzeRWObs(g, Options{})
	if err != nil {
		panic(err) // unreachable: a nil budget never trips
	}
	return s
}

type frame struct {
	v    graph.ID
	succ []graph.ID
	i    int
}

// computeReach fills reach[i][j] = level i reaches level j in the
// condensation (information flows j → i).
func (s *Structure) computeReach(succ func(graph.ID) []graph.ID) {
	n := len(s.levels)
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	for i, lvl := range s.levels {
		for _, v := range lvl {
			for _, w := range succ(v) {
				if j := s.LevelOf(w); j >= 0 && j != i {
					adj[i][j] = true
				}
			}
		}
	}
	s.reach = make([][]bool, n)
	for i := 0; i < n; i++ {
		s.reach[i] = make([]bool, n)
		queue := []int{i}
		seen := make([]bool, n)
		seen[i] = true
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			for j := range adj[c] {
				if !seen[j] {
					seen[j] = true
					s.reach[i][j] = true
					queue = append(queue, j)
				}
			}
		}
	}
}

// NumLevels returns the number of levels.
func (s *Structure) NumLevels() int { return len(s.levels) }

// Levels returns the level membership lists; index them with LevelOf.
func (s *Structure) Levels() [][]graph.ID { return s.levels }

// LevelOf returns the level index of v, or -1 if v is not in the structure
// (e.g. an object when analysing rwtg-levels, which contain only subjects).
func (s *Structure) LevelOf(v graph.ID) int {
	if v < 0 || int(v) >= len(s.of) {
		return -1
	}
	return int(s.of[v])
}

// SameLevel reports whether two vertices share a level.
func (s *Structure) SameLevel(a, b graph.ID) bool {
	ia, ib := s.LevelOf(a), s.LevelOf(b)
	return ia >= 0 && ia == ib
}

// HigherLevel reports whether level i is strictly higher than level j:
// information flows from j to i but not back.
func (s *Structure) HigherLevel(i, j int) bool {
	if i == j || i < 0 || j < 0 {
		return false
	}
	return s.reach[i][j] && !s.reach[j][i]
}

// Higher reports whether vertex a is strictly higher than vertex b.
func (s *Structure) Higher(a, b graph.ID) bool {
	ia, ib := s.LevelOf(a), s.LevelOf(b)
	return ia >= 0 && ib >= 0 && s.HigherLevel(ia, ib)
}

// Comparable reports whether the two levels are ordered either way.
func (s *Structure) Comparable(i, j int) bool {
	return i == j || s.HigherLevel(i, j) || s.HigherLevel(j, i)
}

// Knows reports whether information can flow from b to a under the
// structure's relation (a is higher than or level with b).
func (s *Structure) Knows(a, b graph.ID) bool {
	ia, ib := s.LevelOf(a), s.LevelOf(b)
	if ia < 0 || ib < 0 {
		return false
	}
	return ia == ib || s.reach[ia][ib]
}

// CheckPartialOrder verifies Proposition 4.4 on this structure: `higher`
// must be irreflexive and transitive. It returns nil when the proposition
// holds (it always should; a non-nil result indicates a bug).
func (s *Structure) CheckPartialOrder() error {
	n := len(s.levels)
	for i := 0; i < n; i++ {
		if s.HigherLevel(i, i) {
			return fmt.Errorf("hierarchy: level %d higher than itself", i)
		}
		for j := 0; j < n; j++ {
			if !s.HigherLevel(i, j) {
				continue
			}
			if s.HigherLevel(j, i) {
				return fmt.Errorf("hierarchy: levels %d and %d mutually higher", i, j)
			}
			for k := 0; k < n; k++ {
				if s.HigherLevel(j, k) && !s.HigherLevel(i, k) {
					return fmt.Errorf("hierarchy: transitivity broken %d>%d>%d", i, j, k)
				}
			}
		}
	}
	return nil
}

// ObjectLevel implements Theorem 4.5's classification rule: an object
// belongs to the lowest rw-level whose subjects have explicit read or write
// access to it. The second result is false when no subject accesses the
// object. "Lowest" is any minimal accessor level; the accessor levels of a
// sensibly-built hierarchy are totally ordered.
func (s *Structure) ObjectLevel(o graph.ID) (int, bool) {
	if !s.g.IsObject(o) {
		return -1, false
	}
	var accessors []int
	seen := make(map[int]bool)
	add := func(v graph.ID) {
		if !s.g.IsSubject(v) {
			return
		}
		if i := s.LevelOf(v); i >= 0 && !seen[i] {
			seen[i] = true
			accessors = append(accessors, i)
		}
	}
	for _, h := range s.g.In(o) {
		if h.Explicit.HasAny(rights.RW) {
			add(h.Other)
		}
	}
	if len(accessors) == 0 {
		return -1, false
	}
	lowest := accessors[0]
	for _, i := range accessors[1:] {
		if s.HigherLevel(lowest, i) {
			lowest = i
		}
	}
	return lowest, true
}

// setLevelOf grows the of array as needed and records v's level.
func (s *Structure) setLevelOf(v graph.ID, idx int32) {
	for int(v) >= len(s.of) {
		s.of = append(s.of, -1)
	}
	s.of[v] = idx
}
