package hierarchy

import (
	"sync"

	"takegrant/internal/budget"
	"takegrant/internal/graph"
	"takegrant/internal/obs"
	"takegrant/internal/rights"
)

// Engine maintains the rw-level Structure of one graph across mutations,
// revision-keyed: it registers as the graph's change recorder, buffers
// the per-revision dirty set, and on Rearm either patches the structure
// in place (monotone mutations — rule applications only ever add vertices
// and rights, which can only merge levels or add order, the same
// contract graph.TGIslands exploits per Lemma 5.1) or rebuilds from
// scratch via the parallel snapshot derivation (destructive mutations:
// sever of an rw right, vertex deletion, implicit clearing, revision
// restore).
//
// Concurrency contract, mirroring the graph itself: mutations — and
// therefore the recorder callback and Rearm/Structure — must be
// serialized by the caller (the service holds its write lock); Secure
// and Stats are safe to call from concurrent readers once mutation
// stops, and Secure's verdict cache is internally locked.
type Engine struct {
	g       *graph.Graph
	workers int

	cur       *Structure
	pending   []graph.Change
	wholesale bool

	stats EngineStats

	secMu    sync.Mutex
	secRev   uint64
	secValid bool
	secOK    bool
	secViol  *Violation
}

// EngineStats counts the engine's maintenance work since creation. The
// JSON tags shape the service's /stats report.
type EngineStats struct {
	// Rebuilds is the number of full from-scratch derivations (including
	// the initial one).
	Rebuilds uint64 `json:"rebuilds"`
	// Patches is the number of Rearm calls answered by in-place patching.
	Patches uint64 `json:"patches"`
	// PatchedEdges / NoopEdges / Merges / Inserts classify the step edges
	// processed by the patcher: already-implied edges are no-ops, edges
	// adding order are transitive inserts, edges closing a cycle merge
	// levels.
	PatchedEdges uint64 `json:"patched_edges"`
	NoopEdges    uint64 `json:"noop_edges"`
	Merges       uint64 `json:"merges"`
	Inserts      uint64 `json:"inserts"`
	// Invalidations counts destructive mutations forcing a rebuild.
	Invalidations uint64 `json:"invalidations"`
	// LastDirty and MaxDirty size the dirty set (buffered changes) at the
	// most recent and largest Rearm.
	LastDirty int `json:"last_dirty"`
	MaxDirty  int `json:"max_dirty"`
	// Workers is the configured worker-pool bound for full rebuilds.
	Workers int `json:"workers"`
}

// NewEngine derives the initial structure of g and attaches the engine as
// g's mutation recorder. workers bounds the rebuild worker pool (0 means
// GOMAXPROCS).
func NewEngine(g *graph.Graph, workers int) *Engine {
	e := &Engine{g: g, workers: workers}
	e.rebuild(nil)
	g.SetRecorder(e.record)
	return e
}

// Detach unregisters the engine from its graph; the current structure
// remains readable but no longer tracks mutations.
func (e *Engine) Detach() { e.g.SetRecorder(nil) }

// record buffers one mutation into the dirty set. Monotone changes queue
// for in-place patching; a destructive change collapses the set to a
// wholesale invalidation. Removals that cannot affect the step digraph
// (revoking t/g, or an explicit r/w held by an object source — objects
// contribute no explicit step) are dropped as no-ops.
func (e *Engine) record(c graph.Change) {
	if !e.Patch(c) {
		e.Invalidate()
	}
}

// Patch implements the derived-index contract (internal/derived): it
// absorbs one effective mutation, buffering monotone deltas for in-place
// patching at the next Rearm, and returns false for the changes that
// force a wholesale rebuild — a destructive mutation, or a removal that
// can shrink the step digraph. Removals that cannot affect it (revoking
// t/g, or an explicit r/w held by an object source — objects contribute
// no explicit step) are absorbed as no-ops. Once the engine is already
// pending a wholesale rebuild every further change is absorbed by it.
// Called under the graph's mutation lock.
func (e *Engine) Patch(c graph.Change) bool {
	if e.wholesale {
		return true
	}
	switch c.Kind {
	case graph.ChangeDestructive:
		return false
	case graph.ChangeRemoveExplicit:
		return !(c.Set.HasAny(rights.RW) && e.g.IsSubject(c.Src))
	case graph.ChangeRemoveImplicit:
		return !c.Set.HasAny(rights.RW)
	default:
		e.pending = append(e.pending, c)
		return true
	}
}

// Invalidate drops the incremental state; the next Rearm re-derives the
// structure from scratch. Implements the derived-index contract; same
// locking contract as Patch.
func (e *Engine) Invalidate() {
	e.wholesale = true
	e.pending = nil
	e.stats.Invalidations++
}

// Name identifies the engine in the derived-index registry.
func (e *Engine) Name() string { return "hierarchy" }

// IndexStats reports the engine's read-side derived-index counters:
// patch-drain rounds served without a rebuild count as hits, wholesale
// re-derivations as misses and rebuilds. (Registry-dispatched patch and
// invalidate totals are counted by the registry itself.)
func (e *Engine) IndexStats() (hits, misses, rebuilds uint64) {
	s := e.Stats()
	return s.Patches, s.Rebuilds, s.Rebuilds
}

// Structure returns the engine's structure for the graph's current
// revision, draining any buffered mutations first. Callers must hold the
// graph's mutation lock (see the concurrency contract above).
func (e *Engine) Structure() *Structure { return e.Rearm(nil) }

// Rearm drains the dirty set — patching in place for monotone deltas,
// rebuilding in parallel for destructive ones — and returns the
// up-to-date structure. The probe receives the rebuild phase spans plus a
// hier_patch span when patching.
func (e *Engine) Rearm(p *obs.Probe) *Structure {
	dirty := len(e.pending)
	if e.wholesale {
		dirty++ // the invalidation itself
	}
	if dirty > 0 {
		e.stats.LastDirty = dirty
		if dirty > e.stats.MaxDirty {
			e.stats.MaxDirty = dirty
		}
	}
	if e.wholesale {
		e.rebuild(p)
		return e.cur
	}
	if len(e.pending) == 0 {
		return e.cur
	}
	sp := p.Span("hier_patch")
	var edges, noops, inserts, merges uint64
	for _, c := range e.pending {
		switch c.Kind {
		case graph.ChangeAddVertex:
			e.cur.addSingleton(c.Src)
		case graph.ChangeAddExplicit:
			// Explicit steps require an acting subject source.
			if e.g.IsSubject(c.Src) {
				if c.Set.Has(rights.Read) {
					edges++
					e.applyStep(c.Src, c.Dst, &noops, &inserts, &merges)
				}
				if c.Set.Has(rights.Write) {
					edges++
					e.applyStep(c.Dst, c.Src, &noops, &inserts, &merges)
				}
			}
		case graph.ChangeAddImplicit:
			// Implicit edges record flows that already happened; no
			// subject guard.
			if c.Set.Has(rights.Read) {
				edges++
				e.applyStep(c.Src, c.Dst, &noops, &inserts, &merges)
			}
			if c.Set.Has(rights.Write) {
				edges++
				e.applyStep(c.Dst, c.Src, &noops, &inserts, &merges)
			}
		}
	}
	e.pending = e.pending[:0]
	e.stats.Patches++
	e.stats.PatchedEdges += edges
	e.stats.NoopEdges += noops
	e.stats.Inserts += inserts
	e.stats.Merges += merges
	sp.Count("edges", int64(edges)).Count("noops", int64(noops)).
		Count("inserts", int64(inserts)).Count("merges", int64(merges)).End()
	return e.cur
}

func (e *Engine) rebuild(p *obs.Probe) {
	s, err := AnalyzeRWObs(e.g, Options{Workers: e.workers, Probe: p})
	if err != nil {
		panic(err) // unreachable: rebuilds run unbudgeted
	}
	e.cur = s
	e.pending = nil
	e.wholesale = false
	e.stats.Rebuilds++
}

func (e *Engine) applyStep(u, v graph.ID, noops, inserts, merges *uint64) {
	switch e.cur.insertStep(u, v) {
	case stepNoop:
		*noops++
	case stepInsert:
		*inserts++
	case stepMerge:
		*merges++
	}
}

// Secure evaluates the §5 predicate against the engine's current
// structure, caching the verdict per revision. Safe for concurrent
// callers once the structure is current (i.e. after Rearm under the
// mutation lock); budget exhaustion aborts with an error and is not
// cached.
func (e *Engine) Secure(p *obs.Probe, b *budget.Budget) (bool, *Violation, error) {
	rev := e.g.Revision()
	e.secMu.Lock()
	if e.secValid && e.secRev == rev {
		ok, v := e.secOK, e.secViol
		e.secMu.Unlock()
		return ok, v, nil
	}
	e.secMu.Unlock()
	ok, v, err := secureWith(e.g, e.cur, Options{Workers: e.workers, Budget: b, Probe: p})
	if err != nil {
		return false, nil, err
	}
	e.secMu.Lock()
	e.secRev, e.secValid, e.secOK, e.secViol = rev, true, ok, v
	e.secMu.Unlock()
	return ok, v, nil
}

// Stats returns a copy of the engine's maintenance counters.
func (e *Engine) Stats() EngineStats {
	st := e.stats
	st.Workers = Options{Workers: e.workers}.workers()
	return st
}

// Dirty returns the number of buffered changes awaiting the next Rearm
// (treating a wholesale invalidation as one change).
func (e *Engine) Dirty() int {
	if e.wholesale {
		return 1
	}
	return len(e.pending)
}

// ---- in-place structure patching ----

type stepOutcome uint8

const (
	stepNoop stepOutcome = iota
	stepInsert
	stepMerge
)

// addSingleton appends a fresh one-vertex level for v (no order relative
// to anything yet). No-op if v already has a level.
func (s *Structure) addSingleton(v graph.ID) {
	if s.LevelOf(v) >= 0 {
		return
	}
	idx := len(s.levels)
	s.levels = append(s.levels, []graph.ID{v})
	s.setLevelOf(v, int32(idx))
	for i := range s.reach {
		s.reach[i] = append(s.reach[i], false)
	}
	s.reach = append(s.reach, make([]bool, idx+1))
}

// insertStep patches the structure for a new step edge u → v (u learns
// v's information in one de facto step). Monotonicity is the whole trick:
// an added edge can only coarsen the partition or extend reachability.
// Three cases, with reach kept transitively closed throughout:
//
//   - already implied (same level, or level(u) reaches level(v)): no-op;
//   - new order, no cycle: Italiano-style transitive insert — every level
//     reaching u's level absorbs v's row, O(L²) worst case;
//   - cycle closed (level(v) already reached level(u)): merge u's level,
//     v's level and every level between them (reach[j][k] && reach[k][i])
//     into one, then renumber — exactly the SCC coarsening Lemma 5.1
//     style monotone reasoning predicts.
func (s *Structure) insertStep(u, v graph.ID) stepOutcome {
	// Defensive: unknown vertices get singleton levels (normally the
	// AddVertex change precedes any edge mentioning it).
	if s.LevelOf(u) < 0 {
		s.addSingleton(u)
	}
	if s.LevelOf(v) < 0 {
		s.addSingleton(v)
	}
	i, j := s.LevelOf(u), s.LevelOf(v)
	if i == j || s.reach[i][j] {
		return stepNoop
	}
	if !s.reach[j][i] {
		// Transitive insert: levels a with a == i or reach[a][i] now reach
		// j and everything j reaches. No cycle can arise: reach[j][x] with
		// reach[x][i] would imply reach[j][i].
		rowJ := s.reach[j]
		for a := range s.reach {
			if a != i && !s.reach[a][i] {
				continue
			}
			row := s.reach[a]
			row[j] = true
			for k, r := range rowJ {
				if r {
					row[k] = true
				}
			}
			row[a] = false // preserve the irreflexivity invariant
		}
		return stepInsert
	}
	// Cycle merge: M = {i, j} ∪ {k : reach[j][k] && reach[k][i]}.
	n := len(s.levels)
	inM := make([]bool, n)
	inM[i], inM[j] = true, true
	for k := 0; k < n; k++ {
		if s.reach[j][k] && s.reach[k][i] {
			inM[k] = true
		}
	}
	// Union row of the merged level. Every member m of M satisfies
	// reach[j][m] or m == j, so reach[j] already dominates each member's
	// row by transitivity; union anyway for robustness.
	union := make([]bool, n)
	for k := 0; k < n; k++ {
		if !inM[k] {
			continue
		}
		for x, r := range s.reach[k] {
			if r {
				union[x] = true
			}
		}
	}
	// Levels reaching any member (equivalently, reaching i) absorb the
	// union row; membership columns are handled by the renumbering below.
	for a := 0; a < n; a++ {
		if inM[a] || !s.reach[a][i] {
			continue
		}
		row := s.reach[a]
		for x, r := range union {
			if r {
				row[x] = true
			}
		}
		row[a] = false
	}
	// Renumber: the merged level keeps the smallest member index for
	// stability; survivors compact in order.
	t := -1
	for k := 0; k < n; k++ {
		if inM[k] {
			t = k
			break
		}
	}
	newIdx := make([]int32, n)
	cnt := int32(0)
	for k := 0; k < n; k++ {
		if inM[k] && k != t {
			continue
		}
		newIdx[k] = cnt
		cnt++
	}
	tNew := newIdx[t]
	for k := 0; k < n; k++ {
		if inM[k] {
			newIdx[k] = tNew
		}
	}
	nn := int(cnt)
	newLevels := make([][]graph.ID, nn)
	newReach := make([][]bool, nn)
	for k := 0; k < n; k++ {
		if inM[k] && k != t {
			continue
		}
		nk := newIdx[k]
		var srcRow []bool
		if k == t {
			srcRow = union
			// The merged level's members: concatenation of all of M.
			var members []graph.ID
			for m := 0; m < n; m++ {
				if inM[m] {
					members = append(members, s.levels[m]...)
				}
			}
			sortIDs(members)
			newLevels[nk] = members
		} else {
			srcRow = s.reach[k]
			newLevels[nk] = s.levels[k]
		}
		row := make([]bool, nn)
		for x, r := range srcRow {
			if r {
				row[newIdx[x]] = true
			}
		}
		row[nk] = false // member-to-member flow is intra-level now
		newReach[nk] = row
	}
	s.levels = newLevels
	s.reach = newReach
	for idx, lvl := range s.levels {
		for _, v := range lvl {
			s.of[v] = int32(idx)
		}
	}
	return stepMerge
}

// EquivalentTo reports whether two structures describe the same level
// partition and the same `higher` order, up to renumbering of level
// indices — the equivalence the incremental ≡ from-scratch property tests
// assert.
func (s *Structure) EquivalentTo(o *Structure) bool {
	if len(s.levels) != len(o.levels) {
		return false
	}
	perm := make([]int, len(s.levels))
	for i, lvl := range s.levels {
		oi := o.LevelOf(lvl[0])
		if oi < 0 || len(o.levels[oi]) != len(lvl) {
			return false
		}
		for _, v := range lvl {
			if o.LevelOf(v) != oi {
				return false
			}
		}
		perm[i] = oi
	}
	for i := range s.levels {
		for j := range s.levels {
			if s.reach[i][j] != o.reach[perm[i]][perm[j]] {
				return false
			}
		}
	}
	return true
}
