package hierarchy

import (
	"fmt"
	"sort"
	"strings"

	"takegrant/internal/graph"
)

// Hasse renders the level structure's covering relation as indented text:
// one line per level (members listed), children indented beneath their
// covers, maximal levels first. Incomparable branches appear as siblings.
// Levels reachable from several parents are printed once and referenced
// thereafter.
func (s *Structure) Hasse() string {
	n := len(s.levels)
	// covers[i] lists j when i > j with no k between.
	covers := make([][]int, n)
	isMax := make([]bool, n)
	for i := range isMax {
		isMax[i] = true
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !s.HigherLevel(i, j) {
				continue
			}
			isMax[j] = false
			direct := true
			for k := 0; k < n; k++ {
				if k != i && k != j && s.HigherLevel(i, k) && s.HigherLevel(k, j) {
					direct = false
					break
				}
			}
			if direct {
				covers[i] = append(covers[i], j)
			}
		}
	}
	for i := range covers {
		sort.Ints(covers[i])
	}
	var b strings.Builder
	printed := make([]bool, n)
	var emit func(level, depth int)
	emit = func(level, depth int) {
		indent := strings.Repeat("  ", depth)
		if printed[level] {
			fmt.Fprintf(&b, "%s└ %s (see above)\n", indent, s.levelLabel(level))
			return
		}
		printed[level] = true
		fmt.Fprintf(&b, "%s%s\n", indent, s.levelLabel(level))
		for _, c := range covers[level] {
			emit(c, depth+1)
		}
	}
	for i := 0; i < n; i++ {
		if isMax[i] {
			emit(i, 0)
		}
	}
	return b.String()
}

func (s *Structure) levelLabel(i int) string {
	names := make([]string, 0, len(s.levels[i]))
	for _, v := range s.levels[i] {
		names = append(names, s.g.Name(v))
	}
	// Sorted members: the rendering must not depend on internal vertex
	// order, which differs between a node that built its graph
	// incrementally and one that bootstrapped from a canonical snapshot.
	sort.Strings(names)
	return fmt.Sprintf("level %d {%s}", i, strings.Join(names, ", "))
}

// LevelNames returns the member names of a level, sorted; a convenience
// for reports.
func (s *Structure) LevelNames(i int) []string {
	if i < 0 || i >= len(s.levels) {
		return nil
	}
	names := make([]string, 0, len(s.levels[i]))
	for _, v := range s.levels[i] {
		names = append(names, s.g.Name(v))
	}
	sort.Strings(names)
	return names
}

// Minimal and Maximal return the extremal level indexes of the order —
// the paper notes any structure has at least one of each, but possibly
// several (no unique top or bottom in a partial order).
func (s *Structure) Minimal() []int { return s.extremal(false) }

// Maximal returns the maximal level indexes.
func (s *Structure) Maximal() []int { return s.extremal(true) }

func (s *Structure) extremal(max bool) []int {
	n := len(s.levels)
	var out []int
	for i := 0; i < n; i++ {
		ext := true
		for j := 0; j < n; j++ {
			if max && s.HigherLevel(j, i) {
				ext = false
				break
			}
			if !max && s.HigherLevel(i, j) {
				ext = false
				break
			}
		}
		if ext {
			out = append(out, i)
		}
	}
	return out
}

// VertexLevelName formats a vertex with its level for diagnostics.
func (s *Structure) VertexLevelName(v graph.ID) string {
	if !s.g.Valid(v) {
		return fmt.Sprintf("#%d", v)
	}
	return fmt.Sprintf("%s@L%d", s.g.Name(v), s.LevelOf(v))
}
