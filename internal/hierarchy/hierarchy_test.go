package hierarchy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"takegrant/internal/analysis"
	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

func TestAnalyzeRWSimpleLevels(t *testing.T) {
	// Two level groups: {a,b,bb} below {h,hb}; h reads bb.
	g := graph.New(nil)
	a := g.MustSubject("a")
	b := g.MustSubject("b")
	bb := g.MustObject("bb")
	h := g.MustSubject("h")
	hb := g.MustObject("hb")
	g.AddExplicit(a, bb, rights.RW)
	g.AddExplicit(b, bb, rights.RW)
	g.AddExplicit(h, hb, rights.RW)
	g.AddExplicit(h, bb, rights.R)

	s := AnalyzeRW(g)
	if !s.SameLevel(a, b) || !s.SameLevel(a, bb) {
		t.Error("low level not grouped")
	}
	if !s.SameLevel(h, hb) {
		t.Error("high level not grouped")
	}
	if s.SameLevel(a, h) {
		t.Error("levels merged")
	}
	if !s.Higher(h, a) || s.Higher(a, h) {
		t.Error("order wrong")
	}
	if !s.Knows(h, a) || s.Knows(a, h) {
		t.Error("Knows wrong")
	}
	if err := s.CheckPartialOrder(); err != nil {
		t.Error(err)
	}
}

func TestStepTargetsGuards(t *testing.T) {
	g := graph.New(nil)
	o := g.MustObject("o")
	y := g.MustObject("y")
	s := g.MustSubject("s")
	g.AddExplicit(o, y, rights.R) // object cannot exercise read
	g.AddExplicit(s, y, rights.R)
	if got := stepTargets(g, o); len(got) != 0 {
		t.Errorf("object read counted: %v", got)
	}
	if got := stepTargets(g, s); len(got) != 1 || got[0] != y {
		t.Errorf("subject read missed: %v", got)
	}
	// Implicit edges always count.
	g.AddImplicit(o, y, rights.R)
	if got := stepTargets(g, o); len(got) != 1 {
		t.Errorf("implicit read missed: %v", got)
	}
}

func TestLinearClassification(t *testing.T) {
	c, err := Linear(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := AnalyzeRW(c.G)
	// Exactly 4 levels.
	if s.NumLevels() != 4 {
		t.Fatalf("levels = %d", s.NumLevels())
	}
	// Theorem 4.3: can.know.f(lk, lj) ⇔ k ≥ j.
	for i := 1; i <= 4; i++ {
		for j := 1; j <= 4; j++ {
			li := c.Members[levelName(i)][0]
			lj := c.Members[levelName(j)][0]
			want := i >= j
			if got := analysis.CanKnowF(c.G, li, lj); got != want {
				t.Errorf("can.know.f(L%d, L%d) = %v want %v", i, j, got, want)
			}
			if got := s.Knows(li, lj); got != want {
				t.Errorf("structure Knows(L%d, L%d) = %v want %v", i, j, got, want)
			}
		}
	}
	if err := s.CheckPartialOrder(); err != nil {
		t.Error(err)
	}
}

func levelName(i int) string {
	return map[int]string{1: "L1", 2: "L2", 3: "L3", 4: "L4"}[i]
}

func TestLinearConspiracyImmunity(t *testing.T) {
	// Theorem 4.3's punchline: even with every subject corrupt (all rules
	// available), a lower subject can never know higher information.
	c, err := Linear(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	low := c.Members["L1"][0]
	high := c.Members["L3"][0]
	highBB := c.Bulletin["L3"]
	if analysis.CanKnow(c.G, low, high) || analysis.CanKnow(c.G, low, highBB) {
		t.Error("lower level can know higher information")
	}
	if !analysis.CanKnow(c.G, high, low) {
		t.Error("higher level cannot know lower information")
	}
	if ok, v := Secure(c.G); !ok {
		t.Errorf("linear classification insecure: %v", v)
	}
	if ok, v := StrictSecure(c.G); !ok {
		t.Errorf("linear classification not strictly secure: %v", v)
	}
	if !SecureByLinks(c.G) {
		t.Error("link check disagrees")
	}
}

func TestMilitaryLattice(t *testing.T) {
	c, err := Military(3, []string{"A", "B"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := AnalyzeRW(c.G)
	if err := s.CheckPartialOrder(); err != nil {
		t.Fatal(err)
	}
	a3 := c.Members["A3"][0]
	a1 := c.Members["A1"][0]
	b3 := c.Members["B3"][0]
	b1 := c.Members["B1"][0]
	u := c.Members["U"][0]
	// Within a category: ordered.
	if !s.Higher(a3, a1) || !s.Higher(b3, b1) {
		t.Error("authority order broken")
	}
	// Across categories: incomparable.
	if s.Higher(a3, b1) || s.Higher(b3, a1) || s.Higher(a1, b1) {
		t.Error("categories comparable")
	}
	if s.Comparable(s.LevelOf(a3), s.LevelOf(b3)) {
		t.Error("A3 and B3 should be incomparable")
	}
	// Everyone dominates unclassified.
	for _, v := range []graph.ID{a1, a3, b1, b3} {
		if !s.Higher(v, u) {
			t.Errorf("%v not higher than U", v)
		}
	}
	// No cross-category information flow.
	if analysis.CanKnow(c.G, a3, b1) || analysis.CanKnow(c.G, b3, a1) {
		t.Error("cross-category flow")
	}
	// "the model makes no assumptions about their being able to
	// communicate": two subjects with the same classification in different
	// categories cannot exchange information.
	if analysis.CanKnowF(c.G, a1, b1) || analysis.CanKnowF(c.G, b1, a1) {
		t.Error("incomparable same-rank levels communicate")
	}
	if ok, v := Secure(c.G); !ok {
		t.Errorf("military lattice insecure: %v", v)
	}
}

func TestObjectLevel(t *testing.T) {
	c, err := Linear(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := AnalyzeRW(c.G)
	// A bulletin belongs to its own level even though higher levels read it.
	lvl, ok := s.ObjectLevel(c.Bulletin["L1"])
	if !ok || lvl != s.LevelOf(c.Members["L1"][0]) {
		t.Errorf("bulletin L1 classified at level %d", lvl)
	}
	// A document written only by L3 belongs to L3's level.
	doc := c.G.MustObject("doc")
	c.G.AddExplicit(c.Members["L3"][0], doc, rights.RW)
	s = AnalyzeRW(c.G)
	lvl, ok = s.ObjectLevel(doc)
	if !ok || lvl != s.LevelOf(c.Members["L3"][0]) {
		t.Errorf("doc classified at level %d", lvl)
	}
	// Theorem 4.5: no lower subject can know it.
	if analysis.CanKnow(c.G, c.Members["L1"][0], doc) {
		t.Error("L1 knows an L3 document")
	}
	// Unreferenced objects have no level.
	orphan := c.G.MustObject("orphan")
	s = AnalyzeRW(c.G)
	if _, ok := s.ObjectLevel(orphan); ok {
		t.Error("orphan classified")
	}
	if _, ok := s.ObjectLevel(c.Members["L1"][0]); ok {
		t.Error("subject classified as object")
	}
}

func TestObjectLevelLowestWins(t *testing.T) {
	// Document readable by L1 and L3: Theorem 4.5 assigns the LOWEST level.
	c, err := Linear(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	doc := c.G.MustObject("doc")
	c.G.AddExplicit(c.Members["L3"][0], doc, rights.R)
	c.G.AddExplicit(c.Members["L1"][0], doc, rights.RW)
	s := AnalyzeRW(c.G)
	lvl, ok := s.ObjectLevel(doc)
	if !ok || lvl != s.LevelOf(c.Members["L1"][0]) {
		t.Errorf("doc level = %d, want L1's", lvl)
	}
}

func TestRWTGLevelsMatchIslands(t *testing.T) {
	// Lemma 5.1: islands live inside single rwtg-levels.
	g := graph.New(nil)
	a := g.MustSubject("a")
	b := g.MustSubject("b")
	cc := g.MustSubject("c")
	g.AddExplicit(a, b, rights.T)
	g.AddExplicit(b, cc, rights.G)
	s := AnalyzeRWTG(g)
	if island, ok := IslandsWithinLevels(g, s); !ok {
		t.Errorf("island split across levels: %v", island)
	}
	if !s.SameLevel(a, b) || !s.SameLevel(b, cc) {
		t.Error("island not one rwtg-level")
	}
}

func TestRWTGOnlySubjects(t *testing.T) {
	g := graph.New(nil)
	s1 := g.MustSubject("s1")
	o := g.MustObject("o")
	g.AddExplicit(s1, o, rights.RW)
	s := AnalyzeRWTG(g)
	if s.LevelOf(o) != -1 {
		t.Error("object in rwtg-level")
	}
	if s.LevelOf(s1) == -1 {
		t.Error("subject missing from rwtg-levels")
	}
}

func TestInsecureGraphDetected(t *testing.T) {
	// Figure 5.1 shape: a take edge from a lower-level subject to a
	// higher-level one lets the lower subject pull read rights down.
	c, err := Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	low := c.Members["L1"][0]
	high := c.Members["L2"][0]
	c.G.AddExplicit(low, high, rights.T) // the offending de jure edge
	if ok, _ := Secure(c.G); ok {
		t.Error("breachable graph declared secure")
	}
	if SecureByLinks(c.G) {
		t.Error("link check missed the t edge")
	}
	// Confirm the concrete breach: low can know the high bulletin.
	if !analysis.CanKnow(c.G, low, c.Bulletin["L2"]) {
		t.Error("expected can.know breach not present")
	}
	if analysis.CanKnowF(c.G, low, c.Bulletin["L2"]) {
		t.Error("breach should need de jure rules")
	}
}

func TestSecureAgreementOnRandomGraphs(t *testing.T) {
	// One-way implication: a link violation always witnesses a strict
	// security failure.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(nil)
		n := 3 + rng.Intn(6)
		for i := 0; i < n; i++ {
			name := "v" + string(rune('a'+i))
			if rng.Intn(3) > 0 {
				g.MustSubject(name)
			} else {
				g.MustObject(name)
			}
		}
		vs := g.Vertices()
		for i := 0; i < 2*n; i++ {
			a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
			if a != b {
				g.AddExplicit(a, b, rights.Set(1+rng.Intn(15)))
			}
		}
		if !SecureByLinks(g) {
			if ok, _ := StrictSecure(g); ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build([]Level{{Name: "A", Subjects: 0}}); err == nil {
		t.Error("zero subjects accepted")
	}
	if _, err := Build([]Level{{Name: "A", Subjects: 1}, {Name: "A", Subjects: 1}}); err == nil {
		t.Error("duplicate level accepted")
	}
	if _, err := Build([]Level{{Name: "A", Subjects: 1, Below: []string{"Z"}}}); err == nil {
		t.Error("unknown Below accepted")
	}
	if _, err := Linear(0, 1); err == nil {
		t.Error("empty linear accepted")
	}
	if _, err := Military(0, nil, 1); err == nil {
		t.Error("empty lattice accepted")
	}
}

func TestPartialOrderOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(nil)
		n := 2 + rng.Intn(8)
		for i := 0; i < n; i++ {
			name := "v" + string(rune('a'+i))
			if rng.Intn(2) == 0 {
				g.MustSubject(name)
			} else {
				g.MustObject(name)
			}
		}
		vs := g.Vertices()
		for i := 0; i < 3*n; i++ {
			a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
			if a != b {
				g.AddExplicit(a, b, rights.Set(1+rng.Intn(15)))
			}
		}
		s := AnalyzeRW(g)
		if err := s.CheckPartialOrder(); err != nil {
			return false
		}
		// Levels must partition the vertices.
		total := 0
		for _, l := range s.Levels() {
			total += len(l)
		}
		return total == len(vs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestRWLevelsMatchPairwiseCanKnowF(t *testing.T) {
	// The SCC construction must agree with pairwise can•know•f (the
	// quadratic reference implementation) on implicit-free graphs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(nil)
		n := 2 + rng.Intn(6)
		for i := 0; i < n; i++ {
			name := "v" + string(rune('a'+i))
			if rng.Intn(2) == 0 {
				g.MustSubject(name)
			} else {
				g.MustObject(name)
			}
		}
		vs := g.Vertices()
		for i := 0; i < 2*n; i++ {
			a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
			if a != b {
				g.AddExplicit(a, b, rights.Set(1+rng.Intn(15)))
			}
		}
		s := AnalyzeRW(g)
		for _, a := range vs {
			for _, b := range vs {
				same := analysis.CanKnowF(g, a, b) && analysis.CanKnowF(g, b, a)
				if same != s.SameLevel(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
