package hierarchy

import (
	"sort"

	"takegrant/internal/analysis"
	"takegrant/internal/graph"
)

// AnalyzeRWTG computes the rwtg-level structure: maximal sets of subjects
// with mutual can•know (§5). Levels contain only subjects; LevelOf returns
// -1 for objects. See AnalyzeRWTGObs for the budgeted, instrumented,
// parallel entry point.
func AnalyzeRWTG(g *graph.Graph) *Structure {
	s, err := AnalyzeRWTGObs(g, Options{})
	if err != nil {
		panic(err) // unreachable: a nil budget never trips
	}
	return s
}

// AnalyzeRWReference is the original sequential map-based rw-level
// derivation, retained verbatim as an independent oracle: the engine
// equivalence property tests compare the flat-array and incremental paths
// against it, and experiment E20 uses it as the pre-optimization ablation
// baseline.
func AnalyzeRWReference(g *graph.Graph) *Structure {
	succ := func(u graph.ID) []graph.ID { return stepTargets(g, u) }
	s := sccOf(g, g.Vertices(), succ)
	s.computeReach(succ)
	return s
}

// sccOf runs Kosaraju over an arbitrary successor function restricted to
// the given vertex set.
func sccOf(g *graph.Graph, vs []graph.ID, succ func(graph.ID) []graph.ID) *Structure {
	visited := make(map[graph.ID]bool, len(vs))
	order := make([]graph.ID, 0, len(vs))
	var stack []frame
	for _, v := range vs {
		if visited[v] {
			continue
		}
		stack = append(stack[:0], frame{v: v})
		visited[v] = true
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.succ == nil {
				f.succ = succ(f.v)
			}
			advanced := false
			for f.i < len(f.succ) {
				w := f.succ[f.i]
				f.i++
				if !visited[w] {
					visited[w] = true
					stack = append(stack, frame{v: w})
					advanced = true
					break
				}
			}
			if !advanced {
				order = append(order, stack[len(stack)-1].v)
				stack = stack[:len(stack)-1]
			}
		}
	}
	rev := make(map[graph.ID][]graph.ID, len(vs))
	for _, u := range vs {
		for _, v := range succ(u) {
			rev[v] = append(rev[v], u)
		}
	}
	s := &Structure{g: g}
	s.of = make([]int32, g.Cap())
	for i := range s.of {
		s.of[i] = -1
	}
	done := func(v graph.ID) bool { return s.of[v] >= 0 }
	for i := len(order) - 1; i >= 0; i-- {
		root := order[i]
		if done(root) {
			continue
		}
		idx := int32(len(s.levels))
		comp := []graph.ID{root}
		s.of[root] = idx
		for head := 0; head < len(comp); head++ {
			for _, u := range rev[comp[head]] {
				if !done(u) {
					s.of[u] = idx
					comp = append(comp, u)
				}
			}
		}
		sort.Slice(comp, func(a, b int) bool { return comp[a] < comp[b] })
		s.levels = append(s.levels, comp)
	}
	return s
}

// IslandsWithinLevels verifies Lemma 5.1 on a graph: every island must be
// contained in exactly one rwtg-level. It returns the offending island, if
// any (there never should be one).
func IslandsWithinLevels(g *graph.Graph, s *Structure) ([]graph.ID, bool) {
	for _, island := range analysis.Islands(g) {
		lvl := s.LevelOf(island[0])
		for _, v := range island[1:] {
			if s.LevelOf(v) != lvl {
				return island, false
			}
		}
	}
	return nil, true
}
