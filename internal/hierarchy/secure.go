package hierarchy

import (
	"fmt"

	"takegrant/internal/analysis"
	"takegrant/internal/graph"
)

// A Violation is a witnessed breach of the hierarchical security policy:
// information reachable by a vertex the de facto structure places strictly
// below its source.
type Violation struct {
	// Lower can come to know Upper's information via can•know even though
	// Lower sits strictly below Upper in the de facto (rw) order.
	Lower, Upper graph.ID
}

func (v Violation) String() string {
	return fmt.Sprintf("lower vertex %d can know higher vertex %d", v.Lower, v.Upper)
}

// Secure decides the paper's §5 security predicate: G is secure iff for
// every pair x lower than y (in the de facto rw order), can•know(x, y, G)
// is false. The de jure rules must not let any vertex — regardless of how
// many subjects conspire — learn information classified above it.
//
// The sweep runs one bulk can•know closure per vertex — subjects and
// objects uniformly (can•know(x, y) holds iff y is in x's closure), which
// replaced the former Θ(V²) object × vertex pairwise scan. See SecureObs
// for the budgeted, instrumented, parallel entry point.
//
// The returned violation (if any) is a witness pair.
func Secure(g *graph.Graph) (bool, *Violation) {
	ok, v, err := SecureObs(g, Options{})
	if err != nil {
		panic(err) // unreachable: a nil budget never trips
	}
	return ok, v
}

// StrictSecure is the stronger predicate: the de jure rules must add no
// information flow at all beyond the de facto structure — can•know must
// coincide with can•know•f on every pair. This also rejects flows between
// incomparable levels (the military-lattice reading of security), which
// the paper's definition — phrased only for ordered pairs — permits.
// See StrictSecureObs for the budgeted, instrumented, parallel entry
// point.
func StrictSecure(g *graph.Graph) (bool, *Violation) {
	ok, v, err := StrictSecureObs(g, Options{})
	if err != nil {
		panic(err) // unreachable: a nil budget never trips
	}
	return ok, v
}

// LinkViolation is a bridge or connection that crosses rwtg-levels in a
// way the de facto structure does not sanction — the operational content
// of Theorem 5.2.
type LinkViolation struct {
	From, To graph.ID // subjects; the link lets From learn To's information
}

func (lv LinkViolation) String() string {
	return fmt.Sprintf("link lets %d learn %d without de facto sanction", lv.From, lv.To)
}

// LinkViolations implements the check behind Theorem 5.2: it returns every
// subject pair joined by a bridge or connection (word in B ∪ C) whose
// information flow the de facto structure does not already allow. The
// graph is secure iff no such link exists: each link would realise a
// can•know flow outside the rw order.
func LinkViolations(g *graph.Graph) []LinkViolation {
	var out []LinkViolation
	for _, u := range g.Subjects() {
		for _, v := range g.Subjects() {
			if u == v {
				continue
			}
			if _, linked := analysis.LinkBetween(g, u, v); !linked {
				continue
			}
			// A link (bridge or connection) from u to v lets u learn v;
			// a bridge additionally lets v learn u, but that pair shows
			// up when scanning from v.
			if !analysis.CanKnowF(g, u, v) {
				out = append(out, LinkViolation{From: u, To: v})
			}
		}
	}
	return out
}

// SecureByLinks is Theorem 5.2's characterisation: secure iff no bridges
// or connections cross rwtg-levels beyond the de facto order. It must
// agree with Secure on subject-breach graphs; the benchmark suite
// cross-checks the two.
func SecureByLinks(g *graph.Graph) bool {
	return len(LinkViolations(g)) == 0
}
