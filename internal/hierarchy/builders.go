package hierarchy

import (
	"fmt"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// Classification builders: executable versions of the paper's Figures
// 4.1(b) and 4.2(b). Each security level becomes a set of subjects sharing
// a bulletin object (mutual read/write gives the mutual can•know•f that
// makes them one rw-level), and each ordering edge Lhigh > Llow becomes
// read access from Lhigh's subjects to Llow's bulletin — information can
// then flow up but never down. No take or grant edges exist anywhere, so
// Theorem 4.3 applies: even fully corrupt subjects cannot move information
// downward.

// Level describes one classification level to build.
type Level struct {
	// Name labels the level; vertex names derive from it.
	Name string
	// Subjects is how many subject vertices the level holds (≥ 1).
	Subjects int
	// Below lists the names of levels strictly below this one (its direct
	// dominated levels in the classification order).
	Below []string
}

// Classification is a built hierarchy: the graph plus name → vertex maps.
type Classification struct {
	G *graph.Graph
	// Members maps a level name to its subject vertices.
	Members map[string][]graph.ID
	// Bulletin maps a level name to its shared bulletin object.
	Bulletin map[string]graph.ID
	// Order lists the levels in construction order.
	Order []string
}

// Build constructs a protection graph for an arbitrary classification
// partial order.
func Build(levels []Level) (*Classification, error) {
	g := graph.New(nil)
	c := &Classification{
		G:        g,
		Members:  make(map[string][]graph.ID),
		Bulletin: make(map[string]graph.ID),
	}
	for _, l := range levels {
		if l.Subjects < 1 {
			return nil, fmt.Errorf("hierarchy: level %q needs at least one subject", l.Name)
		}
		if _, dup := c.Bulletin[l.Name]; dup {
			return nil, fmt.Errorf("hierarchy: duplicate level %q", l.Name)
		}
		b, err := g.AddObject("bb_" + l.Name)
		if err != nil {
			return nil, err
		}
		c.Bulletin[l.Name] = b
		c.Order = append(c.Order, l.Name)
		for i := 0; i < l.Subjects; i++ {
			s, err := g.AddSubject(fmt.Sprintf("%s_s%d", l.Name, i+1))
			if err != nil {
				return nil, err
			}
			// Members of a level share its bulletin both ways.
			if err := g.AddExplicit(s, b, rights.RW); err != nil {
				return nil, err
			}
			c.Members[l.Name] = append(c.Members[l.Name], s)
		}
	}
	for _, l := range levels {
		for _, lo := range l.Below {
			lb, ok := c.Bulletin[lo]
			if !ok {
				return nil, fmt.Errorf("hierarchy: level %q references unknown level %q", l.Name, lo)
			}
			// Higher-level subjects read the lower bulletin: upward flow.
			for _, s := range c.Members[l.Name] {
				if err := g.AddExplicit(s, lb, rights.R); err != nil {
					return nil, err
				}
			}
		}
	}
	return c, nil
}

// Linear builds the paper's Figure 4.1: a linear classification with n
// levels L1 < L2 < … < Ln, each holding the given number of subjects.
func Linear(n, subjectsPerLevel int) (*Classification, error) {
	if n < 1 {
		return nil, fmt.Errorf("hierarchy: need at least one level")
	}
	levels := make([]Level, n)
	for i := range levels {
		levels[i] = Level{Name: fmt.Sprintf("L%d", i+1), Subjects: subjectsPerLevel}
		if i > 0 {
			// A linear order only needs the covering edge; reads compose
			// transitively through the de facto rules.
			levels[i].Below = []string{levels[i-1].Name}
		}
	}
	return Build(levels)
}

// Military builds the paper's Figure 4.2: the military classification
// lattice. Levels are (authority, category) pairs with authorities
// 0..numAuthorities-1 (unclassified … top secret) and one category name
// per compartment; (a1, c) < (a2, c) when a1 < a2, and levels in different
// categories are incomparable except through the shared authority-0 level
// "U" (unclassified), which sits below every category's lowest level.
func Military(numAuthorities int, categories []string, subjectsPerLevel int) (*Classification, error) {
	if numAuthorities < 1 || len(categories) == 0 {
		return nil, fmt.Errorf("hierarchy: empty lattice")
	}
	var levels []Level
	levels = append(levels, Level{Name: "U", Subjects: subjectsPerLevel})
	for _, cat := range categories {
		for a := 1; a <= numAuthorities; a++ {
			l := Level{Name: fmt.Sprintf("%s%d", cat, a), Subjects: subjectsPerLevel}
			if a == 1 {
				l.Below = []string{"U"}
			} else {
				l.Below = []string{fmt.Sprintf("%s%d", cat, a-1)}
			}
			levels = append(levels, l)
		}
	}
	return Build(levels)
}
