package hierarchy

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"takegrant/internal/budget"
	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// buildRandomGraph builds a small random protection graph with nv
// vertices and up to ne labelled edges.
func buildRandomGraph(rng *rand.Rand, nv, ne int) *graph.Graph {
	g := graph.New(nil)
	for i := 0; i < nv; i++ {
		name := fmt.Sprintf("v%d", i)
		if rng.Intn(2) == 0 {
			g.MustSubject(name)
		} else {
			g.MustObject(name)
		}
	}
	vs := g.Vertices()
	for i := 0; i < ne; i++ {
		a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
		if a == b {
			continue
		}
		set := rights.Set(1 + rng.Intn(15))
		if rng.Intn(4) == 0 {
			g.AddImplicit(a, b, set.Intersect(rights.RW))
		} else {
			g.AddExplicit(a, b, set)
		}
	}
	return g
}

// mutate applies one random mutation to g; monotone with probability ~5/6,
// destructive otherwise.
func mutate(g *graph.Graph, rng *rand.Rand, step int) {
	vs := g.Vertices()
	switch rng.Intn(12) {
	case 0: // create
		name := fmt.Sprintf("n%d", step)
		if rng.Intn(2) == 0 {
			g.MustSubject(name)
		} else {
			g.MustObject(name)
		}
	case 1, 2, 3, 4, 5, 6: // monotone explicit add (take/grant/create-like)
		if len(vs) < 2 {
			return
		}
		a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
		if a != b {
			g.AddExplicit(a, b, rights.Set(1+rng.Intn(15)))
		}
	case 7, 8: // monotone implicit add (post/spy/find/pass-like)
		if len(vs) < 2 {
			return
		}
		a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
		if a != b {
			if rng.Intn(2) == 0 {
				g.AddImplicit(a, b, rights.R)
			} else {
				g.AddImplicit(a, b, rights.W)
			}
		}
	case 9: // rw-irrelevant revocation (t/g only): must be a fast no-op
		if len(vs) < 2 {
			return
		}
		a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
		if a != b {
			g.RemoveExplicit(a, b, rights.TG)
		}
	case 10: // destructive: sever an rw right
		if len(vs) < 2 {
			return
		}
		a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
		if a != b {
			g.RemoveExplicit(a, b, rights.RW)
		}
	case 11: // destructive: delete a vertex
		if len(vs) > 2 {
			g.DeleteVertex(vs[rng.Intn(len(vs))])
		}
	}
}

// TestEngineIncrementalEquivalence is the tentpole property test: after
// every mutation in a random monotone + destructive sequence, the
// engine's incrementally maintained structure must be equivalent (same
// partition, same order, up to level renumbering) to a from-scratch
// derivation by the retained map-based oracle.
func TestEngineIncrementalEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := buildRandomGraph(rng, 4+rng.Intn(8), 8+rng.Intn(16))
		e := NewEngine(g, 0)
		if !e.Structure().EquivalentTo(AnalyzeRWReference(g)) {
			t.Logf("seed %d: initial derivation differs", seed)
			return false
		}
		for step := 0; step < 40; step++ {
			mutate(g, rng, step)
			got := e.Rearm(nil)
			want := AnalyzeRWReference(g)
			if !got.EquivalentTo(want) {
				t.Logf("seed %d step %d: engine structure diverged\n%s", seed, step, g.String())
				return false
			}
			if err := got.CheckPartialOrder(); err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEngineSecureMatchesOracle: the engine's cached Secure verdict must
// match the stock Secure across a mutation stream.
func TestEngineSecureMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := buildRandomGraph(rng, 4+rng.Intn(6), 6+rng.Intn(10))
		e := NewEngine(g, 0)
		for step := 0; step < 12; step++ {
			mutate(g, rng, step)
			e.Rearm(nil)
			gotOK, _, err := e.Secure(nil, nil)
			if err != nil {
				t.Logf("seed %d: unexpected error %v", seed, err)
				return false
			}
			wantOK, _ := Secure(g)
			if gotOK != wantOK {
				t.Logf("seed %d step %d: engine secure=%v oracle=%v\n%s", seed, step, gotOK, wantOK, g.String())
				return false
			}
			// Cached path must agree with itself.
			again, _, _ := e.Secure(nil, nil)
			if again != gotOK {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestParallelDerivationDeterministic: the flat-array derivation must
// produce identical structures for any worker count, and match the
// map-based oracle.
func TestParallelDerivationDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := buildRandomGraph(rng, 6+rng.Intn(10), 12+rng.Intn(20))
		ref := AnalyzeRWReference(g)
		for _, workers := range []int{1, 2, 4, 7} {
			s, err := AnalyzeRWObs(g, Options{Workers: workers})
			if err != nil {
				return false
			}
			if !s.EquivalentTo(ref) {
				t.Logf("seed %d workers %d: structure differs from oracle", seed, workers)
				return false
			}
		}
		// rwtg path too
		tg1, err1 := AnalyzeRWTGObs(g, Options{Workers: 1})
		tg4, err4 := AnalyzeRWTGObs(g, Options{Workers: 4})
		if err1 != nil || err4 != nil {
			return false
		}
		if !tg1.EquivalentTo(tg4) {
			t.Logf("seed %d: rwtg differs across worker counts", seed)
			return false
		}
		// secure verdicts across worker counts
		ok1, _, e1 := SecureObs(g, Options{Workers: 1})
		ok4, _, e4 := SecureObs(g, Options{Workers: 4})
		if e1 != nil || e4 != nil || ok1 != ok4 {
			return false
		}
		s1, v1, se1 := StrictSecureObs(g, Options{Workers: 1})
		s4, v4, se4 := StrictSecureObs(g, Options{Workers: 4})
		if se1 != nil || se4 != nil || s1 != s4 {
			return false
		}
		if v1 != nil && v4 != nil && *v1 != *v4 {
			t.Logf("seed %d: strict witnesses differ: %v vs %v", seed, v1, v4)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSecureObsBudget: exhaustion must surface as budget.ErrExhausted,
// never as a verdict, from every threaded entry point.
func TestSecureObsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := buildRandomGraph(rng, 16, 60)
	tiny := func() *budget.Budget { return budget.New(context.Background(), 3, 0) }
	if _, _, err := SecureObs(g, Options{Budget: tiny()}); !errors.Is(err, budget.ErrExhausted) {
		t.Fatalf("SecureObs: want ErrExhausted, got %v", err)
	}
	if _, _, err := StrictSecureObs(g, Options{Budget: tiny()}); !errors.Is(err, budget.ErrExhausted) {
		t.Fatalf("StrictSecureObs: want ErrExhausted, got %v", err)
	}
	if _, err := AnalyzeRWTGObs(g, Options{Budget: tiny()}); !errors.Is(err, budget.ErrExhausted) {
		t.Fatalf("AnalyzeRWTGObs: want ErrExhausted, got %v", err)
	}
	if _, err := AnalyzeRWObs(g, Options{Budget: tiny()}); !errors.Is(err, budget.ErrExhausted) {
		t.Fatalf("AnalyzeRWObs: want ErrExhausted, got %v", err)
	}
	// Canceled context trips too, including across workers.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := SecureObs(g, Options{Workers: 4, Budget: budget.New(ctx, 0, 0)}); !errors.Is(err, budget.ErrExhausted) {
		t.Fatalf("SecureObs canceled ctx: want ErrExhausted, got %v", err)
	}
}

// TestEngineStatsCounters: monotone adds patch, rw-irrelevant revocations
// are no-ops, destructive mutations rebuild.
func TestEngineStatsCounters(t *testing.T) {
	g := graph.New(nil)
	a := g.MustSubject("a")
	b := g.MustSubject("b")
	c := g.MustObject("c")
	e := NewEngine(g, 2)
	if got := e.Stats().Rebuilds; got != 1 {
		t.Fatalf("initial rebuilds = %d, want 1", got)
	}
	// Monotone add: a reads c.
	g.AddExplicit(a, c, rights.R)
	e.Rearm(nil)
	st := e.Stats()
	if st.Patches != 1 || st.Rebuilds != 1 {
		t.Fatalf("after monotone add: %+v", st)
	}
	// t/g revocation never touches rw structure: no dirty entry at all.
	g.AddExplicit(a, b, rights.TG)
	e.Rearm(nil)
	g.RemoveExplicit(a, b, rights.G)
	if e.Dirty() != 0 {
		t.Fatalf("t/g revocation queued dirty work")
	}
	// Destructive: severing an rw right forces a rebuild.
	g.RemoveExplicit(a, c, rights.R)
	if e.Dirty() != 1 {
		t.Fatalf("rw sever should mark wholesale")
	}
	e.Rearm(nil)
	st = e.Stats()
	if st.Rebuilds != 2 || st.Invalidations != 1 {
		t.Fatalf("after sever: %+v", st)
	}
	if !e.Structure().EquivalentTo(AnalyzeRWReference(g)) {
		t.Fatal("structure diverged")
	}
}

// TestEquivalentToDetectsDifferences guards the checker itself.
func TestEquivalentToDetectsDifferences(t *testing.T) {
	g := graph.New(nil)
	a := g.MustSubject("a")
	b := g.MustSubject("b")
	g.AddExplicit(a, b, rights.R)
	s1 := AnalyzeRW(g)
	g2 := graph.New(nil)
	a2 := g2.MustSubject("a")
	b2 := g2.MustSubject("b")
	g2.AddExplicit(a2, b2, rights.R)
	g2.AddExplicit(b2, a2, rights.R) // merges the two levels
	s2 := AnalyzeRW(g2)
	if s1.EquivalentTo(s2) {
		t.Fatal("structures with different partitions reported equivalent")
	}
	if !s1.EquivalentTo(AnalyzeRWReference(g)) {
		t.Fatal("identical structures reported different")
	}
}

// TestEngineSecureBudget: the engine sweeps against its cached structure,
// so no derivation phase gets a chance to charge the budget first — the
// sweep itself must enforce the cap, including each worker's sub-stride
// tail (flushed as workers join). Regression test: small sweeps used to
// finish under any cap because the tail was never reported.
func TestEngineSecureBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := buildRandomGraph(rng, 16, 60)
	e := NewEngine(g, 2)
	_, _, err := e.Secure(nil, budget.New(context.Background(), 2, 0))
	if !errors.Is(err, budget.ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	// An adequate budget serves (and caches) the verdict.
	if _, _, err := e.Secure(nil, budget.New(context.Background(), 1_000_000, 0)); err != nil {
		t.Fatalf("roomy budget tripped: %v", err)
	}
}
