package hierarchy

import (
	"strings"
	"testing"
)

func TestHasseLinear(t *testing.T) {
	c, err := Linear(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := AnalyzeRW(c.G)
	out := s.Hasse()
	// One maximal level, a chain of two children.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("hasse lines = %d:\n%s", len(lines), out)
	}
	if strings.HasPrefix(lines[0], " ") {
		t.Errorf("top level indented:\n%s", out)
	}
	if !strings.HasPrefix(lines[1], "  ") || !strings.HasPrefix(lines[2], "    ") {
		t.Errorf("chain not indented:\n%s", out)
	}
	if !strings.Contains(out, "L3_s1") {
		t.Errorf("missing member names:\n%s", out)
	}
}

func TestHasseLattice(t *testing.T) {
	c, err := Military(2, []string{"A", "B"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := AnalyzeRW(c.G)
	out := s.Hasse()
	// Two maximal levels (A2, B2), shared bottom U printed once then
	// referenced.
	if !strings.Contains(out, "(see above)") {
		t.Errorf("shared sub-level not referenced:\n%s", out)
	}
	if len(s.Maximal()) != 2 {
		t.Errorf("maximal = %v", s.Maximal())
	}
	if len(s.Minimal()) != 1 {
		t.Errorf("minimal = %v", s.Minimal())
	}
}

func TestLevelNames(t *testing.T) {
	c, _ := Linear(2, 2)
	s := AnalyzeRW(c.G)
	top := s.LevelOf(c.Members["L2"][0])
	names := s.LevelNames(top)
	if len(names) != 3 { // two subjects + bulletin
		t.Errorf("names = %v", names)
	}
	if s.LevelNames(-1) != nil || s.LevelNames(99) != nil {
		t.Error("out-of-range names")
	}
}

func TestVertexLevelName(t *testing.T) {
	c, _ := Linear(2, 1)
	s := AnalyzeRW(c.G)
	got := s.VertexLevelName(c.Members["L1"][0])
	if !strings.Contains(got, "L1_s1@L") {
		t.Errorf("= %q", got)
	}
	if s.VertexLevelName(-5) != "#-5" {
		t.Errorf("invalid id = %q", s.VertexLevelName(-5))
	}
}
