package hierarchy

import (
	"runtime"
	"sync"

	"takegrant/internal/analysis"
	"takegrant/internal/budget"
	"takegrant/internal/graph"
	"takegrant/internal/obs"
	"takegrant/internal/rights"
)

// Options configures the instrumented derivation entry points
// (AnalyzeRWObs, AnalyzeRWTGObs, SecureObs, StrictSecureObs).
type Options struct {
	// Workers bounds the worker pool the per-subject closure loops fan
	// across; 0 or negative means GOMAXPROCS. Results are deterministic
	// for any worker count: each worker owns a contiguous index range and
	// merge order is by index.
	Workers int
	// Budget, when non-nil, is charged for visited product states and
	// scanned edges across all workers (via a budget.Group); exhaustion
	// aborts the derivation with an error wrapping budget.ErrExhausted —
	// never a wrong structure.
	Budget *budget.Budget
	// Probe receives per-phase spans with work counts; nil records
	// nothing.
	Probe *obs.Probe
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// fanOut splits [0, n) into one contiguous chunk per worker and runs fn
// concurrently, handing each worker a private budget drawing on the shared
// group. Output is deterministic as long as fn(w, ...) writes only
// worker-slot w / index-range state. Returns the first (lowest-chunk)
// error.
func fanOut(workers, n int, gr *budget.Group, fn func(w, lo, hi int, wb *budget.Budget) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		wb := gr.Worker()
		err := fn(0, 0, n, wb)
		wb.Flush() // report the sub-stride tail, or the group undercounts
		return err
	}
	chunk := (n + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			wb := gr.Worker()
			errs[w] = fn(w, lo, hi, wb)
			wb.Flush()
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Per-label relevance bits for the de facto step digraph, precomputed once
// per derivation from the snapshot's interned label table so the CSR build
// tests a byte instead of four rights-set probes per edge.
const (
	stepExpR = 1 << iota
	stepImpR
	stepExpW
	stepImpW
)

// AnalyzeRWObs is AnalyzeRW with workers, budget and probe: it derives the
// rw-level structure over the graph's frozen CSR snapshot on flat int32
// arrays — build the de facto step digraph as a CSR pair (parallel over
// vertex ranges), run Kosaraju on it, then compute condensation
// reachability (parallel over levels). Spans: step_digraph, scc, reach.
func AnalyzeRWObs(g *graph.Graph, opt Options) (*Structure, error) {
	workers := opt.workers()
	b, p := opt.Budget, opt.Probe
	snap := g.Snapshot()
	n := snap.Cap()
	gr := b.Group()

	sp := p.Span("step_digraph")
	labBits := make([]uint8, snap.NumLabels())
	for i := range labBits {
		lp := snap.Label(uint32(i))
		var bits uint8
		if lp.Explicit.Has(rights.Read) {
			bits |= stepExpR
		}
		if lp.Implicit.Has(rights.Read) {
			bits |= stepImpR
		}
		if lp.Explicit.Has(rights.Write) {
			bits |= stepExpW
		}
		if lp.Implicit.Has(rights.Write) {
			bits |= stepImpW
		}
		labBits[i] = bits
	}

	// Count pass: deg[u] = out-degree of u in the step digraph.
	deg := make([]int32, n)
	countErr := fanOut(workers, n, gr, func(_, lo, hi int, wb *budget.Budget) error {
		for ui := lo; ui < hi; ui++ {
			u := graph.ID(ui)
			if !snap.Live(u) {
				continue
			}
			uSubj := snap.IsSubject(u)
			outDst, outLbl := snap.Out(u)
			inDst, inLbl := snap.In(u)
			if err := wb.Charge(int64(len(outDst) + len(inDst))); err != nil {
				return err
			}
			d := int32(0)
			for j := range outDst {
				bits := labBits[outLbl[j]]
				if (uSubj && bits&stepExpR != 0) || bits&stepImpR != 0 {
					d++
				}
			}
			for j, src := range inDst {
				bits := labBits[inLbl[j]]
				if (snap.IsSubject(src) && bits&stepExpW != 0) || bits&stepImpW != 0 {
					d++
				}
			}
			deg[u] = d
		}
		return nil
	})
	if countErr != nil {
		sp.Count("aborted", 1).End()
		return nil, countErr
	}
	start := make([]int32, n+1)
	for i := 0; i < n; i++ {
		start[i+1] = start[i] + deg[i]
	}
	total := start[n]

	// Fill pass: each vertex writes its own fwd segment, so chunks stay
	// disjoint and the listing is deterministic.
	fwd := make([]graph.ID, total)
	fillErr := fanOut(workers, n, gr, func(_, lo, hi int, wb *budget.Budget) error {
		for ui := lo; ui < hi; ui++ {
			u := graph.ID(ui)
			if !snap.Live(u) {
				continue
			}
			uSubj := snap.IsSubject(u)
			off := start[ui]
			outDst, outLbl := snap.Out(u)
			inDst, inLbl := snap.In(u)
			if err := wb.Charge(int64(len(outDst) + len(inDst))); err != nil {
				return err
			}
			for j, dst := range outDst {
				bits := labBits[outLbl[j]]
				if (uSubj && bits&stepExpR != 0) || bits&stepImpR != 0 {
					fwd[off] = dst
					off++
				}
			}
			for j, src := range inDst {
				bits := labBits[inLbl[j]]
				if (snap.IsSubject(src) && bits&stepExpW != 0) || bits&stepImpW != 0 {
					fwd[off] = src
					off++
				}
			}
		}
		return nil
	})
	if fillErr != nil {
		sp.Count("aborted", 1).End()
		return nil, fillErr
	}
	// Reverse CSR, derived from the forward listing in one sequential pass.
	revStart := make([]int32, n+1)
	for _, t := range fwd {
		revStart[t+1]++
	}
	for i := 0; i < n; i++ {
		revStart[i+1] += revStart[i]
	}
	rev := make([]graph.ID, total)
	cur := make([]int32, n)
	copy(cur, revStart[:n])
	for ui := 0; ui < n; ui++ {
		for k := start[ui]; k < start[ui+1]; k++ {
			t := fwd[k]
			rev[cur[t]] = graph.ID(ui)
			cur[t]++
		}
	}
	sp.Count("vertices", int64(n)).Count("step_edges", int64(total)).End()
	folded := gr.Visited()
	if err := b.Charge(folded); err != nil {
		return nil, err
	}

	// Kosaraju over the flat CSR pair. Sequential — the passes are a
	// fraction of the closure work and inherently order-dependent.
	sp = p.Span("scc")
	s, err := sccFlat(g, snap, start, fwd, revStart, rev, b)
	sp.Count("levels", int64(len(s.levels))).End()
	if err != nil {
		return nil, err
	}

	sp = p.Span("reach")
	err = s.computeReachFlat(start, fwd, workers, gr)
	if err != nil {
		sp.Count("aborted", 1).End()
		return nil, err
	}
	sp.End()
	if err := b.Charge(gr.Visited() - folded); err != nil {
		return nil, err
	}
	return s, nil
}

// sccFlat is iterative Kosaraju over a CSR pair, producing the level
// partition in the same shape sccOf does (each level's members sorted
// ascending; level order from reverse finish order — deterministic).
func sccFlat(g *graph.Graph, snap *graph.Snapshot, start []int32, fwd []graph.ID, revStart []int32, rev []graph.ID, b *budget.Budget) (*Structure, error) {
	n := snap.Cap()
	visited := make([]bool, n)
	order := make([]graph.ID, 0, g.NumVertices())
	var vstack []graph.ID
	var istack []int32
	for v0 := 0; v0 < n; v0++ {
		if visited[v0] || !snap.Live(graph.ID(v0)) {
			continue
		}
		visited[v0] = true
		vstack = append(vstack[:0], graph.ID(v0))
		istack = append(istack[:0], start[v0])
		for len(vstack) > 0 {
			v := vstack[len(vstack)-1]
			i := istack[len(istack)-1]
			if err := b.Charge(1); err != nil {
				return nil, err
			}
			advanced := false
			for i < start[v+1] {
				w := fwd[i]
				i++
				if !visited[w] {
					visited[w] = true
					istack[len(istack)-1] = i
					vstack = append(vstack, w)
					istack = append(istack, start[w])
					advanced = true
					break
				}
			}
			if !advanced {
				order = append(order, v)
				vstack = vstack[:len(vstack)-1]
				istack = istack[:len(istack)-1]
			}
		}
	}
	s := &Structure{g: g}
	s.of = make([]int32, n)
	for i := range s.of {
		s.of[i] = -1
	}
	comp := make([]graph.ID, 0, 16)
	for i := len(order) - 1; i >= 0; i-- {
		root := order[i]
		if s.of[root] >= 0 {
			continue
		}
		idx := int32(len(s.levels))
		comp = append(comp[:0], root)
		s.of[root] = idx
		for head := 0; head < len(comp); head++ {
			v := comp[head]
			if err := b.Charge(1); err != nil {
				return nil, err
			}
			for k := revStart[v]; k < revStart[v+1]; k++ {
				u := rev[k]
				if s.of[u] < 0 {
					s.of[u] = idx
					comp = append(comp, u)
				}
			}
		}
		sortIDs(comp)
		s.levels = append(s.levels, append([]graph.ID(nil), comp...))
	}
	return s, nil
}

func sortIDs(ids []graph.ID) {
	// Insertion sort: SCC members arrive nearly ordered (BFS over sorted
	// CSR listings) and components are small; avoids sort.Slice's closure
	// allocation on the hot path.
	for i := 1; i < len(ids); i++ {
		v := ids[i]
		j := i - 1
		for j >= 0 && ids[j] > v {
			ids[j+1] = ids[j]
			j--
		}
		ids[j+1] = v
	}
}

// computeReachFlat fills the condensation reachability matrix from the
// step CSR: build a deduplicated level adjacency, then BFS one row per
// level, fanned across workers (rows are independent).
func (s *Structure) computeReachFlat(start []int32, fwd []graph.ID, workers int, gr *budget.Group) error {
	L := len(s.levels)
	adj := make([][]int32, L)
	mark := make([]int32, L)
	for i := range mark {
		mark[i] = -1
	}
	for i, lvl := range s.levels {
		for _, v := range lvl {
			for k := start[v]; k < start[v+1]; k++ {
				j := s.of[fwd[k]]
				if j >= 0 && int(j) != i && mark[j] != int32(i) {
					mark[j] = int32(i)
					adj[i] = append(adj[i], j)
				}
			}
		}
	}
	s.reach = make([][]bool, L)
	return fanOut(workers, L, gr, func(_, lo, hi int, wb *budget.Budget) error {
		seen := make([]int32, L)
		for i := range seen {
			seen[i] = -1
		}
		var queue []int32
		for i := lo; i < hi; i++ {
			row := make([]bool, L)
			s.reach[i] = row
			queue = append(queue[:0], int32(i))
			seen[i] = int32(i)
			for len(queue) > 0 {
				c := queue[0]
				queue = queue[1:]
				if err := wb.Charge(int64(len(adj[c]) + 1)); err != nil {
					return err
				}
				for _, j := range adj[c] {
					if seen[j] != int32(i) {
						seen[j] = int32(i)
						row[j] = true
						queue = append(queue, j)
					}
				}
			}
		}
		return nil
	})
}

// AnalyzeRWTGObs is AnalyzeRWTG with workers, budget and probe: the
// per-subject can•know closures — the dominant cost — fan across the
// worker pool (each worker reuses one closure buffer and charges a
// group-shared budget), results land in index-order slots for a
// deterministic knows digraph, and the SCC + reach condensation reuses
// the level machinery. Spans: parallel_closures, rwtg_scc.
func AnalyzeRWTGObs(g *graph.Graph, opt Options) (*Structure, error) {
	workers := opt.workers()
	b, p := opt.Budget, opt.Probe
	subjects := g.Subjects()
	subjIdx := make([]int32, g.Cap())
	for i := range subjIdx {
		subjIdx[i] = -1
	}
	for i, u := range subjects {
		subjIdx[u] = int32(i)
	}
	knows := make([][]graph.ID, len(subjects))
	gr := b.Group()
	sp := p.Span("parallel_closures")
	err := fanOut(workers, len(subjects), gr, func(_, lo, hi int, wb *budget.Budget) error {
		var buf []graph.ID
		for idx := lo; idx < hi; idx++ {
			u := subjects[idx]
			buf = buf[:0]
			var err error
			buf, err = analysis.KnowClosureInto(g, u, buf, wb)
			if err != nil {
				return err
			}
			ks := make([]graph.ID, 0, len(buf))
			for _, v := range buf {
				if v != u && subjIdx[v] >= 0 {
					ks = append(ks, v)
				}
			}
			knows[idx] = ks
		}
		return nil
	})
	sp.Count("subjects", int64(len(subjects))).Count("workers", int64(workers)).Count("visited", gr.Visited()).End()
	if err != nil {
		return nil, err
	}
	if err := b.Charge(gr.Visited()); err != nil {
		return nil, err
	}
	sp = p.Span("rwtg_scc")
	succ := func(u graph.ID) []graph.ID { return knows[subjIdx[u]] }
	s := sccOf(g, subjects, succ)
	s.computeReach(succ)
	sp.Count("levels", int64(len(s.levels))).End()
	return s, nil
}

// SecureObs is Secure with workers, budget and probe: derive the rw-levels
// (AnalyzeRWObs), then sweep one can•know closure per vertex — subjects
// and objects alike, replacing the former pairwise object × vertex
// CanKnow scan — across the worker pool. The returned violation is
// deterministic: the lowest-position vertex with a breach, witnessed by
// the first closure member above it in discovery order.
func SecureObs(g *graph.Graph, opt Options) (bool, *Violation, error) {
	rw, err := AnalyzeRWObs(g, opt)
	if err != nil {
		return false, nil, err
	}
	return secureWith(g, rw, opt)
}

// secureWith runs the §5 sweep against an already-derived rw structure;
// the engine calls it with its incrementally maintained structure.
func secureWith(g *graph.Graph, rw *Structure, opt Options) (bool, *Violation, error) {
	workers := opt.workers()
	b, p := opt.Budget, opt.Probe
	vs := g.Vertices()
	gr := b.Group()
	if workers > len(vs) {
		workers = len(vs)
	}
	if workers < 1 {
		workers = 1
	}
	viols := make([]*Violation, workers)
	sp := p.Span("secure_sweep")
	err := fanOut(workers, len(vs), gr, func(w, lo, hi int, wb *budget.Budget) error {
		var buf []graph.ID
		for pos := lo; pos < hi && viols[w] == nil; pos++ {
			u := vs[pos]
			buf = buf[:0]
			var err error
			buf, err = analysis.KnowClosureInto(g, u, buf, wb)
			if err != nil {
				return err
			}
			for _, v := range buf {
				if v != u && rw.Higher(v, u) {
					viols[w] = &Violation{Lower: u, Upper: v}
					break
				}
			}
		}
		return nil
	})
	sp.Count("vertices", int64(len(vs))).Count("workers", int64(workers)).Count("visited", gr.Visited()).End()
	if err != nil {
		return false, nil, err
	}
	if err := b.Charge(gr.Visited()); err != nil {
		return false, nil, err
	}
	for _, v := range viols {
		if v != nil {
			return false, v, nil
		}
	}
	return true, nil, nil
}

// StrictSecureObs is StrictSecure with workers, budget and probe: for
// each vertex, the can•know closure is compared against the bulk
// can•know•f closure (one admissible search plus implicit base cases)
// instead of |closure| pairwise CanKnowF searches. Deterministic witness
// as in SecureObs.
func StrictSecureObs(g *graph.Graph, opt Options) (bool, *Violation, error) {
	workers := opt.workers()
	b, p := opt.Budget, opt.Probe
	vs := g.Vertices()
	gr := b.Group()
	if workers > len(vs) {
		workers = len(vs)
	}
	if workers < 1 {
		workers = 1
	}
	viols := make([]*Violation, workers)
	sp := p.Span("strict_secure_sweep")
	vcap := g.Cap()
	err := fanOut(workers, len(vs), gr, func(w, lo, hi int, wb *budget.Budget) error {
		var kbuf, fbuf []graph.ID
		var ms memberSet
		for pos := lo; pos < hi && viols[w] == nil; pos++ {
			u := vs[pos]
			kbuf = kbuf[:0]
			var err error
			kbuf, err = analysis.KnowClosureInto(g, u, kbuf, wb)
			if err != nil {
				return err
			}
			fbuf = fbuf[:0]
			fbuf, err = analysis.KnowFClosureInto(g, u, fbuf, wb)
			if err != nil {
				return err
			}
			ms.reset(vcap)
			for _, v := range fbuf {
				ms.add(v)
			}
			for _, v := range kbuf {
				if v != u && !ms.has(v) {
					viols[w] = &Violation{Lower: u, Upper: v}
					break
				}
			}
		}
		return nil
	})
	sp.Count("vertices", int64(len(vs))).Count("workers", int64(workers)).Count("visited", gr.Visited()).End()
	if err != nil {
		return false, nil, err
	}
	if err := b.Charge(gr.Visited()); err != nil {
		return false, nil, err
	}
	for _, v := range viols {
		if v != nil {
			return false, v, nil
		}
	}
	return true, nil, nil
}

// memberSet is a worker-local epoch-stamped vertex set.
type memberSet struct {
	stamp []uint32
	epoch uint32
}

func (m *memberSet) reset(size int) {
	if cap(m.stamp) < size {
		m.stamp = make([]uint32, size)
		m.epoch = 0
	} else {
		m.stamp = m.stamp[:size]
	}
	m.epoch++
	if m.epoch == 0 {
		full := m.stamp[:cap(m.stamp)]
		for i := range full {
			full[i] = 0
		}
		m.epoch = 1
	}
}

func (m *memberSet) add(v graph.ID) { m.stamp[v] = m.epoch }

func (m *memberSet) has(v graph.ID) bool { return m.stamp[v] == m.epoch }
