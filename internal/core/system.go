// Package core assembles the paper's contribution into a deployable
// artifact: a hierarchical Take-Grant protection system. A System couples
// a protection graph with its classification structure (rw-levels, §4) and
// an online guard enforcing the combined restriction (§5) on every de jure
// rule — the configuration Theorem 5.5 proves sound and complete.
//
// Downstream code builds a graph (or a classification via
// hierarchy.Build), wraps it in a System, and then:
//
//   - applies rules through Apply, which refuses any application that
//     would complete a read-up or write-down connection (O(1) per rule,
//     Corollary 5.7);
//   - asks policy questions: CanShare, CanKnow, Secure, Audit;
//   - inspects the hierarchy: levels, the higher order, object
//     classification.
package core

import (
	"fmt"

	"takegrant/internal/analysis"
	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/restrict"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

// System is a hierarchical Take-Grant protection system.
type System struct {
	g     *graph.Graph
	class *hierarchy.Structure
	guard *restrict.Guarded
}

// New wraps a protection graph: the classification is derived from the
// graph's de facto structure, and the combined restriction guards all
// subsequent rule applications.
func New(g *graph.Graph) *System {
	class := hierarchy.AnalyzeRW(g)
	return &System{
		g:     g,
		class: class,
		guard: restrict.NewGuarded(g, restrict.NewCombined(class)),
	}
}

// FromClassification wraps a built classification hierarchy.
func FromClassification(c *hierarchy.Classification) *System {
	return New(c.G)
}

// Graph returns the underlying protection graph. Mutate it only through
// Apply; direct mutation bypasses the guard.
func (s *System) Graph() *graph.Graph { return s.g }

// Classification returns the level structure the guard enforces.
func (s *System) Classification() *hierarchy.Structure { return s.class }

// Apply checks the combined restriction and applies the rule.
func (s *System) Apply(app rules.Application) error { return s.guard.Apply(app) }

// Replay applies a derivation under the guard.
func (s *System) Replay(d rules.Derivation) (int, error) { return s.guard.Replay(d) }

// Stats reports how many applications the guard executed and refused.
func (s *System) Stats() (applied, refused int) { return s.guard.Applied, s.guard.Refused }

// CanShare answers can•share(α, x, y) on the current graph.
func (s *System) CanShare(alpha rights.Right, x, y graph.ID) bool {
	return analysis.CanShare(s.g, alpha, x, y)
}

// CanKnow answers can•know(x, y) on the current graph.
func (s *System) CanKnow(x, y graph.ID) bool { return analysis.CanKnow(s.g, x, y) }

// CanKnowF answers can•know•f(x, y) (de facto rules only).
func (s *System) CanKnowF(x, y graph.ID) bool { return analysis.CanKnowF(s.g, x, y) }

// ExplainShare returns a replayable derivation witnessing CanShare.
func (s *System) ExplainShare(alpha rights.Right, x, y graph.ID) (rules.Derivation, error) {
	return analysis.SynthesizeShare(s.g, alpha, x, y)
}

// ExplainKnow returns a replayable derivation witnessing CanKnow.
func (s *System) ExplainKnow(x, y graph.ID) (rules.Derivation, error) {
	return analysis.SynthesizeKnow(s.g, x, y)
}

// Secure evaluates the §5 security predicate against the graph's own
// hierarchy.
func (s *System) Secure() (bool, *hierarchy.Violation) { return hierarchy.Secure(s.g) }

// StrictSecure additionally rejects flows between incomparable levels.
func (s *System) StrictSecure() (bool, *hierarchy.Violation) { return hierarchy.StrictSecure(s.g) }

// Audit scans the current graph for edges violating the restriction
// against the *original* classification (Corollary 5.6: linear time).
func (s *System) Audit() []restrict.EdgeViolation {
	return restrict.NewCombined(s.class).Audit(s.g)
}

// LevelOf returns the classification level index of a vertex (-1 when
// unclassified, e.g. created after New).
func (s *System) LevelOf(v graph.ID) int { return s.class.LevelOf(v) }

// Higher reports whether a is classified strictly above b.
func (s *System) Higher(a, b graph.ID) bool { return s.class.Higher(a, b) }

// ObjectLevel classifies an object per Theorem 4.5.
func (s *System) ObjectLevel(o graph.ID) (int, bool) { return s.class.ObjectLevel(o) }

// Reclassify recomputes the classification from the current graph and
// re-arms the guard against it. Per §6 this is a dangerous operation —
// raising a classification cannot retract copies already made, and
// lowering one may declassify information others can then read — so the
// previous audit state is surfaced: reclassification is refused while the
// current graph audits dirty against the old classification.
func (s *System) Reclassify() error {
	if v := s.Audit(); len(v) > 0 {
		return fmt.Errorf("core: refusing to reclassify a graph with %d live violations (§6)", len(v))
	}
	s.class = hierarchy.AnalyzeRW(s.g)
	s.guard = restrict.NewGuarded(s.g, restrict.NewCombined(s.class))
	return nil
}
