package core

import (
	"fmt"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// Declassification implements the protocol §6 sketches and leaves open.
// The paper's two hazards:
//
//   - Raising a classification is unsound unconditionally: "anyone with
//     access to the information could have made a private copy", so
//     Reclassify (and this file) never raises anything retroactively —
//     new levels only constrain future flows.
//
//   - Lowering is unsound while any higher-level subject retains write
//     authority over the object: "all one of those users would have to
//     do is to write classified information into that file". The paper
//     observes a protocol avoiding this would have to trust someone.
//
// Declassify trusts nobody: it refuses unless the graph itself proves the
// hazard absent. The object must carry no information above the target
// level (no current reader/writer sits above it) — then reassigning its
// accessors cannot move high information down, because there is none to
// move and nobody left who could write any in.

// DeclassifyCheck reports why lowering obj to the level of vertex anchor
// would be unsound, or nil when it is safe. Safety per §6:
//
//  1. no subject strictly above anchor's level holds explicit write
//     authority over obj (they could write classified content in), and
//  2. no subject strictly above anchor's level holds explicit read
//     authority over obj (the object's current content is then already
//     classified at most at anchor's level under Theorem 4.5's rule),
//     unless the object is currently *unreadable* above anchor.
func (s *System) DeclassifyCheck(obj, anchor graph.ID) error {
	if !s.g.Valid(obj) || !s.g.Valid(anchor) {
		return fmt.Errorf("core: invalid vertex")
	}
	if !s.g.IsObject(obj) {
		return fmt.Errorf("core: %s is not an object", s.g.Name(obj))
	}
	target := s.class.LevelOf(anchor)
	if target < 0 {
		return fmt.Errorf("core: anchor %s is unclassified", s.g.Name(anchor))
	}
	for _, h := range s.g.In(obj) {
		lvl := s.class.LevelOf(h.Other)
		if lvl < 0 || !s.class.HigherLevel(lvl, target) {
			continue
		}
		if h.Explicit.Has(rights.Write) {
			return fmt.Errorf("core: %s (above the target level) retains write on %s — §6 hazard",
				s.g.Name(h.Other), s.g.Name(obj))
		}
		if h.Explicit.Has(rights.Read) {
			return fmt.Errorf("core: %s (above the target level) reads %s — its content may be classified",
				s.g.Name(h.Other), s.g.Name(obj))
		}
	}
	return nil
}

// Declassify lowers obj to anchor's level by rewiring: every accessor at
// or below the target level keeps its rights; the object additionally
// becomes readable by anchor's level (the point of declassifying). The
// operation refuses when DeclassifyCheck reports a hazard. It returns the
// subjects granted read access.
//
// Note the asymmetry with the paper's pessimism: §6 could not declassify
// because its model had no notion of "the information in the object right
// now". The check above is the graph-expressible sufficient condition —
// nobody above the line can have put anything high in, so nothing high
// can come out.
func (s *System) Declassify(obj, anchor graph.ID) ([]graph.ID, error) {
	if err := s.DeclassifyCheck(obj, anchor); err != nil {
		return nil, err
	}
	target := s.class.LevelOf(anchor)
	var granted []graph.ID
	for _, v := range s.g.Subjects() {
		if s.class.LevelOf(v) != target {
			continue
		}
		if s.g.Explicit(v, obj).Has(rights.Read) {
			continue
		}
		if err := s.g.AddExplicit(v, obj, rights.R); err != nil {
			return granted, err
		}
		granted = append(granted, v)
	}
	return granted, nil
}
