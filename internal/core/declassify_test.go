package core

import (
	"testing"

	"takegrant/internal/analysis"
	"takegrant/internal/hierarchy"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

func TestDeclassifyRefusedWhileHighWriterRemains(t *testing.T) {
	c, err := hierarchy.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := c.G
	high := c.Members["L2"][0]
	low := c.Members["L1"][0]
	doc := g.MustObject("doc")
	g.AddExplicit(high, doc, rights.RW)
	sys := New(g)
	// The §6 hazard: high retains write.
	if err := sys.DeclassifyCheck(doc, low); err == nil {
		t.Error("declassify allowed with a high writer")
	}
	// Drop the write; the read hazard remains (content may be classified).
	if err := sys.Apply(rules.Remove(high, doc, rights.W)); err != nil {
		t.Fatal(err)
	}
	if err := sys.DeclassifyCheck(doc, low); err == nil {
		t.Error("declassify allowed with a high reader")
	}
	// Drop the read too: the object provably carries nothing high.
	if err := sys.Apply(rules.Remove(high, doc, rights.R)); err != nil {
		t.Fatal(err)
	}
	if err := sys.DeclassifyCheck(doc, low); err != nil {
		t.Errorf("clean declassify refused: %v", err)
	}
}

func TestDeclassifyGrantsTargetLevel(t *testing.T) {
	c, err := hierarchy.Linear(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := c.G
	low1 := c.Members["L1"][0]
	low2 := c.Members["L1"][1]
	doc := g.MustObject("doc")
	// An orphaned object: nobody above L1 touches it.
	g.AddExplicit(low1, doc, rights.R)
	sys := New(g)
	granted, err := sys.Declassify(doc, low1)
	if err != nil {
		t.Fatal(err)
	}
	if len(granted) != 1 || granted[0] != low2 {
		t.Errorf("granted = %v", granted)
	}
	if !g.Explicit(low2, doc).Has(rights.Read) {
		t.Error("read not granted")
	}
	// The system remains secure afterwards.
	if ok, v := sys.Secure(); !ok {
		t.Errorf("insecure after declassification: %v", v)
	}
	// High still cannot be known by low via the doc.
	if analysis.CanKnow(g, low1, c.Bulletin["L2"]) {
		t.Error("declassification leaked the hierarchy")
	}
}

func TestDeclassifyValidation(t *testing.T) {
	c, _ := hierarchy.Linear(2, 1)
	sys := New(c.G)
	low := c.Members["L1"][0]
	if err := sys.DeclassifyCheck(low, low); err == nil {
		t.Error("declassified a subject")
	}
	doc := c.G.MustObject("doc2")
	orphan := c.G.MustObject("anchorless")
	_ = orphan
	// anchor with no level: a fresh object has a level of its own in the
	// rw structure, but a deleted/unknown vertex does not.
	if err := sys.DeclassifyCheck(doc, -1); err == nil {
		t.Error("invalid anchor accepted")
	}
}
