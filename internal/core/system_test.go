package core

import (
	"testing"

	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

func twoLevel(t *testing.T) (*System, *hierarchy.Classification) {
	t.Helper()
	c, err := hierarchy.Linear(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return FromClassification(c), c
}

func TestSystemGuards(t *testing.T) {
	sys, c := twoLevel(t)
	low := c.Members["L1"][0]
	high := c.Members["L2"][0]
	sys.Graph().AddExplicit(low, high, rights.T) // latent cross edge
	if err := sys.Apply(rules.Take(low, high, c.Bulletin["L2"], rights.R)); err == nil {
		t.Error("read-up allowed")
	}
	applied, refused := sys.Stats()
	if applied != 0 || refused != 1 {
		t.Errorf("stats = %d,%d", applied, refused)
	}
	if len(sys.Audit()) != 0 {
		t.Error("audit dirty")
	}
}

func TestSystemQueries(t *testing.T) {
	sys, c := twoLevel(t)
	low := c.Members["L1"][0]
	high := c.Members["L2"][0]
	if !sys.CanKnow(high, low) || sys.CanKnow(low, high) {
		t.Error("CanKnow direction wrong")
	}
	if !sys.CanKnowF(high, c.Bulletin["L1"]) {
		t.Error("CanKnowF read-down missing")
	}
	if !sys.Higher(high, low) || sys.Higher(low, high) {
		t.Error("Higher wrong")
	}
	if lvl, ok := sys.ObjectLevel(c.Bulletin["L2"]); !ok || lvl != sys.LevelOf(high) {
		t.Errorf("ObjectLevel = %d,%v", lvl, ok)
	}
	if ok, _ := sys.Secure(); !ok {
		t.Error("secure hierarchy reported insecure")
	}
	if ok, _ := sys.StrictSecure(); !ok {
		t.Error("strict security failed")
	}
	if sys.Classification().NumLevels() < 2 {
		t.Error("levels missing")
	}
}

func TestSystemExplain(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	v := g.MustObject("v")
	y := g.MustObject("y")
	g.AddExplicit(x, v, rights.T)
	g.AddExplicit(v, y, rights.R)
	sys := New(g)
	if !sys.CanShare(rights.Read, x, y) {
		t.Fatal("CanShare false")
	}
	d, err := sys.ExplainShare(rights.Read, x, y)
	if err != nil || len(d) == 0 {
		t.Fatalf("ExplainShare = %v, %v", d, err)
	}
	if _, err := sys.Replay(d); err != nil {
		t.Fatalf("guarded replay refused a same-level share: %v", err)
	}
	if !g.Explicit(x, y).Has(rights.Read) {
		t.Error("replay did not apply")
	}
	if _, err := sys.ExplainKnow(x, y); err != nil {
		t.Errorf("ExplainKnow: %v", err)
	}
}

func TestReclassifyRefusesDirty(t *testing.T) {
	sys, c := twoLevel(t)
	if err := sys.Reclassify(); err != nil {
		t.Errorf("clean reclassify: %v", err)
	}
	low := c.Members["L1"][0]
	sys.Graph().AddExplicit(low, c.Bulletin["L2"], rights.R)
	if err := sys.Reclassify(); err == nil {
		t.Error("dirty reclassify allowed")
	}
}
