package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestHistIdxBoundsConsistent(t *testing.T) {
	// Every bucket's [lo, bound] range must be non-empty, contiguous with
	// its neighbours, and map back onto itself through histIdx.
	prev := int64(-1)
	for i := 0; i < histNumBuckets; i++ {
		lo, hi := histLo(i), histBound(i)
		if lo > hi {
			t.Fatalf("bucket %d: lo %d > hi %d", i, lo, hi)
		}
		if int64(lo) != prev+1 {
			t.Fatalf("bucket %d: lo %d does not continue from previous hi %d", i, lo, prev)
		}
		if histIdx(lo) != i || histIdx(hi) != i {
			t.Fatalf("bucket %d: histIdx(lo)=%d histIdx(hi)=%d", i, histIdx(lo), histIdx(hi))
		}
		prev = int64(hi)
	}
	if histIdx(math.MaxUint64) != histNumBuckets-1 {
		t.Fatalf("max value lands in bucket %d, want %d", histIdx(math.MaxUint64), histNumBuckets-1)
	}
}

func TestHistQuantileAccuracy(t *testing.T) {
	// Against a known distribution the interpolated quantile must land
	// within one sub-bucket (≤ ~12.5% relative error at 4 sub-buckets
	// per octave, plus interpolation slack).
	var h Hist
	rng := rand.New(rand.NewSource(42))
	n := 20000
	samples := make([]time.Duration, n)
	for i := range samples {
		// Log-uniform latencies between 10µs and 100ms.
		d := time.Duration(float64(10*time.Microsecond) * math.Pow(1e4, rng.Float64()))
		samples[i] = d
		h.Observe(d)
	}
	snap := h.Snapshot()
	if snap.Count != uint64(n) {
		t.Fatalf("count = %d, want %d", snap.Count, n)
	}
	sorted := append([]time.Duration(nil), samples...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := sorted[int(q*float64(n-1)+0.5)]
		got := snap.Quantile(q)
		rel := math.Abs(float64(got)-float64(want)) / float64(want)
		if rel > 0.15 {
			t.Errorf("q%.2f = %v, true %v (rel err %.1f%%)", q, got, want, rel*100)
		}
	}
}

func TestHistQuantileSingleSample(t *testing.T) {
	var h Hist
	h.Observe(7 * time.Millisecond)
	snap := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := snap.Quantile(q)
		// A single observation answers every quantile with (at worst) its
		// own bucket: within the sub-bucket width of the true value.
		if got < 7*time.Millisecond || got > 9*time.Millisecond {
			t.Errorf("q%v = %v, want ~7ms", q, got)
		}
	}
	if snap.Mean() != 7*time.Millisecond {
		t.Errorf("mean = %v", snap.Mean())
	}
}

func TestHistMergeEqualsUnion(t *testing.T) {
	var a, b, union Hist
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Int63n(int64(50 * time.Millisecond)))
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
		union.Observe(d)
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	want := union.Snapshot()
	if merged.Count != want.Count || merged.Sum != want.Sum {
		t.Fatalf("merged count/sum = %d/%v, want %d/%v", merged.Count, merged.Sum, want.Count, want.Sum)
	}
	for i := range want.Counts {
		if merged.Counts[i] != want.Counts[i] {
			t.Fatalf("bucket %d: merged %d, union %d", i, merged.Counts[i], want.Counts[i])
		}
	}
	for _, q := range []float64{0.5, 0.99} {
		if merged.Quantile(q) != want.Quantile(q) {
			t.Errorf("q%v: merged %v, union %v", q, merged.Quantile(q), want.Quantile(q))
		}
	}
}

func TestHistMergeIntoEmpty(t *testing.T) {
	var h Hist
	h.Observe(time.Millisecond)
	var empty HistSnapshot
	empty.Merge(h.Snapshot())
	if empty.Count != 1 || empty.Quantile(0.5) == 0 {
		t.Fatalf("merge into zero snapshot: %+v", empty)
	}
}

func TestHistConcurrentObserve(t *testing.T) {
	var h Hist
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Int63n(int64(time.Second))))
			}
		}(int64(w))
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != workers*per {
		t.Fatalf("count = %d, want %d", snap.Count, workers*per)
	}
	var total uint64
	for _, c := range snap.Counts {
		total += c
	}
	if total != workers*per {
		t.Fatalf("bucket total = %d, want %d", total, workers*per)
	}
}

func TestHistBucketsAscendingCumulative(t *testing.T) {
	var h Hist
	for _, d := range []time.Duration{time.Microsecond, time.Millisecond, time.Millisecond, time.Second} {
		h.Observe(d)
	}
	les, cums := h.Snapshot().HistBuckets()
	if len(les) != 3 { // three distinct buckets
		t.Fatalf("les = %v", les)
	}
	for i := 1; i < len(les); i++ {
		if les[i] <= les[i-1] {
			t.Errorf("le not ascending: %v", les)
		}
		if cums[i] < cums[i-1] {
			t.Errorf("cums not cumulative: %v", cums)
		}
	}
	if cums[len(cums)-1] != 4 {
		t.Errorf("final cumulative = %d, want 4", cums[len(cums)-1])
	}
}

// The acceptance budget for the hot-path recording: ≤ ~100ns/op. The
// E22 experiment gates this in CI; the benchmark is the local view.
func BenchmarkHistObserve(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}

func BenchmarkHistObserveParallel(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := time.Microsecond
		for pb.Next() {
			h.Observe(d)
			d += time.Microsecond
		}
	})
}

func BenchmarkHistSnapshot(b *testing.B) {
	var h Hist
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	for i := 0; i < b.N; i++ {
		_ = h.Snapshot()
	}
}
