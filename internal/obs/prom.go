package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// PromWriter builds a Prometheus text-exposition (version 0.0.4) body
// without external dependencies. Metric families are emitted in the order
// first written; series within a family are emitted in the order written,
// so callers produce deterministic output by writing in sorted order.
//
//	var w obs.PromWriter
//	w.Counter("tg_requests_total", "Requests served.",
//	    obs.L("route", "/query/can-share"), 42)
//	w.Gauge("tg_graph_vertices", "Vertices in the live graph.", nil, 17)
//	body := w.String()
type PromWriter struct {
	b     strings.Builder
	typed map[string]bool
}

// Label is one name="value" pair of a series.
type Label struct{ Name, Value string }

// L builds a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

func (w *PromWriter) header(name, typ, help string) {
	if w.typed == nil {
		w.typed = make(map[string]bool)
	}
	if w.typed[name] {
		return
	}
	w.typed[name] = true
	if help != "" {
		fmt.Fprintf(&w.b, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(&w.b, "# TYPE %s %s\n", name, typ)
}

// Counter emits one counter series. The value is a float so callers can
// pass seconds totals; counters must be cumulative.
func (w *PromWriter) Counter(name, help string, labels []Label, value float64) {
	w.header(name, "counter", help)
	w.series(name, "", labels, value)
}

// Gauge emits one gauge series.
func (w *PromWriter) Gauge(name, help string, labels []Label, value float64) {
	w.header(name, "gauge", help)
	w.series(name, "", labels, value)
}

// Summary emits a summary family for one label set: the quantile series
// plus _sum (seconds) and _count.
func (w *PromWriter) Summary(name, help string, labels []Label, quantiles map[float64]float64, sumSeconds float64, count uint64) {
	w.header(name, "summary", help)
	qs := make([]float64, 0, len(quantiles))
	for q := range quantiles {
		qs = append(qs, q)
	}
	sort.Float64s(qs)
	for _, q := range qs {
		ql := append(append([]Label(nil), labels...), L("quantile", trimFloat(q)))
		w.series(name, "", ql, quantiles[q])
	}
	w.series(name, "_sum", labels, sumSeconds)
	w.series(name, "_count", labels, float64(count))
}

// Histogram emits a histogram family for one label set: ascending
// cumulative `_bucket` series with `le` labels, the mandatory `+Inf`
// bucket carrying the total count, then `_sum` (seconds) and `_count`.
// les/cums come pre-cumulated and ascending (HistSnapshot.HistBuckets
// produces exactly this shape); only occupied buckets are emitted, which
// the exposition format permits and keeps a 250-bucket histogram's
// scrape proportional to the latencies actually seen.
func (w *PromWriter) Histogram(name, help string, labels []Label, les []float64, cums []uint64, sumSeconds float64, count uint64) {
	w.header(name, "histogram", help)
	for i, le := range les {
		bl := append(append([]Label(nil), labels...), L("le", trimFloat(le)))
		w.series(name, "_bucket", bl, float64(cums[i]))
	}
	inf := append(append([]Label(nil), labels...), L("le", "+Inf"))
	w.series(name, "_bucket", inf, float64(count))
	w.series(name, "_sum", labels, sumSeconds)
	w.series(name, "_count", labels, float64(count))
}

// HistogramSnapshot is Histogram fed straight from a HistSnapshot.
func (w *PromWriter) HistogramSnapshot(name, help string, labels []Label, s HistSnapshot) {
	les, cums := s.HistBuckets()
	w.Histogram(name, help, labels, les, cums, s.Sum.Seconds(), s.Count)
}

func (w *PromWriter) series(name, suffix string, labels []Label, value float64) {
	w.b.WriteString(name)
	w.b.WriteString(suffix)
	if len(labels) > 0 {
		w.b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.b.WriteByte(',')
			}
			fmt.Fprintf(&w.b, "%s=%q", l.Name, escapeLabel(l.Value))
		}
		w.b.WriteByte('}')
	}
	fmt.Fprintf(&w.b, " %s\n", trimFloat(value))
}

// String returns the exposition body.
func (w *PromWriter) String() string { return w.b.String() }

// trimFloat renders a float in its shortest exact form, keeping integers
// integral ("42", "0.99", "1.5e-05").
func trimFloat(f float64) string {
	if f == float64(int64(f)) && f < 1e15 && f > -1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func escapeLabel(s string) string {
	// %q already escapes backslash and double quote; newline is the only
	// other character the format forbids raw, and %q escapes it too. So
	// the label value needs no pre-processing — this hook documents that.
	return s
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
