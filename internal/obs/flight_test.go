package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestFlightKeepsMostRecent(t *testing.T) {
	f := NewFlight(16)
	for i := 1; i <= 40; i++ {
		f.Record(FlightEvent{Kind: "request", Detail: fmt.Sprintf("ev%d", i)})
	}
	evs := f.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("snapshot holds %d events, want 16", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(40 - 16 + 1 + i)
		if ev.Seq != wantSeq {
			t.Errorf("evs[%d].Seq = %d, want %d", i, ev.Seq, wantSeq)
		}
		if ev.Time.IsZero() {
			t.Errorf("evs[%d] missing timestamp", i)
		}
	}
	if evs[len(evs)-1].Detail != "ev40" {
		t.Errorf("newest event = %q", evs[len(evs)-1].Detail)
	}
}

func TestFlightPartialFill(t *testing.T) {
	f := NewFlight(64)
	f.Record(FlightEvent{Kind: "lifecycle", Detail: "boot"})
	f.Record(FlightEvent{Kind: "request"})
	evs := f.Snapshot()
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("partial ring snapshot = %+v", evs)
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *Flight
	f.Record(FlightEvent{Kind: "request"})
	if got := f.Snapshot(); got != nil {
		t.Errorf("nil snapshot = %v", got)
	}
	if f.Size() != 0 {
		t.Errorf("nil size = %d", f.Size())
	}
	var sb strings.Builder
	f.Dump(&sb) // must not panic
	if NewFlight(0) != nil {
		t.Error("NewFlight(0) should be the disabled recorder")
	}
}

func TestFlightRoundsUpToPowerOfTwo(t *testing.T) {
	if got := NewFlight(100).Size(); got != 128 {
		t.Errorf("size = %d, want 128", got)
	}
	if got := NewFlight(1).Size(); got != 16 {
		t.Errorf("minimum size = %d, want 16", got)
	}
}

func TestFlightConcurrentRecord(t *testing.T) {
	f := NewFlight(256)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.Record(FlightEvent{Kind: "request", Code: w, Dur: 1})
			}
		}(w)
	}
	// Concurrent snapshots must never see torn events (wrong seq for the
	// slot) even while writers lap the ring.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for j, ev := range f.Snapshot() {
				if ev.Kind != "request" {
					t.Errorf("snapshot[%d] torn: %+v", j, ev)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	evs := f.Snapshot()
	if len(evs) != 256 {
		t.Fatalf("final snapshot = %d events, want 256", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestFlightDump(t *testing.T) {
	f := NewFlight(16)
	f.Record(FlightEvent{Kind: "panic", Trace: "deadbeefdeadbeefdeadbeefdeadbeef", Route: "/query/can-share", Detail: "boom"})
	var sb strings.Builder
	f.Dump(&sb)
	out := sb.String()
	for _, want := range []string{"flight recorder: 1 events", "panic", "deadbeef", "boom"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func BenchmarkFlightRecord(b *testing.B) {
	f := NewFlight(1024)
	ev := FlightEvent{Kind: "request", Route: "/query/can-share", Code: 200}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record(ev)
	}
}
