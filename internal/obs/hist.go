package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a wait-free, mergeable latency histogram: a fixed array of
// atomic counters over log-spaced buckets, in the style of Monarch's
// mergeable distributions. Observe is two atomic adds and a bit scan —
// no locks, no allocation — so the hot path records under the same
// mutex-free contract the decision procedures run with, and a scrape
// never blocks an observer. Snapshots from many histograms (other
// status classes, other namespaces, other NODES) merge by plain
// addition, which is what lets tgtop compute fleet-wide quantiles from
// per-node scrapes.
//
// Buckets are log-spaced with 4 sub-buckets per octave (values share a
// bucket when they agree in their top three significant bits), so an
// interpolated quantile is wrong by at most ~12% of the true value —
// tighter than the sorted-sample-window estimate once the window
// overflows, and O(buckets) instead of O(n log n) to read.
type Hist struct {
	buckets [histNumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
}

const (
	// histSubBits sub-bucket bits per octave: 2 bits = 4 sub-buckets,
	// bucket width ≤ 1/4 of the value.
	histSubBits = 2
	histSub     = 1 << histSubBits
	// histNumBuckets covers the full uint64 nanosecond range: histSub
	// exact buckets for values < histSub, then histSub buckets per
	// octave for bit lengths histSubBits+1 .. 64 — 62 octaves at the
	// default parameters: 4 + 62*4.
	histNumBuckets = histSub + (64-histSubBits)*histSub
)

// histIdx maps a nanosecond value onto its bucket.
func histIdx(v uint64) int {
	if v < histSub {
		return int(v) // exact buckets for tiny values
	}
	// v = m·2^s with m the (histSubBits+1)-bit leading mantissa; s = 0
	// for the first octave after the exact prefix.
	s := bits.Len64(v) - (histSubBits + 1)
	m := v >> uint(s)
	return histSub + s*histSub + int(m-histSub)
}

// histBound returns the inclusive upper bound of bucket i in
// nanoseconds: the largest value histIdx maps to i. For the last
// bucket the (m+1)<<s computation wraps to 0, so -1 yields MaxUint64.
func histBound(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	s := uint((i - histSub) / histSub)
	m := uint64(histSub + (i-histSub)%histSub)
	return (m+1)<<s - 1
}

// histLo returns the smallest value bucket i holds.
func histLo(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	s := uint((i - histSub) / histSub)
	m := uint64(histSub + (i-histSub)%histSub)
	return m << s
}

// Observe records one latency. Negative durations clamp to zero. Safe
// for any number of concurrent callers; never blocks.
func (h *Hist) Observe(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.buckets[histIdx(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistSnapshot is a copy-out view of a histogram: plain integers,
// mergeable by addition. Counts holds per-bucket totals indexed like
// the live histogram. A snapshot taken during concurrent Observes may
// be mid-update by at most the in-flight observations — counts never
// tear, they are only ever a few observations behind each other.
type HistSnapshot struct {
	Counts []uint64
	Count  uint64
	Sum    time.Duration
}

// Snapshot copies the histogram without blocking observers.
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{Counts: make([]uint64, histNumBuckets)}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	return s
}

// Merge folds o into s — the mergeable-distribution property: the merge
// of two snapshots answers quantiles over the union of their
// observations. An empty (zero-value) s adopts o's shape.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if len(s.Counts) == 0 && len(o.Counts) > 0 {
		s.Counts = make([]uint64, len(o.Counts))
	}
	for i := range o.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Empty reports whether the snapshot holds no observations.
func (s HistSnapshot) Empty() bool { return s.Count == 0 }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear
// interpolation inside the landing bucket. Zero when empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank target, 1-based: the same convention the old sorted
	// window used, so a single observation answers every quantile with
	// itself.
	rank := uint64(q*float64(s.Count-1)+0.5) + 1
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := histLo(i), histBound(i)+1
			// Interpolate the rank's position inside the bucket.
			frac := float64(rank-cum) / float64(c)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum += c
	}
	// Unreachable when Count equals the bucket total; be safe under a
	// racing snapshot where count led the buckets.
	return time.Duration(histBound(histNumBuckets - 1))
}

// Mean returns the average observation, zero when empty.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// HistBuckets renders the snapshot as ascending (upperBoundSeconds,
// cumulativeCount) pairs covering only occupied buckets — the compact
// form a Prometheus _bucket family wants; the writer appends +Inf
// itself. Upper bounds are exclusive in nanoseconds, so the cumulative
// count at bound b is exactly the observations ≤ b-1ns.
func (s HistSnapshot) HistBuckets() (les []float64, cums []uint64) {
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		les = append(les, float64(histBound(i)+1)/1e9)
		cums = append(cums, cum)
	}
	return les, cums
}
