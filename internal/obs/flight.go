package obs

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// FlightEvent is one entry in the flight recorder: a compact structured
// record of something the server just did — a finished request with its
// phase spans, a guard verdict, a replication round, a journal latch, a
// caught panic. Events are what a post-incident reader needs to see the
// seconds before a fault, without the volume of full request logging.
type FlightEvent struct {
	// Seq is the global event number; the ring keeps the highest ones.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// Kind classifies the event: request, panic, guard, replication,
	// journal, redirect, lifecycle.
	Kind string `json:"kind"`
	// Trace is the W3C trace ID of the operation that produced the
	// event, when one existed.
	Trace string `json:"trace_id,omitempty"`
	NS    string `json:"ns,omitempty"`
	Route string `json:"route,omitempty"`
	// Code is the HTTP status (requests) or 0.
	Code int           `json:"code,omitempty"`
	Dur  time.Duration `json:"duration_ns,omitempty"`
	// Detail carries kind-specific text: phase spans of a request, a
	// guard verdict, an error string.
	Detail string `json:"detail,omitempty"`
}

// Flight is a fixed-size lock-free ring of recent events. Record is
// wait-free: a writer claims a slot with one atomic increment and
// publishes a fully-built event into it with one atomic pointer store,
// so readers only ever see committed events — never a torn one. The
// design accepts one documented imperfection in exchange for never
// blocking the request path: during a concurrent wrap a snapshot may
// momentarily miss an event whose slot was just reclaimed; sorting by
// Seq keeps whatever it did catch in order.
//
// All methods are nil-safe: a nil *Flight records nothing, so a server
// built without a recorder pays a pointer test.
type Flight struct {
	slots []atomic.Pointer[FlightEvent]
	mask  uint64
	next  atomic.Uint64 // next seq to assign, 1-based
}

// NewFlight returns a recorder keeping the most recent size events
// (rounded up to a power of two, minimum 16). size ≤ 0 returns nil —
// the disabled recorder.
func NewFlight(size int) *Flight {
	if size <= 0 {
		return nil
	}
	n := 16
	for n < size {
		n <<= 1
	}
	return &Flight{slots: make([]atomic.Pointer[FlightEvent], n), mask: uint64(n - 1)}
}

// Size returns the ring capacity; 0 when disabled.
func (f *Flight) Size() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Record appends one event, overwriting the oldest. The event's Seq and
// Time are filled in here. Wait-free; safe from any goroutine,
// including a panicking one.
func (f *Flight) Record(ev FlightEvent) {
	if f == nil {
		return
	}
	seq := f.next.Add(1)
	ev.Seq = seq
	ev.Time = time.Now()
	f.slots[(seq-1)&f.mask].Store(&ev)
}

// Snapshot returns the recorded events oldest → newest. An event being
// overwritten during the copy may be skipped; everything returned is
// internally consistent and Seq-ordered.
func (f *Flight) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	hi := f.next.Load()
	size := uint64(len(f.slots))
	lo := uint64(1)
	if hi > size {
		lo = hi - size + 1
	}
	out := make([]FlightEvent, 0, hi-lo+1)
	for seq := lo; seq <= hi; seq++ {
		ev := f.slots[(seq-1)&f.mask].Load()
		// A slot can hold an older event (its writer not yet landed) or a
		// newer one (lapped while we walked); only the seq we came for is
		// in-window by construction.
		if ev != nil && ev.Seq == seq {
			out = append(out, *ev)
		}
	}
	return out
}

// Dump writes the ring as aligned text, oldest first — the panic and
// SIGQUIT sink. It never fails the caller: a broken writer just stops
// the dump.
func (f *Flight) Dump(w io.Writer) {
	evs := f.Snapshot()
	fmt.Fprintf(w, "=== flight recorder: %d events (ring %d) ===\n", len(evs), f.Size())
	for _, ev := range evs {
		if _, err := fmt.Fprintf(w, "%6d %s %-11s %-32s ns=%s route=%s code=%d dur=%s %s\n",
			ev.Seq, ev.Time.Format("15:04:05.000"), ev.Kind, ev.Trace,
			ev.NS, ev.Route, ev.Code, ev.Dur, ev.Detail); err != nil {
			return
		}
	}
	fmt.Fprintf(w, "=== end flight recorder ===\n")
}
