package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilProbeIsInert(t *testing.T) {
	var p *Probe
	sp := p.Span("phase")
	sp.Count("n", 1)
	sp.End()
	p.Add("k", 2)
	if p.Spans() != nil || p.Counters() != nil || p.Report() != "" {
		t.Fatal("nil probe must record nothing")
	}
	var agg PhaseAgg
	agg.Observe(p) // must not panic
	if len(agg.Snapshot()) != 0 {
		t.Fatal("nil probe observed into aggregate")
	}
}

func TestProbeRecordsSpansAndCounts(t *testing.T) {
	p := NewProbe("can-share")
	if p.TraceID == "" || len(p.TraceID) != 32 {
		t.Fatalf("trace ID %q not 32 hex digits", p.TraceID)
	}
	if len(p.SpanID) != 16 {
		t.Fatalf("span ID %q not 16 hex digits", p.SpanID)
	}
	sp := p.Span("bridge_closure")
	sp.Count("visited", 42).Count("scanned", 99)
	sp.End()
	p.Add("cache_hit", 1)
	spans := p.Spans()
	if len(spans) != 1 || spans[0].Phase != "bridge_closure" {
		t.Fatalf("spans = %+v", spans)
	}
	if len(spans[0].Counts) != 2 || spans[0].Counts[0] != (Count{"visited", 42}) {
		t.Fatalf("counts = %+v", spans[0].Counts)
	}
	rep := p.Report()
	for _, want := range []string{"can-share", "bridge_closure", "visited=42", "cache_hit=1", "total"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestPhaseAggFoldsProbes(t *testing.T) {
	var agg PhaseAgg
	for i := 0; i < 3; i++ {
		p := NewProbe("can-know")
		sp := p.Span("link_closure")
		sp.Count("visited", 10)
		sp.End()
		agg.Observe(p)
	}
	snap := agg.Snapshot()
	st, ok := snap[PhaseKey{Procedure: "can-know", Phase: "link_closure"}]
	if !ok {
		t.Fatalf("missing aggregate, have %v", snap)
	}
	if st.Count != 3 || st.Counts["visited"] != 30 {
		t.Fatalf("aggregate = %+v", st)
	}
	if st.Total <= 0 || st.Max <= 0 || st.Max > st.Total {
		t.Fatalf("durations inconsistent: %+v", st)
	}
	keys := SortedKeys(snap)
	if len(keys) != 1 || keys[0].Phase != "link_closure" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestPhaseAggConcurrent(t *testing.T) {
	var agg PhaseAgg
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				p := NewProbe("op")
				sp := p.Span("phase")
				sp.Count("n", 1)
				sp.End()
				agg.Observe(p)
			}
		}()
	}
	wg.Wait()
	st := agg.Snapshot()[PhaseKey{Procedure: "op", Phase: "phase"}]
	if st.Count != 800 || st.Counts["n"] != 800 {
		t.Fatalf("aggregate = %+v", st)
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if ProbeFrom(ctx) != nil || TraceFrom(ctx) != "" {
		t.Fatal("empty context must yield nil probe, empty trace")
	}
	p := NewProbe("http")
	ctx = WithProbe(ctx, p)
	if ProbeFrom(ctx) != p {
		t.Fatal("probe not recovered from context")
	}
	if TraceFrom(ctx) != p.TraceID {
		t.Fatal("trace should fall back to the probe's ID")
	}
	ctx = WithTrace(ctx, "deadbeefdeadbeef")
	if TraceFrom(ctx) != "deadbeefdeadbeef" {
		t.Fatal("explicit trace must win")
	}
	if WithProbe(context.Background(), nil) != context.Background() {
		t.Fatal("nil probe should not be stored")
	}
}

func TestTraceIDsDistinct(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 32 || seen[id] {
			t.Fatalf("bad or duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestSpanDurationPositive(t *testing.T) {
	p := NewProbe("op")
	sp := p.Span("sleepy")
	time.Sleep(time.Millisecond)
	sp.End()
	if d := p.Spans()[0].Duration; d < time.Millisecond {
		t.Fatalf("duration %v < 1ms", d)
	}
}
