package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the exposition format PromWriter emits:
// a dependency-free parser used by tgtop (to merge per-node latency
// histograms into fleet quantiles) and by ci/metricslint (to validate a
// live scrape in CI). It parses the subset of the 0.0.4 text format the
// repo produces — which is also the subset worth linting.

// PromSeries is one sample line.
type PromSeries struct {
	Name   string // full series name, including _bucket/_sum/_count suffixes
	Labels map[string]string
	Value  float64
}

// PromFamily groups the series sharing a family name, with their TYPE.
type PromFamily struct {
	Name   string
	Type   string // counter, gauge, summary, histogram, untyped
	Help   string
	Series []PromSeries
}

// baseFamily strips the suffixes that bind a series to its family for
// typed summary/histogram families.
func baseFamily(name string, typed map[string]*PromFamily) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f := typed[base]; f != nil && (f.Type == "histogram" || f.Type == "summary") {
				return base
			}
		}
	}
	return name
}

// ParseProm parses an exposition body into families, enforcing the
// structural rules of the format: parseable sample lines, one TYPE per
// family announced before its samples, and family lines grouped
// together. Violations return an error naming the first bad line.
func ParseProm(body string) ([]PromFamily, error) {
	typed := make(map[string]*PromFamily)
	var order []*PromFamily
	byName := make(map[string]*PromFamily)
	var last *PromFamily
	closed := make(map[string]bool)

	family := func(name string) *PromFamily {
		if f := byName[name]; f != nil {
			return f
		}
		f := &PromFamily{Name: name, Type: "untyped"}
		byName[name] = f
		order = append(order, f)
		return f
	}

	for lineNo, line := range strings.Split(body, "\n") {
		where := func(msg string, args ...any) error {
			return fmt.Errorf("line %d: %s: %q", lineNo+1, fmt.Sprintf(msg, args...), line)
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if fields[1] == "HELP" {
				if len(fields) == 4 {
					family(name).Help = fields[3]
				}
				continue
			}
			if len(fields) < 4 {
				return nil, where("TYPE without a type")
			}
			f := family(name)
			if f.Type != "untyped" {
				return nil, where("second TYPE for family %s", name)
			}
			if len(f.Series) > 0 {
				return nil, where("TYPE for %s after its samples", name)
			}
			switch fields[3] {
			case "counter", "gauge", "summary", "histogram", "untyped":
				f.Type = fields[3]
			default:
				return nil, where("unknown type %q", fields[3])
			}
			typed[name] = f
			continue
		}

		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return nil, where("%v", err)
		}
		base := baseFamily(name, typed)
		f := family(base)
		if closed[base] && last != f {
			return nil, where("family %s not contiguous", base)
		}
		if last != nil && last != f {
			closed[last.Name] = true
		}
		last = f
		f.Series = append(f.Series, PromSeries{Name: name, Labels: labels, Value: value})
	}
	return orderedCopy(order), nil
}

func orderedCopy(order []*PromFamily) []PromFamily {
	out := make([]PromFamily, len(order))
	for i, f := range order {
		out[i] = *f
	}
	return out
}

// parsePromSample parses `name{l="v",...} value` (timestamp suffixes are
// not produced by this repo and are rejected).
func parsePromSample(line string) (name string, labels map[string]string, value float64, err error) {
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return "", nil, 0, fmt.Errorf("no metric name")
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("bad metric name %q", name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, ls, lerr := parsePromLabels(rest)
		if lerr != nil {
			return "", nil, 0, lerr
		}
		labels = ls
		rest = rest[end:]
	}
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return "", nil, 0, fmt.Errorf("want exactly one value after the name")
	}
	value, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q", rest)
	}
	return name, labels, value, nil
}

// parsePromLabels parses `{a="b",c="d"}` starting at s[0] == '{',
// returning the index one past the closing brace.
func parsePromLabels(s string) (int, map[string]string, error) {
	labels := make(map[string]string)
	i := 1
	for {
		if i >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label set")
		}
		if s[i] == '}' {
			return i + 1, labels, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, nil, fmt.Errorf("label without '='")
		}
		lname := s[i : i+eq]
		if !validLabelName(lname) {
			return 0, nil, fmt.Errorf("bad label name %q", lname)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("label %s: value not quoted", lname)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("label %s: unterminated value", lname)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, nil, fmt.Errorf("label %s: dangling escape", lname)
				}
				switch s[i+1] {
				case '\\', '"':
					val.WriteByte(s[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("label %s: bad escape \\%c", lname, s[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[lname]; dup {
			return 0, nil, fmt.Errorf("duplicate label %s", lname)
		}
		labels[lname] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func validMetricName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

func validLabelName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0 && s != "__name__"
}

// LintProm runs the full exposition lint: ParseProm's structural rules
// plus the histogram contract — per label set, `le` values strictly
// ascending, cumulative counts non-decreasing, a `+Inf` bucket present
// and equal to `_count`, `_sum` present, and counter values finite and
// non-negative. Returns every violation found.
func LintProm(body string) []error {
	fams, err := ParseProm(body)
	if err != nil {
		return []error{err}
	}
	var errs []error
	for _, f := range fams {
		switch f.Type {
		case "counter":
			for _, s := range f.Series {
				if s.Value < 0 || math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
					errs = append(errs, fmt.Errorf("counter %s: value %v", seriesID(s), s.Value))
				}
			}
		case "histogram":
			errs = append(errs, lintHistogram(f)...)
		}
	}
	return errs
}

// histKey identifies one histogram label set with le stripped.
func histKey(s PromSeries) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, s.Labels[k])
	}
	return b.String()
}

func seriesID(s PromSeries) string {
	return s.Name + "{" + histKey(s) + "}"
}

type histAccum struct {
	les      []float64
	cums     []uint64
	inf      float64
	hasInf   bool
	sum      float64
	hasSum   bool
	count    float64
	hasCount bool
}

// histAccums folds a histogram family's series into one accumulator per
// le-stripped label set, preserving bucket emission order.
func histAccums(f PromFamily) (map[string]*histAccum, []string, []error) {
	acc := make(map[string]*histAccum)
	var order []string
	var errs []error
	get := func(k string) *histAccum {
		a := acc[k]
		if a == nil {
			a = &histAccum{}
			acc[k] = a
			order = append(order, k)
		}
		return a
	}
	for _, s := range f.Series {
		k := histKey(s)
		switch {
		case s.Name == f.Name+"_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				errs = append(errs, fmt.Errorf("%s: bucket without le", seriesID(s)))
				continue
			}
			a := get(k)
			if le == "+Inf" {
				a.inf, a.hasInf = s.Value, true
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				errs = append(errs, fmt.Errorf("%s: bad le %q", seriesID(s), le))
				continue
			}
			a.les = append(a.les, bound)
			a.cums = append(a.cums, uint64(s.Value))
		case s.Name == f.Name+"_sum":
			a := get(k)
			a.sum, a.hasSum = s.Value, true
		case s.Name == f.Name+"_count":
			a := get(k)
			a.count, a.hasCount = s.Value, true
		default:
			errs = append(errs, fmt.Errorf("histogram %s: stray series %s", f.Name, s.Name))
		}
	}
	return acc, order, errs
}

func lintHistogram(f PromFamily) []error {
	acc, order, errs := histAccums(f)
	for _, k := range order {
		a := acc[k]
		id := f.Name + "{" + k + "}"
		for i := 1; i < len(a.les); i++ {
			if a.les[i] <= a.les[i-1] {
				errs = append(errs, fmt.Errorf("%s: le not ascending (%v after %v)", id, a.les[i], a.les[i-1]))
			}
			if a.cums[i] < a.cums[i-1] {
				errs = append(errs, fmt.Errorf("%s: cumulative count drops at le=%v", id, a.les[i]))
			}
		}
		switch {
		case !a.hasInf:
			errs = append(errs, fmt.Errorf("%s: missing +Inf bucket", id))
		case !a.hasCount:
			errs = append(errs, fmt.Errorf("%s: missing _count", id))
		case a.inf != a.count:
			errs = append(errs, fmt.Errorf("%s: +Inf bucket %v != _count %v", id, a.inf, a.count))
		}
		if !a.hasSum {
			errs = append(errs, fmt.Errorf("%s: missing _sum", id))
		}
		if len(a.cums) > 0 && a.hasInf && float64(a.cums[len(a.cums)-1]) > a.inf {
			errs = append(errs, fmt.Errorf("%s: last bucket exceeds +Inf", id))
		}
	}
	return errs
}

// BucketDist is a merged bucket distribution reconstructed from scraped
// histogram series — the cross-node form of HistSnapshot. Les are
// ascending upper bounds in seconds, Cums cumulative counts.
type BucketDist struct {
	Les   []float64
	Cums  []uint64
	Sum   float64
	Count uint64
}

// Merge folds another distribution in, unioning the bucket bounds —
// sound because both sides are cumulative: the count at bound b is the
// observations ≤ b regardless of which scrape contributed them.
func (d *BucketDist) Merge(o BucketDist) {
	if len(d.Les) == 0 {
		d.Les = append([]float64(nil), o.Les...)
		d.Cums = append([]uint64(nil), o.Cums...)
	} else {
		d.Les, d.Cums = mergeBounds(d.Les, d.Cums, o.Les, o.Cums)
	}
	d.Sum += o.Sum
	d.Count += o.Count
}

// mergeBounds unions two ascending cumulative bucket lists. A bound
// present in only one list takes that list's cumulative value at the
// bound plus the other's interpolation floor (its last cumulative at or
// below the bound) — exact for the union of the underlying counters.
func mergeBounds(les1 []float64, cums1 []uint64, les2 []float64, cums2 []uint64) ([]float64, []uint64) {
	var les []float64
	var cums []uint64
	i, j := 0, 0
	var last1, last2 uint64
	for i < len(les1) || j < len(les2) {
		switch {
		case j >= len(les2) || (i < len(les1) && les1[i] < les2[j]):
			last1 = cums1[i]
			les = append(les, les1[i])
			cums = append(cums, last1+last2)
			i++
		case i >= len(les1) || les2[j] < les1[i]:
			last2 = cums2[j]
			les = append(les, les2[j])
			cums = append(cums, last1+last2)
			j++
		default: // equal bounds
			last1, last2 = cums1[i], cums2[j]
			les = append(les, les1[i])
			cums = append(cums, last1+last2)
			i++
			j++
		}
	}
	return les, cums
}

// Quantile interpolates the q-quantile in seconds, mirroring
// HistSnapshot.Quantile over scraped bounds. The first bucket
// interpolates from zero; ranks past the last finite bound answer the
// last bound (the +Inf bucket has no width to interpolate into).
func (d BucketDist) Quantile(q float64) float64 {
	if d.Count == 0 || len(d.Les) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q*float64(d.Count-1)+0.5) + 1
	var prevCum uint64
	lo := 0.0
	for i, cum := range d.Cums {
		if cum >= rank {
			frac := float64(rank-prevCum) / float64(cum-prevCum)
			return lo + frac*(d.Les[i]-lo)
		}
		prevCum = cum
		lo = d.Les[i]
	}
	return d.Les[len(d.Les)-1]
}

// HistogramDist extracts and merges the series of one histogram family
// whose labels all satisfy match (nil matches everything) — how tgtop
// turns a /metrics scrape into a per-node or fleet-wide distribution.
func HistogramDist(fams []PromFamily, name string, match func(labels map[string]string) bool) BucketDist {
	var out BucketDist
	for _, f := range fams {
		if f.Name != name || f.Type != "histogram" {
			continue
		}
		acc, order, _ := histAccums(f)
		for _, k := range order {
			a := acc[k]
			if match != nil && len(f.Series) > 0 {
				// Find one series of this accumulator to test its labels.
				var labels map[string]string
				for _, s := range f.Series {
					if histKey(s) == k {
						labels = s.Labels
						break
					}
				}
				if !match(labels) {
					continue
				}
			}
			out.Merge(BucketDist{Les: a.les, Cums: a.cums, Sum: a.sum, Count: uint64(a.count)})
		}
	}
	return out
}
