// Package obs is the dependency-free telemetry layer: phase-timed spans,
// counters, trace IDs and a Prometheus text-exposition writer, threaded
// through the decision procedures, the rule engine and the HTTP service.
//
// # Probes
//
// A Probe collects the spans and counters of ONE logical operation — an
// HTTP request, a CLI query. Every method is safe on a nil *Probe and
// compiles down to a pointer test, so instrumented hot paths cost nothing
// when telemetry is off: the decision procedures accept a probe and are
// called with nil from the uninstrumented entry points.
//
//	p := obs.NewProbe("can-share")
//	sp := p.Span("bridge_closure")
//	... work ...
//	sp.Count("visited", int64(res.Visited()))
//	sp.End()
//
// # Phase aggregation
//
// A PhaseAgg folds finished probes into per-(procedure, phase) totals —
// count, cumulative duration, max — the long-running aggregate a /metrics
// endpoint exposes, next to the per-operation detail a trace ID recovers
// from the structured log.
//
// # Trace identity
//
// Probes carry a W3C trace context (TraceContext): a 32-hex trace ID
// shared across every node one logical operation touches plus a
// per-hop span ID, honored from incoming `traceparent` headers and
// propagated outward on shard redirects and replication polls.
// WithTrace/TraceFrom and WithProbe/ProbeFrom plumb IDs and probes
// through context.Context so the service can propagate them from
// middleware to handlers without threading extra parameters.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// A SpanRecord is one finished phase of an operation.
type SpanRecord struct {
	Phase    string        `json:"phase"`
	Duration time.Duration `json:"duration_ns"`
	// Counts carry phase-specific magnitudes: product states visited,
	// edges scanned, closure iterations, chain lengths.
	Counts []Count `json:"counts,omitempty"`
}

// Count is one named magnitude attached to a span.
type Count struct {
	Key string `json:"key"`
	N   int64  `json:"n"`
}

// Probe collects the telemetry of one operation. The zero value is not
// useful; create probes with NewProbe. All methods are nil-safe: a nil
// *Probe records nothing and allocates nothing.
type Probe struct {
	mu sync.Mutex
	// Op names the operation ("can-share", "http"). Set at creation.
	Op string
	// TraceID correlates the probe with log lines, response headers and
	// — via traceparent propagation — the other nodes this operation
	// touched. 32 lowercase hex digits.
	TraceID string
	// SpanID identifies this hop within the trace; ParentID is the span
	// of the upstream hop ("" at the trace root).
	SpanID   string
	ParentID string
	spans    []SpanRecord
	extra    []Count
}

// NewProbe returns a collecting probe for the named operation, rooted
// in a fresh trace.
func NewProbe(op string) *Probe {
	tc := NewTraceContext()
	return &Probe{Op: op, TraceID: tc.TraceID, SpanID: tc.SpanID}
}

// NewProbeFrom returns a collecting probe joining an existing trace:
// the trace ID is adopted, the upstream span becomes the parent, and a
// fresh span ID identifies this hop.
func NewProbeFrom(op string, tc TraceContext) *Probe {
	child := tc.Child()
	return &Probe{Op: op, TraceID: child.TraceID, SpanID: child.SpanID, ParentID: tc.SpanID}
}

// Context returns the probe's own trace context — what an outbound hop
// should carry as its traceparent. Zero on a nil probe.
func (p *Probe) Context() TraceContext {
	if p == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: p.TraceID, SpanID: p.SpanID}
}

// Span starts a phase timer. The returned Span is a value; call End to
// record it. On a nil probe the span is inert.
func (p *Probe) Span(phase string) Span {
	if p == nil {
		return Span{}
	}
	return Span{p: p, phase: phase, start: time.Now()}
}

// Add records an operation-level counter (not tied to a phase).
func (p *Probe) Add(key string, n int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.extra = append(p.extra, Count{Key: key, N: n})
	p.mu.Unlock()
}

// Spans returns the finished spans in completion order.
func (p *Probe) Spans() []SpanRecord {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]SpanRecord(nil), p.spans...)
}

// Counters returns the operation-level counters recorded with Add.
func (p *Probe) Counters() []Count {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Count(nil), p.extra...)
}

// Report renders the probe as an aligned per-phase breakdown:
//
//	phase            duration     counts
//	spanners           12.3µs     x_primes=2 s_primes=1
//	bridge_closure     48.1µs     visited=212 scanned=980
func (p *Probe) Report() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	spans := append([]SpanRecord(nil), p.spans...)
	extra := append([]Count(nil), p.extra...)
	p.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "%s trace=%s\n", p.Op, p.TraceID)
	var total time.Duration
	for _, s := range spans {
		total += s.Duration
	}
	fmt.Fprintf(&b, "  %-22s %12s  %s\n", "phase", "duration", "counts")
	for _, s := range spans {
		fmt.Fprintf(&b, "  %-22s %12s  %s\n", s.Phase, s.Duration, formatCounts(s.Counts))
	}
	fmt.Fprintf(&b, "  %-22s %12s  %s\n", "total", total, formatCounts(extra))
	return b.String()
}

func formatCounts(cs []Count) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = fmt.Sprintf("%s=%d", c.Key, c.N)
	}
	return strings.Join(parts, " ")
}

// Span is an in-flight phase timer returned by Probe.Span. The zero value
// (from a nil probe) is inert.
type Span struct {
	p      *Probe
	phase  string
	start  time.Time
	counts []Count
}

// Count attaches a named magnitude to the span. Returns the span so calls
// chain. No-op on an inert span.
func (s *Span) Count(key string, n int64) *Span {
	if s.p == nil {
		return s
	}
	s.counts = append(s.counts, Count{Key: key, N: n})
	return s
}

// End records the span on its probe. No-op on an inert span. End must be
// called at most once.
func (s *Span) End() {
	if s.p == nil {
		return
	}
	rec := SpanRecord{Phase: s.phase, Duration: time.Since(s.start), Counts: s.counts}
	s.p.mu.Lock()
	s.p.spans = append(s.p.spans, rec)
	s.p.mu.Unlock()
}

// NewTraceID returns a fresh 32-hex-digit W3C trace identifier.
func NewTraceID() string { return randHex(16) }

// PhaseKey identifies one aggregated (procedure, phase) series.
type PhaseKey struct {
	Procedure string
	Phase     string
}

// PhaseStat is the aggregate of one (procedure, phase) series.
type PhaseStat struct {
	Count uint64        `json:"count"`
	Total time.Duration `json:"total_ns"`
	Max   time.Duration `json:"max_ns"`
	// Counts sums each span-count key across observations (e.g. total
	// product states visited by this phase since process start).
	Counts map[string]int64 `json:"counts,omitempty"`
}

// PhaseAgg accumulates finished probes into per-(procedure, phase)
// aggregates. Safe for concurrent use. The zero value is ready.
type PhaseAgg struct {
	mu    sync.Mutex
	stats map[PhaseKey]*PhaseStat
}

// Observe folds every span of p into the aggregate. Nil probes fold to
// nothing.
func (a *PhaseAgg) Observe(p *Probe) {
	if p == nil {
		return
	}
	p.mu.Lock()
	op := p.Op
	spans := append([]SpanRecord(nil), p.spans...)
	p.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stats == nil {
		a.stats = make(map[PhaseKey]*PhaseStat)
	}
	for _, s := range spans {
		k := PhaseKey{Procedure: op, Phase: s.Phase}
		st := a.stats[k]
		if st == nil {
			st = &PhaseStat{}
			a.stats[k] = st
		}
		st.Count++
		st.Total += s.Duration
		if s.Duration > st.Max {
			st.Max = s.Duration
		}
		for _, c := range s.Counts {
			if st.Counts == nil {
				st.Counts = make(map[string]int64)
			}
			st.Counts[c.Key] += c.N
		}
	}
}

// Snapshot returns a copy of the aggregates keyed by (procedure, phase),
// sorted iteration left to the caller via SortedKeys.
func (a *PhaseAgg) Snapshot() map[PhaseKey]PhaseStat {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[PhaseKey]PhaseStat, len(a.stats))
	for k, st := range a.stats {
		cp := *st
		if st.Counts != nil {
			cp.Counts = make(map[string]int64, len(st.Counts))
			for ck, cv := range st.Counts {
				cp.Counts[ck] = cv
			}
		}
		out[k] = cp
	}
	return out
}

// SortedKeys returns the snapshot's keys ordered by procedure then phase,
// for deterministic exposition.
func SortedKeys(m map[PhaseKey]PhaseStat) []PhaseKey {
	keys := make([]PhaseKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Procedure != keys[j].Procedure {
			return keys[i].Procedure < keys[j].Procedure
		}
		return keys[i].Phase < keys[j].Phase
	})
	return keys
}
