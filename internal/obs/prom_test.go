package obs

import (
	"strings"
	"testing"
)

func TestPromWriterExposition(t *testing.T) {
	var w PromWriter
	w.Counter("tg_requests_total", "Requests served.", []Label{L("route", "/query/can-share")}, 42)
	w.Counter("tg_requests_total", "Requests served.", []Label{L("route", "/stats")}, 7)
	w.Gauge("tg_graph_vertices", "Vertices in the live graph.", nil, 17)
	w.Summary("tg_request_latency_seconds", "Route latency.",
		[]Label{L("route", "/stats")},
		map[float64]float64{0.5: 0.000123, 0.9: 0.00045, 0.99: 0.0012},
		0.789, 42)
	out := w.String()

	wantLines := []string{
		"# TYPE tg_requests_total counter",
		`tg_requests_total{route="/query/can-share"} 42`,
		`tg_requests_total{route="/stats"} 7`,
		"# TYPE tg_graph_vertices gauge",
		"tg_graph_vertices 17",
		"# TYPE tg_request_latency_seconds summary",
		`tg_request_latency_seconds{route="/stats",quantile="0.5"} 0.000123`,
		`tg_request_latency_seconds{route="/stats",quantile="0.99"} 0.0012`,
		`tg_request_latency_seconds_sum{route="/stats"} 0.789`,
		`tg_request_latency_seconds_count{route="/stats"} 42`,
	}
	for _, line := range wantLines {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing line %q:\n%s", line, out)
		}
	}
	// The TYPE header must appear exactly once per family.
	if strings.Count(out, "# TYPE tg_requests_total counter") != 1 {
		t.Error("duplicate TYPE header for tg_requests_total")
	}
	// Quantile series must come before _sum/_count within the family and be
	// sorted ascending.
	q5 := strings.Index(out, `quantile="0.5"`)
	q99 := strings.Index(out, `quantile="0.99"`)
	sum := strings.Index(out, "tg_request_latency_seconds_sum")
	if !(q5 < q99 && q99 < sum) {
		t.Error("summary series out of order")
	}
}

func TestPromWriterValidSyntax(t *testing.T) {
	// A light structural check: every non-comment line is "name{labels} value"
	// or "name value", with a parseable float value.
	var w PromWriter
	w.Counter("a_total", "", nil, 1)
	w.Gauge("b", "help with\nnewline", []Label{L("k", `quote " and backslash \`)}, 2.5)
	for _, line := range strings.Split(strings.TrimSpace(w.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			if strings.Contains(line, "\n") {
				t.Errorf("comment contains raw newline: %q", line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed line %q", line)
		}
		val := line[sp+1:]
		if val == "" {
			t.Fatalf("empty value in %q", line)
		}
	}
	if !strings.Contains(w.String(), `help with\nnewline`) {
		t.Error("HELP newline not escaped")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		42:       "42",
		0:        "0",
		0.99:     "0.99",
		0.000123: "0.000123",
		2.5:      "2.5",
	}
	for f, want := range cases {
		if got := trimFloat(f); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", f, got, want)
		}
	}
}
