package obs

import (
	"strings"
	"testing"
)

func TestPromWriterExposition(t *testing.T) {
	var w PromWriter
	w.Counter("tg_requests_total", "Requests served.", []Label{L("route", "/query/can-share")}, 42)
	w.Counter("tg_requests_total", "Requests served.", []Label{L("route", "/stats")}, 7)
	w.Gauge("tg_graph_vertices", "Vertices in the live graph.", nil, 17)
	w.Summary("tg_request_latency_seconds", "Route latency.",
		[]Label{L("route", "/stats")},
		map[float64]float64{0.5: 0.000123, 0.9: 0.00045, 0.99: 0.0012},
		0.789, 42)
	out := w.String()

	wantLines := []string{
		"# TYPE tg_requests_total counter",
		`tg_requests_total{route="/query/can-share"} 42`,
		`tg_requests_total{route="/stats"} 7`,
		"# TYPE tg_graph_vertices gauge",
		"tg_graph_vertices 17",
		"# TYPE tg_request_latency_seconds summary",
		`tg_request_latency_seconds{route="/stats",quantile="0.5"} 0.000123`,
		`tg_request_latency_seconds{route="/stats",quantile="0.99"} 0.0012`,
		`tg_request_latency_seconds_sum{route="/stats"} 0.789`,
		`tg_request_latency_seconds_count{route="/stats"} 42`,
	}
	for _, line := range wantLines {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing line %q:\n%s", line, out)
		}
	}
	// The TYPE header must appear exactly once per family.
	if strings.Count(out, "# TYPE tg_requests_total counter") != 1 {
		t.Error("duplicate TYPE header for tg_requests_total")
	}
	// Quantile series must come before _sum/_count within the family and be
	// sorted ascending.
	q5 := strings.Index(out, `quantile="0.5"`)
	q99 := strings.Index(out, `quantile="0.99"`)
	sum := strings.Index(out, "tg_request_latency_seconds_sum")
	if !(q5 < q99 && q99 < sum) {
		t.Error("summary series out of order")
	}
}

func TestPromWriterValidSyntax(t *testing.T) {
	// A light structural check: every non-comment line is "name{labels} value"
	// or "name value", with a parseable float value.
	var w PromWriter
	w.Counter("a_total", "", nil, 1)
	w.Gauge("b", "help with\nnewline", []Label{L("k", `quote " and backslash \`)}, 2.5)
	for _, line := range strings.Split(strings.TrimSpace(w.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			if strings.Contains(line, "\n") {
				t.Errorf("comment contains raw newline: %q", line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed line %q", line)
		}
		val := line[sp+1:]
		if val == "" {
			t.Fatalf("empty value in %q", line)
		}
	}
	if !strings.Contains(w.String(), `help with\nnewline`) {
		t.Error("HELP newline not escaped")
	}
}

func TestPromWriterHistogramExposition(t *testing.T) {
	var w PromWriter
	w.Histogram("tg_request_latency_seconds", "Route latency.",
		[]Label{L("route", "/stats")},
		[]float64{0.001, 0.004, 0.016}, []uint64{3, 7, 9},
		0.123, 10)
	out := w.String()

	wantLines := []string{
		"# TYPE tg_request_latency_seconds histogram",
		`tg_request_latency_seconds_bucket{route="/stats",le="0.001"} 3`,
		`tg_request_latency_seconds_bucket{route="/stats",le="0.004"} 7`,
		`tg_request_latency_seconds_bucket{route="/stats",le="0.016"} 9`,
		`tg_request_latency_seconds_bucket{route="/stats",le="+Inf"} 10`,
		`tg_request_latency_seconds_sum{route="/stats"} 0.123`,
		`tg_request_latency_seconds_count{route="/stats"} 10`,
	}
	for _, line := range wantLines {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing line %q:\n%s", line, out)
		}
	}
	// Buckets ascend, +Inf closes the bucket list, and _sum/_count follow it.
	idx := func(s string) int {
		i := strings.Index(out, s)
		if i < 0 {
			t.Fatalf("missing %q", s)
		}
		return i
	}
	b1 := idx(`le="0.001"`)
	b2 := idx(`le="0.004"`)
	b3 := idx(`le="0.016"`)
	inf := idx(`le="+Inf"`)
	sum := idx("tg_request_latency_seconds_sum")
	count := idx("tg_request_latency_seconds_count")
	if !(b1 < b2 && b2 < b3 && b3 < inf && inf < sum && sum < count) {
		t.Errorf("histogram series out of order:\n%s", out)
	}
	if strings.Count(out, "# TYPE tg_request_latency_seconds histogram") != 1 {
		t.Error("duplicate TYPE header")
	}
	if errs := LintProm(out); len(errs) != 0 {
		t.Errorf("lint errors on histogram exposition: %v", errs)
	}

	// A second label set joins the same family without a second header.
	w.Histogram("tg_request_latency_seconds", "Route latency.",
		[]Label{L("route", "/query/can-share")}, nil, nil, 0, 0)
	out = w.String()
	if strings.Count(out, "# TYPE tg_request_latency_seconds histogram") != 1 {
		t.Error("second label set re-emitted TYPE header")
	}
	if !strings.Contains(out, `tg_request_latency_seconds_bucket{route="/query/can-share",le="+Inf"} 0`+"\n") {
		t.Errorf("empty histogram must still emit its +Inf bucket:\n%s", out)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		42:       "42",
		0:        "0",
		0.99:     "0.99",
		0.000123: "0.000123",
		2.5:      "2.5",
	}
	for f, want := range cases {
		if got := trimFloat(f); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", f, got, want)
		}
	}
}
