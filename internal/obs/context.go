package obs

import "context"

type ctxKey int

const (
	probeKey ctxKey = iota
	traceKey
)

// WithProbe returns a context carrying p. A nil p is stored as absent.
func WithProbe(ctx context.Context, p *Probe) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, probeKey, p)
}

// ProbeFrom returns the context's probe, or nil when none is attached —
// the nil result feeds straight into the nil-safe Probe methods.
func ProbeFrom(ctx context.Context) *Probe {
	p, _ := ctx.Value(probeKey).(*Probe)
	return p
}

// WithTrace returns a context carrying a trace ID.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey, id)
}

// TraceFrom returns the context's trace ID: the explicit one, else the
// attached probe's, else "".
func TraceFrom(ctx context.Context) string {
	if id, ok := ctx.Value(traceKey).(string); ok {
		return id
	}
	if p := ProbeFrom(ctx); p != nil {
		return p.TraceID
	}
	return ""
}
