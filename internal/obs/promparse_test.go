package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestParsePromRoundTrip(t *testing.T) {
	var w PromWriter
	w.Counter("tg_requests_total", "Requests served.", []Label{L("route", "/query/can-share"), L("code_class", "2xx")}, 42)
	w.Gauge("tg_graph_vertices", "Vertices.", nil, 17)
	var h Hist
	h.Observe(time.Millisecond)
	h.Observe(time.Millisecond)
	h.Observe(20 * time.Millisecond)
	w.HistogramSnapshot("tg_request_latency_seconds", "Route latency.", []Label{L("route", "/stats")}, h.Snapshot())

	fams, err := ParseProm(w.String())
	if err != nil {
		t.Fatalf("ParseProm: %v", err)
	}
	byName := make(map[string]PromFamily)
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["tg_requests_total"]; f.Type != "counter" || len(f.Series) != 1 {
		t.Errorf("counter family = %+v", f)
	} else if f.Series[0].Labels["code_class"] != "2xx" || f.Series[0].Value != 42 {
		t.Errorf("counter series = %+v", f.Series[0])
	}
	if f := byName["tg_graph_vertices"]; f.Type != "gauge" || f.Series[0].Value != 17 {
		t.Errorf("gauge family = %+v", f)
	}
	hf, ok := byName["tg_request_latency_seconds"]
	if !ok || hf.Type != "histogram" {
		t.Fatalf("histogram family = %+v", hf)
	}
	// _bucket/_sum/_count must fold into the base family, not stand alone.
	if _, stray := byName["tg_request_latency_seconds_bucket"]; stray {
		t.Error("_bucket parsed as separate family")
	}
	if errs := LintProm(w.String()); len(errs) != 0 {
		t.Fatalf("LintProm on writer output: %v", errs)
	}
	dist := HistogramDist(fams, "tg_request_latency_seconds", nil)
	if dist.Count != 3 {
		t.Fatalf("dist count = %d", dist.Count)
	}
	if p50 := dist.Quantile(0.5); p50 <= 0 || p50 > 0.01 {
		t.Errorf("p50 = %v, want ~1ms", p50)
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"TYPE after samples":  "a_total 1\n# TYPE a_total counter\na_total 2\n",
		"duplicate TYPE":      "# TYPE a counter\n# TYPE a gauge\na 1\n",
		"unknown type":        "# TYPE a widget\na 1\n",
		"non-contiguous":      "# TYPE a counter\na 1\n# TYPE b counter\nb 1\na 2\n",
		"bad value":           "a one\n",
		"two values":          "a 1 2\n",
		"bad metric name":     "9a 1\n",
		"unterminated labels": `a{k="v" 1` + "\n",
		"bad escape":          `a{k="\t"} 1` + "\n",
		"duplicate label":     `a{k="1",k="2"} 1` + "\n",
		"label without eq":    `a{k} 1` + "\n",
	}
	for name, body := range cases {
		if _, err := ParseProm(body); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, body)
		}
	}
}

func TestParsePromLabelEscapes(t *testing.T) {
	body := "m{k=\"a\\\\b\\\"c\\nd\"} 1\n"
	fams, err := ParseProm(body)
	if err != nil {
		t.Fatalf("ParseProm: %v", err)
	}
	if got := fams[0].Series[0].Labels["k"]; got != "a\\b\"c\nd" {
		t.Errorf("unescaped label = %q", got)
	}
}

func TestLintPromCatchesHistogramViolations(t *testing.T) {
	cases := map[string]string{
		"le not ascending": "# TYPE h histogram\n" +
			`h_bucket{le="0.5"} 1` + "\n" + `h_bucket{le="0.1"} 2` + "\n" +
			`h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 2\n",
		"cumulative drops": "# TYPE h histogram\n" +
			`h_bucket{le="0.1"} 5` + "\n" + `h_bucket{le="0.5"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
		"missing +Inf": "# TYPE h histogram\n" +
			`h_bucket{le="0.1"} 1` + "\nh_sum 1\nh_count 1\n",
		"+Inf != count": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 5\n",
		"missing _sum": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 1` + "\nh_count 1\n",
		"negative counter": "# TYPE c counter\nc -1\n",
		"NaN counter":      "# TYPE c counter\nc NaN\n",
	}
	for name, body := range cases {
		if errs := LintProm(body); len(errs) == 0 {
			t.Errorf("%s: lint passed:\n%s", name, body)
		}
	}
	clean := "# TYPE h histogram\n" +
		`h_bucket{le="0.1"} 1` + "\n" + `h_bucket{le="+Inf"} 2` + "\nh_sum 0.3\nh_count 2\n"
	if errs := LintProm(clean); len(errs) != 0 {
		t.Errorf("clean histogram flagged: %v", errs)
	}
}

func TestBucketDistMergeMatchesUnion(t *testing.T) {
	// Two nodes observe disjoint sample sets; scraping each and merging
	// the bucket distributions must equal observing everything on one node.
	var a, b, union Hist
	for i := 1; i <= 400; i++ {
		d := time.Duration(i*i) * time.Microsecond
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
		union.Observe(d)
	}
	scrape := func(h *Hist) BucketDist {
		var w PromWriter
		w.HistogramSnapshot("lat", "", nil, h.Snapshot())
		fams, err := ParseProm(w.String())
		if err != nil {
			t.Fatalf("ParseProm: %v", err)
		}
		return HistogramDist(fams, "lat", nil)
	}
	merged := scrape(&a)
	merged.Merge(scrape(&b))
	want := scrape(&union)
	if merged.Count != want.Count {
		t.Fatalf("merged count %d, want %d", merged.Count, want.Count)
	}
	if math.Abs(merged.Sum-want.Sum) > 1e-9 {
		t.Fatalf("merged sum %v, want %v", merged.Sum, want.Sum)
	}
	if len(merged.Les) != len(want.Les) {
		t.Fatalf("merged bounds %v, want %v", merged.Les, want.Les)
	}
	for i := range want.Les {
		if merged.Les[i] != want.Les[i] || merged.Cums[i] != want.Cums[i] {
			t.Fatalf("bucket %d: merged (%v,%d), want (%v,%d)",
				i, merged.Les[i], merged.Cums[i], want.Les[i], want.Cums[i])
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if merged.Quantile(q) != want.Quantile(q) {
			t.Errorf("q%v: merged %v, want %v", q, merged.Quantile(q), want.Quantile(q))
		}
	}
}

func TestMergeBoundsDisjoint(t *testing.T) {
	les, cums := mergeBounds(
		[]float64{0.1, 0.4}, []uint64{2, 5},
		[]float64{0.2, 0.8}, []uint64{3, 4},
	)
	wantLes := []float64{0.1, 0.2, 0.4, 0.8}
	wantCums := []uint64{2, 5, 8, 9}
	if len(les) != len(wantLes) {
		t.Fatalf("les = %v", les)
	}
	for i := range wantLes {
		if les[i] != wantLes[i] || cums[i] != wantCums[i] {
			t.Fatalf("merge = (%v, %v), want (%v, %v)", les, cums, wantLes, wantCums)
		}
	}
}

func TestHistogramDistMatch(t *testing.T) {
	var w PromWriter
	var fast, slow Hist
	fast.Observe(time.Millisecond)
	slow.Observe(time.Second)
	w.HistogramSnapshot("lat", "", []Label{L("route", "/a")}, fast.Snapshot())
	w.HistogramSnapshot("lat", "", []Label{L("route", "/b")}, slow.Snapshot())
	fams, err := ParseProm(w.String())
	if err != nil {
		t.Fatalf("ParseProm: %v", err)
	}
	all := HistogramDist(fams, "lat", nil)
	if all.Count != 2 {
		t.Errorf("unfiltered count = %d", all.Count)
	}
	only := HistogramDist(fams, "lat", func(l map[string]string) bool { return l["route"] == "/a" })
	if only.Count != 1 || only.Quantile(0.5) > 0.01 {
		t.Errorf("filtered dist = %+v", only)
	}
}

func TestBucketDistQuantileEdge(t *testing.T) {
	var d BucketDist
	if d.Quantile(0.5) != 0 {
		t.Error("empty dist quantile != 0")
	}
	d = BucketDist{Les: []float64{0.1}, Cums: []uint64{4}, Count: 4}
	if q := d.Quantile(1); q != 0.1 {
		t.Errorf("q1 = %v", q)
	}
	if q := d.Quantile(-1); q < 0 || q > 0.1 {
		t.Errorf("clamped q = %v", q)
	}
}

func TestParsePromIgnoresComments(t *testing.T) {
	body := "# just a comment\n# HELP a_total something useful\n# TYPE a_total counter\na_total 3\n\n"
	fams, err := ParseProm(body)
	if err != nil {
		t.Fatalf("ParseProm: %v", err)
	}
	if len(fams) != 1 || fams[0].Help != "something useful" || fams[0].Series[0].Value != 3 {
		t.Fatalf("fams = %+v", fams)
	}
	if strings.Contains(fams[0].Name, " ") {
		t.Fatalf("name = %q", fams[0].Name)
	}
}
