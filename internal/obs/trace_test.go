package obs

import (
	"strings"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatalf("fresh context invalid: %+v", tc)
	}
	h := tc.Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("traceparent shape: %q", h)
	}
	back, ok := ParseTraceparent(h)
	if !ok || back != tc {
		t.Fatalf("round trip: %q -> %+v ok=%v, want %+v", h, back, ok, tc)
	}
}

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		in string
		ok bool
	}{
		{valid, true},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", true},    // unsampled still parses
		{"cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-xx", true}, // future version, extra field
		{"", false},
		{"short", false},
		{"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},   // forbidden version
		{"00-00000000000000000000000000000000-00f067aa0ba902b7-01", false},   // all-zero trace
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false},   // all-zero span
		{"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", false},   // uppercase hex
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", false}, // ver 00 must be exact
		{"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},   // bad separator
		{"00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01", false},   // non-hex digit
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz", false},   // bad flags
	}
	for _, c := range cases {
		tc, ok := ParseTraceparent(c.in)
		if ok != c.ok {
			t.Errorf("ParseTraceparent(%q) ok=%v, want %v (tc=%+v)", c.in, ok, c.ok, tc)
		}
		if ok && !tc.Valid() {
			t.Errorf("ParseTraceparent(%q) returned invalid context %+v", c.in, tc)
		}
	}
}

func TestAdoptLegacyTraceID(t *testing.T) {
	tc, ok := AdoptLegacyTraceID("00f067aa0ba902b7")
	if !ok || tc.TraceID != "000000000000000000f067aa0ba902b7" {
		t.Fatalf("legacy 16-hex: %+v ok=%v", tc, ok)
	}
	if !tc.Valid() {
		t.Fatalf("adopted context invalid: %+v", tc)
	}
	full := "4bf92f3577b34da6a3ce929d0e0e4736"
	tc, ok = AdoptLegacyTraceID(full)
	if !ok || tc.TraceID != full {
		t.Fatalf("32-hex: %+v ok=%v", tc, ok)
	}
	for _, bad := range []string{"", "zz", "0000000000000000", "4BF92F3577B34DA6", "123"} {
		if _, ok := AdoptLegacyTraceID(bad); ok {
			t.Errorf("AdoptLegacyTraceID(%q) accepted", bad)
		}
	}
}

func TestChildKeepsTrace(t *testing.T) {
	tc := NewTraceContext()
	child := tc.Child()
	if child.TraceID != tc.TraceID {
		t.Error("child changed trace ID")
	}
	if child.SpanID == tc.SpanID {
		t.Error("child reused span ID")
	}
}

func TestProbeJoinsTrace(t *testing.T) {
	tc := NewTraceContext()
	p := NewProbeFrom("op", tc)
	if p.TraceID != tc.TraceID {
		t.Errorf("probe trace %s, want %s", p.TraceID, tc.TraceID)
	}
	if p.ParentID != tc.SpanID {
		t.Errorf("probe parent %s, want %s", p.ParentID, tc.SpanID)
	}
	if p.SpanID == tc.SpanID || p.SpanID == "" {
		t.Errorf("probe span %s must be fresh", p.SpanID)
	}
	out := p.Context()
	if out.TraceID != tc.TraceID || out.SpanID != p.SpanID {
		t.Errorf("outbound context %+v", out)
	}
	if (*Probe)(nil).Context() != (TraceContext{}) {
		t.Error("nil probe context not zero")
	}
}

// FuzzTraceparent pins the parse/format round trip: anything that
// parses must re-format to a header that parses back to the same
// context, and the parser must never panic or accept malformed IDs.
func FuzzTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra")
	f.Add(NewTraceContext().Traceparent())
	f.Add("")
	f.Add("00--01")
	f.Fuzz(func(t *testing.T, h string) {
		tc, ok := ParseTraceparent(h)
		if !ok {
			return
		}
		if !tc.Valid() {
			t.Fatalf("parser accepted invalid context %+v from %q", tc, h)
		}
		back, ok2 := ParseTraceparent(tc.Traceparent())
		if !ok2 || back != tc {
			t.Fatalf("round trip diverged: %q -> %+v -> %q -> %+v (ok=%v)",
				h, tc, tc.Traceparent(), back, ok2)
		}
	})
}
