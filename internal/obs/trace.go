package obs

import (
	"crypto/rand"
	"encoding/hex"
)

// TraceContext is the W3C Trace Context identity of one logical
// operation: a 32-hex-digit trace ID shared by every node the operation
// touches, and the 16-hex-digit span ID of the current hop. The service
// honors an incoming `traceparent` header (and the legacy 16-hex
// X-Trace-Id, zero-padded into a trace ID), carries the context outward
// on shard redirects and replica poll rounds, and logs the trace ID on
// every node — one grep correlates a query across the fleet.
type TraceContext struct {
	TraceID string // 32 lowercase hex digits, not all zero
	SpanID  string // 16 lowercase hex digits, not all zero
}

// NewTraceContext mints a fresh trace with a fresh root span.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: randHex(16), SpanID: randHex(8)}
}

// Child returns a context in the same trace with a fresh span ID — the
// identity an outbound hop (redirect target, polled leader) runs under.
func (tc TraceContext) Child() TraceContext {
	return TraceContext{TraceID: tc.TraceID, SpanID: randHex(8)}
}

// Valid reports whether both IDs have the W3C shape. The all-zero
// values are forbidden by the spec — they mean "no trace".
func (tc TraceContext) Valid() bool {
	return isHexID(tc.TraceID, 32) && isHexID(tc.SpanID, 16)
}

// Traceparent renders the context as a version-00 traceparent header
// value with the sampled flag set:
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
func (tc TraceContext) Traceparent() string {
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = append(b, tc.TraceID...)
	b = append(b, '-')
	b = append(b, tc.SpanID...)
	b = append(b, "-01"...)
	return string(b)
}

// ParseTraceparent parses a traceparent header value. Unknown versions
// are accepted when their first two fields have the version-00 shape —
// the forward-compatibility rule of the spec — but version "ff" and
// malformed or all-zero IDs are rejected. The flags field is parsed and
// discarded: this monitor always records.
func ParseTraceparent(h string) (TraceContext, bool) {
	// version(2) - trace-id(32) - parent-id(16) - flags(2), dash-joined;
	// future versions may append further dash-led fields.
	if len(h) < 55 {
		return TraceContext{}, false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceContext{}, false
	}
	ver := h[:2]
	if !isHexLower(ver) || ver == "ff" {
		return TraceContext{}, false
	}
	if ver == "00" && len(h) != 55 {
		return TraceContext{}, false
	}
	if len(h) > 55 && h[55] != '-' {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceID: h[3:35], SpanID: h[36:52]}
	if !isHexLower(h[53:55]) || !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

// AdoptLegacyTraceID lifts a legacy X-Trace-Id value into a trace
// context: a 32-hex value is used as-is, a 16-hex value (the pre-W3C
// header this service used to mint) is zero-padded on the left — every
// node applies the same normalization, so a legacy client still sees
// one trace ID across the fleet. A fresh span ID is always minted.
func AdoptLegacyTraceID(id string) (TraceContext, bool) {
	switch {
	case isHexID(id, 32):
	case isHexID(id, 16):
		id = "0000000000000000" + id
	default:
		return TraceContext{}, false
	}
	return TraceContext{TraceID: id, SpanID: randHex(8)}, true
}

func isHexLower(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// isHexID reports s is exactly n lowercase hex digits and not all zero.
func isHexID(s string, n int) bool {
	if len(s) != n || !isHexLower(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return true
		}
	}
	return false
}

func randHex(n int) string {
	buf := make([]byte, n)
	if _, err := rand.Read(buf); err != nil {
		// crypto/rand failing is effectively impossible; fall back to a
		// fixed non-zero ID rather than panicking in a telemetry path.
		for i := range buf {
			buf[i] = 0x42
		}
	}
	return hex.EncodeToString(buf)
}
