package service

// Fault-injection suite: proves the reference monitor degrades gracefully
// instead of dying. Every test name carries "Fault" so CI can run the
// whole harness with `go test -run Fault -race ./internal/service/`.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"takegrant/internal/fault"
	"takegrant/internal/specimens"
)

// serve drives one in-process request and decodes a JSON body when out is
// non-nil, returning the recorder for header inspection.
func serve(t *testing.T, h http.Handler, req *http.Request, out any) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", req.Method, req.URL, rec.Body.String(), err)
		}
	}
	return rec
}

func putGraph(t *testing.T, h http.Handler, text string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPut, "/graph", strings.NewReader(text))
	if rec := serve(t, h, req, nil); rec.Code != http.StatusOK {
		t.Fatalf("PUT /graph: %d %s", rec.Code, rec.Body.String())
	}
}

func putSpecimen(t *testing.T, h http.Handler, name string) {
	t.Helper()
	src, err := specimens.Source(name)
	if err != nil {
		t.Fatal(err)
	}
	putGraph(t, h, src)
}

func TestFaultPanicRecoveryKeepsServing(t *testing.T) {
	defer fault.Reset()
	srv := New()
	h := srv.Handler()
	putSpecimen(t, h, "fig61")

	fault.Set("http:/query/can-share", func() { panic("injected: decision procedure blew up") })
	req := httptest.NewRequest(http.MethodGet, "/query/can-share?right=r&x=low&y=secret", nil)
	var body errorBody
	rec := serve(t, h, req, &body)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking route: %d, want 500", rec.Code)
	}
	if body.Code != "internal_panic" {
		t.Errorf("error code = %q, want internal_panic", body.Code)
	}
	trace := rec.Header().Get("X-Trace-Id")
	if trace == "" || !strings.Contains(body.Error, trace) {
		t.Errorf("500 body %q should name trace ID %q", body.Error, trace)
	}

	// The process must still serve: same route, hook removed, right answer.
	fault.Clear("http:/query/can-share")
	var verdict map[string]bool
	req = httptest.NewRequest(http.MethodGet, "/query/can-share?right=r&x=low&y=secret", nil)
	if rec := serve(t, h, req, &verdict); rec.Code != http.StatusOK || !verdict["can_share"] {
		t.Fatalf("after panic: %d %v, want 200 true", rec.Code, verdict)
	}

	if st := srv.Stats(); st.Faults.Panics != 1 {
		t.Errorf("panics counter = %d, want 1", st.Faults.Panics)
	}
	// The counter is also on the Prometheus surface.
	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	if rec := serve(t, h, req, nil); !strings.Contains(rec.Body.String(), "takegrant_panics_total 1") {
		t.Error("/metrics missing takegrant_panics_total 1")
	}
}

func TestFaultLoadSheddingReturns429(t *testing.T) {
	defer fault.Reset()
	srv := NewWith(Config{MaxInFlight: 1})
	h := srv.Handler()
	putSpecimen(t, h, "fig61")

	// Park one heavy query inside the semaphore until released.
	acquired := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	fault.Set("shed:acquired", func() {
		once.Do(func() { close(acquired) })
		<-release
	})
	done := make(chan int, 1)
	go func() {
		req := httptest.NewRequest(http.MethodGet, "/query/can-share?right=r&x=low&y=secret", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		done <- rec.Code
	}()
	<-acquired
	fault.Clear("shed:acquired") // only the parked request blocks

	// The slot is held: the next heavy query must be shed, not queued.
	req := httptest.NewRequest(http.MethodGet, "/islands", nil)
	var body errorBody
	rec := serve(t, h, req, &body)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated query: %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	if body.Code != "overloaded" {
		t.Errorf("error code = %q, want overloaded", body.Code)
	}
	// Light routes are exempt: the monitor still answers stats traffic.
	if rec := serve(t, h, httptest.NewRequest(http.MethodGet, "/stats", nil), nil); rec.Code != http.StatusOK {
		t.Errorf("/stats while saturated: %d", rec.Code)
	}

	close(release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("parked query finished with %d", code)
	}
	// Released slot: heavy queries flow again.
	req = httptest.NewRequest(http.MethodGet, "/islands", nil)
	if rec := serve(t, h, req, nil); rec.Code != http.StatusOK {
		t.Fatalf("after release: %d", rec.Code)
	}
	if st := srv.Stats(); st.Faults.Shed != 1 {
		t.Errorf("shed counter = %d, want 1", st.Faults.Shed)
	}
}

func TestFaultCanceledRequestIsShedNotMisanswered(t *testing.T) {
	srv := New()
	h := srv.Handler()
	putSpecimen(t, h, "fig61")

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // client already gone
	req := httptest.NewRequest(http.MethodGet, "/query/can-share?right=r&x=low&y=secret", nil).WithContext(ctx)
	var body errorBody
	rec := serve(t, h, req, &body)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("canceled query: %d %s, want 503", rec.Code, rec.Body.String())
	}
	if body.Code != "budget_exhausted" {
		t.Errorf("error code = %q, want budget_exhausted", body.Code)
	}
	// Crucially the abort is an error, never a cached false: a fresh
	// request gets the true verdict.
	var verdict map[string]bool
	req = httptest.NewRequest(http.MethodGet, "/query/can-share?right=r&x=low&y=secret", nil)
	if rec := serve(t, h, req, &verdict); rec.Code != http.StatusOK || !verdict["can_share"] {
		t.Fatalf("after cancel: %d %v, want 200 true", rec.Code, verdict)
	}
}

func TestFaultBudgetExhaustedNeverCached(t *testing.T) {
	srv := NewWith(Config{MaxVisited: 1})
	h := srv.Handler()
	putSpecimen(t, h, "fig61")

	for i := 0; i < 2; i++ {
		req := httptest.NewRequest(http.MethodGet, "/query/can-know?x=low&y=secret", nil)
		var body errorBody
		rec := serve(t, h, req, &body)
		if rec.Code != http.StatusServiceUnavailable || body.Code != "budget_exhausted" {
			t.Fatalf("query %d: %d code=%q, want 503 budget_exhausted", i, rec.Code, body.Code)
		}
	}
	st := srv.Stats()
	if st.Faults.BudgetExhausted != 2 {
		t.Errorf("budget_exhausted counter = %d, want 2 (abort must not be cached)", st.Faults.BudgetExhausted)
	}
	if st.Cache.Size != 0 {
		t.Errorf("cache size = %d after aborted queries, want 0", st.Cache.Size)
	}
}

func TestFaultContentTypeEnforcement(t *testing.T) {
	h := New().Handler()
	putGraph(t, h, "subject a\n")

	applyBody := `{"op":"create","x":"a","name":"f","kind":"object","rights":"r"}`
	cases := []struct {
		name, method, path, ct, body string
		want                         int
	}{
		{"apply json ok", http.MethodPost, "/apply", "application/json", applyBody, http.StatusOK},
		{"apply charset ok", http.MethodPost, "/apply", "application/json; charset=utf-8",
			`{"op":"create","x":"a","name":"f2","kind":"object","rights":"r"}`, http.StatusOK},
		{"apply no ct", http.MethodPost, "/apply", "", applyBody, http.StatusUnsupportedMediaType},
		{"apply text", http.MethodPost, "/apply", "text/plain", applyBody, http.StatusUnsupportedMediaType},
		{"graph absent ct ok", http.MethodPut, "/graph", "", "subject a\n", http.StatusOK},
		{"graph text ok", http.MethodPut, "/graph", "text/plain; charset=utf-8", "subject a\n", http.StatusOK},
		{"graph octet ok", http.MethodPut, "/graph", "application/octet-stream", "subject a\n", http.StatusOK},
		{"graph json refused", http.MethodPut, "/graph", "application/json", "subject a\n", http.StatusUnsupportedMediaType},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
		if tc.ct != "" {
			req.Header.Set("Content-Type", tc.ct)
		}
		if rec := serve(t, h, req, nil); rec.Code != tc.want {
			t.Errorf("%s: %d %s, want %d", tc.name, rec.Code, rec.Body.String(), tc.want)
		}
	}

	// DisallowUnknownFields: a typoed field is a 400, not a silent no-op.
	req := httptest.NewRequest(http.MethodPost, "/apply",
		strings.NewReader(`{"op":"create","x":"a","name":"g","rigths":"r"}`))
	req.Header.Set("Content-Type", "application/json")
	if rec := serve(t, h, req, nil); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", rec.Code)
	}
}
