package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"takegrant/internal/specimens"
)

func benchServer(b *testing.B, specimen string) (*Server, http.Handler) {
	b.Helper()
	srv := New()
	h := srv.Handler()
	src, err := specimens.Source(specimen)
	if err != nil {
		b.Fatal(err)
	}
	put := httptest.NewRequest(http.MethodPut, "/graph", strings.NewReader(src))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, put)
	if rec.Code != http.StatusOK {
		b.Fatalf("load = %d", rec.Code)
	}
	return srv, h
}

// BenchmarkQueryParallel measures cached read-query throughput across
// GOMAXPROCS: every request after the first is a cache hit served under
// the read lock, so ops/sec should scale with -cpu.
func BenchmarkQueryParallel(b *testing.B) {
	_, h := benchServer(b, "military")
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest(http.MethodGet, "/query/can-know?x=a1&y=bbb1", nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
}

// BenchmarkQueryMixedParallel spreads parallel traffic over the whole
// read surface — decisions, security predicate, islands, Hasse text.
func BenchmarkQueryMixedParallel(b *testing.B) {
	_, h := benchServer(b, "military")
	paths := []string{
		"/query/can-know?x=a1&y=bbb1",
		"/query/can-know?x=b1&y=abb1",
		"/query/can-share?right=r&x=a1&y=abb2",
		"/query/can-steal?right=r&x=b2&y=ubb",
		"/secure",
		"/islands",
		"/levels",
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			path := paths[i%len(paths)]
			req := httptest.NewRequest(http.MethodGet, path, nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("%s: status %d", path, rec.Code)
			}
			i++
		}
	})
}

// BenchmarkQueryColdRevision measures the uncached path: each iteration
// mutates the graph first (which also re-derives the hierarchy), so every
// query recomputes at a fresh revision.
func BenchmarkQueryColdRevision(b *testing.B) {
	_, h := benchServer(b, "military")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"op":"create","x":"a1","name":"s%d","kind":"object","rights":"r,w"}`, i)
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/apply", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("apply %d = %d", i, rec.Code)
		}
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query/can-know?x=a1&y=bbb1", nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}
