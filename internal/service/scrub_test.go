package service

import (
	"net/http"
	"testing"
	"time"

	"takegrant/internal/specimens"
)

// TestScrubberCleanRounds runs the background scrubber against a healthy
// node: rounds tick, nothing trips, queries keep answering underneath.
func TestScrubberCleanRounds(t *testing.T) {
	srv := New()
	defer srv.Close()
	h := srv.Handler()
	src, err := specimens.Source("fig61")
	if err != nil {
		t.Fatal(err)
	}
	if code := putGraphNS(t, h, "", src); code != http.StatusOK {
		t.Fatalf("PUT /graph = %d", code)
	}
	if code := putGraphNS(t, h, "tenant1", src); code != http.StatusOK {
		t.Fatalf("PUT tenant1 = %d", code)
	}
	srv.StartScrubber(time.Millisecond)
	waitFor(t, "scrub rounds over every namespace", func() bool {
		return srv.Stats().Fleet.ScrubRounds >= 4
	})
	if code := do(t, h, http.MethodGet, "/secure", "", nil); code != http.StatusOK {
		t.Fatalf("query under scrubber = %d", code)
	}
	srv.StopScrubber()
	if got := srv.Stats().Fleet.ScrubMismatches; got != 0 {
		t.Fatalf("clean node tripped the scrubber %d times", got)
	}
	// Stop is idempotent and restart works.
	srv.StopScrubber()
	srv.StartScrubber(time.Millisecond)
	srv.StopScrubber()
}

// TestScrubberTripsOnCorruption is the tripwire's own test: mutate the
// graph behind the hierarchy engine's back — exactly the kind of
// corruption an incremental-index bug would produce — and the scrubber
// must flag the divergence instead of letting the node keep serving
// verdicts from a stale structure.
func TestScrubberTripsOnCorruption(t *testing.T) {
	srv := New()
	defer srv.Close()
	h := srv.Handler()
	src, err := specimens.Source("fig61")
	if err != nil {
		t.Fatal(err)
	}
	if code := putGraphNS(t, h, "", src); code != http.StatusOK {
		t.Fatalf("PUT /graph = %d", code)
	}
	n := srv.findNS(DefaultNamespace)
	if n == nil {
		t.Fatal("default namespace missing")
	}
	// Splice new subjects directly into the graph, skipping rearm:
	// n.class still describes the old graph — exactly the stale patched
	// structure an incremental-engine bug would leave behind.
	n.mu.Lock()
	_, err1 := n.g.AddSubject("scrub_phantom_a")
	_, err2 := n.g.AddSubject("scrub_phantom_b")
	n.mu.Unlock()
	if err1 != nil || err2 != nil {
		t.Fatalf("splice: %v %v", err1, err2)
	}

	srv.scrubNS(n)
	if got := srv.Stats().Fleet.ScrubMismatches; got == 0 {
		t.Fatal("scrubber missed a graph mutated behind the engine's back")
	}
	if srv.Stats().Fleet.ScrubRounds == 0 {
		t.Fatal("scrub round not counted")
	}
}
