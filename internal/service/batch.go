package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"takegrant/internal/budget"
	"takegrant/internal/graph"
	"takegrant/internal/obs"
	"takegrant/internal/rights"
	"takegrant/internal/steal"
)

// maxBatchItems bounds one POST /query/batch request: a batch is a
// convenience for fanning related queries over one snapshot, not a bulk
// import channel.
const maxBatchItems = 1024

// BatchQuery is one item of a POST /query/batch request body (a JSON
// array of these).
type BatchQuery struct {
	// ID is an opaque client correlation tag echoed on the result.
	ID string `json:"id,omitempty"`
	// Kind selects the decision procedure: can-share, can-know,
	// can-know-f or can-steal.
	Kind string `json:"kind"`
	// Right names the right for can-share and can-steal.
	Right string `json:"right,omitempty"`
	// X and Y are vertex names per the predicate's roles.
	X string `json:"x"`
	Y string `json:"y"`
}

// BatchResult is one item's outcome. Status mirrors the HTTP status the
// equivalent single-query route would have returned: 200 with a verdict,
// 400 on a malformed item, 503 with code budget_exhausted when the item's
// work budget tripped (never a wrong verdict), 500 on an internal panic.
type BatchResult struct {
	ID      string `json:"id,omitempty"`
	Status  int    `json:"status"`
	Verdict *bool  `json:"verdict,omitempty"`
	Error   string `json:"error,omitempty"`
	Code    string `json:"code,omitempty"`
}

// BatchResponse is the POST /query/batch response. Revision and
// Generation identify the single graph state every item was decided
// against: the whole batch runs under one read-lock acquisition, so a
// concurrent mutation either precedes all items or follows all of them.
type BatchResponse struct {
	Revision   uint64        `json:"revision"`
	Generation uint64        `json:"generation"`
	Results    []BatchResult `json:"results"`
}

// batchCounters tracks batch traffic for /stats and /metrics.
type batchCounters struct {
	requests   atomic.Uint64
	items      atomic.Uint64
	itemErrors atomic.Uint64 // items answered with a non-200 status
}

// BatchStats is the batch endpoint's slice of the /stats report.
type BatchStats struct {
	Requests   uint64 `json:"requests"`
	Items      uint64 `json:"items"`
	ItemErrors uint64 `json:"item_errors"`
}

// handleBatch serves POST /query/batch: N decision queries fanned across
// a bounded worker pool over the shared frozen snapshot. Every item gets
// its own work budget (the same limits a single query would get) and its
// own obs probe; results come back in request order. The route counts as
// ONE heavy request for the -max-inflight semaphore — the worker pool, not
// the item count, bounds its parallelism.
func (s *Server) handleBatch(n *namespace, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		writeErrCode(w, http.StatusUnsupportedMediaType, "unsupported_media_type",
			fmt.Errorf("POST /query/batch takes application/json, not %q", ct))
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var queries []BatchQuery
	if err := dec.Decode(&queries); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(queries) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(queries) > maxBatchItems {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d exceeds the %d-item limit", len(queries), maxBatchItems))
		return
	}

	// One read-lock acquisition pins one revision for every item.
	n.mu.RLock()
	defer n.mu.RUnlock()
	s.batch.requests.Add(1)
	s.batch.items.Add(uint64(len(queries)))

	results := make([]BatchResult, len(queries))
	workers := s.cfg.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(results) {
					return
				}
				results[i] = s.runBatchItem(n, r, queries[i])
			}
		}()
	}
	wg.Wait()

	for i := range results {
		if results[i].Status != http.StatusOK {
			s.batch.itemErrors.Add(1)
		}
	}
	writeJSON(w, BatchResponse{
		Revision:   n.g.Revision(),
		Generation: n.gen,
		Results:    results,
	})
}

// runBatchItem decides one batch item under its own budget and probe.
// The caller holds the read lock. A panic inside a decision procedure is
// contained to the item: counted, reported as its 500, the rest of the
// batch unaffected.
func (s *Server) runBatchItem(n *namespace, r *http.Request, q BatchQuery) (res BatchResult) {
	res.ID = q.ID
	p := obs.NewProbe("/query/batch")
	defer s.phases.Observe(p)
	defer func() {
		if v := recover(); v != nil {
			s.faults.panics.Add(1)
			res = BatchResult{
				ID:     q.ID,
				Status: http.StatusInternalServerError,
				Error:  fmt.Sprintf("internal panic: %v", v),
				Code:   "internal_panic",
			}
		}
	}()

	fail := func(status int, code string, err error) BatchResult {
		return BatchResult{ID: q.ID, Status: status, Error: err.Error(), Code: code}
	}
	lookup := func(name string) (graph.ID, error) {
		v, ok := n.g.Lookup(name)
		if !ok {
			return graph.None, fmt.Errorf("unknown vertex %q", name)
		}
		return v, nil
	}
	x, err := lookup(q.X)
	if err != nil {
		return fail(http.StatusBadRequest, "", err)
	}
	y, err := lookup(q.Y)
	if err != nil {
		return fail(http.StatusBadRequest, "", err)
	}
	var rt rights.Right
	switch q.Kind {
	case "can-share", "can-steal":
		var ok bool
		if rt, ok = n.g.Universe().Lookup(q.Right); !ok {
			return fail(http.StatusBadRequest, "", fmt.Errorf("unknown right %q", q.Right))
		}
	}

	// The same per-query budget a single-query route would arm, and the
	// same cache kind/params keys — a batch item and its single-query twin
	// share cache entries at the same revision.
	b := budget.New(r.Context(), s.cfg.MaxVisited, s.cfg.QueryTimeout)
	var v any
	switch q.Kind {
	case "can-share":
		v, err = n.cachedErr(p, "can-share", fmt.Sprintf("%d:%d:%d", rt, x, y), func() (any, error) {
			ok, warm, err := n.reach.CanShare(rt, x, y, p, b)
			if err != nil {
				return nil, err
			}
			s.fastpath.note(warm)
			return ok, nil
		})
	case "can-know":
		v, err = n.cachedErr(p, "can-know", fmt.Sprintf("%d:%d", x, y), func() (any, error) {
			ok, warm, err := n.reach.CanKnow(x, y, p, b)
			if err != nil {
				return nil, err
			}
			s.fastpath.note(warm)
			return ok, nil
		})
	case "can-know-f":
		v, err = n.cachedErr(p, "can-know-f", fmt.Sprintf("%d:%d", x, y), func() (any, error) {
			ok, warm, err := n.reach.CanKnowF(x, y, p, b)
			if err != nil {
				return nil, err
			}
			s.fastpath.note(warm)
			return ok, nil
		})
	case "can-steal":
		v, err = n.cachedErr(p, "can-steal", fmt.Sprintf("%d:%d:%d", rt, x, y), func() (any, error) {
			return steal.CanSteal(n.g, rt, x, y), nil
		})
	default:
		return fail(http.StatusBadRequest, "", fmt.Errorf("unknown kind %q", q.Kind))
	}
	if err != nil {
		if errors.Is(err, budget.ErrExhausted) {
			s.faults.budgetExhausted.Add(1)
			return fail(http.StatusServiceUnavailable, "budget_exhausted", err)
		}
		return fail(http.StatusInternalServerError, "", err)
	}
	verdict := v.(bool)
	return BatchResult{ID: q.ID, Status: http.StatusOK, Verdict: &verdict}
}
