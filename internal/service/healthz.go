// Health endpoints. /healthz is pure liveness — "is the process serving
// HTTP" — the signal the peer prober consumes; it must stay allocation-
// light and lock-free. /readyz is readiness: whether this node should
// receive traffic right now, distinguishing a degraded journal (mutations
// frozen), a replica still catching up (reads would be arbitrarily
// stale), and a healthy read-only replica (ready, but mutations bounce).
package service

import (
	"encoding/json"
	"net/http"
)

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"ok": true})
}

// ReadyReport is the GET /readyz body.
type ReadyReport struct {
	Ready bool `json:"ready"`
	// Role is "leader" or "replica".
	Role  string `json:"role"`
	Epoch uint64 `json:"epoch"`
	// ReadOnly marks a replica (mutations answer 503 read_only).
	ReadOnly bool `json:"read_only,omitempty"`
	// Reasons names what blocks readiness: "degraded_journal" (a journal
	// write failure froze mutations), "catching_up" (replica has never
	// drawn level with its leader). Empty when ready.
	Reasons []string `json:"reasons,omitempty"`
}

func (s *Server) readyReport() ReadyReport {
	rep := ReadyReport{
		Role:     "leader",
		Epoch:    s.epoch.Load(),
		ReadOnly: s.readOnly.Load(),
		Reasons:  []string{},
	}
	if rep.ReadOnly {
		rep.Role = "replica"
	}
	for _, n := range s.allNS() {
		n.mu.RLock()
		degraded := n.degraded != nil
		n.mu.RUnlock()
		if degraded {
			rep.Reasons = append(rep.Reasons, "degraded_journal")
			break
		}
	}
	if r := s.repl.Load(); r != nil {
		r.mu.Lock()
		everLevel := !r.lastCaughtUp.IsZero()
		r.mu.Unlock()
		// A replica that has never drawn level is mid-bootstrap: serving
		// reads from it would hand out arbitrarily stale verdicts. Once it
		// has been level, transient lag does not flip readiness — the lag
		// gauges exist for that.
		if !everLevel {
			rep.Reasons = append(rep.Reasons, "catching_up")
		}
	}
	rep.Ready = len(rep.Reasons) == 0
	return rep
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rep := s.readyReport()
	w.Header().Set("Content-Type", "application/json")
	if !rep.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(rep)
}
