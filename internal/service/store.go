package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"

	"takegrant/internal/journal"
	"takegrant/internal/obs"
	"takegrant/internal/tgio"
)

// JournalStats re-exports the journal's counters for the /stats report.
type JournalStats = journal.Stats

// Record kinds, re-exported so service code reads without the package
// qualifier (the namespace field named journal shadows the import).
const (
	journalKindGraph    = journal.KindGraph
	journalKindGraphBin = journal.KindGraphBin
	journalKindApply    = journal.KindApply
)

// journalState binds an open journal to its snapshot cadence.
type journalState struct {
	j         *journal.Journal
	snapEvery uint64
}

func (js *journalState) stats() journal.Stats { return js.j.Stats() }

// nsDir maps a namespace name onto its journal directory: the default
// namespace owns the data directory root (the pre-namespace layout, so
// existing deployments recover in place), named ones live under ns/.
// validNSName refuses leading dots, so a name can never escape the tree.
func (s *Server) nsDir(name string) string {
	if name == DefaultNamespace {
		return s.dataDir
	}
	return filepath.Join(s.dataDir, "ns", name)
}

// AttachJournal binds the server to a crash-safe data directory: every
// namespace's state is recovered from its latest snapshot plus
// write-ahead log, and every subsequently accepted mutation is fsync'd
// there before its 200. The default namespace journals at dir itself;
// named namespaces (recovered from dir/ns/*, created on first PUT
// /graph?ns=) each own a subdirectory.
//
// Recovery rebuilds the exact accepted-mutation prefix: the snapshot's
// graph is reinstalled with its recorded revision and generation, then
// each WAL record re-runs the same install/guard.Apply path the original
// request took — the deltas are deterministic, so the recovered revision
// and hierarchy match the pre-crash values. A record that fails to replay
// is a real inconsistency (hand-edited WAL, version skew) and aborts
// startup rather than serving a silently different protection state.
//
// The boolean reports whether any state was recovered (a snapshot or WAL
// records existed in any namespace) — a caller preloading a default
// graph must skip the preload then, or it would overwrite acknowledged
// history.
//
// Call before serving traffic; not concurrent with requests.
func (s *Server) AttachJournal(dir string) (bool, error) {
	s.dataDir = dir
	recovered, err := s.attachNS(s.namespace, dir)
	if err != nil {
		return false, err
	}
	entries, err := os.ReadDir(filepath.Join(dir, "ns"))
	if err != nil && !os.IsNotExist(err) {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() || !validNSName(e.Name()) {
			continue
		}
		n := newNamespace(e.Name(), s.cfg.HierarchyWorkers)
		rec, err := s.attachNS(n, filepath.Join(dir, "ns", e.Name()))
		if err != nil {
			return false, fmt.Errorf("namespace %q: %w", e.Name(), err)
		}
		s.spaces[e.Name()] = n
		recovered = recovered || rec
	}
	// Second pass: the highest epoch any namespace remembered wins on this
	// node — journals attached before the raise re-adopt it, so every WAL
	// frame appended from here on carries the same fencing token.
	for _, n := range s.allNS() {
		if n.journal != nil {
			if err := n.journal.j.SetEpoch(s.epoch.Load()); err != nil {
				return false, err
			}
		}
	}
	return recovered, nil
}

// attachNS opens (and recovers from) one namespace's journal directory.
// Callers own the namespace exclusively — startup, or namespace creation
// under nsMu before the namespace is published.
func (s *Server) attachNS(n *namespace, dir string) (bool, error) {
	j, snap, replay, err := journal.Open(dir)
	if err != nil {
		return false, err
	}
	if snap != nil {
		g, err := tgio.ParseString(snap.Text)
		if err != nil {
			j.Close()
			return false, fmt.Errorf("service: snapshot does not parse: %w", err)
		}
		n.install(g, s.cfg.HierarchyWorkers)
		g.RestoreRevision(snap.Meta.Revision)
		n.gen = snap.Meta.Generation
	}
	for _, rec := range replay {
		if err := s.replayLocked(n, rec); err != nil {
			j.Close()
			return false, fmt.Errorf("service: wal record seq %d: %w", rec.Seq, err)
		}
	}
	snapEvery := uint64(s.cfg.SnapshotEvery)
	if snapEvery == 0 {
		snapEvery = DefaultSnapshotEvery
	}
	// Epoch reconciliation: a journal that remembers a higher leader epoch
	// raises the server's; a fresh (or older) journal adopts the server's,
	// so every frame this node appends from here on is stamped with it.
	s.raiseEpoch(j.Epoch())
	if err := j.SetEpoch(s.epoch.Load()); err != nil {
		j.Close()
		return false, err
	}
	n.journal = &journalState{j: j, snapEvery: snapEvery}
	return snap != nil || len(replay) > 0, nil
}

// replayLocked re-applies one WAL record to a namespace — the same path
// for crash recovery and replication, so a follower's state is exactly
// what the leader's recovery would rebuild. Callers hold the namespace
// write lock (or own it exclusively).
func (s *Server) replayLocked(n *namespace, rec journal.Record) error {
	switch rec.Kind {
	case journal.KindGraph:
		var text string
		if err := json.Unmarshal(rec.Data, &text); err != nil {
			return fmt.Errorf("decode graph record: %w", err)
		}
		g, err := tgio.ParseString(text)
		if err != nil {
			return fmt.Errorf("parse journaled graph: %w", err)
		}
		n.install(g, s.cfg.HierarchyWorkers)
	case journal.KindGraphBin:
		var b64 string
		if err := json.Unmarshal(rec.Data, &b64); err != nil {
			return fmt.Errorf("decode binary graph record: %w", err)
		}
		raw, err := base64.StdEncoding.DecodeString(b64)
		if err != nil {
			return fmt.Errorf("decode binary graph record: %w", err)
		}
		g, err := tgio.DecodeBinary(bytes.NewReader(raw))
		if err != nil {
			return fmt.Errorf("parse journaled binary graph: %w", err)
		}
		n.install(g, s.cfg.HierarchyWorkers)
	case journal.KindApply:
		var req ApplyRequest
		if err := json.Unmarshal(rec.Data, &req); err != nil {
			return fmt.Errorf("decode apply record: %w", err)
		}
		app, err := buildApp(n.g, req)
		if err != nil {
			return fmt.Errorf("rebuild %q application: %w", req.Op, err)
		}
		// The guard accepted this exact application from this exact state
		// on the original write path; accepting it again is deterministic.
		if err := n.guard.Apply(app); err != nil {
			return fmt.Errorf("replay %q application: %w", req.Op, err)
		}
		n.rearm(nil)
	default:
		return fmt.Errorf("unknown record kind %q", rec.Kind)
	}
	return nil
}

// journalAppend makes one accepted mutation durable, snapshotting when
// the WAL has grown past the cadence. A nil journal (no -data directory)
// is a no-op. On failure the namespace enters degraded mode. Callers
// hold the namespace write lock.
func (s *Server) journalAppend(n *namespace, r *http.Request, kind string, data any) error {
	if n.journal == nil {
		return nil
	}
	if _, err := n.journal.j.Append(kind, data); err != nil {
		n.degraded = err
		s.logger.LogAttrs(r.Context(), slog.LevelError, "journal",
			slog.String("trace_id", obs.TraceFrom(r.Context())),
			slog.String("ns", n.name),
			slog.String("event", "append_failed_entering_degraded_mode"),
			slog.String("error", err.Error()),
		)
		s.flight.Record(obs.FlightEvent{
			Kind: "journal", Trace: obs.TraceFrom(r.Context()), NS: n.name,
			Detail: "append failed, entering degraded mode: " + err.Error(),
		})
		return n.refuseDegraded()
	}
	if n.journal.j.Stats().WalRecords >= n.journal.snapEvery {
		s.snapshotLocked(n)
	}
	return nil
}

// snapshotLocked writes one namespace's current state as a snapshot. A
// failure is logged but not fatal: the WAL still holds every accepted
// mutation, so durability is intact — only recovery time suffers.
// Callers hold the namespace write lock.
func (s *Server) snapshotLocked(n *namespace) {
	meta := journal.Meta{Revision: n.g.Revision(), Generation: n.gen}
	if err := n.journal.j.WriteSnapshot(meta, tgio.WriteString(n.g)); err != nil {
		s.logger.LogAttrs(context.Background(), slog.LevelError, "journal",
			slog.String("ns", n.name),
			slog.String("event", "snapshot_failed"),
			slog.String("error", err.Error()),
		)
	}
}

// Close stops replication (on a follower), snapshots every namespace's
// state (so the next start replays nothing) and releases the journals.
// Safe without an attached journal; call after the HTTP server has
// drained.
func (s *Server) Close() error {
	if r := s.repl.Load(); r != nil {
		r.stop()
	}
	s.StopScrubber()
	var firstErr error
	for _, n := range s.allNS() {
		n.mu.Lock()
		if n.journal != nil {
			if n.degraded == nil {
				s.snapshotLocked(n)
			}
			if err := n.journal.j.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			n.journal = nil
		}
		n.mu.Unlock()
	}
	return firstErr
}
