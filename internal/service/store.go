package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"

	"takegrant/internal/journal"
	"takegrant/internal/obs"
	"takegrant/internal/tgio"
)

// JournalStats re-exports the journal's counters for the /stats report.
type JournalStats = journal.Stats

// Record kinds, re-exported so service code reads without the package
// qualifier (the struct field named journal shadows the import).
const (
	journalKindGraph = journal.KindGraph
	journalKindApply = journal.KindApply
)

// journalState binds an open journal to its snapshot cadence.
type journalState struct {
	j         *journal.Journal
	snapEvery uint64
}

func (js *journalState) stats() journal.Stats { return js.j.Stats() }

// AttachJournal binds the server to a crash-safe data directory: state is
// recovered from the latest snapshot plus the write-ahead log, and every
// subsequently accepted mutation is fsync'd there before its 200.
//
// Recovery rebuilds the exact accepted-mutation prefix: the snapshot's
// graph is reinstalled with its recorded revision and generation, then
// each WAL record re-runs the same install/guard.Apply path the original
// request took — the deltas are deterministic, so the recovered revision
// and hierarchy match the pre-crash values. A record that fails to replay
// is a real inconsistency (hand-edited WAL, version skew) and aborts
// startup rather than serving a silently different protection state.
//
// The boolean reports whether any state was recovered (a snapshot or WAL
// records existed) — a caller preloading a default graph must skip the
// preload then, or it would overwrite acknowledged history.
//
// Call before serving traffic; not concurrent with requests.
func (s *Server) AttachJournal(dir string) (bool, error) {
	j, snap, replay, err := journal.Open(dir)
	if err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if snap != nil {
		g, err := tgio.ParseString(snap.Text)
		if err != nil {
			j.Close()
			return false, fmt.Errorf("service: snapshot does not parse: %w", err)
		}
		s.install(g)
		g.RestoreRevision(snap.Meta.Revision)
		s.gen = snap.Meta.Generation
	}
	for _, rec := range replay {
		if err := s.replay(rec); err != nil {
			j.Close()
			return false, fmt.Errorf("service: wal record seq %d: %w", rec.Seq, err)
		}
	}
	snapEvery := uint64(s.cfg.SnapshotEvery)
	if snapEvery == 0 {
		snapEvery = DefaultSnapshotEvery
	}
	s.journal = &journalState{j: j, snapEvery: snapEvery}
	return snap != nil || len(replay) > 0, nil
}

// replay re-applies one recovered WAL record. Callers hold the write lock.
func (s *Server) replay(rec journal.Record) error {
	switch rec.Kind {
	case journal.KindGraph:
		var text string
		if err := json.Unmarshal(rec.Data, &text); err != nil {
			return fmt.Errorf("decode graph record: %w", err)
		}
		g, err := tgio.ParseString(text)
		if err != nil {
			return fmt.Errorf("parse journaled graph: %w", err)
		}
		s.install(g)
	case journal.KindApply:
		var req ApplyRequest
		if err := json.Unmarshal(rec.Data, &req); err != nil {
			return fmt.Errorf("decode apply record: %w", err)
		}
		app, err := s.buildApp(req)
		if err != nil {
			return fmt.Errorf("rebuild %q application: %w", req.Op, err)
		}
		// The guard accepted this exact application from this exact state
		// before the crash; accepting it again is deterministic.
		if err := s.guard.Apply(app); err != nil {
			return fmt.Errorf("replay %q application: %w", req.Op, err)
		}
		s.rearm(nil)
	default:
		return fmt.Errorf("unknown record kind %q", rec.Kind)
	}
	return nil
}

// refuseDegraded rejects mutations once a journal write has failed: the
// in-memory state may already be ahead of disk, and accepting more would
// widen the gap. Reads never consult this. Callers hold the write lock.
func (s *Server) refuseDegraded() error {
	if s.degraded == nil {
		return nil
	}
	return fmt.Errorf("mutations disabled after journal failure: %w", s.degraded)
}

// journalAppend makes one accepted mutation durable, snapshotting when
// the WAL has grown past the cadence. A nil journal (no -data directory)
// is a no-op. On failure the server enters degraded mode. Callers hold
// the write lock.
func (s *Server) journalAppend(r *http.Request, kind string, data any) error {
	if s.journal == nil {
		return nil
	}
	if _, err := s.journal.j.Append(kind, data); err != nil {
		s.degraded = err
		s.logger.LogAttrs(r.Context(), slog.LevelError, "journal",
			slog.String("trace_id", obs.TraceFrom(r.Context())),
			slog.String("event", "append_failed_entering_degraded_mode"),
			slog.String("error", err.Error()),
		)
		return s.refuseDegraded()
	}
	if s.journal.j.Stats().WalRecords >= s.journal.snapEvery {
		s.snapshotLocked()
	}
	return nil
}

// snapshotLocked writes the current state as a snapshot. A failure is
// logged but not fatal: the WAL still holds every accepted mutation, so
// durability is intact — only recovery time suffers. Callers hold the
// write lock.
func (s *Server) snapshotLocked() {
	meta := journal.Meta{Revision: s.g.Revision(), Generation: s.gen}
	if err := s.journal.j.WriteSnapshot(meta, tgio.WriteString(s.g)); err != nil {
		s.logger.LogAttrs(context.Background(), slog.LevelError, "journal",
			slog.String("event", "snapshot_failed"),
			slog.String("error", err.Error()),
		)
	}
}

// Close snapshots the state (so the next start replays nothing) and
// releases the journal. Safe without an attached journal; call after the
// HTTP server has drained.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	if s.degraded == nil {
		s.snapshotLocked()
	}
	err := s.journal.j.Close()
	s.journal = nil
	return err
}
