package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"takegrant/internal/specimens"
)

// readAll drains a response body into a string.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New().Handler())
	t.Cleanup(ts.Close)
	return ts
}

func put(t *testing.T, ts *httptest.Server, path, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func loadSpecimen(t *testing.T, ts *httptest.Server, name string) {
	t.Helper()
	src, err := specimens.Source(name)
	if err != nil {
		t.Fatal(err)
	}
	resp := put(t, ts, "/graph", src)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load %s: %d", name, resp.StatusCode)
	}
	resp.Body.Close()
}

func TestLoadAndQuery(t *testing.T) {
	ts := newTestServer(t)
	loadSpecimen(t, ts, "fig61")

	resp, err := http.Get(ts.URL + "/query/can-share?right=r&x=low&y=secret")
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]bool
	decode(t, resp, &body)
	if !body["can_share"] {
		t.Error("can_share false")
	}

	resp, _ = http.Get(ts.URL + "/query/can-know?x=low&y=secret")
	decode(t, resp, &body)
	if !body["can_know"] {
		t.Error("can_know false")
	}
	resp, _ = http.Get(ts.URL + "/query/can-know?x=low&y=secret&defacto=1")
	decode(t, resp, &body)
	if body["can_know_f"] {
		t.Error("can_know_f should be false (needs de jure)")
	}
	resp, _ = http.Get(ts.URL + "/query/can-steal?right=r&x=low&y=secret")
	decode(t, resp, &body)
	if !body["can_steal"] {
		t.Error("can_steal false")
	}
}

func TestApplyGuarded(t *testing.T) {
	ts := newTestServer(t)
	loadSpecimen(t, ts, "fig61")
	// The read-up take is refused by the combined restriction.
	resp, err := http.Post(ts.URL+"/apply", "application/json",
		strings.NewReader(`{"op":"take","x":"low","y":"mid","z":"secret","rights":"r"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("read-up status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// An inapplicable rule (mid holds no w to take) is the caller's error,
	// not a monitor refusal.
	resp, _ = http.Post(ts.URL+"/apply", "application/json",
		strings.NewReader(`{"op":"take","x":"low","y":"mid","z":"secret","rights":"w"}`))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("inapplicable rule status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// A legal application succeeds: low creates scratch storage.
	resp, _ = http.Post(ts.URL+"/apply", "application/json",
		strings.NewReader(`{"op":"create","x":"low","name":"scratch","kind":"object","rights":"r,w"}`))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("create status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// The decision trail shows both.
	logResp, _ := http.Get(ts.URL + "/log")
	logText := readAll(t, logResp)
	if !strings.Contains(logText, "refuse") || !strings.Contains(logText, "allow") {
		t.Errorf("log = %q", logText)
	}
}

func TestApplyErrors(t *testing.T) {
	ts := newTestServer(t)
	loadSpecimen(t, ts, "fig61")
	cases := []string{
		`{"op":"warp","x":"low"}`,
		`{"op":"take","x":"ghost","y":"mid","z":"secret","rights":"r"}`,
		`{"op":"take","x":"low","y":"mid","z":"secret","rights":"zz"}`,
		`{"op":"create","x":"low","kind":"demigod","name":"n","rights":"r"}`,
		`{"op":"create","x":"low","rights":"r"}`,
		`not json`,
	}
	for _, body := range cases {
		resp, err := http.Post(ts.URL+"/apply", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d", body, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// GET not allowed.
	resp, _ := http.Get(ts.URL + "/apply")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /apply = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestViews(t *testing.T) {
	ts := newTestServer(t)
	loadSpecimen(t, ts, "fig22")
	for path, want := range map[string]string{
		"/graph":         "edge p u g",
		"/render":        "● p",
		"/levels":        "level",
		"/explain/share": "", // needs params; checked below
	} {
		if path == "/explain/share" {
			continue
		}
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		text := readAll(t, resp)
		if !strings.Contains(text, want) {
			t.Errorf("%s missing %q:\n%s", path, want, text)
		}
	}
	resp, _ := http.Get(ts.URL + "/explain/share?right=r&x=p&y=q")
	explainText := readAll(t, resp)
	if !strings.Contains(explainText, "takes") {
		t.Errorf("explain = %q", explainText)
	}
	// JSON graph view.
	resp, _ = http.Get(ts.URL + "/graph.json")
	var jg map[string]any
	decode(t, resp, &jg)
	if len(jg["subjects"].([]any)) == 0 {
		t.Error("graph.json empty")
	}
	// Islands.
	resp, _ = http.Get(ts.URL + "/islands")
	var isl map[string][][]string
	decode(t, resp, &isl)
	if len(isl["islands"]) != 3 {
		t.Errorf("islands = %v", isl)
	}
}

func TestSecureAuditProfile(t *testing.T) {
	ts := newTestServer(t)
	loadSpecimen(t, ts, "fig51")
	resp, _ := http.Get(ts.URL + "/secure")
	var sec map[string]any
	decode(t, resp, &sec)
	if sec["secure"].(bool) {
		t.Error("fig51 should be insecure")
	}
	resp, _ = http.Get(ts.URL + "/audit")
	var audit map[string]any
	decode(t, resp, &audit)
	if !audit["clean"].(bool) {
		t.Error("fig51 audits dirty before any rule runs")
	}
	resp, _ = http.Get(ts.URL + "/profile?x=x")
	var prof map[string][]map[string]any
	decode(t, resp, &prof)
	if len(prof["profile"]) == 0 {
		t.Error("empty profile")
	}
	resp, _ = http.Get(ts.URL + "/profile?x=ghost")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ghost profile = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestBadGraphUpload(t *testing.T) {
	ts := newTestServer(t)
	resp := put(t, ts, "/graph", "frobnicate")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad upload = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Wrong method.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graph", nil)
	dresp, _ := http.DefaultClient.Do(req)
	if dresp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /graph = %d", dresp.StatusCode)
	}
	dresp.Body.Close()
}

func TestOversizedGraphUpload(t *testing.T) {
	ts := newTestServer(t)
	loadSpecimen(t, ts, "fig61")
	before := readAll(t, get(t, ts, "/graph"))

	// A valid prefix followed by padding past the limit: the old code
	// parsed the truncated first megabyte and silently installed it.
	big := "subject p\n" + strings.Repeat("# padding\n", (1<<20)/10+1)
	resp := put(t, ts, "/graph", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload = %d, want 413", resp.StatusCode)
	}
	resp.Body.Close()

	// State must be untouched by the rejected upload.
	if after := readAll(t, get(t, ts, "/graph")); after != before {
		t.Error("rejected upload corrupted the installed graph")
	}

	// Exactly at the limit is still fine.
	ok := "subject p\n" + strings.Repeat("\n", 1<<20-len("subject p\n"))
	resp = put(t, ts, "/graph", ok)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("limit-sized upload = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestStats(t *testing.T) {
	ts := newTestServer(t)
	loadSpecimen(t, ts, "fig61")
	// The same query twice at one revision: second answer comes from the
	// cache.
	for i := 0; i < 3; i++ {
		resp := get(t, ts, "/query/can-share?right=r&x=low&y=secret")
		resp.Body.Close()
	}
	var st map[string]any
	decode(t, get(t, ts, "/stats"), &st)
	cache := st["cache"].(map[string]any)
	if cache["hits"].(float64) < 2 {
		t.Errorf("cache hits = %v, want ≥ 2", cache["hits"])
	}
	if st["revision"].(float64) == 0 {
		t.Error("revision = 0 after loading a specimen")
	}
	if st["vertices"].(float64) != 5 {
		t.Errorf("vertices = %v", st["vertices"])
	}
	routes := st["routes"].(map[string]any)
	rs, ok := routes["/query/can-share"].(map[string]any)
	if !ok || rs["count"].(float64) != 3 {
		t.Errorf("route stats = %v", routes)
	}
}

func TestConcurrentClients(t *testing.T) {
	ts := newTestServer(t)
	loadSpecimen(t, ts, "military")
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := http.Get(ts.URL + "/query/can-know?x=a1&y=bbb1")
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				resp, err = http.Get(ts.URL + "/levels")
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
