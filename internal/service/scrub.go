// Anti-entropy scrubber: a low-duty-cycle background pass that
// cross-checks the incrementally maintained indexes against their
// from-scratch oracles on the live state. The incremental tg-island
// union-find and the hierarchy engine's patched structure are fast
// because they never recompute; the scrubber is the standing proof that
// "never recompute" still equals "recompute from scratch" — on real
// traffic, not just on the property tests' synthetic streams. A mismatch
// is a serious bug surfaced loudly (error log, flight event, counter)
// rather than silently serving wrong verdicts until someone notices.
package service

import (
	"context"
	"log/slog"
	"reflect"
	"sort"
	"strconv"
	"time"

	"takegrant/internal/analysis"
	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/obs"
	"takegrant/internal/rights"
)

// scrubSampleVertices bounds the closure cross-check: sample² vertex pairs
// per round, three predicates each — enough to trip on a corrupt row within
// a few rounds, small enough to stay low duty cycle.
const scrubSampleVertices = 6

type scrubber struct {
	cancel context.CancelFunc
	done   chan struct{}
}

// StartScrubber launches the background anti-entropy pass: every
// interval it verifies one namespace (round-robin), holding only that
// namespace's read lock. Stopped by Close or StopScrubber. Interval ≤ 0
// defaults to a minute — the scrubber is a tripwire, not a hot loop.
func (s *Server) StartScrubber(interval time.Duration) {
	if s.scrub != nil {
		return
	}
	if interval <= 0 {
		interval = time.Minute
	}
	ctx, cancel := context.WithCancel(context.Background())
	sc := &scrubber{cancel: cancel, done: make(chan struct{})}
	s.scrub = sc
	go func() {
		defer close(sc.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		next := 0
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
			spaces := s.allNS()
			if len(spaces) == 0 {
				continue
			}
			s.scrubNS(spaces[next%len(spaces)])
			next++
		}
	}()
}

// StopScrubber halts the background pass and waits for it to exit.
func (s *Server) StopScrubber() {
	if s.scrub == nil {
		return
	}
	s.scrub.cancel()
	<-s.scrub.done
	s.scrub = nil
}

// scrubNS verifies one namespace's incremental indexes against their
// oracles under the read lock (queries proceed concurrently; mutations
// wait, which is why the scrubber is low duty cycle).
func (s *Server) scrubNS(n *namespace) {
	s.fleet.scrubRounds.Add(1)
	n.mu.RLock()
	defer n.mu.RUnlock()

	// TG-islands: the union-find index vs the BFS reference.
	indexed := analysis.IslandsIndexed(n.g)
	reference, err := analysis.IslandsObs(n.g, nil, nil)
	if err == nil && !sameIslands(indexed, reference) {
		s.scrubMismatch(n, "islands", "union-find index disagrees with BFS reference")
	}

	// Hierarchy: the engine's patched structure vs a from-scratch
	// derivation. n.class is what the guard and /levels judge against —
	// exactly the artifact incremental patching could have corrupted.
	ref := hierarchy.AnalyzeRWReference(n.g)
	if !n.class.EquivalentTo(ref) {
		s.scrubMismatch(n, "hierarchy", "patched rw-level structure disagrees with from-scratch derivation")
	}

	// Reach closure: a verdict sample through the incrementally maintained
	// closure rows vs the from-scratch decision procedures on the same
	// pairs. The scrubber queries the index exactly the way a request
	// would, so a stale row that slipped past patching shows up here.
	ids := n.g.Vertices()
	if len(ids) > scrubSampleVertices {
		ids = ids[:scrubSampleVertices]
	}
	for _, x := range ids {
		for _, y := range ids {
			got, _, err := n.reach.CanShare(rights.Read, x, y, nil, nil)
			if err == nil && got != analysis.CanShare(n.g, rights.Read, x, y) {
				s.scrubMismatch(n, "reach_closure",
					"can-share("+n.g.Name(x)+","+n.g.Name(y)+") closure verdict disagrees with search")
			}
			got, _, err = n.reach.CanKnow(x, y, nil, nil)
			if err == nil && got != analysis.CanKnow(n.g, x, y) {
				s.scrubMismatch(n, "reach_closure",
					"can-know("+n.g.Name(x)+","+n.g.Name(y)+") closure verdict disagrees with search")
			}
			got, _, err = n.reach.CanKnowF(x, y, nil, nil)
			if err == nil && got != analysis.CanKnowF(n.g, x, y) {
				s.scrubMismatch(n, "reach_closure",
					"can-know-f("+n.g.Name(x)+","+n.g.Name(y)+") closure verdict disagrees with search")
			}
		}
	}
}

func (s *Server) scrubMismatch(n *namespace, index, detail string) {
	s.fleet.scrubMismatches.Add(1)
	s.logger.LogAttrs(context.Background(), slog.LevelError, "scrub",
		slog.String("ns", n.name),
		slog.String("index", index),
		slog.Uint64("revision", n.g.Revision()),
		slog.String("detail", detail),
	)
	s.flight.Record(obs.FlightEvent{
		Kind: "scrub", NS: n.name,
		Detail: index + " mismatch at revision " + formatUint(n.g.Revision()) + ": " + detail,
	})
}

func formatUint(v uint64) string {
	return strconv.FormatUint(v, 10)
}

// sameIslands compares two island partitions up to ordering (of islands
// and of members within an island). A nil and an empty partition are the
// same partition.
func sameIslands(a, b [][]graph.ID) bool {
	na, nb := normalizeIslands(a), normalizeIslands(b)
	if len(na) == 0 && len(nb) == 0 {
		return true
	}
	return reflect.DeepEqual(na, nb)
}

func normalizeIslands(in [][]graph.ID) [][]graph.ID {
	out := make([][]graph.ID, 0, len(in))
	for _, island := range in {
		c := append([]graph.ID(nil), island...)
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) == 0 || len(out[j]) == 0 {
			return len(out[i]) < len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}
