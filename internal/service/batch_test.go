package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postBatch drives one POST /query/batch with the given items and decodes
// the response, returning the recorder for status inspection.
func postBatch(t *testing.T, h http.Handler, items []BatchQuery, out *BatchResponse) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(items)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/query/batch", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	return serve(t, h, req, out)
}

// singleVerdict asks the equivalent single-query route and returns its
// verdict.
func singleVerdict(t *testing.T, h http.Handler, q BatchQuery) bool {
	t.Helper()
	var url, key string
	switch q.Kind {
	case "can-share":
		url = fmt.Sprintf("/query/can-share?right=%s&x=%s&y=%s", q.Right, q.X, q.Y)
		key = "can_share"
	case "can-know":
		url = fmt.Sprintf("/query/can-know?x=%s&y=%s", q.X, q.Y)
		key = "can_know"
	case "can-know-f":
		url = fmt.Sprintf("/query/can-know?defacto=1&x=%s&y=%s", q.X, q.Y)
		key = "can_know_f"
	case "can-steal":
		url = fmt.Sprintf("/query/can-steal?right=%s&x=%s&y=%s", q.Right, q.X, q.Y)
		key = "can_steal"
	default:
		t.Fatalf("unknown kind %q", q.Kind)
	}
	var body map[string]bool
	rec := serve(t, h, httptest.NewRequest(http.MethodGet, url, nil), &body)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, rec.Code, rec.Body.String())
	}
	v, ok := body[key]
	if !ok {
		t.Fatalf("GET %s: no %q in %v", url, key, body)
	}
	return v
}

// TestBatchParityWithSingleQueries proves the contract that matters: every
// batch item's verdict is byte-identical to what the single-query route
// answers for the same predicate at the same revision.
func TestBatchParityWithSingleQueries(t *testing.T) {
	srv := New()
	h := srv.Handler()
	putSpecimen(t, h, "fig61")

	items := []BatchQuery{
		{ID: "a", Kind: "can-share", Right: "r", X: "low", Y: "secret"},
		{ID: "b", Kind: "can-share", Right: "w", X: "low", Y: "secret"},
		{ID: "c", Kind: "can-know", X: "low", Y: "secret"},
		{ID: "d", Kind: "can-know-f", X: "low", Y: "secret"},
		{ID: "e", Kind: "can-steal", Right: "r", X: "low", Y: "secret"},
		{ID: "f", Kind: "can-share", Right: "r", X: "high", Y: "lowbb"},
	}
	var resp BatchResponse
	if rec := postBatch(t, h, items, &resp); rec.Code != http.StatusOK {
		t.Fatalf("POST /query/batch: %d %s", rec.Code, rec.Body.String())
	}
	if len(resp.Results) != len(items) {
		t.Fatalf("got %d results for %d items", len(resp.Results), len(items))
	}
	st := srv.Stats()
	if resp.Revision != st.Revision || resp.Generation != st.Generation {
		t.Errorf("batch pinned (gen=%d, rev=%d), stats report (gen=%d, rev=%d)",
			resp.Generation, resp.Revision, st.Generation, st.Revision)
	}
	for i, res := range resp.Results {
		if res.ID != items[i].ID {
			t.Errorf("result %d: ID %q, want %q (order must match the request)", i, res.ID, items[i].ID)
		}
		if res.Status != http.StatusOK || res.Verdict == nil {
			t.Errorf("item %q: status %d error %q, want 200 with a verdict", res.ID, res.Status, res.Error)
			continue
		}
		if want := singleVerdict(t, h, items[i]); *res.Verdict != want {
			t.Errorf("item %q: batch says %v, single query says %v", res.ID, *res.Verdict, want)
		}
	}
	if st.Batch.Requests != 1 || st.Batch.Items != uint64(len(items)) || st.Batch.ItemErrors != 0 {
		t.Errorf("batch stats = %+v, want 1 request / %d items / 0 errors", st.Batch, len(items))
	}
}

// TestBatchPerItemErrors: a malformed item fails alone with its own 400;
// the batch still answers 200 and the healthy items keep their verdicts.
func TestBatchPerItemErrors(t *testing.T) {
	srv := New()
	h := srv.Handler()
	putSpecimen(t, h, "fig61")

	items := []BatchQuery{
		{ID: "ok", Kind: "can-share", Right: "r", X: "low", Y: "secret"},
		{ID: "novertex", Kind: "can-share", Right: "r", X: "nobody", Y: "secret"},
		{ID: "noright", Kind: "can-share", Right: "q", X: "low", Y: "secret"},
		{ID: "nokind", Kind: "can-maybe", X: "low", Y: "secret"},
	}
	var resp BatchResponse
	if rec := postBatch(t, h, items, &resp); rec.Code != http.StatusOK {
		t.Fatalf("POST /query/batch: %d %s", rec.Code, rec.Body.String())
	}
	if resp.Results[0].Status != http.StatusOK || resp.Results[0].Verdict == nil {
		t.Errorf("healthy item: %+v, want a 200 verdict", resp.Results[0])
	}
	for _, res := range resp.Results[1:] {
		if res.Status != http.StatusBadRequest || res.Error == "" {
			t.Errorf("item %q: status %d error %q, want its own 400", res.ID, res.Status, res.Error)
		}
		if res.Verdict != nil {
			t.Errorf("item %q: failed item must not carry a verdict", res.ID)
		}
	}
	if st := srv.Stats(); st.Batch.ItemErrors != 3 {
		t.Errorf("item_errors = %d, want 3", st.Batch.ItemErrors)
	}
}

// TestBatchRequestValidation covers the request-level refusals: wrong
// method, wrong media type, unknown fields, empty and oversized batches.
func TestBatchRequestValidation(t *testing.T) {
	srv := New()
	h := srv.Handler()
	putSpecimen(t, h, "fig61")

	post := func(body, ct string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/query/batch", strings.NewReader(body))
		req.Header.Set("Content-Type", ct)
		return serve(t, h, req, nil)
	}
	if rec := serve(t, h, httptest.NewRequest(http.MethodGet, "/query/batch", nil), nil); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET: %d, want 405", rec.Code)
	}
	if rec := post(`[]`, "text/plain"); rec.Code != http.StatusUnsupportedMediaType {
		t.Errorf("text/plain: %d, want 415", rec.Code)
	}
	if rec := post(`[{"kind":"can-share","sides":"low"}]`, "application/json"); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", rec.Code)
	}
	if rec := post(`[`, "application/json"); rec.Code != http.StatusBadRequest {
		t.Errorf("truncated JSON: %d, want 400", rec.Code)
	}
	if rec := post(`[]`, "application/json"); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch: %d, want 400", rec.Code)
	}
	big := make([]BatchQuery, maxBatchItems+1)
	for i := range big {
		big[i] = BatchQuery{Kind: "can-share", Right: "r", X: "low", Y: "secret"}
	}
	var resp BatchResponse
	if rec := postBatch(t, h, big, &resp); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("%d items: %d, want 413", len(big), rec.Code)
	}
	if st := srv.Stats(); st.Batch.Requests != 0 {
		t.Errorf("refused requests must not count as accepted batches, got %d", st.Batch.Requests)
	}
}

// TestFaultBatchBudgetExhausted: with a one-state work budget every
// decision item aborts with its own 503 budget_exhausted — never a wrong
// verdict — and the batch itself still completes with 200.
func TestFaultBatchBudgetExhausted(t *testing.T) {
	srv := NewWith(Config{MaxVisited: 1})
	h := srv.Handler()
	putSpecimen(t, h, "fig61")

	items := []BatchQuery{
		{ID: "s1", Kind: "can-share", Right: "r", X: "low", Y: "secret"},
		{ID: "k1", Kind: "can-know", X: "low", Y: "secret"},
	}
	var resp BatchResponse
	if rec := postBatch(t, h, items, &resp); rec.Code != http.StatusOK {
		t.Fatalf("POST /query/batch: %d %s", rec.Code, rec.Body.String())
	}
	for _, res := range resp.Results {
		if res.Status != http.StatusServiceUnavailable || res.Code != "budget_exhausted" {
			t.Errorf("item %q: status %d code %q, want 503 budget_exhausted", res.ID, res.Status, res.Code)
		}
		if res.Verdict != nil {
			t.Errorf("item %q: aborted item must not carry a verdict", res.ID)
		}
	}
	st := srv.Stats()
	if st.Faults.BudgetExhausted != 2 {
		t.Errorf("budget_exhausted counter = %d, want 2", st.Faults.BudgetExhausted)
	}
	if st.Batch.ItemErrors != 2 {
		t.Errorf("item_errors = %d, want 2", st.Batch.ItemErrors)
	}
}

// TestBatchMetricsExposure: batch traffic shows up in the Prometheus
// exposition alongside the per-phase spans the items recorded.
func TestBatchMetricsExposure(t *testing.T) {
	srv := New()
	h := srv.Handler()
	putSpecimen(t, h, "fig61")

	items := []BatchQuery{{Kind: "can-share", Right: "r", X: "low", Y: "secret"}}
	var resp BatchResponse
	if rec := postBatch(t, h, items, &resp); rec.Code != http.StatusOK {
		t.Fatalf("POST /query/batch: %d %s", rec.Code, rec.Body.String())
	}
	rec := serve(t, h, httptest.NewRequest(http.MethodGet, "/metrics", nil), nil)
	body := rec.Body.String()
	for _, want := range []string{
		"takegrant_batch_requests_total 1",
		"takegrant_batch_items_total 1",
		"takegrant_batch_item_errors_total 0",
		`takegrant_phase_executions_total{procedure="/query/batch"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
