package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"takegrant/internal/hierarchy"
	"takegrant/internal/specimens"
)

// do drives the handler in-process (no sockets) and decodes the JSON body.
func do(t *testing.T, h http.Handler, method, target, body string, out any) int {
	t.Helper()
	var rdr *strings.Reader
	if body == "" {
		rdr = strings.NewReader("")
	} else {
		rdr = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rdr)
	if method == http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Errorf("%s %s: bad JSON %q: %v", method, target, rec.Body.String(), err)
		}
	}
	return rec.Code
}

// TestStressMixedTraffic hammers the server with concurrent mutations and
// queries (run under -race). It asserts:
//
//   - no request ever errors (no torn state observed),
//   - no lost updates: every accepted create is reflected in the final
//     vertex count,
//   - no stale reads: a query whose truth is fixed throughout always
//     returns the same answer, and the revision reported by /stats never
//     goes backwards,
//   - cache-revision consistency: once traffic quiesces, repeated queries
//     hit the cache at the final revision.
func TestStressMixedTraffic(t *testing.T) {
	srv := New()
	h := srv.Handler()
	src, err := specimens.Source("military")
	if err != nil {
		t.Fatal(err)
	}
	if code := do(t, h, http.MethodPut, "/graph", src, nil); code != http.StatusOK {
		t.Fatalf("load = %d", code)
	}
	var before struct {
		Vertices int `json:"vertices"`
	}
	do(t, h, http.MethodGet, "/stats", "", &before)

	const (
		writers     = 4
		createsPerW = 25
		readers     = 8
		readsPerR   = 60
		// a1 can never know bbb1 in the military lattice (categories A and
		// B are incomparable, and no t/g edges exist to move rights), and
		// same-level scratch creates cannot change that — so every answer
		// other than false is a stale or torn read.
		expectedKnown = false
	)

	var wg sync.WaitGroup
	var accepted int64
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}
	_ = fail

	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			actor := []string{"a1", "a2", "b1", "b2"}[wi]
			for i := 0; i < createsPerW; i++ {
				body := fmt.Sprintf(`{"op":"create","x":"%s","name":"scratch_%d_%d","kind":"object","rights":"r,w"}`, actor, wi, i)
				code := do(t, h, http.MethodPost, "/apply", body, nil)
				if code != http.StatusOK {
					t.Errorf("create %d/%d = %d", wi, i, code)
					continue
				}
				atomic.AddInt64(&accepted, 1)
			}
		}(wi)
	}

	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			lastRev := float64(0)
			for i := 0; i < readsPerR; i++ {
				switch i % 5 {
				case 0:
					var body map[string]bool
					if code := do(t, h, http.MethodGet, "/query/can-know?x=a1&y=bbb1", "", &body); code != http.StatusOK {
						t.Errorf("can-know = %d", code)
					} else if body["can_know"] != expectedKnown {
						t.Errorf("stale read: can_know(a1,bbb1) = %v", body["can_know"])
					}
				case 1:
					var st map[string]any
					if code := do(t, h, http.MethodGet, "/stats", "", &st); code != http.StatusOK {
						t.Errorf("stats = %d", code)
					} else if rev := st["revision"].(float64); rev < lastRev {
						t.Errorf("revision went backwards: %v after %v", rev, lastRev)
					} else {
						lastRev = rev
					}
				case 2:
					req := httptest.NewRequest(http.MethodGet, "/levels", nil)
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "level") {
						t.Errorf("levels = %d %q", rec.Code, rec.Body.String())
					}
				case 3:
					var body map[string]any
					if code := do(t, h, http.MethodGet, "/secure", "", &body); code != http.StatusOK {
						t.Errorf("secure = %d", code)
					}
				default:
					var body map[string]any
					if code := do(t, h, http.MethodGet, "/islands", "", &body); code != http.StatusOK {
						t.Errorf("islands = %d", code)
					}
				}
			}
		}(ri)
	}

	wg.Wait()

	// No lost updates: every accepted create shows up.
	var st struct {
		Revision float64 `json:"revision"`
		Vertices int     `json:"vertices"`
	}
	do(t, h, http.MethodGet, "/stats", "", &st)
	want := before.Vertices + int(accepted)
	if st.Vertices != want {
		t.Errorf("vertices = %d, want %d (lost updates)", st.Vertices, want)
	}

	// Cache-revision consistency at quiescence: the same query twice more
	// must raise the hit counter and leave the revision in place.
	var s1, s2 Stats
	var body map[string]bool
	do(t, h, http.MethodGet, "/query/can-know?x=a1&y=bbb1", "", &body)
	s1 = srv.Stats()
	do(t, h, http.MethodGet, "/query/can-know?x=a1&y=bbb1", "", &body)
	s2 = srv.Stats()
	if s2.Cache.Hits <= s1.Cache.Hits {
		t.Errorf("no cache hit at quiesced revision: %d → %d", s1.Cache.Hits, s2.Cache.Hits)
	}
	if s1.Revision != s2.Revision || s2.Revision != uint64(st.Revision) {
		t.Errorf("revision moved without mutation: %d, %d, %v", s1.Revision, s2.Revision, st.Revision)
	}
}

// TestStressApplyVsHierarchyReads hammers the engine's write path: POST
// /apply mutations — monotone creates (patched in place) interleaved with
// destructive removes (wholesale rebuilds) — race against GET /secure and
// GET /levels readers. Run under -race. At quiescence the installed
// structure must be equivalent to a from-scratch derivation by the
// map-based oracle, the /secure verdict must match the stock predicate,
// and the engine counters must show both paths were exercised.
func TestStressApplyVsHierarchyReads(t *testing.T) {
	srv := New()
	h := srv.Handler()
	src, err := specimens.Source("military")
	if err != nil {
		t.Fatal(err)
	}
	if code := do(t, h, http.MethodPut, "/graph", src, nil); code != http.StatusOK {
		t.Fatalf("load = %d", code)
	}

	const (
		writers     = 3
		createsPerW = 20
		readers     = 6
		readsPerR   = 50
	)

	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			actor := []string{"a1", "a2", "b1"}[wi]
			for i := 0; i < createsPerW; i++ {
				name := fmt.Sprintf("eng_%d_%d", wi, i)
				body := fmt.Sprintf(`{"op":"create","x":"%s","name":"%s","kind":"object","rights":"r,w"}`, actor, name)
				if code := do(t, h, http.MethodPost, "/apply", body, nil); code != http.StatusOK {
					t.Errorf("create %s = %d", name, code)
				}
				// Writer 0 severs the read right to every other scratch it
				// made: a destructive mutation, so the engine must rebuild
				// rather than patch — both maintenance paths race readers.
				if wi == 0 && i%2 == 1 {
					prev := fmt.Sprintf("eng_%d_%d", wi, i-1)
					body := fmt.Sprintf(`{"op":"remove","x":"%s","y":"%s","rights":"r"}`, actor, prev)
					if code := do(t, h, http.MethodPost, "/apply", body, nil); code != http.StatusOK {
						t.Errorf("remove %s = %d", prev, code)
					}
				}
			}
		}(wi)
	}

	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			for i := 0; i < readsPerR; i++ {
				if i%2 == 0 {
					var body map[string]any
					if code := do(t, h, http.MethodGet, "/secure", "", &body); code != http.StatusOK {
						t.Errorf("secure = %d", code)
					} else if _, ok := body["secure"].(bool); !ok {
						t.Errorf("secure verdict malformed: %v", body)
					}
				} else {
					req := httptest.NewRequest(http.MethodGet, "/levels", nil)
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "level") {
						t.Errorf("levels = %d %q", rec.Code, rec.Body.String())
					}
				}
			}
		}(ri)
	}

	wg.Wait()

	// Sequential oracles at quiescence: the incrementally maintained
	// structure must be equivalent to a from-scratch derivation, and the
	// served verdict must match the stock §5 predicate.
	srv.mu.RLock()
	defer srv.mu.RUnlock()
	if !srv.class.EquivalentTo(hierarchy.AnalyzeRWReference(srv.g)) {
		t.Error("installed structure diverged from the from-scratch oracle")
	}
	wantOK, _ := hierarchy.Secure(srv.g)
	gotOK, _, err := srv.engine.Secure(nil, nil)
	if err != nil {
		t.Fatalf("engine secure: %v", err)
	}
	if gotOK != wantOK {
		t.Errorf("served verdict %v, oracle %v", gotOK, wantOK)
	}
	st := srv.engine.Stats()
	if st.Patches == 0 {
		t.Error("no monotone mutation was patched in place")
	}
	if st.Invalidations == 0 || st.Rebuilds < 2 {
		t.Errorf("destructive removes did not force rebuilds: %+v", st)
	}
}
