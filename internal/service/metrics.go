package service

import (
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"takegrant/internal/fault"
	"takegrant/internal/obs"
)

// numClasses is the HTTP status classes tracked per route: 1xx..5xx.
const numClasses = 5

var classNames = [numClasses]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// classIdx maps an HTTP status onto its class slot, clamping anything
// outside 100..599 into the nearest class.
func classIdx(status int) int {
	c := status/100 - 1
	if c < 0 {
		c = 0
	}
	if c >= numClasses {
		c = numClasses - 1
	}
	return c
}

// classHists is one namespace's latency histograms, one per status class.
type classHists [numClasses]obs.Hist

// routeMetrics accumulates one route's latency distribution per status
// class and namespace, on wait-free histograms: the hot path is a
// sync.Map load (skipped entirely for the default namespace) plus three
// atomic adds — a scrape, however slow its consumer, can never block an
// observer, and observers never block each other.
type routeMetrics struct {
	// def is the default namespace's histogram set — the fast path, no
	// map lookup.
	def classHists
	// named maps namespace name → *classHists for the rest. Requests
	// naming an invalid namespace are lumped under one "invalid" entry so
	// unparseable ?ns= values cannot grow the label space.
	named sync.Map
}

// metricsNS resolves the namespace label a request's latency is recorded
// under. It never errors: metrics recording happens even for requests
// the namespace middleware later refuses.
func metricsNS(r *http.Request) string {
	ns := r.URL.Query().Get("ns")
	switch {
	case ns == "" || ns == DefaultNamespace:
		return DefaultNamespace
	case !validNSName(ns):
		return "invalid"
	}
	return ns
}

func (m *routeMetrics) hists(ns string) *classHists {
	if ns == DefaultNamespace {
		return &m.def
	}
	if v, ok := m.named.Load(ns); ok {
		return v.(*classHists)
	}
	v, _ := m.named.LoadOrStore(ns, new(classHists))
	return v.(*classHists)
}

func (m *routeMetrics) observe(ns string, status int, d time.Duration) {
	m.hists(ns)[classIdx(status)].Observe(d)
}

// metrics tracks per-route traffic for the whole server. Routes register
// once at Handler construction, so the map is read-only afterwards and
// request recording touches only wait-free structures.
type metrics struct {
	routes map[string]*routeMetrics
}

func newMetrics() *metrics {
	return &metrics{routes: make(map[string]*routeMetrics)}
}

// register returns the route's collector, creating it. Called only while
// the Handler is being built, before any traffic.
func (m *metrics) register(route string) *routeMetrics {
	rm, ok := m.routes[route]
	if !ok {
		rm = &routeMetrics{}
		m.routes[route] = rm
	}
	return rm
}

// RouteStats is one route's slice of the /stats report. Latencies are in
// microseconds; quantiles are interpolated from the route's merged
// log-bucketed histogram, so unlike the old sliding sample window they
// cover every request the route ever served. ByClass breaks the count
// down per status class ("2xx", "5xx", ...), which is what tgtop reads
// error rates from.
type RouteStats struct {
	Count   uint64            `json:"count"`
	P50us   float64           `json:"p50_us"`
	P90us   float64           `json:"p90_us"`
	P99us   float64           `json:"p99_us"`
	SumUs   float64           `json:"sum_us"`
	ByClass map[string]uint64 `json:"by_class,omitempty"`
}

// merged folds every (class, namespace) histogram of the route into one
// distribution plus the per-class counts.
func (m *routeMetrics) merged() (obs.HistSnapshot, map[string]uint64) {
	var all obs.HistSnapshot
	byClass := make(map[string]uint64)
	fold := func(ch *classHists) {
		for c := range ch {
			snap := ch[c].Snapshot()
			if snap.Empty() {
				continue
			}
			byClass[classNames[c]] += snap.Count
			all.Merge(snap)
		}
	}
	fold(&m.def)
	m.named.Range(func(_, v any) bool {
		fold(v.(*classHists))
		return true
	})
	return all, byClass
}

func (m *metrics) snapshot() map[string]RouteStats {
	out := make(map[string]RouteStats, len(m.routes))
	for route, rm := range m.routes {
		all, byClass := rm.merged()
		if all.Empty() {
			continue
		}
		const usPerNs = float64(time.Microsecond)
		out[route] = RouteStats{
			Count:   all.Count,
			P50us:   float64(all.Quantile(0.50)) / usPerNs,
			P90us:   float64(all.Quantile(0.90)) / usPerNs,
			P99us:   float64(all.Quantile(0.99)) / usPerNs,
			SumUs:   float64(all.Sum) / usPerNs,
			ByClass: byClass,
		}
	}
	return out
}

// histSeries is one (route, class, ns) latency distribution, the unit
// the /metrics histogram family is emitted in.
type histSeries struct {
	route, class, ns string
	snap             obs.HistSnapshot
}

// series snapshots every occupied (route, class, ns) histogram in
// deterministic order. Pure copy-out reads of the atomic counters — the
// scrape never takes a lock an observer could be waiting on.
func (m *metrics) series() []histSeries {
	var out []histSeries
	for route, rm := range m.routes {
		collect := func(ns string, ch *classHists) {
			for c := range ch {
				snap := ch[c].Snapshot()
				if snap.Empty() {
					continue
				}
				out = append(out, histSeries{route: route, class: classNames[c], ns: ns, snap: snap})
			}
		}
		collect(DefaultNamespace, &rm.def)
		rm.named.Range(func(k, v any) bool {
			collect(k.(string), v.(*classHists))
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].route != out[j].route {
			return out[i].route < out[j].route
		}
		if out[i].class != out[j].class {
			return out[i].class < out[j].class
		}
		return out[i].ns < out[j].ns
	})
	return out
}

// statusWriter captures the response status for the request log and
// whether anything was written yet — the panic-recovery path may only
// substitute a 500 while the response is still untouched.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// requestTrace resolves the request's trace context: a W3C traceparent
// header joins the caller's trace (this is how one logical query keeps a
// single trace ID across a shard redirect or a replica's poll), a legacy
// X-Trace-Id is adopted zero-padded, and anything else starts a fresh
// trace.
func requestTrace(route string, r *http.Request) *obs.Probe {
	if tc, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
		return obs.NewProbeFrom(route, tc)
	}
	if tc, ok := obs.AdoptLegacyTraceID(r.Header.Get("X-Trace-Id")); ok {
		return obs.NewProbeFrom(route, tc)
	}
	return obs.NewProbe(route)
}

// spanSummary compacts a probe's phase spans for a flight-recorder entry:
// "phase=dur phase=dur", empty when the handler recorded none.
func spanSummary(p *obs.Probe) string {
	spans := p.Spans()
	if len(spans) == 0 {
		return ""
	}
	var b strings.Builder
	for i, sp := range spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", sp.Phase, sp.Duration.Round(time.Microsecond))
	}
	return b.String()
}

// instrument wraps a handler with the request-scoped observability stack:
// a trace context (joined from the caller's traceparent/X-Trace-Id or
// freshly minted, echoed back as both headers, carried by the request
// context inside an obs.Probe), wait-free latency recording per (route,
// status class, namespace), phase aggregation of whatever spans the
// handler's decision procedures emitted, a flight-recorder entry, and
// one structured log line per request.
//
// It is also the server's crash barrier: a panicking handler is caught
// here, counted (takegrant_panics_total), logged with its stack and trace
// ID, recorded in the flight ring — which is then dumped to stderr, the
// post-incident artifact — and answered with a 500 naming that trace ID;
// the process keeps serving. The request's metrics and log line are
// emitted on the panic path too, so a crashing route is visible in the
// same places as a healthy one.
func (s *Server) instrument(route string, h http.Handler) http.Handler {
	rm := s.metrics.register(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		p := requestTrace(route, r)
		ns := metricsNS(r)
		w.Header().Set("X-Trace-Id", p.TraceID)
		w.Header().Set("traceparent", p.Context().Traceparent())
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if v := recover(); v != nil {
				s.faults.panics.Add(1)
				s.logger.LogAttrs(r.Context(), slog.LevelError, "panic",
					slog.String("trace_id", p.TraceID),
					slog.String("route", route),
					slog.Any("panic", v),
					slog.String("stack", string(debug.Stack())),
				)
				s.flight.Record(obs.FlightEvent{
					Kind: "panic", Trace: p.TraceID, NS: ns, Route: route,
					Detail: fmt.Sprint(v),
				})
				s.dumpFlight()
				if !sw.wrote {
					writeErrCode(sw, http.StatusInternalServerError, "internal_panic",
						fmt.Errorf("internal error; trace %s", p.TraceID))
				}
			}
			d := time.Since(start)
			rm.observe(ns, sw.status, d)
			s.phases.Observe(p)
			s.flight.Record(obs.FlightEvent{
				Kind: "request", Trace: p.TraceID, NS: ns, Route: route,
				Code: sw.status, Dur: d, Detail: spanSummary(p),
			})
			s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("trace_id", p.TraceID),
				slog.String("span_id", p.SpanID),
				slog.String("route", route),
				slog.String("method", r.Method),
				slog.Int("status", sw.status),
				slog.Duration("duration", d),
			)
		}()
		fault.Inject("http:" + route)
		h.ServeHTTP(sw, r.WithContext(obs.WithProbe(r.Context(), p)))
	})
}

// dumpFlight writes the flight ring to the crash sink (stderr unless a
// test redirected it) — the seconds of context before a panic.
func (s *Server) dumpFlight() {
	out := s.crashOut
	if out == nil {
		out = os.Stderr
	}
	s.flight.Dump(out)
}
