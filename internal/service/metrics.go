package service

import (
	"net/http"
	"sort"
	"sync"
	"time"
)

// latencyWindow bounds the per-route latency samples kept for quantile
// estimation: a ring of the most recent observations.
const latencyWindow = 1024

// routeMetrics accumulates one route's request count and a sliding window
// of latencies. Each route has its own lock so hot routes do not contend
// with each other.
type routeMetrics struct {
	mu      sync.Mutex
	count   uint64
	samples [latencyWindow]time.Duration
	filled  int // number of valid samples (≤ latencyWindow)
	next    int // ring write position
}

func (m *routeMetrics) observe(d time.Duration) {
	m.mu.Lock()
	m.count++
	m.samples[m.next] = d
	m.next = (m.next + 1) % latencyWindow
	if m.filled < latencyWindow {
		m.filled++
	}
	m.mu.Unlock()
}

// quantiles returns the p50/p90/p99 of the sample window.
func (m *routeMetrics) quantiles() (p50, p90, p99 time.Duration) {
	if m.filled == 0 {
		return 0, 0, 0
	}
	sorted := make([]time.Duration, m.filled)
	copy(sorted, m.samples[:m.filled])
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return at(0.50), at(0.90), at(0.99)
}

// metrics tracks per-route traffic for the whole server. Routes register
// once at Handler construction, so the map is read-only afterwards and
// request recording takes only the route's own lock.
type metrics struct {
	routes map[string]*routeMetrics
}

func newMetrics() *metrics {
	return &metrics{routes: make(map[string]*routeMetrics)}
}

// register returns the route's collector, creating it. Called only while
// the Handler is being built, before any traffic.
func (m *metrics) register(route string) *routeMetrics {
	rm, ok := m.routes[route]
	if !ok {
		rm = &routeMetrics{}
		m.routes[route] = rm
	}
	return rm
}

// RouteStats is one route's slice of the /stats report. Latencies are in
// microseconds.
type RouteStats struct {
	Count uint64  `json:"count"`
	P50us float64 `json:"p50_us"`
	P90us float64 `json:"p90_us"`
	P99us float64 `json:"p99_us"`
}

func (m *metrics) snapshot() map[string]RouteStats {
	out := make(map[string]RouteStats, len(m.routes))
	for route, rm := range m.routes {
		rm.mu.Lock()
		p50, p90, p99 := rm.quantiles()
		count := rm.count
		rm.mu.Unlock()
		if count == 0 {
			continue
		}
		out[route] = RouteStats{
			Count: count,
			P50us: float64(p50) / float64(time.Microsecond),
			P90us: float64(p90) / float64(time.Microsecond),
			P99us: float64(p99) / float64(time.Microsecond),
		}
	}
	return out
}

// instrument wraps a handler, recording request count and latency under
// the route's mux pattern.
func (m *metrics) instrument(route string, h http.Handler) http.Handler {
	rm := m.register(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h.ServeHTTP(w, r)
		rm.observe(time.Since(start))
	})
}
