package service

import (
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"takegrant/internal/fault"
	"takegrant/internal/obs"
)

// latencyWindow bounds the per-route latency samples kept for quantile
// estimation: a ring of the most recent observations.
const latencyWindow = 1024

// routeMetrics accumulates one route's request count, cumulative latency
// and a sliding window of latencies. Each route has its own lock so hot
// routes do not contend with each other.
type routeMetrics struct {
	mu      sync.Mutex
	count   uint64
	total   time.Duration // cumulative latency across all requests
	samples [latencyWindow]time.Duration
	filled  int // number of valid samples (≤ latencyWindow)
	next    int // ring write position
}

func (m *routeMetrics) observe(d time.Duration) {
	m.mu.Lock()
	m.count++
	m.total += d
	m.samples[m.next] = d
	m.next = (m.next + 1) % latencyWindow
	if m.filled < latencyWindow {
		m.filled++
	}
	m.mu.Unlock()
}

// quantiles returns the p50/p90/p99 of the sample window.
func (m *routeMetrics) quantiles() (p50, p90, p99 time.Duration) {
	if m.filled == 0 {
		return 0, 0, 0
	}
	sorted := make([]time.Duration, m.filled)
	copy(sorted, m.samples[:m.filled])
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) time.Duration {
		// Round to the nearest rank: plain truncation floors the index, so
		// on small windows p99 collapses onto lower samples (10 samples:
		// 0.99*9 = 8.91 would floor to sorted[8], under-reporting).
		i := int(q*float64(len(sorted)-1) + 0.5)
		return sorted[i]
	}
	return at(0.50), at(0.90), at(0.99)
}

// metrics tracks per-route traffic for the whole server. Routes register
// once at Handler construction, so the map is read-only afterwards and
// request recording takes only the route's own lock.
type metrics struct {
	routes map[string]*routeMetrics
}

func newMetrics() *metrics {
	return &metrics{routes: make(map[string]*routeMetrics)}
}

// register returns the route's collector, creating it. Called only while
// the Handler is being built, before any traffic.
func (m *metrics) register(route string) *routeMetrics {
	rm, ok := m.routes[route]
	if !ok {
		rm = &routeMetrics{}
		m.routes[route] = rm
	}
	return rm
}

// RouteStats is one route's slice of the /stats report. Latencies are in
// microseconds; SumUs is cumulative over every request, while the
// quantiles cover the most recent latencyWindow samples.
type RouteStats struct {
	Count uint64  `json:"count"`
	P50us float64 `json:"p50_us"`
	P90us float64 `json:"p90_us"`
	P99us float64 `json:"p99_us"`
	SumUs float64 `json:"sum_us"`
}

func (m *metrics) snapshot() map[string]RouteStats {
	out := make(map[string]RouteStats, len(m.routes))
	for route, rm := range m.routes {
		rm.mu.Lock()
		p50, p90, p99 := rm.quantiles()
		count := rm.count
		total := rm.total
		rm.mu.Unlock()
		if count == 0 {
			continue
		}
		out[route] = RouteStats{
			Count: count,
			P50us: float64(p50) / float64(time.Microsecond),
			P90us: float64(p90) / float64(time.Microsecond),
			P99us: float64(p99) / float64(time.Microsecond),
			SumUs: float64(total) / float64(time.Microsecond),
		}
	}
	return out
}

// statusWriter captures the response status for the request log and
// whether anything was written yet — the panic-recovery path may only
// substitute a 500 while the response is still untouched.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with the request-scoped observability stack:
// a fresh trace ID (echoed as the X-Trace-Id response header and carried
// by the request context inside an obs.Probe), latency/count recording
// under the route's mux pattern, phase aggregation of whatever spans the
// handler's decision procedures emitted, and one structured log line per
// request.
//
// It is also the server's crash barrier: a panicking handler is caught
// here, counted (takegrant_panics_total), logged with its stack and trace
// ID, and answered with a 500 naming that trace ID — the process keeps
// serving. The request's metrics and log line are emitted on the panic
// path too, so a crashing route is visible in the same places as a
// healthy one.
func (s *Server) instrument(route string, h http.Handler) http.Handler {
	rm := s.metrics.register(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		p := obs.NewProbe(route)
		w.Header().Set("X-Trace-Id", p.TraceID)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if v := recover(); v != nil {
				s.faults.panics.Add(1)
				s.logger.LogAttrs(r.Context(), slog.LevelError, "panic",
					slog.String("trace_id", p.TraceID),
					slog.String("route", route),
					slog.Any("panic", v),
					slog.String("stack", string(debug.Stack())),
				)
				if !sw.wrote {
					writeErrCode(sw, http.StatusInternalServerError, "internal_panic",
						fmt.Errorf("internal error; trace %s", p.TraceID))
				}
			}
			d := time.Since(start)
			rm.observe(d)
			s.phases.Observe(p)
			s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("trace_id", p.TraceID),
				slog.String("route", route),
				slog.String("method", r.Method),
				slog.Int("status", sw.status),
				slog.Duration("duration", d),
			)
		}()
		fault.Inject("http:" + route)
		h.ServeHTTP(sw, r.WithContext(obs.WithProbe(r.Context(), p)))
	})
}
