package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"takegrant/internal/specimens"
)

// TestPromoteFollowerToLeader is the failover story end to end, in
// process: a journaled leader ships state to a follower; the follower is
// promoted; it must accept mutations under a bumped epoch, ship to a new
// follower of its own, and the old leader — still running — must be
// fenced by the epoch protocol on both sides.
func TestPromoteFollowerToLeader(t *testing.T) {
	leader := New()
	if _, err := leader.AttachJournal(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	lh := leader.Handler()
	ts := httptest.NewServer(lh)
	defer ts.Close()

	src, err := specimens.Source("fig61")
	if err != nil {
		t.Fatal(err)
	}
	if code := putGraphNS(t, lh, "", src); code != http.StatusOK {
		t.Fatalf("leader load = %d", code)
	}
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"op":"create","x":"low","name":"pre_%d","kind":"object","rights":"r"}`, i)
		if code := do(t, lh, http.MethodPost, "/apply", body, nil); code != http.StatusOK {
			t.Fatalf("leader create %d = %d", i, code)
		}
	}
	if e := leader.Epoch(); e != 1 {
		t.Fatalf("fresh leader epoch = %d, want 1", e)
	}

	follower := New()
	if err := follower.StartReplica(ts.URL, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fh := follower.Handler()
	leaderRev := leader.Stats().Revision
	waitFor(t, "follower catch-up", func() bool {
		st := follower.Stats()
		return st.Revision == leaderRev && st.Replication != nil && st.Replication.BehindRecords == 0
	})
	// The follower tracked the leader's epoch from the response headers.
	waitFor(t, "epoch observed", func() bool {
		st := follower.Stats()
		return st.Replication != nil && st.Replication.LeaderEpoch == 1
	})

	// Promoting a leader is refused.
	var eb map[string]any
	if code := do(t, lh, http.MethodPost, "/admin/promote", `{}`, &eb); code != http.StatusConflict {
		t.Fatalf("promote on a leader = %d, want 409", code)
	} else if eb["code"] != "not_replica" {
		t.Fatalf("promote on a leader code = %v", eb["code"])
	}

	// Promote the follower over HTTP, naming a fresh journal directory.
	promoteDir := t.TempDir()
	var res map[string]any
	body := fmt.Sprintf(`{"data_dir":%q}`, promoteDir)
	if code := do(t, fh, http.MethodPost, "/admin/promote", body, &res); code != http.StatusOK {
		t.Fatalf("promote = %d: %v", code, res)
	}
	if res["epoch"].(float64) != 2 {
		t.Fatalf("promoted epoch = %v, want 2", res["epoch"])
	}
	if follower.Epoch() != 2 {
		t.Fatalf("server epoch after promote = %d, want 2", follower.Epoch())
	}

	// The new leader accepts mutations and journals them.
	if code := do(t, fh, http.MethodPost, "/apply", `{"op":"create","x":"low","name":"post_promote","kind":"object","rights":"r"}`, nil); code != http.StatusOK {
		t.Fatalf("promoted leader POST /apply = %d, want 200", code)
	}
	st := follower.Stats()
	if st.ReadOnly {
		t.Fatal("promoted leader still read_only")
	}
	if st.Journal == nil {
		t.Fatal("promoted leader has no journal stats")
	}
	rep := follower.readyReport()
	if !rep.Ready || rep.Role != "leader" || rep.Epoch != 2 {
		t.Fatalf("promoted readyz = %+v", rep)
	}

	// Promotion is once: a second call is not_replica.
	if code := do(t, fh, http.MethodPost, "/admin/promote", `{}`, &eb); code != http.StatusConflict || eb["code"] != "not_replica" {
		t.Fatalf("second promote = %d %v", code, eb)
	}

	// A fresh follower of the promoted leader converges and sees epoch 2 —
	// the promoted node is a fully functional leader, not a zombie.
	fts := httptest.NewServer(fh)
	defer fts.Close()
	c := New()
	if err := c.StartReplica(fts.URL, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	newRev := follower.Stats().Revision
	waitFor(t, "second-generation follower catch-up", func() bool {
		st := c.Stats()
		return st.Revision == newRev && st.Replication != nil && st.Replication.LeaderEpoch == 2
	})
	// Byte-identical state across the promotion chain.
	lRec, cRec := httptest.NewRecorder(), httptest.NewRecorder()
	fh.ServeHTTP(lRec, httptest.NewRequest(http.MethodGet, "/graph", nil))
	c.Handler().ServeHTTP(cRec, httptest.NewRequest(http.MethodGet, "/graph", nil))
	if lRec.Body.String() != cRec.Body.String() {
		t.Fatal("promoted leader and its follower diverge")
	}

	// Server-side fencing: the old leader (epoch 1) refuses a caller that
	// has seen epoch 2 — exactly what the promoted fleet's followers send.
	rec := httptest.NewRecorder()
	lh.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/replication/namespaces?epoch=2", nil))
	if rec.Code != http.StatusConflict {
		t.Fatalf("old leader with epoch claim = %d, want 409", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "stale_epoch") {
		t.Fatalf("old leader refusal body: %s", rec.Body.String())
	}
	if got := rec.Header().Get(epochHeader); got != "1" {
		t.Fatalf("old leader epoch header = %q, want 1", got)
	}
	if leader.Stats().Fleet.StaleEpoch == 0 {
		t.Fatal("stale_epoch counter did not move")
	}

	// Client-side fencing: a replicator that has seen epoch 2 refuses an
	// epoch-1 response even if the stale leader fails to fence it.
	r2 := &replicator{seenEpoch: 2}
	resp := &http.Response{Header: http.Header{}}
	resp.Header.Set(epochHeader, "1")
	if err := r2.observeEpoch(resp); err == nil {
		t.Fatal("observeEpoch accepted a stale leader")
	}
	resp.Header.Set(epochHeader, "3")
	if err := r2.observeEpoch(resp); err != nil || r2.seenEpoch != 3 {
		t.Fatalf("observeEpoch newer: err=%v seen=%d", err, r2.seenEpoch)
	}
	// Pre-epoch leaders (no header) skip the check for compatibility.
	if err := r2.observeEpoch(&http.Response{Header: http.Header{}}); err != nil {
		t.Fatalf("observeEpoch without header: %v", err)
	}
}

// TestPromotedEpochSurvivesRestart pins durability: a promoted leader
// that crashes restarts at its bumped epoch with its exact state — the
// fence does not die with the process.
func TestPromotedEpochSurvivesRestart(t *testing.T) {
	leader := New()
	if _, err := leader.AttachJournal(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	lh := leader.Handler()
	ts := httptest.NewServer(lh)
	defer ts.Close()
	src, err := specimens.Source("fig61")
	if err != nil {
		t.Fatal(err)
	}
	if code := putGraphNS(t, lh, "", src); code != http.StatusOK {
		t.Fatalf("leader load = %d", code)
	}

	follower := New()
	if err := follower.StartReplica(ts.URL, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	rev := leader.Stats().Revision
	waitFor(t, "catch-up", func() bool {
		st := follower.Stats()
		return st.Revision == rev && st.Replication != nil && st.Replication.BehindRecords == 0
	})
	promoteDir := t.TempDir()
	if _, err := follower.Promote(promoteDir, false); err != nil {
		t.Fatal(err)
	}
	wantText := do2Text(t, follower.Handler(), "/graph")
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server recovering from the promoted journal.
	reborn := New()
	recovered, err := reborn.AttachJournal(promoteDir)
	if err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()
	if !recovered {
		t.Fatal("promoted journal held no recoverable state")
	}
	if reborn.Epoch() != 2 {
		t.Fatalf("recovered epoch = %d, want 2", reborn.Epoch())
	}
	if got := do2Text(t, reborn.Handler(), "/graph"); got != wantText {
		t.Fatal("recovered graph text diverges from the promoted state")
	}
	if st := reborn.Stats(); st.Revision != rev {
		t.Fatalf("recovered revision = %d, want %d", st.Revision, rev)
	}
}

// TestPromoteGates pins the refusals: not caught up without force, dirty
// target directory, missing data directory.
func TestPromoteGates(t *testing.T) {
	// A replica of a dead leader never catches up.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer dead.Close()
	f := New()
	if err := f.StartReplica(dead.URL, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Promote(t.TempDir(), false); err == nil {
		t.Fatal("promote accepted a replica that never caught up")
	}
	if _, err := f.Promote("", true); err == nil {
		t.Fatal("promote accepted an empty data directory")
	}
	// force promotes anyway — the disaster lever.
	dir := t.TempDir()
	if _, err := f.Promote(dir, true); err != nil {
		t.Fatalf("forced promote: %v", err)
	}
	if f.Epoch() < 2 {
		t.Fatalf("forced promote epoch = %d, want >= 2", f.Epoch())
	}
	if err := f.refuseReadOnly(); err != nil {
		t.Fatalf("forced-promoted leader still read-only: %v", err)
	}
}

func do2Text(t *testing.T, h http.Handler, target string) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s = %d", target, rec.Code)
	}
	return rec.Body.String()
}
