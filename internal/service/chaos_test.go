package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"takegrant/internal/fault"
	"takegrant/internal/specimens"
)

// The chaos suite drives the fleet through seeded fault schedules and
// asserts the safety properties the design document promises: a verdict
// is never wrong, replicas converge once the weather clears, and a torn
// disk degrades loudly instead of corrupting. Every schedule is a fixed
// seed — a failure reproduces by rerunning the same test, no flakes.

// chaosVerdicts reads the safety-relevant query routes from a handler.
func chaosVerdicts(t *testing.T, h http.Handler, ns string) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, route := range []string{"/secure", "/levels", "/islands", "/graph"} {
		target := route
		if ns != "" {
			target += "?ns=" + ns
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", target, rec.Code, rec.Body.String())
		}
		out[route] = rec.Body.String()
	}
	return out
}

// TestChaosDroppedPollsConverge runs replication through a lossy,
// seeded network: half of all poll fetches error for the first forty
// fires. The follower must ride it out on backoff and still converge to
// byte-identical verdicts, with the digest anti-entropy check passing.
func TestChaosDroppedPollsConverge(t *testing.T) {
	leader := New()
	if _, err := leader.AttachJournal(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	lh := leader.Handler()
	ts := httptest.NewServer(lh)
	defer ts.Close()
	src, err := specimens.Source("fig61")
	if err != nil {
		t.Fatal(err)
	}
	if code := putGraphNS(t, lh, "", src); code != http.StatusOK {
		t.Fatalf("PUT /graph = %d", code)
	}

	chaos := fault.NewChaos(42).
		RuleErr("repl:get", 0.5, 40, func() error { return fmt.Errorf("chaos: dropped poll") })
	chaos.Arm()
	defer chaos.Disarm()

	follower := New()
	if err := follower.StartReplica(ts.URL, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	// Keep mutating while the network is bad: convergence has to happen
	// through the chaos, not after a quiet start.
	for i := 0; i < 15; i++ {
		body := fmt.Sprintf(`{"op":"create","x":"low","name":"storm_%d","kind":"object","rights":"r"}`, i)
		if code := do(t, lh, http.MethodPost, "/apply", body, nil); code != http.StatusOK {
			t.Fatalf("apply %d = %d", i, code)
		}
		time.Sleep(2 * time.Millisecond)
	}

	rev := leader.Stats().Revision
	waitFor(t, "follower to converge through dropped polls", func() bool {
		st := follower.Stats()
		return st.Revision == rev && st.Replication != nil && st.Replication.BehindRecords == 0
	})
	if chaos.TotalFires() == 0 {
		t.Fatal("chaos never fired — the schedule tested nothing")
	}
	if st := follower.Stats(); st.Replication.Errors == 0 {
		t.Fatal("no replication errors recorded despite dropped polls")
	}

	// Safety: byte-identical verdicts on every query route.
	want := chaosVerdicts(t, lh, "")
	got := chaosVerdicts(t, follower.Handler(), "")
	for route, w := range want {
		if got[route] != w {
			t.Errorf("route %s diverged after chaos:\nleader:   %q\nfollower: %q", route, w, got[route])
		}
	}

	// Anti-entropy agrees: same digest at the same revision.
	var ld, fd map[string]any
	if code := do(t, lh, http.MethodGet, "/replication/digest", "", &ld); code != http.StatusOK {
		t.Fatalf("leader digest = %d", code)
	}
	if code := do(t, follower.Handler(), http.MethodGet, "/replication/digest", "", &fd); code != http.StatusOK {
		t.Fatalf("follower digest = %d", code)
	}
	if ld["digest"] != fd["digest"] || ld["revision"] != fd["revision"] {
		t.Fatalf("digest mismatch after convergence: leader=%v follower=%v", ld, fd)
	}
}

// TestChaosTornAppendDegradesNotCorrupts pins the WAL failure story
// under a seeded schedule: a torn append refuses the mutation, flips the
// namespace to degraded (503s, readyz red), keeps serving correct reads,
// and a restart recovers exactly the accepted prefix.
func TestChaosTornAppendDegradesNotCorrupts(t *testing.T) {
	dir := t.TempDir()
	srv := New()
	if _, err := srv.AttachJournal(dir); err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	src, err := specimens.Source("fig61")
	if err != nil {
		t.Fatal(err)
	}
	if code := putGraphNS(t, h, "", src); code != http.StatusOK {
		t.Fatalf("PUT /graph = %d", code)
	}
	if code := do(t, h, http.MethodPost, "/apply", `{"op":"create","x":"low","name":"accepted","kind":"object","rights":"r"}`, nil); code != http.StatusOK {
		t.Fatalf("pre-tear apply = %d", code)
	}
	before := chaosVerdicts(t, h, "")

	chaos := fault.NewChaos(7).
		RuleErr("journal:append-write", 1.0, 1, func() error { return fmt.Errorf("chaos: torn write") })
	chaos.Arm()
	code := do(t, h, http.MethodPost, "/apply", `{"op":"create","x":"low","name":"torn","kind":"object","rights":"r"}`, nil)
	chaos.Disarm()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("torn apply = %d, want 503", code)
	}
	if chaos.TotalFires() != 1 {
		t.Fatalf("chaos fires = %d, want exactly 1 (max respected)", chaos.TotalFires())
	}

	// Degraded: mutations bounce even though the fault is gone — the WAL
	// offset is unknown, so writing more could interleave frames.
	if code := do(t, h, http.MethodPost, "/apply", `{"op":"create","x":"low","name":"after","kind":"object","rights":"r"}`, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("post-tear apply = %d, want 503 degraded", code)
	}
	var rz map[string]any
	if code := do(t, h, http.MethodGet, "/readyz", "", &rz); code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /readyz = %d, want 503", code)
	}
	// Reads still answer. The refused mutation may be visible in memory
	// (apply-then-journal: the 503 withheld the acknowledgement, not the
	// in-memory application), but the state must be internally consistent:
	// the scrubber's from-scratch oracles agree with every incremental
	// index even on the degraded path.
	chaosVerdicts(t, h, "")
	for _, n := range srv.allNS() {
		srv.scrubNS(n)
	}
	if got := srv.Stats().Fleet.ScrubMismatches; got != 0 {
		t.Fatalf("scrub found %d mismatches on the degraded node", got)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: recovery rebuilds the accepted prefix, the torn record is
	// nowhere, and the node is writable again.
	reborn := New()
	recovered, err := reborn.AttachJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()
	if !recovered {
		t.Fatal("no state recovered")
	}
	rh := reborn.Handler()
	got := chaosVerdicts(t, rh, "")
	for route, w := range before {
		if got[route] != w {
			t.Errorf("route %s diverged across restart:\n%q\n%q", route, w, got[route])
		}
	}
	if code := do(t, rh, http.MethodPost, "/apply", `{"op":"create","x":"low","name":"post_restart","kind":"object","rights":"r"}`, nil); code != http.StatusOK {
		t.Fatalf("post-restart apply = %d, want 200 (degradation must not survive restart)", code)
	}
}

// TestChaosPanicsAreContained injects scheduled panics into the query
// path: each panicking request dies alone with a 500 internal_panic,
// and the verdicts served afterwards are exactly the pre-chaos ones.
func TestChaosPanicsAreContained(t *testing.T) {
	srv := New()
	defer srv.Close()
	h := srv.Handler()
	src, err := specimens.Source("fig61")
	if err != nil {
		t.Fatal(err)
	}
	if code := putGraphNS(t, h, "", src); code != http.StatusOK {
		t.Fatalf("PUT /graph = %d", code)
	}
	before := chaosVerdicts(t, h, "")

	chaos := fault.NewChaos(1234).
		Rule("http:/secure", 1.0, 3, func() { panic("chaos: scheduled panic") })
	chaos.Arm()
	panics := 0
	for i := 0; i < 6; i++ {
		var body map[string]any
		code := do(t, h, http.MethodGet, "/secure", "", &body)
		switch code {
		case http.StatusInternalServerError:
			panics++
			if body["code"] != "internal_panic" {
				t.Fatalf("panic error code = %v", body["code"])
			}
		case http.StatusOK:
		default:
			t.Fatalf("GET /secure under panic chaos = %d", code)
		}
	}
	chaos.Disarm()
	if panics != 3 {
		t.Fatalf("panics served = %d, want exactly 3 (max respected)", panics)
	}
	if got := chaos.Fires()["http:/secure"]; got != 3 {
		t.Fatalf("chaos fire count = %d, want 3", got)
	}

	// The survivor serves exactly what it served before the storm.
	got := chaosVerdicts(t, h, "")
	for route, w := range before {
		if got[route] != w {
			t.Errorf("route %s diverged after panics:\n%q\n%q", route, w, got[route])
		}
	}
}

// TestChaosDeterministicSchedule pins the harness's own promise: the
// same seed draws the same fire schedule, a different seed draws a
// different one (so "rerun with the logged seed" reproduces a failure).
func TestChaosDeterministicSchedule(t *testing.T) {
	schedule := func(seed int64) []bool {
		c := fault.NewChaos(seed).RuleErr("chaos-test:point", 0.5, 1000, func() error { return fmt.Errorf("x") })
		c.Arm()
		defer c.Disarm()
		var fires []bool
		for i := 0; i < 200; i++ {
			fires = append(fires, fault.InjectErr("chaos-test:point") != nil)
		}
		return fires
	}
	a, b := schedule(99), schedule(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := schedule(100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 99 and 100 drew identical 200-draw schedules")
	}
}
