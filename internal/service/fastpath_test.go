package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestClosureFastPathWarm pins the closure fast path's observable contract:
// the first compute at a revision falls back to the budgeted search (and is
// counted fast_path="search"), a monotone mutation that no chain alphabet
// cares about moves the revision — forcing a qcache miss — but leaves the
// closure rows warm, so the recompute is a bit-test counted
// fast_path="closure", with identical verdicts.
func TestClosureFastPathWarm(t *testing.T) {
	srv := New()
	h := srv.Handler()
	putSpecimen(t, h, "fig61")

	items := []BatchQuery{
		{ID: "s", Kind: "can-share", Right: "r", X: "low", Y: "secret"},
		{ID: "k", Kind: "can-know", X: "low", Y: "secret"},
		{ID: "f", Kind: "can-know-f", X: "low", Y: "secret"},
	}
	var cold BatchResponse
	if rec := postBatch(t, h, items, &cold); rec.Code != http.StatusOK {
		t.Fatalf("POST /query/batch: %d %s", rec.Code, rec.Body.String())
	}
	st := srv.Stats()
	if st.FastPath.Search == 0 {
		t.Fatalf("cold computes not counted as search: %+v", st.FastPath)
	}
	if st.FastPath.Closure != 0 {
		t.Fatalf("cold computes claimed the closure path: %+v", st.FastPath)
	}

	// An empty-rights create is just a vertex add: every closure row family
	// absorbs it, but the revision moves, so the same batch misses the
	// qcache and recomputes — this time through warm rows.
	req := httptest.NewRequest(http.MethodPost, "/apply",
		strings.NewReader(`{"op":"create","x":"low","name":"fp_probe","kind":"object"}`))
	req.Header.Set("Content-Type", "application/json")
	if rec := serve(t, h, req, nil); rec.Code != http.StatusOK {
		t.Fatalf("POST /apply: %d %s", rec.Code, rec.Body.String())
	}

	var warm BatchResponse
	if rec := postBatch(t, h, items, &warm); rec.Code != http.StatusOK {
		t.Fatalf("POST /query/batch (warm): %d %s", rec.Code, rec.Body.String())
	}
	if warm.Revision == cold.Revision {
		t.Fatal("mutation did not move the revision; warm batch hit the qcache instead of recomputing")
	}
	st = srv.Stats()
	if st.FastPath.Closure < uint64(len(items)) {
		t.Fatalf("warm recompute not answered by the closure path: %+v", st.FastPath)
	}
	for i := range items {
		c, w := cold.Results[i], warm.Results[i]
		if c.Status != http.StatusOK || w.Status != http.StatusOK || c.Verdict == nil || w.Verdict == nil {
			t.Fatalf("item %q: cold %+v warm %+v", items[i].ID, c, w)
		}
		if *c.Verdict != *w.Verdict {
			t.Fatalf("item %q: closure path changed the verdict %v -> %v", items[i].ID, *c.Verdict, *w.Verdict)
		}
	}
	if st.Indexes["reach_closure"].Hits == 0 {
		t.Fatalf("registry shows no reach_closure hits: %+v", st.Indexes["reach_closure"])
	}
	if st.Indexes["reach_closure"].Patches == 0 {
		t.Fatalf("vertex add was not dispatched as a patch: %+v", st.Indexes["reach_closure"])
	}
}
