// WAL shipping: a leader's per-namespace write-ahead logs double as the
// replication transport. Three read-only endpoints expose them —
// namespace list, bootstrap snapshot, frame tail — and a replicator
// polls them from a follower, replaying every shipped record through
// replayLocked: the exact install/guard.Apply path the leader ran, so a
// caught-up follower's revision, hierarchy and verdicts are identical by
// construction, not by copy.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"takegrant/internal/journal"
	"takegrant/internal/obs"
	"takegrant/internal/tgio"
)

// errNoJournal answers replication requests on a node with nothing to
// ship (no -data directory, or a follower being asked to chain).
func errNoJournal(w http.ResponseWriter) {
	writeErrCode(w, http.StatusServiceUnavailable, "replication_unavailable",
		fmt.Errorf("this node has no journal to ship; start the leader with -data"))
}

// handleReplNamespaces lists the journaled namespaces a follower must
// track.
func (s *Server) handleReplNamespaces(w http.ResponseWriter, r *http.Request) {
	if s.dataDir == "" {
		errNoJournal(w)
		return
	}
	spaces := s.allNS()
	names := make([]string, 0, len(spaces))
	for _, n := range spaces {
		names = append(names, n.name)
	}
	writeJSON(w, map[string]any{"namespaces": names})
}

// replSnapshot is the GET /replication/snapshot body: the namespace's
// live state, rendered under the read lock so (text, revision,
// generation, last_seq) are one consistent cut.
type replSnapshot struct {
	Revision   uint64 `json:"revision"`
	Generation uint64 `json:"generation"`
	LastSeq    uint64 `json:"last_seq"`
	Text       string `json:"text"`
}

func (s *Server) handleReplSnapshot(n *namespace, w http.ResponseWriter, r *http.Request) {
	n.mu.RLock()
	if n.journal == nil {
		n.mu.RUnlock()
		errNoJournal(w)
		return
	}
	snap := replSnapshot{
		Revision:   n.g.Revision(),
		Generation: n.gen,
		LastSeq:    n.journal.j.Stats().LastSeq,
		Text:       tgio.WriteString(n.g),
	}
	n.mu.RUnlock()
	writeJSON(w, snap)
}

// replWAL is the GET /replication/wal body: the WAL tail strictly after
// ?after=. SnapshotNeeded reports that a snapshot compacted the
// requested range away — the follower must re-bootstrap.
type replWAL struct {
	LastSeq        uint64           `json:"last_seq"`
	SnapshotNeeded bool             `json:"snapshot_needed"`
	Records        []journal.Record `json:"records"`
}

func (s *Server) handleReplWAL(n *namespace, w http.ResponseWriter, r *http.Request) {
	after, err := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
	if err != nil && r.URL.Query().Get("after") != "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad after=%q: %w", r.URL.Query().Get("after"), err))
		return
	}
	// Grab the journal pointer under the namespace lock, then read frames
	// outside it: Follow has its own mutex and its own read handle, so a
	// slow follower never blocks this namespace's queries or mutations.
	n.mu.RLock()
	js := n.journal
	n.mu.RUnlock()
	if js == nil {
		errNoJournal(w)
		return
	}
	recs, lastSeq, snapshotNeeded, err := js.j.Follow(after)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if recs == nil {
		recs = []journal.Record{}
	}
	writeJSON(w, replWAL{LastSeq: lastSeq, SnapshotNeeded: snapshotNeeded, Records: recs})
}

// ReplicationStats is the follower's slice of the /stats report.
type ReplicationStats struct {
	Leader string `json:"leader"`
	// LagSeconds is 0 while the follower is caught up; once behind, the
	// seconds since it last drew level with the leader.
	LagSeconds     float64 `json:"lag_seconds"`
	BehindRecords  uint64  `json:"behind_records"`
	AppliedRecords uint64  `json:"applied_records"`
	Bootstraps     uint64  `json:"bootstraps"`
	Rounds         uint64  `json:"rounds"`
	Errors         uint64  `json:"errors"`
	LastError      string  `json:"last_error,omitempty"`
}

// replicator tails a leader's journals into this server's namespaces.
type replicator struct {
	s      *Server
	leader string
	poll   time.Duration
	client *http.Client
	cancel context.CancelFunc
	done   chan struct{}

	// tc is the current poll round's trace context: every leader request
	// the round makes carries it as a traceparent header, so the round's
	// log line here and the request lines on the leader share one trace
	// ID. Only the poll goroutine touches it.
	tc obs.TraceContext

	mu           sync.Mutex
	start        time.Time
	lastCaughtUp time.Time
	caughtUp     bool
	behind       uint64
	applied      uint64
	bootstraps   uint64
	rounds       uint64
	errors       uint64
	lastErr      string
}

// StartReplica turns this server into a read replica of leader: a
// background poller tails the leader's WALs into local namespaces
// (creating them as the leader does), every read route keeps serving,
// and every mutation route answers 503 read_only. A replica owns no
// journal of its own — its durability IS the leader's journal, and a
// restarted replica simply re-bootstraps — so StartReplica refuses a
// server that already attached one. Call before serving traffic.
func (s *Server) StartReplica(leader string, poll time.Duration) error {
	if s.dataDir != "" {
		return fmt.Errorf("a replica cannot also own a journal: -data and -replica-of are mutually exclusive")
	}
	if s.repl != nil {
		return fmt.Errorf("already replicating from %s", s.repl.leader)
	}
	if _, err := url.Parse(leader); err != nil || !strings.Contains(leader, "://") {
		return fmt.Errorf("replica-of wants a base URL like http://host:port, got %q", leader)
	}
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &replicator{
		s:      s,
		leader: strings.TrimRight(leader, "/"),
		poll:   poll,
		client: &http.Client{Timeout: 30 * time.Second},
		cancel: cancel,
		done:   make(chan struct{}),
		start:  time.Now(),
	}
	s.readOnly = true
	s.repl = r
	go r.run(ctx)
	return nil
}

func (r *replicator) stop() {
	r.cancel()
	<-r.done
}

func (r *replicator) run(ctx context.Context) {
	defer close(r.done)
	t := time.NewTicker(r.poll)
	defer t.Stop()
	for {
		r.pollOnce(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// pollOnce drains every leader namespace once, then updates the lag
// accounting: caught up ⇒ lag pins to 0, behind ⇒ lag grows from the
// moment we were last level. Each round runs under one trace context
// carried outward to the leader, so the round's log line here and the
// request lines there correlate on a single trace ID.
func (r *replicator) pollOnce(ctx context.Context) {
	r.tc = obs.NewTraceContext()
	start := time.Now()
	appliedBefore := r.applied
	r.mu.Lock()
	r.rounds++
	r.mu.Unlock()

	var list struct {
		Namespaces []string `json:"namespaces"`
	}
	if err := r.get(ctx, "/replication/namespaces", &list); err != nil {
		r.fail(err)
		return
	}
	var behind uint64
	for _, name := range list.Namespaces {
		if !validNSName(name) && name != DefaultNamespace {
			continue
		}
		n, err := r.s.ensureNS(name)
		if err != nil {
			r.fail(err)
			return
		}
		b, err := r.syncNS(ctx, n)
		if err != nil {
			r.fail(fmt.Errorf("namespace %q: %w", name, err))
			return
		}
		behind += b
	}

	r.mu.Lock()
	r.behind = behind
	if behind == 0 {
		r.caughtUp = true
		r.lastCaughtUp = time.Now()
	} else {
		r.caughtUp = false
	}
	r.lastErr = ""
	applied := r.applied
	r.mu.Unlock()

	// Quiet rounds (nothing replayed, already level) stay out of the log
	// and the flight ring — at a 500ms poll they would be pure noise.
	if delta := applied - appliedBefore; delta > 0 || behind > 0 {
		r.s.logger.LogAttrs(context.Background(), slog.LevelInfo, "replication_round",
			slog.String("trace_id", r.tc.TraceID),
			slog.String("leader", r.leader),
			slog.Uint64("applied", delta),
			slog.Uint64("behind", behind),
			slog.Duration("duration", time.Since(start)),
		)
		r.s.flight.Record(obs.FlightEvent{
			Kind: "replication", Trace: r.tc.TraceID, Dur: time.Since(start),
			Detail: fmt.Sprintf("round applied %d records, %d behind", delta, behind),
		})
	}
}

func (r *replicator) fail(err error) {
	r.s.logger.LogAttrs(context.Background(), slog.LevelWarn, "replication",
		slog.String("trace_id", r.tc.TraceID),
		slog.String("leader", r.leader),
		slog.String("error", err.Error()),
	)
	r.s.flight.Record(obs.FlightEvent{
		Kind: "replication", Trace: r.tc.TraceID,
		Detail: "round failed: " + err.Error(),
	})
	r.mu.Lock()
	r.errors++
	r.caughtUp = false
	r.lastErr = err.Error()
	r.mu.Unlock()
}

// syncNS tails one namespace until level with the leader (or a bounded
// number of fetches — a hot leader can outrun one poll; the next round
// continues). Returns how many records remain unreplayed.
func (r *replicator) syncNS(ctx context.Context, n *namespace) (uint64, error) {
	for i := 0; i < 100; i++ {
		after := n.appliedSeq.Load()
		var tail replWAL
		if err := r.get(ctx, fmt.Sprintf("/replication/wal?ns=%s&after=%d", n.name, after), &tail); err != nil {
			return 0, err
		}
		if tail.SnapshotNeeded {
			if err := r.bootstrap(ctx, n); err != nil {
				return 0, err
			}
			continue
		}
		if len(tail.Records) == 0 {
			return 0, nil
		}
		n.mu.Lock()
		for _, rec := range tail.Records {
			if rec.Seq <= n.appliedSeq.Load() {
				continue // duplicate delivery; replay is idempotent by cursor
			}
			if err := r.s.replayLocked(n, rec); err != nil {
				n.mu.Unlock()
				return 0, fmt.Errorf("wal seq %d: %w", rec.Seq, err)
			}
			n.appliedSeq.Store(rec.Seq)
			r.mu.Lock()
			r.applied++
			r.mu.Unlock()
		}
		n.mu.Unlock()
		if n.appliedSeq.Load() >= tail.LastSeq {
			return 0, nil
		}
	}
	var tail replWAL
	if err := r.get(ctx, fmt.Sprintf("/replication/wal?ns=%s&after=%d", n.name, n.appliedSeq.Load()), &tail); err != nil {
		return 0, err
	}
	if last := tail.LastSeq; last > n.appliedSeq.Load() {
		return last - n.appliedSeq.Load(), nil
	}
	return 0, nil
}

// bootstrap installs the leader's snapshot cut: graph text, revision,
// generation and WAL cursor in one shot. After this the follower tails
// frames from LastSeq exactly as recovery would replay them.
func (r *replicator) bootstrap(ctx context.Context, n *namespace) error {
	var snap replSnapshot
	if err := r.get(ctx, "/replication/snapshot?ns="+n.name, &snap); err != nil {
		return err
	}
	g, err := tgio.ParseString(snap.Text)
	if err != nil {
		return fmt.Errorf("leader snapshot does not parse: %w", err)
	}
	n.mu.Lock()
	n.install(g, r.s.cfg.HierarchyWorkers)
	g.RestoreRevision(snap.Revision)
	n.gen = snap.Generation
	n.appliedSeq.Store(snap.LastSeq)
	n.mu.Unlock()
	r.mu.Lock()
	r.bootstraps++
	r.mu.Unlock()
	return nil
}

func (r *replicator) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.leader+path, nil)
	if err != nil {
		return err
	}
	// Each leader request is a child span of the poll round: the leader's
	// instrument middleware joins the trace, so its request log line
	// carries the same trace ID as our replication_round line.
	if r.tc.Valid() {
		req.Header.Set("traceparent", r.tc.Child().Traceparent())
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		return fmt.Errorf("leader %s%s: %d %s", r.leader, path, resp.StatusCode, eb.Error)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (r *replicator) stats() ReplicationStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	lag := 0.0
	if !r.caughtUp {
		ref := r.lastCaughtUp
		if ref.IsZero() {
			ref = r.start
		}
		lag = time.Since(ref).Seconds()
	}
	return ReplicationStats{
		Leader:         r.leader,
		LagSeconds:     lag,
		BehindRecords:  r.behind,
		AppliedRecords: r.applied,
		Bootstraps:     r.bootstraps,
		Rounds:         r.rounds,
		Errors:         r.errors,
		LastError:      r.lastErr,
	}
}
