// WAL shipping: a leader's per-namespace write-ahead logs double as the
// replication transport. Three read-only endpoints expose them —
// namespace list, bootstrap snapshot, frame tail — and a replicator
// polls them from a follower, replaying every shipped record through
// replayLocked: the exact install/guard.Apply path the leader ran, so a
// caught-up follower's revision, hierarchy and verdicts are identical by
// construction, not by copy.
package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"takegrant/internal/fault"
	"takegrant/internal/graph"
	"takegrant/internal/journal"
	"takegrant/internal/obs"
	"takegrant/internal/tgio"
)

// ErrStaleEpoch reports a leader answering under a smaller epoch than
// this follower has already seen — a resurrected old leader. Its frames
// must not be applied: the fleet moved on when a follower was promoted.
var ErrStaleEpoch = errors.New("stale leader epoch")

// errNoJournal answers replication requests on a node with nothing to
// ship (no -data directory, or a follower being asked to chain).
func errNoJournal(w http.ResponseWriter) {
	writeErrCode(w, http.StatusServiceUnavailable, "replication_unavailable",
		fmt.Errorf("this node has no journal to ship; start the leader with -data"))
}

// epochHeader carries the serving node's leader epoch on every
// /replication/* response — the fencing token followers track.
const epochHeader = "X-Takegrant-Epoch"

// fenced wraps a /replication/* handler in the epoch protocol: every
// response echoes this node's epoch, and a request asserting ?epoch=E
// is refused with 409 stale_epoch when this node's epoch is smaller —
// the caller has seen a newer leader, so this node is the resurrected
// old one and must not ship frames.
func (s *Server) fenced(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		own := s.epoch.Load()
		w.Header().Set(epochHeader, strconv.FormatUint(own, 10))
		if claim := r.URL.Query().Get("epoch"); claim != "" {
			e, err := strconv.ParseUint(claim, 10, 64)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad epoch=%q: %w", claim, err))
				return
			}
			if e > own {
				s.fleet.staleEpoch.Add(1)
				s.flight.Record(obs.FlightEvent{
					Kind: "fence", Route: r.URL.Path, Code: http.StatusConflict,
					Detail: fmt.Sprintf("refused: caller saw epoch %d, this node serves %d", e, own),
				})
				writeErrCode(w, http.StatusConflict, "stale_epoch",
					fmt.Errorf("this node's leader epoch %d is stale: the fleet has moved to %d", own, e))
				return
			}
		}
		h(w, r)
	}
}

// replDigest is the GET /replication/digest body: the namespace's state
// fingerprint. Digest is the sha256 of the canonical .tg text — the same
// text bootstrap ships — so equal digests at equal (revision, generation)
// mean byte-identical state.
type replDigest struct {
	Revision   uint64 `json:"revision"`
	Generation uint64 `json:"generation"`
	Digest     string `json:"digest"`
}

// handleReplDigest serves the anti-entropy fingerprint. Unlike the other
// /replication/* routes it needs no journal: followers serve it too, so
// any two nodes can be cross-checked.
func (s *Server) handleReplDigest(n *namespace, w http.ResponseWriter, r *http.Request) {
	n.mu.RLock()
	d := replDigest{
		Revision:   n.g.Revision(),
		Generation: n.gen,
		Digest:     n.digestLocked(obs.ProbeFrom(r.Context())),
	}
	n.mu.RUnlock()
	writeJSON(w, d)
}

// digestLocked fingerprints the namespace's canonical text, memoized in
// the query cache at the current (generation, revision) — repeated
// digest checks at an unchanged revision cost one map lookup. Callers
// hold at least the read lock.
func (n *namespace) digestLocked(p *obs.Probe) string {
	v, _ := n.cachedErr(p, "digest", "", func() (any, error) {
		sum := sha256.Sum256([]byte(tgio.WriteString(n.g)))
		return hex.EncodeToString(sum[:]), nil
	})
	return v.(string)
}

// handleReplNamespaces lists the journaled namespaces a follower must
// track.
func (s *Server) handleReplNamespaces(w http.ResponseWriter, r *http.Request) {
	if s.dataDir == "" {
		errNoJournal(w)
		return
	}
	spaces := s.allNS()
	names := make([]string, 0, len(spaces))
	for _, n := range spaces {
		names = append(names, n.name)
	}
	writeJSON(w, map[string]any{"namespaces": names})
}

// replSnapshot is the GET /replication/snapshot body: the namespace's
// live state, rendered under the read lock so (text, revision,
// generation, last_seq) are one consistent cut.
type replSnapshot struct {
	Revision   uint64 `json:"revision"`
	Generation uint64 `json:"generation"`
	LastSeq    uint64 `json:"last_seq"`
	Text       string `json:"text"`
}

// Headers carrying the snapshot cut's counters when the body is .tgb
// binary (there is no JSON envelope to put them in).
const (
	snapRevisionHeader   = "X-Takegrant-Revision"
	snapGenerationHeader = "X-Takegrant-Generation"
	snapLastSeqHeader    = "X-Takegrant-Last-Seq"
)

func (s *Server) handleReplSnapshot(n *namespace, w http.ResponseWriter, r *http.Request) {
	binary := r.URL.Query().Get("format") == "tgb"
	n.mu.RLock()
	if n.journal == nil {
		n.mu.RUnlock()
		errNoJournal(w)
		return
	}
	if binary {
		// Binary cut: encode under the read lock so (bytes, revision,
		// generation, cursor) stay one consistent cut, write after
		// release so a slow follower never holds readers up.
		rev, gen, last := n.g.Revision(), n.gen, n.journal.j.Stats().LastSeq
		var buf bytes.Buffer
		err := tgio.EncodeBinary(&buf, n.g)
		n.mu.RUnlock()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", tgio.BinaryContentType)
		w.Header().Set(snapRevisionHeader, strconv.FormatUint(rev, 10))
		w.Header().Set(snapGenerationHeader, strconv.FormatUint(gen, 10))
		w.Header().Set(snapLastSeqHeader, strconv.FormatUint(last, 10))
		w.Write(buf.Bytes())
		return
	}
	snap := replSnapshot{
		Revision:   n.g.Revision(),
		Generation: n.gen,
		LastSeq:    n.journal.j.Stats().LastSeq,
		Text:       tgio.WriteString(n.g),
	}
	n.mu.RUnlock()
	writeJSON(w, snap)
}

// replWAL is the GET /replication/wal body: the WAL tail strictly after
// ?after=. SnapshotNeeded reports that a snapshot compacted the
// requested range away — the follower must re-bootstrap.
type replWAL struct {
	LastSeq        uint64           `json:"last_seq"`
	SnapshotNeeded bool             `json:"snapshot_needed"`
	Records        []journal.Record `json:"records"`
}

func (s *Server) handleReplWAL(n *namespace, w http.ResponseWriter, r *http.Request) {
	after, err := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
	if err != nil && r.URL.Query().Get("after") != "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad after=%q: %w", r.URL.Query().Get("after"), err))
		return
	}
	// Grab the journal pointer under the namespace lock, then read frames
	// outside it: Follow has its own mutex and its own read handle, so a
	// slow follower never blocks this namespace's queries or mutations.
	n.mu.RLock()
	js := n.journal
	n.mu.RUnlock()
	if js == nil {
		errNoJournal(w)
		return
	}
	recs, lastSeq, snapshotNeeded, err := js.j.Follow(after)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if recs == nil {
		recs = []journal.Record{}
	}
	writeJSON(w, replWAL{LastSeq: lastSeq, SnapshotNeeded: snapshotNeeded, Records: recs})
}

// ReplicationStats is the follower's slice of the /stats report.
type ReplicationStats struct {
	Leader string `json:"leader"`
	// LagSeconds is 0 while the follower is caught up; once behind, the
	// seconds since it last drew level with the leader.
	LagSeconds     float64 `json:"lag_seconds"`
	BehindRecords  uint64  `json:"behind_records"`
	AppliedRecords uint64  `json:"applied_records"`
	Bootstraps     uint64  `json:"bootstraps"`
	Rounds         uint64  `json:"rounds"`
	Errors         uint64  `json:"errors"`
	LastError      string  `json:"last_error,omitempty"`
	// ConsecutiveFailures counts failed rounds since the last success;
	// BackoffSeconds is the current poll delay they earned (0 = base poll).
	ConsecutiveFailures int     `json:"consecutive_failures,omitempty"`
	BackoffSeconds      float64 `json:"backoff_seconds,omitempty"`
	// DigestChecks / DigestMismatches count anti-entropy verifications and
	// the divergences that forced a re-bootstrap.
	DigestChecks     uint64 `json:"digest_checks"`
	DigestMismatches uint64 `json:"digest_mismatches"`
	// LeaderEpoch is the highest epoch seen on any leader response.
	LeaderEpoch uint64 `json:"leader_epoch"`
}

// replicator tails a leader's journals into this server's namespaces.
type replicator struct {
	s      *Server
	leader string
	poll   time.Duration
	client *http.Client
	cancel context.CancelFunc
	done   chan struct{}

	// tc is the current poll round's trace context: every leader request
	// the round makes carries it as a traceparent header, so the round's
	// log line here and the request lines on the leader share one trace
	// ID. Only the poll goroutine touches it.
	tc obs.TraceContext

	mu           sync.Mutex
	start        time.Time
	lastCaughtUp time.Time
	caughtUp     bool
	behind       uint64
	applied      uint64
	bootstraps   uint64
	rounds       uint64
	errors       uint64
	lastErr      string
	// failStreak counts consecutive failed rounds; backoff is the extended
	// poll delay they earned (satellite: stop hammering a dead leader).
	failStreak int
	backoff    time.Duration
	// seenEpoch is the highest leader epoch observed on any response;
	// a response below it means a resurrected old leader (ErrStaleEpoch).
	seenEpoch uint64
	// digestChecks / digestMismatches are the anti-entropy counters.
	digestChecks     uint64
	digestMismatches uint64
}

// StartReplica turns this server into a read replica of leader: a
// background poller tails the leader's WALs into local namespaces
// (creating them as the leader does), every read route keeps serving,
// and every mutation route answers 503 read_only. A replica owns no
// journal of its own — its durability IS the leader's journal, and a
// restarted replica simply re-bootstraps — so StartReplica refuses a
// server that already attached one. Call before serving traffic.
func (s *Server) StartReplica(leader string, poll time.Duration) error {
	if s.dataDir != "" {
		return fmt.Errorf("a replica cannot also own a journal: -data and -replica-of are mutually exclusive")
	}
	if r := s.repl.Load(); r != nil {
		return fmt.Errorf("already replicating from %s", r.leader)
	}
	if _, err := url.Parse(leader); err != nil || !strings.Contains(leader, "://") {
		return fmt.Errorf("replica-of wants a base URL like http://host:port, got %q", leader)
	}
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &replicator{
		s:      s,
		leader: strings.TrimRight(leader, "/"),
		poll:   poll,
		client: &http.Client{Timeout: 30 * time.Second},
		cancel: cancel,
		done:   make(chan struct{}),
		start:  time.Now(),
	}
	s.readOnly.Store(true)
	s.repl.Store(r)
	go r.run(ctx)
	return nil
}

func (r *replicator) stop() {
	r.cancel()
	<-r.done
}

// maxPollBackoff caps the exponential poll backoff against a leader
// that keeps failing.
const maxPollBackoff = 30 * time.Second

// pollBackoff computes the delay before the next round after `fails`
// consecutive failed rounds: base·2^(fails-1) with ±50% jitter
// (jitter ∈ [0,1) scales the spread), capped at maxPollBackoff. Zero
// fails means the base poll — a healthy leader is polled on cadence.
func pollBackoff(base time.Duration, fails int, jitter float64) time.Duration {
	if fails <= 0 {
		return base
	}
	b := base
	for i := 1; i < fails; i++ {
		b *= 2
		if b >= maxPollBackoff || b <= 0 { // <=0 guards shift overflow
			b = maxPollBackoff
			break
		}
	}
	// ±50%: scale into [0.5·b, 1.5·b), then re-cap.
	b = b/2 + time.Duration(jitter*float64(b))
	if b > maxPollBackoff {
		b = maxPollBackoff
	}
	if b < base {
		b = base
	}
	return b
}

func (r *replicator) run(ctx context.Context) {
	defer close(r.done)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for {
		ok := r.pollOnce(ctx)
		r.mu.Lock()
		if ok {
			r.failStreak = 0
			r.backoff = 0
		} else {
			r.failStreak++
			r.backoff = pollBackoff(r.poll, r.failStreak, rng.Float64())
		}
		wait := r.backoff
		if wait == 0 {
			wait = r.poll
		}
		r.mu.Unlock()
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// pollOnce drains every leader namespace once, then updates the lag
// accounting: caught up ⇒ lag pins to 0, behind ⇒ lag grows from the
// moment we were last level. Each round runs under one trace context
// carried outward to the leader, so the round's log line here and the
// request lines there correlate on a single trace ID.
//
// One bad namespace does not starve the others: every namespace is
// attempted each round, per-namespace errors are aggregated into
// lastErr, and the round only counts as failed for backoff purposes
// (ok=false) when the leader itself is unreachable — the namespace list
// fails, or every attempted sync fails.
func (r *replicator) pollOnce(ctx context.Context) (ok bool) {
	r.tc = obs.NewTraceContext()
	start := time.Now()
	appliedBefore := r.applied
	r.mu.Lock()
	r.rounds++
	r.mu.Unlock()

	var list struct {
		Namespaces []string `json:"namespaces"`
	}
	if err := r.get(ctx, "/replication/namespaces", &list); err != nil {
		r.fail(err)
		return false
	}
	var behind uint64
	var errs []error
	attempted, failed := 0, 0
	for _, name := range list.Namespaces {
		if !validNSName(name) && name != DefaultNamespace {
			continue
		}
		attempted++
		n, err := r.s.ensureNS(name)
		if err != nil {
			errs = append(errs, fmt.Errorf("namespace %q: %w", name, err))
			failed++
			continue
		}
		b, applied, err := r.syncNS(ctx, n)
		if err != nil {
			errs = append(errs, fmt.Errorf("namespace %q: %w", name, err))
			failed++
			continue
		}
		behind += b
		// Anti-entropy: after a sync that changed this namespace, verify
		// the state fingerprint against the leader's. A quiet namespace is
		// not re-verified every round.
		if applied && b == 0 {
			if err := r.verifyDigest(ctx, n); err != nil {
				errs = append(errs, fmt.Errorf("namespace %q digest: %w", name, err))
			}
		}
	}

	r.mu.Lock()
	r.behind = behind
	if len(errs) == 0 && behind == 0 {
		r.caughtUp = true
		r.lastCaughtUp = time.Now()
	} else {
		r.caughtUp = false
	}
	if len(errs) == 0 {
		r.lastErr = ""
	}
	applied := r.applied
	r.mu.Unlock()
	if len(errs) > 0 {
		r.fail(errors.Join(errs...))
	}

	// Quiet rounds (nothing replayed, already level) stay out of the log
	// and the flight ring — at a 500ms poll they would be pure noise.
	if delta := applied - appliedBefore; delta > 0 || behind > 0 {
		r.s.logger.LogAttrs(context.Background(), slog.LevelInfo, "replication_round",
			slog.String("trace_id", r.tc.TraceID),
			slog.String("leader", r.leader),
			slog.Uint64("applied", delta),
			slog.Uint64("behind", behind),
			slog.Duration("duration", time.Since(start)),
		)
		r.s.flight.Record(obs.FlightEvent{
			Kind: "replication", Trace: r.tc.TraceID, Dur: time.Since(start),
			Detail: fmt.Sprintf("round applied %d records, %d behind", delta, behind),
		})
	}
	return attempted == 0 || failed < attempted
}

func (r *replicator) fail(err error) {
	r.s.logger.LogAttrs(context.Background(), slog.LevelWarn, "replication",
		slog.String("trace_id", r.tc.TraceID),
		slog.String("leader", r.leader),
		slog.String("error", err.Error()),
	)
	r.s.flight.Record(obs.FlightEvent{
		Kind: "replication", Trace: r.tc.TraceID,
		Detail: "round failed: " + err.Error(),
	})
	r.mu.Lock()
	r.errors++
	r.caughtUp = false
	r.lastErr = err.Error()
	r.mu.Unlock()
}

// syncNS tails one namespace until level with the leader (or a bounded
// number of fetches — a hot leader can outrun one poll; the next round
// continues). Returns how many records remain unreplayed and whether
// this sync changed the namespace (replayed records or bootstrapped).
func (r *replicator) syncNS(ctx context.Context, n *namespace) (uint64, bool, error) {
	applied := false
	if err := fault.InjectErr("repl:sync:" + n.name); err != nil {
		return 0, false, err
	}
	for i := 0; i < 100; i++ {
		after := n.appliedSeq.Load()
		var tail replWAL
		if err := r.get(ctx, fmt.Sprintf("/replication/wal?ns=%s&after=%d", n.name, after), &tail); err != nil {
			return 0, applied, err
		}
		if tail.SnapshotNeeded {
			if err := r.bootstrap(ctx, n); err != nil {
				return 0, applied, err
			}
			applied = true
			continue
		}
		if len(tail.Records) == 0 {
			return 0, applied, nil
		}
		n.mu.Lock()
		for _, rec := range tail.Records {
			if rec.Seq <= n.appliedSeq.Load() {
				continue // duplicate delivery; replay is idempotent by cursor
			}
			if err := r.s.replayLocked(n, rec); err != nil {
				n.mu.Unlock()
				return 0, applied, fmt.Errorf("wal seq %d: %w", rec.Seq, err)
			}
			n.appliedSeq.Store(rec.Seq)
			applied = true
			r.mu.Lock()
			r.applied++
			r.mu.Unlock()
		}
		n.mu.Unlock()
		if n.appliedSeq.Load() >= tail.LastSeq {
			return 0, applied, nil
		}
	}
	var tail replWAL
	if err := r.get(ctx, fmt.Sprintf("/replication/wal?ns=%s&after=%d", n.name, n.appliedSeq.Load()), &tail); err != nil {
		return 0, applied, err
	}
	if last := tail.LastSeq; last > n.appliedSeq.Load() {
		return last - n.appliedSeq.Load(), applied, nil
	}
	return 0, applied, nil
}

// verifyDigest cross-checks a just-synced namespace's state fingerprint
// against the leader's. Digests are only compared at matching (revision,
// generation) — the leader may already have moved on, in which case the
// next catch-up re-verifies. A mismatch at a matching revision means the
// replayed state diverged (a bug, or a torn ship): the namespace is
// quarantined and re-bootstrapped from a fresh snapshot cut.
func (r *replicator) verifyDigest(ctx context.Context, n *namespace) error {
	var d replDigest
	if err := r.get(ctx, "/replication/digest?ns="+n.name, &d); err != nil {
		return err
	}
	n.mu.RLock()
	rev, gen := n.g.Revision(), n.gen
	var local string
	if rev == d.Revision && gen == d.Generation {
		local = n.digestLocked(nil)
	}
	n.mu.RUnlock()
	r.mu.Lock()
	r.digestChecks++
	r.mu.Unlock()
	if local == "" || local == d.Digest {
		return nil // leader moved on, or state verified identical
	}
	r.mu.Lock()
	r.digestMismatches++
	r.mu.Unlock()
	r.s.logger.LogAttrs(context.Background(), slog.LevelError, "replication",
		slog.String("trace_id", r.tc.TraceID),
		slog.String("ns", n.name),
		slog.String("event", "digest_mismatch_rebootstrapping"),
		slog.Uint64("revision", rev),
		slog.String("local", local),
		slog.String("leader", d.Digest),
	)
	r.s.flight.Record(obs.FlightEvent{
		Kind: "replication", Trace: r.tc.TraceID, NS: n.name,
		Detail: fmt.Sprintf("digest mismatch at revision %d: re-bootstrapping", rev),
	})
	return r.bootstrap(ctx, n)
}

// bootstrap installs the leader's snapshot cut: graph, revision,
// generation and WAL cursor in one shot. After this the follower tails
// frames from LastSeq exactly as recovery would replay them.
func (r *replicator) bootstrap(ctx context.Context, n *namespace) error {
	snap, g, err := r.fetchSnapshot(ctx, n.name)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.install(g, r.s.cfg.HierarchyWorkers)
	g.RestoreRevision(snap.Revision)
	n.gen = snap.Generation
	n.appliedSeq.Store(snap.LastSeq)
	n.mu.Unlock()
	r.mu.Lock()
	r.bootstraps++
	r.mu.Unlock()
	return nil
}

// fetchSnapshot fetches the leader's bootstrap cut, asking for the
// compact binary form. A pre-binary leader answers the same route with
// the JSON envelope (it ignores format=), so the branch is on the
// response Content-Type, not on what was asked for; the counters ride in
// headers when the body is binary. snap.Text stays empty on the binary
// path — callers use the returned graph.
func (r *replicator) fetchSnapshot(ctx context.Context, ns string) (replSnapshot, *graph.Graph, error) {
	var snap replSnapshot
	resp, err := r.do(ctx, "/replication/snapshot?format=tgb&ns="+ns)
	if err != nil {
		return snap, nil, err
	}
	defer resp.Body.Close()
	if strings.HasPrefix(resp.Header.Get("Content-Type"), tgio.BinaryContentType) {
		for _, f := range []struct {
			h   string
			dst *uint64
		}{
			{snapRevisionHeader, &snap.Revision},
			{snapGenerationHeader, &snap.Generation},
			{snapLastSeqHeader, &snap.LastSeq},
		} {
			v, err := strconv.ParseUint(resp.Header.Get(f.h), 10, 64)
			if err != nil {
				return snap, nil, fmt.Errorf("leader binary snapshot: bad %s header %q", f.h, resp.Header.Get(f.h))
			}
			*f.dst = v
		}
		g, err := tgio.DecodeBinary(resp.Body)
		if err != nil {
			return snap, nil, fmt.Errorf("leader binary snapshot does not decode: %w", err)
		}
		return snap, g, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, nil, err
	}
	g, err := tgio.ParseString(snap.Text)
	if err != nil {
		return snap, nil, fmt.Errorf("leader snapshot does not parse: %w", err)
	}
	return snap, g, nil
}

func (r *replicator) get(ctx context.Context, path string, out any) error {
	resp, err := r.do(ctx, path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// do runs one fenced leader GET — epoch assertion on the query string,
// trace propagation, epoch observation, error-body decoding — and hands
// back the open 200 response. The caller owns (and must close) the body.
func (r *replicator) do(ctx context.Context, path string) (*http.Response, error) {
	if err := fault.InjectErr("repl:get"); err != nil {
		return nil, err
	}
	// Fencing, follower side: assert the highest epoch we have seen, so a
	// resurrected old leader refuses us with 409 stale_epoch even before
	// we inspect its response header.
	r.mu.Lock()
	seen := r.seenEpoch
	r.mu.Unlock()
	if seen > 0 {
		sep := "?"
		if strings.Contains(path, "?") {
			sep = "&"
		}
		path += sep + "epoch=" + strconv.FormatUint(seen, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.leader+path, nil)
	if err != nil {
		return nil, err
	}
	// Each leader request is a child span of the poll round: the leader's
	// instrument middleware joins the trace, so its request log line
	// carries the same trace ID as our replication_round line.
	if r.tc.Valid() {
		req.Header.Set("traceparent", r.tc.Child().Traceparent())
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	if err := r.observeEpoch(resp); err != nil {
		resp.Body.Close()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		resp.Body.Close()
		if eb.Code == "stale_epoch" {
			return nil, fmt.Errorf("leader %s%s: %w (%s)", r.leader, path, ErrStaleEpoch, eb.Error)
		}
		return nil, fmt.Errorf("leader %s%s: %d %s", r.leader, path, resp.StatusCode, eb.Error)
	}
	return resp, nil
}

// observeEpoch tracks the leader's epoch from a response header. A
// response below the highest epoch already seen is a resurrected old
// leader: the round aborts with ErrStaleEpoch and nothing it shipped is
// applied. Responses without the header (pre-epoch leaders) skip the
// check for compatibility.
func (r *replicator) observeEpoch(resp *http.Response) error {
	h := resp.Header.Get(epochHeader)
	if h == "" {
		return nil
	}
	e, err := strconv.ParseUint(h, 10, 64)
	if err != nil || e == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e < r.seenEpoch {
		return fmt.Errorf("%w: response epoch %d < seen %d", ErrStaleEpoch, e, r.seenEpoch)
	}
	r.seenEpoch = e
	return nil
}

func (r *replicator) stats() ReplicationStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	lag := 0.0
	if !r.caughtUp {
		ref := r.lastCaughtUp
		if ref.IsZero() {
			ref = r.start
		}
		lag = time.Since(ref).Seconds()
	}
	return ReplicationStats{
		Leader:              r.leader,
		LagSeconds:          lag,
		BehindRecords:       r.behind,
		AppliedRecords:      r.applied,
		Bootstraps:          r.bootstraps,
		Rounds:              r.rounds,
		Errors:              r.errors,
		LastError:           r.lastErr,
		ConsecutiveFailures: r.failStreak,
		BackoffSeconds:      r.backoff.Seconds(),
		DigestChecks:        r.digestChecks,
		DigestMismatches:    r.digestMismatches,
		LeaderEpoch:         r.seenEpoch,
	}
}
