package service

// Crash-recovery suite. A "crash" here is abandoning a Server without
// Close: every acknowledged mutation was fsync'd to the WAL before its
// 200, so dropping the process loses nothing — exactly the kill -9
// contract the journal exists for (the CI smoke test kills a real
// process; these tests cover the same invariant in-process, under -race).

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// mutateN drives n accepted creates through POST /apply.
func mutateN(t *testing.T, h http.Handler, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		body := fmt.Sprintf(`{"op":"create","x":"a","name":"f%d","kind":"object","rights":"r,w"}`, i)
		req := httptest.NewRequest(http.MethodPost, "/apply", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("apply %d: %d %s", i, rec.Code, rec.Body.String())
		}
	}
}

// fingerprint captures everything recovery must reproduce: the stats
// dimensions (revision, generation, sizes, levels) and a decision verdict.
type fingerprint struct {
	revision, generation uint64
	vertices, edges      int
	levels               int
	canShare             bool
	graphText            string
}

func fingerprintOf(t *testing.T, srv *Server, h http.Handler) fingerprint {
	t.Helper()
	st := srv.Stats()
	var verdict map[string]bool
	req := httptest.NewRequest(http.MethodGet, "/query/can-share?right=r&x=a&y=f0", nil)
	if rec := serve(t, h, req, &verdict); rec.Code != http.StatusOK {
		t.Fatalf("can-share: %d %s", rec.Code, rec.Body.String())
	}
	rec := serve(t, h, httptest.NewRequest(http.MethodGet, "/graph", nil), nil)
	return fingerprint{
		revision:   st.Revision,
		generation: st.Generation,
		vertices:   st.Vertices,
		edges:      st.Edges,
		levels:     st.Levels,
		canShare:   verdict["can_share"],
		graphText:  rec.Body.String(),
	}
}

func attach(t *testing.T, cfg Config, dir string) (*Server, http.Handler) {
	t.Helper()
	srv := NewWith(cfg)
	if _, err := srv.AttachJournal(dir); err != nil {
		t.Fatalf("AttachJournal: %v", err)
	}
	return srv, srv.Handler()
}

func TestFaultCrashRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	srv1, h1 := attach(t, Config{}, dir)
	putGraph(t, h1, "subject a\n")
	mutateN(t, h1, 7)
	want := fingerprintOf(t, srv1, h1)
	// Crash: no Close, no snapshot — recovery is pure WAL replay.

	srv2, h2 := attach(t, Config{}, dir)
	got := fingerprintOf(t, srv2, h2)
	if got != want {
		t.Fatalf("recovered state diverged:\n got %+v\nwant %+v", got, want)
	}
	if !want.canShare {
		t.Error("fingerprint verdict should be true (a holds r to f0)")
	}
	if st := srv2.Stats(); st.Journal == nil || st.Journal.Recovered != 8 {
		t.Errorf("journal stats = %+v, want 8 recovered records (1 graph + 7 applies)", st.Journal)
	}
}

func TestFaultCrashRecoveryAcrossSnapshots(t *testing.T) {
	dir := t.TempDir()
	srv1, h1 := attach(t, Config{SnapshotEvery: 3}, dir)
	putGraph(t, h1, "subject a\n")
	mutateN(t, h1, 8) // 9 records at cadence 3: snapshots fire, WAL holds a tail
	want := fingerprintOf(t, srv1, h1)
	if srv1.Stats().Journal.Snapshots == 0 {
		t.Fatal("test premise broken: no snapshot was written")
	}

	srv2, h2 := attach(t, Config{SnapshotEvery: 3}, dir)
	got := fingerprintOf(t, srv2, h2)
	if got != want {
		t.Fatalf("snapshot+WAL recovery diverged:\n got %+v\nwant %+v", got, want)
	}
	// The snapshot absorbed most records: replay must be the tail only.
	if st := srv2.Stats(); st.Journal.Recovered >= 9 {
		t.Errorf("recovered %d records; the snapshot should have absorbed most", st.Journal.Recovered)
	}
}

func TestFaultCrashRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	srv1, h1 := attach(t, Config{}, dir)
	putGraph(t, h1, "subject a\n")
	mutateN(t, h1, 3)
	want := fingerprintOf(t, srv1, h1)

	// A crash mid-append leaves a partial frame after the acknowledged
	// records; it was never acknowledged, so recovery must drop it.
	walPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x42, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv2, h2 := attach(t, Config{}, dir)
	got := fingerprintOf(t, srv2, h2)
	if got != want {
		t.Fatalf("torn-tail recovery diverged:\n got %+v\nwant %+v", got, want)
	}
	if st := srv2.Stats(); st.Journal.TruncatedBytes != 3 {
		t.Errorf("TruncatedBytes = %d, want 3", st.Journal.TruncatedBytes)
	}
}

func TestFaultGracefulCloseSnapshotsEverything(t *testing.T) {
	dir := t.TempDir()
	srv1, h1 := attach(t, Config{}, dir)
	putGraph(t, h1, "subject a\n")
	mutateN(t, h1, 5)
	want := fingerprintOf(t, srv1, h1)
	if err := srv1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	srv2, h2 := attach(t, Config{}, dir)
	got := fingerprintOf(t, srv2, h2)
	if got != want {
		t.Fatalf("post-shutdown recovery diverged:\n got %+v\nwant %+v", got, want)
	}
	// A graceful shutdown snapshots, so the next start replays nothing.
	if st := srv2.Stats(); st.Journal.Recovered != 0 {
		t.Errorf("recovered %d records after graceful close, want 0", st.Journal.Recovered)
	}
}

func TestFaultJournalFailureDegradesNotDies(t *testing.T) {
	dir := t.TempDir()
	srv, h := attach(t, Config{}, dir)
	putGraph(t, h, "subject a\n")
	mutateN(t, h, 2)

	// Simulate the disk going away mid-flight: close the WAL fd under the
	// server. The next append fails, flipping degraded mode.
	srv.journal.j.Close()
	req := httptest.NewRequest(http.MethodPost, "/apply",
		strings.NewReader(`{"op":"create","x":"a","name":"g","kind":"object","rights":"r"}`))
	req.Header.Set("Content-Type", "application/json")
	var body errorBody
	rec := serve(t, h, req, &body)
	if rec.Code != http.StatusServiceUnavailable || body.Code != "degraded" {
		t.Fatalf("apply on dead journal: %d code=%q, want 503 degraded", rec.Code, body.Code)
	}
	// Further mutations stay refused; reads keep working.
	req = httptest.NewRequest(http.MethodPut, "/graph", strings.NewReader("subject z\n"))
	if rec := serve(t, h, req, nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("PUT /graph while degraded: %d, want 503", rec.Code)
	}
	var verdict map[string]bool
	req = httptest.NewRequest(http.MethodGet, "/query/can-share?right=r&x=a&y=f0", nil)
	if rec := serve(t, h, req, &verdict); rec.Code != http.StatusOK || !verdict["can_share"] {
		t.Errorf("read while degraded: %d %v, want 200 true", rec.Code, verdict)
	}
	if st := srv.Stats(); !st.Degraded {
		t.Error("/stats should report degraded")
	}
	rec = serve(t, h, httptest.NewRequest(http.MethodGet, "/metrics", nil), nil)
	if !strings.Contains(rec.Body.String(), "takegrant_degraded 1") {
		t.Error("/metrics missing takegrant_degraded 1")
	}
}

// TestFaultCrashRecoveryStress interleaves journaled mutations with
// concurrent budget-limited readers, crashes, recovers, and asserts the
// accepted prefix survived bit-for-bit. Run under -race.
func TestFaultCrashRecoveryStress(t *testing.T) {
	dir := t.TempDir()
	srv1, h1 := attach(t, Config{SnapshotEvery: 5}, dir)
	putGraph(t, h1, "subject a\n")

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest(http.MethodGet, "/query/can-know?x=a&y=a", nil)
				rec := httptest.NewRecorder()
				h1.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("reader: %d %s", rec.Code, rec.Body.String())
					return
				}
			}
		}()
	}
	mutateN(t, h1, 25)
	close(stop)
	readers.Wait()
	want := fingerprintOf(t, srv1, h1)
	// Crash without Close.

	srv2, h2 := attach(t, Config{SnapshotEvery: 5}, dir)
	got := fingerprintOf(t, srv2, h2)
	if got != want {
		t.Fatalf("stress recovery diverged:\n got %+v\nwant %+v", got, want)
	}
	if err := srv2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
