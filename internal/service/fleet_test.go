package service

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"takegrant/internal/fault"
	"takegrant/internal/health"
	"takegrant/internal/shard"
	"takegrant/internal/specimens"
)

// TestHealthzReadyz pins the two probes' contracts: /healthz is process
// liveness (always 200 while serving), /readyz is role-aware readiness
// that goes 503 with a named reason while catching up or degraded.
func TestHealthzReadyz(t *testing.T) {
	leader := New()
	if _, err := leader.AttachJournal(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	lh := leader.Handler()
	src, err := specimens.Source("fig61")
	if err != nil {
		t.Fatal(err)
	}
	if code := putGraphNS(t, lh, "", src); code != http.StatusOK {
		t.Fatalf("PUT /graph = %d", code)
	}

	var hz map[string]any
	if code := do(t, lh, http.MethodGet, "/healthz", "", &hz); code != http.StatusOK || hz["ok"] != true {
		t.Fatalf("leader /healthz = %d %v", code, hz)
	}
	var rz map[string]any
	if code := do(t, lh, http.MethodGet, "/readyz", "", &rz); code != http.StatusOK {
		t.Fatalf("leader /readyz = %d %v", code, rz)
	}
	if rz["role"] != "leader" || rz["ready"] != true {
		t.Fatalf("leader readyz report = %v", rz)
	}

	// A replica of a dead leader is alive but not ready: it never drew
	// level, so routing traffic to it would serve a stale void.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer dead.Close()
	orphan := New()
	if err := orphan.StartReplica(dead.URL, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer orphan.Close()
	oh := orphan.Handler()
	if code := do(t, oh, http.MethodGet, "/healthz", "", &hz); code != http.StatusOK {
		t.Fatalf("orphan /healthz = %d", code)
	}
	waitFor(t, "orphan to report itself unready", func() bool {
		var r map[string]any
		return do(t, oh, http.MethodGet, "/readyz", "", &r) == http.StatusServiceUnavailable
	})
	if code := do(t, oh, http.MethodGet, "/readyz", "", &rz); code != http.StatusServiceUnavailable {
		t.Fatalf("orphan /readyz = %d", code)
	}
	reasons := fmt.Sprint(rz["reasons"])
	if rz["role"] != "replica" || !strings.Contains(reasons, "catching_up") {
		t.Fatalf("orphan readyz report = %v", rz)
	}

	// A caught-up replica of a live leader is ready, in the replica role.
	ts := httptest.NewServer(lh)
	defer ts.Close()
	follower := New()
	if err := follower.StartReplica(ts.URL, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fh := follower.Handler()
	waitFor(t, "follower readyz", func() bool {
		var r map[string]any
		return do(t, fh, http.MethodGet, "/readyz", "", &r) == http.StatusOK
	})
	if code := do(t, fh, http.MethodGet, "/readyz", "", &rz); code != http.StatusOK ||
		rz["role"] != "replica" || rz["read_only"] != true {
		t.Fatalf("follower readyz = %d %v", code, rz)
	}

	// A torn append degrades the journal; readiness must say so while
	// liveness stays green — restart-the-process is the wrong remedy.
	fault.SetErr("journal:append-write", func() error { return fmt.Errorf("injected disk death") })
	code := do(t, lh, http.MethodPost, "/apply", `{"op":"create","x":"low","name":"doomed","kind":"object","rights":"r"}`, nil)
	fault.Clear("journal:append-write")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("apply with dead disk = %d, want 503", code)
	}
	if code := do(t, lh, http.MethodGet, "/healthz", "", &hz); code != http.StatusOK {
		t.Fatalf("degraded /healthz = %d, want 200 (still alive)", code)
	}
	if code := do(t, lh, http.MethodGet, "/readyz", "", &rz); code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /readyz = %d, want 503", code)
	}
	if !strings.Contains(fmt.Sprint(rz["reasons"]), "degraded_journal") {
		t.Fatalf("degraded readyz reasons = %v", rz["reasons"])
	}
}

// TestShardRoutingFailsOverDeadPeers pins the tentpole routing rule: the
// ring still names a dead peer as owner, but the router stops 307-ing
// into the corpse — reads divert to the standing replica, mutations get
// an honest 503 with Retry-After.
func TestShardRoutingFailsOverDeadPeers(t *testing.T) {
	srv := New()
	defer srv.Close()
	self := "http://self.test"
	peer := "http://peer.test"
	failover := "http://replica.test"

	// Find a namespace each of us owns, so both routing arms are exercised.
	ring := shard.New([]string{self, peer})
	ownedByPeer, ownedBySelf := "", ""
	for i := 0; i < 64 && (ownedByPeer == "" || ownedBySelf == ""); i++ {
		ns := fmt.Sprintf("tenant%d", i)
		if ring.Owner(ns) == peer {
			ownedByPeer = ns
		} else {
			ownedBySelf = ns
		}
	}
	if ownedByPeer == "" || ownedBySelf == "" {
		t.Fatal("ring never split ownership across two peers")
	}

	// A scripted prober: peerDown flips the probe verdict, threshold 1
	// makes a single failed round decisive.
	var peerDown atomic.Bool
	prober := health.New([]string{peer}, health.Options{
		Interval:      5 * time.Millisecond,
		FailThreshold: 1,
		Probe: func(ctx context.Context, p string) error {
			if peerDown.Load() {
				return fmt.Errorf("injected partition")
			}
			return nil
		},
	})
	prober.Start()
	defer prober.Stop()
	srv.SetHealthProber(prober)

	h, err := srv.ShardRedirect(self+","+peer, self, failover, srv.Handler())
	if err != nil {
		t.Fatal(err)
	}

	redirect := func(method, target string) (int, string, http.Header) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(method, target, nil)
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Header().Get("Location"), rec.Header()
	}

	// Healthy peer: plain 307 to the owner, method preserved by the code.
	code, loc, _ := redirect(http.MethodGet, "/levels?ns="+ownedByPeer)
	if code != http.StatusTemporaryRedirect || !strings.HasPrefix(loc, peer) {
		t.Fatalf("healthy redirect = %d -> %q, want 307 -> %s...", code, loc, peer)
	}

	peerDown.Store(true)
	waitFor(t, "prober to mark peer down", func() bool { return !prober.Healthy(peer) })

	// Reads fail over to the replica serving every namespace.
	code, loc, _ = redirect(http.MethodGet, "/levels?ns="+ownedByPeer)
	if code != http.StatusTemporaryRedirect || !strings.HasPrefix(loc, failover) {
		t.Fatalf("failover read = %d -> %q, want 307 -> %s...", code, loc, failover)
	}

	// Mutations cannot go anywhere else without splitting the brain.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/apply?ns="+ownedByPeer, strings.NewReader(`{}`))
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("mutation for dead owner = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 peer_down without Retry-After")
	}
	if !strings.Contains(rec.Body.String(), "peer_down") {
		t.Fatalf("503 body = %s, want peer_down code", rec.Body.String())
	}

	// Locally owned namespaces are served regardless of the peer's health.
	code, _, _ = redirect(http.MethodGet, "/stats")
	if code != http.StatusOK {
		t.Fatalf("local /stats while peer down = %d", code)
	}

	st := srv.Stats()
	if st.Fleet.FailoverReads == 0 || st.Fleet.PeerUnavailable == 0 {
		t.Fatalf("fleet counters did not move: %+v", st.Fleet)
	}
	if ps, ok := st.Peers[peer]; !ok || ps.Up {
		t.Fatalf("stats peers = %+v, want %s down", st.Peers, peer)
	}

	// Recovery: the peer comes back, one good probe restores routing.
	peerDown.Store(false)
	waitFor(t, "prober to mark peer up", func() bool { return prober.Healthy(peer) })
	code, loc, _ = redirect(http.MethodGet, "/levels?ns="+ownedByPeer)
	if code != http.StatusTemporaryRedirect || !strings.HasPrefix(loc, peer) {
		t.Fatalf("post-recovery redirect = %d -> %q, want 307 -> %s...", code, loc, peer)
	}
}

// TestPollBackoff pins the backoff curve: base cadence while healthy,
// exponential growth with bounded jitter once failing, a hard 30s cap,
// and never below base.
func TestPollBackoff(t *testing.T) {
	base := time.Second
	if got := pollBackoff(base, 0, 0.5); got != base {
		t.Fatalf("fails=0 = %v, want base", got)
	}
	// jitter=0.5 lands exactly on the midpoint: base·2^(fails-1).
	for fails, want := 1, base; fails <= 5; fails++ {
		if got := pollBackoff(base, fails, 0.5); got != want {
			t.Fatalf("fails=%d jitter=0.5 = %v, want %v", fails, got, want)
		}
		want *= 2
	}
	// Jitter bounds: [0.5·b, 1.5·b) around the midpoint.
	if got := pollBackoff(base, 3, 0); got != 2*time.Second {
		t.Fatalf("fails=3 jitter=0 = %v, want 2s (half of 4s midpoint)", got)
	}
	if got := pollBackoff(base, 3, 0.999); got < 4*time.Second || got >= 6*time.Second {
		t.Fatalf("fails=3 jitter=0.999 = %v, want just under 6s", got)
	}
	// The cap holds even for absurd failure counts (and must not overflow).
	for _, fails := range []int{10, 40, 1000} {
		if got := pollBackoff(base, fails, 0.999); got > maxPollBackoff {
			t.Fatalf("fails=%d = %v, exceeds cap", fails, got)
		}
	}
	// Never below base, whatever the jitter draw.
	if got := pollBackoff(base, 1, 0); got < base {
		t.Fatalf("fails=1 jitter=0 = %v, below base", got)
	}
}

// TestReplicaSyncsPastFailingNamespace is the satellite-1 regression
// test: one namespace's sync failure must not starve the others in the
// same poll round. The old code aborted the round at the first error.
func TestReplicaSyncsPastFailingNamespace(t *testing.T) {
	leader := New()
	if _, err := leader.AttachJournal(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	lh := leader.Handler()
	ts := httptest.NewServer(lh)
	defer ts.Close()
	src, err := specimens.Source("fig61")
	if err != nil {
		t.Fatal(err)
	}
	// Two namespaces; "default" sorts before "tenant1", so the injected
	// default failure would have shadowed tenant1 under first-error-aborts.
	if code := putGraphNS(t, lh, "", src); code != http.StatusOK {
		t.Fatalf("PUT default = %d", code)
	}
	if code := putGraphNS(t, lh, "tenant1", src); code != http.StatusOK {
		t.Fatalf("PUT tenant1 = %d", code)
	}

	follower := New()
	if err := follower.StartReplica(ts.URL, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	rev := leader.Stats().Revision
	waitFor(t, "initial catch-up", func() bool { return follower.Stats().Revision == rev })

	// Partition the default namespace's sync only.
	fault.SetErr("repl:sync:default", func() error { return fmt.Errorf("injected partition") })
	defer fault.Clear("repl:sync:default")

	// Advance both namespaces on the leader.
	if code := do(t, lh, http.MethodPost, "/apply?ns=tenant1", `{"op":"create","x":"low","name":"t1_new","kind":"object","rights":"r"}`, nil); code != http.StatusOK {
		t.Fatalf("apply tenant1 = %d", code)
	}
	if code := do(t, lh, http.MethodPost, "/apply", `{"op":"create","x":"low","name":"d_new","kind":"object","rights":"r"}`, nil); code != http.StatusOK {
		t.Fatalf("apply default = %d", code)
	}
	t1rev := leader.Stats().Namespaces["tenant1"].Revision

	// tenant1 keeps flowing while default is partitioned, and the round's
	// error names the namespace that failed.
	waitFor(t, "tenant1 to advance past the default partition", func() bool {
		st := follower.Stats()
		ns, ok := st.Namespaces["tenant1"]
		return ok && ns.Revision == t1rev
	})
	waitFor(t, "round error to name the failing namespace", func() bool {
		st := follower.Stats()
		return st.Replication != nil && strings.Contains(st.Replication.LastError, `"default"`)
	})
	if got := follower.Stats().Namespaces["default"].Revision; got == leader.Stats().Namespaces["default"].Revision {
		t.Fatal("default advanced through an injected partition")
	}
	// A partially failing round must not back off the poll loop: the
	// healthy namespaces are still being served on cadence.
	if st := follower.Stats(); st.Replication.ConsecutiveFailures != 0 {
		t.Fatalf("partial failure counted as a failed round: %+v", st.Replication)
	}

	// Heal the partition: default converges too.
	fault.Clear("repl:sync:default")
	drev := leader.Stats().Namespaces["default"].Revision
	waitFor(t, "default to converge after heal", func() bool {
		ns, ok := follower.Stats().Namespaces["default"]
		return ok && ns.Revision == drev
	})
}
