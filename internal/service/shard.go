package service

import (
	"fmt"
	"log/slog"
	"net/http"
	"strings"

	"takegrant/internal/obs"
	"takegrant/internal/shard"
)

// localShardPath reports whether a path must always answer on the node
// that received it: process-level observability (/stats, /metrics,
// /debug/*), health and admin endpoints, and the replication feed are
// per-node, not per-namespace.
func localShardPath(path string) bool {
	return path == "/stats" || path == "/metrics" ||
		path == "/healthz" || path == "/readyz" ||
		strings.HasPrefix(path, "/admin/") ||
		strings.HasPrefix(path, "/debug/") ||
		strings.HasPrefix(path, "/replication/")
}

// ShardRedirect spreads namespaces across a peer fleet: requests for a
// namespace the consistent-hash ring assigns to another peer are
// answered with 307 to that peer (method and body preserved), so any
// node can be a client's entry point. peerList is the comma-separated
// base URLs of every node, advertise this node's own entry in it. With
// an empty peerList the handler is next unchanged.
//
// When a health prober is installed (SetHealthProber) the router stops
// redirecting into a peer it believes is down: reads (GET/HEAD) fail
// over with a 307 to readFailover — a configured replica serving every
// namespace — and everything else is refused with 503 peer_down and a
// Retry-After, an answer a client can act on instead of a hung
// connection to a corpse.
//
// The redirect hop is part of the query's trace: the hop adopts the
// client's traceparent (Go's http.Client re-sends request headers when
// following a 307, so the same header reaches the owner), meaning the
// redirecting node's log line and flight event carry the same trace ID
// the owner finally serves under.
func (s *Server) ShardRedirect(peerList, advertise, readFailover string, next http.Handler) (http.Handler, error) {
	if peerList == "" {
		return next, nil
	}
	var peers []string
	for _, p := range strings.Split(peerList, ",") {
		if p = strings.TrimSpace(strings.TrimRight(p, "/")); p != "" {
			peers = append(peers, p)
		}
	}
	ring := shard.New(peers)
	advertise = strings.TrimRight(advertise, "/")
	readFailover = strings.TrimRight(readFailover, "/")
	owned := false
	for _, p := range peers {
		owned = owned || p == advertise
	}
	if !owned {
		return nil, fmt.Errorf("advertise %s is not in peers %s", advertise, peerList)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if localShardPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		ns := r.URL.Query().Get("ns")
		if ns == "" {
			ns = DefaultNamespace
		}
		owner := ring.Owner(ns)
		if owner == advertise {
			next.ServeHTTP(w, r)
			return
		}
		// The hop is observable under the query's own trace: adopt the
		// client's context exactly as instrument would, echo it, and log
		// the redirect — when the client follows the 307 its traceparent
		// reaches the owner, which joins the same trace.
		p := requestTrace(r.URL.Path, r)
		w.Header().Set("X-Trace-Id", p.TraceID)
		w.Header().Set("traceparent", p.Context().Traceparent())
		if s.prober != nil && !s.prober.Healthy(owner) {
			isRead := r.Method == http.MethodGet || r.Method == http.MethodHead
			if isRead && readFailover != "" && readFailover != owner {
				// The owner is down but its state is readable elsewhere: a
				// replica tailing the whole fleet serves every namespace.
				s.fleet.failoverReads.Add(1)
				s.logger.LogAttrs(r.Context(), slog.LevelWarn, "shard_failover",
					slog.String("trace_id", p.TraceID),
					slog.String("ns", ns),
					slog.String("route", r.URL.Path),
					slog.String("owner", owner),
					slog.String("failover", readFailover),
				)
				s.flight.Record(obs.FlightEvent{
					Kind: "redirect", Trace: p.TraceID, NS: ns, Route: r.URL.Path,
					Code: http.StatusTemporaryRedirect, Detail: "owner " + owner + " down, read failover " + readFailover,
				})
				http.Redirect(w, r, readFailover+r.URL.RequestURI(), http.StatusTemporaryRedirect)
				return
			}
			// A mutation for a dead owner cannot be served anywhere else
			// without splitting the brain: tell the client when to retry
			// instead of letting it discover the corpse by timeout.
			s.fleet.peerUnavailable.Add(1)
			s.logger.LogAttrs(r.Context(), slog.LevelWarn, "shard_peer_down",
				slog.String("trace_id", p.TraceID),
				slog.String("ns", ns),
				slog.String("route", r.URL.Path),
				slog.String("owner", owner),
			)
			s.flight.Record(obs.FlightEvent{
				Kind: "redirect", Trace: p.TraceID, NS: ns, Route: r.URL.Path,
				Code: http.StatusServiceUnavailable, Detail: "owner " + owner + " down",
			})
			w.Header().Set("Retry-After", "1")
			writeErrCode(w, http.StatusServiceUnavailable, "peer_down",
				fmt.Errorf("namespace %q is owned by %s, which is not responding to health probes", ns, owner))
			return
		}
		s.logger.LogAttrs(r.Context(), slog.LevelInfo, "shard_redirect",
			slog.String("trace_id", p.TraceID),
			slog.String("ns", ns),
			slog.String("route", r.URL.Path),
			slog.String("owner", owner),
		)
		s.flight.Record(obs.FlightEvent{
			Kind: "redirect", Trace: p.TraceID, NS: ns, Route: r.URL.Path,
			Code: http.StatusTemporaryRedirect, Detail: "owner " + owner,
		})
		// 307 keeps the method and body: a redirected PUT stays a PUT.
		http.Redirect(w, r, owner+r.URL.RequestURI(), http.StatusTemporaryRedirect)
	}), nil
}
