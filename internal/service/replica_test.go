package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"takegrant/internal/specimens"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestReplicaFollowsLeader is WAL shipping end to end, in process: a
// journaled leader, a follower polling it, mutations in two namespaces.
// The follower must converge to the leader's exact revisions, answer
// queries with identical verdicts, refuse mutations with 503 read_only,
// and report zero lag once level.
func TestReplicaFollowsLeader(t *testing.T) {
	leader := New()
	if _, err := leader.AttachJournal(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	lh := leader.Handler()
	ts := httptest.NewServer(lh)
	defer ts.Close()

	military, err := specimens.Source("military")
	if err != nil {
		t.Fatal(err)
	}
	fig61, err := specimens.Source("fig61")
	if err != nil {
		t.Fatal(err)
	}
	if code := putGraphNS(t, lh, "", military); code != http.StatusOK {
		t.Fatalf("leader load = %d", code)
	}
	if code := putGraphNS(t, lh, "tenant1", fig61); code != http.StatusOK {
		t.Fatalf("leader load tenant1 = %d", code)
	}
	for i := 0; i < 5; i++ {
		body := fmt.Sprintf(`{"op":"create","x":"a1","name":"pre_%d","kind":"object","rights":"r,w"}`, i)
		if code := do(t, lh, http.MethodPost, "/apply", body, nil); code != http.StatusOK {
			t.Fatalf("leader create %d = %d", i, code)
		}
	}

	follower := New()
	if err := follower.StartReplica(ts.URL, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fh := follower.Handler()

	leaderRev := leader.Stats().Revision
	waitFor(t, "follower catch-up", func() bool {
		st := follower.Stats()
		return st.Revision == leaderRev &&
			st.Namespaces["tenant1"].Revision == leader.Stats().Namespaces["tenant1"].Revision
	})

	// More traffic AFTER the follower attached: the tail-shipping path,
	// not just bootstrap.
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{"op":"create","x":"a1","name":"post_%d","kind":"object","rights":"r,w"}`, i)
		if code := do(t, lh, http.MethodPost, "/apply", body, nil); code != http.StatusOK {
			t.Fatalf("leader post-create %d = %d", i, code)
		}
	}
	leaderSt := leader.Stats()
	waitFor(t, "follower tail", func() bool {
		st := follower.Stats()
		return st.Revision == leaderSt.Revision && st.Vertices == leaderSt.Vertices
	})

	// Verdict-identical reads in both namespaces, through the same routes.
	for _, q := range []string{
		"/query/can-know?x=a1&y=bbb1",
		"/secure",
		"/query/can-share?right=r&x=low&y=secret&ns=tenant1",
		"/secure?ns=tenant1",
		"/levels",
	} {
		lRec, fRec := httptest.NewRecorder(), httptest.NewRecorder()
		lh.ServeHTTP(lRec, httptest.NewRequest(http.MethodGet, q, nil))
		fh.ServeHTTP(fRec, httptest.NewRequest(http.MethodGet, q, nil))
		if lRec.Code != http.StatusOK {
			t.Errorf("leader %s = %d", q, lRec.Code)
		}
		if lRec.Body.String() != fRec.Body.String() || lRec.Code != fRec.Code {
			t.Errorf("%s diverges:\nleader   %d %q\nfollower %d %q",
				q, lRec.Code, lRec.Body.String(), fRec.Code, fRec.Body.String())
		}
	}

	// The follower's graph text is byte-identical — replay, not copy,
	// produced it.
	for _, q := range []string{"/graph", "/graph?ns=tenant1"} {
		lRec, fRec := httptest.NewRecorder(), httptest.NewRecorder()
		lh.ServeHTTP(lRec, httptest.NewRequest(http.MethodGet, q, nil))
		fh.ServeHTTP(fRec, httptest.NewRequest(http.MethodGet, q, nil))
		if lRec.Body.String() != fRec.Body.String() {
			t.Errorf("GET %s text diverges", q)
		}
	}

	// Mutations on the follower: 503 read_only, and nothing changed.
	var eb map[string]any
	if code := do(t, fh, http.MethodPost, "/apply", `{"op":"create","x":"a1","name":"nope","rights":"r"}`, &eb); code != http.StatusServiceUnavailable {
		t.Errorf("follower POST /apply = %d, want 503", code)
	} else if eb["code"] != "read_only" {
		t.Errorf("follower refusal code = %v", eb["code"])
	}
	if code := putGraphNS(t, fh, "newns", fig61); code != http.StatusServiceUnavailable {
		t.Errorf("follower PUT /graph?ns=newns = %d, want 503", code)
	}

	// Lag accounting: caught up ⇒ 0.
	waitFor(t, "zero lag", func() bool {
		st := follower.Stats()
		return st.Replication != nil && st.Replication.LagSeconds == 0 && st.Replication.BehindRecords == 0
	})
	if st := follower.Stats(); !st.ReadOnly || st.Replication.AppliedRecords == 0 {
		t.Errorf("follower stats: read_only=%v applied=%d", st.ReadOnly, st.Replication.AppliedRecords)
	}
}

// TestReplicaBootstrapsPastCompactedWAL starts the follower only after
// the leader's WAL has been compacted by snapshots: Follow must answer
// snapshot_needed and the follower must bootstrap from the snapshot cut,
// then tail normally.
func TestReplicaBootstrapsPastCompactedWAL(t *testing.T) {
	// SnapshotEvery 2: the WAL resets constantly, so a fresh follower's
	// cursor (0) always predates the oldest retained frame.
	leader := NewWith(Config{SnapshotEvery: 2})
	if _, err := leader.AttachJournal(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	lh := leader.Handler()
	ts := httptest.NewServer(lh)
	defer ts.Close()

	src, err := specimens.Source("fig61")
	if err != nil {
		t.Fatal(err)
	}
	if code := putGraphNS(t, lh, "", src); code != http.StatusOK {
		t.Fatalf("leader load = %d", code)
	}
	for i := 0; i < 7; i++ {
		body := fmt.Sprintf(`{"op":"create","x":"low","name":"c_%d","kind":"object","rights":"r"}`, i)
		if code := do(t, lh, http.MethodPost, "/apply", body, nil); code != http.StatusOK {
			t.Fatalf("leader create %d = %d", i, code)
		}
	}

	follower := New()
	if err := follower.StartReplica(ts.URL, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	leaderSt := leader.Stats()
	waitFor(t, "bootstrap convergence", func() bool {
		st := follower.Stats()
		return st.Revision == leaderSt.Revision && st.Generation == leaderSt.Generation &&
			st.Vertices == leaderSt.Vertices
	})
	if st := follower.Stats(); st.Replication.Bootstraps == 0 {
		t.Errorf("expected a snapshot bootstrap, got %+v", st.Replication)
	}

	// After bootstrap the generation counters line up, so cache keys and
	// /stats agree with the leader from here on.
	for i := 0; i < 2; i++ {
		body := fmt.Sprintf(`{"op":"create","x":"low","name":"tail_%d","kind":"object","rights":"r"}`, i)
		if code := do(t, lh, http.MethodPost, "/apply", body, nil); code != http.StatusOK {
			t.Fatalf("leader tail create = %d", code)
		}
	}
	leaderSt = leader.Stats()
	waitFor(t, "post-bootstrap tail", func() bool {
		st := follower.Stats()
		return st.Revision == leaderSt.Revision && st.Vertices == leaderSt.Vertices
	})
}

// TestReplicaRefusesOwnJournal pins the exclusivity contract.
func TestReplicaRefusesOwnJournal(t *testing.T) {
	srv := New()
	if _, err := srv.AttachJournal(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.StartReplica("http://localhost:1", time.Second); err == nil {
		t.Fatal("StartReplica accepted a server that owns a journal")
	}
	if err := New().StartReplica("not-a-url", time.Second); err == nil {
		t.Fatal("StartReplica accepted a bare host without scheme")
	}
}
