package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// mediatedDoc is a three-subject world where m can grant read rights
// between p and q in either direction. p and q start with no flows at
// all, so their rw-levels are incomparable and either grant passes the
// combined restriction — but whichever grant lands FIRST orders the
// levels, and the reverse grant then completes a read-up.
const mediatedDoc = `
subject p
subject q
subject m
edge m p r,g
edge m q r,g
`

func postApply(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/apply", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestGuardRearmsAfterApply is the stale-hierarchy regression test: a
// successful POST /apply changes the rw-level structure, and the guard's
// NEXT verdict must be judged against the post-mutation levels. Before the
// fix the server kept enforcing the hierarchy computed at install time, so
// the second grant below — a read-up under the live levels — sailed
// through.
func TestGuardRearmsAfterApply(t *testing.T) {
	ts := newTestServer(t)
	resp := put(t, ts, "/graph", mediatedDoc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// At install time p and q are incomparable: granting p read over q is
	// permitted and makes p strictly higher than q.
	resp = postApply(t, ts, `{"op":"grant","x":"m","y":"p","z":"q","rights":"r"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first grant = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	// Under the live hierarchy q is now lower than p, so granting q read
	// over p completes a read-up (restriction a) and must be refused. The
	// install-time hierarchy still thinks them incomparable and would
	// allow it.
	resp = postApply(t, ts, `{"op":"grant","x":"m","y":"q","z":"p","rights":"r"}`)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("reverse grant = %d, want 403: guard is judging stale rw-levels", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestLevelsAuditConsistentAfterApply checks that /levels reports the
// re-derived structure after a mutation (not the install-time one, and not
// an ad-hoc fresh analysis diverging from what the guard uses) and that
// /audit stays clean — the guard never admitted an edge the live levels
// forbid.
func TestLevelsAuditConsistentAfterApply(t *testing.T) {
	ts := newTestServer(t)
	resp := put(t, ts, "/graph", mediatedDoc)
	resp.Body.Close()

	before := readAll(t, get(t, ts, "/levels"))

	resp = postApply(t, ts, `{"op":"grant","x":"m","y":"p","z":"q","rights":"r"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grant = %d", resp.StatusCode)
	}
	resp.Body.Close()

	after := readAll(t, get(t, ts, "/levels"))
	if before == after {
		t.Errorf("/levels unchanged after a level-changing apply:\n%s", after)
	}

	var audit map[string]any
	decode(t, get(t, ts, "/audit"), &audit)
	if !audit["clean"].(bool) {
		t.Errorf("audit dirty after guarded applies: %v", audit["violations"])
	}

	// The refused reverse grant leaves no trace on the graph: still clean,
	// levels unchanged.
	resp = postApply(t, ts, `{"op":"grant","x":"m","y":"q","z":"p","rights":"r"}`)
	resp.Body.Close()
	if got := readAll(t, get(t, ts, "/levels")); got != after {
		t.Error("/levels moved on a refused application")
	}
}

// TestCacheInvalidatesOnApply checks revision-keyed invalidation end to
// end: a query cached before a mutation must be recomputed against the
// mutated graph, never served stale.
func TestCacheInvalidatesOnApply(t *testing.T) {
	ts := newTestServer(t)
	resp := put(t, ts, "/graph", mediatedDoc)
	resp.Body.Close()

	// can•know•f depends only on the edges present right now, so its
	// answer flips when the grant lands — exactly what a stale cache
	// would miss.
	var body map[string]bool
	decode(t, get(t, ts, "/query/can-know?x=p&y=q&defacto=1"), &body)
	if body["can_know_f"] {
		t.Fatal("p should have no de facto path to q before the grant")
	}
	// Ask twice so the pre-mutation answer is definitely in the cache.
	decode(t, get(t, ts, "/query/can-know?x=p&y=q&defacto=1"), &body)

	resp = postApply(t, ts, `{"op":"grant","x":"m","y":"p","z":"q","rights":"r"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grant = %d", resp.StatusCode)
	}
	resp.Body.Close()

	decode(t, get(t, ts, "/query/can-know?x=p&y=q&defacto=1"), &body)
	if !body["can_know_f"] {
		t.Error("stale can_know_f served after mutation: cache not revision-keyed")
	}
}

func get(t *testing.T, ts *httptest.Server, path string) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestLogSurvivesRearm checks the decision trail is not reset when the
// hierarchy is re-derived after each apply.
func TestLogSurvivesRearm(t *testing.T) {
	ts := newTestServer(t)
	resp := put(t, ts, "/graph", mediatedDoc)
	resp.Body.Close()
	postApply(t, ts, `{"op":"grant","x":"m","y":"p","z":"q","rights":"r"}`).Body.Close()
	postApply(t, ts, `{"op":"grant","x":"m","y":"q","z":"p","rights":"r"}`).Body.Close()
	logText := readAll(t, get(t, ts, "/log"))
	if !strings.Contains(logText, "allow") || !strings.Contains(logText, "refuse") {
		t.Errorf("decision trail lost across re-arms:\n%s", logText)
	}
	var st struct {
		Guard struct {
			Applied int `json:"applied"`
			Refused int `json:"refused"`
		} `json:"guard"`
	}
	raw := readAll(t, get(t, ts, "/stats"))
	if err := json.Unmarshal([]byte(raw), &st); err != nil {
		t.Fatal(err)
	}
	if st.Guard.Applied != 1 || st.Guard.Refused != 1 {
		t.Errorf("guard counters = %+v", st.Guard)
	}
}
