// Package service exposes a guarded hierarchical Take-Grant protection
// system over HTTP — the shape a deployment embeds: one process owns the
// protection state, every mutation passes the combined restriction, and
// clients query the decision procedures by vertex name.
//
// Routes (all JSON unless noted):
//
//	PUT  /graph                     load a .tg document (text/plain body, ≤ 1 MB)
//	GET  /graph                     canonical .tg text
//	GET  /graph.json                JSON interchange form
//	GET  /render                    terminal rendering (text)
//	POST /apply                     guarded rule application
//	GET  /query/can-share?right=&x=&y=
//	GET  /query/can-know?x=&y=      (&defacto=1 for can•know•f)
//	GET  /query/can-steal?right=&x=&y=
//	GET  /explain/share?right=&x=&y=  traced derivation (text)
//	GET  /levels                    Hasse diagram (text)
//	GET  /islands
//	GET  /secure
//	GET  /audit
//	GET  /profile?x=
//	GET  /log                       guarded decision trail (text)
//	GET  /stats                     cache/guard/route observability (JSON)
//	GET  /metrics                   the same counters as Prometheus text exposition
//	GET  /healthz                   liveness (200 while the process serves)
//	GET  /readyz                    readiness: 503 while degraded or catching up
//	POST /admin/promote             promote a caught-up follower to leader
//	GET  /replication/namespaces    WAL-shipping: journaled namespaces (leader)
//	GET  /replication/snapshot?ns=  WAL-shipping: bootstrap state (leader)
//	GET  /replication/wal?ns=&after=  WAL-shipping: frame tail (leader)
//	GET  /replication/digest?ns=    anti-entropy: revision + canonical graph hash
//
// # Namespaces
//
// Every graph-addressing route takes an optional ?ns=<name> parameter
// selecting a namespace: an independent protection system with its own
// graph, revision and generation counters, hierarchy engine, guard,
// query cache and journal directory. An absent ?ns= addresses the
// default namespace, preserving every pre-namespace route. PUT /graph
// into a new name creates the namespace; other routes answer 404
// namespace_not_found for names that do not exist. Namespaces share
// nothing but the process — the isolation the paper's hierarchical
// model assumes when one monitor governs many protection structures.
//
// # Replication
//
// A server with a data directory is a leader: its per-namespace WALs
// double as a replication transport, served at /replication/*. A server
// started as a replica (StartReplica / tgserve -replica-of) polls a
// leader, replays shipped records through the exact same install and
// guard.Apply path the leader ran, serves every read route, and answers
// mutations with 503 read_only. Followers are eventually consistent;
// GET /stats exposes revision tokens (per-namespace revision and
// applied_seq) so clients needing read-your-writes can wait for a
// follower to reach the revision their write returned.
//
// # Observability
//
// Every response carries an X-Trace-Id header; the same ID appears in the
// structured (slog) request line and in any mutation line the request
// produced, so a verdict can be correlated with its log trail. Handlers
// carry an obs.Probe in the request context: the decision procedures
// record per-phase spans (spanners, bridge/link closure, witness
// synthesis) with visit counts onto it, and the server folds finished
// probes into per-(route, phase) aggregates served at GET /metrics
// alongside route latencies, query-cache and guard counters.
//
// # Locking discipline
//
// Each namespace splits traffic across its own sync.RWMutex. Mutations —
// PUT /graph and POST /apply — hold the write lock: they rewrite the
// graph and then re-derive the rw-level structure (hierarchy.AnalyzeRW)
// so the §5 guard, /levels and /audit always judge against the live
// hierarchy, never the one computed at install time (Theorem 5.4
// soundness is per-application; enforcing yesterday's levels is
// unsound). Queries hold the read lock and run concurrently: every
// decision procedure only reads the graph (witness synthesis and tracing
// work on clones), so any number of readers may proceed at once — and
// traffic in one namespace never contends with another's locks.
//
// # Revision-keyed caching
//
// Read queries are memoized in a per-namespace qcache.Cache keyed by
// (generation, revision, procedure, params). graph.Graph bumps its
// revision on every successful mutation, so cache entries are never
// invalidated explicitly — a mutation simply moves the revision and
// subsequent queries miss onto fresh computations, while repeated
// queries at an unchanged revision are served from the cache. The
// generation counter increments when PUT /graph swaps in a whole new
// graph, keeping revision counters from distinct graphs apart. GET
// /stats reports hit/miss/eviction counters, per-route request counts
// and latency quantiles, the current revision, and graph size.
package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"takegrant/internal/analysis"
	"takegrant/internal/budget"
	"takegrant/internal/derived"
	"takegrant/internal/fault"
	"takegrant/internal/graph"
	"takegrant/internal/health"
	"takegrant/internal/hierarchy"
	"takegrant/internal/obs"
	"takegrant/internal/qcache"
	"takegrant/internal/restrict"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
	"takegrant/internal/steal"
	"takegrant/internal/tgio"
)

// maxGraphBytes bounds a text PUT /graph body; larger documents are
// rejected with 413 rather than silently truncated. Binary (.tgb) bodies
// get maxBinaryGraphBytes — the compact encoding exists precisely so
// million-vertex worlds fit through this route.
const (
	maxGraphBytes       = 1 << 20
	maxBinaryGraphBytes = 1 << 30
)

// Config bounds the server's resource use. The zero value means
// unlimited everywhere — the pre-hardening behaviour.
type Config struct {
	// QueryTimeout is the per-query work-budget deadline for the decision
	// procedures; 0 means no deadline.
	QueryTimeout time.Duration
	// MaxVisited caps the product states one query may visit; 0 means
	// unlimited.
	MaxVisited int64
	// MaxInFlight bounds concurrently executing heavy queries (the
	// decision-procedure routes); excess requests are shed with 429.
	// 0 means unlimited.
	MaxInFlight int
	// SnapshotEvery is how many journaled mutations accumulate in the WAL
	// before the server writes a snapshot; 0 means DefaultSnapshotEvery.
	// Irrelevant without an attached journal.
	SnapshotEvery int
	// BatchWorkers bounds the worker pool one POST /query/batch request fans
	// its items across; 0 means GOMAXPROCS.
	BatchWorkers int
	// HierarchyWorkers bounds the worker pool the hierarchy engine fans
	// derivation (closure sweeps, reachability rows, §5 sweeps) across;
	// 0 means GOMAXPROCS.
	HierarchyWorkers int
	// FlightSize is the flight recorder's ring capacity (recent
	// structured events, served at GET /debug/flight and dumped to
	// stderr on panic). 0 means DefaultFlightSize; negative disables the
	// recorder.
	FlightSize int
	// PromoteDataDir is the journal directory POST /admin/promote opens
	// when the request body does not name one (tgserve -promote-data).
	// Promotion without any data directory is refused: a leader must be
	// durable.
	PromoteDataDir string
}

// DefaultFlightSize is the flight-recorder ring capacity when
// Config.FlightSize is zero.
const DefaultFlightSize = 256

// DefaultSnapshotEvery is the snapshot cadence when Config.SnapshotEvery
// is zero: recovery replays at most this many WAL records.
const DefaultSnapshotEvery = 256

// faultCounters tracks the server's degradation events; all atomic so the
// panic-recovery path never touches namespace locks.
type faultCounters struct {
	// panics counts handler panics caught by the recovery middleware.
	panics atomic.Uint64
	// shed counts heavy queries refused with 429 by the semaphore.
	shed atomic.Uint64
	// budgetExhausted counts queries aborted with 503 by their work budget.
	budgetExhausted atomic.Uint64
}

// fastPathCounters tracks which compute path answered an uncached decision
// query: a warm closure row (the O(1)-amortized bit-test) or the budgeted
// from-scratch search that builds the rows. qcache hits never reach either.
type fastPathCounters struct {
	closure atomic.Uint64
	search  atomic.Uint64
}

// note counts one uncached verdict against its compute path.
func (f *fastPathCounters) note(warm bool) {
	if warm {
		f.closure.Add(1)
	} else {
		f.search.Add(1)
	}
}

// fleetCounters tracks the resilience layer's events: routing decisions
// taken on a down peer, fencing refusals, scrubber verdicts.
type fleetCounters struct {
	// failoverReads counts reads 307'd to the failover replica because the
	// owning peer was down.
	failoverReads atomic.Uint64
	// peerUnavailable counts requests answered 503 peer_down (mutations,
	// or reads with no failover configured).
	peerUnavailable atomic.Uint64
	// staleEpoch counts /replication/* requests refused with 409
	// stale_epoch — a fenced old leader knocking.
	staleEpoch atomic.Uint64
	// scrubRounds / scrubMismatches count anti-entropy scrubber passes and
	// the index-vs-oracle divergences they found (which must stay 0).
	scrubRounds     atomic.Uint64
	scrubMismatches atomic.Uint64
}

// Server owns a set of protection systems — one namespace each. The
// embedded namespace is the default one: its fields promote, so code
// (and tests) that predate namespaces keep addressing the default
// protection system as s.g, s.mu, s.journal and so on.
type Server struct {
	*namespace // the default namespace

	// nsMu guards the namespace map itself; each namespace carries its
	// own state lock.
	nsMu   sync.RWMutex
	spaces map[string]*namespace
	// dataDir, when non-empty, roots the journal layout: the default
	// namespace journals at dataDir itself (the pre-namespace layout),
	// named ones under dataDir/ns/<name>.
	dataDir string
	// readOnly marks a replica: every mutation route answers 503
	// read_only. Set by StartReplica; cleared by Promote — both can race
	// with live handlers, hence atomic.
	readOnly atomic.Bool
	// repl is the replication client on a follower; nil on a leader.
	// Atomic because Promote swaps it to nil under traffic.
	repl atomic.Pointer[replicator]
	// epoch is this node's leader epoch: 1 on a fresh leader, bumped past
	// every epoch seen when a follower is promoted, persisted in snapshot
	// headers and WAL frames, echoed on every /replication/* response.
	// Fencing: a resurrected old leader serves a smaller epoch and is
	// refused (ErrStaleEpoch client-side, 409 stale_epoch server-side).
	epoch atomic.Uint64
	// promoteMu serializes Promote calls.
	promoteMu sync.Mutex
	// prober, when installed, feeds liveness into ShardRedirect; read-only
	// after SetHealthProber.
	prober *health.Prober
	// scrub is the anti-entropy scrubber's stop hook; nil until
	// StartScrubber.
	scrub *scrubber
	fleet fleetCounters

	metrics *metrics
	// phases aggregates the decision procedures' per-phase spans across
	// all requests; exposed at GET /metrics. It has its own
	// synchronization.
	phases obs.PhaseAgg
	// logger receives one structured line per request and per mutation,
	// each carrying the request's trace_id. Defaults to a no-op logger;
	// cmd/tgserve installs a real one with SetLogger.
	logger *slog.Logger
	cfg    Config
	// heavy is the load-shedding semaphore for decision-procedure routes;
	// nil means unlimited.
	heavy    chan struct{}
	faults   faultCounters
	batch    batchCounters
	fastpath fastPathCounters
	// flight is the crash-context ring: recent structured events, nil
	// when disabled. Wait-free to record into from any path.
	flight *obs.Flight
	// crashOut receives the flight dump on a caught panic; nil means
	// os.Stderr. Tests point it at a buffer.
	crashOut io.Writer
}

// New returns a Server with an empty graph and no resource limits.
func New() *Server { return NewWith(Config{}) }

// NewWith returns a Server with an empty graph, bounded per cfg.
func NewWith(cfg Config) *Server {
	s := &Server{metrics: newMetrics(), logger: nopLogger(), cfg: cfg}
	if cfg.MaxInFlight > 0 {
		s.heavy = make(chan struct{}, cfg.MaxInFlight)
	}
	flightSize := cfg.FlightSize
	if flightSize == 0 {
		flightSize = DefaultFlightSize
	}
	s.flight = obs.NewFlight(flightSize) // nil (disabled) when negative
	s.namespace = newNamespace(DefaultNamespace, cfg.HierarchyWorkers)
	s.spaces = map[string]*namespace{DefaultNamespace: s.namespace}
	// A fresh node is epoch 1; AttachJournal raises it to what the disk
	// remembers, Promote past every epoch seen over the wire.
	s.epoch.Store(1)
	return s
}

// SetHealthProber installs the peer prober consulted by ShardRedirect
// before 307-ing to a peer. Call before serving traffic.
func (s *Server) SetHealthProber(p *health.Prober) { s.prober = p }

// Epoch returns this node's current leader epoch.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// raiseEpoch lifts the server epoch to at least e (it never regresses).
func (s *Server) raiseEpoch(e uint64) {
	for {
		cur := s.epoch.Load()
		if e <= cur || s.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// SetLogger installs the structured logger used for request and mutation
// logging. A nil logger restores the no-op default. Call before serving
// traffic.
func (s *Server) SetLogger(l *slog.Logger) {
	if l == nil {
		l = nopLogger()
	}
	s.logger = l
}

// nopHandler discards every record; the stand-in until a real logger is
// installed (slog.DiscardHandler needs go 1.24; the module targets 1.22).
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

func nopLogger() *slog.Logger { return slog.New(nopHandler{}) }

// budgetFor derives one query's work budget from the server limits and
// the request's own context (client disconnects cancel the traversal).
// Nil — free — when the server is unlimited.
func (s *Server) budgetFor(r *http.Request) *budget.Budget {
	return budget.New(r.Context(), s.cfg.MaxVisited, s.cfg.QueryTimeout)
}

// queryErr maps a decision-procedure error onto its HTTP shape. Budget
// exhaustion — visit cap, deadline, client disconnect — is load shedding,
// not a verdict: 503 with code budget_exhausted, counted in /metrics and
// logged with the request's trace ID. The partial phase spans the probe
// collected still reach the phase aggregates via instrument.
func (s *Server) queryErr(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, budget.ErrExhausted) {
		s.faults.budgetExhausted.Add(1)
		s.logger.LogAttrs(r.Context(), slog.LevelWarn, "query",
			slog.String("trace_id", obs.TraceFrom(r.Context())),
			slog.String("verdict", "budget_exhausted"),
			slog.String("error", err.Error()),
		)
		writeErrCode(w, http.StatusServiceUnavailable, "budget_exhausted", err)
		return
	}
	writeErr(w, http.StatusInternalServerError, err)
}

// shed wraps a heavy handler in the bounded-concurrency semaphore: when
// MaxInFlight queries are already executing, the request is refused with
// 429 and Retry-After rather than queued — the monitor keeps answering
// mutations, stats and health traffic while saturated.
func (s *Server) shed(h http.HandlerFunc) http.HandlerFunc {
	if s.heavy == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.heavy <- struct{}{}:
			defer func() { <-s.heavy }()
			// Injection point for the load-shedding tests: a hook here holds
			// a semaphore slot for as long as it blocks.
			fault.Inject("shed:acquired")
			h(w, r)
		default:
			s.faults.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeErrCode(w, http.StatusTooManyRequests, "overloaded",
				fmt.Errorf("%d heavy queries already in flight", s.cfg.MaxInFlight))
		}
	}
}

// Handler returns the HTTP routes, each instrumented with request-count
// and latency tracking (surfaced at /stats and /metrics), a request-scoped
// trace ID (X-Trace-Id response header, obs probe in the request context)
// and structured request logging. Graph-addressing routes resolve ?ns=
// before their handler runs.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, h))
	}
	// heavy routes run a decision procedure per request; they pass through
	// the load-shedding semaphore so saturation turns into 429s instead of
	// unbounded goroutine pile-up.
	heavy := func(pattern string, h http.HandlerFunc) {
		route(pattern, s.shed(h))
	}
	route("/graph", s.withNSCreate(s.handleGraph))
	route("/graph.json", s.withNS(s.handleGraphJSON))
	route("/render", s.textHandler(func(n *namespace, r *http.Request) (string, error) {
		return tgio.Render(n.g), nil
	}))
	route("/apply", s.withNS(s.handleApply))
	heavy("/query/can-share", s.withNS(s.handleCanShare))
	heavy("/query/can-know", s.withNS(s.handleCanKnow))
	heavy("/query/can-steal", s.withNS(s.handleCanSteal))
	heavy("/query/batch", s.withNS(s.handleBatch))
	heavy("/explain/share", s.withNS(s.handleExplainShare))
	route("/levels", s.textHandler(func(n *namespace, r *http.Request) (string, error) {
		// The installed structure, not a fresh analysis: /levels, /audit
		// and the guard must report the same level assignment.
		p := obs.ProbeFrom(r.Context())
		return n.cached(p, "hasse", "", func() any { return n.class.Hasse() }).(string), nil
	}))
	heavy("/islands", s.withNS(s.handleIslands))
	heavy("/secure", s.withNS(s.handleSecure))
	route("/audit", s.withNS(s.handleAudit))
	heavy("/profile", s.withNS(s.handleProfile))
	route("/log", s.textHandler(func(n *namespace, r *http.Request) (string, error) {
		return n.logged.Format(n.g), nil
	}))
	route("/stats", s.handleStats)
	route("/metrics", s.handleMetrics)
	route("/healthz", s.handleHealthz)
	route("/readyz", s.handleReadyz)
	route("/admin/promote", s.handlePromote)
	route("/debug/flight", s.handleFlight)
	route("/replication/namespaces", s.fenced(s.handleReplNamespaces))
	route("/replication/snapshot", s.fenced(s.withNS(s.handleReplSnapshot)))
	route("/replication/wal", s.fenced(s.withNS(s.handleReplWAL)))
	route("/replication/digest", s.fenced(s.withNS(s.handleReplDigest)))
	return mux
}

type errorBody struct {
	Error string `json:"error"`
	// Code names the degradation class for machine consumers:
	// budget_exhausted, overloaded, degraded, internal_panic,
	// unsupported_media_type, bad_namespace, namespace_not_found,
	// read_only, replication_unavailable, peer_down, stale_epoch,
	// not_replica, not_caught_up, promote_failed. Empty for plain
	// request errors.
	Code string `json:"code,omitempty"`
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeErrCode(w, code, "", err)
}

func writeErrCode(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error(), Code: code})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleGraph(n *namespace, w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPut:
		// The body is .tg text or .tgb binary: accept an absent
		// Content-Type, text/plain (any charset), application/octet-stream
		// or the binary media type, and refuse anything else — a client
		// sending application/json here has confused this route with
		// POST /apply.
		ct := r.Header.Get("Content-Type")
		binary := strings.HasPrefix(ct, tgio.BinaryContentType)
		if ct != "" && !binary &&
			!strings.HasPrefix(ct, "text/plain") &&
			!strings.HasPrefix(ct, "application/octet-stream") {
			writeErrCode(w, http.StatusUnsupportedMediaType, "unsupported_media_type",
				fmt.Errorf("PUT /graph takes .tg text (text/plain) or .tgb binary (%s), not %s",
					tgio.BinaryContentType, ct))
			return
		}
		// Sniff the magic so an octet-stream .tgb body takes the binary
		// path — and its much larger size cap — without the explicit
		// media type.
		br := bufio.NewReaderSize(r.Body, 64<<10)
		if !binary {
			prefix, _ := br.Peek(4)
			binary = tgio.IsBinary(prefix)
		}
		var (
			g    *graph.Graph
			kind string
			data any
		)
		if binary {
			// The decoder streams the body; the tee retains the exact
			// accepted bytes for the journal (base64, since raw binary
			// cannot ride in a JSON string). The cap check outranks any
			// decode error its truncation point produced.
			var buf bytes.Buffer
			dec, err := tgio.DecodeBinary(io.TeeReader(io.LimitReader(br, maxBinaryGraphBytes+1), &buf))
			if buf.Len() > maxBinaryGraphBytes {
				writeErr(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("binary graph document exceeds %d bytes", maxBinaryGraphBytes))
				return
			}
			if err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			g, kind, data = dec, journalKindGraphBin, base64.StdEncoding.EncodeToString(buf.Bytes())
		} else {
			// Text streams through the parser one byte past the limit, so
			// an oversized document is refused without ever holding two
			// copies of the body. The tee's copy — the original bytes, not
			// a canonical re-render — is what gets journaled, keeping the
			// replication digest byte-stable. The size verdict outranks
			// any parse error the truncation point produced.
			var buf bytes.Buffer
			parsed, err := tgio.Parse(io.TeeReader(io.LimitReader(br, maxGraphBytes+1), &buf))
			if buf.Len() > maxGraphBytes {
				writeErr(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("graph document exceeds %d bytes", maxGraphBytes))
				return
			}
			if err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			g, kind, data = parsed, journalKindGraph, buf.String()
		}
		n.mu.Lock()
		defer n.mu.Unlock()
		if err := n.refuseDegraded(); err != nil {
			writeErrCode(w, http.StatusServiceUnavailable, "degraded", err)
			return
		}
		n.install(g, s.cfg.HierarchyWorkers)
		if err := s.journalAppend(n, r, kind, data); err != nil {
			writeErrCode(w, http.StatusServiceUnavailable, "degraded", err)
			return
		}
		writeJSON(w, map[string]any{"vertices": g.NumVertices(), "edges": g.NumEdges()})
	case http.MethodGet:
		if r.URL.Query().Get("format") == "tgb" {
			// Binary export: encode under the read lock into a buffer,
			// write after release so a slow client never holds readers up.
			var buf bytes.Buffer
			n.mu.RLock()
			err := tgio.EncodeBinary(&buf, n.g)
			n.mu.RUnlock()
			if err != nil {
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
			w.Header().Set("Content-Type", tgio.BinaryContentType)
			w.Write(buf.Bytes())
			return
		}
		n.mu.RLock()
		text := tgio.WriteString(n.g)
		n.mu.RUnlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, text)
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or PUT"))
	}
}

func (s *Server) handleGraphJSON(n *namespace, w http.ResponseWriter, r *http.Request) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	writeJSON(w, tgio.ToJSON(n.g))
}

// textHandler wraps a text-producing view under the namespace read lock.
func (s *Server) textHandler(f func(*namespace, *http.Request) (string, error)) http.HandlerFunc {
	return s.withNS(func(n *namespace, w http.ResponseWriter, r *http.Request) {
		n.mu.RLock()
		text, err := f(n, r)
		n.mu.RUnlock()
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, text)
	})
}

// ApplyRequest is the POST /apply body.
type ApplyRequest struct {
	// Op: take, grant, create, remove, post, pass, spy, find.
	Op string `json:"op"`
	// X, Y, Z are vertex names per the rule's roles.
	X string `json:"x"`
	Y string `json:"y,omitempty"`
	Z string `json:"z,omitempty"`
	// Rights is a comma-separated list for take/grant/create/remove.
	Rights string `json:"rights,omitempty"`
	// Name and Kind parameterise create.
	Name string `json:"name,omitempty"`
	Kind string `json:"kind,omitempty"`
}

func (s *Server) handleApply(n *namespace, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	if err := s.refuseReadOnly(); err != nil {
		writeErrCode(w, http.StatusServiceUnavailable, "read_only", err)
		return
	}
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		writeErrCode(w, http.StatusUnsupportedMediaType, "unsupported_media_type",
			fmt.Errorf("POST /apply takes application/json, not %q", ct))
		return
	}
	// Unknown fields are refused: a typoed "rigths" silently applying a
	// rule with no rights is worse than a 400.
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req ApplyRequest
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.refuseDegraded(); err != nil {
		writeErrCode(w, http.StatusServiceUnavailable, "degraded", err)
		return
	}
	app, err := buildApp(n.g, req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := n.guard.Apply(app); err != nil {
		code := http.StatusUnprocessableEntity // rule preconditions failed
		if errors.Is(err, restrict.ErrRefused) {
			code = http.StatusForbidden // the reference monitor said no
		}
		s.logger.LogAttrs(r.Context(), slog.LevelWarn, "mutation",
			slog.String("trace_id", obs.TraceFrom(r.Context())),
			slog.String("ns", n.name),
			slog.String("op", req.Op),
			slog.String("verdict", "refused"),
			slog.String("error", err.Error()),
		)
		s.flight.Record(obs.FlightEvent{
			Kind: "guard", Trace: obs.TraceFrom(r.Context()), NS: n.name,
			Route: "/apply", Code: code,
			Detail: fmt.Sprintf("%s refused: %v", req.Op, err),
		})
		writeErr(w, code, err)
		return
	}
	// The graph changed; bring the hierarchy up to date so the next
	// verdict is judged against live rw-levels, not the ones at install
	// time. The probe picks up the engine's patch/rebuild span.
	n.rearm(obs.ProbeFrom(r.Context()))
	// Durability before acknowledgement: the 200 below means the mutation
	// survives a crash. An append failure flips the namespace into degraded
	// mode (this and all further mutations refused, reads unaffected).
	if err := s.journalAppend(n, r, journalKindApply, req); err != nil {
		writeErrCode(w, http.StatusServiceUnavailable, "degraded", err)
		return
	}
	s.logger.LogAttrs(r.Context(), slog.LevelInfo, "mutation",
		slog.String("trace_id", obs.TraceFrom(r.Context())),
		slog.String("ns", n.name),
		slog.String("op", req.Op),
		slog.String("verdict", "applied"),
		slog.Uint64("revision", n.g.Revision()),
	)
	s.flight.Record(obs.FlightEvent{
		Kind: "guard", Trace: obs.TraceFrom(r.Context()), NS: n.name,
		Route:  "/apply",
		Detail: fmt.Sprintf("%s applied, revision %d", req.Op, n.g.Revision()),
	})
	writeJSON(w, map[string]any{"applied": app.Format(n.g)})
}

func buildApp(g *graph.Graph, req ApplyRequest) (rules.Application, error) {
	var zero rules.Application
	set, err := rights.Parse(g.Universe(), req.Rights)
	if err != nil {
		return zero, err
	}
	lookup := func(name string) (graph.ID, error) {
		if name == "" {
			return graph.None, fmt.Errorf("missing vertex name")
		}
		v, ok := g.Lookup(name)
		if !ok {
			return graph.None, fmt.Errorf("unknown vertex %q", name)
		}
		return v, nil
	}
	switch req.Op {
	case "create":
		x, err := lookup(req.X)
		if err != nil {
			return zero, err
		}
		kind := graph.Object
		switch req.Kind {
		case "subject":
			kind = graph.Subject
		case "object", "":
		default:
			return zero, fmt.Errorf("kind must be subject or object")
		}
		if req.Name == "" {
			return zero, fmt.Errorf("create needs a name")
		}
		return rules.Create(x, req.Name, kind, set), nil
	case "remove":
		x, err := lookup(req.X)
		if err != nil {
			return zero, err
		}
		y, err := lookup(req.Y)
		if err != nil {
			return zero, err
		}
		return rules.Remove(x, y, set), nil
	case "take", "grant", "post", "pass", "spy", "find":
		x, err := lookup(req.X)
		if err != nil {
			return zero, err
		}
		y, err := lookup(req.Y)
		if err != nil {
			return zero, err
		}
		z, err := lookup(req.Z)
		if err != nil {
			return zero, err
		}
		switch req.Op {
		case "take":
			return rules.Take(x, y, z, set), nil
		case "grant":
			return rules.Grant(x, y, z, set), nil
		case "post":
			return rules.Post(x, y, z), nil
		case "pass":
			return rules.Pass(x, y, z), nil
		case "spy":
			return rules.Spy(x, y, z), nil
		default:
			return rules.Find(x, y, z), nil
		}
	default:
		return zero, fmt.Errorf("unknown op %q", req.Op)
	}
}

func pairParams(g *graph.Graph, r *http.Request) (x, y graph.ID, err error) {
	xn, yn := r.URL.Query().Get("x"), r.URL.Query().Get("y")
	var ok bool
	if x, ok = g.Lookup(xn); !ok {
		return graph.None, graph.None, fmt.Errorf("unknown vertex %q", xn)
	}
	if y, ok = g.Lookup(yn); !ok {
		return graph.None, graph.None, fmt.Errorf("unknown vertex %q", yn)
	}
	return x, y, nil
}

func rightParam(g *graph.Graph, r *http.Request) (rights.Right, error) {
	name := r.URL.Query().Get("right")
	rt, ok := g.Universe().Lookup(name)
	if !ok {
		return 0, fmt.Errorf("unknown right %q", name)
	}
	return rt, nil
}

func (s *Server) handleCanShare(n *namespace, w http.ResponseWriter, r *http.Request) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	rt, err := rightParam(n.g, r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	x, y, err := pairParams(n.g, r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	p := obs.ProbeFrom(r.Context())
	b := s.budgetFor(r)
	v, err := n.cachedErr(p, "can-share", fmt.Sprintf("%d:%d:%d", rt, x, y), func() (any, error) {
		ok, warm, err := n.reach.CanShare(rt, x, y, p, b)
		if err != nil {
			return nil, err
		}
		s.fastpath.note(warm)
		return ok, nil
	})
	if err != nil {
		s.queryErr(w, r, err)
		return
	}
	writeJSON(w, map[string]bool{"can_share": v.(bool)})
}

func (s *Server) handleCanKnow(n *namespace, w http.ResponseWriter, r *http.Request) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	x, y, err := pairParams(n.g, r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	params := fmt.Sprintf("%d:%d", x, y)
	p := obs.ProbeFrom(r.Context())
	b := s.budgetFor(r)
	if r.URL.Query().Get("defacto") != "" {
		v, err := n.cachedErr(p, "can-know-f", params, func() (any, error) {
			ok, warm, err := n.reach.CanKnowF(x, y, p, b)
			if err != nil {
				return nil, err
			}
			s.fastpath.note(warm)
			return ok, nil
		})
		if err != nil {
			s.queryErr(w, r, err)
			return
		}
		writeJSON(w, map[string]bool{"can_know_f": v.(bool)})
		return
	}
	v, err := n.cachedErr(p, "can-know", params, func() (any, error) {
		ok, warm, err := n.reach.CanKnow(x, y, p, b)
		if err != nil {
			return nil, err
		}
		s.fastpath.note(warm)
		return ok, nil
	})
	if err != nil {
		s.queryErr(w, r, err)
		return
	}
	writeJSON(w, map[string]bool{"can_know": v.(bool)})
}

func (s *Server) handleCanSteal(n *namespace, w http.ResponseWriter, r *http.Request) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	rt, err := rightParam(n.g, r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	x, y, err := pairParams(n.g, r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ok := n.cached(obs.ProbeFrom(r.Context()), "can-steal", fmt.Sprintf("%d:%d:%d", rt, x, y), func() any {
		return steal.CanSteal(n.g, rt, x, y)
	}).(bool)
	writeJSON(w, map[string]bool{"can_steal": ok})
}

func (s *Server) handleExplainShare(n *namespace, w http.ResponseWriter, r *http.Request) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	rt, err := rightParam(n.g, r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	x, y, err := pairParams(n.g, r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	d, err := analysis.SynthesizeShareObs(n.g, rt, x, y, obs.ProbeFrom(r.Context()), s.budgetFor(r))
	if errors.Is(err, budget.ErrExhausted) {
		s.queryErr(w, r, err)
		return
	}
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	// ?format=json returns the machine-readable derivation trace; the
	// default stays the human-readable transcript.
	if r.URL.Query().Get("format") == "json" {
		steps, err := rules.TraceSteps(n.g, d)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		if steps == nil {
			steps = []rules.TraceStep{}
		}
		writeJSON(w, map[string]any{"derivation": steps})
		return
	}
	out, err := rules.Trace(n.g, d)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, out)
}

func (s *Server) handleIslands(n *namespace, w http.ResponseWriter, r *http.Request) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	p := obs.ProbeFrom(r.Context())
	v, err := n.cachedErr(p, "islands", "", func() (any, error) {
		islands, err := analysis.IslandsObs(n.g, p, s.budgetFor(r))
		if err != nil {
			return nil, err
		}
		// Canonical order — members sorted, islands by first member — so
		// every node in a fleet renders the same partition identically
		// regardless of how its graph was built (incremental mutation vs
		// snapshot bootstrap assign different internal vertex IDs).
		var names [][]string
		for _, island := range islands {
			ns := make([]string, len(island))
			for i, v := range island {
				ns[i] = n.g.Name(v)
			}
			sort.Strings(ns)
			names = append(names, ns)
		}
		sort.Slice(names, func(i, j int) bool { return names[i][0] < names[j][0] })
		return names, nil
	})
	if err != nil {
		s.queryErr(w, r, err)
		return
	}
	writeJSON(w, map[string]any{"islands": v.([][]string)})
}

func (s *Server) handleSecure(n *namespace, w http.ResponseWriter, r *http.Request) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	p := obs.ProbeFrom(r.Context())
	v, err := n.cachedErr(p, "secure", "", func() (any, error) {
		// The engine sweeps against its cached structure — the same one
		// the guard enforces — instead of re-deriving the hierarchy per
		// verdict. Budget exhaustion aborts with 503, uncached.
		ok, viol, err := n.engine.Secure(p, s.budgetFor(r))
		if err != nil {
			return nil, err
		}
		out := map[string]any{"secure": ok}
		if viol != nil {
			out["lower"] = n.g.Name(viol.Lower)
			out["upper"] = n.g.Name(viol.Upper)
		}
		return out, nil
	})
	if err != nil {
		s.queryErr(w, r, err)
		return
	}
	writeJSON(w, v.(map[string]any))
}

func (s *Server) handleAudit(n *namespace, w http.ResponseWriter, r *http.Request) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	viols := n.comb.Audit(n.g)
	var out []string
	for _, v := range viols {
		out = append(out, fmt.Sprintf("(%s) %s→%s %s", v.Rule,
			n.g.Name(v.Src), n.g.Name(v.Dst), n.g.Universe().Name(v.Right)))
	}
	sort.Strings(out) // canonical order across fleet nodes
	writeJSON(w, map[string]any{"violations": out, "clean": len(out) == 0})
}

func (s *Server) handleProfile(n *namespace, w http.ResponseWriter, r *http.Request) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	name := r.URL.Query().Get("x")
	x, ok := n.g.Lookup(name)
	if !ok {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown vertex %q", name))
		return
	}
	type entry struct {
		Right  string `json:"right"`
		Target string `json:"target"`
		Held   bool   `json:"held"`
	}
	profile, err := analysis.ProfileObs(n.g, x, obs.ProbeFrom(r.Context()), s.budgetFor(r))
	if err != nil {
		s.queryErr(w, r, err)
		return
	}
	var out []entry
	for _, a := range profile {
		out = append(out, entry{
			Right:  n.g.Universe().Name(a.Right),
			Target: n.g.Name(a.Target),
			Held:   a.Held,
		})
	}
	// Canonical order: internal vertex IDs differ across fleet nodes
	// (incremental build vs snapshot bootstrap), names do not.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Target != out[j].Target {
			return out[i].Target < out[j].Target
		}
		return out[i].Right < out[j].Right
	})
	writeJSON(w, map[string]any{"profile": out})
}

// OpStats is one rewriting rule's slice of the guard counters.
type OpStats struct {
	Applied int `json:"applied"`
	Refused int `json:"refused"`
}

// GuardStats is the guard's slice of the /stats report.
type GuardStats struct {
	Applied int `json:"applied"`
	Refused int `json:"refused"`
	// ByOp breaks the counters down per rewriting rule; rules with no
	// traffic are omitted.
	ByOp map[string]OpStats `json:"by_op,omitempty"`
}

func guardStats(g *restrict.Guarded) GuardStats {
	out := GuardStats{Applied: g.Applied, Refused: g.Refused}
	for op := 0; op < rules.NumOps; op++ {
		a, r := g.AppliedByOp[op], g.RefusedByOp[op]
		if a == 0 && r == 0 {
			continue
		}
		if out.ByOp == nil {
			out.ByOp = make(map[string]OpStats)
		}
		out.ByOp[rules.Op(op).String()] = OpStats{Applied: a, Refused: r}
	}
	return out
}

// FaultStats is the degradation slice of the /stats report.
type FaultStats struct {
	Panics          uint64 `json:"panics"`
	Shed            uint64 `json:"shed"`
	BudgetExhausted uint64 `json:"budget_exhausted"`
}

// NamespaceStats is one namespace's slice of the /stats report — the
// revision tokens a client needs for read-your-writes against a replica:
// wait until the follower's revision (or applied_seq) reaches the value
// the leader returned for your write.
type NamespaceStats struct {
	Revision     uint64 `json:"revision"`
	Generation   uint64 `json:"generation"`
	Vertices     int    `json:"vertices"`
	Edges        int    `json:"edges"`
	CacheEntries int    `json:"cache_entries"`
	// LastSeq is the namespace journal's highest durable seq (leaders).
	LastSeq uint64 `json:"last_seq,omitempty"`
	// AppliedSeq is the replication cursor (followers).
	AppliedSeq uint64 `json:"applied_seq,omitempty"`
	Degraded   bool   `json:"degraded,omitempty"`
	// Indexes breaks out the namespace's derived-index registry: per-index
	// hit/miss, patch/invalidate and rebuild counters.
	Indexes map[string]derived.Stats `json:"indexes,omitempty"`
}

// Stats is the GET /stats report. The top-level fields describe the
// default namespace — the pre-namespace report, unchanged; Namespaces
// breaks every live namespace out by name once more than the default
// exists (or the node is a replica).
type Stats struct {
	Revision   uint64       `json:"revision"`
	Generation uint64       `json:"generation"`
	Vertices   int          `json:"vertices"`
	Edges      int          `json:"edges"`
	Levels     int          `json:"levels"`
	Cache      qcache.Stats `json:"cache"`
	Guard      GuardStats   `json:"guard"`
	// Hierarchy reports the write-path engine's maintenance counters:
	// incremental patches vs full rebuilds, patched-edge outcomes, and
	// dirty-set sizes.
	Hierarchy hierarchy.EngineStats `json:"hierarchy"`
	// Indexes reports the default namespace's derived-index registry: one
	// entry per registered index (snapshot, tg_islands, qcache, hierarchy,
	// reach_closure) with hit/miss, patch/invalidate and rebuild counters.
	Indexes map[string]derived.Stats `json:"indexes"`
	// FastPath splits uncached decision-query computes by answer path:
	// warm closure bit-tests vs budgeted from-scratch searches.
	FastPath FastPathStats         `json:"fast_path"`
	Routes   map[string]RouteStats `json:"routes"`
	Faults   FaultStats            `json:"faults"`
	Batch    BatchStats            `json:"batch"`
	// Journal is present when the server runs with a data directory;
	// Degraded reports a journal write failure that froze mutations.
	Journal  *JournalStats `json:"journal,omitempty"`
	Degraded bool          `json:"degraded,omitempty"`
	// ReadOnly marks a replica; Replication carries its lag counters.
	ReadOnly    bool                      `json:"read_only,omitempty"`
	Namespaces  map[string]NamespaceStats `json:"namespaces,omitempty"`
	Replication *ReplicationStats         `json:"replication,omitempty"`
	// Epoch is this node's leader epoch (fencing token).
	Epoch uint64 `json:"epoch"`
	// Fleet carries the resilience layer's counters.
	Fleet FleetStats `json:"fleet"`
	// Peers reports the health prober's view, when one is installed.
	Peers map[string]health.Status `json:"peers,omitempty"`
}

// FastPathStats is the closure fast path's slice of the /stats report.
type FastPathStats struct {
	Closure uint64 `json:"closure"`
	Search  uint64 `json:"search"`
}

// FleetStats is the resilience layer's slice of the /stats report.
type FleetStats struct {
	FailoverReads   uint64 `json:"failover_reads"`
	PeerUnavailable uint64 `json:"peer_unavailable"`
	StaleEpoch      uint64 `json:"stale_epoch"`
	ScrubRounds     uint64 `json:"scrub_rounds"`
	ScrubMismatches uint64 `json:"scrub_mismatches"`
}

// Stats snapshots the server's observability counters; also published as
// expvar by cmd/tgserve.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	st := Stats{
		Revision:   s.g.Revision(),
		Generation: s.gen,
		Vertices:   s.g.NumVertices(),
		Edges:      s.g.NumEdges(),
		Levels:     s.class.NumLevels(),
		Cache:      s.cache.Stats(),
		Guard:      guardStats(s.guard),
		Hierarchy:  s.engine.Stats(),
		Indexes:    s.reg.Stats(),
		Routes:     s.metrics.snapshot(),
		Faults: FaultStats{
			Panics:          s.faults.panics.Load(),
			Shed:            s.faults.shed.Load(),
			BudgetExhausted: s.faults.budgetExhausted.Load(),
		},
		Batch: BatchStats{
			Requests:   s.batch.requests.Load(),
			Items:      s.batch.items.Load(),
			ItemErrors: s.batch.itemErrors.Load(),
		},
		Degraded: s.degraded != nil,
	}
	if s.journal != nil {
		js := s.journal.stats()
		st.Journal = &js
	}
	s.mu.RUnlock()

	st.ReadOnly = s.readOnly.Load()
	st.Epoch = s.epoch.Load()
	st.FastPath = FastPathStats{
		Closure: s.fastpath.closure.Load(),
		Search:  s.fastpath.search.Load(),
	}
	st.Fleet = FleetStats{
		FailoverReads:   s.fleet.failoverReads.Load(),
		PeerUnavailable: s.fleet.peerUnavailable.Load(),
		StaleEpoch:      s.fleet.staleEpoch.Load(),
		ScrubRounds:     s.fleet.scrubRounds.Load(),
		ScrubMismatches: s.fleet.scrubMismatches.Load(),
	}
	if s.prober != nil {
		st.Peers = s.prober.Snapshot()
	}
	// Per-namespace summaries are taken after the default's lock is
	// released — summary() locks each namespace in turn, including the
	// default (recursive read-locking a sync.RWMutex is prohibited).
	if spaces := s.allNS(); len(spaces) > 1 || st.ReadOnly {
		st.Namespaces = make(map[string]NamespaceStats, len(spaces))
		for _, n := range spaces {
			st.Namespaces[n.name] = n.summary()
		}
	}
	if repl := s.repl.Load(); repl != nil {
		rs := repl.stats()
		st.Replication = &rs
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

// handleFlight replays the flight recorder: the last ring-ful of
// structured events (request summaries with phase spans, guard verdicts,
// replication rounds, journal faults, panics, redirects), oldest first —
// the first place to look after an incident.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	events := s.flight.Snapshot()
	if events == nil {
		events = []obs.FlightEvent{}
	}
	writeJSON(w, map[string]any{
		"size":   s.flight.Size(),
		"events": events,
	})
}

// DumpFlight writes the flight ring as text to w — what cmd/tgserve
// wires to SIGQUIT.
func (s *Server) DumpFlight(w io.Writer) { s.flight.Dump(w) }

// handleMetrics serves the same counters /stats reports — plus the
// decision procedures' per-phase span aggregates — as Prometheus text
// exposition. Series within each family are sorted for deterministic
// scrapes. Unlabeled families describe the default namespace (the
// pre-namespace exposition, unchanged); takegrant_ns_* families break
// the same gauges out per namespace.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	phases := s.phases.Snapshot()

	var pw obs.PromWriter
	// Route traffic: per-(route, status class) counters and true
	// histogram families per (route, class, namespace) — scrapers sum
	// and merge by label; tgtop merges whole fleets the same way.
	series := s.metrics.series()
	routes := make([]string, 0, len(st.Routes))
	for route := range st.Routes {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	for _, route := range routes {
		classes := make([]string, 0, len(st.Routes[route].ByClass))
		for class := range st.Routes[route].ByClass {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		for _, class := range classes {
			pw.Counter("takegrant_requests_total", "Requests served per route and status class.",
				[]obs.Label{obs.L("route", route), obs.L("code_class", class)},
				float64(st.Routes[route].ByClass[class]))
		}
	}
	for _, hs := range series {
		labels := []obs.Label{obs.L("route", hs.route), obs.L("code_class", hs.class)}
		if hs.ns != DefaultNamespace {
			labels = append(labels, obs.L("ns", hs.ns))
		}
		pw.HistogramSnapshot("takegrant_request_latency_seconds",
			"Route latency distribution per status class (log-bucketed, mergeable across nodes).",
			labels, hs.snap)
	}

	// Query cache.
	pw.Counter("takegrant_qcache_hits_total", "Decision-cache hits.", nil, float64(st.Cache.Hits))
	pw.Counter("takegrant_qcache_misses_total", "Decision-cache misses.", nil, float64(st.Cache.Misses))
	pw.Counter("takegrant_qcache_evictions_total", "Decision-cache LRU evictions.", nil, float64(st.Cache.Evictions))
	kinds := make([]string, 0, len(st.Cache.PerKind))
	for kind := range st.Cache.PerKind {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		ks := st.Cache.PerKind[kind]
		pw.Counter("takegrant_qcache_kind_hits_total", "Decision-cache hits per procedure.",
			[]obs.Label{obs.L("kind", kind)}, float64(ks.Hits))
	}
	for _, kind := range kinds {
		ks := st.Cache.PerKind[kind]
		pw.Counter("takegrant_qcache_kind_misses_total", "Decision-cache misses per procedure.",
			[]obs.Label{obs.L("kind", kind)}, float64(ks.Misses))
	}

	// Closure fast path: uncached decision queries split by how they were
	// answered — a warm closure bit-test or the budgeted fallback search.
	pw.Counter("takegrant_fastpath_total", "Uncached decision-query computes by answer path.",
		[]obs.Label{obs.L("fast_path", "closure")}, float64(st.FastPath.Closure))
	pw.Counter("takegrant_fastpath_total", "",
		[]obs.Label{obs.L("fast_path", "search")}, float64(st.FastPath.Search))

	// Derived-index registry (default namespace): per-index lookup and
	// maintenance counters. One pass per family keeps samples contiguous.
	idxNames := make([]string, 0, len(st.Indexes))
	for name := range st.Indexes {
		idxNames = append(idxNames, name)
	}
	sort.Strings(idxNames)
	for _, name := range idxNames {
		pw.Counter("takegrant_index_hits_total", "Derived-index lookups answered by the live structure.",
			[]obs.Label{obs.L("index", name)}, float64(st.Indexes[name].Hits))
	}
	for _, name := range idxNames {
		pw.Counter("takegrant_index_misses_total", "Derived-index lookups that found no warm structure.",
			[]obs.Label{obs.L("index", name)}, float64(st.Indexes[name].Misses))
	}
	for _, name := range idxNames {
		pw.Counter("takegrant_index_patches_total", "Graph changes absorbed in place by each derived index.",
			[]obs.Label{obs.L("index", name)}, float64(st.Indexes[name].Patches))
	}
	for _, name := range idxNames {
		pw.Counter("takegrant_index_invalidates_total", "Graph changes that wholesale-invalidated each derived index.",
			[]obs.Label{obs.L("index", name)}, float64(st.Indexes[name].Invalidates))
	}
	for _, name := range idxNames {
		pw.Counter("takegrant_index_rebuilds_total", "From-scratch rebuilds of each derived index.",
			[]obs.Label{obs.L("index", name)}, float64(st.Indexes[name].Rebuilds))
	}

	// Reference-monitor verdicts, total and per rewriting rule.
	pw.Counter("takegrant_guard_verdicts_total", "Guarded rule applications by verdict.",
		[]obs.Label{obs.L("verdict", "applied")}, float64(st.Guard.Applied))
	pw.Counter("takegrant_guard_verdicts_total", "",
		[]obs.Label{obs.L("verdict", "refused")}, float64(st.Guard.Refused))
	ops := make([]string, 0, len(st.Guard.ByOp))
	for op := range st.Guard.ByOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		os := st.Guard.ByOp[op]
		pw.Counter("takegrant_rule_applications_total", "Guarded rule applications per rule and verdict.",
			[]obs.Label{obs.L("op", op), obs.L("verdict", "applied")}, float64(os.Applied))
		pw.Counter("takegrant_rule_applications_total", "",
			[]obs.Label{obs.L("op", op), obs.L("verdict", "refused")}, float64(os.Refused))
	}

	// Decision-procedure phase spans: count, cumulative seconds, and the
	// summed work counters (product states visited, edges scanned, ...).
	// One pass per family: a family's samples must be contiguous under its
	// TYPE header (enforced by obs.LintProm in CI).
	phaseLabels := func(k obs.PhaseKey) []obs.Label {
		return []obs.Label{obs.L("procedure", k.Procedure), obs.L("phase", k.Phase)}
	}
	for _, k := range obs.SortedKeys(phases) {
		pw.Counter("takegrant_phase_executions_total", "Decision-procedure phase executions.",
			phaseLabels(k), float64(phases[k].Count))
	}
	for _, k := range obs.SortedKeys(phases) {
		pw.Counter("takegrant_phase_seconds_total", "Cumulative time in each decision-procedure phase.",
			phaseLabels(k), phases[k].Total.Seconds())
	}
	for _, k := range obs.SortedKeys(phases) {
		ps := phases[k]
		counts := make([]string, 0, len(ps.Counts))
		for ck := range ps.Counts {
			counts = append(counts, ck)
		}
		sort.Strings(counts)
		for _, ck := range counts {
			pw.Counter("takegrant_phase_work_total", "Summed phase work counters (visited states, scanned edges, ...).",
				append(phaseLabels(k), obs.L("kind", ck)), float64(ps.Counts[ck]))
		}
	}

	// Write-path hierarchy engine: a mutation stream dominated by
	// monotone rule applications should show patches ≫ rebuilds.
	pw.Counter("takegrant_hierarchy_rebuilds_total", "Full from-scratch hierarchy derivations.",
		nil, float64(st.Hierarchy.Rebuilds))
	pw.Counter("takegrant_hierarchy_patches_total", "Rearms answered by in-place structure patching.",
		nil, float64(st.Hierarchy.Patches))
	pw.Counter("takegrant_hierarchy_invalidations_total", "Destructive mutations forcing a rebuild.",
		nil, float64(st.Hierarchy.Invalidations))
	for _, oc := range []struct {
		outcome string
		n       uint64
	}{{"noop", st.Hierarchy.NoopEdges}, {"insert", st.Hierarchy.Inserts}, {"merge", st.Hierarchy.Merges}} {
		pw.Counter("takegrant_hierarchy_patch_edges_total", "Step edges processed by the incremental patcher, by outcome.",
			[]obs.Label{obs.L("outcome", oc.outcome)}, float64(oc.n))
	}
	pw.Gauge("takegrant_hierarchy_dirty_last", "Dirty-set size at the most recent rearm.",
		nil, float64(st.Hierarchy.LastDirty))
	pw.Gauge("takegrant_hierarchy_dirty_max", "Largest dirty-set size observed at a rearm.",
		nil, float64(st.Hierarchy.MaxDirty))
	pw.Gauge("takegrant_hierarchy_workers", "Worker-pool bound for parallel derivation.",
		nil, float64(st.Hierarchy.Workers))

	// Degradation counters: a healthy monitor keeps these flat.
	pw.Counter("takegrant_panics_total", "Handler panics caught by the recovery middleware.",
		nil, float64(st.Faults.Panics))
	pw.Counter("takegrant_shed_total", "Heavy queries refused with 429 by the load-shedding semaphore.",
		nil, float64(st.Faults.Shed))
	pw.Counter("takegrant_budget_exhausted_total", "Queries aborted with 503 by their work budget.",
		nil, float64(st.Faults.BudgetExhausted))

	// Batch endpoint traffic.
	pw.Counter("takegrant_batch_requests_total", "POST /query/batch requests accepted for execution.",
		nil, float64(st.Batch.Requests))
	pw.Counter("takegrant_batch_items_total", "Individual queries carried by batch requests.",
		nil, float64(st.Batch.Items))
	pw.Counter("takegrant_batch_item_errors_total", "Batch items answered with a non-200 per-item status.",
		nil, float64(st.Batch.ItemErrors))

	// Crash-safety: journal counters when a data directory is attached.
	if st.Journal != nil {
		pw.Counter("takegrant_journal_appends_total", "Mutations made durable in the write-ahead log.",
			nil, float64(st.Journal.Appended))
		pw.Counter("takegrant_journal_snapshots_total", "Snapshots written.",
			nil, float64(st.Journal.Snapshots))
		pw.Gauge("takegrant_journal_wal_records", "WAL records since the last snapshot.",
			nil, float64(st.Journal.WalRecords))
		pw.Gauge("takegrant_journal_recovered_records", "WAL records replayed at startup.",
			nil, float64(st.Journal.Recovered))
		pw.Gauge("takegrant_journal_truncated_bytes", "Torn-tail bytes discarded at startup.",
			nil, float64(st.Journal.TruncatedBytes))
	}
	degraded := 0.0
	if st.Degraded {
		degraded = 1
	}
	pw.Gauge("takegrant_degraded", "1 when a journal failure froze mutations (reads continue).",
		nil, degraded)

	// Live-graph gauges (default namespace).
	pw.Gauge("takegrant_graph_vertices", "Vertices in the live graph.", nil, float64(st.Vertices))
	pw.Gauge("takegrant_graph_edges", "Edges in the live graph.", nil, float64(st.Edges))
	pw.Gauge("takegrant_graph_levels", "rw-levels of the installed hierarchy.", nil, float64(st.Levels))
	pw.Gauge("takegrant_graph_revision", "Mutation counter of the live graph.", nil, float64(st.Revision))
	pw.Gauge("takegrant_graph_generation", "Graph installations since process start.", nil, float64(st.Generation))
	pw.Gauge("takegrant_qcache_entries", "Decision-cache resident entries.", nil, float64(st.Cache.Size))

	// Multi-tenancy: one gauge set per namespace once any exists beyond
	// the default, plus the namespace count itself.
	pw.Gauge("takegrant_namespaces", "Live namespaces.", nil, float64(len(s.allNS())))
	if len(st.Namespaces) > 0 {
		names := make([]string, 0, len(st.Namespaces))
		for name := range st.Namespaces {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			pw.Gauge("takegrant_ns_revision", "Mutation counter per namespace.",
				[]obs.Label{obs.L("ns", name)}, float64(st.Namespaces[name].Revision))
		}
		for _, name := range names {
			pw.Gauge("takegrant_ns_vertices", "Vertices per namespace.",
				[]obs.Label{obs.L("ns", name)}, float64(st.Namespaces[name].Vertices))
		}
		for _, name := range names {
			pw.Gauge("takegrant_ns_edges", "Edges per namespace.",
				[]obs.Label{obs.L("ns", name)}, float64(st.Namespaces[name].Edges))
		}
		for _, name := range names {
			pw.Gauge("takegrant_ns_qcache_entries", "Decision-cache resident entries per namespace.",
				[]obs.Label{obs.L("ns", name)}, float64(st.Namespaces[name].CacheEntries))
		}
		for _, name := range names {
			pw.Gauge("takegrant_ns_wal_last_seq", "Highest durable WAL seq per namespace (leader).",
				[]obs.Label{obs.L("ns", name)}, float64(st.Namespaces[name].LastSeq))
		}
		for _, name := range names {
			pw.Gauge("takegrant_ns_applied_seq", "Replication cursor per namespace (follower).",
				[]obs.Label{obs.L("ns", name)}, float64(st.Namespaces[name].AppliedSeq))
		}
		for _, name := range names {
			d := 0.0
			if st.Namespaces[name].Degraded {
				d = 1
			}
			pw.Gauge("takegrant_ns_degraded", "1 when the namespace's journal froze its mutations.",
				[]obs.Label{obs.L("ns", name)}, d)
		}
	}

	// Replication: follower lag and progress.
	readOnly := 0.0
	if st.ReadOnly {
		readOnly = 1
	}
	pw.Gauge("takegrant_read_only", "1 on a replica (mutations answered with 503 read_only).",
		nil, readOnly)
	if st.Replication != nil {
		pw.Gauge("takegrant_replication_lag_seconds",
			"Seconds since this follower last drew level with its leader (0 while caught up).",
			nil, st.Replication.LagSeconds)
		pw.Gauge("takegrant_replication_behind_records", "Leader WAL records not yet replayed.",
			nil, float64(st.Replication.BehindRecords))
		pw.Counter("takegrant_replication_applied_total", "Leader WAL records replayed here.",
			nil, float64(st.Replication.AppliedRecords))
		pw.Counter("takegrant_replication_bootstraps_total", "Snapshot bootstraps (WAL compacted past our cursor).",
			nil, float64(st.Replication.Bootstraps))
		pw.Counter("takegrant_replication_rounds_total", "Poll rounds against the leader.",
			nil, float64(st.Replication.Rounds))
		pw.Counter("takegrant_replication_errors_total", "Failed poll rounds.",
			nil, float64(st.Replication.Errors))
		pw.Counter("takegrant_replication_digest_checks_total", "Anti-entropy digest verifications after catch-up.",
			nil, float64(st.Replication.DigestChecks))
		pw.Counter("takegrant_replication_digest_mismatch_total",
			"Digest mismatches that quarantined and re-bootstrapped a namespace.",
			nil, float64(st.Replication.DigestMismatches))
		pw.Gauge("takegrant_replication_consecutive_failures", "Failed poll rounds since the last success.",
			nil, float64(st.Replication.ConsecutiveFailures))
		pw.Gauge("takegrant_replication_backoff_seconds", "Current poll backoff (0 while the leader answers).",
			nil, st.Replication.BackoffSeconds)
		pw.Gauge("takegrant_replication_leader_epoch", "Highest leader epoch seen over /replication/*.",
			nil, float64(st.Replication.LeaderEpoch))
	}

	// Fencing + anti-entropy: the epoch this node serves under, refusals
	// of stale leaders, and the scrubber's index-vs-oracle verdicts.
	pw.Gauge("takegrant_epoch", "This node's leader epoch (fencing token).", nil, float64(st.Epoch))
	pw.Counter("takegrant_stale_epoch_total", "Replication requests refused with 409 stale_epoch.",
		nil, float64(st.Fleet.StaleEpoch))
	pw.Counter("takegrant_scrub_rounds_total", "Anti-entropy scrubber passes over a namespace.",
		nil, float64(st.Fleet.ScrubRounds))
	pw.Counter("takegrant_scrub_mismatch_total",
		"Incremental-index results that disagreed with their from-scratch oracle (must stay 0).",
		nil, float64(st.Fleet.ScrubMismatches))

	// Fleet routing: health-checked redirects.
	pw.Counter("takegrant_failover_reads_total", "Reads 307'd to the failover replica because the owner was down.",
		nil, float64(st.Fleet.FailoverReads))
	pw.Counter("takegrant_peer_unavailable_total", "Requests answered 503 peer_down.",
		nil, float64(st.Fleet.PeerUnavailable))
	if len(st.Peers) > 0 {
		peers := make([]string, 0, len(st.Peers))
		for peer := range st.Peers {
			peers = append(peers, peer)
		}
		sort.Strings(peers)
		for _, peer := range peers {
			up := 0.0
			if st.Peers[peer].Up {
				up = 1
			}
			pw.Gauge("takegrant_peer_up", "1 while the health prober believes the peer is alive.",
				[]obs.Label{obs.L("peer", peer)}, up)
		}
		for _, peer := range peers {
			pw.Counter("takegrant_peer_transitions_total", "Peer up/down flips observed by the prober.",
				[]obs.Label{obs.L("peer", peer)}, float64(st.Peers[peer].Transitions))
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, pw.String())
}
