// Package service exposes a guarded hierarchical Take-Grant protection
// system over HTTP — the shape a deployment embeds: one process owns the
// protection state, every mutation passes the combined restriction, and
// clients query the decision procedures by vertex name.
//
// Routes (all JSON unless noted):
//
//	PUT  /graph                     load a .tg document (text/plain body)
//	GET  /graph                     canonical .tg text
//	GET  /graph.json                JSON interchange form
//	GET  /render                    terminal rendering (text)
//	POST /apply                     guarded rule application
//	GET  /query/can-share?right=&x=&y=
//	GET  /query/can-know?x=&y=      (&defacto=1 for can•know•f)
//	GET  /query/can-steal?right=&x=&y=
//	GET  /explain/share?right=&x=&y=  traced derivation (text)
//	GET  /levels                    Hasse diagram (text)
//	GET  /islands
//	GET  /secure
//	GET  /audit
//	GET  /profile?x=
//	GET  /log                       guarded decision trail (text)
//
// The server is safe for concurrent use: one mutex owns the state, and
// every handler works on it under the lock (queries clone nothing — the
// analyses only read).
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"takegrant/internal/analysis"
	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/restrict"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
	"takegrant/internal/steal"
	"takegrant/internal/tgio"
)

// Server owns one protection system.
type Server struct {
	mu     sync.Mutex
	g      *graph.Graph
	class  *hierarchy.Structure
	logged *restrict.Logged
	guard  *restrict.Guarded
}

// New returns a Server with an empty graph.
func New() *Server {
	s := &Server{}
	s.install(graph.New(nil))
	return s
}

// install swaps in a new graph and re-arms the guard.
func (s *Server) install(g *graph.Graph) {
	s.g = g
	s.class = hierarchy.AnalyzeRW(g)
	s.logged = restrict.NewLogged(restrict.NewCombined(s.class))
	s.guard = restrict.NewGuarded(g, s.logged)
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/graph", s.handleGraph)
	mux.HandleFunc("/graph.json", s.handleGraphJSON)
	mux.HandleFunc("/render", s.textHandler(func() (string, error) {
		return tgio.Render(s.g), nil
	}))
	mux.HandleFunc("/apply", s.handleApply)
	mux.HandleFunc("/query/can-share", s.handleCanShare)
	mux.HandleFunc("/query/can-know", s.handleCanKnow)
	mux.HandleFunc("/query/can-steal", s.handleCanSteal)
	mux.HandleFunc("/explain/share", s.handleExplainShare)
	mux.HandleFunc("/levels", s.textHandler(func() (string, error) {
		return hierarchy.AnalyzeRW(s.g).Hasse(), nil
	}))
	mux.HandleFunc("/islands", s.handleIslands)
	mux.HandleFunc("/secure", s.handleSecure)
	mux.HandleFunc("/audit", s.handleAudit)
	mux.HandleFunc("/profile", s.handleProfile)
	mux.HandleFunc("/log", s.textHandler(func() (string, error) {
		return s.logged.Format(s.g), nil
	}))
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPut:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		g, err := tgio.ParseString(string(body))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		s.mu.Lock()
		s.install(g)
		s.mu.Unlock()
		writeJSON(w, map[string]any{"vertices": g.NumVertices(), "edges": g.NumEdges()})
	case http.MethodGet:
		s.mu.Lock()
		text := tgio.WriteString(s.g)
		s.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, text)
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or PUT"))
	}
}

func (s *Server) handleGraphJSON(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, tgio.ToJSON(s.g))
}

// textHandler wraps a text-producing view under the lock.
func (s *Server) textHandler(f func() (string, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		text, err := f()
		s.mu.Unlock()
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, text)
	}
}

// ApplyRequest is the POST /apply body.
type ApplyRequest struct {
	// Op: take, grant, create, remove, post, pass, spy, find.
	Op string `json:"op"`
	// X, Y, Z are vertex names per the rule's roles.
	X string `json:"x"`
	Y string `json:"y,omitempty"`
	Z string `json:"z,omitempty"`
	// Rights is a comma-separated list for take/grant/create/remove.
	Rights string `json:"rights,omitempty"`
	// Name and Kind parameterise create.
	Name string `json:"name,omitempty"`
	Kind string `json:"kind,omitempty"`
}

func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req ApplyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	app, err := s.buildApp(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.guard.Apply(app); err != nil {
		code := http.StatusUnprocessableEntity // rule preconditions failed
		if errors.Is(err, restrict.ErrRefused) {
			code = http.StatusForbidden // the reference monitor said no
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, map[string]any{"applied": app.Format(s.g)})
}

func (s *Server) buildApp(req ApplyRequest) (rules.Application, error) {
	var zero rules.Application
	set, err := rights.Parse(s.g.Universe(), req.Rights)
	if err != nil {
		return zero, err
	}
	lookup := func(name string) (graph.ID, error) {
		if name == "" {
			return graph.None, fmt.Errorf("missing vertex name")
		}
		v, ok := s.g.Lookup(name)
		if !ok {
			return graph.None, fmt.Errorf("unknown vertex %q", name)
		}
		return v, nil
	}
	switch req.Op {
	case "create":
		x, err := lookup(req.X)
		if err != nil {
			return zero, err
		}
		kind := graph.Object
		switch req.Kind {
		case "subject":
			kind = graph.Subject
		case "object", "":
		default:
			return zero, fmt.Errorf("kind must be subject or object")
		}
		if req.Name == "" {
			return zero, fmt.Errorf("create needs a name")
		}
		return rules.Create(x, req.Name, kind, set), nil
	case "remove":
		x, err := lookup(req.X)
		if err != nil {
			return zero, err
		}
		y, err := lookup(req.Y)
		if err != nil {
			return zero, err
		}
		return rules.Remove(x, y, set), nil
	case "take", "grant", "post", "pass", "spy", "find":
		x, err := lookup(req.X)
		if err != nil {
			return zero, err
		}
		y, err := lookup(req.Y)
		if err != nil {
			return zero, err
		}
		z, err := lookup(req.Z)
		if err != nil {
			return zero, err
		}
		switch req.Op {
		case "take":
			return rules.Take(x, y, z, set), nil
		case "grant":
			return rules.Grant(x, y, z, set), nil
		case "post":
			return rules.Post(x, y, z), nil
		case "pass":
			return rules.Pass(x, y, z), nil
		case "spy":
			return rules.Spy(x, y, z), nil
		default:
			return rules.Find(x, y, z), nil
		}
	default:
		return zero, fmt.Errorf("unknown op %q", req.Op)
	}
}

func (s *Server) pairParams(r *http.Request) (x, y graph.ID, err error) {
	xn, yn := r.URL.Query().Get("x"), r.URL.Query().Get("y")
	var ok bool
	if x, ok = s.g.Lookup(xn); !ok {
		return graph.None, graph.None, fmt.Errorf("unknown vertex %q", xn)
	}
	if y, ok = s.g.Lookup(yn); !ok {
		return graph.None, graph.None, fmt.Errorf("unknown vertex %q", yn)
	}
	return x, y, nil
}

func (s *Server) rightParam(r *http.Request) (rights.Right, error) {
	name := r.URL.Query().Get("right")
	rt, ok := s.g.Universe().Lookup(name)
	if !ok {
		return 0, fmt.Errorf("unknown right %q", name)
	}
	return rt, nil
}

func (s *Server) handleCanShare(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rt, err := s.rightParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	x, y, err := s.pairParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, map[string]bool{"can_share": analysis.CanShare(s.g, rt, x, y)})
}

func (s *Server) handleCanKnow(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	x, y, err := s.pairParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("defacto") != "" {
		writeJSON(w, map[string]bool{"can_know_f": analysis.CanKnowF(s.g, x, y)})
		return
	}
	writeJSON(w, map[string]bool{"can_know": analysis.CanKnow(s.g, x, y)})
}

func (s *Server) handleCanSteal(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rt, err := s.rightParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	x, y, err := s.pairParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, map[string]bool{"can_steal": steal.CanSteal(s.g, rt, x, y)})
}

func (s *Server) handleExplainShare(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rt, err := s.rightParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	x, y, err := s.pairParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	d, err := analysis.SynthesizeShare(s.g, rt, x, y)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	out, err := rules.Trace(s.g, d)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, out)
}

func (s *Server) handleIslands(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out [][]string
	for _, island := range analysis.Islands(s.g) {
		names := make([]string, len(island))
		for i, v := range island {
			names[i] = s.g.Name(v)
		}
		out = append(out, names)
	}
	writeJSON(w, map[string]any{"islands": out})
}

func (s *Server) handleSecure(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ok, v := hierarchy.Secure(s.g)
	resp := map[string]any{"secure": ok}
	if v != nil {
		resp["lower"] = s.g.Name(v.Lower)
		resp["upper"] = s.g.Name(v.Upper)
	}
	writeJSON(w, resp)
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	viols := restrict.NewCombined(s.class).Audit(s.g)
	var out []string
	for _, v := range viols {
		out = append(out, fmt.Sprintf("(%s) %s→%s %s", v.Rule,
			s.g.Name(v.Src), s.g.Name(v.Dst), s.g.Universe().Name(v.Right)))
	}
	writeJSON(w, map[string]any{"violations": out, "clean": len(out) == 0})
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	name := r.URL.Query().Get("x")
	x, ok := s.g.Lookup(name)
	if !ok {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown vertex %q", name))
		return
	}
	type entry struct {
		Right  string `json:"right"`
		Target string `json:"target"`
		Held   bool   `json:"held"`
	}
	var out []entry
	for _, a := range analysis.Profile(s.g, x) {
		out = append(out, entry{
			Right:  s.g.Universe().Name(a.Right),
			Target: s.g.Name(a.Target),
			Held:   a.Held,
		})
	}
	writeJSON(w, map[string]any{"profile": out})
}
