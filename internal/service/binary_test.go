package service

// The compact bulk-load path over HTTP: binary PUT /graph (declared and
// sniffed), binary export, streaming 413s, the base64 WAL record, and
// the binary bootstrap cut with its JSON old-leader fallback.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"takegrant/internal/specimens"
	"takegrant/internal/tgio"
)

// binSpecimen renders a specimen into its .tgb form plus the canonical
// text the server must report back after installing it.
func binSpecimen(t *testing.T, name string) ([]byte, string) {
	t.Helper()
	src, err := specimens.Source(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := tgio.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tgio.EncodeBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), tgio.WriteString(g)
}

func putBytes(t *testing.T, h http.Handler, ct string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPut, "/graph", bytes.NewReader(body))
	if ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestGraphBinaryPut(t *testing.T) {
	bin, want := binSpecimen(t, "fig61")
	h := New().Handler()
	if rec := putBytes(t, h, tgio.BinaryContentType, bin); rec.Code != http.StatusOK {
		t.Fatalf("binary PUT: %d %s", rec.Code, rec.Body.String())
	}
	if rec := serve(t, h, httptest.NewRequest(http.MethodGet, "/graph", nil), nil); rec.Body.String() != want {
		t.Fatalf("installed graph diverged from text form:\n%s", rec.Body.String())
	}
	// Binary export must round-trip to the same world.
	rec := serve(t, h, httptest.NewRequest(http.MethodGet, "/graph?format=tgb", nil), nil)
	if ct := rec.Header().Get("Content-Type"); ct != tgio.BinaryContentType {
		t.Fatalf("export Content-Type = %q", ct)
	}
	g, err := tgio.DecodeBinary(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatalf("export does not decode: %v", err)
	}
	if tgio.WriteString(g) != want {
		t.Fatal("binary export round trip changed the world")
	}
}

// TestGraphBinaryPutSniffed loads the same bytes without the dedicated
// media type: the magic-sniff must route them down the binary path.
func TestGraphBinaryPutSniffed(t *testing.T) {
	bin, want := binSpecimen(t, "military")
	for _, ct := range []string{"", "application/octet-stream"} {
		h := New().Handler()
		if rec := putBytes(t, h, ct, bin); rec.Code != http.StatusOK {
			t.Fatalf("ct=%q: %d %s", ct, rec.Code, rec.Body.String())
		}
		if rec := serve(t, h, httptest.NewRequest(http.MethodGet, "/graph", nil), nil); rec.Body.String() != want {
			t.Fatalf("ct=%q: installed graph diverged", ct)
		}
	}
}

func TestGraphBinaryPutRejectsGarbage(t *testing.T) {
	h := New().Handler()
	if rec := putBytes(t, h, tgio.BinaryContentType, []byte("TGB1 not actually sections")); rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage after magic: %d", rec.Code)
	}
	bin, _ := binSpecimen(t, "fig61")
	if rec := putBytes(t, h, tgio.BinaryContentType, bin[:len(bin)-3]); rec.Code != http.StatusBadRequest {
		t.Fatalf("truncated body: %d", rec.Code)
	}
}

// TestGraphPutOversizeStreams413 sends a text document past the cap
// whose every prefix is valid .tg — the streaming parser may well
// succeed on the truncated read, but the size verdict must win.
func TestGraphPutOversizeStreams413(t *testing.T) {
	var b strings.Builder
	b.WriteString("subject a\n")
	for b.Len() <= maxGraphBytes {
		b.WriteString("# padding so the document crosses the cap without a parse error\n")
	}
	h := New().Handler()
	if rec := putBytes(t, h, "text/plain", []byte(b.String())); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize text: %d %s", rec.Code, rec.Body.String())
	}
}

// TestGraphBinaryCrashRecovery proves the base64 WAL record replays: a
// binary PUT followed by applies, a crash (no Close, so no snapshot),
// and recovery must rebuild the identical world and counters.
func TestGraphBinaryCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	bin, _ := binSpecimen(t, "military")
	srv1, h1 := attach(t, Config{}, dir)
	if rec := putBytes(t, h1, tgio.BinaryContentType, bin); rec.Code != http.StatusOK {
		t.Fatalf("binary PUT: %d %s", rec.Code, rec.Body.String())
	}
	for i := 0; i < 3; i++ {
		body := `{"op":"create","x":"a1","name":"bdoc` + string(rune('0'+i)) + `","kind":"object","rights":"r,w"}`
		if code := do(t, h1, http.MethodPost, "/apply", body, nil); code != http.StatusOK {
			t.Fatalf("apply %d: %d", i, code)
		}
	}
	wantText := serve(t, h1, httptest.NewRequest(http.MethodGet, "/graph", nil), nil).Body.String()
	wantStats := srv1.Stats()
	// Crash: no Close, no snapshot — recovery replays the graphb record.

	srv2, h2 := attach(t, Config{}, dir)
	if got := serve(t, h2, httptest.NewRequest(http.MethodGet, "/graph", nil), nil).Body.String(); got != wantText {
		t.Fatalf("recovered graph diverged:\n got %q\nwant %q", got, wantText)
	}
	if st := srv2.Stats(); st.Revision != wantStats.Revision || st.Generation != wantStats.Generation {
		t.Fatalf("recovered counters = rev %d gen %d, want rev %d gen %d",
			st.Revision, st.Generation, wantStats.Revision, wantStats.Generation)
	}
}

// TestReplicaBootstrapBinary: a live leader answers the bootstrap fetch
// with the .tgb cut; the follower must install it and converge. (The
// binary path is what every bootstrap now takes against a current
// leader — this pins the counters riding in headers.)
func TestReplicaBootstrapBinary(t *testing.T) {
	leader := New()
	if _, err := leader.AttachJournal(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	lh := leader.Handler()
	ts := httptest.NewServer(lh)
	defer ts.Close()
	bin, want := binSpecimen(t, "military")
	if rec := putBytes(t, lh, tgio.BinaryContentType, bin); rec.Code != http.StatusOK {
		t.Fatalf("leader load: %d", rec.Code)
	}

	follower := New()
	if err := follower.StartReplica(ts.URL, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fh := follower.Handler()
	leaderStats := leader.Stats()
	waitFor(t, "binary bootstrap", func() bool {
		st := follower.Stats()
		return st.Revision == leaderStats.Revision && st.Generation == leaderStats.Generation
	})
	if got := serve(t, fh, httptest.NewRequest(http.MethodGet, "/graph", nil), nil).Body.String(); got != want {
		t.Fatal("follower graph diverged from leader's")
	}
}

// TestReplicaBootstrapJSONFallback: an old leader ignores ?format=tgb
// and answers the JSON envelope; the follower must branch on the
// response Content-Type and still bootstrap.
func TestReplicaBootstrapJSONFallback(t *testing.T) {
	src, err := specimens.Source("fig61")
	if err != nil {
		t.Fatal(err)
	}
	g, err := tgio.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	canonical := tgio.WriteString(g)
	mux := http.NewServeMux()
	mux.HandleFunc("/replication/namespaces", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"namespaces": []string{DefaultNamespace}})
	})
	mux.HandleFunc("/replication/snapshot", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, replSnapshot{Revision: g.Revision(), Generation: 1, LastSeq: 1, Text: canonical})
	})
	mux.HandleFunc("/replication/wal", func(w http.ResponseWriter, r *http.Request) {
		// Record 1 is compacted away, forcing the follower to bootstrap.
		if r.URL.Query().Get("after") == "0" {
			writeJSON(w, replWAL{LastSeq: 1, SnapshotNeeded: true})
			return
		}
		writeJSON(w, replWAL{LastSeq: 1})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	follower := New()
	if err := follower.StartReplica(ts.URL, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fh := follower.Handler()
	waitFor(t, "bootstrap from JSON-only leader", func() bool {
		rec := serve(t, fh, httptest.NewRequest(http.MethodGet, "/graph", nil), nil)
		return rec.Body.String() == canonical
	})
}
