package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"takegrant/internal/specimens"
)

// doNS is do with an explicit Content-Type for PUT bodies.
func putGraphNS(t *testing.T, h http.Handler, ns, src string) int {
	t.Helper()
	target := "/graph"
	if ns != "" {
		target += "?ns=" + ns
	}
	req := httptest.NewRequest(http.MethodPut, target, strings.NewReader(src))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code
}

// TestNamespaceRouting pins the ?ns= contract: the default namespace
// answers exactly like the pre-namespace routes, unknown namespaces are
// 404 namespace_not_found, malformed names 400 bad_namespace, and PUT
// /graph is the only route that creates.
func TestNamespaceRouting(t *testing.T) {
	srv := New()
	h := srv.Handler()
	src, err := specimens.Source("fig61")
	if err != nil {
		t.Fatal(err)
	}

	// ?ns=default is the same namespace as no ?ns at all.
	if code := putGraphNS(t, h, "", src); code != http.StatusOK {
		t.Fatalf("PUT /graph = %d", code)
	}
	var g1, g2 string
	req := httptest.NewRequest(http.MethodGet, "/graph", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	g1 = rec.Body.String()
	req = httptest.NewRequest(http.MethodGet, "/graph?ns=default", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	g2 = rec.Body.String()
	if g1 != g2 || g1 == "" {
		t.Errorf("GET /graph and /graph?ns=default disagree:\n%q\n%q", g1, g2)
	}

	// Reads and mutations against a namespace nobody created: 404 with a
	// machine-readable code.
	var body map[string]any
	if code := do(t, h, http.MethodGet, "/secure?ns=ghost", "", &body); code != http.StatusNotFound {
		t.Errorf("GET /secure?ns=ghost = %d, want 404", code)
	} else if body["code"] != "namespace_not_found" {
		t.Errorf("code = %v", body["code"])
	}
	if code := do(t, h, http.MethodPost, "/apply?ns=ghost", `{"op":"create","x":"s","name":"o","rights":"r"}`, &body); code != http.StatusNotFound {
		t.Errorf("POST /apply?ns=ghost = %d, want 404", code)
	}

	// Malformed names never reach the filesystem layout.
	for _, bad := range []string{"..", ".hidden", "UPPER", "a/b", strings.Repeat("x", 65)} {
		if code := do(t, h, http.MethodGet, "/stats", "", nil); code != http.StatusOK {
			t.Fatalf("stats = %d", code)
		}
		req := httptest.NewRequest(http.MethodGet, "/secure?ns="+strings.ReplaceAll(bad, "/", "%2F"), nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("GET /secure?ns=%q = %d, want 400", bad, rec.Code)
		}
	}

	// PUT /graph?ns= creates; the new namespace then serves every route.
	if code := putGraphNS(t, h, "tenant1", src); code != http.StatusOK {
		t.Fatalf("PUT /graph?ns=tenant1 = %d", code)
	}
	if code := do(t, h, http.MethodGet, "/secure?ns=tenant1", "", &body); code != http.StatusOK {
		t.Errorf("GET /secure?ns=tenant1 = %d", code)
	}
	st := srv.Stats()
	if st.Namespaces == nil || st.Namespaces["tenant1"].Vertices == 0 {
		t.Errorf("stats missing tenant1: %+v", st.Namespaces)
	}
}

// TestStressNamespaceIsolation is the multi-tenant guarantee under -race:
// a storm of mutations in namespace A never moves namespace B's revision,
// never touches its cache entries, and never changes its verdicts — while
// B is being read concurrently. The two tenants load DIFFERENT graphs so
// any bleed-through would also flip a verdict, not just a counter.
func TestStressNamespaceIsolation(t *testing.T) {
	srv := New()
	h := srv.Handler()
	military, err := specimens.Source("military")
	if err != nil {
		t.Fatal(err)
	}
	fig61, err := specimens.Source("fig61")
	if err != nil {
		t.Fatal(err)
	}
	// Tenant A (default) takes the writes; tenant B stays quiescent.
	if code := putGraphNS(t, h, "", military); code != http.StatusOK {
		t.Fatalf("load A = %d", code)
	}
	if code := putGraphNS(t, h, "b", fig61); code != http.StatusOK {
		t.Fatalf("load B = %d", code)
	}

	stB0 := srv.Stats().Namespaces["b"]
	var verdictB0 map[string]any
	if code := do(t, h, http.MethodGet, "/secure?ns=b", "", &verdictB0); code != http.StatusOK {
		t.Fatalf("secure B = %d", code)
	}

	const (
		writers     = 4
		createsPerW = 30
		readers     = 4
		readsPerR   = 40
	)
	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			actor := []string{"a1", "a2", "b1", "b2"}[wi]
			for i := 0; i < createsPerW; i++ {
				body := fmt.Sprintf(`{"op":"create","x":"%s","name":"iso_%d_%d","kind":"object","rights":"r,w"}`, actor, wi, i)
				if code := do(t, h, http.MethodPost, "/apply", body, nil); code != http.StatusOK {
					t.Errorf("create %d/%d = %d", wi, i, code)
				}
			}
		}(wi)
	}
	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < readsPerR; i++ {
				var v map[string]any
				if code := do(t, h, http.MethodGet, "/secure?ns=b", "", &v); code != http.StatusOK {
					t.Errorf("secure B mid-storm = %d", code)
				} else if v["secure"] != verdictB0["secure"] {
					t.Errorf("tenant B verdict changed under tenant A's mutations: %v → %v", verdictB0["secure"], v["secure"])
				}
			}
		}()
	}
	wg.Wait()

	st := srv.Stats()
	stB := st.Namespaces["b"]
	if stB.Revision != stB0.Revision || stB.Generation != stB0.Generation {
		t.Errorf("tenant B revision moved: %d/%d → %d/%d",
			stB0.Revision, stB0.Generation, stB.Revision, stB.Generation)
	}
	if stB.Vertices != stB0.Vertices || stB.Edges != stB0.Edges {
		t.Errorf("tenant B graph changed: %d/%d → %d/%d vertices/edges",
			stB0.Vertices, stB0.Edges, stB.Vertices, stB.Edges)
	}
	// A's mutations landed (sanity that the storm actually ran).
	if got, want := st.Namespaces[DefaultNamespace].Vertices, writers*createsPerW; got < want {
		t.Errorf("tenant A has %d vertices, expected at least %d creates", got, want)
	}
	// B's cache was only ever touched by the /secure readers: its entries
	// all live at B's unchanged revision, so one more read is a hit.
	s1 := srv.Stats().Namespaces["b"].CacheEntries
	var v map[string]any
	do(t, h, http.MethodGet, "/secure?ns=b", "", &v)
	if s2 := srv.Stats().Namespaces["b"].CacheEntries; s2 != s1 {
		t.Errorf("tenant B cache grew on a repeat read at a fixed revision: %d → %d", s1, s2)
	}
}
