package service

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"takegrant/internal/analysis"
	"takegrant/internal/derived"
	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/obs"
	"takegrant/internal/qcache"
	"takegrant/internal/restrict"
)

// DefaultNamespace is the namespace a request without ?ns= addresses; it
// preserves every pre-namespace route byte-for-byte.
const DefaultNamespace = "default"

// namespace is one tenant's complete protection system: its own graph,
// revision/generation counters, incrementally maintained hierarchy, §5
// guard, query cache and (when the server owns a data directory) journal.
// Namespaces share nothing but the process: a mutation in one can never
// move another's revision, invalidate its cache entries, or change its
// verdicts.
type namespace struct {
	name string
	// mu is the read/write split: mutations (PUT /graph, POST /apply,
	// replication replay) hold the write lock; every query holds the read
	// lock.
	mu  sync.RWMutex
	g   *graph.Graph
	gen uint64 // bumped per install; part of every cache key
	// engine maintains the rw-level structure incrementally across
	// mutations; class is its current derivation (what the guard, /levels
	// and /audit judge against).
	engine *hierarchy.Engine
	class  *hierarchy.Structure
	// comb is the installed §5 restriction; rearm rebases it onto the
	// fresh structure instead of reallocating it per mutation.
	comb   *restrict.Combined
	logged *restrict.Logged
	guard  *restrict.Guarded
	cache  *qcache.Cache
	// reach holds the incrementally maintained closure rows behind the
	// warm can-share/can-know/can-know-f fast path; reg is the derived-index
	// registry that fans the graph's change stream out to every revision-
	// keyed structure (snapshot, islands, qcache, hierarchy engine, reach).
	reach *analysis.ReachIndex
	reg   *derived.Registry
	// journal, when attached, makes accepted mutations durable; degraded
	// records the first append failure, after which mutations are refused
	// (reads continue). Both guarded by mu.
	journal  *journalState
	degraded error
	// appliedSeq is the replication cursor on a follower: the highest
	// leader WAL seq replayed into this namespace.
	appliedSeq atomic.Uint64
}

// newNamespace returns an empty namespace ready to serve.
func newNamespace(name string, workers int) *namespace {
	n := &namespace{name: name, cache: qcache.New(0)}
	n.install(graph.New(nil), workers)
	return n
}

// install swaps in a new graph, re-arms the guard and starts a fresh
// decision trail. Callers hold the write lock (or own n exclusively).
func (n *namespace) install(g *graph.Graph, workers int) {
	n.gen++
	n.g = g
	if n.engine != nil {
		n.engine.Detach() // stop recording into the outgoing graph
	}
	n.engine = hierarchy.NewEngine(g, workers)
	n.class = n.engine.Structure()
	n.comb = restrict.NewCombined(n.class)
	n.logged = restrict.NewLogged(n.comb)
	n.guard = restrict.NewGuarded(g, n.logged)
	n.cache.Reset()
	// One registry per installed graph fans the change stream out to every
	// derived index. Attach replaces the recorder NewEngine installed: the
	// engine now receives its changes through the registry like every other
	// index, and the closure rows invalidate in the same dispatch.
	n.reach = analysis.NewReachIndex(g)
	n.reg = derived.NewRegistry()
	n.reg.Register(derived.Snapshot(g))
	n.reg.Register(derived.Islands(g))
	n.reg.Register(derived.QCache(n.cache))
	n.reg.Register(n.engine)
	n.reg.Register(n.reach)
	n.reg.Attach(g)
}

// rearm brings the rw-level structure up to date after a successful
// mutation, so the guard's next verdict reflects the post-mutation
// hierarchy. The engine patches the structure in place for monotone
// changes and only re-derives from scratch after destructive ones; the
// decision trail and guard counters persist. Callers hold the write lock.
func (n *namespace) rearm(p *obs.Probe) {
	n.class = n.engine.Rearm(p)
	n.comb.Rebase(n.class)
}

// cached memoizes a decision-procedure result at the current (generation,
// revision), recording the hit/miss on the request's probe. Callers hold
// at least the read lock, which pins the revision for the duration of
// compute.
func (n *namespace) cached(p *obs.Probe, kind, params string, compute func() any) any {
	v, _ := n.cachedErr(p, kind, params, func() (any, error) { return compute(), nil })
	return v
}

// cachedErr is cached for budgeted computations. An aborted computation
// (budget trip, canceled request) returns its error and is NOT cached —
// a partial traversal must never be served later as the verdict at this
// revision.
func (n *namespace) cachedErr(p *obs.Probe, kind, params string, compute func() (any, error)) (any, error) {
	key := qcache.Key{Gen: n.gen, Rev: n.g.Revision(), Kind: kind, Params: params}
	v, hit, err := n.cache.GetOrComputeErr(key, compute)
	if err != nil {
		return nil, err
	}
	if hit {
		p.Add("qcache_hit", 1)
	} else {
		p.Add("qcache_miss", 1)
	}
	return v, nil
}

// refuseDegraded rejects mutations once a journal write has failed: the
// in-memory state may already be ahead of disk, and accepting more would
// widen the gap. Reads never consult this. Callers hold the write lock.
func (n *namespace) refuseDegraded() error {
	if n.degraded == nil {
		return nil
	}
	return fmt.Errorf("mutations disabled after journal failure: %w", n.degraded)
}

// summary snapshots the per-namespace counters for /stats and /metrics.
func (n *namespace) summary() NamespaceStats {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ns := NamespaceStats{
		Revision:     n.g.Revision(),
		Generation:   n.gen,
		Vertices:     n.g.NumVertices(),
		Edges:        n.g.NumEdges(),
		CacheEntries: n.cache.Stats().Size,
		AppliedSeq:   n.appliedSeq.Load(),
		Degraded:     n.degraded != nil,
		Indexes:      n.reg.Stats(),
	}
	if n.journal != nil {
		ns.LastSeq = n.journal.j.Stats().LastSeq
	}
	return ns
}

// validNSName bounds namespace names to 1–64 chars of [a-z0-9], with
// non-leading '-', '_' or '.' allowed. A leading dot is refused, so "."
// and ".." (and any other path escape) can never reach the journal
// directory layout.
func validNSName(name string) bool {
	if len(name) == 0 || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case (c == '-' || c == '_' || c == '.') && i > 0:
		default:
			return false
		}
	}
	return true
}

// nsName resolves a request's target namespace: absent or empty ?ns=
// means the default.
func nsName(r *http.Request) (string, error) {
	name := r.URL.Query().Get("ns")
	if name == "" {
		return DefaultNamespace, nil
	}
	if !validNSName(name) {
		return "", fmt.Errorf("invalid namespace %q (1-64 chars of [a-z0-9._-], no leading punctuation)", name)
	}
	return name, nil
}

// findNS returns the live namespace or nil.
func (s *Server) findNS(name string) *namespace {
	s.nsMu.RLock()
	defer s.nsMu.RUnlock()
	return s.spaces[name]
}

// ensureNS returns the namespace, creating (and, when the server owns a
// data directory, journaling) it on first use.
func (s *Server) ensureNS(name string) (*namespace, error) {
	if n := s.findNS(name); n != nil {
		return n, nil
	}
	s.nsMu.Lock()
	defer s.nsMu.Unlock()
	if n := s.spaces[name]; n != nil {
		return n, nil
	}
	n := newNamespace(name, s.cfg.HierarchyWorkers)
	if s.dataDir != "" {
		if _, err := s.attachNS(n, s.nsDir(name)); err != nil {
			return nil, fmt.Errorf("namespace %q journal: %w", name, err)
		}
	}
	s.spaces[name] = n
	return n, nil
}

// allNS snapshots the live namespaces sorted by name.
func (s *Server) allNS() []*namespace {
	s.nsMu.RLock()
	out := make([]*namespace, 0, len(s.spaces))
	for _, n := range s.spaces {
		out = append(out, n)
	}
	s.nsMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// withNS resolves ?ns= and dispatches to an existing namespace; unknown
// namespaces are 404, malformed names 400. Mutation routes that may
// create namespaces go through withNSCreate instead.
func (s *Server) withNS(h func(*namespace, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name, err := nsName(r)
		if err != nil {
			writeErrCode(w, http.StatusBadRequest, "bad_namespace", err)
			return
		}
		n := s.findNS(name)
		if n == nil {
			writeErrCode(w, http.StatusNotFound, "namespace_not_found",
				fmt.Errorf("unknown namespace %q", name))
			return
		}
		h(n, w, r)
	}
}

// withNSCreate is withNS for PUT /graph: loading a graph into a new name
// creates the namespace (a follower refuses instead — namespaces appear
// there only via replication).
func (s *Server) withNSCreate(h func(*namespace, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name, err := nsName(r)
		if err != nil {
			writeErrCode(w, http.StatusBadRequest, "bad_namespace", err)
			return
		}
		if r.Method == http.MethodPut {
			if err := s.refuseReadOnly(); err != nil {
				writeErrCode(w, http.StatusServiceUnavailable, "read_only", err)
				return
			}
			n, err := s.ensureNS(name)
			if err != nil {
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
			h(n, w, r)
			return
		}
		n := s.findNS(name)
		if n == nil {
			writeErrCode(w, http.StatusNotFound, "namespace_not_found",
				fmt.Errorf("unknown namespace %q", name))
			return
		}
		h(n, w, r)
	}
}

// refuseReadOnly rejects mutations on a replica. Promotion clears the
// flag (and the replicator) under live traffic, hence the atomics.
func (s *Server) refuseReadOnly() error {
	if !s.readOnly.Load() {
		return nil
	}
	if r := s.repl.Load(); r != nil {
		return fmt.Errorf("this node is a read replica of %s; send mutations to the leader", r.leader)
	}
	return fmt.Errorf("this node is read-only; send mutations to the leader")
}
