// Promotion: turning a caught-up read replica into the leader after the
// old one dies. The critical invariant is the leader epoch — the fencing
// token that keeps a resurrected old leader from splitting the brain:
// promotion bumps the epoch past everything this follower ever saw, opens
// fresh journals stamped with it, and writes an immediate snapshot so the
// bump survives a crash. From then on every /replication/* response
// carries the new epoch; the old leader, answering under the smaller one,
// is refused by followers (ErrStaleEpoch) and refuses followers that have
// seen the new one (409 stale_epoch).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"

	"takegrant/internal/obs"
	"takegrant/internal/tgio"
)

// ErrNotReplica reports a promotion request on a node that is not
// tailing a leader; ErrNotCaughtUp one on a replica still behind.
var (
	ErrNotReplica  = errors.New("not a replica")
	ErrNotCaughtUp = errors.New("replica not caught up")
)

// PromoteResult reports a successful promotion.
type PromoteResult struct {
	Epoch   uint64 `json:"epoch"`
	DataDir string `json:"data_dir"`
	// Namespaces is how many protection systems the new leader now owns.
	Namespaces int `json:"namespaces"`
}

// Promote turns this read replica into a leader: stop tailing, bump the
// leader epoch past everything seen, open a journal per namespace under
// dataDir (which must not hold prior state — the replica's in-memory
// state IS the state), snapshot immediately so the epoch bump is
// durable, and start accepting mutations.
//
// Unless force is set, promotion requires the replica to be caught up:
// zero records behind and at least one round that drew level — promoting
// a follower that never caught up would silently discard acknowledged
// leader writes. force exists for the disaster case where the operator
// accepts that loss.
func (s *Server) Promote(dataDir string, force bool) (PromoteResult, error) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	var zero PromoteResult
	r := s.repl.Load()
	if r == nil {
		return zero, fmt.Errorf("%w: already a leader, or never started with -replica-of", ErrNotReplica)
	}
	if dataDir == "" {
		return zero, fmt.Errorf("promotion needs a data directory for the new leader's journal (-promote-data or the request's data_dir)")
	}
	r.mu.Lock()
	behind := r.behind
	everLevel := !r.lastCaughtUp.IsZero()
	seen := r.seenEpoch
	r.mu.Unlock()
	if !force && (behind != 0 || !everLevel) {
		return zero, fmt.Errorf("%w (%d records behind, drew level: %v); retry once level or pass force",
			ErrNotCaughtUp, behind, everLevel)
	}
	// The directory must be fresh: attaching over prior state would
	// replay it over the replica's live graphs.
	if entries, err := os.ReadDir(dataDir); err == nil && len(entries) > 0 {
		return zero, fmt.Errorf("promote data directory %s is not empty; a new leader's journal must start fresh", dataDir)
	}

	// Stop tailing first: after this no replication goroutine touches the
	// namespaces, so attaching journals below owns them via their locks.
	r.stop()

	newEpoch := s.epoch.Load()
	if seen > newEpoch {
		newEpoch = seen
	}
	newEpoch++
	s.raiseEpoch(newEpoch)

	s.dataDir = dataDir
	spaces := s.allNS()
	for _, n := range spaces {
		n.mu.Lock()
		// Normalize to canonical form first: this node's graph was built by
		// replaying the old leader's WAL, so its internal ordering reflects
		// that replay. Its own future recovery and its followers' bootstraps
		// will instead build from the canonical snapshot text — re-parse
		// that text now so all three orderings agree and the promotion
		// chain serves byte-identical responses, not merely equivalent ones.
		rev, gen := n.g.Revision(), n.gen
		g, err := tgio.ParseString(tgio.WriteString(n.g))
		if err != nil {
			n.mu.Unlock()
			s.dataDir = ""
			return zero, fmt.Errorf("namespace %q: canonical state does not re-parse: %w", n.name, err)
		}
		n.install(g, s.cfg.HierarchyWorkers)
		g.RestoreRevision(rev)
		n.gen = gen
		recovered, err := s.attachNS(n, s.nsDir(n.name))
		if err == nil && recovered {
			err = fmt.Errorf("directory %s already held journal state", s.nsDir(n.name))
		}
		if err != nil {
			n.mu.Unlock()
			// Half-promoted is unsafe to serve writes from; leave readOnly
			// set so mutations keep bouncing, and report loudly.
			s.dataDir = ""
			return zero, fmt.Errorf("namespace %q: opening new leader journal: %w", n.name, err)
		}
		// Continue the fleet's WAL numbering: the fresh journal's cursor
		// advances to the last seq this replica applied, so the snapshot
		// below covers seqs 1..applied and the first post-promotion Append
		// is applied+1. Without this the new journal would restart at seq 1
		// over non-empty state, and Follow(0) would hand a fresh follower a
		// "gapless" WAL tail that assumes an empty base graph.
		if err := n.journal.j.AdvanceSeq(n.appliedSeq.Load()); err != nil {
			n.mu.Unlock()
			s.dataDir = ""
			return zero, fmt.Errorf("namespace %q: advancing WAL cursor: %w", n.name, err)
		}
		// Durability point: the snapshot persists the replica's exact state
		// under the new epoch, so a crash right here restarts as a leader
		// at the bumped epoch, not as a confused follower.
		s.snapshotLocked(n)
		n.mu.Unlock()
	}

	s.repl.Store(nil)
	s.readOnly.Store(false)
	s.logger.LogAttrs(context.Background(), slog.LevelInfo, "promotion",
		slog.String("old_leader", r.leader),
		slog.Uint64("epoch", newEpoch),
		slog.String("data_dir", dataDir),
		slog.Int("namespaces", len(spaces)),
	)
	s.flight.Record(obs.FlightEvent{
		Kind:   "promotion",
		Detail: fmt.Sprintf("promoted to leader at epoch %d (was replica of %s)", newEpoch, r.leader),
	})
	return PromoteResult{Epoch: newEpoch, DataDir: dataDir, Namespaces: len(spaces)}, nil
}

// promoteRequest is the optional POST /admin/promote body.
type promoteRequest struct {
	// DataDir overrides the server's configured promote directory.
	DataDir string `json:"data_dir,omitempty"`
	// Force skips the caught-up gate (accepts losing un-replicated
	// leader writes).
	Force bool `json:"force,omitempty"`
}

// handlePromote is POST /admin/promote: the operator's (or an
// orchestrator's) lever for failing over to this replica.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req promoteRequest
	if r.Body != nil && r.ContentLength != 0 {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	dataDir := req.DataDir
	if dataDir == "" {
		dataDir = s.cfg.PromoteDataDir
	}
	res, err := s.Promote(dataDir, req.Force)
	if err != nil {
		code := "promote_failed"
		switch {
		case errors.Is(err, ErrNotReplica):
			code = "not_replica"
		case errors.Is(err, ErrNotCaughtUp):
			code = "not_caught_up"
		}
		writeErrCode(w, http.StatusConflict, code, err)
		return
	}
	writeJSON(w, res)
}
