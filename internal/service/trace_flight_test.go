package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"takegrant/internal/fault"
	"takegrant/internal/obs"
	"takegrant/internal/specimens"
)

func TestClientTraceparentHonored(t *testing.T) {
	ts := newTestServer(t)
	loadSpecimen(t, ts, "fig61")

	// A W3C traceparent joins the caller's trace: same trace ID out, a
	// fresh span.
	tc := obs.NewTraceContext()
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/graph", nil)
	req.Header.Set("traceparent", tc.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if got := resp.Header.Get("X-Trace-Id"); got != tc.TraceID {
		t.Errorf("X-Trace-Id = %q, want caller's trace %q", got, tc.TraceID)
	}
	out, ok := obs.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok || out.TraceID != tc.TraceID {
		t.Errorf("response traceparent %q does not continue trace %q",
			resp.Header.Get("traceparent"), tc.TraceID)
	}
	if out.SpanID == tc.SpanID {
		t.Error("server reused the caller's span ID instead of starting its own span")
	}

	// A legacy 16-hex X-Trace-Id is adopted, zero-padded to trace-ID width
	// the same way on every node.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/graph", nil)
	req.Header.Set("X-Trace-Id", "00f067aa0ba902b7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if got := resp.Header.Get("X-Trace-Id"); got != "000000000000000000f067aa0ba902b7" {
		t.Errorf("legacy adoption: X-Trace-Id = %q", got)
	}

	// Garbage headers never poison the trace: a fresh valid one is minted.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/graph", nil)
	req.Header.Set("traceparent", "not-a-traceparent")
	req.Header.Set("X-Trace-Id", "ZZZZ")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if _, ok := obs.ParseTraceparent(resp.Header.Get("traceparent")); !ok {
		t.Errorf("fresh traceparent %q invalid", resp.Header.Get("traceparent"))
	}
}

// TestShardRedirectCarriesTraceAcrossNodes pins the cross-node trace
// contract: a query redirected 307 to the namespace's owner logs and
// records the SAME trace ID on both nodes, because Go's http.Client
// re-sends the traceparent header when following the redirect.
func TestShardRedirectCarriesTraceAcrossNodes(t *testing.T) {
	var hA, hB http.Handler
	tsA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { hA.ServeHTTP(w, r) }))
	defer tsA.Close()
	tsB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { hB.ServeHTTP(w, r) }))
	defer tsB.Close()
	peers := tsA.URL + "," + tsB.URL

	sA, sB := New(), New()
	var err error
	if hA, err = sA.ShardRedirect(peers, tsA.URL, "", sA.Handler()); err != nil {
		t.Fatal(err)
	}
	if hB, err = sB.ShardRedirect(peers, tsB.URL, "", sB.Handler()); err != nil {
		t.Fatal(err)
	}

	// Find a namespace the ring assigns to B: probe A without following
	// redirects until one answers 307.
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	ownedByB := ""
	for i := 0; i < 64 && ownedByB == ""; i++ {
		name := fmt.Sprintf("tenant%d", i)
		resp, err := noFollow.Get(tsA.URL + "/graph?ns=" + name)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		if resp.StatusCode == http.StatusTemporaryRedirect {
			if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, tsB.URL) {
				t.Fatalf("redirect to %q, want owner %s", loc, tsB.URL)
			}
			ownedByB = name
		}
	}
	if ownedByB == "" {
		t.Fatal("ring assigned all 64 probe namespaces to A; expected a split")
	}

	// Create the namespace on its owner, then query it THROUGH A with a
	// client-supplied trace; the default client follows the 307.
	src, err := specimens.Source("fig61")
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, tsB.URL+"/graph?ns="+ownedByB, strings.NewReader(src))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT on owner = %d", resp.StatusCode)
	}

	tc := obs.NewTraceContext()
	req, _ = http.NewRequest(http.MethodGet, tsA.URL+"/graph?ns="+ownedByB, nil)
	req.Header.Set("traceparent", tc.Traceparent())
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("redirected GET = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != tc.TraceID {
		t.Errorf("owner answered trace %q, want the client's %q", got, tc.TraceID)
	}

	// Both nodes recorded the hop under the same trace: A a redirect
	// event, B the served request.
	findEvent := func(s *Server, kind string) *obs.FlightEvent {
		for _, ev := range s.flight.Snapshot() {
			if ev.Kind == kind && ev.Trace == tc.TraceID {
				return &ev
			}
		}
		return nil
	}
	redir := findEvent(sA, "redirect")
	if redir == nil {
		t.Fatalf("node A has no redirect event for trace %s: %+v", tc.TraceID, sA.flight.Snapshot())
	}
	if redir.NS != ownedByB || !strings.Contains(redir.Detail, tsB.URL) {
		t.Errorf("redirect event = %+v", redir)
	}
	served := findEvent(sB, "request")
	if served == nil {
		t.Fatalf("node B has no request event for trace %s", tc.TraceID)
	}
	if served.Route != "/graph" || served.Code != http.StatusOK {
		t.Errorf("served event = %+v", served)
	}
}

// TestReplicaPollTraceCorrelatesWithLeader pins the other outward path:
// a follower's poll round carries its trace to the leader, so the
// follower's replication_round line and the leader's request lines share
// one trace ID.
func TestReplicaPollTraceCorrelatesWithLeader(t *testing.T) {
	leader := New()
	if _, err := leader.AttachJournal(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	var lmu sync.Mutex
	var lbuf bytes.Buffer
	leader.SetLogger(slog.New(slog.NewJSONHandler(lockedWriter{&lmu, &lbuf}, nil)))
	lh := leader.Handler()
	ts := httptest.NewServer(lh)
	defer ts.Close()

	src, err := specimens.Source("fig61")
	if err != nil {
		t.Fatal(err)
	}
	if code := putGraphNS(t, lh, "", src); code != http.StatusOK {
		t.Fatalf("leader load = %d", code)
	}

	follower := New()
	var fmu sync.Mutex
	var fbuf bytes.Buffer
	follower.SetLogger(slog.New(slog.NewJSONHandler(lockedWriter{&fmu, &fbuf}, nil)))
	if err := follower.StartReplica(ts.URL, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	waitFor(t, "follower catch-up", func() bool {
		return follower.Stats().Revision == leader.Stats().Revision
	})
	// Traffic after attach exercises the tail-shipping path, which logs a
	// non-quiet round.
	if code := do(t, lh, http.MethodPost, "/apply",
		`{"op":"create","x":"low","name":"scratch","kind":"object","rights":"r"}`, nil); code != http.StatusOK {
		t.Fatalf("leader apply = %d", code)
	}
	leaderRev := leader.Stats().Revision
	waitFor(t, "follower tail catch-up", func() bool {
		return follower.Stats().Revision == leaderRev
	})

	// Find a replication_round trace on the follower and demand the
	// leader logged requests under it.
	waitFor(t, "round logged on both nodes", func() bool {
		fmu.Lock()
		flog := fbuf.String()
		fmu.Unlock()
		for _, line := range strings.Split(flog, "\n") {
			if !strings.Contains(line, `"msg":"replication_round"`) {
				continue
			}
			var rec struct {
				TraceID string `json:"trace_id"`
			}
			if json.Unmarshal([]byte(line), &rec) != nil || len(rec.TraceID) != 32 {
				continue
			}
			lmu.Lock()
			onLeader := strings.Contains(lbuf.String(), rec.TraceID)
			lmu.Unlock()
			if onLeader {
				return true
			}
		}
		return false
	})

	// The round also reached the follower's flight recorder, and
	// /stats surfaces the replication state tgtop reads.
	found := false
	for _, ev := range follower.flight.Snapshot() {
		if ev.Kind == "replication" && strings.Contains(ev.Detail, "applied") {
			found = true
		}
	}
	if !found {
		t.Errorf("no replication flight event: %+v", follower.flight.Snapshot())
	}
	if rs := follower.Stats().Replication; rs == nil || rs.Rounds == 0 {
		t.Errorf("replication stats = %+v", rs)
	}
}

// TestFlightRecorderReplaysFaults pins the post-incident contract: after
// an injected panic, GET /debug/flight replays the recent events — the
// healthy requests, the guard verdicts, and the panic itself — and the
// ring was dumped to the crash sink.
func TestFlightRecorderReplaysFaults(t *testing.T) {
	defer fault.Reset()
	srv := New()
	var crash bytes.Buffer
	srv.crashOut = &crash
	h := srv.Handler()
	ts := httptest.NewServer(h)
	defer ts.Close()

	src, err := specimens.Source("fig61")
	if err != nil {
		t.Fatal(err)
	}
	if code := putGraphNS(t, h, "", src); code != http.StatusOK {
		t.Fatalf("load = %d", code)
	}
	// A refused mutation (read-up) leaves a guard event.
	if code := do(t, h, http.MethodPost, "/apply",
		`{"op":"take","x":"low","y":"mid","z":"secret","rights":"r"}`, nil); code != http.StatusForbidden {
		t.Fatalf("read-up take = %d, want 403", code)
	}

	fault.Set("http:/query/can-share", func() { panic("injected: flight test") })
	resp, err := http.Get(ts.URL + "/query/can-share?right=r&x=low&y=secret")
	if err != nil {
		t.Fatal(err)
	}
	panicTrace := resp.Header.Get("X-Trace-Id")
	if readAll(t, resp); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking route = %d, want 500", resp.StatusCode)
	}
	fault.Clear("http:/query/can-share")

	var flight struct {
		Size   int               `json:"size"`
		Events []obs.FlightEvent `json:"events"`
	}
	resp, err = http.Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, &flight)
	if flight.Size != DefaultFlightSize {
		t.Errorf("ring size = %d, want %d", flight.Size, DefaultFlightSize)
	}
	kinds := map[string]int{}
	var panicEv, guardEv *obs.FlightEvent
	for i, ev := range flight.Events {
		kinds[ev.Kind]++
		if ev.Kind == "panic" {
			panicEv = &flight.Events[i]
		}
		if ev.Kind == "guard" {
			guardEv = &flight.Events[i]
		}
	}
	if kinds["request"] < 3 || panicEv == nil || guardEv == nil {
		t.Fatalf("flight kinds = %v", kinds)
	}
	if panicEv.Trace != panicTrace || !strings.Contains(panicEv.Detail, "injected: flight test") {
		t.Errorf("panic event = %+v, want trace %s", panicEv, panicTrace)
	}
	if !strings.Contains(guardEv.Detail, "refused") || guardEv.Route != "/apply" {
		t.Errorf("guard event = %+v", guardEv)
	}
	for i := 1; i < len(flight.Events); i++ {
		if flight.Events[i].Seq <= flight.Events[i-1].Seq {
			t.Fatalf("events not ordered oldest-first: %d after %d",
				flight.Events[i].Seq, flight.Events[i-1].Seq)
		}
	}

	// The panic dumped the ring to the crash sink.
	dump := crash.String()
	if !strings.Contains(dump, "flight recorder") || !strings.Contains(dump, panicTrace) {
		t.Errorf("crash dump missing ring or trace:\n%s", dump)
	}
}

// TestFlightJournalDegradedEvent pins the journal-latch event: an append
// failure that flips degraded mode leaves a journal event in the ring.
func TestFlightJournalDegradedEvent(t *testing.T) {
	defer fault.Reset()
	srv := New()
	if _, err := srv.AttachJournal(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()
	src, err := specimens.Source("fig61")
	if err != nil {
		t.Fatal(err)
	}
	if code := putGraphNS(t, h, "", src); code != http.StatusOK {
		t.Fatalf("load = %d", code)
	}

	fault.SetErr("journal:append-write", func() error { return fmt.Errorf("injected disk death") })
	code := do(t, h, http.MethodPost, "/apply",
		`{"op":"create","x":"low","name":"doomed","kind":"object","rights":"r"}`, nil)
	fault.Clear("journal:append-write")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("apply on dead journal = %d, want 503", code)
	}

	found := false
	for _, ev := range srv.flight.Snapshot() {
		if ev.Kind == "journal" && strings.Contains(ev.Detail, "degraded") {
			found = true
		}
	}
	if !found {
		t.Errorf("no journal flight event: %+v", srv.flight.Snapshot())
	}
}

// TestMetricsExpositionLints runs the full CI lint against a live scrape:
// structural exposition rules plus the histogram contract (ascending le,
// +Inf == _count, _sum present).
func TestMetricsExpositionLints(t *testing.T) {
	ts := newTestServer(t)
	loadSpecimen(t, ts, "fig61")
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/query/can-share?right=r&x=low&y=secret")
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if errs := obs.LintProm(body); len(errs) != 0 {
		t.Fatalf("lint errors on live scrape: %v", errs)
	}
	// The latency family is a real histogram now.
	if !strings.Contains(body, "# TYPE takegrant_request_latency_seconds histogram") {
		t.Error("latency family is not a histogram")
	}
	if !strings.Contains(body, `takegrant_request_latency_seconds_bucket{route="/query/can-share",code_class="2xx",le="+Inf"}`) {
		t.Errorf("missing +Inf bucket for can-share:\n%s", body)
	}
	// The scraped distribution answers quantiles — what tgtop computes.
	fams, err := obs.ParseProm(body)
	if err != nil {
		t.Fatal(err)
	}
	dist := obs.HistogramDist(fams, "takegrant_request_latency_seconds", func(l map[string]string) bool {
		return l["route"] == "/query/can-share"
	})
	if dist.Count != 3 || dist.Quantile(0.5) <= 0 {
		t.Errorf("scraped dist count=%d p50=%v", dist.Count, dist.Quantile(0.5))
	}
}
