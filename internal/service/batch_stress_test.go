package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Two fig61 variants the stress mutator alternates between. Dropping
// mid's r-edge to secret removes the only source low can reach, so
// can•share(r, low, secret) flips verdict with every swap — a reader mixing
// revisions produces a detectably wrong answer, not a silently stale one.
const stressGraphA = `
subject low
subject high
object lowbb
object secret
object mid
edge low lowbb r,w
edge high secret r,w
edge high lowbb r
edge low mid t
edge mid secret r
`

const stressGraphB = `
subject low
subject high
object lowbb
object secret
object mid
edge low lowbb r,w
edge high secret r,w
edge high lowbb r
edge low mid t
`

// stressQueries is the fixed query set every batch carries.
var stressQueries = []BatchQuery{
	{ID: "share", Kind: "can-share", Right: "r", X: "low", Y: "secret"},
	{ID: "know", Kind: "can-know", X: "low", Y: "secret"},
	{ID: "knowf", Kind: "can-know-f", X: "low", Y: "secret"},
	{ID: "steal", Kind: "can-steal", Right: "r", X: "low", Y: "secret"},
	{ID: "held", Kind: "can-share", Right: "r", X: "high", Y: "lowbb"},
}

// stressState keys the oracle table: a batch response names the exact
// graph state it was decided against.
type stressState struct{ gen, rev uint64 }

// runStressScript drives the deterministic mutation sequence against a
// server, calling visit after every accepted mutation. The sequence only
// uses deterministic operations (PUT /graph swaps, a guarded remove), so
// two servers fed the same script march through identical (generation,
// revision) states.
func runStressScript(t *testing.T, h http.Handler, cycles int, visit func()) {
	t.Helper()
	apply := func(body string) {
		req := httptest.NewRequest(http.MethodPost, "/apply", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if rec := serve(t, h, req, nil); rec.Code != http.StatusOK {
			t.Fatalf("POST /apply %s: %d %s", body, rec.Code, rec.Body.String())
		}
	}
	for i := 0; i < cycles; i++ {
		putGraph(t, h, stressGraphA)
		visit()
		apply(`{"op":"remove","x":"low","y":"lowbb","rights":"w"}`)
		visit()
		putGraph(t, h, stressGraphB)
		visit()
		apply(`{"op":"remove","x":"low","y":"lowbb","rights":"w"}`)
		visit()
	}
}

// TestFaultBatchStressMatchesSequential hammers POST /query/batch from
// several goroutines while a mutator swaps and edits the graph, and checks
// every batch against an oracle built sequentially beforehand: for each
// (generation, revision) the mutation script can produce, the verdicts the
// single-query routes return at that state. Any torn read — a batch mixing
// two revisions, or a stale snapshot surviving a mutation — either reports
// a (gen, rev) the script never produced or disagrees with the oracle.
// Run with -race: the snapshot and island index are shared across workers.
func TestFaultBatchStressMatchesSequential(t *testing.T) {
	const cycles = 6
	const readers = 4

	// Sequential oracle run. The initial install is part of the sequence —
	// the live server repeats it — so the (generation, revision) trajectories
	// of the two servers coincide exactly.
	ref := New()
	rh := ref.Handler()
	oracle := make(map[stressState][]bool)
	record := func() {
		st := ref.Stats()
		verdicts := make([]bool, len(stressQueries))
		for i, q := range stressQueries {
			verdicts[i] = singleVerdict(t, rh, q)
		}
		oracle[stressState{st.Generation, st.Revision}] = verdicts
	}
	putGraph(t, rh, stressGraphA)
	record()
	runStressScript(t, rh, cycles, record)
	// The two variants must actually disagree somewhere, or the oracle
	// cannot catch revision mixing.
	flips := false
	var first []bool
	for _, v := range oracle {
		if first == nil {
			first = v
			continue
		}
		for i := range v {
			if v[i] != first[i] {
				flips = true
			}
		}
	}
	if !flips {
		t.Fatal("stress script never changes any verdict; the oracle is vacuous")
	}

	// Concurrent run against a fresh server marching through the same states.
	srv := New()
	h := srv.Handler()
	putGraph(t, h, stressGraphA) // install before readers start
	body, err := json.Marshal(stressQueries)
	if err != nil {
		t.Fatal(err)
	}
	var stop, failed atomic.Bool
	var checked atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fail := func(format string, args ...any) {
				t.Errorf(format, args...)
				failed.Store(true)
			}
			for !stop.Load() && !failed.Load() {
				req := httptest.NewRequest(http.MethodPost, "/query/batch", bytes.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					fail("batch: %d %s", rec.Code, rec.Body.String())
					return
				}
				var resp BatchResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					fail("batch: bad JSON %q: %v", rec.Body.String(), err)
					return
				}
				want, ok := oracle[stressState{resp.Generation, resp.Revision}]
				if !ok {
					fail("batch reported (gen=%d, rev=%d), a state the script never produced",
						resp.Generation, resp.Revision)
					return
				}
				for i, res := range resp.Results {
					if res.Status != http.StatusOK || res.Verdict == nil {
						fail("item %q at (gen=%d, rev=%d): status %d error %q",
							res.ID, resp.Generation, resp.Revision, res.Status, res.Error)
						return
					}
					if *res.Verdict != want[i] {
						fail("item %q at (gen=%d, rev=%d): batch says %v, sequential oracle says %v",
							res.ID, resp.Generation, resp.Revision, *res.Verdict, want[i])
						return
					}
				}
				checked.Add(1)
			}
		}()
	}
	// Hold each graph state until at least one batch lands in it, so the
	// mutator cannot outrun the readers and leave states unobserved.
	waitProgress := func() {
		start := checked.Load()
		deadline := time.Now().Add(2 * time.Second)
		for checked.Load() == start && !failed.Load() && time.Now().Before(deadline) {
			time.Sleep(50 * time.Microsecond)
		}
	}
	waitProgress()
	runStressScript(t, h, cycles, waitProgress)
	stop.Store(true)
	wg.Wait()
	if checked.Load() == 0 {
		t.Fatal("no batch completed during the stress window")
	}
	t.Logf("verified %d batches against the sequential oracle", checked.Load())
}
