package service

import (
	"bytes"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRouteMetricsQuantiles(t *testing.T) {
	// 100 samples 1ms..100ms: the old sorted window answered exactly
	// 51ms/90ms/99ms at p50/p90/p99; the log-bucketed histogram must land
	// within one sub-bucket (≤ ~12.5% relative error) of the same ranks.
	var rm routeMetrics
	for i := 1; i <= 100; i++ {
		rm.observe(DefaultNamespace, http.StatusOK, time.Duration(i)*time.Millisecond)
	}
	snap, byClass := rm.merged()
	if snap.Count != 100 || byClass["2xx"] != 100 {
		t.Fatalf("count = %d, by_class = %v", snap.Count, byClass)
	}
	for _, c := range []struct {
		q    float64
		want time.Duration
	}{{0.5, 51 * time.Millisecond}, {0.9, 90 * time.Millisecond}, {0.99, 99 * time.Millisecond}} {
		got := snap.Quantile(c.q)
		rel := float64(got-c.want) / float64(c.want)
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.125 {
			t.Errorf("q%v = %v, want %v ± 12.5%%", c.q, got, c.want)
		}
	}

	// Single sample: every quantile answers within its own bucket.
	rm = routeMetrics{}
	rm.observe(DefaultNamespace, http.StatusOK, 7*time.Millisecond)
	snap, _ = rm.merged()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := snap.Quantile(q); got < 7*time.Millisecond || got > 8*time.Millisecond {
			t.Errorf("single-sample q%v = %v, want ~7ms", q, got)
		}
	}
}

func TestRouteMetricsClassAndNamespaceSplit(t *testing.T) {
	var rm routeMetrics
	rm.observe(DefaultNamespace, http.StatusOK, time.Millisecond)
	rm.observe(DefaultNamespace, http.StatusForbidden, 2*time.Millisecond)
	rm.observe("tenant-a", http.StatusOK, 3*time.Millisecond)
	rm.observe("tenant-a", http.StatusInternalServerError, 4*time.Millisecond)

	snap, byClass := rm.merged()
	if snap.Count != 4 {
		t.Fatalf("count = %d", snap.Count)
	}
	want := map[string]uint64{"2xx": 2, "4xx": 1, "5xx": 1}
	for class, n := range want {
		if byClass[class] != n {
			t.Errorf("by_class[%s] = %d, want %d", class, byClass[class], n)
		}
	}

	m := newMetrics()
	m.routes["/x"] = &rm
	series := m.series()
	if len(series) != 4 {
		t.Fatalf("series = %d, want 4 (route×class×ns)", len(series))
	}
	// Deterministic order: class ascending, default ns before tenant-a
	// within a class.
	if series[0].class != "2xx" || series[0].ns != DefaultNamespace ||
		series[1].class != "2xx" || series[1].ns != "tenant-a" {
		t.Errorf("series order: %+v", series)
	}
}

func TestMetricsNSBoundsCardinality(t *testing.T) {
	for raw, want := range map[string]string{
		"":          DefaultNamespace,
		"default":   DefaultNamespace,
		"tenant-a":  "tenant-a",
		"NOT VALID": "invalid",
		"..":        "invalid",
	} {
		req, _ := http.NewRequest(http.MethodGet, "/x?ns="+strings.ReplaceAll(raw, " ", "%20"), nil)
		if got := metricsNS(req); got != want {
			t.Errorf("metricsNS(ns=%q) = %q, want %q", raw, got, want)
		}
	}
}

func TestInstrumentConcurrentLoad(t *testing.T) {
	s := New()
	h := s.instrument("/x", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				req, _ := http.NewRequest(http.MethodGet, "/x", nil)
				rec := newRecorder()
				h.ServeHTTP(rec, req)
				if rec.status != http.StatusNoContent {
					t.Errorf("status %d", rec.status)
					return
				}
				if rec.header.Get("X-Trace-Id") == "" {
					t.Error("missing X-Trace-Id")
					return
				}
			}
		}()
	}
	wg.Wait()
	snap := s.metrics.snapshot()
	if got := snap["/x"].Count; got != workers*perWorker {
		t.Errorf("count = %d, want %d", got, workers*perWorker)
	}
	if snap["/x"].SumUs <= 0 {
		t.Error("latency sum not accumulated")
	}
}

// newRecorder is a minimal concurrent-safe ResponseWriter for load tests
// (httptest.ResponseRecorder is fine too, but this pins exactly what the
// instrument wrapper touches).
type recorder struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func newRecorder() *recorder { return &recorder{header: make(http.Header), status: http.StatusOK} }

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(code int)        { r.status = code }
func (r *recorder) Write(b []byte) (int, error) { return r.buf.Write(b) }

func TestEveryResponseCarriesTraceID(t *testing.T) {
	ts := newTestServer(t)
	loadSpecimen(t, ts, "fig61")
	seen := make(map[string]bool)
	for _, path := range []string{
		"/graph", "/render", "/query/can-share?right=r&x=low&y=secret",
		"/levels", "/stats", "/metrics",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		id := resp.Header.Get("X-Trace-Id")
		tp := resp.Header.Get("traceparent")
		readAll(t, resp)
		if len(id) != 32 {
			t.Errorf("%s: trace ID %q not 32 hex digits", path, id)
		}
		if !strings.HasPrefix(tp, "00-"+id+"-") {
			t.Errorf("%s: traceparent %q does not carry trace ID %q", path, tp, id)
		}
		if seen[id] {
			t.Errorf("%s: trace ID %q reused", path, id)
		}
		seen[id] = true
	}
}

func TestTraceIDAppearsInStructuredLog(t *testing.T) {
	srv := New()
	var buf bytes.Buffer
	var mu sync.Mutex
	srv.SetLogger(slog.New(slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil)))
	h := srv.Handler()

	req, _ := http.NewRequest(http.MethodPut, "/graph", strings.NewReader("subject a\n"))
	rec := newRecorder()
	h.ServeHTTP(rec, req)
	if rec.status != http.StatusOK {
		t.Fatalf("PUT /graph: %d %s", rec.status, rec.buf.String())
	}
	traceID := rec.header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("no trace ID on response")
	}
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	if !strings.Contains(logged, fmt.Sprintf("%q:%q", "trace_id", traceID)) {
		t.Errorf("slog output missing trace_id %q:\n%s", traceID, logged)
	}
	if !strings.Contains(logged, `"route":"/graph"`) {
		t.Errorf("slog output missing route:\n%s", logged)
	}

	// A mutation logs its own line under the same trace ID.
	buf.Reset()
	req, _ = http.NewRequest(http.MethodPost, "/apply",
		strings.NewReader(`{"op":"create","x":"a","name":"f","kind":"object","rights":"r"}`))
	req.Header.Set("Content-Type", "application/json")
	rec = newRecorder()
	h.ServeHTTP(rec, req)
	if rec.status != http.StatusOK {
		t.Fatalf("POST /apply: %d %s", rec.status, rec.buf.String())
	}
	mutTrace := rec.header.Get("X-Trace-Id")
	mu.Lock()
	logged = buf.String()
	mu.Unlock()
	if !strings.Contains(logged, `"mutation"`) || !strings.Contains(logged, `"verdict":"applied"`) {
		t.Errorf("mutation line missing:\n%s", logged)
	}
	if strings.Count(logged, mutTrace) < 2 { // mutation line + request line
		t.Errorf("trace %q should appear in both mutation and request lines:\n%s", mutTrace, logged)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	b  *bytes.Buffer
}

func (w lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

// metricValue extracts the value of the first series matching prefix from
// a Prometheus exposition body.
func metricValue(t *testing.T, body, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			sp := strings.LastIndexByte(line, ' ')
			v, err := strconv.ParseFloat(line[sp+1:], 64)
			if err != nil {
				t.Fatalf("bad value in %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no series with prefix %q in:\n%s", prefix, body)
	return 0
}

func TestMetricsMatchesStats(t *testing.T) {
	ts := newTestServer(t)
	loadSpecimen(t, ts, "fig61")

	// Drive some traffic: queries (cache miss then hit), a refused and an
	// applied mutation.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/query/can-share?right=r&x=low&y=secret")
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
	}
	resp, err := http.Post(ts.URL+"/apply", "application/json",
		strings.NewReader(`{"op":"take","x":"low","y":"mid","z":"secret","rights":"r"}`)) // read-up: refused
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	resp, err = http.Post(ts.URL+"/apply", "application/json",
		strings.NewReader(`{"op":"create","x":"low","name":"scratch","kind":"object","rights":"r,w"}`))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)

	// Snapshot /stats then /metrics with no traffic in between; the two
	// expositions must agree on every shared counter. (The /stats request
	// itself bumps only the /stats route count, which we don't compare.)
	var st Stats
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, &st)
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := readAll(t, resp)

	checks := map[string]float64{
		// Every can-share request in this test answered 200, so the 2xx
		// series carries the route's whole count.
		`takegrant_requests_total{route="/query/can-share",code_class="2xx"}`: float64(st.Routes["/query/can-share"].Count),
		"takegrant_qcache_hits_total ":                                        float64(st.Cache.Hits),
		"takegrant_qcache_misses_total ":                                      float64(st.Cache.Misses),
		`takegrant_guard_verdicts_total{verdict="applied"}`:                   float64(st.Guard.Applied),
		`takegrant_guard_verdicts_total{verdict="refused"}`:                   float64(st.Guard.Refused),
		"takegrant_graph_vertices ":                                           float64(st.Vertices),
		"takegrant_graph_edges ":                                              float64(st.Edges),
		"takegrant_graph_revision ":                                           float64(st.Revision),
	}
	for prefix, want := range checks {
		if got := metricValue(t, body, prefix); got != want {
			t.Errorf("%s = %v, /stats says %v", prefix, got, want)
		}
	}

	// The cache must have seen both a miss and hits from the repeated query.
	if st.Cache.PerKind["can-share"].Misses < 1 || st.Cache.PerKind["can-share"].Hits < 2 {
		t.Errorf("per-kind cache stats = %+v", st.Cache.PerKind)
	}
	if metricValue(t, body, `takegrant_qcache_kind_hits_total{kind="can-share"}`) !=
		float64(st.Cache.PerKind["can-share"].Hits) {
		t.Error("per-kind hits disagree between /stats and /metrics")
	}

	// Decision-procedure phases reached the exposition: the first (miss)
	// can-share query consulted the closure index under a probe.
	if v := metricValue(t, body, `takegrant_phase_executions_total{procedure="/query/can-share",phase="closure_index"}`); v < 1 {
		t.Errorf("phase executions = %v", v)
	}
	// The first compute found no warm rows (a closure_index miss, built via
	// the fallback search); the repeats were qcache hits and never computed.
	if v := metricValue(t, body, `takegrant_phase_work_total{procedure="/query/can-share",phase="closure_index",kind="misses"}`); v < 1 {
		t.Errorf("closure_index misses = %v", v)
	}
	if v := metricValue(t, body, `takegrant_fastpath_total{fast_path="search"}`); v < 1 {
		t.Errorf("fastpath search = %v", v)
	}
	if v := metricValue(t, body, `takegrant_index_misses_total{index="reach_closure"}`); v != float64(st.Indexes["reach_closure"].Misses) {
		t.Errorf("reach_closure misses = %v, /stats says %v", v, st.Indexes["reach_closure"].Misses)
	}
	if v := metricValue(t, body, `takegrant_index_patches_total{index="hierarchy"}`); v != float64(st.Indexes["hierarchy"].Patches) {
		t.Errorf("hierarchy patches = %v, /stats says %v", v, st.Indexes["hierarchy"].Patches)
	}

	// Per-rule counters: the create applied, the read-up take was refused.
	if v := metricValue(t, body, `takegrant_rule_applications_total{op="create",verdict="applied"}`); v != 1 {
		t.Errorf("create applied = %v", v)
	}
	if v := metricValue(t, body, `takegrant_rule_applications_total{op="take",verdict="refused"}`); v != 1 {
		t.Errorf("take refused = %v", v)
	}

	// TYPE headers are unique per family (valid exposition shape).
	for _, fam := range []string{"takegrant_requests_total", "takegrant_request_latency_seconds"} {
		if n := strings.Count(body, "# TYPE "+fam+" "); n != 1 {
			t.Errorf("family %s has %d TYPE headers", fam, n)
		}
	}
}

func TestExplainShareJSON(t *testing.T) {
	ts := newTestServer(t)
	loadSpecimen(t, ts, "fig61")
	resp, err := http.Get(ts.URL + "/explain/share?right=r&x=low&y=secret&format=json")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Derivation []struct {
			Index int    `json:"index"`
			Op    string `json:"op"`
			Text  string `json:"text"`
			Diff  struct {
				Added []struct {
					Src, Dst, Rights string
				} `json:"added"`
			} `json:"diff"`
		} `json:"derivation"`
	}
	decode(t, resp, &body)
	if len(body.Derivation) == 0 {
		t.Fatal("empty derivation")
	}
	for i, step := range body.Derivation {
		if step.Index != i+1 || step.Op == "" || step.Text == "" {
			t.Errorf("step %d malformed: %+v", i, step)
		}
	}
}
