package service

import (
	"bytes"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestQuantilesRoundToNearestRank(t *testing.T) {
	// 10 known samples 1ms..10ms: truncation picked index 8 (9ms) for p99;
	// rounding must pick index 9 (10ms). p90 rounds 0.9*9=8.1 → index 8.
	var rm routeMetrics
	for i := 1; i <= 10; i++ {
		rm.observe(time.Duration(i) * time.Millisecond)
	}
	p50, p90, p99 := rm.quantiles()
	if want := 6 * time.Millisecond; p50 != want { // 0.5*9 = 4.5 → index 5
		t.Errorf("p50 = %v, want %v", p50, want)
	}
	if want := 9 * time.Millisecond; p90 != want {
		t.Errorf("p90 = %v, want %v", p90, want)
	}
	if want := 10 * time.Millisecond; p99 != want {
		t.Errorf("p99 = %v, want %v", p99, want)
	}

	// 100 samples 1ms..100ms: p50 → index 50 (51ms), p90 → index 89
	// (90ms), p99 → index 98 (99ms).
	rm = routeMetrics{}
	for i := 1; i <= 100; i++ {
		rm.observe(time.Duration(i) * time.Millisecond)
	}
	p50, p90, p99 = rm.quantiles()
	if p50 != 51*time.Millisecond || p90 != 90*time.Millisecond || p99 != 99*time.Millisecond {
		t.Errorf("p50/p90/p99 = %v/%v/%v, want 51ms/90ms/99ms", p50, p90, p99)
	}

	// Single sample: every quantile is that sample.
	rm = routeMetrics{}
	rm.observe(7 * time.Millisecond)
	p50, p90, p99 = rm.quantiles()
	if p50 != 7*time.Millisecond || p90 != 7*time.Millisecond || p99 != 7*time.Millisecond {
		t.Errorf("single-sample quantiles = %v/%v/%v", p50, p90, p99)
	}
}

func TestInstrumentConcurrentLoad(t *testing.T) {
	s := New()
	h := s.instrument("/x", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				req, _ := http.NewRequest(http.MethodGet, "/x", nil)
				rec := newRecorder()
				h.ServeHTTP(rec, req)
				if rec.status != http.StatusNoContent {
					t.Errorf("status %d", rec.status)
					return
				}
				if rec.header.Get("X-Trace-Id") == "" {
					t.Error("missing X-Trace-Id")
					return
				}
			}
		}()
	}
	wg.Wait()
	snap := s.metrics.snapshot()
	if got := snap["/x"].Count; got != workers*perWorker {
		t.Errorf("count = %d, want %d", got, workers*perWorker)
	}
	if snap["/x"].SumUs <= 0 {
		t.Error("latency sum not accumulated")
	}
}

// newRecorder is a minimal concurrent-safe ResponseWriter for load tests
// (httptest.ResponseRecorder is fine too, but this pins exactly what the
// instrument wrapper touches).
type recorder struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func newRecorder() *recorder { return &recorder{header: make(http.Header), status: http.StatusOK} }

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(code int)        { r.status = code }
func (r *recorder) Write(b []byte) (int, error) { return r.buf.Write(b) }

func TestEveryResponseCarriesTraceID(t *testing.T) {
	ts := newTestServer(t)
	loadSpecimen(t, ts, "fig61")
	seen := make(map[string]bool)
	for _, path := range []string{
		"/graph", "/render", "/query/can-share?right=r&x=low&y=secret",
		"/levels", "/stats", "/metrics",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		id := resp.Header.Get("X-Trace-Id")
		readAll(t, resp)
		if len(id) != 16 {
			t.Errorf("%s: trace ID %q not 16 hex digits", path, id)
		}
		if seen[id] {
			t.Errorf("%s: trace ID %q reused", path, id)
		}
		seen[id] = true
	}
}

func TestTraceIDAppearsInStructuredLog(t *testing.T) {
	srv := New()
	var buf bytes.Buffer
	var mu sync.Mutex
	srv.SetLogger(slog.New(slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil)))
	h := srv.Handler()

	req, _ := http.NewRequest(http.MethodPut, "/graph", strings.NewReader("subject a\n"))
	rec := newRecorder()
	h.ServeHTTP(rec, req)
	if rec.status != http.StatusOK {
		t.Fatalf("PUT /graph: %d %s", rec.status, rec.buf.String())
	}
	traceID := rec.header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("no trace ID on response")
	}
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	if !strings.Contains(logged, fmt.Sprintf("%q:%q", "trace_id", traceID)) {
		t.Errorf("slog output missing trace_id %q:\n%s", traceID, logged)
	}
	if !strings.Contains(logged, `"route":"/graph"`) {
		t.Errorf("slog output missing route:\n%s", logged)
	}

	// A mutation logs its own line under the same trace ID.
	buf.Reset()
	req, _ = http.NewRequest(http.MethodPost, "/apply",
		strings.NewReader(`{"op":"create","x":"a","name":"f","kind":"object","rights":"r"}`))
	req.Header.Set("Content-Type", "application/json")
	rec = newRecorder()
	h.ServeHTTP(rec, req)
	if rec.status != http.StatusOK {
		t.Fatalf("POST /apply: %d %s", rec.status, rec.buf.String())
	}
	mutTrace := rec.header.Get("X-Trace-Id")
	mu.Lock()
	logged = buf.String()
	mu.Unlock()
	if !strings.Contains(logged, `"mutation"`) || !strings.Contains(logged, `"verdict":"applied"`) {
		t.Errorf("mutation line missing:\n%s", logged)
	}
	if strings.Count(logged, mutTrace) < 2 { // mutation line + request line
		t.Errorf("trace %q should appear in both mutation and request lines:\n%s", mutTrace, logged)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	b  *bytes.Buffer
}

func (w lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

// metricValue extracts the value of the first series matching prefix from
// a Prometheus exposition body.
func metricValue(t *testing.T, body, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			sp := strings.LastIndexByte(line, ' ')
			v, err := strconv.ParseFloat(line[sp+1:], 64)
			if err != nil {
				t.Fatalf("bad value in %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no series with prefix %q in:\n%s", prefix, body)
	return 0
}

func TestMetricsMatchesStats(t *testing.T) {
	ts := newTestServer(t)
	loadSpecimen(t, ts, "fig61")

	// Drive some traffic: queries (cache miss then hit), a refused and an
	// applied mutation.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/query/can-share?right=r&x=low&y=secret")
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
	}
	resp, err := http.Post(ts.URL+"/apply", "application/json",
		strings.NewReader(`{"op":"take","x":"low","y":"mid","z":"secret","rights":"r"}`)) // read-up: refused
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	resp, err = http.Post(ts.URL+"/apply", "application/json",
		strings.NewReader(`{"op":"create","x":"low","name":"scratch","kind":"object","rights":"r,w"}`))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)

	// Snapshot /stats then /metrics with no traffic in between; the two
	// expositions must agree on every shared counter. (The /stats request
	// itself bumps only the /stats route count, which we don't compare.)
	var st Stats
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, &st)
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := readAll(t, resp)

	checks := map[string]float64{
		`takegrant_requests_total{route="/query/can-share"}`: float64(st.Routes["/query/can-share"].Count),
		"takegrant_qcache_hits_total ":                       float64(st.Cache.Hits),
		"takegrant_qcache_misses_total ":                     float64(st.Cache.Misses),
		`takegrant_guard_verdicts_total{verdict="applied"}`:  float64(st.Guard.Applied),
		`takegrant_guard_verdicts_total{verdict="refused"}`:  float64(st.Guard.Refused),
		"takegrant_graph_vertices ":                          float64(st.Vertices),
		"takegrant_graph_edges ":                             float64(st.Edges),
		"takegrant_graph_revision ":                          float64(st.Revision),
	}
	for prefix, want := range checks {
		if got := metricValue(t, body, prefix); got != want {
			t.Errorf("%s = %v, /stats says %v", prefix, got, want)
		}
	}

	// The cache must have seen both a miss and hits from the repeated query.
	if st.Cache.PerKind["can-share"].Misses < 1 || st.Cache.PerKind["can-share"].Hits < 2 {
		t.Errorf("per-kind cache stats = %+v", st.Cache.PerKind)
	}
	if metricValue(t, body, `takegrant_qcache_kind_hits_total{kind="can-share"}`) !=
		float64(st.Cache.PerKind["can-share"].Hits) {
		t.Error("per-kind hits disagree between /stats and /metrics")
	}

	// Decision-procedure phases reached the exposition: the first (miss)
	// can-share query ran the real procedure under a probe.
	if v := metricValue(t, body, `takegrant_phase_executions_total{procedure="/query/can-share",phase="sources"}`); v < 1 {
		t.Errorf("phase executions = %v", v)
	}
	// The fixture's positive verdict short-circuits on the island index;
	// bridge_closure only runs on index misses.
	if v := metricValue(t, body, `takegrant_phase_work_total{procedure="/query/can-share",phase="island_index",kind="hits"}`); v < 1 {
		t.Errorf("island_index hits = %v", v)
	}

	// Per-rule counters: the create applied, the read-up take was refused.
	if v := metricValue(t, body, `takegrant_rule_applications_total{op="create",verdict="applied"}`); v != 1 {
		t.Errorf("create applied = %v", v)
	}
	if v := metricValue(t, body, `takegrant_rule_applications_total{op="take",verdict="refused"}`); v != 1 {
		t.Errorf("take refused = %v", v)
	}

	// TYPE headers are unique per family (valid exposition shape).
	for _, fam := range []string{"takegrant_requests_total", "takegrant_request_latency_seconds"} {
		if n := strings.Count(body, "# TYPE "+fam+" "); n != 1 {
			t.Errorf("family %s has %d TYPE headers", fam, n)
		}
	}
}

func TestExplainShareJSON(t *testing.T) {
	ts := newTestServer(t)
	loadSpecimen(t, ts, "fig61")
	resp, err := http.Get(ts.URL + "/explain/share?right=r&x=low&y=secret&format=json")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Derivation []struct {
			Index int    `json:"index"`
			Op    string `json:"op"`
			Text  string `json:"text"`
			Diff  struct {
				Added []struct {
					Src, Dst, Rights string
				} `json:"added"`
			} `json:"diff"`
		} `json:"derivation"`
	}
	decode(t, resp, &body)
	if len(body.Derivation) == 0 {
		t.Fatal("empty derivation")
	}
	for i, step := range body.Derivation {
		if step.Index != i+1 || step.Op == "" || step.Text == "" {
			t.Errorf("step %d malformed: %+v", i, step)
		}
	}
}
