package wu

import (
	"testing"

	"takegrant/internal/analysis"
	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/rights"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 1); err == nil {
		t.Error("single level accepted")
	}
	if _, err := New(3, 0); err == nil {
		t.Error("zero subjects accepted")
	}
}

func TestWuStructure(t *testing.T) {
	s, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Levels() != 3 {
		t.Errorf("levels = %d", s.Levels())
	}
	g := s.G
	hi := s.Subjects[2][0]
	lo := s.Subjects[1][0]
	if !g.Explicit(hi, lo).Has(rights.Take) {
		t.Error("take-down edge missing")
	}
	if !g.Explicit(lo, hi).Has(rights.Grant) {
		t.Error("grant-up edge missing")
	}
}

func TestWuConspiracyBreach(t *testing.T) {
	s, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	breachable, d, err := s.Breachable()
	if err != nil {
		t.Fatal(err)
	}
	if !breachable {
		t.Fatal("Wu hierarchy not breachable — contradicts §2")
	}
	clone := s.G.Clone()
	if _, err := d.Replay(clone); err != nil {
		t.Fatalf("breach derivation does not replay: %v", err)
	}
	low := s.Subjects[0][0]
	topDoc := s.Docs[2]
	if !clone.Explicit(low, topDoc).Has(rights.Read) {
		t.Error("breach did not deliver read on the top document")
	}
	// The whole hierarchy is one rights-sharing pool: every subject pair is
	// bridge-connected, so all subjects are one rwtg-level.
	st := hierarchy.AnalyzeRWTG(s.G)
	if st.NumLevels() != 1 {
		t.Errorf("Wu hierarchy has %d rwtg-levels, expected 1 (total collapse)", st.NumLevels())
	}
}

func TestWuVsBishopModel(t *testing.T) {
	// The contrast of E1: the same classified workload in the paper's §4
	// construction is conspiracy-immune.
	wuSys, err := New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	low := wuSys.Subjects[0][0]
	if !analysis.CanKnow(wuSys.G, low, wuSys.Docs[2]) {
		t.Error("Wu: low cannot know top doc despite the breach path")
	}
	bishop, err := hierarchy.Linear(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	bLow := bishop.Members["L1"][0]
	if analysis.CanKnow(bishop.G, bLow, bishop.Bulletin["L3"]) {
		t.Error("Bishop: low knows top bulletin — hierarchy broken")
	}
	if ok, _ := hierarchy.Secure(bishop.G); !ok {
		t.Error("Bishop model insecure")
	}
	if ok, _ := hierarchy.StrictSecure(bishop.G); !ok {
		t.Error("Bishop model not strictly secure")
	}
	// Wu's wiring has no de facto order between levels at all — every
	// cross-level relation is take/grant authority — so the paper-literal
	// predicate (quantified over ordered pairs) is vacuous there. The
	// strict predicate exposes the de jure amplification.
	if ok, _ := hierarchy.StrictSecure(wuSys.G); ok {
		t.Error("Wu model reported strictly secure")
	}
}

func TestMinConspirators(t *testing.T) {
	s, err := New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := s.MinConspirators()
	if n < 2 {
		t.Errorf("conspirators = %d, want at least the two paper requires", n)
	}
	_ = graph.None
}
