// Package wu implements the baseline the paper argues against: Wu's
// hierarchical protection system [7], a Take-Grant hierarchy built from de
// jure edges alone.
//
// In Wu's model the hierarchy is wired with take and grant authority:
// every subject holds take rights over the subjects one level below it
// (supervision) and grant rights toward the subjects one level above it
// (reporting). The model looks hierarchical, but §2 of the paper shows it
// collapses under conspiracy: a take or grant edge between two subjects is
// a bridge, so any two directly connected subjects can share *all* their
// rights (Lemmas 2.1/2.2), and chains of such edges connect every level.
// Two corrupt subjects suffice to leak the most classified document to the
// bottom of the hierarchy.
//
// The package exists for experiment E1: the same classified workload is
// breachable here and provably safe in the paper's §4 construction.
package wu

import (
	"fmt"

	"takegrant/internal/analysis"
	"takegrant/internal/graph"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

// System is a built Wu-style hierarchy.
type System struct {
	G *graph.Graph
	// Subjects[i] lists level i's subjects (level 0 is the bottom).
	Subjects [][]graph.ID
	// Docs[i] is level i's classified document.
	Docs []graph.ID
}

// New builds a Wu hierarchy with the given number of levels and subjects
// per level. Each level has one document its subjects may read and write;
// each subject takes from the subjects one level down and grants to the
// subjects one level up.
func New(levels, subjectsPerLevel int) (*System, error) {
	if levels < 2 || subjectsPerLevel < 1 {
		return nil, fmt.Errorf("wu: need at least two levels and one subject per level")
	}
	g := graph.New(nil)
	s := &System{G: g, Subjects: make([][]graph.ID, levels), Docs: make([]graph.ID, levels)}
	for i := 0; i < levels; i++ {
		doc, err := g.AddObject(fmt.Sprintf("doc%d", i))
		if err != nil {
			return nil, err
		}
		s.Docs[i] = doc
		for j := 0; j < subjectsPerLevel; j++ {
			sub, err := g.AddSubject(fmt.Sprintf("s%d_%d", i, j))
			if err != nil {
				return nil, err
			}
			if err := g.AddExplicit(sub, doc, rights.RW); err != nil {
				return nil, err
			}
			s.Subjects[i] = append(s.Subjects[i], sub)
		}
	}
	for i := 1; i < levels; i++ {
		for _, hi := range s.Subjects[i] {
			for _, lo := range s.Subjects[i-1] {
				// Supervision: take down. Reporting: grant up.
				if err := g.AddExplicit(hi, lo, rights.T); err != nil {
					return nil, err
				}
				if err := g.AddExplicit(lo, hi, rights.G); err != nil {
					return nil, err
				}
			}
		}
	}
	return s, nil
}

// Levels returns the number of levels.
func (s *System) Levels() int { return len(s.Docs) }

// Breachable reports whether the bottom level can acquire read authority
// over the top document — the paper's §2 conspiracy observation. It also
// returns the derivation realising the theft.
func (s *System) Breachable() (bool, rules.Derivation, error) {
	low := s.Subjects[0][0]
	topDoc := s.Docs[len(s.Docs)-1]
	if !analysis.CanShare(s.G, rights.Read, low, topDoc) {
		return false, nil, nil
	}
	d, err := analysis.SynthesizeShare(s.G, rights.Read, low, topDoc)
	if err != nil {
		return true, nil, err
	}
	return true, d, nil
}

// MinConspirators returns how many corrupt subjects the breach requires in
// this wiring: the lemma constructions only ever involve the two endpoint
// subjects of each hierarchy edge, so a path of k edges from the top to
// the bottom needs at most k+1 conspirators; with one level between, two
// adjacent subjects suffice for each hop.
func (s *System) MinConspirators() int {
	// Lower bound: the breach derivation's distinct actors.
	_, d, err := s.Breachable()
	if err != nil || d == nil {
		return 0
	}
	actors := make(map[graph.ID]bool)
	for _, app := range d {
		if app.Op.DeJure() {
			actors[app.X] = true
		}
	}
	return len(actors)
}
