// Package conspiracy counts conspirators: the minimum number of subjects
// that must actively cooperate for a de facto information transfer. The
// paper's central achievement is a hierarchy whose security is independent
// of how many subjects are corrupt; this package quantifies the dual
// question — when a flow *is* possible, how many corrupt subjects does it
// take? — following Bishop's access-set construction.
//
// Every de facto rule is driven by subjects: a read step needs its reader
// to act, a write step its writer. A subject u alone commands its access
// sets: In(u), the vertices whose information u can pull with an explicit
// read edge, and Out(u), the vertices into which u can push with an
// explicit write edge (both include u). A flow y → x decomposes into hops
// between subjects whose access sets meet: information passes from
// conspirator v to conspirator u exactly when v can write somewhere u can
// read (Out(v) ∩ In(u) ≠ ∅). The minimum conspirator count is therefore a
// shortest path in the conspiracy digraph over subjects.
//
// Only explicit labels participate: the package answers questions about
// initial protection graphs, where implicit edges have not yet been
// exhibited.
package conspiracy

import (
	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// In returns the access-in set of subject u: u plus every vertex u holds
// an explicit read edge to.
func In(g *graph.Graph, u graph.ID) map[graph.ID]bool {
	out := map[graph.ID]bool{u: true}
	if !g.IsSubject(u) {
		return out
	}
	for _, h := range g.Out(u) {
		if h.Explicit.Has(rights.Read) {
			out[h.Other] = true
		}
	}
	return out
}

// Out returns the access-out set of subject u: u plus every vertex u holds
// an explicit write edge to.
func Out(g *graph.Graph, u graph.ID) map[graph.ID]bool {
	out := map[graph.ID]bool{u: true}
	if !g.IsSubject(u) {
		return out
	}
	for _, h := range g.Out(u) {
		if h.Explicit.Has(rights.Write) {
			out[h.Other] = true
		}
	}
	return out
}

// Digraph builds the conspiracy digraph: an edge u → v means information
// can move from v to u with only u and v acting (v deposits into a vertex
// u can read, or u directly reads v, or v directly writes u).
func Digraph(g *graph.Graph) map[graph.ID][]graph.ID {
	subjects := g.Subjects()
	ins := make(map[graph.ID]map[graph.ID]bool, len(subjects))
	outs := make(map[graph.ID]map[graph.ID]bool, len(subjects))
	for _, u := range subjects {
		ins[u] = In(g, u)
		outs[u] = Out(g, u)
	}
	adj := make(map[graph.ID][]graph.ID, len(subjects))
	for _, u := range subjects {
		for _, v := range subjects {
			if u == v {
				continue
			}
			if intersects(outs[v], ins[u]) {
				adj[u] = append(adj[u], v)
			}
		}
	}
	return adj
}

func intersects(a, b map[graph.ID]bool) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

// MinConspiratorsF returns the minimum number of subjects that must act
// for x to come to know y's information with de facto rules, and the
// conspirator chain from x's side to y's side. ok is false when no flow
// exists. x == y needs no conspirators.
func MinConspiratorsF(g *graph.Graph, x, y graph.ID) (int, []graph.ID, bool) {
	if !g.Valid(x) || !g.Valid(y) {
		return 0, nil, false
	}
	if x == y {
		return 0, nil, true
	}
	subjects := g.Subjects()
	// Receivers: subjects that can deliver the flow's last hop into x —
	// x itself (a subject reads its own way in) or any subject that can
	// write into x.
	var starts []graph.ID
	for _, u := range subjects {
		if u == x || Out(g, u)[x] {
			starts = append(starts, u)
		}
	}
	// Providers: subjects whose access-in covers y.
	goal := make(map[graph.ID]bool)
	for _, u := range subjects {
		if u == y || In(g, u)[y] {
			goal[u] = true
		}
	}
	if len(starts) == 0 || len(goal) == 0 {
		return 0, nil, false
	}
	adj := Digraph(g)
	type node struct {
		v    graph.ID
		prev int
	}
	var order []node
	dist := make(map[graph.ID]int)
	for _, s := range starts {
		dist[s] = 0
		order = append(order, node{v: s, prev: -1})
	}
	for head := 0; head < len(order); head++ {
		cur := order[head]
		if goal[cur.v] {
			// Reconstruct the chain x-side … y-side.
			var chain []graph.ID
			for i := head; i >= 0; {
				chain = append(chain, order[i].v)
				i = order[i].prev
			}
			for l, r := 0, len(chain)-1; l < r; l, r = l+1, r-1 {
				chain[l], chain[r] = chain[r], chain[l]
			}
			return len(chain), chain, true
		}
		for _, w := range adj[cur.v] {
			if _, seen := dist[w]; !seen {
				dist[w] = dist[cur.v] + 1
				order = append(order, node{v: w, prev: head})
			}
		}
	}
	return 0, nil, false
}
