package conspiracy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"takegrant/internal/analysis"
	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

func TestAccessSets(t *testing.T) {
	g := graph.New(nil)
	u := g.MustSubject("u")
	a := g.MustObject("a")
	b := g.MustObject("b")
	g.AddExplicit(u, a, rights.R)
	g.AddExplicit(u, b, rights.W)
	in, out := In(g, u), Out(g, u)
	if !in[u] || !in[a] || in[b] {
		t.Errorf("In = %v", in)
	}
	if !out[u] || !out[b] || out[a] {
		t.Errorf("Out = %v", out)
	}
	// Objects command nothing but themselves.
	if got := In(g, a); len(got) != 1 || !got[a] {
		t.Errorf("object In = %v", got)
	}
}

func TestSingleConspirator(t *testing.T) {
	// x reads y directly: one conspirator (x itself).
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	g.AddExplicit(x, y, rights.R)
	n, chain, ok := MinConspiratorsF(g, x, y)
	if !ok || n != 1 || len(chain) != 1 || chain[0] != x {
		t.Errorf("= %d %v %v", n, chain, ok)
	}
}

func TestTwoConspiratorsMailbox(t *testing.T) {
	// x -r-> m <-w- s, s -r-> y : x and s conspire.
	g := graph.New(nil)
	x := g.MustSubject("x")
	m := g.MustObject("m")
	s := g.MustSubject("s")
	y := g.MustObject("y")
	g.AddExplicit(x, m, rights.R)
	g.AddExplicit(s, m, rights.W)
	g.AddExplicit(s, y, rights.R)
	n, chain, ok := MinConspiratorsF(g, x, y)
	if !ok || n != 2 {
		t.Fatalf("= %d %v %v", n, chain, ok)
	}
	if chain[0] != x || chain[1] != s {
		t.Errorf("chain = %v", chain)
	}
}

func TestConspiratorChainLength(t *testing.T) {
	// A relay of k subjects, each writing the next one's inbox.
	g := graph.New(nil)
	k := 5
	subs := make([]graph.ID, k)
	for i := range subs {
		subs[i] = g.MustSubject("s" + string(rune('0'+i)))
	}
	y := g.MustObject("y")
	g.AddExplicit(subs[k-1], y, rights.R)
	for i := k - 1; i > 0; i-- {
		box := g.MustObject("box" + string(rune('0'+i)))
		g.AddExplicit(subs[i], box, rights.W)
		g.AddExplicit(subs[i-1], box, rights.R)
	}
	n, chain, ok := MinConspiratorsF(g, subs[0], y)
	if !ok || n != k {
		t.Errorf("conspirators = %d (%v), want %d", n, chain, k)
	}
}

func TestShortcutPreferred(t *testing.T) {
	// Both a 3-subject relay and a direct read exist: minimum is 1.
	g := graph.New(nil)
	x := g.MustSubject("x")
	m := g.MustObject("m")
	s := g.MustSubject("s")
	y := g.MustObject("y")
	g.AddExplicit(x, m, rights.R)
	g.AddExplicit(s, m, rights.W)
	g.AddExplicit(s, y, rights.R)
	g.AddExplicit(x, y, rights.R) // shortcut
	n, _, ok := MinConspiratorsF(g, x, y)
	if !ok || n != 1 {
		t.Errorf("= %d, want 1", n)
	}
}

func TestObjectEndpoints(t *testing.T) {
	// Object x needs a writer; object y needs a reader.
	g := graph.New(nil)
	x := g.MustObject("x")
	u := g.MustSubject("u")
	y := g.MustObject("y")
	g.AddExplicit(u, x, rights.W)
	g.AddExplicit(u, y, rights.R)
	n, chain, ok := MinConspiratorsF(g, x, y)
	if !ok || n != 1 || chain[0] != u {
		t.Errorf("= %d %v %v", n, chain, ok)
	}
	// Without the writer there is no flow into x.
	g2 := graph.New(nil)
	x2 := g2.MustObject("x")
	u2 := g2.MustSubject("u")
	y2 := g2.MustObject("y")
	g2.AddExplicit(u2, y2, rights.R)
	if _, _, ok := MinConspiratorsF(g2, x2, y2); ok {
		t.Error("flow into an unwritable object")
	}
}

func TestReflexive(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	n, _, ok := MinConspiratorsF(g, x, x)
	if !ok || n != 0 {
		t.Errorf("= %d %v", n, ok)
	}
}

// TestAgreesWithCanKnowF: on explicit-only graphs, a conspirator chain
// exists exactly when can•know•f holds.
func TestAgreesWithCanKnowF(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(nil)
		n := 3 + rng.Intn(6)
		for i := 0; i < n; i++ {
			name := "v" + string(rune('a'+i))
			if rng.Intn(2) == 0 {
				g.MustSubject(name)
			} else {
				g.MustObject(name)
			}
		}
		vs := g.Vertices()
		for i := 0; i < 3*n; i++ {
			a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
			if a != b {
				g.AddExplicit(a, b, rights.Set(1+rng.Intn(15)))
			}
		}
		for i := 0; i < 8; i++ {
			x, y := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
			_, _, ok := MinConspiratorsF(g, x, y)
			if ok != analysis.CanKnowF(g, x, y) {
				t.Logf("seed %d: conspiracy=%v canknowf=%v for %s→%s\n%s",
					seed, ok, !ok, g.Name(x), g.Name(y), g.String())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyConspiracyResistance(t *testing.T) {
	// The flip side of Theorem 4.3: within the paper's hierarchy, upward
	// flows need a bounded chain of conspirators, and downward flows are
	// impossible no matter how many conspire.
	g := graph.New(nil)
	low := g.MustSubject("low")
	lowBB := g.MustObject("lowBB")
	high := g.MustSubject("high")
	g.AddExplicit(low, lowBB, rights.RW)
	g.AddExplicit(high, lowBB, rights.R)
	n, _, ok := MinConspiratorsF(g, high, low)
	if !ok || n != 2 {
		t.Errorf("upward flow conspirators = %d %v", n, ok)
	}
	if _, _, ok := MinConspiratorsF(g, low, high); ok {
		t.Error("downward flow possible")
	}
}
