// Package explore enumerates the derivation space of a protection graph:
// every graph reachable through rule applications, deduplicated by
// canonical form. It is the brute-force ground truth against which the
// analysis package's theorem-based decision procedures are cross-checked,
// and the machinery behind the completeness experiment (Theorem 5.5).
//
// The space is infinite (create mints fresh vertices), so exploration is
// bounded: by derivation depth, by total states, and by a create budget
// per path. Created vertices get names canonical in the state ("c<n>" for
// the next vertex slot), so two paths reaching the same shape deduplicate.
package explore

import (
	"fmt"

	"takegrant/internal/graph"
	"takegrant/internal/restrict"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

// Options bounds an exploration.
type Options struct {
	// MaxDepth bounds derivation length (0 means "only the start graph").
	MaxDepth int
	// MaxStates bounds the number of distinct graphs visited; exploration
	// reports truncation when it trips. Default 10000 when zero.
	MaxStates int
	// DeJure / DeFacto include the rule families.
	DeJure, DeFacto bool
	// IncludeRemove includes remove rules (greatly widens the space).
	IncludeRemove bool
	// CreateBudget is the number of creates allowed along one path.
	CreateBudget int
	// CreateRights labels the edge to each created vertex; defaults to
	// {t,g,r,w}.
	CreateRights rights.Set
	// CreateSubjects also tries creating subject vertices (objects are
	// always tried when CreateBudget > 0).
	CreateSubjects bool
	// Restriction, when non-nil, guards every de jure application.
	Restriction func() restrict.Restriction
}

func (o *Options) maxStates() int {
	if o.MaxStates <= 0 {
		return 10000
	}
	return o.MaxStates
}

// Result summarises an exploration.
type Result struct {
	// States is the number of distinct graphs visited (including the start).
	States int
	// Truncated reports that MaxStates stopped the search early.
	Truncated bool
	// Stopped reports that the visit callback ended the search.
	Stopped bool
}

type state struct {
	g       *graph.Graph
	depth   int
	creates int
}

// Visit explores breadth-first from g, calling visit on every distinct
// reachable graph (the start graph first). Returning false from visit
// stops the search. The graphs passed to visit are owned by the explorer;
// clone them to retain.
func Visit(g *graph.Graph, opts Options, visit func(*graph.Graph, int) bool) *Result {
	res := &Result{}
	seen := map[string]bool{g.Canonical(): true}
	queue := []state{{g: g.Clone(), depth: 0, creates: 0}}
	res.States = 1
	if !visit(queue[0].g, 0) {
		res.Stopped = true
		return res
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.depth >= opts.MaxDepth {
			continue
		}
		for _, app := range candidates(cur.g, &opts, cur.creates) {
			var guard restrict.Restriction
			if opts.Restriction != nil {
				guard = opts.Restriction()
			}
			next := cur.g.Clone()
			if guard != nil && app.Op.DeJure() {
				if guard.Allows(next, app) != nil {
					continue
				}
			}
			if app.Apply(next) != nil {
				continue
			}
			key := next.Canonical()
			if seen[key] {
				continue
			}
			seen[key] = true
			res.States++
			if !visit(next, cur.depth+1) {
				res.Stopped = true
				return res
			}
			if res.States >= opts.maxStates() {
				res.Truncated = true
				return res
			}
			creates := cur.creates
			if app.Op == rules.OpCreate {
				creates++
			}
			queue = append(queue, state{g: next, depth: cur.depth + 1, creates: creates})
		}
	}
	return res
}

// candidates enumerates the applications to try from a state.
func candidates(g *graph.Graph, opts *Options, createsUsed int) []rules.Application {
	apps := rules.Enumerate(g, &rules.EnumerateOptions{
		DeJure:        opts.DeJure,
		DeFacto:       opts.DeFacto,
		IncludeRemove: opts.IncludeRemove,
	})
	if opts.DeJure && createsUsed < opts.CreateBudget {
		set := opts.CreateRights
		if set.Empty() {
			set = rights.Of(rights.Take, rights.Grant, rights.Read, rights.Write)
		}
		name := fmt.Sprintf("c%d", g.Cap())
		for _, x := range g.Subjects() {
			apps = append(apps, rules.Create(x, name, graph.Object, set))
			if opts.CreateSubjects {
				apps = append(apps, rules.Create(x, name, graph.Subject, set))
			}
		}
	}
	return apps
}

// ShareReachable reports whether some reachable graph has an explicit
// α edge from x to y: the brute-force ground truth for can•share.
func ShareReachable(g *graph.Graph, alpha rights.Right, x, y graph.ID, opts Options) (bool, *Result) {
	opts.DeFacto = false
	opts.DeJure = true
	found := false
	res := Visit(g, opts, func(h *graph.Graph, depth int) bool {
		if h.Explicit(x, y).Has(alpha) {
			found = true
			return false
		}
		return true
	})
	return found, res
}

// KnowReachable reports whether some reachable graph witnesses
// can•know(x, y): an x→y read edge (implicit, or explicit with subject
// source) or a y→x write edge under the same condition.
func KnowReachable(g *graph.Graph, x, y graph.ID, opts Options) (bool, *Result) {
	opts.DeJure = true
	opts.DeFacto = true
	found := false
	res := Visit(g, opts, func(h *graph.Graph, depth int) bool {
		if knowsBase(h, x, y) {
			found = true
			return false
		}
		return true
	})
	return found, res
}

// knowsBase is the base condition of the can•know definition on one graph.
func knowsBase(g *graph.Graph, x, y graph.ID) bool {
	if g.Implicit(x, y).Has(rights.Read) || g.Implicit(y, x).Has(rights.Write) {
		return true
	}
	if g.Explicit(x, y).Has(rights.Read) && g.IsSubject(x) {
		return true
	}
	if g.Explicit(y, x).Has(rights.Write) && g.IsSubject(y) {
		return true
	}
	return false
}

// ReachableSet returns the canonical forms of all reachable graphs,
// optionally only those satisfying keep. Used by the completeness
// experiment to compare restricted against unrestricted reachability.
func ReachableSet(g *graph.Graph, opts Options, keep func(*graph.Graph) bool) (map[string]bool, *Result) {
	out := make(map[string]bool)
	res := Visit(g, opts, func(h *graph.Graph, depth int) bool {
		if keep == nil || keep(h) {
			out[h.Canonical()] = true
		}
		return true
	})
	return out, res
}
