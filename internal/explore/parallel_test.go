package explore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/restrict"
	"takegrant/internal/rights"
)

func TestParallelMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := tinyGraph(rng)
		opts := Options{MaxDepth: 4, MaxStates: 50000, DeJure: true, DeFacto: rng.Intn(2) == 0}
		serial, r1 := ReachableSet(g, opts, nil)
		parallel, r2 := ReachableSetParallel(g, opts, 4, nil)
		if r1.Truncated != r2.Truncated {
			// Truncation is a race against MaxStates; only compare full runs.
			return true
		}
		if r1.Truncated {
			return true
		}
		if len(serial) != len(parallel) {
			t.Logf("seed %d: serial %d states, parallel %d", seed, len(serial), len(parallel))
			return false
		}
		for k := range serial {
			if !parallel[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestParallelDepthZero(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	g.AddExplicit(x, y, rights.T)
	res := VisitParallel(g, Options{MaxDepth: 0, DeJure: true}, 4,
		func(*graph.Graph, int) bool { return true })
	if res.States != 1 {
		t.Errorf("states = %d", res.States)
	}
}

func TestParallelStops(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	z := g.MustObject("z")
	g.AddExplicit(x, y, rights.T)
	g.AddExplicit(y, z, rights.RW)
	res := VisitParallel(g, Options{MaxDepth: 4, DeJure: true}, 2,
		func(h *graph.Graph, depth int) bool { return depth == 0 })
	if !res.Stopped {
		t.Error("not stopped")
	}
}

func TestParallelWithGuard(t *testing.T) {
	c, err := hierarchy.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := c.G
	low := c.Members["L1"][0]
	g.AddExplicit(low, c.Members["L2"][0], rights.T)
	s := hierarchy.AnalyzeRW(g)
	opts := Options{
		MaxDepth: 3, DeJure: true, DeFacto: true, MaxStates: 50000,
		Restriction: func() restrict.Restriction { return restrict.NewCombined(s) },
	}
	comb := restrict.NewCombined(s)
	dirty := false
	VisitParallel(g, opts, 4, func(h *graph.Graph, depth int) bool {
		if len(comb.Audit(h)) != 0 {
			dirty = true
		}
		return true
	})
	if dirty {
		t.Error("guarded parallel exploration reached a dirty graph")
	}
}
