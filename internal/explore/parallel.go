package explore

import (
	"runtime"
	"sync"

	"takegrant/internal/graph"
	"takegrant/internal/restrict"
	"takegrant/internal/rules"
)

// VisitParallel is Visit with a worker pool: successor expansion — rule
// enumeration, cloning, application and canonicalisation, the expensive
// parts — runs concurrently, while the seen-set and frontier stay behind
// one mutex. Visit order is nondeterministic but the visited SET equals
// the serial explorer's (deduplication is by canonical form, which is
// order-independent). Used by the large completeness sweeps and exposed
// as an ablation benchmark.
//
// The visit callback may be called concurrently; returning false stops
// the search (best effort — in-flight expansions may still complete).
func VisitParallel(g *graph.Graph, opts Options, workers int, visit func(*graph.Graph, int) bool) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &Result{}
	var mu sync.Mutex
	seen := map[string]bool{g.Canonical(): true}
	type item struct {
		g     *graph.Graph
		depth int
		cr    int
	}
	queue := []item{{g: g.Clone()}}
	res.States = 1
	if !visit(queue[0].g, 0) {
		res.Stopped = true
		return res
	}
	stop := false
	// inFlight counts items handed to workers but not yet fully expanded;
	// the search ends when the queue is empty and nothing is in flight.
	inFlight := 0
	cond := sync.NewCond(&mu)

	expand := func(cur item) {
		if cur.depth >= opts.MaxDepth {
			mu.Lock()
			inFlight--
			cond.Broadcast()
			mu.Unlock()
			return
		}
		apps := candidates(cur.g, &opts, cur.cr)
		type produced struct {
			g   *graph.Graph
			key string
			cr  int
		}
		var local []produced
		for _, app := range apps {
			var guard restrict.Restriction
			if opts.Restriction != nil {
				guard = opts.Restriction()
			}
			next := cur.g.Clone()
			if guard != nil && app.Op.DeJure() {
				if guard.Allows(next, app) != nil {
					continue
				}
			}
			if app.Apply(next) != nil {
				continue
			}
			cr := cur.cr
			if app.Op == rules.OpCreate {
				cr++
			}
			local = append(local, produced{g: next, key: next.Canonical(), cr: cr})
		}
		mu.Lock()
		for _, p := range local {
			if stop || res.Truncated {
				break
			}
			if seen[p.key] {
				continue
			}
			seen[p.key] = true
			res.States++
			keep := true
			// Call visit outside the lock? It may inspect the graph only;
			// keep it simple and call under the lock — callbacks are cheap
			// in our usages (set insertion / predicate check).
			keep = visit(p.g, cur.depth+1)
			if !keep {
				res.Stopped = true
				stop = true
				break
			}
			if res.States >= opts.maxStates() {
				res.Truncated = true
				break
			}
			if cur.depth+1 < opts.MaxDepth {
				queue = append(queue, item{g: p.g, depth: cur.depth + 1, cr: p.cr})
			}
		}
		inFlight--
		cond.Broadcast()
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(queue) == 0 && inFlight > 0 && !stop && !res.Truncated {
					cond.Wait()
				}
				if len(queue) == 0 || stop || res.Truncated {
					cond.Broadcast()
					mu.Unlock()
					return
				}
				cur := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				inFlight++
				mu.Unlock()
				expand(cur)
			}
		}()
	}
	wg.Wait()
	return res
}

// ReachableSetParallel mirrors ReachableSet over VisitParallel.
func ReachableSetParallel(g *graph.Graph, opts Options, workers int, keep func(*graph.Graph) bool) (map[string]bool, *Result) {
	out := make(map[string]bool)
	res := VisitParallel(g, opts, workers, func(h *graph.Graph, depth int) bool {
		if keep == nil || keep(h) {
			out[h.Canonical()] = true
		}
		return true
	})
	return out, res
}
