package explore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"takegrant/internal/analysis"
	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/restrict"
	"takegrant/internal/rights"
)

// TestShareableUnderMatchesGuardedExplorer cross-checks the Theorem 5.5
// composition: ShareableUnder must agree with exhaustive guarded
// exploration — whether any reachable graph under the restriction carries
// the explicit α edge from x to y.
//
// Lives in the explore package to avoid an import cycle (restrict cannot
// depend on explore).
func TestShareableUnderMatchesGuardedExplorer(t *testing.T) {
	if testing.Short() {
		t.Skip("guarded exhaustive search is slow")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Hierarchical base with latent cross structure, kept tiny so the
		// explorer is exhaustive.
		c, err := hierarchy.Linear(2, 1)
		if err != nil {
			return false
		}
		g := c.G
		subs := g.Subjects()
		for i := 0; i < 2; i++ {
			a, b := subs[rng.Intn(len(subs))], subs[rng.Intn(len(subs))]
			if a != b {
				set := rights.T
				if rng.Intn(2) == 0 {
					set = rights.G
				}
				g.AddExplicit(a, b, set)
			}
		}
		s := hierarchy.AnalyzeRW(g)
		comb := restrict.NewCombined(s)
		// Creates must be enabled: realising a reverse bridge (Lemma 2.1)
		// manufactures a proxy vertex. They blow up the space, so the
		// state cap keeps each query bounded; truncated searches are
		// inconclusive and skipped.
		opts := Options{
			MaxDepth: 6, MaxStates: 25000, DeJure: true,
			CreateBudget: 2, CreateSubjects: true,
			Restriction: func() restrict.Restriction { return restrict.NewCombined(s) },
		}
		vs := g.Vertices()
		for i := 0; i < 3; i++ {
			x := vs[rng.Intn(len(vs))]
			y := vs[rng.Intn(len(vs))]
			if x == y {
				continue
			}
			alpha := rights.Right(rng.Intn(4))
			want := restrict.ShareableUnder(g, comb, alpha, x, y) ||
				g.Explicit(x, y).Has(alpha)
			if want {
				// Only assert confirmability when a short witness exists:
				// the unrestricted derivation's length bounds the depth a
				// guarded realisation needs in these graphs.
				if d, err := analysis.SynthesizeShare(g, alpha, x, y); err != nil || len(d) > opts.MaxDepth {
					continue
				}
			}
			found := false
			res := Visit(g, opts, func(h *graph.Graph, _ int) bool {
				if h.Explicit(x, y).Has(alpha) {
					found = true
					return false
				}
				return true
			})
			if found && !want {
				t.Logf("seed %d: guarded explorer found %v→%s to %s but ShareableUnder=false",
					seed, g.Name(x), g.Universe().Name(alpha), g.Name(y))
				return false
			}
			if want && !found && !res.Truncated {
				t.Logf("seed %d: ShareableUnder=true unconfirmed (%s gets %s to %s, %d states)",
					seed, g.Name(x), g.Universe().Name(alpha), g.Name(y), res.States)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}
