package explore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"takegrant/internal/analysis"
	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/restrict"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

func tinyGraph(rng *rand.Rand) *graph.Graph {
	g := graph.New(nil)
	n := 2 + rng.Intn(3)
	for i := 0; i < n; i++ {
		name := "v" + string(rune('a'+i))
		if rng.Intn(3) > 0 {
			g.MustSubject(name)
		} else {
			g.MustObject(name)
		}
	}
	vs := g.Vertices()
	m := 1 + rng.Intn(2*n)
	for i := 0; i < m; i++ {
		a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
		if a != b {
			g.AddExplicit(a, b, rights.Set(1+rng.Intn(15)))
		}
	}
	return g
}

func TestVisitCountsStartOnly(t *testing.T) {
	g := graph.New(nil)
	g.MustSubject("a")
	res := Visit(g, Options{MaxDepth: 0, DeJure: true}, func(*graph.Graph, int) bool { return true })
	if res.States != 1 || res.Truncated || res.Stopped {
		t.Errorf("res = %+v", res)
	}
}

func TestVisitDedupes(t *testing.T) {
	// Two different orders of two independent takes reach the same graph:
	// the state count must reflect deduplication.
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	z := g.MustObject("z")
	g.AddExplicit(x, y, rights.T)
	g.AddExplicit(y, z, rights.RW)
	res := Visit(g, Options{MaxDepth: 4, DeJure: true}, func(*graph.Graph, int) bool { return true })
	// States: start, +r, +w, +rw  — exactly 4.
	if res.States != 4 {
		t.Errorf("states = %d want 4", res.States)
	}
}

func TestVisitStops(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	z := g.MustObject("z")
	g.AddExplicit(x, y, rights.T)
	g.AddExplicit(y, z, rights.RW)
	count := 0
	res := Visit(g, Options{MaxDepth: 4, DeJure: true}, func(*graph.Graph, int) bool {
		count++
		return count < 2
	})
	if !res.Stopped || count != 2 {
		t.Errorf("stopped=%v count=%d", res.Stopped, count)
	}
}

func TestVisitTruncates(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	g.MustSubject("y")
	g.AddExplicit(x, graph.ID(1), rights.TG)
	res := Visit(g, Options{MaxDepth: 10, DeJure: true, CreateBudget: 3, MaxStates: 5},
		func(*graph.Graph, int) bool { return true })
	if !res.Truncated {
		t.Errorf("res = %+v", res)
	}
}

func TestShareReachableSimple(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	z := g.MustObject("z")
	g.AddExplicit(x, y, rights.T)
	g.AddExplicit(y, z, rights.R)
	found, _ := ShareReachable(g, rights.Read, x, z, Options{MaxDepth: 3})
	if !found {
		t.Error("single take not found")
	}
	found, _ = ShareReachable(g, rights.Write, x, z, Options{MaxDepth: 3})
	if found {
		t.Error("phantom right found")
	}
}

// TestCanShareMatchesExplorer is the ground-truth cross-check for
// Theorem 2.3: on tiny graphs, the theorem-based decision and brute-force
// reachability must agree. Where the bounded explorer cannot confirm a
// positive, the constructive synthesiser must (its replay is itself a
// derivation, i.e. ground truth).
func TestCanShareMatchesExplorer(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := tinyGraph(rng)
		vs := g.Vertices()
		opts := Options{MaxDepth: 6, CreateBudget: 1, CreateSubjects: true, MaxStates: 30000}
		for i := 0; i < 4; i++ {
			x := vs[rng.Intn(len(vs))]
			y := vs[rng.Intn(len(vs))]
			if x == y {
				continue
			}
			alpha := rights.Right(rng.Intn(4))
			decided := analysis.CanShare(g, alpha, x, y)
			found, res := ShareReachable(g, alpha, x, y, opts)
			if found && !decided {
				t.Logf("seed %d: explorer found %s→%s %v but CanShare=false\n%s",
					seed, g.Name(x), g.Name(y), alpha, g.String())
				return false
			}
			if decided && !found {
				// The bounded explorer may simply be too shallow; the
				// synthesiser must still produce a real derivation.
				if _, err := analysis.SynthesizeShare(g, alpha, x, y); err != nil {
					t.Logf("seed %d: CanShare=true unconfirmed (explorer %+v, synthesis: %v)\n%s",
						seed, res, err, g.String())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCanKnowMatchesExplorer cross-checks Theorem 3.2 against brute force.
func TestCanKnowMatchesExplorer(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := tinyGraph(rng)
		vs := g.Vertices()
		opts := Options{MaxDepth: 5, CreateBudget: 0, MaxStates: 30000}
		for i := 0; i < 3; i++ {
			x := vs[rng.Intn(len(vs))]
			y := vs[rng.Intn(len(vs))]
			if x == y {
				continue
			}
			decided := analysis.CanKnow(g, x, y)
			found, res := KnowReachable(g, x, y, opts)
			if found && !decided {
				t.Logf("seed %d: explorer found know(%s,%s) but CanKnow=false\n%s",
					seed, g.Name(x), g.Name(y), g.String())
				return false
			}
			if decided && !found {
				// The explorer runs without creates, which many know-flows
				// need; the synthesiser must still produce a derivation.
				if _, err := analysis.SynthesizeKnow(g, x, y); err != nil {
					t.Logf("seed %d: CanKnow(%s,%s)=true unconfirmed (explorer %d states, synthesis: %v)\n%s",
						seed, g.Name(x), g.Name(y), res.States, err, g.String())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestCompletenessTheorem55 is experiment E12: every secure graph
// reachable with unrestricted rules is reachable with restricted rules.
func TestCompletenessTheorem55(t *testing.T) {
	c, err := hierarchy.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := c.G
	e := g.Universe().MustDeclare("e")
	low := c.Members["L1"][0]
	high := c.Members["L2"][0]
	v := g.MustObject("v")
	g.AddExplicit(high, v, rights.T)
	g.AddExplicit(v, c.Bulletin["L1"], rights.Of(e))
	g.AddExplicit(high, low, rights.G)
	s := hierarchy.AnalyzeRW(g)

	secureKeep := func(h *graph.Graph) bool {
		comb := restrict.NewCombined(s)
		return len(comb.Audit(h)) == 0
	}
	opts := Options{MaxDepth: 4, MaxStates: 60000, DeJure: true, DeFacto: true}
	unres, r1 := ReachableSet(g, opts, secureKeep)
	ropts := opts
	ropts.Restriction = func() restrict.Restriction { return restrict.NewCombined(s) }
	res, r2 := ReachableSet(g, ropts, nil)
	if r1.Truncated || r2.Truncated {
		t.Skip("state budget too small for this machine")
	}
	missing := 0
	for k := range unres {
		if !res[k] {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d secure graphs unreachable under the restriction (of %d)", missing, len(unres))
	}
	// And the restriction genuinely prunes insecure graphs.
	all, _ := ReachableSet(g, opts, nil)
	if len(all) <= len(res) {
		t.Errorf("restriction pruned nothing: %d vs %d", len(all), len(res))
	}
}

// TestSoundnessExhaustive is the exhaustive small-graph version of
// Theorem 5.5 soundness: under the restriction, no reachable graph ever
// audits dirty.
func TestSoundnessExhaustive(t *testing.T) {
	c, err := hierarchy.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := c.G
	low := c.Members["L1"][0]
	high := c.Members["L2"][0]
	// Dangerous latent structure: cross-level take both ways.
	g.AddExplicit(low, high, rights.T)
	g.AddExplicit(high, low, rights.T)
	s := hierarchy.AnalyzeRW(g)
	opts := Options{
		MaxDepth: 4, MaxStates: 60000, DeJure: true, DeFacto: true,
		Restriction: func() restrict.Restriction { return restrict.NewCombined(s) },
	}
	comb := restrict.NewCombined(s)
	dirty := 0
	res := Visit(g, opts, func(h *graph.Graph, depth int) bool {
		if len(comb.Audit(h)) != 0 {
			dirty++
		}
		return true
	})
	if dirty != 0 {
		t.Errorf("%d of %d reachable restricted graphs audit dirty", dirty, res.States)
	}
	// Contrast: unrestricted exploration reaches dirty graphs.
	uopts := opts
	uopts.Restriction = nil
	uopts.MaxDepth = 2
	dirty = 0
	Visit(g, uopts, func(h *graph.Graph, depth int) bool {
		if len(comb.Audit(h)) != 0 {
			dirty++
			return false
		}
		return true
	})
	if dirty == 0 {
		t.Error("unrestricted exploration found no breach despite cross-level take edges")
	}
}

func TestExplorerHonoursGuardCounters(t *testing.T) {
	// A guarded explorer must never apply a refused rule: verify by
	// checking no reachable graph contains a read-up edge directly.
	c, _ := hierarchy.Linear(2, 1)
	g := c.G
	low := c.Members["L1"][0]
	g.AddExplicit(low, c.Members["L2"][0], rights.T)
	s := hierarchy.AnalyzeRW(g)
	highBB := c.Bulletin["L2"]
	opts := Options{
		MaxDepth: 3, DeJure: true,
		Restriction: func() restrict.Restriction { return restrict.NewCombined(s) },
	}
	bad := false
	Visit(g, opts, func(h *graph.Graph, depth int) bool {
		if h.Explicit(low, highBB).Has(rights.Read) {
			bad = true
			return false
		}
		return true
	})
	if bad {
		t.Error("guarded exploration produced a read-up edge")
	}
}

var _ = rules.OpTake // keep the import for future table-driven tests
