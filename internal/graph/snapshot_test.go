package graph

import (
	"fmt"
	"math/rand"
	"testing"

	"takegrant/internal/rights"
)

// randomMutatedGraph builds a random graph and runs a burst of mutations —
// adds, removes, implicit labels, vertex deletions — so the snapshot under
// test covers holes, dead vertices and label churn, not just fresh builds.
func randomMutatedGraph(t *testing.T, rng *rand.Rand) *Graph {
	t.Helper()
	g := New(nil)
	n := 3 + rng.Intn(10)
	ids := make([]ID, n)
	for i := 0; i < n; i++ {
		var err error
		name := fmt.Sprintf("v%d", i)
		if rng.Intn(3) < 2 {
			ids[i], err = g.AddSubject(name)
		} else {
			ids[i], err = g.AddObject(name)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < rng.Intn(4*n); e++ {
		a, b := ids[rng.Intn(n)], ids[rng.Intn(n)]
		if a == b {
			continue
		}
		set := rights.Set(1 + rng.Intn(15))
		if rng.Intn(4) == 0 {
			_ = g.AddImplicit(a, b, set)
		} else {
			_ = g.AddExplicit(a, b, set)
		}
	}
	for m := 0; m < rng.Intn(n); m++ {
		a, b := ids[rng.Intn(n)], ids[rng.Intn(n)]
		if a != b && g.Valid(a) && g.Valid(b) {
			_ = g.RemoveExplicit(a, b, rights.Set(1+rng.Intn(15)))
		}
	}
	if rng.Intn(3) == 0 {
		v := ids[rng.Intn(n)]
		if g.Valid(v) && g.NumVertices() > 2 {
			_ = g.DeleteVertex(v)
		}
	}
	return g
}

// TestSnapshotMatchesAdjacency: the frozen CSR listings must agree with
// the authoritative map-based Out/In on every vertex of random graphs —
// same neighbours, same order, same labels.
func TestSnapshotMatchesAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		g := randomMutatedGraph(t, rng)
		snap := g.Snapshot()
		if snap.Revision() != g.Revision() {
			t.Fatalf("trial %d: snapshot rev %d, graph rev %d", trial, snap.Revision(), g.Revision())
		}
		if snap.Cap() != g.Cap() {
			t.Fatalf("trial %d: snapshot cap %d, graph cap %d", trial, snap.Cap(), g.Cap())
		}
		edges := 0
		for i := 0; i < g.Cap(); i++ {
			v := ID(i)
			if !g.Valid(v) {
				if snap.Live(v) {
					t.Fatalf("trial %d: dead vertex %d live in snapshot", trial, v)
				}
				if dst, _ := snap.Out(v); len(dst) != 0 {
					t.Fatalf("trial %d: dead vertex %d has %d out edges", trial, v, len(dst))
				}
				continue
			}
			if snap.IsSubject(v) != g.IsSubject(v) {
				t.Fatalf("trial %d: vertex %d kind mismatch", trial, v)
			}
			checkDirection := func(dir string, want []HalfEdge, dst []ID, lbl []uint32) {
				if len(dst) != len(want) {
					t.Fatalf("trial %d: %s(%d): %d neighbours, want %d", trial, dir, v, len(dst), len(want))
				}
				for j, h := range want {
					if dst[j] != h.Other {
						t.Fatalf("trial %d: %s(%d)[%d] = %d, want %d (sorted order)", trial, dir, v, j, dst[j], h.Other)
					}
					lp := snap.Label(lbl[j])
					if lp.Explicit != h.Explicit || lp.Implicit != h.Implicit {
						t.Fatalf("trial %d: %s(%d)[%d] label (%v,%v), want (%v,%v)",
							trial, dir, v, j, lp.Explicit, lp.Implicit, h.Explicit, h.Implicit)
					}
				}
			}
			outDst, outLbl := snap.Out(v)
			checkDirection("Out", g.Out(v), outDst, outLbl)
			inDst, inLbl := snap.In(v)
			checkDirection("In", g.In(v), inDst, inLbl)
			edges += len(outDst)
		}
		if edges != snap.NumEdges() || edges != g.NumEdges() {
			t.Fatalf("trial %d: edge counts disagree: walked %d, snapshot %d, graph %d",
				trial, edges, snap.NumEdges(), g.NumEdges())
		}
	}
}

// TestSnapshotLabelInterning: the label table deduplicates — it can never
// hold more entries than the graph has edges, and equal label pairs on
// different edges share one index.
func TestSnapshotLabelInterning(t *testing.T) {
	g := New(nil)
	a := g.MustSubject("a")
	b := g.MustSubject("b")
	c := g.MustSubject("c")
	d := g.MustObject("d")
	for _, pair := range [][2]ID{{a, b}, {b, c}, {c, d}, {a, d}} {
		if err := g.AddExplicit(pair[0], pair[1], rights.TG); err != nil {
			t.Fatal(err)
		}
	}
	snap := g.Snapshot()
	if snap.NumLabels() != 1 {
		t.Errorf("4 identical labels interned to %d entries, want 1", snap.NumLabels())
	}
	if err := g.AddExplicit(b, d, rights.RW); err != nil {
		t.Fatal(err)
	}
	snap = g.Snapshot()
	if snap.NumLabels() != 2 {
		t.Errorf("two distinct labels interned to %d entries, want 2", snap.NumLabels())
	}
}

// TestSnapshotIdentityPerRevision: the snapshot is built once per revision
// and shared — repeated calls return the same object until a mutation, and
// the superseded snapshot stays frozen at its revision's contents.
func TestSnapshotIdentityPerRevision(t *testing.T) {
	g := New(nil)
	a := g.MustSubject("a")
	b := g.MustSubject("b")
	if err := g.AddExplicit(a, b, rights.TG); err != nil {
		t.Fatal(err)
	}
	s1 := g.Snapshot()
	if s2 := g.Snapshot(); s2 != s1 {
		t.Fatal("unchanged graph rebuilt its snapshot")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if s3 := g.Snapshot(); s3 != s1 {
		t.Fatal("read-only queries must not invalidate the snapshot")
	}
	c := g.MustObject("c")
	if err := g.AddExplicit(b, c, rights.RW); err != nil {
		t.Fatal(err)
	}
	s4 := g.Snapshot()
	if s4 == s1 {
		t.Fatal("mutation did not refresh the snapshot")
	}
	if s4.Revision() != g.Revision() {
		t.Fatalf("fresh snapshot rev %d, graph rev %d", s4.Revision(), g.Revision())
	}
	// The superseded snapshot still serves its old revision's view: one
	// edge, no vertex c.
	if s1.NumEdges() != 1 {
		t.Errorf("old snapshot now reports %d edges, want its frozen 1", s1.NumEdges())
	}
	if s1.Live(c) {
		t.Error("old snapshot sees a vertex added after it was frozen")
	}
}
