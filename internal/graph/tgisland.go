package graph

import (
	"takegrant/internal/rights"
)

// TGIndex is a union-find partition of vertices into tg-islands: the
// maximal subject-only subgraphs connected by explicit take-or-grant
// edges in either direction (the "islands" of Theorem 2.3). Only subject
// vertices are ever unioned; objects and deleted vertices stay singletons
// and callers are expected to guard membership queries with IsSubject.
//
// The index is maintained incrementally by the Graph's mutation paths:
// adding an explicit t/g edge between two subjects merges their sets in
// near-constant time (the monotone, overwhelmingly common case), while
// the rare non-monotone mutations — removing a tg edge, deleting a
// tg-connected subject — invalidate the index and the next TGIslands call
// rebuilds it from scratch in one pass over the edges.
//
// find performs NO path compression: after mutation stops, any number of
// readers may walk the parent chains concurrently (the same contract as
// the rest of the Graph). Union by rank alone keeps chains logarithmic.
type TGIndex struct {
	parent []int32
	rank   []uint8
}

func (x *TGIndex) find(v int32) int32 {
	for x.parent[v] != v {
		v = x.parent[v]
	}
	return v
}

func (x *TGIndex) union(a, b int32) {
	ra, rb := x.find(a), x.find(b)
	if ra == rb {
		return
	}
	if x.rank[ra] < x.rank[rb] {
		ra, rb = rb, ra
	}
	x.parent[rb] = ra
	if x.rank[ra] == x.rank[rb] {
		x.rank[ra]++
	}
}

// Root returns the canonical representative of v's tg-island. Roots are
// stable between mutations but arbitrary across rebuilds: compare roots,
// never store them. Out-of-range IDs return None.
func (x *TGIndex) Root(v ID) ID {
	if v < 0 || int(v) >= len(x.parent) {
		return None
	}
	return ID(x.find(int32(v)))
}

// Same reports whether a and b lie in the same tg-island. The caller is
// responsible for both being live subjects.
func (x *TGIndex) Same(a, b ID) bool {
	ra, rb := x.Root(a), x.Root(b)
	return ra != None && ra == rb
}

// TGIslands returns the incrementally maintained tg-island index,
// rebuilding it only when a non-monotone mutation invalidated it. Safe for
// concurrent use under the Graph's reader contract.
func (g *Graph) TGIslands() *TGIndex {
	g.islMu.Lock()
	defer g.islMu.Unlock()
	if g.isl == nil {
		g.isl = buildTGIndex(g)
		g.islBuilds++
	} else {
		g.islHits++
	}
	return g.isl
}

// IslandStats reports the island index's lifetime counters: lookups that
// reused the live index (hits), from-scratch rebuilds (builds), in-place
// monotone merges (unions) and invalidations by non-monotone mutations.
// Safe for concurrent use.
func (g *Graph) IslandStats() (hits, builds, unions, invalidates uint64) {
	g.islMu.Lock()
	defer g.islMu.Unlock()
	return g.islHits, g.islBuilds, g.islUnions, g.islInvalidates
}

// SameTGIsland reports whether live subjects a and b share a tg-island,
// via the maintained index.
func (g *Graph) SameTGIsland(a, b ID) bool {
	if !g.IsSubject(a) || !g.IsSubject(b) {
		return false
	}
	return g.TGIslands().Same(a, b)
}

// buildTGIndex is the from-scratch rebuild: one union per explicit
// subject→subject edge carrying t or g. It streams the revision-cached
// CSR snapshot's flat edge arrays instead of iterating the adjacency
// maps — a sequential scan over three arrays rather than a pointer chase
// through V map headers, and the snapshot is almost always already built
// for the revision being queried. Lock order: TGIslands holds islMu and
// Snapshot takes adjMu; no path acquires islMu while holding adjMu, so
// the nesting is safe.
func buildTGIndex(g *Graph) *TGIndex {
	s := g.Snapshot()
	n := s.Cap()
	x := &TGIndex{parent: make([]int32, n), rank: make([]uint8, n)}
	for i := range x.parent {
		x.parent[i] = int32(i)
	}
	// Pre-classify the label table: one HasAny per distinct label instead
	// of one per edge.
	tg := make([]bool, s.NumLabels())
	for li := range tg {
		tg[li] = s.labels[li].Explicit.HasAny(rights.TG)
	}
	for i := 0; i < n; i++ {
		if !s.subject[i] {
			continue
		}
		dst, lbl := s.Out(ID(i))
		for j, d := range dst {
			if tg[lbl[j]] && s.subject[d] {
				x.union(int32(i), int32(d))
			}
		}
	}
	return x
}

// islandAddVertex extends a live index with a fresh singleton; new
// vertices can never retroactively connect existing islands.
func (g *Graph) islandAddVertex() {
	g.islMu.Lock()
	if g.isl != nil {
		g.isl.parent = append(g.isl.parent, int32(len(g.isl.parent)))
		g.isl.rank = append(g.isl.rank, 0)
	}
	g.islMu.Unlock()
}

// islandAddExplicit folds a new explicit label into a live index: a t or g
// right between two subjects merges their islands. Monotone — no rebuild.
func (g *Graph) islandAddExplicit(src, dst ID, set rights.Set) {
	if !set.HasAny(rights.TG) ||
		g.vertices[src].kind != Subject || g.vertices[dst].kind != Subject {
		return
	}
	g.islMu.Lock()
	if g.isl != nil {
		g.isl.union(int32(src), int32(dst))
		g.islUnions++
	}
	g.islMu.Unlock()
}

// InvalidateIslandIndex drops the maintained island index so the next
// TGIslands call rebuilds from scratch. Exposed for the derived-index
// registry's Invalidate contract; the graph's own mutation paths use the
// internal form below.
func (g *Graph) InvalidateIslandIndex() { g.islandInvalidate() }

// islandInvalidate drops the index; the next TGIslands call rebuilds.
// Called on the non-monotone mutations (tg-edge removal, subject deletion
// with incident tg edges, revision restore) — a union-find cannot split.
func (g *Graph) islandInvalidate() {
	g.islMu.Lock()
	if g.isl != nil {
		g.islInvalidates++
	}
	g.isl = nil
	g.islMu.Unlock()
}
