package graph

import (
	"strings"
	"testing"

	"takegrant/internal/rights"
)

func TestDiffEntryString(t *testing.T) {
	e := DiffEntry{Kind: "edge", Detail: "a→b"}
	if e.String() != "edge: a→b" {
		t.Errorf("= %q", e.String())
	}
}

func TestBuilderEdgeSetAndPanics(t *testing.T) {
	b := NewBuilder(nil)
	x := b.Subject("x")
	y := b.Object("y")
	b.EdgeSet(x, y, rights.RW)
	if b.G.Explicit(x, y) != rights.RW {
		t.Error("EdgeSet wrong")
	}
	assertPanics(t, func() { b.Edge(x, y, ",,") })
	assertPanics(t, func() { b.EdgeSet(x, x, rights.R) })
	assertPanics(t, func() { b.G.MustSubject("x") })
	assertPanics(t, func() { b.G.MustObject("x") })
	assertPanics(t, func() { b.G.Name(ID(99)) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestLabelAccessorsInvalidIDs(t *testing.T) {
	g := New(nil)
	a := g.MustSubject("a")
	if !g.Explicit(a, 99).Empty() || !g.Explicit(99, a).Empty() {
		t.Error("Explicit on invalid id nonempty")
	}
	if !g.Implicit(a, -1).Empty() || !g.Combined(-1, a).Empty() {
		t.Error("Implicit/Combined on invalid id nonempty")
	}
}

func TestHalfEdgeCombined(t *testing.T) {
	h := HalfEdge{Explicit: rights.R, Implicit: rights.W}
	if h.Combined() != rights.RW {
		t.Errorf("Combined = %v", h.Combined())
	}
}

func TestEqualDistinguishes(t *testing.T) {
	g1 := New(nil)
	g1.MustSubject("a")
	g2 := New(nil)
	g2.MustSubject("b") // different name
	if g1.Equal(g2) {
		t.Error("names ignored")
	}
	g3 := New(nil)
	g3.MustObject("a") // different kind
	if g1.Equal(g3) {
		t.Error("kinds ignored")
	}
	g4 := New(nil)
	g4.MustSubject("a")
	g4.MustSubject("x")
	if g1.Equal(g4) {
		t.Error("sizes ignored")
	}
	// Deleted-vertex mismatch.
	g5 := New(nil)
	id := g5.MustSubject("a")
	g5.DeleteVertex(id)
	g6 := New(nil)
	g6.MustSubject("a")
	if g5.Equal(g6) || g6.Equal(g5) {
		t.Error("deletion status ignored")
	}
	// Edge count mismatch within same vertices.
	g7 := New(nil)
	a7, b7 := g7.MustSubject("a"), g7.MustSubject("b")
	g8 := g7.Clone()
	g7.AddExplicit(a7, b7, rights.R)
	if g7.Equal(g8) {
		t.Error("edge ignored")
	}
}

func TestAddEdgeInvalidVertices(t *testing.T) {
	g := New(nil)
	a := g.MustSubject("a")
	if err := g.AddExplicit(a, 42, rights.R); err == nil {
		t.Error("edge to invalid vertex accepted")
	}
	if err := g.AddImplicit(42, a, rights.R); err == nil {
		t.Error("implicit from invalid vertex accepted")
	}
	if err := g.RemoveExplicit(a, 42, rights.R); err == nil {
		t.Error("remove on invalid vertex accepted")
	}
	if err := g.RemoveImplicit(42, a, rights.R); err == nil {
		t.Error("remove implicit on invalid vertex accepted")
	}
	if err := g.DeleteVertex(42); err == nil {
		t.Error("delete invalid vertex accepted")
	}
}

func TestStringIncludesKinds(t *testing.T) {
	g := New(nil)
	a := g.MustSubject("alice")
	f := g.MustObject("file")
	g.AddExplicit(a, f, rights.R)
	s := g.String()
	for _, want := range []string{"subject alice", "object file", "alice -> file : r"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q", want)
		}
	}
}
