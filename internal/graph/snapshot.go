package graph

import (
	"runtime"
	"sort"
	"sync"

	"takegrant/internal/rights"
)

// LabelPair is one interned (explicit, implicit) rights pair. Snapshot
// stores every distinct pair once and references it by index: protection
// graphs label thousands of edges with a handful of distinct sets (t, g,
// r, rw, ...), so the per-edge cost drops to one uint32.
type LabelPair struct {
	Explicit rights.Set
	Implicit rights.Set
}

// Combined returns the union of the pair's labels.
func (l LabelPair) Combined() rights.Set { return l.Explicit.Union(l.Implicit) }

// Snapshot is a frozen, read-optimized view of a Graph at one revision:
// compressed-sparse-row adjacency in both directions, destinations sorted
// per vertex, labels interned. It is immutable after construction and
// therefore safe for any number of concurrent readers — the decision
// procedures share one snapshot per revision instead of re-sorting map
// iterations on every Out/In call.
//
// Obtain one with Graph.Snapshot. A Snapshot describes the graph as it was
// at Revision(); mutating the graph does not change existing snapshots,
// it only makes the next Graph.Snapshot call build a fresh one.
type Snapshot struct {
	rev      uint64
	numEdges int

	// CSR layout: vertex v's out-edges are outDst[outStart[v]:outStart[v+1]]
	// with parallel label indices in outLbl; same shape for in-edges. The
	// in-listing of v carries the labels read in the src→v direction.
	outStart []int32
	inStart  []int32
	outDst   []ID
	inDst    []ID
	outLbl   []uint32
	inLbl    []uint32

	labels  []LabelPair
	subject []bool // live subject per ID
	live    []bool
}

// Snapshot returns the frozen adjacency view for the graph's current
// revision, building it on first read and sharing it until the next
// mutation. Safe for concurrent use.
func (g *Graph) Snapshot() *Snapshot {
	g.adjMu.Lock()
	defer g.adjMu.Unlock()
	if g.snap == nil || g.snap.rev != g.revision {
		g.snap = buildSnapshot(g)
		g.snapBuilds++
	} else {
		g.snapHits++
	}
	return g.snap
}

// SnapshotStats reports how often Snapshot reused the frozen view (hits)
// versus rebuilt it for a new revision (builds). Safe for concurrent use.
func (g *Graph) SnapshotStats() (hits, builds uint64) {
	g.adjMu.Lock()
	defer g.adjMu.Unlock()
	return g.snapHits, g.snapBuilds
}

// parallelSnapshotEdges is the edge count above which buildSnapshot fans
// the map-flattening stage across a worker pool. Below it the goroutine
// and synchronization overhead outweighs the walk itself.
const parallelSnapshotEdges = 1 << 15

// labelInterner assigns dense indices to distinct label pairs. Workers
// keep a private cache (protection graphs use a handful of distinct
// labels, so the cache hits almost always) and fall back to the shared
// table under a mutex only on a cache miss — global indices come out of
// the shared table directly, so no remap pass is needed afterwards.
type labelInterner struct {
	mu     sync.Mutex
	intern map[label]uint32
	labels []LabelPair
}

func (it *labelInterner) local() func(label) uint32 {
	cache := make(map[label]uint32, 16)
	return func(l label) uint32 {
		if li, ok := cache[l]; ok {
			return li
		}
		it.mu.Lock()
		li, ok := it.intern[l]
		if !ok {
			li = uint32(len(it.labels))
			it.labels = append(it.labels, LabelPair{Explicit: l.explicit, Implicit: l.implicit})
			it.intern[l] = li
		}
		it.mu.Unlock()
		cache[l] = li
		return li
	}
}

// flattenRange walks the out-maps of vertices [lo, hi) into the
// per-source runs of tmpDst/tmpLbl (unsorted within a run, since map
// iteration order is arbitrary). Ranges are disjoint, so workers never
// write the same slot.
func flattenRange(g *Graph, s *Snapshot, tmpDst []ID, tmpLbl []uint32, lo, hi int, intern func(label) uint32) {
	for i := lo; i < hi; i++ {
		v := &g.vertices[i]
		if v.deleted || len(v.out) == 0 {
			continue
		}
		k := s.outStart[i]
		for dst, l := range v.out {
			tmpDst[k] = dst
			tmpLbl[k] = intern(l)
			k++
		}
	}
}

// splitByEdges partitions the vertex index space into `workers` ranges of
// roughly equal out-edge mass, using the CSR prefix sums.
func splitByEdges(outStart []int32, n, workers int) []int {
	bounds := make([]int, workers+1)
	bounds[workers] = n
	total := int(outStart[n])
	for w := 1; w < workers; w++ {
		target := int32(total * w / workers)
		bounds[w] = sort.Search(n, func(i int) bool { return outStart[i] >= target })
	}
	return bounds
}

// buildSnapshot packs the live adjacency into CSR form with a two-pass
// counting sort instead of per-vertex comparison sorts:
//
//  1. Flatten: walk the out-maps into per-source runs (dst, label index),
//     unsorted within a run. This is the expensive stage — map iteration
//     and label interning — and it fans out across a worker pool on
//     large graphs, partitioned by edge mass.
//  2. Scatter by source: stream the runs in ascending source order into
//     the in-CSR. Each destination's in-list fills with sources in
//     ascending order — sorted, no comparisons.
//  3. Scatter by destination: stream the in-CSR in ascending destination
//     order back into the out-CSR; each source's out-list fills with
//     destinations ascending.
//
// Both scatters are valid counting sorts because a (src, dst) pair
// carries at most one label. O(V + E) time, and the only transient beyond
// the result arrays is one (ID, uint32) pair per edge.
func buildSnapshot(g *Graph) *Snapshot {
	n := len(g.vertices)
	s := &Snapshot{
		rev:      g.revision,
		outStart: make([]int32, n+1),
		inStart:  make([]int32, n+1),
		subject:  make([]bool, n),
		live:     make([]bool, n),
	}
	for i := range g.vertices {
		v := &g.vertices[i]
		if v.deleted {
			continue
		}
		s.live[i] = true
		s.subject[i] = v.kind == Subject
		s.numEdges += len(v.out)
		s.outStart[i+1] = int32(len(v.out))
		s.inStart[i+1] = int32(len(v.in))
	}
	for i := 0; i < n; i++ {
		s.outStart[i+1] += s.outStart[i]
		s.inStart[i+1] += s.inStart[i]
	}
	m := s.numEdges

	// Stage 1: flatten maps into per-source runs.
	tmpDst := make([]ID, m)
	tmpLbl := make([]uint32, m)
	it := &labelInterner{intern: make(map[label]uint32)}
	workers := runtime.GOMAXPROCS(0)
	if workers > 16 {
		workers = 16
	}
	if m < parallelSnapshotEdges || workers < 2 {
		flattenRange(g, s, tmpDst, tmpLbl, 0, n, it.local())
	} else {
		bounds := splitByEdges(s.outStart, n, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := bounds[w], bounds[w+1]
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				flattenRange(g, s, tmpDst, tmpLbl, lo, hi, it.local())
			}(lo, hi)
		}
		wg.Wait()
	}
	s.labels = it.labels

	// Stage 2: scatter by ascending source into the in-CSR.
	s.inDst = make([]ID, m)
	s.inLbl = make([]uint32, m)
	cur := make([]int32, n)
	copy(cur, s.inStart[:n])
	for src := 0; src < n; src++ {
		for k := s.outStart[src]; k < s.outStart[src+1]; k++ {
			d := tmpDst[k]
			p := cur[d]
			cur[d]++
			s.inDst[p] = ID(src)
			s.inLbl[p] = tmpLbl[k]
		}
	}
	tmpDst, tmpLbl = nil, nil

	// Stage 3: scatter by ascending destination into the out-CSR.
	s.outDst = make([]ID, m)
	s.outLbl = make([]uint32, m)
	copy(cur, s.outStart[:n])
	for dst := 0; dst < n; dst++ {
		for k := s.inStart[dst]; k < s.inStart[dst+1]; k++ {
			src := s.inDst[k]
			p := cur[src]
			cur[src]++
			s.outDst[p] = ID(dst)
			s.outLbl[p] = s.inLbl[k]
		}
	}
	return s
}

// Revision returns the graph revision the snapshot describes.
func (s *Snapshot) Revision() uint64 { return s.rev }

// Cap returns the vertex-ID bound of the snapshot: all IDs are < Cap().
func (s *Snapshot) Cap() int { return len(s.live) }

// NumEdges returns the number of labelled directed vertex pairs.
func (s *Snapshot) NumEdges() int { return s.numEdges }

// NumLabels returns the number of distinct interned label pairs.
func (s *Snapshot) NumLabels() int { return len(s.labels) }

// Live reports whether v was a live vertex at the snapshot's revision.
func (s *Snapshot) Live(v ID) bool {
	return v >= 0 && int(v) < len(s.live) && s.live[v]
}

// IsSubject reports whether v was a live subject at the snapshot's revision.
func (s *Snapshot) IsSubject(v ID) bool {
	return v >= 0 && int(v) < len(s.subject) && s.subject[v]
}

// Out returns v's out-edge destinations (ascending) and the parallel label
// indices, resolvable via Label. The slices alias the snapshot's arrays and
// must not be mutated.
func (s *Snapshot) Out(v ID) (dst []ID, lbl []uint32) {
	if v < 0 || int(v) >= len(s.live) {
		return nil, nil
	}
	lo, hi := s.outStart[v], s.outStart[v+1]
	return s.outDst[lo:hi], s.outLbl[lo:hi]
}

// In returns v's in-edge sources (ascending) and the parallel label
// indices; labels read in the src→v direction. The slices alias the
// snapshot's arrays and must not be mutated.
func (s *Snapshot) In(v ID) (dst []ID, lbl []uint32) {
	if v < 0 || int(v) >= len(s.live) {
		return nil, nil
	}
	lo, hi := s.inStart[v], s.inStart[v+1]
	return s.inDst[lo:hi], s.inLbl[lo:hi]
}

// Label resolves an interned label index from Out or In.
func (s *Snapshot) Label(i uint32) LabelPair { return s.labels[i] }
