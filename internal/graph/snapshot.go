package graph

import (
	"slices"

	"takegrant/internal/rights"
)

// LabelPair is one interned (explicit, implicit) rights pair. Snapshot
// stores every distinct pair once and references it by index: protection
// graphs label thousands of edges with a handful of distinct sets (t, g,
// r, rw, ...), so the per-edge cost drops to one uint32.
type LabelPair struct {
	Explicit rights.Set
	Implicit rights.Set
}

// Combined returns the union of the pair's labels.
func (l LabelPair) Combined() rights.Set { return l.Explicit.Union(l.Implicit) }

// Snapshot is a frozen, read-optimized view of a Graph at one revision:
// compressed-sparse-row adjacency in both directions, destinations sorted
// per vertex, labels interned. It is immutable after construction and
// therefore safe for any number of concurrent readers — the decision
// procedures share one snapshot per revision instead of re-sorting map
// iterations on every Out/In call.
//
// Obtain one with Graph.Snapshot. A Snapshot describes the graph as it was
// at Revision(); mutating the graph does not change existing snapshots,
// it only makes the next Graph.Snapshot call build a fresh one.
type Snapshot struct {
	rev      uint64
	numEdges int

	// CSR layout: vertex v's out-edges are outDst[outStart[v]:outStart[v+1]]
	// with parallel label indices in outLbl; same shape for in-edges. The
	// in-listing of v carries the labels read in the src→v direction.
	outStart []int32
	inStart  []int32
	outDst   []ID
	inDst    []ID
	outLbl   []uint32
	inLbl    []uint32

	labels  []LabelPair
	subject []bool // live subject per ID
	live    []bool
}

// Snapshot returns the frozen adjacency view for the graph's current
// revision, building it on first read and sharing it until the next
// mutation. Safe for concurrent use.
func (g *Graph) Snapshot() *Snapshot {
	g.adjMu.Lock()
	defer g.adjMu.Unlock()
	if g.snap == nil || g.snap.rev != g.revision {
		g.snap = buildSnapshot(g)
		g.snapBuilds++
	} else {
		g.snapHits++
	}
	return g.snap
}

// SnapshotStats reports how often Snapshot reused the frozen view (hits)
// versus rebuilt it for a new revision (builds). Safe for concurrent use.
func (g *Graph) SnapshotStats() (hits, builds uint64) {
	g.adjMu.Lock()
	defer g.adjMu.Unlock()
	return g.snapHits, g.snapBuilds
}

// buildSnapshot packs the live adjacency into CSR form: degree counts,
// prefix sums, one pass over the out-maps writing (dst, label) packed into
// a uint64 per edge — filling the forward and reverse buckets in the same
// pass — then a per-vertex sort and unpack. O(E log maxdeg) time, three
// flat arrays per direction.
func buildSnapshot(g *Graph) *Snapshot {
	n := len(g.vertices)
	s := &Snapshot{
		rev:      g.revision,
		outStart: make([]int32, n+1),
		inStart:  make([]int32, n+1),
		subject:  make([]bool, n),
		live:     make([]bool, n),
	}
	for i := range g.vertices {
		v := &g.vertices[i]
		if v.deleted {
			continue
		}
		s.live[i] = true
		s.subject[i] = v.kind == Subject
		s.numEdges += len(v.out)
		s.outStart[i+1] = int32(len(v.out))
		s.inStart[i+1] = int32(len(v.in))
	}
	for i := 0; i < n; i++ {
		s.outStart[i+1] += s.outStart[i]
		s.inStart[i+1] += s.inStart[i]
	}
	m := s.numEdges
	outPacked := make([]uint64, m)
	inPacked := make([]uint64, m)
	outCur := make([]int32, n)
	inCur := make([]int32, n)
	copy(outCur, s.outStart[:n])
	copy(inCur, s.inStart[:n])
	intern := make(map[label]uint32)
	for i := range g.vertices {
		v := &g.vertices[i]
		if v.deleted {
			continue
		}
		for dst, l := range v.out {
			li, ok := intern[l]
			if !ok {
				li = uint32(len(s.labels))
				s.labels = append(s.labels, LabelPair{Explicit: l.explicit, Implicit: l.implicit})
				intern[l] = li
			}
			outPacked[outCur[i]] = uint64(uint32(dst))<<32 | uint64(li)
			outCur[i]++
			inPacked[inCur[dst]] = uint64(uint32(ID(i)))<<32 | uint64(li)
			inCur[dst]++
		}
	}
	for i := 0; i < n; i++ {
		slices.Sort(outPacked[s.outStart[i]:s.outStart[i+1]])
		slices.Sort(inPacked[s.inStart[i]:s.inStart[i+1]])
	}
	s.outDst = make([]ID, m)
	s.outLbl = make([]uint32, m)
	s.inDst = make([]ID, m)
	s.inLbl = make([]uint32, m)
	for j, p := range outPacked {
		s.outDst[j] = ID(p >> 32)
		s.outLbl[j] = uint32(p)
	}
	for j, p := range inPacked {
		s.inDst[j] = ID(p >> 32)
		s.inLbl[j] = uint32(p)
	}
	return s
}

// Revision returns the graph revision the snapshot describes.
func (s *Snapshot) Revision() uint64 { return s.rev }

// Cap returns the vertex-ID bound of the snapshot: all IDs are < Cap().
func (s *Snapshot) Cap() int { return len(s.live) }

// NumEdges returns the number of labelled directed vertex pairs.
func (s *Snapshot) NumEdges() int { return s.numEdges }

// NumLabels returns the number of distinct interned label pairs.
func (s *Snapshot) NumLabels() int { return len(s.labels) }

// Live reports whether v was a live vertex at the snapshot's revision.
func (s *Snapshot) Live(v ID) bool {
	return v >= 0 && int(v) < len(s.live) && s.live[v]
}

// IsSubject reports whether v was a live subject at the snapshot's revision.
func (s *Snapshot) IsSubject(v ID) bool {
	return v >= 0 && int(v) < len(s.subject) && s.subject[v]
}

// Out returns v's out-edge destinations (ascending) and the parallel label
// indices, resolvable via Label. The slices alias the snapshot's arrays and
// must not be mutated.
func (s *Snapshot) Out(v ID) (dst []ID, lbl []uint32) {
	if v < 0 || int(v) >= len(s.live) {
		return nil, nil
	}
	lo, hi := s.outStart[v], s.outStart[v+1]
	return s.outDst[lo:hi], s.outLbl[lo:hi]
}

// In returns v's in-edge sources (ascending) and the parallel label
// indices; labels read in the src→v direction. The slices alias the
// snapshot's arrays and must not be mutated.
func (s *Snapshot) In(v ID) (dst []ID, lbl []uint32) {
	if v < 0 || int(v) >= len(s.live) {
		return nil, nil
	}
	lo, hi := s.inStart[v], s.inStart[v+1]
	return s.inDst[lo:hi], s.inLbl[lo:hi]
}

// Label resolves an interned label index from Out or In.
func (s *Snapshot) Label(i uint32) LabelPair { return s.labels[i] }
