// Package graph implements the protection graph of the Take-Grant model.
//
// A protection graph is a finite directed graph with two kinds of vertices —
// subjects (active; they can invoke rewriting rules) and objects (passive) —
// whose edges are labelled with subsets of a finite set of rights.
//
// Edges carry two labels: the explicit label records authority known to the
// protection system (only the de jure rules create or destroy explicit
// rights), and the implicit label records potential information-flow paths
// exhibited by the de facto rules. Implicit edges represent no authority and
// cannot be manipulated by the de jure rules.
//
// The Graph type is a mutable store with deterministic iteration order,
// cheap cloning, structural equality, diffing, and a canonical textual
// encoding used to deduplicate states during derivation-space exploration.
// It is not safe for concurrent mutation; concurrent readers are safe once
// mutation stops.
package graph

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"takegrant/internal/rights"
)

// ID identifies a vertex within one Graph. IDs are dense, start at 0, and
// are never reused; deleting a vertex leaves a hole.
type ID int32

// None is the invalid vertex ID.
const None ID = -1

// Kind distinguishes active subjects from passive objects.
type Kind uint8

const (
	// Subject vertices are active: they can invoke rules. Drawn as ● in
	// the paper.
	Subject Kind = iota
	// Object vertices are passive: files, documents. Drawn as ○.
	Object
)

func (k Kind) String() string {
	switch k {
	case Subject:
		return "subject"
	case Object:
		return "object"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// label is the pair of rights sets carried by one directed vertex pair.
type label struct {
	explicit rights.Set
	implicit rights.Set
}

func (l label) empty() bool { return l.explicit == 0 && l.implicit == 0 }

type vertex struct {
	name    string
	kind    Kind
	deleted bool
	// out and in are allocated lazily on first edge: bulk-loaded worlds
	// are dominated by leaf objects with no out-edges, and two empty maps
	// per vertex is hundreds of megabytes at the million-vertex scale.
	// All read paths (range, len, index, delete) treat nil as empty.
	out map[ID]label
	in  map[ID]struct{} // reverse index: which vertices have an edge to us
}

// Graph is a mutable protection graph. Create one with New.
type Graph struct {
	universe *rights.Universe
	vertices []vertex
	byName   map[string]ID
	revision uint64
	live     int

	// adjMu guards snap, the lazily built frozen CSR snapshot used by the
	// search engines and Edges; it is invalidated by revision. The counters
	// feed SnapshotStats.
	adjMu      sync.Mutex
	snap       *Snapshot
	snapHits   uint64
	snapBuilds uint64

	// islMu guards isl, the incrementally maintained tg-island union-find
	// (see tgisland.go); nil means "rebuild on next use". The counters feed
	// IslandStats.
	islMu          sync.Mutex
	isl            *TGIndex
	islHits        uint64
	islBuilds      uint64
	islUnions      uint64
	islInvalidates uint64

	// recorder, when set, observes every effective mutation (changes.go).
	recorder func(Change)
}

// New returns an empty protection graph over the given rights universe.
// A nil universe gets a fresh one containing only r, w, t, g.
func New(u *rights.Universe) *Graph {
	if u == nil {
		u = rights.NewUniverse()
	}
	return &Graph{universe: u, byName: make(map[string]ID)}
}

// Universe returns the rights universe labelling this graph's edges.
func (g *Graph) Universe() *rights.Universe { return g.universe }

// Grow pre-sizes the vertex table and name index for n additional
// vertices, sparing bulk loaders the incremental rehash/regrow cost. It
// changes no observable state.
func (g *Graph) Grow(n int) {
	if n <= 0 {
		return
	}
	if free := cap(g.vertices) - len(g.vertices); free < n {
		grown := make([]vertex, len(g.vertices), len(g.vertices)+n)
		copy(grown, g.vertices)
		g.vertices = grown
	}
	byName := make(map[string]ID, len(g.byName)+n)
	for k, v := range g.byName {
		byName[k] = v
	}
	g.byName = byName
}

// Revision returns a counter incremented by every successful mutation.
// Any result computed purely from the graph remains valid while the
// revision is unchanged — both the lazy adjacency snapshot below and the
// service layer's query cache (internal/qcache) key on it. Counters from
// different Graph instances are unrelated; cross-graph keys need an
// additional generation discriminator.
func (g *Graph) Revision() uint64 { return g.revision }

// RestoreRevision overwrites the revision counter. It exists for crash
// recovery: a graph rebuilt from a durable snapshot must resume the
// revision sequence the snapshot recorded, so that replayed journal
// mutations land on the same revisions as the originals and
// revision-keyed caches never conflate pre- and post-crash states. The
// lazy adjacency snapshot is dropped — it may have been built at a now-
// colliding counter value over different edges — and so is the island
// index.
func (g *Graph) RestoreRevision(rev uint64) {
	g.adjMu.Lock()
	g.revision = rev
	g.snap = nil
	g.adjMu.Unlock()
	g.islandInvalidate()
	g.record(Change{Kind: ChangeDestructive, Src: None, Dst: None})
}

// NumVertices returns the number of live (non-deleted) vertices.
func (g *Graph) NumVertices() int { return g.live }

// Cap returns the upper bound on vertex IDs: all live IDs are < Cap().
func (g *Graph) Cap() int { return len(g.vertices) }

// NumEdges returns the number of directed vertex pairs carrying a non-empty
// explicit or implicit label.
func (g *Graph) NumEdges() int {
	n := 0
	for i := range g.vertices {
		if !g.vertices[i].deleted {
			n += len(g.vertices[i].out)
		}
	}
	return n
}

func (g *Graph) addVertex(name string, kind Kind) (ID, error) {
	if name == "" {
		return None, fmt.Errorf("graph: empty vertex name")
	}
	if strings.ContainsAny(name, " \t\n\r(){}") {
		return None, fmt.Errorf("graph: invalid vertex name %q", name)
	}
	if _, dup := g.byName[name]; dup {
		return None, fmt.Errorf("graph: duplicate vertex name %q", name)
	}
	id := ID(len(g.vertices))
	g.vertices = append(g.vertices, vertex{name: name, kind: kind})
	g.byName[name] = id
	g.revision++
	g.live++
	g.islandAddVertex()
	g.record(Change{Kind: ChangeAddVertex, Src: id, Dst: None})
	return id, nil
}

// AddSubject adds a subject vertex with a unique name.
func (g *Graph) AddSubject(name string) (ID, error) { return g.addVertex(name, Subject) }

// AddObject adds an object vertex with a unique name.
func (g *Graph) AddObject(name string) (ID, error) { return g.addVertex(name, Object) }

// MustSubject adds a subject and panics on error; for building fixtures.
func (g *Graph) MustSubject(name string) ID {
	id, err := g.AddSubject(name)
	if err != nil {
		panic(err)
	}
	return id
}

// MustObject adds an object and panics on error; for building fixtures.
func (g *Graph) MustObject(name string) ID {
	id, err := g.AddObject(name)
	if err != nil {
		panic(err)
	}
	return id
}

// Lookup returns the vertex with the given name.
func (g *Graph) Lookup(name string) (ID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// Valid reports whether id names a live vertex.
func (g *Graph) Valid(id ID) bool {
	return id >= 0 && int(id) < len(g.vertices) && !g.vertices[id].deleted
}

func (g *Graph) mustLive(id ID) *vertex {
	if !g.Valid(id) {
		panic(fmt.Sprintf("graph: invalid vertex id %d", id))
	}
	return &g.vertices[id]
}

// Name returns the vertex's name.
func (g *Graph) Name(id ID) string { return g.mustLive(id).name }

// KindOf returns whether the vertex is a subject or an object.
func (g *Graph) KindOf(id ID) Kind { return g.mustLive(id).kind }

// IsSubject reports whether id is a live subject vertex.
func (g *Graph) IsSubject(id ID) bool { return g.Valid(id) && g.vertices[id].kind == Subject }

// IsObject reports whether id is a live object vertex.
func (g *Graph) IsObject(id ID) bool { return g.Valid(id) && g.vertices[id].kind == Object }

// DeleteVertex removes a vertex and every edge incident to it. The ID is
// not reused.
func (g *Graph) DeleteVertex(id ID) error {
	if !g.Valid(id) {
		return fmt.Errorf("graph: invalid vertex id %d", id)
	}
	v := &g.vertices[id]
	// Island-index maintenance: deleting a subject with incident explicit
	// tg edges to other subjects can split an island — invalidate. A
	// tg-isolated vertex leaves every other island untouched (the stale
	// singleton is unreachable through IsSubject guards).
	if v.kind == Subject {
		splits := false
		for dst, l := range v.out {
			if l.explicit.HasAny(rights.TG) && g.IsSubject(dst) {
				splits = true
				break
			}
		}
		if !splits {
			for src := range v.in {
				if g.vertices[src].kind == Subject &&
					g.vertices[src].out[id].explicit.HasAny(rights.TG) {
					splits = true
					break
				}
			}
		}
		if splits {
			g.islandInvalidate()
		}
	}
	for dst := range v.out {
		delete(g.vertices[dst].in, id)
	}
	for src := range v.in {
		delete(g.vertices[src].out, id)
	}
	delete(g.byName, v.name)
	v.out, v.in = nil, nil
	v.deleted = true
	g.revision++
	g.live--
	g.record(Change{Kind: ChangeDestructive, Src: id, Dst: None})
	return nil
}

// Vertices returns all live vertex IDs in ascending order.
func (g *Graph) Vertices() []ID {
	out := make([]ID, 0, g.live)
	for i := range g.vertices {
		if !g.vertices[i].deleted {
			out = append(out, ID(i))
		}
	}
	return out
}

// Subjects returns all live subject IDs in ascending order.
func (g *Graph) Subjects() []ID {
	var out []ID
	for i := range g.vertices {
		if !g.vertices[i].deleted && g.vertices[i].kind == Subject {
			out = append(out, ID(i))
		}
	}
	return out
}

// Objects returns all live object IDs in ascending order.
func (g *Graph) Objects() []ID {
	var out []ID
	for i := range g.vertices {
		if !g.vertices[i].deleted && g.vertices[i].kind == Object {
			out = append(out, ID(i))
		}
	}
	return out
}

// AddExplicit adds the rights in set to the explicit label of the edge
// src→dst, creating the edge if needed. Self-edges are rejected: the model's
// rules only relate distinct vertices.
func (g *Graph) AddExplicit(src, dst ID, set rights.Set) error {
	return g.addLabel(src, dst, set, false)
}

// AddImplicit adds the rights in set to the implicit label of src→dst.
// De facto rules only ever add read; the set is typically rights.R.
func (g *Graph) AddImplicit(src, dst ID, set rights.Set) error {
	return g.addLabel(src, dst, set, true)
}

func (g *Graph) addLabel(src, dst ID, set rights.Set, implicit bool) error {
	if src == dst {
		return fmt.Errorf("graph: self-edge on vertex %d", src)
	}
	if !g.Valid(src) || !g.Valid(dst) {
		return fmt.Errorf("graph: invalid edge %d→%d", src, dst)
	}
	if set.Empty() {
		return nil
	}
	s := &g.vertices[src]
	l := s.out[dst]
	var added rights.Set
	if implicit {
		added = set.Minus(l.implicit)
		l.implicit = l.implicit.Union(set)
	} else {
		added = set.Minus(l.explicit)
		l.explicit = l.explicit.Union(set)
		g.islandAddExplicit(src, dst, set)
	}
	if s.out == nil {
		s.out = make(map[ID]label)
	}
	s.out[dst] = l
	d := &g.vertices[dst]
	if d.in == nil {
		d.in = make(map[ID]struct{})
	}
	d.in[src] = struct{}{}
	g.revision++
	if !added.Empty() {
		kind := ChangeAddExplicit
		if implicit {
			kind = ChangeAddImplicit
		}
		g.record(Change{Kind: kind, Src: src, Dst: dst, Set: added})
	}
	return nil
}

// RemoveExplicit deletes the rights in set from the explicit label of
// src→dst. If both labels become empty the edge disappears. Removing rights
// from a non-existent edge is a no-op, mirroring the remove rule's
// tolerance.
func (g *Graph) RemoveExplicit(src, dst ID, set rights.Set) error {
	if !g.Valid(src) || !g.Valid(dst) {
		return fmt.Errorf("graph: invalid edge %d→%d", src, dst)
	}
	s := &g.vertices[src]
	l, ok := s.out[dst]
	if !ok {
		return nil
	}
	had := l.explicit
	l.explicit = l.explicit.Minus(set)
	// Island-index maintenance: losing the last t/g right on a
	// subject→subject edge can split an island — non-monotone, invalidate.
	if had.HasAny(rights.TG) && !l.explicit.HasAny(rights.TG) &&
		s.kind == Subject && g.vertices[dst].kind == Subject {
		g.islandInvalidate()
	}
	g.setLabel(src, dst, l)
	g.revision++
	if removed := had.Minus(l.explicit); !removed.Empty() {
		g.record(Change{Kind: ChangeRemoveExplicit, Src: src, Dst: dst, Set: removed})
	}
	return nil
}

// RemoveImplicit deletes the rights in set from the implicit label of
// src→dst; used when de facto closures are recomputed.
func (g *Graph) RemoveImplicit(src, dst ID, set rights.Set) error {
	if !g.Valid(src) || !g.Valid(dst) {
		return fmt.Errorf("graph: invalid edge %d→%d", src, dst)
	}
	s := &g.vertices[src]
	l, ok := s.out[dst]
	if !ok {
		return nil
	}
	had := l.implicit
	l.implicit = l.implicit.Minus(set)
	g.setLabel(src, dst, l)
	g.revision++
	if removed := had.Minus(l.implicit); !removed.Empty() {
		g.record(Change{Kind: ChangeRemoveImplicit, Src: src, Dst: dst, Set: removed})
	}
	return nil
}

// ClearImplicit removes every implicit label in the graph.
func (g *Graph) ClearImplicit() {
	for i := range g.vertices {
		v := &g.vertices[i]
		if v.deleted {
			continue
		}
		for dst, l := range v.out {
			l.implicit = 0
			g.setLabel(ID(i), dst, l)
		}
	}
	g.revision++
	g.record(Change{Kind: ChangeDestructive, Src: None, Dst: None})
}

func (g *Graph) setLabel(src, dst ID, l label) {
	if l.empty() {
		delete(g.vertices[src].out, dst)
		delete(g.vertices[dst].in, src)
	} else {
		g.vertices[src].out[dst] = l
	}
}

// Explicit returns the explicit label of src→dst (empty if no edge).
func (g *Graph) Explicit(src, dst ID) rights.Set {
	if !g.Valid(src) || !g.Valid(dst) {
		return 0
	}
	return g.vertices[src].out[dst].explicit
}

// Implicit returns the implicit label of src→dst (empty if no edge).
func (g *Graph) Implicit(src, dst ID) rights.Set {
	if !g.Valid(src) || !g.Valid(dst) {
		return 0
	}
	return g.vertices[src].out[dst].implicit
}

// Combined returns the union of explicit and implicit labels of src→dst.
func (g *Graph) Combined(src, dst ID) rights.Set {
	if !g.Valid(src) || !g.Valid(dst) {
		return 0
	}
	l := g.vertices[src].out[dst]
	return l.explicit.Union(l.implicit)
}

// HalfEdge is one end of an adjacency listing: the far vertex and the labels
// on the edge in the listed direction.
type HalfEdge struct {
	Other    ID
	Explicit rights.Set
	Implicit rights.Set
}

// Combined returns the union of the half-edge's labels.
func (h HalfEdge) Combined() rights.Set { return h.Explicit.Union(h.Implicit) }

// Out returns v's outgoing half-edges sorted by destination ID.
func (g *Graph) Out(v ID) []HalfEdge {
	vt := g.mustLive(v)
	out := make([]HalfEdge, 0, len(vt.out))
	for dst, l := range vt.out {
		out = append(out, HalfEdge{Other: dst, Explicit: l.explicit, Implicit: l.implicit})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Other < out[j].Other })
	return out
}

// In returns v's incoming half-edges (labels read in the src→v direction),
// sorted by source ID.
func (g *Graph) In(v ID) []HalfEdge {
	vt := g.mustLive(v)
	in := make([]HalfEdge, 0, len(vt.in))
	for src := range vt.in {
		l := g.vertices[src].out[v]
		in = append(in, HalfEdge{Other: src, Explicit: l.explicit, Implicit: l.implicit})
	}
	sort.Slice(in, func(i, j int) bool { return in[i].Other < in[j].Other })
	return in
}

// Edge is a full directed labelled edge, as returned by Edges.
type Edge struct {
	Src, Dst ID
	Explicit rights.Set
	Implicit rights.Set
}

// Edges returns every labelled edge sorted by (Src, Dst). The listing is
// materialized from the revision-cached CSR snapshot — sources ascend and
// each source's destinations are pre-sorted, so no per-call sort runs —
// into a slice pre-sized to the known edge count.
func (g *Graph) Edges() []Edge {
	s := g.Snapshot()
	out := make([]Edge, 0, s.NumEdges())
	for i := 0; i < s.Cap(); i++ {
		dst, lbl := s.Out(ID(i))
		for j, d := range dst {
			lp := s.labels[lbl[j]]
			out = append(out, Edge{Src: ID(i), Dst: d, Explicit: lp.Explicit, Implicit: lp.Implicit})
		}
	}
	return out
}

// Clone returns a deep copy sharing only the (immutable by convention)
// rights universe.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		universe: g.universe,
		vertices: make([]vertex, len(g.vertices)),
		byName:   make(map[string]ID, len(g.byName)),
		revision: g.revision,
		live:     g.live,
	}
	for i := range g.vertices {
		v := &g.vertices[i]
		nv := vertex{name: v.name, kind: v.kind, deleted: v.deleted}
		if v.out != nil {
			nv.out = make(map[ID]label, len(v.out))
			for k, l := range v.out {
				nv.out[k] = l
			}
		}
		if v.in != nil {
			nv.in = make(map[ID]struct{}, len(v.in))
			for k := range v.in {
				nv.in[k] = struct{}{}
			}
		}
		c.vertices[i] = nv
	}
	for k, v := range g.byName {
		c.byName[k] = v
	}
	return c
}

// Equal reports structural equality: same vertices (ID, name, kind, live
// status) and identical labels on every pair.
func (g *Graph) Equal(o *Graph) bool {
	if len(g.vertices) != len(o.vertices) {
		return false
	}
	for i := range g.vertices {
		a, b := &g.vertices[i], &o.vertices[i]
		if a.deleted != b.deleted {
			return false
		}
		if a.deleted {
			continue
		}
		if a.name != b.name || a.kind != b.kind || len(a.out) != len(b.out) {
			return false
		}
		for dst, l := range a.out {
			if b.out[dst] != l {
				return false
			}
		}
	}
	return true
}

// Canonical returns a deterministic textual encoding of the graph's live
// structure. Two graphs with equal canonical forms are Equal up to deleted-
// vertex holes. Used for state deduplication in derivation exploration.
func (g *Graph) Canonical() string {
	var b strings.Builder
	for i := range g.vertices {
		v := &g.vertices[i]
		if v.deleted {
			continue
		}
		fmt.Fprintf(&b, "%d%c;", i, kindChar(v.kind))
	}
	b.WriteByte('|')
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "%d>%d:%x/%x;", e.Src, e.Dst, uint64(e.Explicit), uint64(e.Implicit))
	}
	return b.String()
}

func kindChar(k Kind) byte {
	if k == Subject {
		return 's'
	}
	return 'o'
}

// Validate checks internal invariants (index consistency, no self-edges,
// no labels on deleted vertices) and returns the violations found. A healthy
// graph returns nil; a non-nil result indicates a bug in this package or
// memory corruption by a caller.
func (g *Graph) Validate() []error {
	var errs []error
	for i := range g.vertices {
		v := &g.vertices[i]
		if v.deleted {
			if v.out != nil || v.in != nil {
				errs = append(errs, fmt.Errorf("deleted vertex %d retains adjacency", i))
			}
			continue
		}
		if got, ok := g.byName[v.name]; !ok || got != ID(i) {
			errs = append(errs, fmt.Errorf("vertex %d name index broken (%q)", i, v.name))
		}
		for dst, l := range v.out {
			if dst == ID(i) {
				errs = append(errs, fmt.Errorf("self-edge on %d", i))
			}
			if l.empty() {
				errs = append(errs, fmt.Errorf("empty label retained on %d→%d", i, dst))
			}
			if !g.Valid(dst) {
				errs = append(errs, fmt.Errorf("edge %d→%d to dead vertex", i, dst))
				continue
			}
			if _, ok := g.vertices[dst].in[ID(i)]; !ok {
				errs = append(errs, fmt.Errorf("missing reverse index for %d→%d", i, dst))
			}
		}
		for src := range v.in {
			if !g.Valid(src) {
				errs = append(errs, fmt.Errorf("reverse index %d→%d from dead vertex", src, i))
				continue
			}
			if _, ok := g.vertices[src].out[ID(i)]; !ok {
				errs = append(errs, fmt.Errorf("stale reverse index for %d→%d", src, i))
			}
		}
	}
	return errs
}

// String renders a compact human-readable listing, one edge per line.
func (g *Graph) String() string {
	var b strings.Builder
	for _, id := range g.Vertices() {
		fmt.Fprintf(&b, "%s %s\n", g.KindOf(id), g.Name(id))
	}
	for _, e := range g.Edges() {
		if !e.Explicit.Empty() {
			fmt.Fprintf(&b, "%s -> %s : %s\n", g.Name(e.Src), g.Name(e.Dst), e.Explicit.Format(g.universe))
		}
		if !e.Implicit.Empty() {
			fmt.Fprintf(&b, "%s ~> %s : %s\n", g.Name(e.Src), g.Name(e.Dst), e.Implicit.Format(g.universe))
		}
	}
	return b.String()
}
