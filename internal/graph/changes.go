package graph

import "takegrant/internal/rights"

// ChangeKind classifies a single graph mutation for incremental observers.
type ChangeKind uint8

const (
	// ChangeAddVertex: a vertex was created (Src is its ID, Dst is None).
	ChangeAddVertex ChangeKind = iota
	// ChangeAddExplicit: Set holds the explicit rights newly added to
	// Src→Dst (bits already present are not reported).
	ChangeAddExplicit
	// ChangeAddImplicit: Set holds the implicit rights newly added to
	// Src→Dst.
	ChangeAddImplicit
	// ChangeRemoveExplicit: Set holds the explicit rights actually removed
	// from Src→Dst.
	ChangeRemoveExplicit
	// ChangeRemoveImplicit: Set holds the implicit rights actually removed
	// from Src→Dst.
	ChangeRemoveImplicit
	// ChangeDestructive: a wholesale invalidation — vertex deletion,
	// ClearImplicit, or RestoreRevision. Incremental observers must
	// rebuild from scratch; no edge details are reported.
	ChangeDestructive
)

func (k ChangeKind) String() string {
	switch k {
	case ChangeAddVertex:
		return "add_vertex"
	case ChangeAddExplicit:
		return "add_explicit"
	case ChangeAddImplicit:
		return "add_implicit"
	case ChangeRemoveExplicit:
		return "remove_explicit"
	case ChangeRemoveImplicit:
		return "remove_implicit"
	case ChangeDestructive:
		return "destructive"
	default:
		return "unknown"
	}
}

// Change describes one effective mutation. Mutations with no structural
// effect (adding rights already present, removing rights never held) are
// not reported even when they bump the revision counter.
type Change struct {
	Kind     ChangeKind
	Src, Dst ID
	Set      rights.Set
}

// SetRecorder installs fn as the mutation observer; it is invoked
// synchronously from inside every effective mutation, after the graph
// state has been updated but while the caller's mutation lock (if any) is
// still held. Pass nil to detach. At most one recorder is active; the
// hierarchy engine uses this to maintain its dirty set. The recorder is
// deliberately not cloned by Clone — a copy has no observer.
func (g *Graph) SetRecorder(fn func(Change)) { g.recorder = fn }

func (g *Graph) record(c Change) {
	if g.recorder != nil {
		g.recorder(c)
	}
}
