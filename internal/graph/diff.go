package graph

import (
	"fmt"
	"strings"

	"takegrant/internal/rights"
)

// DiffEntry describes one difference between two graphs.
type DiffEntry struct {
	// What changed: "vertex" or "edge".
	Kind string
	// Human-readable description.
	Detail string
}

func (d DiffEntry) String() string { return d.Kind + ": " + d.Detail }

// Diff reports the differences from g to o, for debugging derivations and
// explaining explorer mismatches. IDs are compared positionally, matching
// how derivations evolve a cloned graph.
func (g *Graph) Diff(o *Graph) []DiffEntry {
	var out []DiffEntry
	n := len(g.vertices)
	if len(o.vertices) > n {
		n = len(o.vertices)
	}
	for i := 0; i < n; i++ {
		gLive := i < len(g.vertices) && !g.vertices[i].deleted
		oLive := i < len(o.vertices) && !o.vertices[i].deleted
		switch {
		case gLive && !oLive:
			out = append(out, DiffEntry{"vertex", fmt.Sprintf("- %s (%s)", g.vertices[i].name, g.vertices[i].kind)})
		case !gLive && oLive:
			out = append(out, DiffEntry{"vertex", fmt.Sprintf("+ %s (%s)", o.vertices[i].name, o.vertices[i].kind)})
		case gLive && oLive:
			if g.vertices[i].name != o.vertices[i].name || g.vertices[i].kind != o.vertices[i].kind {
				out = append(out, DiffEntry{"vertex", fmt.Sprintf("%s(%s) != %s(%s)",
					g.vertices[i].name, g.vertices[i].kind, o.vertices[i].name, o.vertices[i].kind)})
			}
		}
	}
	seen := make(map[[2]ID]bool)
	for _, e := range g.Edges() {
		seen[[2]ID{e.Src, e.Dst}] = true
		var ol label
		if o.Valid(e.Src) && o.Valid(e.Dst) {
			ol = label{o.Explicit(e.Src, e.Dst), o.Implicit(e.Src, e.Dst)}
		}
		gl := label{e.Explicit, e.Implicit}
		if gl != ol {
			out = append(out, DiffEntry{"edge", edgeDiff(g, e.Src, e.Dst, gl, ol)})
		}
	}
	for _, e := range o.Edges() {
		if seen[[2]ID{e.Src, e.Dst}] {
			continue
		}
		if !g.Valid(e.Src) || !g.Valid(e.Dst) {
			continue // already reported as a vertex diff
		}
		out = append(out, DiffEntry{"edge", edgeDiff(o, e.Src, e.Dst,
			label{g.Explicit(e.Src, e.Dst), g.Implicit(e.Src, e.Dst)},
			label{e.Explicit, e.Implicit})})
	}
	return out
}

func edgeDiff(g *Graph, src, dst ID, from, to label) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s→%s ", g.Name(src), g.Name(dst))
	fmt.Fprintf(&b, "explicit %s→%s implicit %s→%s",
		from.explicit.Format(g.universe), to.explicit.Format(g.universe),
		from.implicit.Format(g.universe), to.implicit.Format(g.universe))
	return b.String()
}

// Builder provides fluent construction of fixture graphs in tests and
// examples; every method panics on error.
type Builder struct {
	G *Graph
}

// NewBuilder returns a Builder over a fresh graph with the given universe
// (nil for the default r,w,t,g universe).
func NewBuilder(u *rights.Universe) *Builder {
	return &Builder{G: New(u)}
}

// Subject adds a subject vertex and returns its ID.
func (b *Builder) Subject(name string) ID { return b.G.MustSubject(name) }

// Object adds an object vertex and returns its ID.
func (b *Builder) Object(name string) ID { return b.G.MustObject(name) }

// Edge adds explicit rights (given as a comma-separated names string, with
// unknown names auto-declared) on src→dst.
func (b *Builder) Edge(src, dst ID, set string) *Builder {
	s, err := rights.ParseDeclaring(b.G.Universe(), set)
	if err != nil {
		panic(err)
	}
	if err := b.G.AddExplicit(src, dst, s); err != nil {
		panic(err)
	}
	return b
}

// EdgeSet adds explicit rights on src→dst from a Set.
func (b *Builder) EdgeSet(src, dst ID, set rights.Set) *Builder {
	if err := b.G.AddExplicit(src, dst, set); err != nil {
		panic(err)
	}
	return b
}
