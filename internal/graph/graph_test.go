package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"takegrant/internal/rights"
)

func TestAddVertices(t *testing.T) {
	g := New(nil)
	s, err := g.AddSubject("alice")
	if err != nil {
		t.Fatal(err)
	}
	o, err := g.AddObject("file")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2 {
		t.Errorf("NumVertices = %d", g.NumVertices())
	}
	if !g.IsSubject(s) || g.IsObject(s) {
		t.Error("alice kind wrong")
	}
	if !g.IsObject(o) || g.IsSubject(o) {
		t.Error("file kind wrong")
	}
	if g.Name(s) != "alice" || g.KindOf(o) != Object {
		t.Error("name/kind accessors wrong")
	}
	if id, ok := g.Lookup("alice"); !ok || id != s {
		t.Error("Lookup(alice) wrong")
	}
	if _, ok := g.Lookup("bob"); ok {
		t.Error("Lookup(bob) found phantom")
	}
}

func TestVertexNameErrors(t *testing.T) {
	g := New(nil)
	g.MustSubject("x")
	if _, err := g.AddSubject("x"); err == nil {
		t.Error("duplicate name accepted")
	}
	for _, bad := range []string{"", "a b", "c\td", "e(f"} {
		if _, err := g.AddObject(bad); err == nil {
			t.Errorf("bad name %q accepted", bad)
		}
	}
}

func TestEdges(t *testing.T) {
	g := New(nil)
	a := g.MustSubject("a")
	bv := g.MustSubject("b")
	if err := g.AddExplicit(a, bv, rights.TG); err != nil {
		t.Fatal(err)
	}
	if err := g.AddImplicit(a, bv, rights.R); err != nil {
		t.Fatal(err)
	}
	if got := g.Explicit(a, bv); got != rights.TG {
		t.Errorf("Explicit = %v", got)
	}
	if got := g.Implicit(a, bv); got != rights.R {
		t.Errorf("Implicit = %v", got)
	}
	if got := g.Combined(a, bv); got != rights.TG.Union(rights.R) {
		t.Errorf("Combined = %v", got)
	}
	if got := g.Explicit(bv, a); !got.Empty() {
		t.Errorf("reverse edge nonempty: %v", got)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
}

func TestSelfEdgeRejected(t *testing.T) {
	g := New(nil)
	a := g.MustSubject("a")
	if err := g.AddExplicit(a, a, rights.R); err == nil {
		t.Error("self-edge accepted")
	}
}

func TestEmptySetAddIsNoop(t *testing.T) {
	g := New(nil)
	a, b := g.MustSubject("a"), g.MustSubject("b")
	if err := g.AddExplicit(a, b, 0); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Error("empty-label edge materialised")
	}
}

func TestRemoveExplicit(t *testing.T) {
	g := New(nil)
	a, b := g.MustSubject("a"), g.MustObject("b")
	g.AddExplicit(a, b, rights.Of(rights.Read, rights.Write, rights.Take))
	if err := g.RemoveExplicit(a, b, rights.RW); err != nil {
		t.Fatal(err)
	}
	if got := g.Explicit(a, b); got != rights.T {
		t.Errorf("after remove: %v", got)
	}
	// Removing all remaining rights deletes the edge entirely.
	g.RemoveExplicit(a, b, rights.T)
	if g.NumEdges() != 0 {
		t.Error("edge survives empty label")
	}
	// Removing from a non-edge is a tolerated no-op.
	if err := g.RemoveExplicit(a, b, rights.R); err != nil {
		t.Errorf("remove on missing edge: %v", err)
	}
}

func TestRemoveImplicitAndClear(t *testing.T) {
	g := New(nil)
	a, b, c := g.MustSubject("a"), g.MustSubject("b"), g.MustSubject("c")
	g.AddExplicit(a, b, rights.T)
	g.AddImplicit(a, b, rights.R)
	g.AddImplicit(b, c, rights.R)
	g.RemoveImplicit(a, b, rights.R)
	if !g.Implicit(a, b).Empty() || g.Explicit(a, b) != rights.T {
		t.Error("RemoveImplicit broke labels")
	}
	g.ClearImplicit()
	if !g.Implicit(b, c).Empty() {
		t.Error("ClearImplicit left implicit label")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges after clear = %d", g.NumEdges())
	}
}

func TestDeleteVertex(t *testing.T) {
	g := New(nil)
	a, b, c := g.MustSubject("a"), g.MustSubject("b"), g.MustSubject("c")
	g.AddExplicit(a, b, rights.T)
	g.AddExplicit(c, b, rights.G)
	g.AddExplicit(b, c, rights.R)
	if err := g.DeleteVertex(b); err != nil {
		t.Fatal(err)
	}
	if g.Valid(b) {
		t.Error("deleted vertex still valid")
	}
	if g.NumVertices() != 2 || g.NumEdges() != 0 {
		t.Errorf("after delete: %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if errs := g.Validate(); errs != nil {
		t.Errorf("Validate: %v", errs)
	}
	if _, ok := g.Lookup("b"); ok {
		t.Error("deleted vertex still in name index")
	}
	// Name can be reused after deletion.
	if _, err := g.AddSubject("b"); err != nil {
		t.Errorf("reusing deleted name: %v", err)
	}
	if err := g.DeleteVertex(b); err == nil {
		t.Error("double delete accepted")
	}
}

func TestAdjacencyListings(t *testing.T) {
	g := New(nil)
	a, b, c := g.MustSubject("a"), g.MustSubject("b"), g.MustObject("c")
	g.AddExplicit(a, b, rights.T)
	g.AddExplicit(a, c, rights.R)
	g.AddExplicit(b, a, rights.G)
	out := g.Out(a)
	if len(out) != 2 || out[0].Other != b || out[1].Other != c {
		t.Fatalf("Out(a) = %v", out)
	}
	if out[0].Explicit != rights.T || out[1].Explicit != rights.R {
		t.Errorf("Out labels wrong: %v", out)
	}
	in := g.In(a)
	if len(in) != 1 || in[0].Other != b || in[0].Explicit != rights.G {
		t.Errorf("In(a) = %v", in)
	}
	edges := g.Edges()
	if len(edges) != 3 {
		t.Fatalf("Edges = %v", edges)
	}
	// Sorted by (src,dst).
	if edges[0].Src != a || edges[0].Dst != b || edges[2].Src != b {
		t.Errorf("Edges order: %v", edges)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(nil)
	a, b := g.MustSubject("a"), g.MustObject("b")
	g.AddExplicit(a, b, rights.R)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.AddExplicit(a, b, rights.W)
	if g.Equal(c) {
		t.Error("mutating clone affected original (Equal)")
	}
	if g.Explicit(a, b) != rights.R {
		t.Error("mutating clone affected original label")
	}
	c2 := g.Clone()
	c2.MustSubject("z")
	if g.NumVertices() != 2 {
		t.Error("clone shares vertex slice")
	}
}

func TestEqualAndCanonical(t *testing.T) {
	build := func() *Graph {
		g := New(nil)
		a, b := g.MustSubject("a"), g.MustObject("b")
		g.AddExplicit(a, b, rights.RW)
		g.AddImplicit(b, a, rights.R)
		return g
	}
	g1, g2 := build(), build()
	if !g1.Equal(g2) {
		t.Error("identically built graphs not Equal")
	}
	if g1.Canonical() != g2.Canonical() {
		t.Error("canonical forms differ")
	}
	g2.AddExplicit(ID(0), ID(1), rights.T)
	if g1.Equal(g2) || g1.Canonical() == g2.Canonical() {
		t.Error("differing graphs compare equal")
	}
}

func TestCanonicalDistinguishesKindAndImplicit(t *testing.T) {
	g1 := New(nil)
	g1.MustSubject("a")
	g2 := New(nil)
	g2.MustObject("a")
	if g1.Canonical() == g2.Canonical() {
		t.Error("canonical ignores vertex kind")
	}
	g3 := New(nil)
	a, b := g3.MustSubject("a"), g3.MustSubject("b")
	g4 := g3.Clone()
	g3.AddExplicit(a, b, rights.R)
	g4.AddImplicit(a, b, rights.R)
	if g3.Canonical() == g4.Canonical() {
		t.Error("canonical conflates explicit and implicit labels")
	}
}

func TestRevisionAdvances(t *testing.T) {
	g := New(nil)
	r0 := g.Revision()
	a := g.MustSubject("a")
	b := g.MustSubject("b")
	g.AddExplicit(a, b, rights.R)
	if g.Revision() <= r0 {
		t.Error("revision did not advance")
	}
}

func TestDiff(t *testing.T) {
	g := New(nil)
	a, b := g.MustSubject("a"), g.MustObject("b")
	g.AddExplicit(a, b, rights.R)
	h := g.Clone()
	if d := g.Diff(h); len(d) != 0 {
		t.Errorf("diff of clones: %v", d)
	}
	h.AddExplicit(a, b, rights.W)
	h.MustSubject("c")
	d := g.Diff(h)
	if len(d) != 2 {
		t.Fatalf("diff = %v", d)
	}
	var kinds []string
	for _, e := range d {
		kinds = append(kinds, e.Kind)
	}
	joined := strings.Join(kinds, ",")
	if !strings.Contains(joined, "vertex") || !strings.Contains(joined, "edge") {
		t.Errorf("diff kinds = %v", kinds)
	}
}

func TestDiffEdgeOnlyInOther(t *testing.T) {
	g := New(nil)
	a, b := g.MustSubject("a"), g.MustSubject("b")
	_ = a
	h := g.Clone()
	h.AddExplicit(b, a, rights.G)
	if d := g.Diff(h); len(d) != 1 || d[0].Kind != "edge" {
		t.Errorf("diff = %v", d)
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder(nil)
	x := b.Subject("x")
	y := b.Object("y")
	b.Edge(x, y, "r,e") // e auto-declared
	e, ok := b.G.Universe().Lookup("e")
	if !ok {
		t.Fatal("e not declared")
	}
	if !b.G.Explicit(x, y).Has(e) || !b.G.Explicit(x, y).Has(rights.Read) {
		t.Errorf("builder edge label = %v", b.G.Explicit(x, y))
	}
}

func TestStringRendering(t *testing.T) {
	g := New(nil)
	a, b := g.MustSubject("a"), g.MustObject("f")
	g.AddExplicit(a, b, rights.RW)
	g.AddImplicit(b, a, rights.R)
	s := g.String()
	for _, want := range []string{"subject a", "object f", "a -> f : r,w", "f ~> a : r"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}

// randomGraph builds a pseudo-random graph with n vertices and ~m edge
// attempts, for property tests.
func randomGraph(rng *rand.Rand, n, m int) *Graph {
	g := New(nil)
	for i := 0; i < n; i++ {
		name := "v" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if rng.Intn(2) == 0 {
			g.MustSubject(name)
		} else {
			g.MustObject(name)
		}
	}
	vs := g.Vertices()
	for i := 0; i < m; i++ {
		a := vs[rng.Intn(len(vs))]
		b := vs[rng.Intn(len(vs))]
		if a == b {
			continue
		}
		set := rights.Set(rng.Intn(16))
		if set.Empty() {
			continue
		}
		if rng.Intn(4) == 0 {
			g.AddImplicit(a, b, rights.R)
		} else {
			g.AddExplicit(a, b, set)
		}
	}
	return g
}

func TestPropertyCloneEqualCanonical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(10), rng.Intn(40))
		c := g.Clone()
		return g.Equal(c) && g.Canonical() == c.Canonical() && len(g.Validate()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyValidateAfterMutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 3+rng.Intn(8), rng.Intn(30))
		// Random deletions and removals must preserve invariants.
		for i := 0; i < 10; i++ {
			vs := g.Vertices()
			if len(vs) == 0 {
				break
			}
			v := vs[rng.Intn(len(vs))]
			switch rng.Intn(3) {
			case 0:
				g.DeleteVertex(v)
			case 1:
				for _, h := range g.Out(v) {
					g.RemoveExplicit(v, h.Other, rights.Set(rng.Intn(16)))
				}
			case 2:
				g.ClearImplicit()
			}
		}
		return len(g.Validate()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCapAndVerticesListing(t *testing.T) {
	g := New(nil)
	a := g.MustSubject("a")
	g.MustObject("b")
	g.MustSubject("c")
	g.DeleteVertex(a)
	if g.Cap() != 3 {
		t.Errorf("Cap = %d", g.Cap())
	}
	vs := g.Vertices()
	if len(vs) != 2 || vs[0] != 1 || vs[1] != 2 {
		t.Errorf("Vertices = %v", vs)
	}
	if subs := g.Subjects(); len(subs) != 1 || subs[0] != 2 {
		t.Errorf("Subjects = %v", subs)
	}
	if objs := g.Objects(); len(objs) != 1 || objs[0] != 1 {
		t.Errorf("Objects = %v", objs)
	}
}
