package restrict

import (
	"strings"
	"sync"
	"testing"
	"time"

	"takegrant/internal/hierarchy"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

func TestLoggedRecordsDecisions(t *testing.T) {
	c, _ := hierarchy.Linear(2, 1)
	g := c.G
	s := hierarchy.AnalyzeRW(g)
	low := c.Members["L1"][0]
	high := c.Members["L2"][0]
	g.AddExplicit(low, high, rights.T)

	logged := NewLogged(NewCombined(s))
	fixed := time.Unix(42, 0)
	logged.Clock = func() time.Time { return fixed }
	guard := NewGuarded(g, logged)

	guard.Apply(rules.Take(low, high, c.Bulletin["L2"], rights.W)) // allowed
	guard.Apply(rules.Take(low, high, c.Bulletin["L2"], rights.R)) // refused

	log := logged.Log()
	if len(log) != 2 {
		t.Fatalf("log = %v", log)
	}
	if !log[0].Allowed() || log[1].Allowed() {
		t.Error("verdicts wrong")
	}
	if log[0].Seq != 1 || log[1].Seq != 2 || !log[1].When.Equal(fixed) {
		t.Errorf("metadata wrong: %+v", log)
	}
	refusals := logged.Refusals()
	if len(refusals) != 1 || refusals[0].Seq != 2 {
		t.Errorf("refusals = %v", refusals)
	}
	text := logged.Format(g)
	if !strings.Contains(text, "refuse:") || !strings.Contains(text, "allow") {
		t.Errorf("format = %q", text)
	}
	logged.Reset()
	if len(logged.Log()) != 0 {
		t.Error("reset did not clear")
	}
}

func TestLoggedConcurrent(t *testing.T) {
	c, _ := hierarchy.Linear(2, 1)
	g := c.G
	s := hierarchy.AnalyzeRW(g)
	logged := NewLogged(NewCombined(s))
	low := c.Members["L1"][0]
	app := rules.Take(low, c.Members["L2"][0], c.Bulletin["L2"], rights.R)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				logged.Allows(g, app)
			}
		}()
	}
	wg.Wait()
	log := logged.Log()
	if len(log) != 400 {
		t.Fatalf("len(log) = %d", len(log))
	}
	seen := make(map[int]bool)
	for _, d := range log {
		if seen[d.Seq] {
			t.Fatalf("duplicate seq %d", d.Seq)
		}
		seen[d.Seq] = true
	}
}

func TestLoggedDelegatesNoteCreate(t *testing.T) {
	c, _ := hierarchy.Linear(2, 1)
	g := c.G
	s := hierarchy.AnalyzeRW(g)
	logged := NewLogged(NewCombined(s))
	guard := NewGuarded(g, logged)
	high := c.Members["L2"][0]
	if err := guard.Apply(rules.Create(high, "scratch", 1, rights.RW)); err != nil {
		t.Fatal(err)
	}
	sc, _ := g.Lookup("scratch")
	low := c.Members["L1"][0]
	// scratch inherited the high classification through the wrapper.
	if err := logged.Allows(g, rules.Take(low, high, sc, rights.R)); err == nil {
		t.Error("NoteCreate not delegated")
	}
}
