// Package restrict implements §5 of the paper: restrictions on the de jure
// rules that keep a hierarchical protection graph secure while remaining as
// permissive as possible.
//
// Three restriction families are provided:
//
//   - restrictions of direction (Lemma 5.3): the take/grant edge used must
//     point in a prescribed direction relative to the hierarchy — sound but
//     not complete;
//   - restrictions of application (Lemma 5.4): take/grant may not
//     manipulate certain rights — sound but not complete;
//   - the paper's combined restriction (Theorem 5.5): a de jure rule is
//     invalid iff it would complete (a) a read connection whose source is
//     lower than its target, or (b) a write path whose source is higher —
//     sound AND complete.
//
// Restrictions only ever constrain de jure rules. The de facto rules
// merely exhibit flows the explicit authorities permit, so restricting
// them cannot restrict information (§6).
//
// A Guarded executor wraps a graph with a restriction, rejecting invalid
// applications; the per-application check for the combined restriction is
// O(1) (Corollary 5.7) and the whole-graph audit is O(edges)
// (Corollary 5.6).
package restrict

import (
	"errors"
	"fmt"

	"takegrant/internal/graph"
	"takegrant/internal/rules"
)

// ErrRefused marks errors caused by a restriction refusing an application
// (as opposed to the rule's own preconditions failing). Test with
// errors.Is.
var ErrRefused = errors.New("refused by restriction")

// Leveler supplies a security classification: a level index per vertex and
// the strict partial order between levels. hierarchy.Structure implements
// it. LevelOf returns -1 for unclassified vertices.
type Leveler interface {
	LevelOf(graph.ID) int
	HigherLevel(i, j int) bool
}

// Restriction decides whether a de jure rule application may proceed.
type Restriction interface {
	// Name identifies the restriction in reports.
	Name() string
	// Allows returns nil when the application is permitted on g, or an
	// error explaining the refusal. Only de jure applications are ever
	// passed in.
	Allows(g *graph.Graph, app rules.Application) error
	// NoteCreate informs the restriction that a create minted vertex v
	// on behalf of creator, so the vertex can inherit a classification.
	NoteCreate(created, creator graph.ID)
}

// Unrestricted permits everything; the baseline.
type Unrestricted struct{}

// Name implements Restriction.
func (Unrestricted) Name() string { return "unrestricted" }

// Allows implements Restriction: always nil.
func (Unrestricted) Allows(*graph.Graph, rules.Application) error { return nil }

// NoteCreate implements Restriction.
func (Unrestricted) NoteCreate(graph.ID, graph.ID) {}

// Guarded executes rule applications against a graph under a restriction.
type Guarded struct {
	G *graph.Graph
	R Restriction
	// Applied counts successful applications; Refused counts rejections.
	Applied, Refused int
	// AppliedByOp and RefusedByOp break the counters down per rewriting
	// rule, indexed by rules.Op — the per-rule application counters a
	// metrics endpoint exposes. Failed preconditions (rule errors that are
	// not restriction refusals) count in neither.
	AppliedByOp, RefusedByOp [rules.NumOps]int
}

// NewGuarded wraps a graph with a restriction.
func NewGuarded(g *graph.Graph, r Restriction) *Guarded {
	return &Guarded{G: g, R: r}
}

// Apply checks the restriction (for de jure rules), then applies the rule.
func (e *Guarded) Apply(app rules.Application) error {
	inRange := int(app.Op) < rules.NumOps
	if app.Op.DeJure() {
		if err := e.R.Allows(e.G, app); err != nil {
			e.Refused++
			if inRange {
				e.RefusedByOp[app.Op]++
			}
			return fmt.Errorf("restrict: %s refuses %s: %v: %w", e.R.Name(), app.Op, err, ErrRefused)
		}
	}
	if err := app.Apply(e.G); err != nil {
		return err
	}
	e.Applied++
	if inRange {
		e.AppliedByOp[app.Op]++
	}
	if app.Op == rules.OpCreate {
		if id, ok := e.G.Lookup(app.NewName); ok {
			e.R.NoteCreate(id, app.X)
		}
	}
	return nil
}

// Replay runs a derivation under the restriction, stopping at the first
// refusal or failure.
func (e *Guarded) Replay(d rules.Derivation) (int, error) {
	for i := range d {
		if err := e.Apply(d[i]); err != nil {
			return i, err
		}
	}
	return len(d), nil
}
