package restrict

import (
	"math/rand"
	"testing"
	"testing/quick"

	"takegrant/internal/analysis"
	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

// figure51 builds the shape of the paper's Figure 5.1: a two-level
// hierarchy in which the higher subject x holds t to a vertex v that has
// execute and write rights to the lower-level vertex y.
func figure51(t *testing.T) (*hierarchy.Classification, *hierarchy.Structure, graph.ID, graph.ID, graph.ID, rights.Right) {
	t.Helper()
	c, err := hierarchy.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := c.G
	x := c.Members["L2"][0]
	y := c.Bulletin["L1"]
	e := g.Universe().MustDeclare("e")
	v := g.MustObject("v")
	g.AddExplicit(x, v, rights.T)
	g.AddExplicit(v, y, rights.Of(e, rights.Write))
	s := hierarchy.AnalyzeRW(g)
	return c, s, x, y, v, e
}

func TestFigure51(t *testing.T) {
	c, s, x, y, v, e := figure51(t)
	g := c.G

	// The paper: "under the unrestricted de jure and de facto rules, G is
	// not secure" — the latent connection low r> y w< v t< x exists.
	if ok, _ := hierarchy.Secure(g); ok {
		t.Error("Figure 5.1 graph should be insecure under unrestricted rules")
	}

	// Unrestricted execution realises the breach: x takes w to y, an
	// explicit write-down edge the audit flags.
	unres := NewGuarded(g.Clone(), Unrestricted{})
	if err := unres.Apply(rules.Take(x, v, y, rights.W)); err != nil {
		t.Fatalf("unrestricted take failed: %v", err)
	}
	if len(NewCombined(s).Audit(unres.G)) == 0 {
		t.Error("write-down edge not flagged by audit")
	}

	// Restricted: the same take is refused (restriction b)…
	guard := NewGuarded(g.Clone(), NewCombined(s))
	if err := guard.Apply(rules.Take(x, v, y, rights.W)); err == nil {
		t.Error("restricted executor allowed write-down")
	}
	// …but taking the execute right is allowed: rights other than r and w
	// pass freely.
	if err := guard.Apply(rules.Take(x, v, y, rights.Of(e))); err != nil {
		t.Errorf("execute take refused: %v", err)
	}
	if !guard.G.Explicit(x, y).Has(e) {
		t.Error("execute right not delivered")
	}
	if guard.Refused != 1 || guard.Applied != 1 {
		t.Errorf("counters = %d refused, %d applied", guard.Refused, guard.Applied)
	}
	if len(NewCombined(s).Audit(guard.G)) != 0 {
		t.Error("guarded execution produced an audit violation")
	}
}

// figure61 builds the shape of Figure 6.1: a breach achievable with de
// jure rules alone — restricting only the de facto rules cannot prevent it.
func figure61(t *testing.T) (*graph.Graph, *hierarchy.Structure, graph.ID, graph.ID) {
	t.Helper()
	c, err := hierarchy.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := c.G
	low := c.Members["L1"][0]
	secret := c.Bulletin["L2"]
	mid := g.MustObject("mid")
	g.AddExplicit(low, mid, rights.T)
	g.AddExplicit(mid, secret, rights.R)
	return g, hierarchy.AnalyzeRW(g), low, secret
}

func TestFigure61DeJureOnlyBreach(t *testing.T) {
	g, s, low, secret := figure61(t)
	take := rules.Take(low, mustLookup(t, g, "mid"), secret, rights.R)

	// De jure rules alone complete the breach — no de facto rule involved.
	unres := NewGuarded(g.Clone(), Unrestricted{})
	if err := unres.Apply(take); err != nil {
		t.Fatal(err)
	}
	if !unres.G.Explicit(low, secret).Has(rights.Read) {
		t.Fatal("take did not add the read edge")
	}
	if !analysis.CanKnowF(unres.G, low, secret) {
		t.Error("explicit read edge should imply de facto knowledge")
	}
	// The combined restriction (on de jure rules) stops it.
	guard := NewGuarded(g.Clone(), NewCombined(s))
	if err := guard.Apply(take); err == nil {
		t.Error("read-up take allowed")
	}
}

func mustLookup(t *testing.T, g *graph.Graph, name string) graph.ID {
	t.Helper()
	id, ok := g.Lookup(name)
	if !ok {
		t.Fatalf("vertex %q missing", name)
	}
	return id
}

func TestCombinedAllowsSameAndUpwardReads(t *testing.T) {
	c, err := hierarchy.Linear(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := c.G
	s := hierarchy.AnalyzeRW(g)
	comb := NewCombined(s)
	high := c.Members["L2"][0]
	lowBB := c.Bulletin["L1"]
	peer := c.Members["L2"][1]
	// Reading down is fine (higher source).
	if err := comb.Allows(g, rules.Take(high, peer, lowBB, rights.R)); err != nil {
		t.Errorf("read-down refused: %v", err)
	}
	// Writing up is fine.
	low := c.Members["L1"][0]
	highBB := c.Bulletin["L2"]
	if err := comb.Allows(g, rules.Take(low, peer, highBB, rights.W)); err != nil {
		t.Errorf("write-up refused: %v", err)
	}
	// Reading up is not.
	if err := comb.Allows(g, rules.Take(low, peer, highBB, rights.R)); err == nil {
		t.Error("read-up allowed")
	}
	// Writing down is not.
	if err := comb.Allows(g, rules.Take(high, peer, lowBB, rights.W)); err == nil {
		t.Error("write-down allowed")
	}
}

func TestCombinedGrantChecksGrantedEdge(t *testing.T) {
	// grant adds the edge y→z, so the levels of y and z matter, not x's.
	c, _ := hierarchy.Linear(2, 2)
	g := c.G
	s := hierarchy.AnalyzeRW(g)
	comb := NewCombined(s)
	high := c.Members["L2"][0]
	low := c.Members["L1"][0]
	lowBB := c.Bulletin["L1"]
	// high grants (r to lowBB) to low: adds low→lowBB r — same level, fine.
	if err := comb.Allows(g, rules.Grant(high, low, lowBB, rights.R)); err != nil {
		t.Errorf("same-level grant refused: %v", err)
	}
	// high grants (r to highBB) to low: adds low→highBB r — read up.
	highBB := c.Bulletin["L2"]
	if err := comb.Allows(g, rules.Grant(high, low, highBB, rights.R)); err == nil {
		t.Error("grant completing read-up allowed")
	}
}

func TestCreatedVerticesInheritLevel(t *testing.T) {
	c, _ := hierarchy.Linear(2, 1)
	g := c.G
	s := hierarchy.AnalyzeRW(g)
	guard := NewGuarded(g, NewCombined(s))
	high := c.Members["L2"][0]
	low := c.Members["L1"][0]
	// high creates scratch m and writes into it.
	if err := guard.Apply(rules.Create(high, "m", graph.Object, rights.Of(rights.Read, rights.Write, rights.Grant))); err != nil {
		t.Fatal(err)
	}
	m := mustLookup(t, g, "m")
	// Laundering attempt: give low read access to high's scratch.
	if err := guard.Apply(rules.Grant(high, m, m, rights.R)); err == nil {
		t.Log("self grant rejected by rule distinctness as expected")
	}
	app := rules.Grant(high, low, m, rights.R)
	// high has no g edge to low, so build one legitimately? There is none;
	// check the restriction directly instead.
	if err := guard.R.Allows(g, app); err == nil {
		t.Error("created vertex did not inherit the creator's level; read-up via scratch allowed")
	}
}

func TestDirectionRestrictionSoundButIncomplete(t *testing.T) {
	c, _ := hierarchy.Linear(2, 1)
	g := c.G
	e := g.Universe().MustDeclare("e")
	s := hierarchy.AnalyzeRW(g)
	low := c.Members["L1"][0]
	high := c.Members["L2"][0]
	v := g.MustObject("v")
	g.AddExplicit(low, v, rights.Of(e))
	g.AddExplicit(low, high, rights.G) // an upward grant edge

	dir := NewDirection(s)
	// Granting along the upward edge is refused — even for the harmless
	// execute right. That is the incompleteness of Lemma 5.3: the combined
	// restriction allows this same transfer.
	app := rules.Grant(low, high, v, rights.Of(e))
	if err := dir.Allows(g, app); err == nil {
		t.Error("direction restriction allowed an upward grant edge")
	}
	comb := NewCombined(s)
	if err := comb.Allows(g, app); err != nil {
		t.Errorf("combined restriction refused a harmless transfer: %v", err)
	}
}

func TestApplicationRestrictionSoundButIncomplete(t *testing.T) {
	c, _ := hierarchy.Linear(2, 1)
	g := c.G
	s := hierarchy.AnalyzeRW(g)
	high := c.Members["L2"][0]
	lowBB := c.Bulletin["L1"]
	v := g.MustObject("v")
	g.AddExplicit(high, v, rights.T)
	g.AddExplicit(v, lowBB, rights.R)

	appR := NewApplication(rights.RW, rights.RW)
	// Incomplete: a higher-level subject may legitimately take read rights
	// to a lower-level document, but the application restriction forbids
	// every take of r.
	takeDown := rules.Take(high, v, lowBB, rights.R)
	if err := appR.Allows(g, takeDown); err == nil {
		t.Error("application restriction allowed a take of r")
	}
	comb := NewCombined(s)
	if err := comb.Allows(g, takeDown); err != nil {
		t.Errorf("combined restriction refused a legitimate read-down: %v", err)
	}
	// Non-forbidden rights pass.
	g.AddExplicit(v, lowBB, rights.T)
	if err := appR.Allows(g, rules.Take(high, v, lowBB, rights.T)); err != nil {
		t.Errorf("application restriction refused t: %v", err)
	}
}

func TestAuditLinear(t *testing.T) {
	c, _ := hierarchy.Linear(2, 1)
	g := c.G
	s := hierarchy.AnalyzeRW(g)
	comb := NewCombined(s)
	if v := comb.Audit(g); len(v) != 0 {
		t.Errorf("clean hierarchy audits dirty: %v", v)
	}
	// Add a read-up edge and a write-down edge.
	low := c.Members["L1"][0]
	high := c.Members["L2"][0]
	highBB := c.Bulletin["L2"]
	lowBB := c.Bulletin["L1"]
	g.AddExplicit(low, highBB, rights.R)
	g.AddExplicit(high, lowBB, rights.W)
	viols := comb.Audit(g)
	if len(viols) != 2 {
		t.Fatalf("audit = %v", viols)
	}
	rulesSeen := map[string]bool{}
	for _, v := range viols {
		rulesSeen[v.Rule] = true
	}
	if !rulesSeen["a"] || !rulesSeen["b"] {
		t.Errorf("audit rules = %v", viols)
	}
}

func TestAuditPathsSeesLatentConnections(t *testing.T) {
	c, _ := hierarchy.Linear(2, 1)
	g := c.G
	s := hierarchy.AnalyzeRW(g)
	comb := NewCombined(s)
	low := c.Members["L1"][0]
	high := c.Members["L2"][0]
	highBB := c.Bulletin["L2"]
	// low -t-> high: latent read-up connection low t> high r> highBB.
	g.AddExplicit(low, high, rights.T)
	if len(comb.Audit(g)) != 0 {
		t.Error("per-edge audit should not fire on the latent connection")
	}
	if len(comb.AuditPaths(g)) == 0 {
		t.Error("path audit missed the latent connection")
	}
	// The online guard rejects the realisation.
	guard := NewGuarded(g, NewCombined(s))
	if err := guard.Apply(rules.Take(low, high, highBB, rights.R)); err == nil {
		t.Error("guard allowed realising the latent connection")
	}
}

func TestSoundnessFuzz(t *testing.T) {
	// Theorem 5.5 soundness: from a secure hierarchical start, any sequence
	// of guarded rule applications leaves the graph secure.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := hierarchy.Linear(2+rng.Intn(2), 2)
		if err != nil {
			return false
		}
		g := c.G
		// Seed latent tg structure, including dangerous cross-level t/g
		// edges the restriction must defang.
		subs := g.Subjects()
		for i := 0; i < 4; i++ {
			a, b := subs[rng.Intn(len(subs))], subs[rng.Intn(len(subs))]
			if a != b {
				g.AddExplicit(a, b, rights.Of(rights.Take+rights.Right(rng.Intn(2))))
			}
		}
		s := hierarchy.AnalyzeRW(g)
		guard := NewGuarded(g, NewCombined(s))
		opts := &rules.EnumerateOptions{DeJure: true, DeFacto: true, CreateBudget: 0}
		for step := 0; step < 25; step++ {
			apps := rules.Enumerate(g, opts)
			if len(apps) == 0 {
				break
			}
			guard.Apply(apps[rng.Intn(len(apps))])
		}
		return len(NewCombined(s).Audit(g)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestUnrestrictedFuzzBreaches(t *testing.T) {
	// The same fuzz without the guard produces audit violations once a
	// cross-level take edge exists — the contrast for E11.
	rng := rand.New(rand.NewSource(7))
	c, err := hierarchy.Linear(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := c.G
	low := c.Members["L1"][0]
	high := c.Members["L2"][0]
	g.AddExplicit(low, high, rights.T)
	s := hierarchy.AnalyzeRW(g)
	guard := NewGuarded(g, Unrestricted{})
	opts := &rules.EnumerateOptions{DeJure: true, DeFacto: true}
	for step := 0; step < 60; step++ {
		apps := rules.Enumerate(g, opts)
		if len(apps) == 0 {
			break
		}
		guard.Apply(apps[rng.Intn(len(apps))])
	}
	if len(NewCombined(s).Audit(g)) == 0 {
		t.Skip("random walk missed the breach this time; covered by simulate package tests")
	}
}

func TestReplayUnderGuard(t *testing.T) {
	c, _ := hierarchy.Linear(2, 1)
	g := c.G
	s := hierarchy.AnalyzeRW(g)
	low := c.Members["L1"][0]
	high := c.Members["L2"][0]
	highBB := c.Bulletin["L2"]
	g.AddExplicit(low, high, rights.T)
	guard := NewGuarded(g, NewCombined(s))
	d := rules.Derivation{
		rules.Take(low, high, highBB, rights.W), // write-up: allowed
		rules.Take(low, high, highBB, rights.R), // read-up: refused
	}
	n, err := guard.Replay(d)
	if err == nil || n != 1 {
		t.Errorf("replay = %d, %v", n, err)
	}
}
