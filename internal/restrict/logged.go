package restrict

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"takegrant/internal/graph"
	"takegrant/internal/rules"
)

// Decision is one logged restriction verdict.
type Decision struct {
	// Seq numbers decisions from 1 in arrival order.
	Seq int
	// When the decision was made.
	When time.Time
	// App is the checked application.
	App rules.Application
	// Err is the refusal reason (nil for allowed).
	Err error
}

// Allowed reports whether the decision permitted the application.
func (d Decision) Allowed() bool { return d.Err == nil }

// Logged wraps a restriction with an audit trail of every decision —
// the reference-monitor logging a deployed system needs. Safe for
// concurrent use.
type Logged struct {
	// Inner is the wrapped restriction.
	Inner Restriction
	// Clock supplies timestamps (defaults to time.Now); injectable for
	// deterministic tests.
	Clock func() time.Time

	mu  sync.Mutex
	log []Decision
	seq int
}

// NewLogged wraps a restriction.
func NewLogged(inner Restriction) *Logged {
	return &Logged{Inner: inner}
}

// Name implements Restriction.
func (l *Logged) Name() string { return "logged(" + l.Inner.Name() + ")" }

// Allows implements Restriction, recording the verdict.
func (l *Logged) Allows(g *graph.Graph, app rules.Application) error {
	err := l.Inner.Allows(g, app)
	now := time.Now
	if l.Clock != nil {
		now = l.Clock
	}
	l.mu.Lock()
	l.seq++
	l.log = append(l.log, Decision{Seq: l.seq, When: now(), App: app, Err: err})
	l.mu.Unlock()
	return err
}

// NoteCreate implements Restriction.
func (l *Logged) NoteCreate(created, creator graph.ID) {
	l.Inner.NoteCreate(created, creator)
}

// Log returns a copy of the decisions so far.
func (l *Logged) Log() []Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Decision(nil), l.log...)
}

// Refusals returns only the refused decisions.
func (l *Logged) Refusals() []Decision {
	var out []Decision
	for _, d := range l.Log() {
		if !d.Allowed() {
			out = append(out, d)
		}
	}
	return out
}

// Format renders the trail, one decision per line, using g for names.
func (l *Logged) Format(g *graph.Graph) string {
	var b strings.Builder
	for _, d := range l.Log() {
		verdict := "allow"
		if !d.Allowed() {
			verdict = "refuse: " + d.Err.Error()
		}
		fmt.Fprintf(&b, "%4d %s — %s\n", d.Seq, d.App.Format(g), verdict)
	}
	return b.String()
}

// Reset clears the trail.
func (l *Logged) Reset() {
	l.mu.Lock()
	l.log = nil
	l.seq = 0
	l.mu.Unlock()
}
