package restrict

import (
	"fmt"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

// Direction is a restriction of direction (§5, Lemma 5.3): the take or
// grant edge being exercised must not point from a lower-level vertex to a
// higher-level one — a vertex may only pull from, and push to, its own or
// lower levels. Sound (no sequence of such rules ever moves a right across
// levels upward-then-down) but not complete: even harmless rights can no
// longer be passed to a lower level through an intermediary above it.
type Direction struct {
	L Leveler
	// created tracks inherited levels for vertices minted mid-derivation.
	created map[graph.ID]int
}

// NewDirection builds the restriction over a classification.
func NewDirection(l Leveler) *Direction {
	return &Direction{L: l, created: make(map[graph.ID]int)}
}

// Name implements Restriction.
func (d *Direction) Name() string { return "direction" }

func (d *Direction) levelOf(v graph.ID) int {
	if l, ok := d.created[v]; ok {
		return l
	}
	return d.L.LevelOf(v)
}

// Allows implements Restriction: the exercised t (x→y in take) or g (x→y
// in grant) edge must not point upward.
func (d *Direction) Allows(g *graph.Graph, app rules.Application) error {
	switch app.Op {
	case rules.OpTake, rules.OpGrant:
		lx, ly := d.levelOf(app.X), d.levelOf(app.Y)
		if lx >= 0 && ly >= 0 && d.L.HigherLevel(ly, lx) {
			return fmt.Errorf("%s edge %d→%d points up the hierarchy", app.Op, app.X, app.Y)
		}
		return nil
	default:
		return nil
	}
}

// NoteCreate implements Restriction.
func (d *Direction) NoteCreate(created, creator graph.ID) {
	if l := d.levelOf(creator); l >= 0 {
		d.created[created] = l
	}
}

// Application is a restriction of application (§5, Lemma 5.4): take and
// grant may not manipulate the listed rights. Sound (with r and w listed:
// read/write authority can then never cross between levels at all) but
// not complete — a higher-level vertex can no longer take read rights to a
// lower-level document either.
type Application struct {
	// TakeForbidden and GrantForbidden are the rights the respective rule
	// may not move.
	TakeForbidden, GrantForbidden rights.Set
}

// NewApplication builds the restriction; the paper's example forbids both
// rules from manipulating read and write.
func NewApplication(takeForbidden, grantForbidden rights.Set) *Application {
	return &Application{TakeForbidden: takeForbidden, GrantForbidden: grantForbidden}
}

// Name implements Restriction.
func (a *Application) Name() string { return "application" }

// Allows implements Restriction.
func (a *Application) Allows(g *graph.Graph, app rules.Application) error {
	switch app.Op {
	case rules.OpTake:
		if app.Rights.HasAny(a.TakeForbidden) {
			return fmt.Errorf("take may not move %s",
				app.Rights.Intersect(a.TakeForbidden).Format(g.Universe()))
		}
	case rules.OpGrant:
		if app.Rights.HasAny(a.GrantForbidden) {
			return fmt.Errorf("grant may not move %s",
				app.Rights.Intersect(a.GrantForbidden).Format(g.Universe()))
		}
	}
	return nil
}

// NoteCreate implements Restriction.
func (a *Application) NoteCreate(graph.ID, graph.ID) {}
