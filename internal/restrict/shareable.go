package restrict

import (
	"takegrant/internal/analysis"
	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// ShareableUnder decides can•share *under the combined restriction*: can x
// acquire an explicit α edge to y when every de jure rule application must
// pass the guard?
//
// Theorem 5.5 makes this decidable by composition: the restriction is
// complete for everything except read and write edges that would cross the
// classification the wrong way, and sound in refusing exactly those. So:
//
//   - α ∉ {r, w}: restricted shareability coincides with unrestricted
//     can•share (Theorem 2.3);
//   - α = r: additionally the new edge x→y must not read up;
//   - α = w: additionally it must not write down.
//
// Exactness caveat, verified by the exhaustive cross-check test: the guard
// evaluates levels against the *initial* classification, and created
// vertices inherit their creator's level — both mirrored here via the
// Combined instance passed in.
func ShareableUnder(g *graph.Graph, c *Combined, alpha rights.Right, x, y graph.ID) bool {
	if !analysis.CanShare(g, alpha, x, y) {
		return false
	}
	switch alpha {
	case rights.Read:
		return !c.lower(x, y)
	case rights.Write:
		return !c.lower(y, x)
	default:
		return true
	}
}
