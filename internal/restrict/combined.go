package restrict

import (
	"fmt"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

// Combined is the paper's §5 restriction — the one proved sound and
// complete (Theorem 5.5):
//
//	No de jure rule may be applied if, as a result, either of the
//	following connections would be completed:
//	 (a) a read path (t>* r>) whose source is lower than its target, or
//	 (b) a write path (t>* w>) whose source is higher than its target.
//
// Restriction (a) corresponds to Bell–LaPadula's refined simple security
// property (no read up) and (b) to the *-property (no write down); rights
// other than r and w pass freely between levels (§6).
//
// The online guard is O(1) per application (Corollary 5.7): the rewritten
// graph differs by a single explicit edge, and a connection completed with
// a non-trivial take prefix can only be *used* by later applications that
// add the r/w edge at its source — which this same guard rejects then.
//
// Created vertices inherit their creator's level (scratch storage is
// classified with its owner); vertices with no level (-1) are
// unconstrained.
type Combined struct {
	L Leveler
	// created maps vertices minted after analysis to their inherited level.
	created map[graph.ID]int
}

// NewCombined builds the combined restriction over a classification.
func NewCombined(l Leveler) *Combined {
	return &Combined{L: l, created: make(map[graph.ID]int)}
}

// Name implements Restriction.
func (c *Combined) Name() string { return "combined(no-read-up,no-write-down)" }

// Rebase swaps in a freshly derived classification after a mutation and
// forgets inherited levels: every vertex alive at derivation time now has
// its own level, so the created map would only shadow real assignments.
// Callers serialize Rebase with Allows/NoteCreate (the service's write
// lock does).
func (c *Combined) Rebase(l Leveler) {
	c.L = l
	clear(c.created)
}

// levelOf resolves a vertex's classification, consulting inherited levels
// for created vertices.
func (c *Combined) levelOf(v graph.ID) int {
	if l, ok := c.created[v]; ok {
		return l
	}
	return c.L.LevelOf(v)
}

// lower reports whether a's level is strictly lower than b's.
func (c *Combined) lower(a, b graph.ID) bool {
	la, lb := c.levelOf(a), c.levelOf(b)
	if la < 0 || lb < 0 {
		return false
	}
	return c.L.HigherLevel(lb, la)
}

// Allows implements Restriction (Corollary 5.7: constant time).
func (c *Combined) Allows(g *graph.Graph, app rules.Application) error {
	src, dst, set, adds := addedExplicitEdge(g, app)
	if !adds {
		return nil // remove (and no-ops) cannot complete a connection
	}
	if set.Has(rights.Read) && c.lower(src, dst) {
		return fmt.Errorf("read edge %d→%d reads up (restriction a)", src, dst)
	}
	if set.Has(rights.Write) && c.lower(dst, src) {
		return fmt.Errorf("write edge %d→%d writes down (restriction b)", src, dst)
	}
	return nil
}

// NoteCreate implements Restriction: the new vertex inherits its creator's
// classification.
func (c *Combined) NoteCreate(created, creator graph.ID) {
	if l := c.levelOf(creator); l >= 0 {
		c.created[created] = l
	}
}

// addedExplicitEdge reports the explicit edge an application would add.
// Create is reported against graph.None as destination — the vertex does
// not exist yet; its edge is checked as unclassified and the level is
// assigned via NoteCreate (self-edges to one's own scratch are always to
// the same level, hence always allowed).
func addedExplicitEdge(g *graph.Graph, app rules.Application) (src, dst graph.ID, set rights.Set, adds bool) {
	switch app.Op {
	case rules.OpTake:
		return app.X, app.Z, app.Rights, true
	case rules.OpGrant:
		return app.Y, app.Z, app.Rights, true
	case rules.OpCreate:
		return app.X, graph.None, app.Rights, true
	default:
		return graph.None, graph.None, 0, false
	}
}

// Audit scans a whole graph for existing violations of the combined
// restriction (Corollary 5.6: time linear in the number of edges — each
// r- or w-labelled edge is checked against the classification once).
// Implicit edges are included: an implicit read edge that reads up means a
// forbidden flow has already been exhibited.
func (c *Combined) Audit(g *graph.Graph) []EdgeViolation {
	// The scan walks the frozen CSR snapshot directly — no []Edge
	// materialization, no per-call sort — and pre-resolves which interned
	// labels carry r or w at all, so edges that cannot violate (t, g, ...)
	// cost one table lookup.
	snap := g.Snapshot()
	relevant := make([]rights.Set, snap.NumLabels())
	for i := range relevant {
		relevant[i] = snap.Label(uint32(i)).Combined().Intersect(rights.RW)
	}
	var out []EdgeViolation
	for i := 0; i < snap.Cap(); i++ {
		src := graph.ID(i)
		dsts, lbls := snap.Out(src)
		for j, dst := range dsts {
			rw := relevant[lbls[j]]
			if rw.Empty() {
				continue
			}
			if rw.Has(rights.Read) && c.lower(src, dst) {
				out = append(out, EdgeViolation{Src: src, Dst: dst, Right: rights.Read, Rule: "a"})
			}
			if rw.Has(rights.Write) && c.lower(dst, src) {
				out = append(out, EdgeViolation{Src: src, Dst: dst, Right: rights.Write, Rule: "b"})
			}
		}
	}
	return out
}

// EdgeViolation is one edge breaking the combined restriction.
type EdgeViolation struct {
	Src, Dst graph.ID
	Right    rights.Right
	Rule     string // "a" (read up) or "b" (write down)
}

func (v EdgeViolation) String() string {
	return fmt.Sprintf("edge %d→%d violates restriction (%s)", v.Src, v.Dst, v.Rule)
}

// AuditPaths is the thorough variant of Audit: it also reports connections
// with non-trivial take prefixes (x t>* u r> v with x lower than v), which
// the per-edge scan treats as latent — they only become flows through
// later rule applications the online guard rejects. Used to cross-check
// the Corollary 5.6 claim on hierarchical graphs.
func (c *Combined) AuditPaths(g *graph.Graph) []EdgeViolation {
	var out []EdgeViolation
	// t-ancestors: x with a t>* path to u.
	tAncestors := func(u graph.ID) []graph.ID {
		anc := []graph.ID{u}
		seen := map[graph.ID]bool{u: true}
		queue := []graph.ID{u}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, h := range g.In(v) {
				if h.Explicit.Has(rights.Take) && !seen[h.Other] {
					seen[h.Other] = true
					anc = append(anc, h.Other)
					queue = append(queue, h.Other)
				}
			}
		}
		return anc
	}
	for _, e := range g.Edges() {
		all := e.Explicit.Union(e.Implicit)
		if all.Has(rights.Read) {
			for _, x := range tAncestors(e.Src) {
				if c.lower(x, e.Dst) {
					out = append(out, EdgeViolation{Src: x, Dst: e.Dst, Right: rights.Read, Rule: "a"})
					break
				}
			}
		}
		if all.Has(rights.Write) {
			for _, x := range tAncestors(e.Src) {
				if c.lower(e.Dst, x) {
					out = append(out, EdgeViolation{Src: x, Dst: e.Dst, Right: rights.Write, Rule: "b"})
					break
				}
			}
		}
	}
	return out
}
