package analysis

import (
	"sync"
	"sync/atomic"

	"takegrant/internal/budget"
	"takegrant/internal/graph"
	"takegrant/internal/obs"
	"takegrant/internal/relang"
	"takegrant/internal/rights"
)

// ReachIndex memoizes the decision procedures' transitive structure as
// closure rows, so a warm can•share / can•know / can•know•f verdict is a
// bit-test instead of a budgeted product search. It implements the
// derived-index contract of internal/derived and is fed the graph's
// change stream through that registry.
//
// # Row families
//
// Two per-island families hold the chain closures of Theorems 2.3(iii)
// and 3.2(c), keyed by tg-island root: the bridge-chain row (subjects
// reachable through chains of islands and bridges) and the link-chain row
// (subjects reachable through words in B ∪ C). Both chain languages
// compose at subject boundaries and every tg edge inside an island is
// itself a bridge, so all subjects of one island share one row — the row
// is a property of the island, not the start vertex (this is the typed
// per-island bridge index: one bitset per (island, chain type)).
//
// Three per-vertex families answer the predicates:
//
//   - share[x]: every vertex s some subject in x's bridge-chain closure
//     terminally spans — can•share(α,x,y) is then "some source of y with
//     an explicit α edge is in share[x]" (Theorem 2.3 with the spanner
//     and chain conditions pre-folded).
//   - know[x]: the can•know closure of x (exactly KnowClosure's set).
//   - knowf[x]: the can•know•f closure of x (KnowFClosure's set).
//
// Rows live in pooled epoch-stamped relang.VertexSets; a dropped row's
// set returns to the pool.
//
// # Maintenance
//
// Monotone mutations can only grow a closure, and each family reads a
// known alphabet: bridge chains and t*/t*g spans read explicit t/g only;
// link chains and rw-spans read explicit r/w/t/g; admissible paths read
// r/w in either view. Patch therefore drops exactly the families whose
// alphabet a new edge touches (an add outside every alphabet, and any
// removal of uninterpreted rights, is absorbed as a no-op) and the next
// query lazily rebuilds its row under that query's budget — O(1)
// amortized: one budgeted build per (row, mutation era), bit-tests after.
// Removals within the alphabets and destructive changes make Patch
// return false; the registry then calls Invalidate and every verdict
// falls back to the budgeted from-scratch build — never a stale answer.
//
// # Concurrency
//
// Patch and Invalidate run under the graph's mutation lock with no
// concurrent readers (the graph.SetRecorder contract). Queries may run
// concurrently with each other; two readers racing to build the same row
// both compute it, one publishes, the loser's set returns to the pool
// (the qcache double-compute idiom). Retired sets are only pooled when no
// reader can hold them: replaced rows are always stale, stale rows are
// never handed to readers, and staleness only arises under the mutation
// lock.
type ReachIndex struct {
	g *graph.Graph

	mu sync.Mutex
	// Per-family build generations: a row is warm iff row.gen matches its
	// family's generation. Bumped (with the family's rows dropped) when a
	// mutation touches the family's alphabet; all bumped by Invalidate.
	shareGen uint64
	knowGen  uint64
	knowfGen uint64

	share     map[graph.ID]*reachRow // per x (span-row references)
	know      map[graph.ID]*reachRow // per x (span-row references)
	knowf     map[graph.ID]*reachRow // per x
	chain     map[graph.ID]*reachRow // per island root (bridge chains)
	link      map[graph.ID]*reachRow // per island root (links, B ∪ C)
	shareSpan map[graph.ID]*reachRow // per island root (chain ∪ terminal spans)
	knowSpan  map[graph.ID]*reachRow // per island root (link ∪ rw-terminal spans)

	hits     atomic.Uint64
	misses   atomic.Uint64
	rebuilds atomic.Uint64
}

// reachRow is one closure row: the generation it was built under and its
// member set. Island rows additionally keep the member list as search
// seeds for the rows built on top of them. Per-vertex share and know rows
// carry no set of their own: their membership is the union of the
// per-island span rows they reference (spans), so N query vertices whose
// spanners land in the same islands share one terminal-span computation
// instead of running N.
type reachRow struct {
	gen   uint64
	set   *relang.VertexSet
	ids   []graph.ID
	spans []*reachRow
}

// has reports membership across the row's own set and its referenced
// span rows. Span rows are only referenced by rows of the same family
// generation, and families drop together — a live row never reaches a
// pooled span set.
func (r *reachRow) has(v graph.ID) bool {
	if r.set != nil && r.set.Has(v) {
		return true
	}
	for _, sp := range r.spans {
		if sp.set.Has(v) {
			return true
		}
	}
	return false
}

// reachRWTG is the union of every alphabet a reach row reads.
var reachRWTG = rights.RW.Union(rights.TG)

// NewReachIndex returns an empty index over g. Register it with the
// derived registry (or otherwise feed it g's change stream) before
// mutating g, or its rows will go silently stale.
func NewReachIndex(g *graph.Graph) *ReachIndex {
	return &ReachIndex{
		g:         g,
		share:     make(map[graph.ID]*reachRow),
		know:      make(map[graph.ID]*reachRow),
		knowf:     make(map[graph.ID]*reachRow),
		chain:     make(map[graph.ID]*reachRow),
		link:      make(map[graph.ID]*reachRow),
		shareSpan: make(map[graph.ID]*reachRow),
		knowSpan:  make(map[graph.ID]*reachRow),
	}
}

// Name identifies the index in the derived registry.
func (ix *ReachIndex) Name() string { return "reach_closure" }

// Patch implements the derived-index contract: monotone adds drop only
// the row families whose chain alphabet the new rights touch, removals
// outside every alphabet are no-ops, and anything else (in-alphabet
// removals, destructive changes) reports false so the registry
// invalidates. Called under the graph's mutation lock.
func (ix *ReachIndex) Patch(c graph.Change) bool {
	switch c.Kind {
	case graph.ChangeAddVertex:
		// A fresh vertex has no edges: existing closures are unchanged, and
		// rows sized before it correctly read it as absent.
		return true
	case graph.ChangeAddExplicit:
		ix.mu.Lock()
		if c.Set.HasAny(rights.TG) {
			ix.shareGen++
			ix.dropLocked(ix.share)
			ix.dropLocked(ix.chain)
			ix.dropLocked(ix.shareSpan)
		}
		if c.Set.HasAny(reachRWTG) {
			ix.knowGen++
			ix.dropLocked(ix.know)
			ix.dropLocked(ix.link)
			ix.dropLocked(ix.knowSpan)
		}
		if c.Set.HasAny(rights.RW) {
			ix.knowfGen++
			ix.dropLocked(ix.knowf)
		}
		ix.mu.Unlock()
		return true
	case graph.ChangeAddImplicit:
		// Only admissible paths read implicit labels (the de jure spans and
		// chains are explicit-view searches).
		if c.Set.HasAny(rights.RW) {
			ix.mu.Lock()
			ix.knowfGen++
			ix.dropLocked(ix.knowf)
			ix.mu.Unlock()
		}
		return true
	case graph.ChangeRemoveExplicit, graph.ChangeRemoveImplicit:
		// Removing rights no row family reads cannot shrink any closure.
		return !c.Set.HasAny(reachRWTG)
	default:
		return false
	}
}

// Invalidate drops every row; subsequent verdicts fall back to budgeted
// from-scratch builds. Called under the graph's mutation lock.
func (ix *ReachIndex) Invalidate() {
	ix.mu.Lock()
	ix.shareGen++
	ix.knowGen++
	ix.knowfGen++
	ix.dropLocked(ix.share)
	ix.dropLocked(ix.know)
	ix.dropLocked(ix.knowf)
	ix.dropLocked(ix.chain)
	ix.dropLocked(ix.link)
	ix.dropLocked(ix.shareSpan)
	ix.dropLocked(ix.knowSpan)
	ix.mu.Unlock()
}

// dropLocked retires one family's rows to the set pool. Callers hold
// ix.mu under the mutation lock (no concurrent readers).
func (ix *ReachIndex) dropLocked(rows map[graph.ID]*reachRow) {
	for k, r := range rows {
		relang.PutVertexSet(r.set)
		delete(rows, k)
	}
}

// IndexStats reports warm bit-test answers (hits), row builds forced by
// absent or dropped rows (misses) and total row constructions including
// the island chain rows (rebuilds).
func (ix *ReachIndex) IndexStats() (hits, misses, rebuilds uint64) {
	return ix.hits.Load(), ix.misses.Load(), ix.rebuilds.Load()
}

// CanShare answers can•share(α, x, y, G) from the closure index,
// building x's share row under b on a miss. warm reports whether the
// verdict was served without any product search — the closure fast path.
// The verdict is always exact (Theorem 2.3, pinned against the oracle by
// the property tests); on a budget trip the error wraps
// budget.ErrExhausted and the verdict is meaningless.
func (ix *ReachIndex) CanShare(alpha rights.Right, x, y graph.ID, p *obs.Probe, b *budget.Budget) (ok, warm bool, err error) {
	g := ix.g
	if !g.Valid(x) || !g.Valid(y) || x == y {
		return false, true, nil
	}
	if g.Explicit(x, y).Has(alpha) {
		return true, true, nil
	}
	row, warm, err := ix.shareRow(x, p, b)
	if err != nil {
		return false, false, err
	}
	// Theorem 2.3(i): the sources s with an explicit α edge to y, scanned
	// off the frozen snapshot exactly as the oracle scans them. A source
	// in share[x] is terminally spanned by a subject bridge-chain-linked
	// to an initial spanner of x — conditions (ii) and (iii) by one bit.
	snap := g.Snapshot()
	srcIDs, srcLbls := snap.In(y)
	if err := b.Charge(int64(1 + len(srcIDs))); err != nil {
		return false, warm, err
	}
	for j, s := range srcIDs {
		if snap.Label(srcLbls[j]).Explicit.Has(alpha) && row.has(s) {
			return true, warm, nil
		}
	}
	return false, warm, nil
}

// CanKnow answers can•know(x, y, G) from the closure index: y's bit in
// x's know row (Theorem 3.2 with the spanner and link-chain conditions
// pre-folded, exactly KnowClosure's membership).
func (ix *ReachIndex) CanKnow(x, y graph.ID, p *obs.Probe, b *budget.Budget) (ok, warm bool, err error) {
	g := ix.g
	if !g.Valid(x) || !g.Valid(y) {
		return false, true, nil
	}
	if x == y {
		return true, true, nil
	}
	row, warm, err := ix.knowRow(x, p, b)
	if err != nil {
		return false, false, err
	}
	if err := b.Charge(1); err != nil {
		return false, warm, err
	}
	return row.has(y), warm, nil
}

// CanKnowF answers can•know•f(x, y, G) from the closure index: y's bit
// in x's admissible-path closure row (Theorem 3.1, exactly
// KnowFClosure's membership).
func (ix *ReachIndex) CanKnowF(x, y graph.ID, p *obs.Probe, b *budget.Budget) (ok, warm bool, err error) {
	g := ix.g
	if !g.Valid(x) || !g.Valid(y) {
		return false, true, nil
	}
	if x == y {
		return true, true, nil
	}
	row, warm, err := ix.knowfRow(x, p, b)
	if err != nil {
		return false, false, err
	}
	if err := b.Charge(1); err != nil {
		return false, warm, err
	}
	return row.set.Has(y), warm, nil
}

// row fetch ---------------------------------------------------------------

// getRow serves one per-vertex row, building it with build on a miss and
// publishing under the captured generation. The bool reports a warm hit.
func (ix *ReachIndex) getRow(rows map[graph.ID]*reachRow, gen *uint64, v graph.ID, p *obs.Probe,
	build func(gen uint64) (*reachRow, error)) (*reachRow, bool, error) {
	sp := p.Span("closure_index")
	ix.mu.Lock()
	cur := *gen
	if r := rows[v]; r != nil && r.gen == cur {
		ix.mu.Unlock()
		ix.hits.Add(1)
		sp.Count("hits", 1).End()
		return r, true, nil
	}
	ix.mu.Unlock()
	ix.misses.Add(1)
	sp.Count("misses", 1).End()
	r, err := build(cur)
	if err != nil {
		return nil, false, err
	}
	ix.mu.Lock()
	if *gen != cur {
		// A mutation slipped between capture and publish (impossible under
		// the service's lock discipline, tolerated here): serve the build,
		// publish nothing.
		ix.mu.Unlock()
		return r, false, nil
	}
	if old := rows[v]; old != nil {
		if old.gen == cur {
			// A concurrent reader published first; adopt its row.
			ix.mu.Unlock()
			relang.PutVertexSet(r.set)
			return old, false, nil
		}
		// old is stale: no reader can hold it (staleness only arises under
		// the mutation lock), so its set may be pooled.
		relang.PutVertexSet(old.set)
	}
	rows[v] = r
	ix.mu.Unlock()
	return r, false, nil
}

func (ix *ReachIndex) shareRow(x graph.ID, p *obs.Probe, b *budget.Budget) (*reachRow, bool, error) {
	return ix.getRow(ix.share, &ix.shareGen, x, p, func(gen uint64) (*reachRow, error) {
		return ix.buildShareRow(x, gen, b)
	})
}

func (ix *ReachIndex) knowRow(x graph.ID, p *obs.Probe, b *budget.Budget) (*reachRow, bool, error) {
	return ix.getRow(ix.know, &ix.knowGen, x, p, func(gen uint64) (*reachRow, error) {
		return ix.buildKnowRow(x, gen, b)
	})
}

func (ix *ReachIndex) knowfRow(x graph.ID, p *obs.Probe, b *budget.Budget) (*reachRow, bool, error) {
	return ix.getRow(ix.knowf, &ix.knowfGen, x, p, func(gen uint64) (*reachRow, error) {
		return ix.buildKnowFRow(x, gen, b)
	})
}

// row construction --------------------------------------------------------

// buildShareRow computes share[x] as span-row references: for each
// island holding an initial spanner of x, the per-island span row (the
// island's bridge-chain closure plus its forward terminal spans, t>*).
// The per-x work shrinks to the local reverse spanner search plus map
// lookups — the O(E) terminal search runs once per (island, era), not
// once per query vertex.
func (ix *ReachIndex) buildShareRow(x graph.ID, gen uint64, b *budget.Budget) (*reachRow, error) {
	ix.rebuilds.Add(1)
	xPrimes, err := spannersB(ix.g, x, initialSpanRevNFA, true, relang.ViewExplicit, b)
	if err != nil {
		return nil, err
	}
	if len(xPrimes) == 0 {
		return &reachRow{gen: gen}, nil
	}
	spans, err := ix.spanRowsFor(ix.chain, ix.shareSpan, &ix.shareGen,
		bridgeChainNFA, terminalSpanNFA, xPrimes, gen, b)
	if err != nil {
		return nil, err
	}
	return &reachRow{gen: gen, spans: spans}, nil
}

// buildKnowRow computes know[x] as span-row references, mirroring
// KnowClosureInto: per island of x's rw-initial spanners, the link-chain
// closure plus its rw-terminal spans. Reflexivity (x ∈ know[x]) is
// handled by CanKnow's x == y early return.
func (ix *ReachIndex) buildKnowRow(x graph.ID, gen uint64, b *budget.Budget) (*reachRow, error) {
	ix.rebuilds.Add(1)
	u1s, err := spannersB(ix.g, x, rwInitialSpanRevNFA, true, relang.ViewExplicit, b)
	if err != nil {
		return nil, err
	}
	if len(u1s) == 0 {
		return &reachRow{gen: gen}, nil
	}
	spans, err := ix.spanRowsFor(ix.link, ix.knowSpan, &ix.knowGen,
		linkChainNFA, rwTerminalNFA, u1s, gen, b)
	if err != nil {
		return nil, err
	}
	return &reachRow{gen: gen, spans: spans}, nil
}

// buildKnowFRow computes knowf[x] as the admissible-path closure plus the
// definition's implicit-edge base cases — KnowFClosureInto verbatim.
func (ix *ReachIndex) buildKnowFRow(x graph.ID, gen uint64, b *budget.Budget) (*reachRow, error) {
	g := ix.g
	ix.rebuilds.Add(1)
	ids, err := KnowFClosureInto(g, x, nil, b)
	if err != nil {
		return nil, err
	}
	set := relang.GetVertexSet(g.Cap())
	for _, v := range ids {
		set.Add(v)
	}
	return &reachRow{gen: gen, set: set}, nil
}

// spanRowsFor resolves the per-island span rows for the islands of the
// given subjects: for each distinct island root, the island's chain row
// (of chainNFA, built if missing) extended by everything its subjects
// span under spanNFA. Both computations are properties of the island —
// chain languages compose at subject boundaries and island tg edges are
// bridges — so the rows are keyed by island root and shared by every
// query vertex whose spanners land in the island. The union over islands
// equals the single merged-seed search it replaces: reachability from a
// seed union is the union of per-seed closures.
func (ix *ReachIndex) spanRowsFor(chainRows, spanRows map[graph.ID]*reachRow, gen *uint64,
	chainNFA, spanNFA *relang.NFA, subjects []graph.ID, want uint64, b *budget.Budget) ([]*reachRow, error) {
	idx := ix.g.TGIslands()
	out := make([]*reachRow, 0, 2)
	var seen map[graph.ID]struct{}
	for _, s := range subjects {
		root := idx.Root(s)
		if _, dup := seen[root]; dup {
			continue
		}
		if seen == nil {
			seen = make(map[graph.ID]struct{}, 4)
		}
		seen[root] = struct{}{}

		ix.mu.Lock()
		if r := spanRows[root]; r != nil && r.gen == *gen {
			ix.mu.Unlock()
			out = append(out, r)
			continue
		}
		ix.mu.Unlock()

		chainRow, err := ix.chainRowFor(chainRows, gen, chainNFA, root, s, want, b)
		if err != nil {
			return nil, err
		}
		built, err := ix.buildSpanRow(spanNFA, chainRow.ids, want, b)
		if err != nil {
			return nil, err
		}
		ix.mu.Lock()
		if *gen == want {
			if old := spanRows[root]; old != nil && old.gen == want {
				relang.PutVertexSet(built.set)
				built = old
			} else {
				if old := spanRows[root]; old != nil {
					relang.PutVertexSet(old.set)
				}
				spanRows[root] = built
			}
		}
		ix.mu.Unlock()
		out = append(out, built)
	}
	return out, nil
}

// chainRowFor serves one island's chain row, building it from a single
// member as seed on a miss (the qcache double-compute idiom, as getRow).
func (ix *ReachIndex) chainRowFor(rows map[graph.ID]*reachRow, gen *uint64, nfa *relang.NFA,
	root, seed graph.ID, want uint64, b *budget.Budget) (*reachRow, error) {
	ix.mu.Lock()
	if r := rows[root]; r != nil && r.gen == *gen {
		ix.mu.Unlock()
		return r, nil
	}
	ix.mu.Unlock()
	built, err := ix.buildChainRow(nfa, seed, want, b)
	if err != nil {
		return nil, err
	}
	ix.mu.Lock()
	if *gen == want {
		if old := rows[root]; old != nil && old.gen == want {
			relang.PutVertexSet(built.set)
			built = old
		} else {
			if old := rows[root]; old != nil {
				relang.PutVertexSet(old.set)
			}
			rows[root] = built
		}
	}
	ix.mu.Unlock()
	return built, nil
}

// buildSpanRow computes one island's span row: the chain-closure
// subjects themselves (every subject spans itself via the ν span) plus
// everything they reach under spanNFA.
func (ix *ReachIndex) buildSpanRow(spanNFA *relang.NFA, seeds []graph.ID, gen uint64, b *budget.Budget) (*reachRow, error) {
	g := ix.g
	ix.rebuilds.Add(1)
	set := relang.GetVertexSet(g.Cap())
	for _, s := range seeds {
		set.Add(s)
	}
	if len(seeds) > 0 {
		_, _, err := relang.SearchVisit(g, spanNFA, seeds, relang.Options{View: relang.ViewExplicit, Budget: b},
			func(v graph.ID) { set.Add(v) })
		if err != nil {
			relang.PutVertexSet(set)
			return nil, err
		}
	}
	return &reachRow{gen: gen, set: set}, nil
}

// buildChainRow runs one chain search seeded from a single island member
// and collects the accepted subjects.
func (ix *ReachIndex) buildChainRow(nfa *relang.NFA, seed graph.ID, gen uint64, b *budget.Budget) (*reachRow, error) {
	g := ix.g
	ix.rebuilds.Add(1)
	set := relang.GetVertexSet(g.Cap())
	var ids []graph.ID
	_, _, err := relang.SearchVisit(g, nfa, []graph.ID{seed}, relang.Options{View: relang.ViewExplicit, Budget: b},
		func(v graph.ID) {
			if g.IsSubject(v) && set.Add(v) {
				ids = append(ids, v)
			}
		})
	if err != nil {
		relang.PutVertexSet(set)
		return nil, err
	}
	// The empty chain ν makes every start a member of its own closure; the
	// search accepts it too, this is just belt and braces.
	if g.IsSubject(seed) && set.Add(seed) {
		ids = append(ids, seed)
	}
	return &reachRow{gen: gen, set: set, ids: ids}, nil
}
