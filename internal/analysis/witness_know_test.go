package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

func TestSynthesizeKnowDirectRead(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	g.AddExplicit(x, y, rights.R)
	d, err := SynthesizeKnow(g, x, y)
	if err != nil || len(d) != 0 {
		t.Errorf("direct read: %v %v", d, err)
	}
}

func TestSynthesizeKnowTerminalSpan(t *testing.T) {
	// x -t-> c -r-> y: x takes r, then reads.
	g := graph.New(nil)
	x := g.MustSubject("x")
	c := g.MustObject("c")
	y := g.MustObject("y")
	g.AddExplicit(x, c, rights.T)
	g.AddExplicit(c, y, rights.R)
	d, err := SynthesizeKnow(g, x, y)
	if err != nil {
		t.Fatal(err)
	}
	clone := g.Clone()
	if _, err := d.Replay(clone); err != nil || !KnowsBase(clone, x, y) {
		t.Errorf("replay: %v\n%s", err, d.Format(clone))
	}
}

func TestSynthesizeKnowBridgeHop(t *testing.T) {
	// v -g-> u bridge (read from u: g<); v reads y; u must learn y.
	g := graph.New(nil)
	u := g.MustSubject("u")
	v := g.MustSubject("v")
	y := g.MustObject("y")
	g.AddExplicit(v, u, rights.G)
	g.AddExplicit(v, y, rights.R)
	if !CanKnow(g, u, y) {
		t.Fatal("bridge hop not decided")
	}
	d, err := SynthesizeKnow(g, u, y)
	if err != nil {
		t.Fatal(err)
	}
	clone := g.Clone()
	if _, err := d.Replay(clone); err != nil || !KnowsBase(clone, u, y) {
		t.Errorf("replay: %v\n%s", err, d.Format(clone))
	}
}

func TestSynthesizeKnowConnectionHop(t *testing.T) {
	// u -r-> m <-w- v, v -r-> y (post then spy).
	g := graph.New(nil)
	u := g.MustSubject("u")
	m := g.MustObject("m")
	v := g.MustSubject("v")
	y := g.MustObject("y")
	g.AddExplicit(u, m, rights.R)
	g.AddExplicit(v, m, rights.W)
	g.AddExplicit(v, y, rights.R)
	d, err := SynthesizeKnow(g, u, y)
	if err != nil {
		t.Fatal(err)
	}
	clone := g.Clone()
	if _, err := d.Replay(clone); err != nil || !KnowsBase(clone, u, y) {
		t.Errorf("replay: %v\n%s", err, d.Format(clone))
	}
}

func TestSynthesizeKnowInitialSpanPush(t *testing.T) {
	// u1 -t-> c -w-> x and u1 -r-> y: u1 takes w to x and passes.
	g := graph.New(nil)
	x := g.MustObject("x")
	u1 := g.MustSubject("u1")
	c := g.MustObject("c")
	y := g.MustObject("y")
	g.AddExplicit(u1, c, rights.T)
	g.AddExplicit(c, x, rights.W)
	g.AddExplicit(u1, y, rights.R)
	d, err := SynthesizeKnow(g, x, y)
	if err != nil {
		t.Fatal(err)
	}
	clone := g.Clone()
	if _, err := d.Replay(clone); err != nil || !KnowsBase(clone, x, y) {
		t.Errorf("replay: %v\n%s", err, d.Format(clone))
	}
}

// TestPropertyKnowSynthesisMatchesDecision mirrors the can.share property:
// every positive can.know must synthesize into a replayable derivation that
// establishes the flow.
func TestPropertyKnowSynthesisMatchesDecision(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAnalysisGraph(rng, false)
		vs := g.Vertices()
		for i := 0; i < 6; i++ {
			x := vs[rng.Intn(len(vs))]
			y := vs[rng.Intn(len(vs))]
			if x == y || !CanKnow(g, x, y) {
				continue
			}
			d, err := SynthesizeKnow(g, x, y)
			if err != nil {
				t.Logf("seed %d: know synthesis failed for %s→%s: %v\n%s",
					seed, g.Name(x), g.Name(y), err, g.String())
				return false
			}
			clone := g.Clone()
			if _, err := d.Replay(clone); err != nil {
				return false
			}
			if !KnowsBase(clone, x, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
