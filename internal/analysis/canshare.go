package analysis

import (
	"takegrant/internal/budget"
	"takegrant/internal/graph"
	"takegrant/internal/obs"
	"takegrant/internal/relang"
	"takegrant/internal/rights"
)

var (
	bridgeNFA      = relang.Compile(relang.Bridge())
	bridgeChainNFA = relang.BridgeChain()
)

// BridgeBetween reports whether a bridge (word in B, explicit labels) runs
// from subject p to subject q, returning a witness walk.
func BridgeBetween(g *graph.Graph, p, q graph.ID) ([]relang.Step, bool) {
	if !g.IsSubject(p) || !g.IsSubject(q) || p == q {
		return nil, false
	}
	res := relang.Search(g, bridgeNFA, []graph.ID{p}, relang.Options{View: relang.ViewExplicit, Trace: true})
	return res.Witness(q)
}

// BridgeReachable returns every subject reachable from the subjects in
// starts through a chain of bridges (iterated at subject boundaries),
// including the starts themselves. This is the island-hopping closure of
// Theorem 2.3 condition (iii): within an island every tg edge is itself a
// bridge, so island connectivity is subsumed.
func BridgeReachable(g *graph.Graph, starts []graph.ID) map[graph.ID]bool {
	res := relang.Search(g, bridgeChainNFA, starts, relang.Options{View: relang.ViewExplicit})
	out := make(map[graph.ID]bool)
	for _, v := range res.AcceptedVertices() {
		if g.IsSubject(v) {
			out[v] = true
		}
	}
	return out
}

// CanShare decides the predicate can•share(α, x, y, G): can x acquire an
// explicit α edge to y through some sequence of de jure rules? It
// implements Theorem 2.3:
//
//	can•share(α,x,y,G) ⇔ x already has α to y, or all of:
//	 (i)   some vertex s has an explicit α edge to y,
//	 (ii)  a subject x′ initially spans to x and a subject s′ terminally
//	       spans to s,
//	 (iii) x′ and s′ are linked by a chain of islands and bridges.
func CanShare(g *graph.Graph, alpha rights.Right, x, y graph.ID) bool {
	_, ok, _ := canShare(g, alpha, x, y, false, nil, nil)
	return ok
}

// CanShareObs is CanShare reporting per-phase spans on p and honouring the
// work budget b: the theorem's conditions map to phases sources (i),
// initial_spanners / terminal_spanners (ii) and bridge_closure (iii), with
// visit/scan counts from the underlying product searches. A nil probe
// records nothing and costs a pointer test; a nil budget never trips.
//
// When b trips mid-phase the verdict is abandoned: the error wraps
// budget.ErrExhausted and the boolean is meaningless (never a wrong
// "false"). Phases finished before the trip are still recorded on p.
func CanShareObs(g *graph.Graph, alpha rights.Right, x, y graph.ID, p *obs.Probe, b *budget.Budget) (bool, error) {
	_, ok, err := canShare(g, alpha, x, y, false, p, b)
	return ok, err
}

// ShareEvidence explains a positive can•share decision.
type ShareEvidence struct {
	// Direct is true when the α edge already exists; all other fields are
	// then zero.
	Direct bool
	// S holds an explicit α edge to y.
	S graph.ID
	// XPrime initially spans to X (XPrime == x when the span is ν).
	XPrime graph.ID
	// SPrime terminally spans to S.
	SPrime graph.ID
	// Chain is a sequence of subjects from XPrime to SPrime in which every
	// consecutive pair is joined by a bridge.
	Chain []graph.ID
	// Bridges[i] is a witness walk for the bridge Chain[i] → Chain[i+1].
	Bridges [][]relang.Step
	// InitialSpan is a witness path XPrime → x (nil for ν).
	InitialSpan []relang.Step
	// TerminalSpan is a witness path SPrime → S (nil for ν).
	TerminalSpan []relang.Step
}

// CanShareEx is CanShare returning evidence for the positive case. The
// evidence identifies the theorem's ingredients and is the input to
// SynthesizeShare.
func CanShareEx(g *graph.Graph, alpha rights.Right, x, y graph.ID) (*ShareEvidence, bool) {
	ev, ok, _ := canShare(g, alpha, x, y, true, nil, nil)
	return ev, ok
}

func canShare(g *graph.Graph, alpha rights.Right, x, y graph.ID, wantEvidence bool, p *obs.Probe, b *budget.Budget) (*ShareEvidence, bool, error) {
	if !g.Valid(x) || !g.Valid(y) || x == y {
		return nil, false, nil
	}
	if g.Explicit(x, y).Has(alpha) {
		return &ShareEvidence{Direct: true}, true, nil
	}
	// (i) sources s with an explicit α edge to y — scanned off the frozen
	// CSR snapshot (no per-call sort of y's in-map).
	sp := p.Span("sources")
	var sources []graph.ID
	snap := g.Snapshot()
	srcIDs, srcLbls := snap.In(y)
	for j, s := range srcIDs {
		if snap.Label(srcLbls[j]).Explicit.Has(alpha) {
			sources = append(sources, s)
		}
	}
	sp.Count("sources", int64(len(sources))).End()
	if len(sources) == 0 {
		return nil, false, nil
	}
	// (ii) spanners.
	sp = p.Span("initial_spanners")
	xPrimes, err := spannersB(g, x, initialSpanRevNFA, true, relang.ViewExplicit, b)
	if err != nil {
		sp.Count("aborted", 1).End()
		return nil, false, err
	}
	sp.Count("x_primes", int64(len(xPrimes))).End()
	if len(xPrimes) == 0 {
		return nil, false, nil
	}
	if !wantEvidence {
		// Membership in the terminal-spanner union is all condition (iii)
		// needs: one merged search from every source replaces one search
		// per source (the spanner→source map only matters for evidence).
		sp = p.Span("terminal_spanners")
		sPrimes, err := spannersMergedB(g, sources, terminalSpanRevNFA, b)
		if err != nil {
			sp.Count("aborted", 1).End()
			return nil, false, err
		}
		sp.Count("s_primes", int64(len(sPrimes))).End()
		if len(sPrimes) == 0 {
			return nil, false, nil
		}
		// Island fast path: an x′ and an s′ in the same tg-island are
		// joined by a chain of subject-to-subject tg edges, each itself a
		// bridge, so condition (iii) holds without a product search. The
		// union-find index is maintained across mutations; on a miss the
		// full bridge closure below still decides.
		sp = p.Span("island_index")
		if err := b.Charge(int64(len(xPrimes) + len(sPrimes))); err != nil {
			sp.Count("aborted", 1).End()
			return nil, false, err
		}
		idx := g.TGIslands()
		roots := make(map[graph.ID]bool, len(xPrimes))
		for _, xp := range xPrimes {
			roots[idx.Root(xp)] = true
		}
		for _, spn := range sPrimes {
			if roots[idx.Root(spn)] {
				sp.Count("hits", 1).End()
				return nil, true, nil
			}
		}
		sp.Count("misses", 1).End()
		sp = p.Span("bridge_closure")
		res := relang.Search(g, bridgeChainNFA, xPrimes, relang.Options{View: relang.ViewExplicit, Budget: b})
		sp.Count("visited", int64(res.Visited())).Count("scanned", int64(res.Scanned())).End()
		if err := res.Err(); err != nil {
			return nil, false, err
		}
		for _, spn := range sPrimes {
			if res.Accepted(spn) && g.IsSubject(spn) {
				return nil, true, nil
			}
		}
		return nil, false, nil
	}
	sp = p.Span("terminal_spanners")
	sPrimeOf := make(map[graph.ID]graph.ID) // terminal spanner -> its source s
	var sPrimes []graph.ID
	for _, s := range sources {
		spns, err := spannersB(g, s, terminalSpanRevNFA, true, relang.ViewExplicit, b)
		if err != nil {
			sp.Count("aborted", 1).End()
			return nil, false, err
		}
		for _, spn := range spns {
			if _, seen := sPrimeOf[spn]; !seen {
				sPrimeOf[spn] = s
				sPrimes = append(sPrimes, spn)
			}
		}
	}
	sp.Count("s_primes", int64(len(sPrimes))).End()
	if len(sPrimes) == 0 {
		return nil, false, nil
	}
	// Evidence path: BFS over subjects expanding one bridge at a time so the
	// chain decomposes into per-bridge segments.
	type pred struct {
		from   graph.ID
		bridge []relang.Step
	}
	preds := make(map[graph.ID]pred)
	inStart := make(map[graph.ID]bool)
	for _, xp := range xPrimes {
		inStart[xp] = true
	}
	queue := append([]graph.ID(nil), xPrimes...)
	seen := make(map[graph.ID]bool)
	for _, xp := range xPrimes {
		seen[xp] = true
	}
	var hit graph.ID = graph.None
	for _, xp := range xPrimes {
		if _, ok := sPrimeOf[xp]; ok {
			hit = xp
			break
		}
	}
	sp = p.Span("witness_bfs")
	expansions := 0
	for hit == graph.None && len(queue) > 0 {
		if err := b.Charge(1); err != nil {
			sp.Count("expansions", int64(expansions)).Count("aborted", 1).End()
			return nil, false, err
		}
		u := queue[0]
		queue = queue[1:]
		expansions++
		res := relang.Search(g, bridgeNFA, []graph.ID{u}, relang.Options{View: relang.ViewExplicit, Trace: true, Budget: b})
		if err := res.Err(); err != nil {
			sp.Count("expansions", int64(expansions)).Count("aborted", 1).End()
			return nil, false, err
		}
		for _, q := range res.AcceptedVertices() {
			if !g.IsSubject(q) || seen[q] {
				continue
			}
			steps, _ := res.Witness(q)
			seen[q] = true
			preds[q] = pred{from: u, bridge: steps}
			queue = append(queue, q)
			if _, ok := sPrimeOf[q]; ok {
				hit = q
				break
			}
		}
	}
	sp.Count("expansions", int64(expansions)).End()
	if hit == graph.None {
		return nil, false, nil
	}
	// Reconstruct the chain from hit back to a start.
	var chain []graph.ID
	var bridges [][]relang.Step
	cur := hit
	for !inStart[cur] {
		pr := preds[cur]
		chain = append(chain, cur)
		bridges = append(bridges, pr.bridge)
		cur = pr.from
	}
	chain = append(chain, cur)
	// Reverse into x′ → … → s′ order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	for i, j := 0, len(bridges)-1; i < j; i, j = i+1, j-1 {
		bridges[i], bridges[j] = bridges[j], bridges[i]
	}
	ev := &ShareEvidence{
		S:      sPrimeOf[hit],
		XPrime: chain[0],
		SPrime: hit,
		Chain:  chain,
	}
	ev.Bridges = bridges
	if ev.XPrime != x {
		ev.InitialSpan, _ = InitiallySpans(g, ev.XPrime, x)
	}
	if ev.SPrime != ev.S {
		ev.TerminalSpan, _ = TerminallySpans(g, ev.SPrime, ev.S)
	}
	return ev, true, nil
}

func withoutID(ids []graph.ID, drop graph.ID) []graph.ID {
	out := ids[:0:0]
	for _, v := range ids {
		if v != drop {
			out = append(out, v)
		}
	}
	return out
}

// CanShareSet reports whether every right in set can be shared from y to x
// (i.e. can•share holds for each α in set individually).
func CanShareSet(g *graph.Graph, set rights.Set, x, y graph.ID) bool {
	for _, r := range set.Rights() {
		if !CanShare(g, r, x, y) {
			return false
		}
	}
	return !set.Empty()
}
