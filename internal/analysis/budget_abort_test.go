package analysis

import (
	"errors"
	"testing"

	"takegrant/internal/budget"
	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// budgetGraph is a world where every decision procedure's answer is
// positive: a -t,r-> b -r-> o, so a can take b's read right (can•share),
// hence can•know, and the r>r> link chain gives the de facto flow too.
// Positive answers matter: they prove a budget trip surfaces as a typed
// error, not as a wrong "false".
func budgetGraph(t *testing.T) (*graph.Graph, graph.ID, graph.ID) {
	t.Helper()
	g := graph.New(nil)
	a := g.MustSubject("a")
	b := g.MustSubject("b")
	o := g.MustObject("o")
	g.AddExplicit(a, b, rights.Of(rights.Take, rights.Read))
	g.AddExplicit(b, o, rights.R)
	return g, a, o
}

// TestFaultBudgetAbortIsTypedError runs every budgeted *Obs entry point
// twice: unlimited (the verdict must be positive) and with a one-state
// budget (the call must fail with an error wrapping budget.ErrExhausted
// and carrying a *budget.ExhaustedError — never report a negative).
func TestFaultBudgetAbortIsTypedError(t *testing.T) {
	g, a, o := budgetGraph(t)
	cases := []struct {
		name string
		run  func(b *budget.Budget) (positive bool, err error)
	}{
		{"CanShareObs", func(b *budget.Budget) (bool, error) {
			return CanShareObs(g, rights.Read, a, o, nil, b)
		}},
		{"CanKnowObs", func(b *budget.Budget) (bool, error) {
			return CanKnowObs(g, a, o, nil, b)
		}},
		{"CanKnowFObs", func(b *budget.Budget) (bool, error) {
			return CanKnowFObs(g, a, o, nil, b)
		}},
		{"SynthesizeShareObs", func(b *budget.Budget) (bool, error) {
			d, err := SynthesizeShareObs(g, rights.Read, a, o, nil, b)
			return len(d) > 0, err
		}},
		{"SynthesizeKnowObs", func(b *budget.Budget) (bool, error) {
			d, err := SynthesizeKnowObs(g, a, o, nil, b)
			return len(d) > 0, err
		}},
		{"ProfileObs", func(b *budget.Budget) (bool, error) {
			acq, err := ProfileObs(g, a, nil, b)
			return len(acq) > 0, err
		}},
		{"IslandsObs", func(b *budget.Budget) (bool, error) {
			isl, err := IslandsObs(g, nil, b)
			return len(isl) > 0, err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			positive, err := tc.run(nil)
			if err != nil {
				t.Fatalf("unlimited: unexpected error %v", err)
			}
			if !positive {
				t.Fatalf("unlimited: verdict should be positive on this graph")
			}

			_, err = tc.run(budget.New(nil, 1, 0))
			if err == nil {
				t.Fatal("one-state budget: no error — an exhausted budget must never look like a verdict")
			}
			if !errors.Is(err, budget.ErrExhausted) {
				t.Fatalf("error %v does not wrap budget.ErrExhausted", err)
			}
			var ex *budget.ExhaustedError
			if !errors.As(err, &ex) {
				t.Fatalf("error %v is not a *budget.ExhaustedError", err)
			}
			if ex.Reason != "visited" || ex.Limit != 1 {
				t.Errorf("ExhaustedError = %+v, want Reason visited Limit 1", ex)
			}
		})
	}
}

// TestFaultBudgetSharedAcrossPhases confirms the budget is one allowance
// for the whole decision, not per phase: a limit generous enough for any
// single phase still trips once cumulative work crosses it.
func TestFaultBudgetSharedAcrossPhases(t *testing.T) {
	g, a, o := budgetGraph(t)
	// Find the exact cost, then grant one state less.
	b := budget.New(nil, 1<<40, 0)
	if _, err := CanShareObs(g, rights.Read, a, o, nil, b); err != nil {
		t.Fatalf("huge budget tripped: %v", err)
	}
	cost := b.Visited()
	if cost < 2 {
		t.Fatalf("test premise broken: decision cost %d states", cost)
	}
	_, err := CanShareObs(g, rights.Read, a, o, nil, budget.New(nil, cost-1, 0))
	if !errors.Is(err, budget.ErrExhausted) {
		t.Fatalf("budget of cost-1 should trip, got %v", err)
	}
}
