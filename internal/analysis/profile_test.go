package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

func TestProfileSimple(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	v := g.MustObject("v")
	y := g.MustObject("y")
	g.AddExplicit(x, v, rights.T)
	g.AddExplicit(v, y, rights.RW)
	p := Profile(g, x)
	want := map[Acquisition]bool{
		{Right: rights.Take, Target: v, Held: true}: true,
		{Right: rights.Read, Target: y}:             true,
		{Right: rights.Write, Target: y}:            true,
	}
	if len(p) != len(want) {
		t.Fatalf("profile = %v", p)
	}
	for _, a := range p {
		if !want[a] {
			t.Errorf("unexpected acquisition %+v", a)
		}
	}
}

func TestProfileSorted(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	a := g.MustObject("a")
	b := g.MustObject("b")
	g.AddExplicit(x, b, rights.RW)
	g.AddExplicit(x, a, rights.T)
	g.AddExplicit(a, b, rights.G)
	p := Profile(g, x)
	for i := 1; i < len(p); i++ {
		if p[i].Target < p[i-1].Target ||
			(p[i].Target == p[i-1].Target && p[i].Right < p[i-1].Right) {
			t.Fatalf("unsorted profile: %v", p)
		}
	}
}

// TestProfileMatchesCanShare: the bulk profile must coincide with per-pair
// can•share decisions.
func TestProfileMatchesCanShare(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAnalysisGraph(rng, false)
		vs := g.Vertices()
		for _, x := range vs {
			inProfile := make(map[[2]int32]rights.Set)
			for _, a := range Profile(g, x) {
				key := [2]int32{int32(x), int32(a.Target)}
				inProfile[key] = inProfile[key].With(a.Right)
			}
			for _, y := range vs {
				if y == x {
					continue
				}
				for _, alpha := range []rights.Right{rights.Read, rights.Write, rights.Take, rights.Grant} {
					want := CanShare(g, alpha, x, y)
					got := inProfile[[2]int32{int32(x), int32(y)}].Has(alpha)
					if want != got {
						t.Logf("seed %d: profile=%v canshare=%v for %s gets %s to %s\n%s",
							seed, got, want, g.Name(x),
							g.Universe().Name(alpha), g.Name(y), g.String())
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTakeReach(t *testing.T) {
	g := graph.New(nil)
	a := g.MustSubject("a")
	b := g.MustObject("b")
	c := g.MustObject("c")
	d := g.MustObject("d")
	g.AddExplicit(a, b, rights.T)
	g.AddExplicit(b, c, rights.T)
	g.AddExplicit(c, d, rights.R) // r edge breaks the take chain
	reach := TakeReach(g, []graph.ID{a})
	if !reach[a] || !reach[b] || !reach[c] || reach[d] {
		t.Errorf("reach = %v", reach)
	}
	if len(TakeReach(g, nil)) != 0 {
		t.Error("empty sources reach something")
	}
}
