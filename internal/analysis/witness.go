package analysis

import (
	"errors"
	"fmt"

	"takegrant/internal/budget"
	"takegrant/internal/graph"
	"takegrant/internal/obs"
	"takegrant/internal/relang"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

// SynthesizeShare turns a positive can•share(α, x, y, G) decision into a
// replayable de jure derivation after which x holds an explicit α edge
// to y. It is the constructive content of Theorem 2.3, organised around a
// created mailbox so that no chain subject ever needs to hold a right to
// itself:
//
//  1. a terminal spanner s′ (≠ y) pulls α-to-y along its take chain; if y
//     is the only terminal spanner, y first mints a proxy subject and
//     delegates its rights to it (create-rule escape),
//  2. an initial spanner x′ creates a mailbox m and the right "g to m"
//     hops forward across the bridges of the island chain to s′ — the
//     create-trick of Lemmas 2.1/2.2 reverses bridges where needed,
//  3. s′ deposits α-to-y into the mailbox, x′ takes it out, and finally
//     pushes it to x along its initial span.
//
// The derivation is verified by replay on a clone before being returned;
// an empty derivation with nil error means the edge already exists.
// Because every step only adds vertices and explicit edges, witnesses
// computed against the starting graph stay valid throughout.
func SynthesizeShare(g *graph.Graph, alpha rights.Right, x, y graph.ID) (rules.Derivation, error) {
	return SynthesizeShareObs(g, alpha, x, y, nil, nil)
}

// SynthesizeShareObs is SynthesizeShare reporting witness_synthesis and
// witness_replay spans on p (the constructive side of Theorem 2.3), with
// the derivation length as a count, honouring the work budget b. A nil
// probe records nothing; a nil budget never trips. A budget trip is
// reported as an error wrapping budget.ErrExhausted.
func SynthesizeShareObs(g *graph.Graph, alpha rights.Right, x, y graph.ID, p *obs.Probe, b *budget.Budget) (rules.Derivation, error) {
	ok, err := CanShareObs(g, alpha, x, y, p, b)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("analysis: can.share(%s, %s, %s) is false",
			g.Universe().Name(alpha), g.Name(x), g.Name(y))
	}
	if g.Explicit(x, y).Has(alpha) {
		return nil, nil
	}
	sp := p.Span("witness_synthesis")
	d, err := planShare(g, alpha, x, y, b)
	sp.Count("steps", int64(len(d))).End()
	if err != nil {
		return nil, err
	}
	sp = p.Span("witness_replay")
	defer sp.End()
	clone := g.Clone()
	if _, err := d.Replay(clone); err != nil {
		return nil, fmt.Errorf("analysis: synthesized share derivation does not replay: %w", err)
	}
	if !clone.Explicit(x, y).Has(alpha) {
		return nil, fmt.Errorf("analysis: synthesized share derivation did not produce the edge")
	}
	return d, nil
}

// planShare builds the derivation on a scratch clone, applying each step
// eagerly so later planning sees the evolving graph.
func planShare(g *graph.Graph, alpha rights.Right, x, y graph.ID, b *budget.Budget) (rules.Derivation, error) {
	g2 := g.Clone()
	nm := rules.NewNamer(g2, "w")
	aSet := rights.Of(alpha)
	var d rules.Derivation
	apply := func(apps ...rules.Application) error {
		for _, a := range apps {
			if err := a.Apply(g2); err != nil {
				return fmt.Errorf("planning step %q: %w", a.Format(g2), err)
			}
			d = append(d, a)
		}
		return nil
	}

	// Sources: vertices holding an explicit α edge to y.
	var sources []graph.ID
	for _, h := range g2.In(y) {
		if h.Explicit.Has(alpha) {
			sources = append(sources, h.Other)
		}
	}
	xps := InitialSpanners(g2, x)
	spOf := make(map[graph.ID]graph.ID)
	for _, s := range sources {
		for _, sp := range TerminalSpanners(g2, s) {
			if _, seen := spOf[sp]; !seen {
				spOf[sp] = s
			}
		}
	}
	// y can participate in walks and bridges, but can never hold α-to-y,
	// so y is excluded from the endpoint candidates. When that leaves no
	// usable chain, y mints a proxy subject carrying its tg authority
	// (the create-rule escape) and the proxy stands in for it.
	_, yWasXP := indexIn(xps, y)
	_, yWasSP := spOf[y]
	xps = withoutID(xps, y)
	delete(spOf, y)
	var chain []graph.ID
	var bridges [][]relang.Step
	var err error
	if len(xps) > 0 && len(spOf) > 0 {
		chain, bridges, err = bridgeChain(g2, xps, spOf, b)
	} else {
		err = fmt.Errorf("analysis: no usable spanners besides the target")
	}
	if err != nil {
		if errors.Is(err, budget.ErrExhausted) {
			return nil, err
		}
		if !g2.IsSubject(y) || (!yWasXP && !yWasSP) {
			return nil, err
		}
		name := nm.Fresh()
		if aerr := apply(rules.Create(y, name, graph.Subject, rights.TG)); aerr != nil {
			return nil, aerr
		}
		proxy, _ := g2.Lookup(name)
		for _, h := range g2.Out(y) {
			// Spans and bridges only traverse take/grant labels, so the
			// proxy needs exactly y's tg authority — delegating more would
			// move rights the derivation has no business moving.
			set := h.Explicit.Intersect(rights.TG)
			if h.Other == proxy || set.Empty() {
				continue
			}
			if aerr := apply(rules.Grant(y, proxy, h.Other, set)); aerr != nil {
				return nil, aerr
			}
		}
		// Recompute candidates on the extended graph, still excluding y.
		xps = withoutID(InitialSpanners(g2, x), y)
		spOf = make(map[graph.ID]graph.ID)
		for _, s := range sources {
			for _, sp := range TerminalSpanners(g2, s) {
				if sp == y {
					continue
				}
				if _, seen := spOf[sp]; !seen {
					spOf[sp] = s
				}
			}
		}
		if len(xps) == 0 || len(spOf) == 0 {
			return nil, fmt.Errorf("analysis: no usable spanners after proxying the target")
		}
		chain, bridges, err = bridgeChain(g2, xps, spOf, b)
		if err != nil {
			return nil, err
		}
	}
	xp := chain[0]
	sp := chain[len(chain)-1]
	s := spOf[sp]

	// 1. s′ pulls α-to-y.
	if sp != s {
		span, ok := TerminallySpans(g2, sp, s)
		if !ok {
			return nil, fmt.Errorf("analysis: lost terminal span %s→%s", g2.Name(sp), g2.Name(s))
		}
		if err := apply(terminalPull(sp, s, y, aSet, span)...); err != nil {
			return nil, err
		}
	}
	// 2. move the right to x′ through a mailbox (skip when x′ = s′).
	if xp != sp {
		mName := nm.Fresh()
		if err := apply(rules.Create(xp, mName, graph.Object, rights.TG)); err != nil {
			return nil, err
		}
		m, _ := g2.Lookup(mName)
		for i := 0; i+1 < len(chain); i++ {
			seg, err := transferBridge(nm, chain[i+1], chain[i], m, rights.G, reverseSteps(bridges[i]))
			if err != nil {
				return nil, err
			}
			if err := apply(seg...); err != nil {
				return nil, err
			}
		}
		if err := apply(
			rules.Grant(sp, m, y, aSet), // s′ deposits α-to-y into m
			rules.Take(xp, m, y, aSet),  // x′ retrieves it
		); err != nil {
			return nil, err
		}
	}
	// 3. x′ pushes to x.
	if xp != x {
		span, ok := InitiallySpans(g2, xp, x)
		if !ok {
			return nil, fmt.Errorf("analysis: lost initial span %s→%s", g2.Name(xp), g2.Name(x))
		}
		if err := apply(initialPush(xp, x, y, aSet, span)...); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// bridgeChain finds a chain of subjects from some start (initial spanner)
// to some goal (terminal spanner), consecutive members joined by bridges,
// with per-hop witness walks read from the earlier member.
func bridgeChain(g *graph.Graph, starts []graph.ID, goals map[graph.ID]graph.ID, b *budget.Budget) ([]graph.ID, [][]relang.Step, error) {
	type pred struct {
		from   graph.ID
		bridge []relang.Step
	}
	preds := make(map[graph.ID]pred)
	seen := make(map[graph.ID]bool)
	inStart := make(map[graph.ID]bool)
	for _, s := range starts {
		seen[s] = true
		inStart[s] = true
		if hasKey(goals, s) {
			return []graph.ID{s}, nil, nil
		}
	}
	queue := append([]graph.ID(nil), starts...)
	hit := graph.None
	for hit == graph.None && len(queue) > 0 {
		if err := b.Charge(1); err != nil {
			return nil, nil, err
		}
		p := queue[0]
		queue = queue[1:]
		res := relang.Search(g, bridgeNFA, []graph.ID{p}, relang.Options{View: relang.ViewExplicit, Trace: true, Budget: b})
		if err := res.Err(); err != nil {
			return nil, nil, err
		}
		for _, q := range res.AcceptedVertices() {
			if !g.IsSubject(q) || seen[q] {
				continue
			}
			steps, _ := res.Witness(q)
			seen[q] = true
			preds[q] = pred{from: p, bridge: steps}
			queue = append(queue, q)
			if hasKey(goals, q) {
				hit = q
				break
			}
		}
	}
	if hit == graph.None {
		return nil, nil, fmt.Errorf("analysis: no island chain links the spanners")
	}
	var chain []graph.ID
	var bridges [][]relang.Step
	for cur := hit; ; {
		chain = append(chain, cur)
		if inStart[cur] {
			break
		}
		p := preds[cur]
		bridges = append(bridges, p.bridge)
		cur = p.from
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	for i, j := 0, len(bridges)-1; i < j; i, j = i+1, j-1 {
		bridges[i], bridges[j] = bridges[j], bridges[i]
	}
	return chain, bridges, nil
}

// vertsOf lists the vertices visited by a witness walk, starting at start.
func vertsOf(start graph.ID, steps []relang.Step) []graph.ID {
	verts := make([]graph.ID, 0, len(steps)+1)
	verts = append(verts, start)
	for _, s := range steps {
		verts = append(verts, s.To)
	}
	return verts
}

// trimActorLoops drops any walk prefix that returns to the actor
// (verts[0]), so the actor never reappears later in the chain. The
// remaining walk still steps along edges of the same kind.
func trimActorLoops(verts []graph.ID) []graph.ID {
	last := 0
	for i, v := range verts {
		if v == verts[0] {
			last = i
		}
	}
	return verts[last:]
}

func indexIn(verts []graph.ID, v graph.ID) (int, bool) {
	for i, u := range verts {
		if u == v {
			return i, true
		}
	}
	return -1, false
}

func hasKey(m map[graph.ID]graph.ID, k graph.ID) bool {
	_, ok := m[k]
	return ok
}

// reverseSteps rereads a witness walk from its far end: step order reverses,
// each step's endpoints swap, and each symbol's direction flips.
func reverseSteps(steps []relang.Step) []relang.Step {
	out := make([]relang.Step, len(steps))
	for i, s := range steps {
		sym := s.Sym
		if sym.Dir == relang.Fwd {
			sym.Dir = relang.Rev
		} else {
			sym.Dir = relang.Fwd
		}
		out[len(steps)-1-i] = relang.Step{From: s.To, To: s.From, Sym: sym}
	}
	return out
}

// terminalPull makes actor pull α-to-y along its terminal span to s
// (take chain, then one take of the α right).
func terminalPull(actor, s, y graph.ID, alpha rights.Set, span []relang.Step) rules.Derivation {
	chain := trimActorLoops(vertsOf(actor, span))
	d := rules.TakeChain(chain)
	return append(d, rules.Take(actor, s, y, alpha))
}

// PushShare builds the derivation by which actor — a subject currently
// holding an explicit α edge to y — delivers the right to x along its
// initial span. It errors when actor does not initially span to x.
func PushShare(g *graph.Graph, actor, x, y graph.ID, alpha rights.Right) (rules.Derivation, error) {
	if !g.Explicit(actor, y).Has(alpha) {
		return nil, fmt.Errorf("analysis: %s does not hold %s to %s",
			g.Name(actor), g.Universe().Name(alpha), g.Name(y))
	}
	span, ok := InitiallySpans(g, actor, x)
	if !ok {
		return nil, fmt.Errorf("analysis: %s does not initially span to %s", g.Name(actor), g.Name(x))
	}
	if actor == x {
		return nil, nil
	}
	return initialPush(actor, x, y, rights.Of(alpha), span), nil
}

// initialPush makes actor (who holds α-to-y) push the right to x along its
// initial span (take chain, acquire the grant edge, then grant).
func initialPush(actor, x, y graph.ID, alpha rights.Set, span []relang.Step) rules.Derivation {
	verts := vertsOf(actor, span)
	chain := trimActorLoops(verts[:len(verts)-1]) // up to c, the grant holder
	d := rules.TakeChain(chain)
	c := chain[len(chain)-1]
	if c != actor {
		d = append(d, rules.Take(actor, c, x, rights.G))
	}
	return append(d, rules.Grant(actor, x, y, alpha))
}

// transferBridge produces the derivation moving δ-to-target from holder q
// to receiver p across one bridge witness walk (word in B, read from p).
// Both p and q are subjects; neither equals target (callers only move
// rights whose target is outside the chain — the mailbox, or y with
// endpoints already filtered).
func transferBridge(nm *rules.Namer, p, q, target graph.ID, delta rights.Set, steps []relang.Step) (rules.Derivation, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("analysis: empty bridge witness")
	}
	gIdx := -1
	for i, s := range steps {
		if s.Sym.Right == rights.Grant {
			gIdx = i
			break
		}
	}
	verts := vertsOf(p, steps)
	if gIdx == -1 {
		if steps[0].Sym.Dir == relang.Fwd {
			// t>*: p take-chains to q and pulls.
			chain := trimActorLoops(verts)
			d := rules.TakeChain(chain)
			return append(d, rules.Take(p, q, target, delta)), nil
		}
		// t<*: q take-chains to p, then the pair reverses the edge
		// (Lemma 2.1 create-trick).
		qchain := trimActorLoops(reverseVerts(verts))
		d := rules.TakeChain(qchain)
		return append(d, rules.ReverseTake(nm, q, p, target, delta)...), nil
	}
	a, b := verts[gIdx], verts[gIdx+1]
	prefix := trimActorLoops(verts[:gIdx+1])               // p … a along t>
	qchain := trimActorLoops(reverseVerts(verts[gIdx+1:])) // q … b along t>
	// Shortcut: the holder sits on p's take chain — pull directly.
	if i, ok := indexIn(prefix, q); ok {
		d := rules.TakeChain(prefix[:i+1])
		return append(d, rules.Take(p, q, target, delta)), nil
	}
	// Shortcut: the receiver sits on q's take chain — reverse the t edge.
	if i, ok := indexIn(qchain, p); ok {
		d := rules.TakeChain(qchain[:i+1])
		return append(d, rules.ReverseTake(nm, q, p, target, delta)...), nil
	}
	if steps[gIdx].Sym.Dir == relang.Fwd {
		// t>* g> t<* with edge a -g-> b: p acquires g to b, then the pair
		// meets at a created proxy n (b -g-> n lets q push into n; p takes
		// out of n).
		d := rules.TakeChain(prefix)
		if a != p {
			d = append(d, rules.Take(p, a, b, rights.G))
		}
		d = append(d, rules.TakeChain(qchain)...)
		n := nm.Fresh()
		d = append(d, rules.Create(p, n, graph.Object, rights.TG))
		d = append(d, rules.GrantZRef(p, b, n, rights.G))
		if q != b {
			d = append(d, rules.TakeZRef(q, b, n, rights.G))
		}
		d = append(d, rules.GrantYRef(q, n, target, delta))
		d = append(d, rules.TakeYRef(p, n, target, delta))
		return d, nil
	}
	// t>* g< t<* with edge b -g-> a: q acquires g to a and deposits the
	// right on a; p pulls it off a.
	d := rules.TakeChain(qchain)
	if b != q {
		d = append(d, rules.Take(q, b, a, rights.G))
	}
	if a == target {
		// Depositing δ-to-target on target itself would need a self edge;
		// route through a proxy reachable from p's chain instead: q
		// publishes a take edge onto a, p follows it to the proxy.
		n := nm.Fresh()
		d = append(d, rules.Create(q, n, graph.Object, rights.TG))
		d = append(d, rules.GrantZRef(q, a, n, rights.T))
		d = append(d, rules.TakeChain(prefix)...)
		d = append(d, rules.TakeZRef(p, a, n, rights.T))
		d = append(d, rules.GrantYRef(q, n, target, delta))
		d = append(d, rules.TakeYRef(p, n, target, delta))
		return d, nil
	}
	d = append(d, rules.Grant(q, a, target, delta))
	d = append(d, rules.TakeChain(prefix)...)
	if p != a {
		d = append(d, rules.Take(p, a, target, delta))
	}
	return d, nil
}

func reverseVerts(verts []graph.ID) []graph.ID {
	out := make([]graph.ID, len(verts))
	for i, v := range verts {
		out[len(verts)-1-i] = v
	}
	return out
}
