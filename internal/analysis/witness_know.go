package analysis

import (
	"fmt"

	"takegrant/internal/budget"
	"takegrant/internal/graph"
	"takegrant/internal/obs"
	"takegrant/internal/relang"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

// SynthesizeKnow turns a positive can•know(x, y, G) decision into a
// replayable derivation (de jure and de facto rules) after which the
// definition's base condition holds: an x→y read edge (implicit, or
// explicit with x a subject) or a y→x write edge with y a subject.
//
// It is the constructive content of Theorem 3.2. The chain subjects
// u1,…,un propagate knowledge of y from un down to u1:
//
//   - un realises its rw-terminal span (take chain + take r) to read y;
//   - a bridge hop shares read rights to a created mailbox the holder
//     writes through (post), then composes with spy;
//   - a connection hop realises its spans with takes and composes with
//     post / pass / spy;
//   - u1 finally realises its rw-initial span (take chain + take w) and
//     passes the information into x.
//
// An empty derivation with nil error means the base condition already
// holds (including x == y).
func SynthesizeKnow(g *graph.Graph, x, y graph.ID) (rules.Derivation, error) {
	return SynthesizeKnowObs(g, x, y, nil, nil)
}

// SynthesizeKnowObs is SynthesizeKnow reporting witness_synthesis and
// witness_replay spans on p (the constructive side of Theorem 3.2), with
// the derivation length as a count, honouring the work budget b. A nil
// probe records nothing; a nil budget never trips. A budget trip is
// reported as an error wrapping budget.ErrExhausted.
func SynthesizeKnowObs(g *graph.Graph, x, y graph.ID, p *obs.Probe, b *budget.Budget) (rules.Derivation, error) {
	ok, err := CanKnowObs(g, x, y, p, b)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("analysis: can.know(%s, %s) is false", g.Name(x), g.Name(y))
	}
	if x == y || KnowsBase(g, x, y) {
		return nil, nil
	}
	sp := p.Span("witness_synthesis")
	d, err := planKnow(g, x, y, b)
	sp.Count("steps", int64(len(d))).End()
	if err != nil {
		return nil, err
	}
	sp = p.Span("witness_replay")
	defer sp.End()
	clone := g.Clone()
	if _, err := d.Replay(clone); err != nil {
		return nil, fmt.Errorf("analysis: synthesized know derivation does not replay: %w", err)
	}
	if !KnowsBase(clone, x, y) {
		return nil, fmt.Errorf("analysis: synthesized know derivation did not establish the flow")
	}
	return d, nil
}

// KnowsBase reports the base condition of the can•know definition on the
// current graph: x reads y implicitly, or explicitly as a subject, or y
// (a subject) writes x.
func KnowsBase(g *graph.Graph, x, y graph.ID) bool {
	if g.Implicit(x, y).Has(rights.Read) || g.Implicit(y, x).Has(rights.Write) {
		return true
	}
	if g.Explicit(x, y).Has(rights.Read) && g.IsSubject(x) {
		return true
	}
	if g.Explicit(y, x).Has(rights.Write) && g.IsSubject(y) {
		return true
	}
	return false
}

func planKnow(g *graph.Graph, x, y graph.ID, b *budget.Budget) (rules.Derivation, error) {
	ev, ok, err := canKnow(g, x, y, true, nil, b)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("analysis: evidence lost for can.know(%s, %s)", g.Name(x), g.Name(y))
	}
	g2 := g.Clone()
	nm := rules.NewNamer(g2, "k")
	var d rules.Derivation
	apply := func(apps ...rules.Application) error {
		for _, a := range apps {
			if err := a.Apply(g2); err != nil {
				return fmt.Errorf("planning step %q: %w", a.Format(g2), err)
			}
			d = append(d, a)
		}
		return nil
	}
	chain := ev.Chain
	un := chain[len(chain)-1]
	// 1. un reads y.
	if un != y {
		if err := apply(realizeRead(g2, un, y, ev.TerminalSpan)...); err != nil {
			return nil, err
		}
	}
	// 2. propagate down the chain: holder v = chain[i+1] knows y (has an
	// r edge to y, or v == y); receiver u = chain[i] must come to know y.
	for i := len(chain) - 2; i >= 0; i-- {
		u, v := chain[i], chain[i+1]
		seg, err := knowHop(g2, nm, u, v, y, ev.Links[i])
		if err != nil {
			return nil, err
		}
		if err := apply(seg...); err != nil {
			return nil, err
		}
	}
	// 3. u1 pushes into x.
	u1 := chain[0]
	if u1 != x {
		span := ev.InitialSpan
		verts := vertsOf(u1, span)
		c := verts[len(verts)-2]
		wChain := trimActorLoops(verts[:len(verts)-1])
		if err := apply(rules.TakeChain(wChain)...); err != nil {
			return nil, err
		}
		if c != u1 {
			if err := apply(rules.Take(u1, c, x, rights.W)); err != nil {
				return nil, err
			}
		}
		if u1 != y {
			// u1 writes what it knows of y into x.
			if err := apply(rules.Pass(x, u1, y)); err != nil {
				return nil, err
			}
		}
		// u1 == y: the explicit y→x write edge is itself the base condition.
	}
	return d, nil
}

// realizeRead makes actor acquire an explicit read edge to target along an
// rw-terminal span witness (word t>* r>).
func realizeRead(g *graph.Graph, actor, target graph.ID, span []relang.Step) rules.Derivation {
	verts := vertsOf(actor, span)
	c := verts[len(verts)-2]
	chain := trimActorLoops(verts[:len(verts)-1])
	d := rules.TakeChain(chain)
	if c != actor {
		d = append(d, rules.Take(actor, c, target, rights.R))
	}
	return d
}

// knowHop makes u come to know y, given that v already does (v holds an r
// edge to y — explicit or implicit — or v == y), across one link witness
// (word in B ∪ C read from u to v).
func knowHop(g *graph.Graph, nm *rules.Namer, u, v, y graph.ID, steps []relang.Step) (rules.Derivation, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("analysis: empty link witness")
	}
	rIdx, wIdx := -1, -1
	for i, s := range steps {
		if s.Sym.Right == rights.Read && s.Sym.Dir == relang.Fwd {
			rIdx = i
		}
		if s.Sym.Right == rights.Write && s.Sym.Dir == relang.Rev {
			wIdx = i
		}
	}
	verts := vertsOf(u, steps)
	switch {
	case rIdx < 0 && wIdx < 0:
		return bridgeHop(g, nm, u, v, y, steps)
	case rIdx >= 0 && wIdx < 0:
		// t>* r>: u takes its way to the read edge's holder.
		var d rules.Derivation
		c := verts[rIdx]
		chain := trimActorLoops(verts[:rIdx+1])
		d = append(d, rules.TakeChain(chain)...)
		if c != u {
			d = append(d, rules.Take(u, c, v, rights.R))
		}
		if v != y {
			d = append(d, rules.Spy(u, v, y))
		}
		return d, nil
	case rIdx < 0 && wIdx >= 0:
		// w< t<*: v takes its way to the write edge's holder and writes u.
		var d rules.Derivation
		qverts := reverseVerts(verts) // v … c' … u
		c := qverts[len(qverts)-2]
		chain := trimActorLoops(qverts[:len(qverts)-1])
		d = append(d, rules.TakeChain(chain)...)
		if c != v {
			d = append(d, rules.Take(v, c, u, rights.W))
		}
		if v != y {
			d = append(d, rules.Pass(u, v, y))
			return d, nil
		}
		// v == y: y writes u directly; manufacture the implicit read via a
		// scratch object y both reads and writes.
		m := nm.Fresh()
		d = append(d, rules.Create(v, m, graph.Object, rights.RW))
		d = append(d, rules.PassZRef(u, v, m)) // implicit u→m read
		d = append(d, rules.PostYRef(u, m, v)) // implicit u→y read
		return d, nil
	default:
		// t>* r> w< t<*: u reads the meeting vertex, v writes it, post.
		var d rules.Derivation
		mid := verts[rIdx+1]
		if mid != u {
			cu := verts[rIdx]
			uchain := trimActorLoops(verts[:rIdx+1])
			d = append(d, rules.TakeChain(uchain)...)
			if cu != u {
				d = append(d, rules.Take(u, cu, mid, rights.R))
			}
		}
		if mid != v {
			qverts := reverseVerts(verts[wIdx:]) // v … cw, mid
			cw := qverts[len(qverts)-2]
			vchain := trimActorLoops(qverts[:len(qverts)-1])
			d = append(d, rules.TakeChain(vchain)...)
			if cw != v {
				d = append(d, rules.Take(v, cw, mid, rights.W))
			}
		}
		switch {
		case mid == u:
			// v writes straight into u.
			if v != y {
				d = append(d, rules.Pass(u, v, y))
			} else {
				m := nm.Fresh()
				d = append(d, rules.Create(v, m, graph.Object, rights.RW))
				d = append(d, rules.PassZRef(u, v, m))
				d = append(d, rules.PostYRef(u, m, v))
			}
		case mid == v:
			// u reads v directly.
			if v != y {
				d = append(d, rules.Spy(u, v, y))
			}
		default:
			d = append(d, rules.Post(u, mid, v))
			if v != y {
				d = append(d, rules.Spy(u, v, y))
			}
		}
		return d, nil
	}
}

// bridgeHop lets u learn y across a bridge to v (who knows y): v creates a
// mailbox, the read right to it crosses the bridge to u, v writes through
// it (post), and spy composes with v's knowledge.
func bridgeHop(g *graph.Graph, nm *rules.Namer, u, v, y graph.ID, steps []relang.Step) (rules.Derivation, error) {
	m := nm.Fresh()
	d := rules.Derivation{rules.Create(v, m, graph.Object, rights.Of(rights.Read, rights.Write, rights.Take, rights.Grant))}
	// The transfer needs the mailbox's ID; apply the create on a scratch
	// clone to learn it, then plan the bridge transfer against real IDs.
	scratch := g.Clone()
	if err := d[0].Apply(scratch); err != nil {
		return nil, err
	}
	mid, _ := scratch.Lookup(m)
	// Move "r to m" from holder v to receiver u across the bridge (steps
	// are read from u, which is what transferBridge expects).
	seg, err := transferBridge(nm, u, v, mid, rights.R, steps)
	if err != nil {
		return nil, err
	}
	d = append(d, seg...)
	d = append(d, rules.PostYRef(u, m, v))
	if v != y {
		d = append(d, rules.Spy(u, v, y))
	}
	return d, nil
}
