package analysis

import (
	"sync"

	"takegrant/internal/budget"
	"takegrant/internal/graph"
	"takegrant/internal/relang"
	"takegrant/internal/rights"
)

// closureScratch is the pooled working set of one KnowClosureInto call:
// an epoch-stamped membership filter over vertex IDs (same idiom as the
// relang product-search scratch — marking is O(1) and starting a closure
// is O(1) after the first use at a given size) plus reusable candidate
// buffers for the u1/un subject sets of Theorem 3.2.
type closureScratch struct {
	stamp []uint32
	epoch uint32
	u1s   []graph.ID
	uns   []graph.ID
	one   [1]graph.ID
}

var closurePool = sync.Pool{New: func() any { return new(closureScratch) }}

func (cs *closureScratch) reset(size int) {
	if cap(cs.stamp) < size {
		cs.stamp = make([]uint32, size)
		cs.epoch = 0
	} else {
		cs.stamp = cs.stamp[:size]
	}
	cs.epoch++
	if cs.epoch == 0 { // wrapped: stale stamps could alias the new epoch
		full := cs.stamp[:cap(cs.stamp)]
		for i := range full {
			full[i] = 0
		}
		cs.epoch = 1
	}
	cs.u1s = cs.u1s[:0]
	cs.uns = cs.uns[:0]
}

// mark records v as a closure member and reports whether it was new.
func (cs *closureScratch) mark(v graph.ID) bool {
	if cs.stamp[v] == cs.epoch {
		return false
	}
	cs.stamp[v] = cs.epoch
	return true
}

// KnowClosureInto appends to dst every vertex v with can•know(u, v, G) —
// u itself first, then the rest in search discovery order, each exactly
// once — and returns the extended slice. It is the allocation-free core
// behind KnowClosure: the three product searches of the bulk Theorem 3.2
// evaluation (reversed rw-initial spans to find the u1 candidates, the
// B ∪ C link chain, forward rw-terminal spans) stream their accepts
// through pooled epoch-stamped scratch, so a caller reusing dst across
// subjects performs no steady-state allocation. The budget b is charged
// one unit per product state by the underlying searches; on exhaustion
// the partial dst extension must not be read as a closure.
func KnowClosureInto(g *graph.Graph, u graph.ID, dst []graph.ID, b *budget.Budget) ([]graph.ID, error) {
	if !g.Valid(u) {
		return dst, nil
	}
	cs := closurePool.Get().(*closureScratch)
	cs.reset(g.Cap())
	cs.mark(u)
	dst = append(dst, u)

	// (a) u1 candidates: subjects rw-initially spanning to u, plus u when
	// u is itself a subject.
	if g.IsSubject(u) {
		cs.u1s = append(cs.u1s, u)
	}
	cs.one[0] = u
	opts := relang.Options{View: relang.ViewExplicit, Budget: b}
	_, _, err := relang.SearchVisit(g, rwInitialSpanRevNFA, cs.one[:], opts, func(v graph.ID) {
		if v != u && g.IsSubject(v) {
			cs.u1s = append(cs.u1s, v)
		}
	})
	if err != nil {
		closurePool.Put(cs)
		return dst, err
	}
	if len(cs.u1s) == 0 {
		closurePool.Put(cs)
		return dst, nil
	}

	// (c) link chain: every subject reachable from the u1 set by words in
	// B ∪ C is a un candidate and itself a closure member.
	_, _, err = relang.SearchVisit(g, linkChainNFA, cs.u1s, opts, func(v graph.ID) {
		if g.IsSubject(v) {
			cs.uns = append(cs.uns, v)
			if cs.mark(v) {
				dst = append(dst, v)
			}
		}
	})
	if err != nil {
		closurePool.Put(cs)
		return dst, err
	}

	// (b) forward rw-terminal spans extend the reached subjects to every
	// vertex whose information they can read.
	if len(cs.uns) > 0 {
		_, _, err = relang.SearchVisit(g, rwTerminalNFA, cs.uns, opts, func(v graph.ID) {
			if cs.mark(v) {
				dst = append(dst, v)
			}
		})
	}
	closurePool.Put(cs)
	if err != nil {
		return dst, err
	}
	return dst, nil
}

// KnowFClosureInto appends to dst every vertex y with can•know•f(x, y, G)
// — x itself first, then the rest in discovery order, each exactly once —
// and returns the extended slice. It is the bulk form of CanKnowF: one
// admissible-path search over the combined view plus the definition's
// implicit-edge base cases (an implicit read x→y or implicit write y→x
// witnesses the flow regardless of vertex kinds). Pooled scratch, no
// steady-state allocation when dst capacity suffices. On a budget error
// the partial extension must not be read as a closure.
func KnowFClosureInto(g *graph.Graph, x graph.ID, dst []graph.ID, b *budget.Budget) ([]graph.ID, error) {
	if !g.Valid(x) {
		return dst, nil
	}
	cs := closurePool.Get().(*closureScratch)
	cs.reset(g.Cap())
	cs.mark(x)
	dst = append(dst, x)
	snap := g.Snapshot()
	outDst, outLbl := snap.Out(x)
	for j, y := range outDst {
		if snap.Label(outLbl[j]).Implicit.Has(rights.Read) && cs.mark(y) {
			dst = append(dst, y)
		}
	}
	inDst, inLbl := snap.In(x)
	for j, y := range inDst {
		if snap.Label(inLbl[j]).Implicit.Has(rights.Write) && cs.mark(y) {
			dst = append(dst, y)
		}
	}
	cs.one[0] = x
	_, _, err := relang.SearchVisit(g, admissibleNFA, cs.one[:], relang.Options{View: relang.ViewCombined, Budget: b}, func(v graph.ID) {
		if cs.mark(v) {
			dst = append(dst, v)
		}
	})
	closurePool.Put(cs)
	if err != nil {
		return dst, err
	}
	return dst, nil
}
