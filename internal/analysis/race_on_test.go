//go:build race

package analysis

// raceEnabled reports whether the race detector instruments this build;
// allocation counts are not meaningful under instrumentation.
const raceEnabled = true
