package analysis

import (
	"takegrant/internal/budget"
	"takegrant/internal/graph"
	"takegrant/internal/obs"
	"takegrant/internal/relang"
	"takegrant/internal/rights"
)

var (
	admissibleNFA    = relang.Compile(relang.Admissible())
	admissibleRevNFA = relang.Compile(relang.Reverse(relang.Admissible()))
	connectionNFA    = relang.Compile(relang.Connection())
	linkNFA          = relang.Compile(relang.BridgeOrConnection())
	linkChainNFA     = relang.LinkChain()
)

// CanKnowF decides can•know•f(x, y, G): can x come to know y's information
// using de facto rules alone? By Theorem 3.1 this holds exactly when an
// admissible rw-path runs from x to y. The predicate is reflexive by
// convention (a vertex knows its own information).
//
// Implicit edges present in G participate (the de facto rules accept them),
// so the search runs over the combined view.
func CanKnowF(g *graph.Graph, x, y graph.ID) bool {
	ok, _ := CanKnowFObs(g, x, y, nil, nil)
	return ok
}

// CanKnowFObs is CanKnowF reporting the admissible-path search as an
// admissible_search span on p (Theorem 3.1's single product search) and
// honouring the work budget b. A nil probe records nothing; a nil budget
// never trips. A budget trip abandons the verdict with an error wrapping
// budget.ErrExhausted — never a wrong "false".
func CanKnowFObs(g *graph.Graph, x, y graph.ID, p *obs.Probe, b *budget.Budget) (bool, error) {
	if !g.Valid(x) || !g.Valid(y) {
		return false, nil
	}
	if x == y {
		return true, nil
	}
	// Base case of the definition: an existing implicit edge witnesses the
	// flow regardless of vertex kinds (the guard on explicit edges is the
	// theorem's subject-source condition).
	if g.Implicit(x, y).Has(rights.Read) || g.Implicit(y, x).Has(rights.Write) {
		return true, nil
	}
	sp := p.Span("admissible_search")
	res := relang.Search(g, admissibleNFA, []graph.ID{x}, relang.Options{View: relang.ViewCombined, Budget: b})
	sp.Count("visited", int64(res.Visited())).Count("scanned", int64(res.Scanned())).End()
	if err := res.Err(); err != nil {
		return false, err
	}
	return res.Accepted(y), nil
}

// CanKnowFWitness returns an admissible rw-path from x to y when one
// exists. The empty path is returned for x == y.
func CanKnowFWitness(g *graph.Graph, x, y graph.ID) ([]relang.Step, bool) {
	if !g.Valid(x) || !g.Valid(y) {
		return nil, false
	}
	res := relang.Search(g, admissibleNFA, []graph.ID{x}, relang.Options{View: relang.ViewCombined, Trace: true})
	return res.Witness(y)
}

// KnowersF returns every vertex v with can•know•f(v, x, G): the de facto
// readers of x's information. It runs one reversed admissible search.
func KnowersF(g *graph.Graph, x graph.ID) []graph.ID {
	if !g.Valid(x) {
		return nil
	}
	res := relang.Search(g, admissibleRevNFA, []graph.ID{x}, relang.Options{View: relang.ViewCombined})
	out := res.AcceptedVertices()
	sortIDs(out)
	return out
}

// ConnectionBetween reports whether a connection (word in C) runs from
// subject u to subject v, returning a witness. Information flows v → u
// along a connection, with no authority transfer.
func ConnectionBetween(g *graph.Graph, u, v graph.ID) ([]relang.Step, bool) {
	if !g.IsSubject(u) || !g.IsSubject(v) || u == v {
		return nil, false
	}
	res := relang.Search(g, connectionNFA, []graph.ID{u}, relang.Options{View: relang.ViewExplicit, Trace: true})
	return res.Witness(v)
}

// LinkBetween reports whether a bridge or connection (word in B ∪ C) runs
// from subject u to subject v: Theorem 3.2's condition (c) for one hop.
func LinkBetween(g *graph.Graph, u, v graph.ID) ([]relang.Step, bool) {
	if !g.IsSubject(u) || !g.IsSubject(v) || u == v {
		return nil, false
	}
	res := relang.Search(g, linkNFA, []graph.ID{u}, relang.Options{View: relang.ViewExplicit, Trace: true})
	return res.Witness(v)
}

// CanKnow decides can•know(x, y, G): can x come to know y's information
// using de jure and de facto rules together? It implements Theorem 3.2:
// subjects u1,…,un must exist with
//
//	(a) x = u1 or u1 rw-initially spans to x,
//	(b) y = un or un rw-terminally spans to y,
//	(c) each consecutive pair joined by an rwtg-path with word in B ∪ C.
//
// Reflexive by convention.
func CanKnow(g *graph.Graph, x, y graph.ID) bool {
	_, ok, _ := canKnow(g, x, y, false, nil, nil)
	return ok
}

// CanKnowObs is CanKnow reporting per-phase spans on p and honouring the
// work budget b: Theorem 3.2's conditions map to phases
// rw_initial_spanners (a), rw_terminal_spanners (b) and link_closure (c),
// with visit/scan counts from the underlying product searches. A nil probe
// records nothing; a nil budget never trips. A budget trip abandons the
// verdict with an error wrapping budget.ErrExhausted — never a wrong
// "false".
func CanKnowObs(g *graph.Graph, x, y graph.ID, p *obs.Probe, b *budget.Budget) (bool, error) {
	_, ok, err := canKnow(g, x, y, false, p, b)
	return ok, err
}

// KnowEvidence explains a positive can•know decision.
type KnowEvidence struct {
	// Trivial is true for x == y or a direct admissible single edge;
	// the chain fields are then empty.
	Trivial bool
	// Chain is u1,…,un.
	Chain []graph.ID
	// Links[i] is a witness walk (word in B ∪ C) from Chain[i] to
	// Chain[i+1].
	Links [][]relang.Step
	// InitialSpan is a witness u1 → x rw-initial span (nil when u1 == x).
	InitialSpan []relang.Step
	// TerminalSpan is a witness un → y rw-terminal span (nil when un == y).
	TerminalSpan []relang.Step
}

// CanKnowEx is CanKnow returning evidence; the input to SynthesizeKnow.
func CanKnowEx(g *graph.Graph, x, y graph.ID) (*KnowEvidence, bool) {
	ev, ok, _ := canKnow(g, x, y, true, nil, nil)
	return ev, ok
}

func canKnow(g *graph.Graph, x, y graph.ID, wantEvidence bool, p *obs.Probe, b *budget.Budget) (*KnowEvidence, bool, error) {
	if !g.Valid(x) || !g.Valid(y) {
		return nil, false, nil
	}
	if x == y {
		return &KnowEvidence{Trivial: true}, true, nil
	}
	// (a) candidate u1 set.
	sp := p.Span("rw_initial_spanners")
	u1s, err := spannersB(g, x, rwInitialSpanRevNFA, true, relang.ViewExplicit, b)
	if err != nil {
		sp.Count("aborted", 1).End()
		return nil, false, err
	}
	if g.IsSubject(x) {
		u1s = appendUnique(u1s, x)
	}
	sp.Count("u1s", int64(len(u1s))).End()
	if len(u1s) == 0 {
		return nil, false, nil
	}
	// (b) candidate un set.
	sp = p.Span("rw_terminal_spanners")
	uns, err := spannersB(g, y, rwTerminalRevNFA, true, relang.ViewExplicit, b)
	if err != nil {
		sp.Count("aborted", 1).End()
		return nil, false, err
	}
	if g.IsSubject(y) {
		uns = appendUnique(uns, y)
	}
	sp.Count("uns", int64(len(uns))).End()
	if len(uns) == 0 {
		return nil, false, nil
	}
	unSet := make(map[graph.ID]bool, len(uns))
	for _, u := range uns {
		unSet[u] = true
	}
	if !wantEvidence {
		// Island fast path: u1 and un in the same tg-island are joined by
		// a chain of subject tg edges — each a bridge, hence a word in
		// B ∪ C — so condition (c) holds without a product search. On a
		// miss the link closure below still decides.
		sp = p.Span("island_index")
		if err := b.Charge(int64(len(u1s) + len(uns))); err != nil {
			sp.Count("aborted", 1).End()
			return nil, false, err
		}
		idx := g.TGIslands()
		roots := make(map[graph.ID]bool, len(u1s))
		for _, u := range u1s {
			roots[idx.Root(u)] = true
		}
		hitIsland := false
		for _, u := range uns {
			if roots[idx.Root(u)] {
				hitIsland = true
				break
			}
		}
		if hitIsland {
			sp.Count("hits", 1).End()
			return nil, true, nil
		}
		sp.Count("misses", 1).End()
		sp = p.Span("link_closure")
		res := relang.Search(g, linkChainNFA, u1s, relang.Options{View: relang.ViewExplicit, Budget: b})
		sp.Count("visited", int64(res.Visited())).Count("scanned", int64(res.Scanned())).End()
		if err := res.Err(); err != nil {
			return nil, false, err
		}
		for _, u := range uns {
			if res.Accepted(u) {
				return nil, true, nil
			}
		}
		return nil, false, nil
	}
	// Evidence BFS, one link per hop.
	type pred struct {
		from graph.ID
		link []relang.Step
	}
	preds := make(map[graph.ID]pred)
	seen := make(map[graph.ID]bool)
	inStart := make(map[graph.ID]bool)
	for _, u := range u1s {
		seen[u] = true
		inStart[u] = true
	}
	queue := append([]graph.ID(nil), u1s...)
	hit := graph.None
	for _, u := range u1s {
		if unSet[u] {
			hit = u
			break
		}
	}
	sp = p.Span("witness_bfs")
	expansions := 0
	for hit == graph.None && len(queue) > 0 {
		if err := b.Charge(1); err != nil {
			sp.Count("expansions", int64(expansions)).Count("aborted", 1).End()
			return nil, false, err
		}
		u := queue[0]
		queue = queue[1:]
		expansions++
		res := relang.Search(g, linkNFA, []graph.ID{u}, relang.Options{View: relang.ViewExplicit, Trace: true, Budget: b})
		if err := res.Err(); err != nil {
			sp.Count("expansions", int64(expansions)).Count("aborted", 1).End()
			return nil, false, err
		}
		for _, q := range res.AcceptedVertices() {
			if !g.IsSubject(q) || seen[q] {
				continue
			}
			steps, _ := res.Witness(q)
			seen[q] = true
			preds[q] = pred{from: u, link: steps}
			queue = append(queue, q)
			if unSet[q] {
				hit = q
				break
			}
		}
	}
	sp.Count("expansions", int64(expansions)).End()
	if hit == graph.None {
		return nil, false, nil
	}
	var chain []graph.ID
	var links [][]relang.Step
	cur := hit
	for !inStart[cur] {
		pr := preds[cur]
		chain = append(chain, cur)
		links = append(links, pr.link)
		cur = pr.from
	}
	chain = append(chain, cur)
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
		links[i], links[j] = links[j], links[i]
	}
	ev := &KnowEvidence{Chain: chain, Links: links}
	if chain[0] != x {
		ev.InitialSpan, _ = RWInitiallySpans(g, chain[0], x)
	}
	if chain[len(chain)-1] != y {
		ev.TerminalSpan, _ = RWTerminallySpans(g, chain[len(chain)-1], y)
	}
	return ev, true, nil
}

// KnowClosure returns every vertex v with can•know(u, v, G), computed with
// two whole-graph product searches instead of per-pair queries: the link
// chain of Theorem 3.2 runs once from u's u1-candidates, and a forward
// rw-terminal-span search extends the reached subjects to the vertices they
// can read. Used by the hierarchy package to build rwtg-levels in
// O(V·E·Q) total rather than O(V²·E·Q).
func KnowClosure(g *graph.Graph, u graph.ID) map[graph.ID]bool {
	ids, _ := KnowClosureInto(g, u, nil, nil)
	out := make(map[graph.ID]bool, len(ids))
	for _, v := range ids {
		out[v] = true
	}
	return out
}

func appendUnique(ids []graph.ID, id graph.ID) []graph.ID {
	for _, v := range ids {
		if v == id {
			return ids
		}
	}
	return append(ids, id)
}
