package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

// TestTheorem31ClosureEquivalence is the direct cross-check of Theorem
// 3.1: on implicit-free graphs, the admissible-path characterisation of
// can•know•f coincides with actually running the de facto rules to a
// fixpoint and reading off the base condition.
func TestTheorem31ClosureEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAnalysisGraph(rng, false)
		closed := g.Clone()
		rules.DeFactoClosure(closed)
		for _, x := range g.Vertices() {
			for _, y := range g.Vertices() {
				if x == y {
					continue
				}
				path := CanKnowF(g, x, y)
				fixpoint := KnowsBase(closed, x, y)
				if path != fixpoint {
					t.Logf("seed %d: path=%v fixpoint=%v for %s→%s\n%s",
						seed, path, fixpoint, g.Name(x), g.Name(y), g.String())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestClosureMonotoneUnderDeJure: applying de jure rules can only grow the
// de facto relation — can•know•f never shrinks when authority is added.
func TestClosureMonotoneUnderDeJure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAnalysisGraph(rng, false)
		// Record the relation.
		before := make(map[[2]graph.ID]bool)
		for _, x := range g.Vertices() {
			for _, y := range g.Vertices() {
				if CanKnowF(g, x, y) {
					before[[2]graph.ID{x, y}] = true
				}
			}
		}
		// Apply a few random de jure rules.
		opts := &rules.EnumerateOptions{DeJure: true}
		for i := 0; i < 5; i++ {
			apps := rules.Enumerate(g, opts)
			if len(apps) == 0 {
				break
			}
			apps[rng.Intn(len(apps))].Apply(g)
		}
		for pair := range before {
			if !CanKnowF(g, pair[0], pair[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestKnowClosureMatchesCanKnow validates the bulk closure used by the
// hierarchy package against the pairwise decision.
func TestKnowClosureMatchesCanKnow(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAnalysisGraph(rng, false)
		for _, u := range g.Vertices() {
			closure := KnowClosure(g, u)
			for _, v := range g.Vertices() {
				if closure[v] != CanKnow(g, u, v) {
					t.Logf("seed %d: closure[%s]=%v CanKnow(%s,%s)=%v",
						seed, g.Name(v), closure[v], g.Name(u), g.Name(v), !closure[v])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestCanShareMonotoneUnderAddedRights: adding explicit authority never
// falsifies a previously true can•share.
func TestCanShareMonotoneUnderAddedRights(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAnalysisGraph(rng, false)
		vs := g.Vertices()
		type q struct {
			x, y  graph.ID
			alpha rights.Right
		}
		var truths []q
		for i := 0; i < 10; i++ {
			x, y := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
			if x == y {
				continue
			}
			alpha := rights.Right(rng.Intn(4))
			if CanShare(g, alpha, x, y) {
				truths = append(truths, q{x, y, alpha})
			}
		}
		for i := 0; i < 4; i++ {
			a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
			if a != b {
				g.AddExplicit(a, b, rights.Set(1+rng.Intn(15)))
			}
		}
		for _, t := range truths {
			if !CanShare(g, t.alpha, t.x, t.y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
