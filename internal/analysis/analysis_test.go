package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

func TestIslands(t *testing.T) {
	g := graph.New(nil)
	p := g.MustSubject("p")
	u := g.MustSubject("u")
	w := g.MustSubject("w")
	o := g.MustObject("o")
	q := g.MustSubject("q")
	g.AddExplicit(p, u, rights.G)  // p,u one island
	g.AddExplicit(w, o, rights.T)  // object breaks island connectivity
	g.AddExplicit(o, q, rights.T)  // w and q stay separate islands
	g.AddExplicit(p, w, rights.RW) // r,w edges do not join islands

	isl := Islands(g)
	if len(isl) != 3 {
		t.Fatalf("islands = %v", isl)
	}
	if len(isl[0]) != 2 || isl[0][0] != p || isl[0][1] != u {
		t.Errorf("island 0 = %v", isl[0])
	}
	if !SameIsland(g, p, u) || SameIsland(g, p, w) || SameIsland(g, w, q) {
		t.Error("SameIsland wrong")
	}
	if SameIsland(g, p, o) {
		t.Error("object in island")
	}
}

func TestIslandsUndirected(t *testing.T) {
	g := graph.New(nil)
	a := g.MustSubject("a")
	b := g.MustSubject("b")
	c := g.MustSubject("c")
	g.AddExplicit(a, b, rights.T)
	g.AddExplicit(c, b, rights.G) // edge direction irrelevant
	if !SameIsland(g, a, c) {
		t.Error("tg-connectivity must ignore direction")
	}
}

func TestSpanners(t *testing.T) {
	// xp -t-> m -g-> x ; sp -t-> s1 -t-> s
	g := graph.New(nil)
	xp := g.MustSubject("xp")
	m := g.MustObject("m")
	x := g.MustObject("x")
	sp := g.MustSubject("sp")
	s1 := g.MustObject("s1")
	s := g.MustObject("s")
	g.AddExplicit(xp, m, rights.T)
	g.AddExplicit(m, x, rights.G)
	g.AddExplicit(sp, s1, rights.T)
	g.AddExplicit(s1, s, rights.T)

	if got := InitialSpanners(g, x); len(got) != 1 || got[0] != xp {
		t.Errorf("InitialSpanners(x) = %v", got)
	}
	if got := TerminalSpanners(g, s); len(got) != 1 || got[0] != sp {
		t.Errorf("TerminalSpanners(s) = %v", got)
	}
	// Subjects span to themselves (ν).
	if got := InitialSpanners(g, xp); len(got) != 1 || got[0] != xp {
		t.Errorf("InitialSpanners(xp) = %v", got)
	}
	steps, ok := InitiallySpans(g, xp, x)
	if !ok || len(steps) != 2 {
		t.Errorf("InitiallySpans = %v,%v", steps, ok)
	}
	if _, ok := InitiallySpans(g, sp, x); ok {
		t.Error("sp initially spans to x?")
	}
	if _, ok := TerminallySpans(g, sp, s); !ok {
		t.Error("sp must terminally span to s")
	}
	// Objects never span.
	if _, ok := InitiallySpans(g, m, x); ok {
		t.Error("object spans")
	}
}

func TestRWSpanners(t *testing.T) {
	// u -t-> a -w-> x and v -t-> b -r-> y (explicit rights only)
	g := graph.New(nil)
	u := g.MustSubject("u")
	a := g.MustObject("a")
	x := g.MustObject("x")
	v := g.MustSubject("v")
	b := g.MustObject("b")
	y := g.MustObject("y")
	g.AddExplicit(u, a, rights.T)
	g.AddExplicit(a, x, rights.W)
	g.AddExplicit(v, b, rights.T)
	g.AddExplicit(b, y, rights.R)
	if got := RWInitialSpanners(g, x); len(got) != 1 || got[0] != u {
		t.Errorf("RWInitialSpanners = %v", got)
	}
	if got := RWTerminalSpanners(g, y); len(got) != 1 || got[0] != v {
		t.Errorf("RWTerminalSpanners = %v", got)
	}
	// An implicit trailing right is not takeable, hence not a span.
	g2 := graph.New(nil)
	u2 := g2.MustSubject("u")
	a2 := g2.MustObject("a")
	y2 := g2.MustObject("y")
	g2.AddExplicit(u2, a2, rights.T)
	g2.AddImplicit(a2, y2, rights.R)
	if got := RWTerminalSpanners(g2, y2); len(got) != 0 {
		t.Errorf("implicit r treated as takeable span: %v", got)
	}
}

func TestBridgeBetween(t *testing.T) {
	g := graph.New(nil)
	p := g.MustSubject("p")
	o1 := g.MustObject("o1")
	o2 := g.MustObject("o2")
	q := g.MustSubject("q")
	g.AddExplicit(p, o1, rights.T)
	g.AddExplicit(o1, o2, rights.G)
	g.AddExplicit(q, o2, rights.T)
	if _, ok := BridgeBetween(g, p, q); !ok {
		t.Error("t>g>t< bridge missed")
	}
	if _, ok := BridgeBetween(g, q, p); !ok {
		t.Error("bridge must also be found read from q (t>g<t<)")
	}
	if _, ok := BridgeBetween(g, p, p); ok {
		t.Error("self bridge")
	}
}

// figure22 reconstructs the shape of the paper's Figure 2.2:
// islands I1={p,u}, I2={w}, I3={y,sp}; bridges u~w and w~y; a terminal span
// sp -t-> s and the right r sitting on s -r-> q.
func figure22() (*graph.Graph, map[string]graph.ID) {
	g := graph.New(nil)
	ids := map[string]graph.ID{
		"p":  g.MustSubject("p"),
		"u":  g.MustSubject("u"),
		"v":  g.MustObject("v"),
		"w":  g.MustSubject("w"),
		"x":  g.MustObject("x"),
		"y":  g.MustSubject("y"),
		"sp": g.MustSubject("sp"),
		"s":  g.MustObject("s"),
		"q":  g.MustObject("q"),
	}
	g.AddExplicit(ids["p"], ids["u"], rights.G)  // island I1
	g.AddExplicit(ids["u"], ids["v"], rights.T)  // bridge u~w: t> g>
	g.AddExplicit(ids["v"], ids["w"], rights.G)  //
	g.AddExplicit(ids["x"], ids["w"], rights.T)  // bridge w~y: t< t<
	g.AddExplicit(ids["y"], ids["x"], rights.T)  //
	g.AddExplicit(ids["y"], ids["sp"], rights.T) // island I3
	g.AddExplicit(ids["sp"], ids["s"], rights.T) // terminal span
	g.AddExplicit(ids["s"], ids["q"], rights.R)  // the shared right
	return g, ids
}

func TestFigure22Structure(t *testing.T) {
	g, ids := figure22()
	isl := Islands(g)
	if len(isl) != 4 { // {p,u}, {w}, {y,sp}, and... p,u,w,y,sp are subjects: 3 islands
		// p,u | w | y,sp — expect exactly 3
		t.Logf("islands: %v", isl)
	}
	if !SameIsland(g, ids["p"], ids["u"]) || !SameIsland(g, ids["y"], ids["sp"]) {
		t.Error("islands I1/I3 wrong")
	}
	if SameIsland(g, ids["u"], ids["w"]) || SameIsland(g, ids["w"], ids["y"]) {
		t.Error("islands merged across bridges")
	}
	if _, ok := BridgeBetween(g, ids["u"], ids["w"]); !ok {
		t.Error("bridge u~w missing")
	}
	if _, ok := BridgeBetween(g, ids["w"], ids["y"]); !ok {
		t.Error("bridge w~y missing")
	}
	if _, ok := TerminallySpans(g, ids["sp"], ids["s"]); !ok {
		t.Error("terminal span sp→s missing")
	}
	reach := BridgeReachable(g, []graph.ID{ids["p"]})
	for _, name := range []string{"p", "u", "w", "y", "sp"} {
		if !reach[ids[name]] {
			t.Errorf("bridge closure missed %s", name)
		}
	}
}

func TestFigure22CanShare(t *testing.T) {
	g, ids := figure22()
	if !CanShare(g, rights.Read, ids["p"], ids["q"]) {
		t.Fatal("can.share(r, p, q) should hold")
	}
	// The object v cannot acquire rights (only subjects initially span ν to
	// themselves; nothing initially spans to v's targets)...
	if CanShare(g, rights.Read, ids["v"], ids["q"]) {
		t.Error("object v acquired a right with no initial spanner")
	}
	// No one can share a right that exists nowhere.
	if CanShare(g, rights.Write, ids["p"], ids["q"]) {
		t.Error("can.share fabricated a w right")
	}
	ev, ok := CanShareEx(g, rights.Read, ids["p"], ids["q"])
	if !ok || ev.Direct {
		t.Fatalf("evidence = %+v, %v", ev, ok)
	}
	if ev.S != ids["s"] {
		t.Errorf("evidence s=%v", ev.S)
	}
	// Both y and sp terminally span to s; either is valid evidence.
	if ev.SPrime != ids["sp"] && ev.SPrime != ids["y"] {
		t.Errorf("evidence s'=%v", ev.SPrime)
	}
	if ev.Chain[0] != ev.XPrime || ev.Chain[len(ev.Chain)-1] != ev.SPrime {
		t.Errorf("chain endpoints wrong: %v", ev.Chain)
	}
}

func TestFigure22Synthesis(t *testing.T) {
	g, ids := figure22()
	d, err := SynthesizeShare(g, rights.Read, ids["p"], ids["q"])
	if err != nil {
		t.Fatal(err)
	}
	clone := g.Clone()
	if _, err := d.Replay(clone); err != nil {
		t.Fatalf("replay: %v\n%s", err, d.Format(g))
	}
	if !clone.Explicit(ids["p"], ids["q"]).Has(rights.Read) {
		t.Error("derivation did not deliver r to p")
	}
	if !d.DeJureOnly() {
		t.Error("share derivation used de facto rules")
	}
}

func TestCanShareDirectEdge(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	g.AddExplicit(x, y, rights.R)
	if !CanShare(g, rights.Read, x, y) {
		t.Error("existing edge not shared")
	}
	ev, _ := CanShareEx(g, rights.Read, x, y)
	if !ev.Direct {
		t.Error("direct evidence expected")
	}
	d, err := SynthesizeShare(g, rights.Read, x, y)
	if err != nil || len(d) != 0 {
		t.Errorf("direct synthesis = %v,%v", d, err)
	}
}

func TestCanShareWithinIsland(t *testing.T) {
	g := graph.New(nil)
	a := g.MustSubject("a")
	b := g.MustSubject("b")
	o := g.MustObject("o")
	g.AddExplicit(a, b, rights.T)
	g.AddExplicit(b, o, rights.W)
	if !CanShare(g, rights.Write, a, o) {
		t.Error("a should take w to o from b")
	}
	d, err := SynthesizeShare(g, rights.Write, a, o)
	if err != nil || len(d) != 1 {
		t.Fatalf("synthesis = %v, %v", d, err)
	}
}

func TestCanShareNeedsInitialSpanner(t *testing.T) {
	// Object x with no one granting into it cannot receive.
	g := graph.New(nil)
	x := g.MustObject("x")
	s := g.MustSubject("s")
	y := g.MustObject("y")
	g.AddExplicit(s, y, rights.R)
	if CanShare(g, rights.Read, x, y) {
		t.Error("orphan object received a right")
	}
	// Add a granter: m -g-> x with m bridged to s.
	m := g.MustSubject("m")
	g.AddExplicit(m, x, rights.G)
	g.AddExplicit(m, s, rights.T) // bridge m~s
	if !CanShare(g, rights.Read, x, y) {
		t.Error("granted object should receive")
	}
	d, err := SynthesizeShare(g, rights.Read, x, y)
	if err != nil {
		t.Fatal(err)
	}
	clone := g.Clone()
	if _, err := d.Replay(clone); err != nil || !clone.Explicit(x, y).Has(rights.Read) {
		t.Errorf("replay: %v", err)
	}
}

func TestCanShareReverseTakeBridge(t *testing.T) {
	// q -t-> p (t<* read from p): q holds r to y; p must obtain it.
	g := graph.New(nil)
	p := g.MustSubject("p")
	q := g.MustSubject("q")
	y := g.MustObject("y")
	g.AddExplicit(q, p, rights.T)
	g.AddExplicit(q, y, rights.R)
	if !CanShare(g, rights.Read, p, y) {
		t.Fatal("reverse-take bridge not detected")
	}
	d, err := SynthesizeShare(g, rights.Read, p, y)
	if err != nil {
		t.Fatal(err)
	}
	clone := g.Clone()
	if _, err := d.Replay(clone); err != nil || !clone.Explicit(p, y).Has(rights.Read) {
		t.Errorf("replay failed: %v\n%s", err, d.Format(clone))
	}
}

func TestCanShareGrantRevBridge(t *testing.T) {
	// p -t-> o, b -g-> o, q -t-> b : bridge word t> g< t<.
	g := graph.New(nil)
	p := g.MustSubject("p")
	o := g.MustObject("o")
	b := g.MustObject("b")
	q := g.MustSubject("q")
	y := g.MustObject("y")
	g.AddExplicit(p, o, rights.T)
	g.AddExplicit(b, o, rights.G)
	g.AddExplicit(q, b, rights.T)
	g.AddExplicit(q, y, rights.R)
	if !CanShare(g, rights.Read, p, y) {
		t.Fatal("g< bridge not detected")
	}
	d, err := SynthesizeShare(g, rights.Read, p, y)
	if err != nil {
		t.Fatal(err)
	}
	clone := g.Clone()
	if _, err := d.Replay(clone); err != nil || !clone.Explicit(p, y).Has(rights.Read) {
		t.Errorf("replay failed: %v\n%s", err, d.Format(clone))
	}
}

func TestNoShareAcrossTT(t *testing.T) {
	// p -t-> o <-t- q is not a bridge; nothing else connects them.
	g := graph.New(nil)
	p := g.MustSubject("p")
	o := g.MustObject("o")
	q := g.MustSubject("q")
	y := g.MustObject("y")
	g.AddExplicit(p, o, rights.T)
	g.AddExplicit(q, o, rights.T)
	g.AddExplicit(q, y, rights.R)
	if CanShare(g, rights.Read, p, y) {
		t.Error("t>t< treated as a bridge")
	}
}

func TestCanKnowFBasics(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	z := g.MustSubject("z")
	g.AddExplicit(x, y, rights.R)
	g.AddExplicit(z, y, rights.W)
	if !CanKnowF(g, x, y) {
		t.Error("reader does not know target")
	}
	if !CanKnowF(g, x, z) { // r> then w<: x reads y, z writes y
		t.Error("post path x~z missed")
	}
	if CanKnowF(g, z, x) {
		t.Error("flow reversed")
	}
	if !CanKnowF(g, x, x) {
		t.Error("not reflexive")
	}
	// y (object) knows z? z writes into y: w< single step, writer subject.
	if !CanKnowF(g, y, z) {
		t.Error("object y should hold z's information")
	}
}

func TestCanKnowFSubjectGuards(t *testing.T) {
	// Object reader breaks the path: o -r-> y.
	g := graph.New(nil)
	o := g.MustObject("o")
	y := g.MustObject("y")
	g.AddExplicit(o, y, rights.R)
	if CanKnowF(g, o, y) {
		t.Error("object with explicit r counted as knowing")
	}
	// But an implicit edge means the flow already happened.
	g.AddImplicit(o, y, rights.R)
	if !CanKnowF(g, o, y) {
		t.Error("implicit edge ignored")
	}
}

func TestKnowersF(t *testing.T) {
	g := graph.New(nil)
	a := g.MustSubject("a")
	b := g.MustSubject("b")
	doc := g.MustObject("doc")
	g.AddExplicit(b, doc, rights.R)
	g.AddExplicit(b, a, rights.W) // b writes to a: a knows whatever b knows
	got := KnowersF(g, doc)
	want := map[graph.ID]bool{a: true, b: true, doc: true}
	if len(got) != len(want) {
		t.Fatalf("KnowersF = %v", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Errorf("unexpected knower %v", v)
		}
	}
}

func TestCanKnowUsesJureAndFacto(t *testing.T) {
	// u2 -t-> c -r-> y : u2 rw-terminally spans to y.
	// u2 -w-> m <-r- u1 : connection u1~u2 (r> w<)... u1 reads m, u2 writes m.
	// u1 -w-> x : u1 rw-initially spans to x.
	g := graph.New(nil)
	x := g.MustObject("x")
	u1 := g.MustSubject("u1")
	m := g.MustObject("m")
	u2 := g.MustSubject("u2")
	c := g.MustObject("c")
	y := g.MustObject("y")
	g.AddExplicit(u1, x, rights.W)
	g.AddExplicit(u1, m, rights.R)
	g.AddExplicit(u2, m, rights.W)
	g.AddExplicit(u2, c, rights.T)
	g.AddExplicit(c, y, rights.R)
	if !CanKnow(g, x, y) {
		t.Fatal("can.know chain x←u1←u2←y missed")
	}
	if CanKnow(g, y, x) {
		t.Error("can.know reversed: y should not learn x")
	}
	ev, ok := CanKnowEx(g, x, y)
	if !ok || len(ev.Chain) < 2 {
		t.Fatalf("evidence = %+v", ev)
	}
	if ev.Chain[0] != u1 || ev.Chain[len(ev.Chain)-1] != u2 {
		t.Errorf("chain = %v", ev.Chain)
	}
}

func TestCanKnowSubsumesCanKnowF(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAnalysisGraph(rng, false)
		vs := g.Vertices()
		for i := 0; i < 10; i++ {
			x := vs[rng.Intn(len(vs))]
			y := vs[rng.Intn(len(vs))]
			if CanKnowF(g, x, y) && !CanKnow(g, x, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCanShareImpliesCanKnowForRead(t *testing.T) {
	// If x (subject) can acquire r to y de jure, then x can know y.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAnalysisGraph(rng, false)
		subs := g.Subjects()
		if len(subs) == 0 {
			return true
		}
		vs := g.Vertices()
		for i := 0; i < 10; i++ {
			x := subs[rng.Intn(len(subs))]
			y := vs[rng.Intn(len(vs))]
			if x == y {
				continue
			}
			if CanShare(g, rights.Read, x, y) && !CanKnow(g, x, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomAnalysisGraph builds random small graphs; withImplicit sprinkles
// implicit read edges when set.
func randomAnalysisGraph(rng *rand.Rand, withImplicit bool) *graph.Graph {
	g := graph.New(nil)
	n := 3 + rng.Intn(8)
	for i := 0; i < n; i++ {
		name := "v" + string(rune('a'+i))
		if rng.Intn(3) > 0 {
			g.MustSubject(name)
		} else {
			g.MustObject(name)
		}
	}
	vs := g.Vertices()
	m := rng.Intn(3 * n)
	for i := 0; i < m; i++ {
		a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
		if a == b {
			continue
		}
		g.AddExplicit(a, b, rights.Set(1+rng.Intn(15)))
	}
	if withImplicit {
		for i := 0; i < n/2; i++ {
			a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
			if a != b {
				g.AddImplicit(a, b, rights.R)
			}
		}
	}
	return g
}

// TestPropertySynthesisMatchesDecision is the core soundness check: whenever
// CanShare says yes, SynthesizeShare must produce a replayable de jure
// derivation that creates the edge.
func TestPropertySynthesisMatchesDecision(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAnalysisGraph(rng, false)
		vs := g.Vertices()
		for i := 0; i < 8; i++ {
			x := vs[rng.Intn(len(vs))]
			y := vs[rng.Intn(len(vs))]
			if x == y {
				continue
			}
			alpha := rights.Right(rng.Intn(4))
			if !CanShare(g, alpha, x, y) {
				continue
			}
			d, err := SynthesizeShare(g, alpha, x, y)
			if err != nil {
				t.Logf("seed %d: synthesis failed for %s→%s (%s): %v\n%s",
					seed, g.Name(x), g.Name(y), g.Universe().Name(alpha), err, g.String())
				return false
			}
			clone := g.Clone()
			if _, err := d.Replay(clone); err != nil {
				t.Logf("seed %d: replay failed: %v", seed, err)
				return false
			}
			if !clone.Explicit(x, y).Has(alpha) {
				return false
			}
			if !d.DeJureOnly() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestShareEvidenceFieldsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAnalysisGraph(rng, false)
		vs := g.Vertices()
		for i := 0; i < 6; i++ {
			x, y := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
			if x == y {
				continue
			}
			ev, ok := CanShareEx(g, rights.Read, x, y)
			if !ok || ev.Direct {
				continue
			}
			if len(ev.Chain) != len(ev.Bridges)+1 {
				return false
			}
			if !g.Explicit(ev.S, y).Has(rights.Read) {
				return false
			}
			for _, u := range ev.Chain {
				if !g.IsSubject(u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
