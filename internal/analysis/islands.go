// Package analysis implements the decision procedures of the Take-Grant
// Protection Model: islands, spans, bridges and connections; the predicates
// can•share (Theorem 2.3), can•know•f (Theorem 3.1) and can•know
// (Theorem 3.2); and constructive witness synthesis that turns every
// positive answer into a replayable rule derivation.
//
// Terminology follows the paper; see DESIGN.md §3 for the normalised
// regular-language definitions. All span/bridge machinery searches *walks*
// rather than vertex-simple paths: for these languages a walk between two
// subjects supports exactly the same rule derivations as a simple path
// (the constructions in the witness synthesiser never require
// distinctness beyond what the rules themselves impose), and walk
// reachability is decidable by a linear product search.
package analysis

import (
	"sort"

	"takegrant/internal/budget"
	"takegrant/internal/graph"
	"takegrant/internal/obs"
	"takegrant/internal/rights"
)

// Islands returns the islands of g: maximal tg-connected subgraphs
// containing only subject vertices. Within an island, any right held by one
// vertex can be obtained by every other vertex. Each island is a sorted
// slice of subject IDs; islands are ordered by their smallest member.
//
// The partition is read off the incrementally maintained union-find index
// (graph.TGIslands) — IslandsObs keeps the from-scratch BFS as the
// budgeted, observable reference implementation the index is fuzzed
// against.
func Islands(g *graph.Graph) [][]graph.ID {
	return IslandsIndexed(g)
}

// IslandsIndexed computes the island partition from the maintained
// union-find index: no flood fill, one Root lookup per live subject. The
// ordering contract matches Islands/IslandsObs — members sorted
// ascending, islands ordered by smallest member.
func IslandsIndexed(g *graph.Graph) [][]graph.ID {
	idx := g.TGIslands()
	groups := make(map[graph.ID]int)
	var out [][]graph.ID
	// Subjects ascend, so each group is built sorted and groups appear in
	// order of their smallest member.
	for _, s := range g.Subjects() {
		r := idx.Root(s)
		gi, ok := groups[r]
		if !ok {
			gi = len(out)
			groups[r] = gi
			out = append(out, nil)
		}
		out[gi] = append(out[gi], s)
	}
	return out
}

// IslandsObs is Islands reporting an island_scan span on p and honouring
// the work budget b (one unit per BFS dequeue). A nil probe records
// nothing; a nil budget never trips. A budget trip abandons the result
// with an error wrapping budget.ErrExhausted — a partial island list is
// never returned.
func IslandsObs(g *graph.Graph, p *obs.Probe, b *budget.Budget) ([][]graph.ID, error) {
	sp := p.Span("island_scan")
	idx, err := islandOfB(g, b)
	if err != nil {
		sp.Count("aborted", 1).End()
		return nil, err
	}
	sp.Count("subjects", int64(len(idx))).End()
	groups := make(map[int][]graph.ID)
	for v, i := range idx {
		groups[i] = append(groups[i], v)
	}
	out := make([][]graph.ID, 0, len(groups))
	for _, members := range groups {
		sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
		out = append(out, members)
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out, nil
}

// IslandOf maps every subject to the index of its island. Indexes are dense
// but otherwise arbitrary; use Islands for a deterministic ordering.
func IslandOf(g *graph.Graph) map[graph.ID]int {
	idx, _ := islandOfB(g, nil)
	return idx
}

// islandOfB is IslandOf charging one budget unit per BFS dequeue.
func islandOfB(g *graph.Graph, b *budget.Budget) (map[graph.ID]int, error) {
	idx := make(map[graph.ID]int)
	next := 0
	for _, s := range g.Subjects() {
		if _, seen := idx[s]; seen {
			continue
		}
		// BFS over subject-only tg edges (either direction, explicit label).
		queue := []graph.ID{s}
		idx[s] = next
		for len(queue) > 0 {
			if err := b.Charge(1); err != nil {
				return nil, err
			}
			v := queue[0]
			queue = queue[1:]
			for _, h := range g.Out(v) {
				if h.Explicit.HasAny(rights.TG) && g.IsSubject(h.Other) {
					if _, seen := idx[h.Other]; !seen {
						idx[h.Other] = next
						queue = append(queue, h.Other)
					}
				}
			}
			for _, h := range g.In(v) {
				if h.Explicit.HasAny(rights.TG) && g.IsSubject(h.Other) {
					if _, seen := idx[h.Other]; !seen {
						idx[h.Other] = next
						queue = append(queue, h.Other)
					}
				}
			}
		}
		next++
	}
	return idx, nil
}

// SameIsland reports whether two subjects share an island, via the
// maintained union-find index (two Root lookups, no flood fill).
func SameIsland(g *graph.Graph, a, b graph.ID) bool {
	return g.SameTGIsland(a, b)
}
