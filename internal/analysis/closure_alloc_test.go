package analysis

import (
	"fmt"
	"math/rand"
	"testing"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

func closureWorld(nv, ne int, seed int64) (*graph.Graph, []graph.ID) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(nil)
	for i := 0; i < nv; i++ {
		if i%3 == 0 {
			g.MustObject(fmt.Sprintf("o%d", i))
		} else {
			g.MustSubject(fmt.Sprintf("s%d", i))
		}
	}
	vs := g.Vertices()
	for i := 0; i < ne; i++ {
		a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
		if a != b {
			g.AddExplicit(a, b, rights.Set(1+rng.Intn(15)))
		}
	}
	return g, g.Subjects()
}

// TestKnowClosureIntoAllocFree pins the satellite requirement: with a
// warmed pool and a pre-grown destination buffer, the bulk closure must
// not allocate per call. The budget of 1 amortized alloc absorbs
// sync.Pool's occasional per-P refill; steady-state is zero.
func TestKnowClosureIntoAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	g, subs := closureWorld(64, 256, 42)
	g.Snapshot() // freeze the CSR before measuring
	buf := make([]graph.ID, 0, g.Cap())
	// Warm the scratch pools at this graph size.
	for _, u := range subs {
		buf = buf[:0]
		buf, _ = KnowClosureInto(g, u, buf, nil)
	}
	u := subs[0]
	avg := testing.AllocsPerRun(200, func() {
		buf = buf[:0]
		var err error
		buf, err = KnowClosureInto(g, u, buf, nil)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1 {
		t.Fatalf("KnowClosureInto allocates %.2f objects/op, want ≤ 1", avg)
	}
	// The map-returning wrapper must still agree with the streaming core.
	want := KnowClosure(g, u)
	if len(want) != len(buf) {
		t.Fatalf("closure size mismatch: map %d vs slice %d", len(want), len(buf))
	}
	for _, v := range buf {
		if !want[v] {
			t.Fatalf("vertex %d in slice closure but not map closure", v)
		}
	}
}

// BenchmarkKnowClosureInto measures the pooled bulk closure; allocs/op is
// the headline number (b.ReportAllocs pins it in the bench output).
func BenchmarkKnowClosureInto(b *testing.B) {
	g, subs := closureWorld(128, 512, 7)
	g.Snapshot()
	buf := make([]graph.ID, 0, g.Cap())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf, _ = KnowClosureInto(g, subs[i%len(subs)], buf, nil)
	}
}

// BenchmarkKnowClosureMap is the allocating wrapper, for comparison.
func BenchmarkKnowClosureMap(b *testing.B) {
	g, subs := closureWorld(128, 512, 7)
	g.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = KnowClosure(g, subs[i%len(subs)])
	}
}
