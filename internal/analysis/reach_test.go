package analysis

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// attachReach wires a ReachIndex to g's change stream the way the derived
// registry does in the service: patch or invalidate, synchronously under
// the mutation path.
func attachReach(g *graph.Graph) *ReachIndex {
	ix := NewReachIndex(g)
	g.SetRecorder(func(c graph.Change) {
		if !ix.Patch(c) {
			ix.Invalidate()
		}
	})
	return ix
}

// assertReachMatchesOracle compares every (x, y) verdict of the closure
// index against the from-scratch decision procedures.
func assertReachMatchesOracle(t *testing.T, g *graph.Graph, ix *ReachIndex, ids []graph.ID, step string) {
	t.Helper()
	alphas := []rights.Right{rights.Read, rights.Take}
	for _, x := range ids {
		for _, y := range ids {
			for _, a := range alphas {
				got, _, err := ix.CanShare(a, x, y, nil, nil)
				if err != nil {
					t.Fatalf("%s: reach CanShare(%v,%d,%d): %v", step, a, x, y, err)
				}
				if want := CanShare(g, a, x, y); got != want {
					t.Fatalf("%s: CanShare(%v,%d,%d) = %v via closure, oracle says %v",
						step, a, x, y, got, want)
				}
			}
			got, _, err := ix.CanKnow(x, y, nil, nil)
			if err != nil {
				t.Fatalf("%s: reach CanKnow(%d,%d): %v", step, x, y, err)
			}
			if want := CanKnow(g, x, y); got != want {
				t.Fatalf("%s: CanKnow(%d,%d) = %v via closure, oracle says %v",
					step, x, y, got, want)
			}
			got, _, err = ix.CanKnowF(x, y, nil, nil)
			if err != nil {
				t.Fatalf("%s: reach CanKnowF(%d,%d): %v", step, x, y, err)
			}
			if want := CanKnowF(g, x, y); got != want {
				t.Fatalf("%s: CanKnowF(%d,%d) = %v via closure, oracle says %v",
					step, x, y, got, want)
			}
		}
	}
}

// TestReachIndexMatchesOracleUnderMutation drives randomized mutation
// sequences — explicit and implicit label adds, removals, vertex additions
// and deletions — and after every step compares all three closure-index
// predicates against the from-scratch decision procedures on every vertex
// pair. Warm rows are deliberately populated before each step so monotone
// mutations exercise the generation-drop path and non-monotone ones the
// invalidate-and-rebuild path, not just cold builds.
func TestReachIndexMatchesOracleUnderMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		g := graph.New(nil)
		ix := attachReach(g)
		var ids []graph.ID
		addVertex := func() {
			name := fmt.Sprintf("v%d", len(ids))
			var v graph.ID
			var err error
			if rng.Intn(3) < 2 {
				v, err = g.AddSubject(name)
			} else {
				v, err = g.AddObject(name)
			}
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, v)
		}
		for i := 0; i < 4+rng.Intn(5); i++ {
			addVertex()
		}
		assertReachMatchesOracle(t, g, ix, ids, fmt.Sprintf("trial %d: initial", trial))

		steps := 6 + rng.Intn(8)
		for s := 0; s < steps; s++ {
			pick := func() graph.ID { return ids[rng.Intn(len(ids))] }
			switch op := rng.Intn(12); {
			case op < 5: // add explicit rights, biased toward the tg/rw alphabets
				a, b := pick(), pick()
				if a == b || !g.Valid(a) || !g.Valid(b) {
					continue
				}
				set := rights.Set(1 + rng.Intn(15))
				_ = g.AddExplicit(a, b, set)
			case op < 7: // implicit rights touch only the de facto closure
				a, b := pick(), pick()
				if a == b || !g.Valid(a) || !g.Valid(b) {
					continue
				}
				_ = g.AddImplicit(a, b, rights.Set(1+rng.Intn(3)))
			case op < 9: // sever rights: the index must invalidate, not patch
				a, b := pick(), pick()
				if a == b || !g.Valid(a) || !g.Valid(b) {
					continue
				}
				_ = g.RemoveExplicit(a, b, rights.Set(1+rng.Intn(15)))
			case op < 10:
				addVertex()
			case op < 11: // destructive: vertex deletion
				v := pick()
				if g.Valid(v) && g.NumVertices() > 2 {
					_ = g.DeleteVertex(v)
				}
			default: // destructive: implicit wipe
				g.ClearImplicit()
			}
			assertReachMatchesOracle(t, g, ix, ids, fmt.Sprintf("trial %d: step %d", trial, s))
		}
	}
}

// TestReachIndexWarmHit pins the fast-path contract: the first query at a
// generation builds rows (a miss), repeats are warm bit-tests, a relevant
// monotone mutation re-misses once, and an irrelevant mutation (a right
// outside every chain alphabet) keeps the rows warm.
func TestReachIndexWarmHit(t *testing.T) {
	u := rights.NewUniverse()
	e, err := u.Declare("e")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(u)
	ix := attachReach(g)
	a := g.MustSubject("a")
	b := g.MustSubject("b")
	o := g.MustObject("o")
	if err := g.AddExplicit(a, b, rights.TG); err != nil {
		t.Fatal(err)
	}
	if err := g.AddExplicit(b, o, rights.Of(rights.Read)); err != nil {
		t.Fatal(err)
	}

	ok, warm, err := ix.CanShare(rights.Read, a, o, nil, nil)
	if err != nil || !ok {
		t.Fatalf("CanShare(r,a,o) = %v, %v; want true (b holds r, a-b one island)", ok, err)
	}
	if warm {
		t.Fatal("first query reported warm; rows could not have existed")
	}
	ok, warm, err = ix.CanShare(rights.Read, a, o, nil, nil)
	if err != nil || !ok || !warm {
		t.Fatalf("second query = (%v, warm=%v, %v); want warm true", ok, warm, err)
	}

	// An uninterpreted right touches no chain alphabet: rows stay warm.
	if err := g.AddExplicit(a, o, rights.Of(e)); err != nil {
		t.Fatal(err)
	}
	if _, warm, _ = ix.CanShare(rights.Read, a, o, nil, nil); !warm {
		t.Fatal("add of uninterpreted right dropped the share rows")
	}
	if err := g.RemoveExplicit(a, o, rights.Of(e)); err != nil {
		t.Fatal(err)
	}
	if _, warm, _ = ix.CanShare(rights.Read, a, o, nil, nil); !warm {
		t.Fatal("removal of uninterpreted right dropped the share rows")
	}

	// A tg add is in the share alphabet: one miss, then warm again.
	c := g.MustSubject("c")
	if err := g.AddExplicit(b, c, rights.TG); err != nil {
		t.Fatal(err)
	}
	if _, warm, _ = ix.CanShare(rights.Read, a, o, nil, nil); warm {
		t.Fatal("tg add did not drop the share rows")
	}
	if _, warm, _ = ix.CanShare(rights.Read, a, o, nil, nil); !warm {
		t.Fatal("rebuilt share row not warm on repeat")
	}

	// Destructive fallback: severing the tg edge invalidates everything.
	if err := g.RemoveExplicit(a, b, rights.Of(rights.Take)); err != nil {
		t.Fatal(err)
	}
	if _, warm, _ = ix.CanShare(rights.Read, a, o, nil, nil); warm {
		t.Fatal("tg sever did not invalidate the closure rows")
	}
	hits, misses, rebuilds := ix.IndexStats()
	if hits == 0 || misses == 0 || rebuilds == 0 {
		t.Fatalf("stats did not move: hits=%d misses=%d rebuilds=%d", hits, misses, rebuilds)
	}
}

// TestReachIndexDestructiveFallbackConcurrent is the destructive-mutation
// fallback property under -race: a writer interleaves monotone growth
// with severs, deletions and implicit wipes under the write half of an
// RWMutex (the service's lock discipline) while concurrent readers query
// the closure index under read locks and compare every verdict against
// the oracle computed under the same lock. After each destructive change
// the index must invalidate and the next verdicts must still be exact.
func TestReachIndexDestructiveFallbackConcurrent(t *testing.T) {
	g := graph.New(nil)
	ix := attachReach(g)
	var ids []graph.ID
	for i := 0; i < 8; i++ {
		var v graph.ID
		var err error
		if i%3 == 2 {
			v, err = g.AddObject(fmt.Sprintf("o%d", i))
		} else {
			v, err = g.AddSubject(fmt.Sprintf("s%d", i))
		}
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v)
	}

	var mu sync.RWMutex
	done := make(chan struct{})
	var wg sync.WaitGroup
	const readers = 4
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				x, y := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
				mu.RLock()
				if !g.Valid(x) || !g.Valid(y) {
					mu.RUnlock()
					continue
				}
				gotS, _, errS := ix.CanShare(rights.Read, x, y, nil, nil)
				wantS := CanShare(g, rights.Read, x, y)
				gotK, _, errK := ix.CanKnow(x, y, nil, nil)
				wantK := CanKnow(g, x, y)
				gotF, _, errF := ix.CanKnowF(x, y, nil, nil)
				wantF := CanKnowF(g, x, y)
				mu.RUnlock()
				if errS != nil || errK != nil || errF != nil {
					errs <- fmt.Errorf("query error: %v %v %v", errS, errK, errF)
					return
				}
				if gotS != wantS || gotK != wantK || gotF != wantF {
					errs <- fmt.Errorf("verdict mismatch for (%d,%d): share %v/%v know %v/%v knowf %v/%v",
						x, y, gotS, wantS, gotK, wantK, gotF, wantF)
					return
				}
			}
		}(int64(100 + r))
	}

	rng := rand.New(rand.NewSource(7))
	for s := 0; s < 400; s++ {
		select {
		case err := <-errs:
			close(done)
			wg.Wait()
			t.Fatal(err)
		default:
		}
		x, y := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		mu.Lock()
		switch op := rng.Intn(10); {
		case op < 5:
			if x != y && g.Valid(x) && g.Valid(y) {
				_ = g.AddExplicit(x, y, rights.Set(1+rng.Intn(15)))
			}
		case op < 7:
			if x != y && g.Valid(x) && g.Valid(y) {
				_ = g.AddImplicit(x, y, rights.Set(1+rng.Intn(3)))
			}
		case op < 9: // sever: the destructive-fallback path under test
			if x != y && g.Valid(x) && g.Valid(y) {
				_ = g.RemoveExplicit(x, y, rights.Set(1+rng.Intn(15)))
			}
		default:
			g.ClearImplicit()
		}
		mu.Unlock()
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
