package analysis

import (
	"fmt"
	"math/rand"
	"testing"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// assertIslandsMatch compares the incrementally maintained union-find
// partition against the from-scratch BFS reference.
func assertIslandsMatch(t *testing.T, g *graph.Graph, step string) {
	t.Helper()
	got := IslandsIndexed(g)
	want, err := IslandsObs(g, nil, nil)
	if err != nil {
		t.Fatalf("%s: reference scan: %v", step, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: index has %d islands, reference has %d\nindex: %v\nreference: %v",
			step, len(got), len(want), got, want)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: island %d: index %v, reference %v", step, i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: island %d: index %v, reference %v", step, i, got[i], want[i])
			}
		}
	}
	// SameIsland must agree pairwise with the partition too — it answers
	// through union-find roots, not through the materialized groups.
	subs := g.Subjects()
	for i := 0; i < len(subs); i++ {
		for j := i + 1; j < len(subs); j++ {
			inSame := false
			for _, isl := range want {
				a, b := false, false
				for _, m := range isl {
					a = a || m == subs[i]
					b = b || m == subs[j]
				}
				if a && b {
					inSame = true
				}
			}
			if SameIsland(g, subs[i], subs[j]) != inSame {
				t.Fatalf("%s: SameIsland(%d,%d) = %v, partition says %v",
					step, subs[i], subs[j], !inSame, inSame)
			}
		}
	}
}

// TestIslandIndexMatchesScratchUnderMutation drives randomized mutation
// sequences — tg and non-tg label adds, label removals, vertex additions
// and deletions — and after every step checks the incrementally maintained
// index against the from-scratch BFS. The index is fetched before the
// sequence starts so the incremental union path (not just lazy rebuilds)
// is what's being exercised; monotone steps must keep the index live,
// non-monotone ones must invalidate it correctly.
func TestIslandIndexMatchesScratchUnderMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 120; trial++ {
		g := graph.New(nil)
		var ids []graph.ID
		addVertex := func() {
			name := fmt.Sprintf("v%d", len(ids))
			var v graph.ID
			var err error
			if rng.Intn(3) < 2 {
				v, err = g.AddSubject(name)
			} else {
				v, err = g.AddObject(name)
			}
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, v)
		}
		for i := 0; i < 3+rng.Intn(6); i++ {
			addVertex()
		}
		// Force the index into existence now: every subsequent mutation hits
		// the incremental maintenance hooks on a live index.
		g.TGIslands()
		assertIslandsMatch(t, g, fmt.Sprintf("trial %d: initial", trial))

		steps := 6 + rng.Intn(12)
		for s := 0; s < steps; s++ {
			pick := func() graph.ID { return ids[rng.Intn(len(ids))] }
			switch op := rng.Intn(10); {
			case op < 4: // add a label, biased toward tg so unions happen
				a, b := pick(), pick()
				if a == b || !g.Valid(a) || !g.Valid(b) {
					continue
				}
				set := rights.Set(1 + rng.Intn(15))
				if rng.Intn(2) == 0 {
					set = set.Union(rights.TG)
				}
				_ = g.AddExplicit(a, b, set)
			case op < 7: // remove rights, sometimes severing a tg edge
				a, b := pick(), pick()
				if a == b || !g.Valid(a) || !g.Valid(b) {
					continue
				}
				_ = g.RemoveExplicit(a, b, rights.Set(1+rng.Intn(15)))
			case op < 8: // new vertex joins as a singleton
				addVertex()
			case op < 9: // delete a vertex, possibly splitting an island
				v := pick()
				if g.Valid(v) && g.NumVertices() > 2 {
					_ = g.DeleteVertex(v)
				}
			default: // implicit labels must never affect tg-connectivity
				a, b := pick(), pick()
				if a == b || !g.Valid(a) || !g.Valid(b) {
					continue
				}
				_ = g.AddImplicit(a, b, rights.TG)
			}
			assertIslandsMatch(t, g, fmt.Sprintf("trial %d: step %d", trial, s))
		}
	}
}

// TestIslandIndexAcrossRestore: RestoreRevision rolls the graph back; the
// index must not serve the pre-restore partition.
func TestIslandIndexAcrossRestore(t *testing.T) {
	g := graph.New(nil)
	a := g.MustSubject("a")
	b := g.MustSubject("b")
	c := g.MustSubject("c")
	if err := g.AddExplicit(a, b, rights.TG); err != nil {
		t.Fatal(err)
	}
	rev := g.Revision()
	if !SameIsland(g, a, b) || SameIsland(g, a, c) {
		t.Fatal("setup: want {a,b} | {c}")
	}
	if err := g.AddExplicit(b, c, rights.TG); err != nil {
		t.Fatal(err)
	}
	if !SameIsland(g, a, c) {
		t.Fatal("after union: want one island")
	}
	g.RestoreRevision(rev)
	if err := g.RemoveExplicit(b, c, rights.TG); err != nil {
		t.Fatal(err)
	}
	assertIslandsMatch(t, g, "after restore+remove")
	if SameIsland(g, a, c) {
		t.Fatal("restored graph still reports the rolled-back union")
	}
}
