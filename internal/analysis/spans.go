package analysis

import (
	"takegrant/internal/budget"
	"takegrant/internal/graph"
	"takegrant/internal/relang"
)

// Span search helpers. Each "who spans to v?" query runs a single reversed
// search from v; each "does u span to v?" query runs a forward search.
//
// All spans are defined over explicit (de jure) labels — including the rw
// variants: an rw-span's trailing r or w right must be explicit, because
// realising the span takes that right along the t-chain, and the de jure
// rules cannot move implicit rights. Analysis predicates are exact on
// initial graphs (empty implicit labels), the paper's setting.

var (
	initialSpanNFA      = relang.Compile(relang.InitialSpan())
	initialSpanRevNFA   = relang.Compile(relang.Reverse(relang.InitialSpan()))
	terminalSpanNFA     = relang.Compile(relang.TerminalSpan())
	terminalSpanRevNFA  = relang.Compile(relang.Reverse(relang.TerminalSpan()))
	rwInitialSpanNFA    = relang.Compile(relang.RWInitialSpan())
	rwInitialSpanRevNFA = relang.Compile(relang.Reverse(relang.RWInitialSpan()))
	rwTerminalRevNFA    = relang.Compile(relang.Reverse(relang.RWTerminalSpan()))
	rwTerminalNFA       = relang.Compile(relang.RWTerminalSpan())
)

// InitialSpanners returns every subject x′ that initially spans to x
// (word in t>*g>, or x′ = x when x is a subject), sorted by ID.
// An initial span lets x′ push authority to x.
func InitialSpanners(g *graph.Graph, x graph.ID) []graph.ID {
	return spanners(g, x, initialSpanRevNFA, true, relang.ViewExplicit)
}

// TerminalSpanners returns every subject s′ that terminally spans to s
// (word in t>*, including s′ = s when s is a subject), sorted by ID.
// A terminal span lets s′ pull (take) authority from s.
func TerminalSpanners(g *graph.Graph, s graph.ID) []graph.ID {
	return spanners(g, s, terminalSpanRevNFA, true, relang.ViewExplicit)
}

// RWInitialSpanners returns every subject u that rw-initially spans to x
// (word in t>*w>, or u = x when x is a subject): the subjects able to write
// information to x. The span is de jure capability (take the chain, then
// write), so it runs over explicit labels.
func RWInitialSpanners(g *graph.Graph, x graph.ID) []graph.ID {
	return spanners(g, x, rwInitialSpanRevNFA, true, relang.ViewExplicit)
}

// RWTerminalSpanners returns every subject u that rw-terminally spans to y
// (word in t>*r>, or u = y when y is a subject): the subjects able to read
// y's information.
func RWTerminalSpanners(g *graph.Graph, y graph.ID) []graph.ID {
	return spanners(g, y, rwTerminalRevNFA, true, relang.ViewExplicit)
}

func spanners(g *graph.Graph, v graph.ID, revNFA *relang.NFA, includeSelf bool, view relang.View) []graph.ID {
	out, _ := spannersB(g, v, revNFA, includeSelf, view, nil)
	return out
}

// spannersB is spanners under a work budget. A budget abort returns the
// exhaustion error and no vertex list: a partial spanner set would turn
// into a wrong negative verdict at the caller.
func spannersB(g *graph.Graph, v graph.ID, revNFA *relang.NFA, includeSelf bool, view relang.View, b *budget.Budget) ([]graph.ID, error) {
	if !g.Valid(v) {
		return nil, nil
	}
	res := relang.Search(g, revNFA, []graph.ID{v}, relang.Options{View: view, Budget: b})
	if err := res.Err(); err != nil {
		return nil, err
	}
	seen := make(map[graph.ID]bool)
	var out []graph.ID
	if includeSelf && g.IsSubject(v) {
		out = append(out, v)
		seen[v] = true
	}
	for _, u := range res.AcceptedVertices() {
		if g.IsSubject(u) && !seen[u] {
			out = append(out, u)
			seen[u] = true
		}
	}
	sortIDs(out)
	return out, nil
}

// spannersMergedB runs ONE reversed span search seeded with every vertex
// in vs at once and returns the union of their subject spanners (each vs
// member included when itself a subject), sorted by ID. Decision
// procedures that only need spanner-set membership — not which seed each
// spanner spans to — use this instead of len(vs) separate searches.
func spannersMergedB(g *graph.Graph, vs []graph.ID, revNFA *relang.NFA, b *budget.Budget) ([]graph.ID, error) {
	if len(vs) == 0 {
		return nil, nil
	}
	res := relang.Search(g, revNFA, vs, relang.Options{View: relang.ViewExplicit, Budget: b})
	if err := res.Err(); err != nil {
		return nil, err
	}
	seen := make(map[graph.ID]bool)
	var out []graph.ID
	for _, v := range vs {
		if g.IsSubject(v) && !seen[v] {
			out = append(out, v)
			seen[v] = true
		}
	}
	for _, u := range res.AcceptedVertices() {
		if g.IsSubject(u) && !seen[u] {
			out = append(out, u)
			seen[u] = true
		}
	}
	sortIDs(out)
	return out, nil
}

// InitiallySpans reports whether subject u initially spans to x, and when it
// does (with a non-empty word) returns a witness path.
func InitiallySpans(g *graph.Graph, u, x graph.ID) ([]relang.Step, bool) {
	return spansTo(g, u, x, initialSpanNFA, relang.ViewExplicit)
}

// TerminallySpans reports whether subject u terminally spans to s.
func TerminallySpans(g *graph.Graph, u, s graph.ID) ([]relang.Step, bool) {
	return spansTo(g, u, s, terminalSpanNFA, relang.ViewExplicit)
}

// RWInitiallySpans reports whether subject u rw-initially spans to x.
func RWInitiallySpans(g *graph.Graph, u, x graph.ID) ([]relang.Step, bool) {
	return spansTo(g, u, x, rwInitialSpanNFA, relang.ViewExplicit)
}

// RWTerminallySpans reports whether subject u rw-terminally spans to y.
func RWTerminallySpans(g *graph.Graph, u, y graph.ID) ([]relang.Step, bool) {
	return spansTo(g, u, y, rwTerminalNFA, relang.ViewExplicit)
}

func spansTo(g *graph.Graph, u, v graph.ID, nfa *relang.NFA, view relang.View) ([]relang.Step, bool) {
	if u == v && g.IsSubject(u) {
		return nil, true
	}
	if !g.IsSubject(u) || !g.Valid(v) {
		return nil, false
	}
	res := relang.Search(g, nfa, []graph.ID{u}, relang.Options{View: view, Trace: true})
	return res.Witness(v)
}

func sortIDs(ids []graph.ID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
