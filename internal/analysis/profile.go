package analysis

import (
	"sort"

	"takegrant/internal/budget"
	"takegrant/internal/graph"
	"takegrant/internal/obs"
	"takegrant/internal/relang"
	"takegrant/internal/rights"
)

// Acquisition is one right a vertex can come to hold.
type Acquisition struct {
	Right  rights.Right
	Target graph.ID
	// Held is true when the edge already exists (no derivation needed).
	Held bool
}

// Profile computes the rights-amplification profile of x: every (α, y)
// with can•share(α, x, y, G), i.e. the complete authority x can ever
// acquire under unrestricted de jure rules. This is the "worst case" a
// security review needs: the transitive closure of takes, grants and
// conspiracies, not the current access matrix.
//
// The implementation factors the theorem's conditions once instead of
// calling CanShare per pair: the bridge-closure of x's initial spanners is
// computed a single time, then every explicit edge (s → y : α) contributes
// its α-to-y to the profile when some closure subject terminally spans
// to s. Results are sorted by (target, right).
func Profile(g *graph.Graph, x graph.ID) []Acquisition {
	out, _ := ProfileObs(g, x, nil, nil)
	return out
}

// ProfileObs is Profile reporting per-phase spans on p and honouring the
// work budget b: held_scan (edges x already holds), initial_spanners,
// bridge_closure (the one shared island/bridge closure), take_reach (the
// forward t>* extension) and collect. A nil probe records nothing; a nil
// budget never trips. A budget trip abandons the profile with an error
// wrapping budget.ErrExhausted — a partial profile is never returned.
func ProfileObs(g *graph.Graph, x graph.ID, p *obs.Probe, b *budget.Budget) ([]Acquisition, error) {
	if !g.Valid(x) {
		return nil, nil
	}
	var out []Acquisition
	type key struct {
		r rights.Right
		t graph.ID
	}
	seen := make(map[key]bool)
	add := func(a Acquisition) {
		k := key{a.Right, a.Target}
		if !seen[k] {
			seen[k] = true
			out = append(out, a)
		}
	}
	snap := g.Snapshot()
	sp := p.Span("held_scan")
	heldDst, heldLbl := snap.Out(x)
	for j, dst := range heldDst {
		for _, r := range snap.Label(heldLbl[j]).Explicit.Rights() {
			add(Acquisition{Right: r, Target: dst, Held: true})
		}
	}
	sp.Count("held", int64(len(out))).End()
	sp = p.Span("initial_spanners")
	xps, err := spannersB(g, x, initialSpanRevNFA, true, relang.ViewExplicit, b)
	if err != nil {
		sp.Count("aborted", 1).End()
		return nil, err
	}
	sp.Count("x_primes", int64(len(xps))).End()
	if len(xps) > 0 {
		sp = p.Span("bridge_closure")
		res := relang.Search(g, bridgeChainNFA, xps, relang.Options{View: relang.ViewExplicit, Budget: b})
		var sources []graph.ID
		for _, v := range res.AcceptedVertices() {
			if g.IsSubject(v) {
				sources = append(sources, v)
			}
		}
		sp.Count("visited", int64(res.Visited())).Count("scanned", int64(res.Scanned())).
			Count("closure", int64(len(sources))).End()
		if err := res.Err(); err != nil {
			return nil, err
		}
		// Extend the reachable set with everything it terminally spans to:
		// one forward t>* search from the whole closure.
		sp = p.Span("take_reach")
		spanRes, err := takeReachB(g, sources, b)
		if err != nil {
			sp.Count("aborted", 1).End()
			return nil, err
		}
		sp.Count("reached", int64(len(spanRes))).End()
		sp = p.Span("collect")
		for i := 0; i < snap.Cap(); i++ {
			s := graph.ID(i)
			if !snap.Live(s) {
				continue
			}
			if err := b.Charge(1); err != nil {
				sp.Count("aborted", 1).End()
				return nil, err
			}
			if !spanRes[s] {
				continue
			}
			dsts, lbls := snap.Out(s)
			for j, dst := range dsts {
				if dst == x {
					continue // a right to x itself cannot land on x→x
				}
				for _, r := range snap.Label(lbls[j]).Explicit.Rights() {
					add(Acquisition{Right: r, Target: dst})
				}
			}
		}
		sp.Count("acquisitions", int64(len(out))).End()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Target != out[j].Target {
			return out[i].Target < out[j].Target
		}
		return out[i].Right < out[j].Right
	})
	return out, nil
}

// TakeReach runs the forward terminal-span closure from the given
// subjects: the set of vertices some of them can take from (including
// themselves).
func TakeReach(g *graph.Graph, sources []graph.ID) map[graph.ID]bool {
	out, _ := takeReachB(g, sources, nil)
	return out
}

// takeReachB is TakeReach charging one budget unit per dequeued vertex.
// The BFS runs over the frozen CSR snapshot.
func takeReachB(g *graph.Graph, sources []graph.ID, b *budget.Budget) (map[graph.ID]bool, error) {
	snap := g.Snapshot()
	out := make(map[graph.ID]bool)
	queue := make([]graph.ID, 0, len(sources))
	for _, s := range sources {
		if snap.Live(s) && !out[s] {
			out[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		if err := b.Charge(1); err != nil {
			return nil, err
		}
		v := queue[0]
		queue = queue[1:]
		dsts, lbls := snap.Out(v)
		for j, dst := range dsts {
			if snap.Label(lbls[j]).Explicit.Has(rights.Take) && !out[dst] {
				out[dst] = true
				queue = append(queue, dst)
			}
		}
	}
	return out, nil
}
