package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
		"E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19",
		"E20", "E21", "E22", "E23", "E24", "E25"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("ids[%d] = %s want %s", i, ids[i], id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, ok := Run("E99"); ok {
		t.Error("unknown experiment ran")
	}
}

// TestAllExperimentsPass regenerates every table and checks its
// expectations — this is the repository's "reproduce the paper" switch.
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, ok := Run(id)
			if !ok {
				t.Fatal("missing")
			}
			if !tab.Pass {
				t.Errorf("experiment failed:\n%s", tab.Format())
			}
			if len(tab.Rows) == 0 {
				t.Error("no rows")
			}
		})
	}
}

func TestTableFormats(t *testing.T) {
	tab := Table{
		ID: "EX", Title: "demo", Claim: "c",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Pass:    true,
		Notes:   []string{"n1"},
	}
	text := tab.Format()
	for _, want := range []string{"EX — demo", "claim: c", "333", "PASS", "note: n1"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format missing %q:\n%s", want, text)
		}
	}
	md := tab.Markdown()
	for _, want := range []string{"### EX", "| a | bb |", "| --- | --- |", "**PASS**"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
	tab.Pass = false
	if !strings.Contains(tab.Format(), "FAIL") {
		t.Error("FAIL not rendered")
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations time real work")
	}
	if _, _, agree := AblationLevels(4); !agree {
		t.Error("SCC levels disagree with pairwise can.know.f")
	}
	if _, _, agree := AblationRelang(4); !agree {
		t.Error("DFA search disagrees with NFA search")
	}
	inc, re := AblationIncremental(6)
	if inc <= 0 || re <= 0 {
		t.Error("ablation timings empty")
	}
	if _, _, agree := AblationClosure(4); !agree {
		t.Error("lazy and eager can.know.f disagree")
	}
}
