package experiments

import (
	"fmt"
	"strings"

	"takegrant/internal/blp"
	"takegrant/internal/explore"
	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/restrict"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
	"takegrant/internal/simulate"
)

func init() {
	register("E11", e11SoundnessFuzz)
	register("E12", e12Completeness)
	register("E13", e13RestrictionComparison)
	register("E14", e14BLPEquivalence)
}

// e11SoundnessFuzz is the Monte-Carlo soundness experiment: fully corrupt
// populations attack generated hierarchies seeded with dangerous cross
// take/grant edges. Unrestricted systems breach nearly always; guarded
// systems never do.
func e11SoundnessFuzz() Table {
	t := Table{
		ID:      "E11",
		Title:   "Theorem 5.5 soundness: adversarial Monte-Carlo",
		Claim:   "under the combined restriction no rule sequence breaches; unrestricted the same workloads breach",
		Columns: []string{"configuration", "trials", "breach rate", "mean breach step", "mean refused"},
		Pass:    true,
	}
	spec := simulate.Spec{Levels: 3, SubjectsPerLevel: 2, DocsPerLevel: 1, ExtraRights: 4, CrossTG: 4, Seed: 1000}
	const trials, steps = 12, 120
	unres := simulate.MonteCarlo(spec, nil, trials, steps)
	guarded := simulate.MonteCarlo(spec, func(w *simulate.World) restrict.Restriction {
		return restrict.NewCombined(w.S)
	}, trials, steps)
	t.Rows = append(t.Rows, []string{"unrestricted", fmt.Sprint(unres.Trials),
		fmt.Sprintf("%.0f%%", 100*unres.BreachRate()),
		fmt.Sprintf("%.1f", unres.MeanBreachAt),
		fmt.Sprintf("%.1f", unres.MeanRefused)})
	t.Rows = append(t.Rows, []string{"combined restriction", fmt.Sprint(guarded.Trials),
		fmt.Sprintf("%.0f%%", 100*guarded.BreachRate()),
		"-",
		fmt.Sprintf("%.1f", guarded.MeanRefused)})
	if guarded.Breaches != 0 {
		t.Pass = false
	}
	if unres.BreachRate() < 0.75 {
		t.Pass = false
	}
	t.Notes = append(t.Notes,
		"every trial wires 4 cross-level take/grant edges; greedy-random adversaries, 120 steps")
	return t
}

// e12Completeness is the exhaustive small-graph completeness experiment:
// every secure graph reachable without the restriction is reachable with
// it (Theorem 5.5 completeness).
func e12Completeness() Table {
	t := Table{
		ID:      "E12",
		Title:   "Theorem 5.5 completeness: exhaustive reachability",
		Claim:   "secure-to-secure derivations survive the restriction: restricted reachability covers every secure unrestricted graph",
		Columns: []string{"depth", "reachable", "secure reachable", "restricted reachable", "missing"},
		Pass:    true,
	}
	c, err := hierarchy.Linear(2, 1)
	if err != nil {
		t.Pass = false
		return t
	}
	g := c.G
	e := g.Universe().MustDeclare("e")
	high := c.Members["L2"][0]
	low := c.Members["L1"][0]
	v := g.MustObject("v")
	g.AddExplicit(high, v, rights.T)
	g.AddExplicit(v, c.Bulletin["L1"], rights.Of(e, rights.Write))
	g.AddExplicit(high, low, rights.G)
	s := hierarchy.AnalyzeRW(g)
	secureKeep := func(h *graph.Graph) bool {
		return len(restrict.NewCombined(s).Audit(h)) == 0
	}
	for _, depth := range []int{2, 3, 4} {
		opts := explore.Options{MaxDepth: depth, MaxStates: 120000, DeJure: true, DeFacto: true}
		all, r1 := explore.ReachableSet(g, opts, nil)
		secure, _ := explore.ReachableSet(g, opts, secureKeep)
		ropts := opts
		ropts.Restriction = func() restrict.Restriction { return restrict.NewCombined(s) }
		restricted, r2 := explore.ReachableSet(g, ropts, nil)
		missing := 0
		for k := range secure {
			if !restricted[k] {
				missing++
			}
		}
		if missing > 0 || r1.Truncated || r2.Truncated {
			t.Pass = false
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(depth), fmt.Sprint(len(all)), fmt.Sprint(len(secure)),
			fmt.Sprint(len(restricted)), fmt.Sprint(missing),
		})
	}
	t.Notes = append(t.Notes,
		"restricted reachability may exceed secure-unrestricted count: the restriction also reaches graphs whose unrestricted twins were pruned for being reached through insecure intermediates — the paper notes more secure graphs are formed under the restricted rules")
	return t
}

// e13RestrictionComparison demonstrates Lemmas 5.3/5.4: direction-only and
// application-only restrictions are sound but incomplete, while the
// combined restriction passes the same harmless transfers.
func e13RestrictionComparison() Table {
	t := Table{
		ID:      "E13",
		Title:   "Lemmas 5.3/5.4: restriction families compared",
		Claim:   "direction and application restrictions are sound but forbid harmless transfers the combined restriction allows",
		Columns: []string{"transfer", "direction", "application", "combined"},
		Pass:    true,
	}
	build := func() (*hierarchy.Classification, *hierarchy.Structure, rights.Right) {
		c, _ := hierarchy.Linear(2, 1)
		e := c.G.Universe().MustDeclare("e")
		return c, hierarchy.AnalyzeRW(c.G), e
	}
	verdict := func(err error) string {
		if err == nil {
			return "allow"
		}
		return "refuse"
	}
	// Case 1: upward grant edge carrying a harmless right.
	{
		c, s, e := build()
		g := c.G
		low := c.Members["L1"][0]
		high := c.Members["L2"][0]
		v := g.MustObject("v")
		g.AddExplicit(low, v, rights.Of(e))
		g.AddExplicit(low, high, rights.G)
		app := rules.Grant(low, high, v, rights.Of(e))
		dir := restrict.NewDirection(s).Allows(g, app)
		ap := restrict.NewApplication(rights.RW, rights.RW).Allows(g, app)
		comb := restrict.NewCombined(s).Allows(g, app)
		t.Rows = append(t.Rows, []string{"low grants (e to v) upward",
			verdict(dir), verdict(ap), verdict(comb)})
		if dir == nil || comb != nil {
			t.Pass = false // incompleteness of direction; completeness of combined
		}
		if ap != nil {
			t.Pass = false // application restriction does not mention e
		}
	}
	// Case 2: legitimate read-down take.
	{
		c, s, _ := build()
		g := c.G
		high := c.Members["L2"][0]
		v := g.MustObject("v")
		g.AddExplicit(high, v, rights.T)
		g.AddExplicit(v, c.Bulletin["L1"], rights.R)
		app := rules.Take(high, v, c.Bulletin["L1"], rights.R)
		dir := restrict.NewDirection(s).Allows(g, app)
		ap := restrict.NewApplication(rights.RW, rights.RW).Allows(g, app)
		comb := restrict.NewCombined(s).Allows(g, app)
		t.Rows = append(t.Rows, []string{"high takes (r to low doc)",
			verdict(dir), verdict(ap), verdict(comb)})
		if ap == nil || comb != nil {
			t.Pass = false // incompleteness of application restriction
		}
	}
	// Case 3: forbidden read-up — everyone must refuse r; direction fires
	// only when the exercised edge points upward.
	{
		c, s, _ := build()
		g := c.G
		low := c.Members["L1"][0]
		high := c.Members["L2"][0]
		g.AddExplicit(low, high, rights.T)
		app := rules.Take(low, high, c.Bulletin["L2"], rights.R)
		dir := restrict.NewDirection(s).Allows(g, app)
		ap := restrict.NewApplication(rights.RW, rights.RW).Allows(g, app)
		comb := restrict.NewCombined(s).Allows(g, app)
		t.Rows = append(t.Rows, []string{"low takes (r to high doc)",
			verdict(dir), verdict(ap), verdict(comb)})
		if dir == nil || ap == nil || comb == nil {
			t.Pass = false // soundness: all three refuse
		}
	}
	return t
}

// e14BLPEquivalence runs the §6 correspondence: the combined restriction
// and a Bell–LaPadula monitor agree on every comparable-level decision.
func e14BLPEquivalence() Table {
	t := Table{
		ID:      "E14",
		Title:   "§6: Bell–LaPadula correspondence",
		Claim:   "restriction (a) ⇔ refined simple security, restriction (b) ⇔ no write down",
		Columns: []string{"lattice", "decisions", "agree", "incomparable-only divergences", "comparable disagreements"},
		Pass:    true,
	}
	for _, lat := range []struct {
		name string
		cats []string
	}{
		{"linear (1 category)", []string{"A"}},
		{"two categories", []string{"A", "B"}},
		{"three categories", []string{"A", "B", "C"}},
	} {
		c, err := hierarchy.Military(3, lat.cats, 1)
		if err != nil {
			t.Pass = false
			continue
		}
		g := c.G
		s := hierarchy.AnalyzeRW(g)
		m := blp.NewMonitor()
		lvl := func(name string) blp.Level {
			if name == "U" {
				return blp.Level{Authority: 0, Categories: 0}
			}
			cat := uint64(1) << uint(strings.IndexByte("ABC", name[0]))
			return blp.Level{Authority: int(name[1] - '0'), Categories: cat}
		}
		for lname, members := range c.Members {
			for _, v := range members {
				m.Classify(g.Name(v), lvl(lname))
			}
			m.Classify(g.Name(c.Bulletin[lname]), lvl(lname))
		}
		blpR := &blp.Restriction{M: m, NameOf: func(v graph.ID) string { return g.Name(v) }}
		comb := restrict.NewCombined(s)
		helper := g.MustSubject("helper")
		var apps []rules.Application
		for _, src := range g.Vertices() {
			for _, dst := range g.Vertices() {
				if src == dst || src == helper || dst == helper {
					continue
				}
				apps = append(apps,
					rules.Application{Op: rules.OpTake, X: src, Y: helper, Z: dst, Rights: rights.R},
					rules.Application{Op: rules.OpTake, X: src, Y: helper, Z: dst, Rights: rights.W})
			}
		}
		comparable := func(a, b graph.ID) bool {
			la, aok := m.LevelOf(g.Name(a))
			lb, bok := m.LevelOf(g.Name(b))
			return aok && bok && la.Comparable(lb)
		}
		agree, inc, diffs := blp.CompareDecisions(g, apps, blpR, comb, comparable)
		if len(diffs) > 0 {
			t.Pass = false
		}
		t.Rows = append(t.Rows, []string{lat.name, fmt.Sprint(len(apps)),
			fmt.Sprint(agree), fmt.Sprint(inc), fmt.Sprint(len(diffs))})
	}
	t.Notes = append(t.Notes,
		"incomparable-only divergences are the documented §6 nuance: BLP denies cross-category flows the paper's 'lower than' precondition never constrains")
	return t
}
