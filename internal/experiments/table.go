// Package experiments regenerates every "table and figure" of the paper.
// The paper is a theory paper, so its evaluation artifacts are worked
// example graphs (Figures 2.1–6.1), theorem statements, and complexity
// corollaries; each experiment here reconstructs one artifact as an
// executable scenario, runs the corresponding decision procedures, and
// reports the qualitative outcome the paper claims next to the measured
// one. cmd/tgbench prints these tables; EXPERIMENTS.md archives them;
// bench_test.go times the scaling claims.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table is one experiment's report.
type Table struct {
	// ID is the experiment identifier from DESIGN.md (E1…E16).
	ID string
	// Title names the reproduced artifact.
	Title string
	// Claim is the paper's qualitative claim being checked.
	Claim string
	// Columns and Rows hold the regenerated table.
	Columns []string
	Rows    [][]string
	// Pass reports whether every checked expectation held.
	Pass bool
	// Notes carry measurement caveats.
	Notes []string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	status := "PASS"
	if !t.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "result: %s\n", status)
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "*Paper claim:* %s\n\n", t.Claim)
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	status := "**PASS**"
	if !t.Pass {
		status = "**FAIL**"
	}
	fmt.Fprintf(&b, "\nResult: %s", status)
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  \n*Note:* %s", n)
	}
	b.WriteString("\n")
	return b.String()
}

// Runner produces one experiment table.
type Runner func() Table

// registry maps experiment IDs to runners.
var registry = map[string]Runner{}

func register(id string, r Runner) {
	registry[id] = r
}

// IDs returns the registered experiment identifiers in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// E2 sorts before E10 numerically.
		return idNum(out[i]) < idNum(out[j])
	})
	return out
}

func idNum(id string) int {
	n := 0
	for _, c := range id {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	return n
}

// Run executes one experiment by ID.
func Run(id string) (Table, bool) {
	r, ok := registry[id]
	if !ok {
		return Table{}, false
	}
	return r(), true
}

// RunAll executes every experiment in ID order.
func RunAll() []Table {
	ids := IDs()
	out := make([]Table, 0, len(ids))
	for _, id := range ids {
		t, _ := Run(id)
		out = append(out, t)
	}
	return out
}

func yesno(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func check(pass *bool, cond bool) string {
	if !cond {
		*pass = false
	}
	return yesno(cond)
}

// expect formats got and updates pass against want.
func expect(pass *bool, got, want bool) string {
	if got != want {
		*pass = false
	}
	return yesno(got)
}
