package experiments

import (
	"fmt"

	"takegrant/internal/analysis"
	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

func init() {
	register("E18", e18DeFactoRuleSets)
}

// e18DeFactoRuleSets implements §6's closing remark: the four de facto
// rules are "merely one possible set". The experiment recomputes the
// information-flow closure of a reference workload under every subset of
// {post, pass, spy, find}: weaker rule sets exhibit strictly fewer flows,
// and — since removing flows can only help — the hierarchical
// classification stays secure under every subset.
func e18DeFactoRuleSets() Table {
	t := Table{
		ID:      "E18",
		Title:   "Extension (§6): de facto rule-set ablation",
		Claim:   "each subset of {post,pass,spy,find} yields a sub-relation of the full flow; the hierarchy is secure under all of them",
		Columns: []string{"rule set", "implicit edges", "⊆ full closure", "hierarchy secure"},
		Pass:    true,
	}
	ref := referenceFlowGraph()
	full := ref.Clone()
	rules.DeFactoClosureWith(full, rules.AllDeFacto)
	fullEdges := implicitPairs(full)

	hier, err := hierarchy.Linear(3, 2)
	if err != nil {
		t.Pass = false
		return t
	}
	sets := []rules.DeFactoSet{
		rules.AllDeFacto,
		rules.AllDeFacto &^ rules.UsePost,
		rules.AllDeFacto &^ rules.UsePass,
		rules.AllDeFacto &^ rules.UseSpy,
		rules.AllDeFacto &^ rules.UseFind,
		rules.UseSpy,
		rules.UsePost,
		0,
	}
	for _, set := range sets {
		clone := ref.Clone()
		rules.DeFactoClosureWith(clone, set)
		pairs := implicitPairs(clone)
		subset := true
		for p := range pairs {
			if !fullEdges[p] {
				subset = false
			}
		}
		// Hierarchy security: with fewer exhibition rules nothing new can
		// leak; verify on the builder hierarchy.
		h := hier.G.Clone()
		rules.DeFactoClosureWith(h, set)
		low := hier.Members["L1"][0]
		top := hier.Bulletin["L3"]
		secure := !analysis.KnowsBase(h, low, top)
		t.Rows = append(t.Rows, []string{
			set.String(),
			fmt.Sprint(len(pairs)),
			expect(&t.Pass, subset, true),
			expect(&t.Pass, secure, true),
		})
	}
	// The full set must strictly dominate each single-rule removal on the
	// reference workload (every rule earns its keep).
	for _, set := range sets[1:5] {
		clone := ref.Clone()
		rules.DeFactoClosureWith(clone, set)
		if len(implicitPairs(clone)) >= len(fullEdges) {
			t.Pass = false
			t.Notes = append(t.Notes,
				fmt.Sprintf("rule set %s lost nothing — reference workload too weak", set))
		}
	}
	return t
}

// referenceFlowGraph exercises each de facto rule in its own disjoint
// vertex group, so exactly one rule can exhibit each group's flow: the
// ablation then shows every rule earning its keep.
func referenceFlowGraph() *graph.Graph {
	g := graph.New(nil)
	// post: pa -r-> pm <-w- pb (both subjects) ⇒ pa reads pb.
	pa := g.MustSubject("pa")
	pm := g.MustObject("pm")
	pb := g.MustSubject("pb")
	g.AddExplicit(pa, pm, rights.R)
	g.AddExplicit(pb, pm, rights.W)
	// pass: qy -w-> qx, qy -r-> qz with qx, qz objects ⇒ qx reads qz.
	qy := g.MustSubject("qy")
	qx := g.MustObject("qx")
	qz := g.MustObject("qz")
	g.AddExplicit(qy, qx, rights.W)
	g.AddExplicit(qy, qz, rights.R)
	// spy: sa -r-> sb -r-> sc ⇒ sa reads sc.
	sa := g.MustSubject("sa")
	sb := g.MustSubject("sb")
	sc := g.MustObject("sc")
	g.AddExplicit(sa, sb, rights.R)
	g.AddExplicit(sb, sc, rights.R)
	// find: fy -w-> fx, fz -w-> fy ⇒ fx reads fz.
	fy := g.MustSubject("fy")
	fx := g.MustObject("fx")
	fz := g.MustSubject("fz")
	g.AddExplicit(fy, fx, rights.W)
	g.AddExplicit(fz, fy, rights.W)
	return g
}

func implicitPairs(g *graph.Graph) map[[2]graph.ID]bool {
	out := make(map[[2]graph.ID]bool)
	for _, e := range g.Edges() {
		if e.Implicit.Has(rights.Read) {
			out[[2]graph.ID{e.Src, e.Dst}] = true
		}
	}
	return out
}
