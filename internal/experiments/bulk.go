package experiments

// Million-vertex bulk-load experiments. E24 traces the cold-install
// curve — binary decode plus the derived-index builds (CSR snapshot,
// tg-island union, reach-closure rows) — from 1e4 to 1e6 vertices, with
// allocation-per-vertex alongside wall clock so a superlinear copy or a
// dropped preallocation shows up as a bent curve, not just a slower one.
// E25 then asks whether warm verdicts stay O(1) at the top of that
// curve: the same bit-test flatness E23 established across ~64x must
// still hold when the world is a million vertices.

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"time"

	"takegrant/internal/analysis"
	"takegrant/internal/graph"
	"takegrant/internal/rights"
	"takegrant/internal/simulate"
	"takegrant/internal/tgio"
)

func init() {
	register("E24", e24BulkLoad)
	register("E25", e25WarmAtScale)
}

// bulkSizes is the E24 curve; the last entry is the design-point world
// E25 re-measures warm verdicts on.
var bulkSizes = []int{10_000, 100_000, 1_000_000}

// Generated worlds are cached as encoded bytes (small) so E24 and E25
// share them; only the largest decoded graph is retained, for E25 —
// keeping every decoded size alive would hold hundreds of MB for
// nothing.
var (
	bulkEncoded = map[int][]byte{}
	bulkTop     *graph.Graph
)

func bulkBytes(n int) []byte {
	if b, ok := bulkEncoded[n]; ok {
		return b
	}
	g, err := simulate.GenerateScenario(simulate.ScenarioOrgChart, n, 17)
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := tgio.EncodeBinary(&buf, g); err != nil {
		panic(err)
	}
	bulkEncoded[n] = buf.Bytes()
	return buf.Bytes()
}

// bulkGraph decodes the n-vertex world, reusing the retained top-size
// decode when it exists.
func bulkGraph(n int) *graph.Graph {
	if n == bulkSizes[len(bulkSizes)-1] && bulkTop != nil {
		return bulkTop
	}
	g, err := tgio.DecodeBinary(bytes.NewReader(bulkBytes(n)))
	if err != nil {
		panic(err)
	}
	if n == bulkSizes[len(bulkSizes)-1] {
		bulkTop = g
	}
	return g
}

// allocDelta runs f once and reports the bytes it allocated (cumulative
// TotalAlloc, so GC during f cannot make the number lie low).
func allocDelta(f func()) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// e24BulkLoad measures the cold-install path a binary PUT of a large
// world pays: streaming .tgb decode into a pre-sized graph, then the
// derived indexes — parallel counting-sort CSR snapshot, tg-island
// union over it, and the first reach-closure row family. The claim is
// the paper's linearity (Corollary 5.6's spirit applied to the
// systems layer): wall clock and allocated bytes grow proportionally
// with the world, and the full 1e6 install lands in single-digit
// seconds.
func e24BulkLoad() Table {
	t := Table{
		ID:    "E24",
		Title: "Bulk load at scale: binary decode + derived-index build, 1e4 → 1e6",
		Claim: "cold install cost (decode, CSR snapshot, islands, reach rows) grows linearly in world size; a 1e6-vertex world installs in single-digit seconds",
		Columns: []string{"vertices", "edges", ".tgb bytes", "decode", "snapshot+islands",
			"reach row", "total", "alloc B/vertex"},
		Pass: true,
	}
	perVertex := make([]float64, 0, len(bulkSizes))
	var topTotal time.Duration
	for _, n := range bulkSizes {
		enc := bulkBytes(n)
		var g *graph.Graph
		var allocBytes uint64
		decodeT := func() time.Duration {
			start := time.Now()
			allocBytes = allocDelta(func() {
				dec, err := tgio.DecodeBinary(bytes.NewReader(enc))
				if err != nil {
					panic(err)
				}
				g = dec
			})
			return time.Since(start)
		}()
		if n == bulkSizes[len(bulkSizes)-1] {
			bulkTop = g // E25 reuses the big decode
		}
		start := time.Now()
		g.Snapshot()
		g.TGIslands()
		indexT := time.Since(start)

		// First decision query builds the island's chain + span rows —
		// the reach-closure slice of a cold install.
		ix := analysis.NewReachIndex(g)
		x := g.Subjects()[0]
		y := g.Objects()[len(g.Objects())-1]
		start = time.Now()
		ix.CanShare(rights.Read, x, y, nil, nil)
		rowT := time.Since(start)

		total := decodeT + indexT + rowT
		topTotal = total
		pv := float64(allocBytes) / float64(n)
		perVertex = append(perVertex, pv)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(g.NumVertices()), fmt.Sprint(g.NumEdges()), fmt.Sprint(len(enc)),
			decodeT.Round(time.Microsecond).String(),
			indexT.Round(time.Microsecond).String(),
			rowT.Round(time.Microsecond).String(),
			total.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", pv),
		})
	}
	if topTotal > 10*time.Second {
		t.Pass = false
		t.Notes = append(t.Notes, fmt.Sprintf("1e6 install took %v (> 10s)", topTotal))
	}
	if last, first := perVertex[len(perVertex)-1], perVertex[0]; last > 3*first {
		t.Pass = false
		t.Notes = append(t.Notes,
			fmt.Sprintf("alloc/vertex grew %.0fB -> %.0fB (> 3x): the load path is superlinear", first, last))
	}
	t.Notes = append(t.Notes,
		"pass criterion: 1e6 install (decode + snapshot + islands + first reach row) ≤ 10s and alloc/vertex ≤ 3x across 100x growth",
		"decode includes graph construction into a pre-sized vertex table (Graph.Grow)")
	return t
}

// e25WarmAtScale re-runs E23's flatness question at the E24 design
// point: with the reach rows warm, the p99 of a can•share / can•know
// verdict on a 1e6-vertex world must not drift from the 1e4 world's.
// p99 rather than mean, because the capacity model in DESIGN.md budgets
// tail latency, and a flat mean with a growing tail would still sink
// the open-loop soak.
func e25WarmAtScale() Table {
	t := Table{
		ID:      "E25",
		Title:   "Warm verdict p99 flat at 1e6 vertices",
		Claim:   "warm closure verdicts are bit-tests: their p99 does not move between a 1e4- and a 1e6-vertex world",
		Columns: []string{"vertices", "warm can-share p50", "warm can-share p99", "warm can-know p99"},
		Pass:    true,
	}
	sizes := []int{bulkSizes[0], bulkSizes[len(bulkSizes)-1]}
	var shareP99, knowP99 []time.Duration
	for _, n := range sizes {
		g := bulkGraph(n)
		ix := analysis.NewReachIndex(g)
		x := g.Subjects()[0]
		y := g.Objects()[len(g.Objects())-1]
		// Warm the rows, and cross-check against the search oracle on the
		// small world (the big one would take the oracle minutes).
		got, _, _ := ix.CanShare(rights.Read, x, y, nil, nil)
		gotK, _, _ := ix.CanKnow(x, y, nil, nil)
		if n == sizes[0] {
			if want := analysis.CanShare(g, rights.Read, x, y); got != want {
				t.Pass = false
				t.Notes = append(t.Notes, fmt.Sprintf("can-share closure verdict %v, oracle %v", got, want))
			}
			if want := analysis.CanKnow(g, x, y); gotK != want {
				t.Pass = false
				t.Notes = append(t.Notes, fmt.Sprintf("can-know closure verdict %v, oracle %v", gotK, want))
			}
		}
		sp50, sp99 := warmQuantiles(func() { ix.CanShare(rights.Read, x, y, nil, nil) })
		_, kp99 := warmQuantiles(func() { ix.CanKnow(x, y, nil, nil) })
		shareP99 = append(shareP99, sp99)
		knowP99 = append(knowP99, kp99)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(g.NumVertices()), sp50.String(), sp99.String(), kp99.String(),
		})
	}
	// Flatness with a noise floor: at tens-of-ns magnitudes a 3x ratio
	// can be pure scheduler/cache jitter, so the ratio only fails when
	// the big-world p99 also clears 500ns — far above any warm bit-test,
	// far below the µs-scale cold search a real scale regression decays to.
	flat := func(kind string, q []time.Duration) {
		if q[1] > 3*q[0] && q[1] > 500*time.Nanosecond {
			t.Pass = false
			t.Notes = append(t.Notes,
				fmt.Sprintf("warm %s p99 grew %v -> %v (> 3x and > 500ns) across 100x vertices", kind, q[0], q[1]))
		}
	}
	flat("can-share", shareP99)
	flat("can-know", knowP99)
	t.Notes = append(t.Notes,
		"pass criterion: warm p99 stays ≤ max(3x the 1e4 p99, 500ns) while the world grows 100x, verdicts match the search oracle at 1e4",
		"samples are 128-query batches: a single warm verdict is tens of ns, under the timer floor")
	return t
}

// warmQuantiles samples f's warm latency: 200 batches of 128 calls,
// quantiles over the per-call batch means, best of several trials.
// Batching amortises the timer read; taking the minimum across trials
// discards trials a descheduling or cache eviction polluted — the
// drift-with-scale E25 is after survives both, machine jitter doesn't.
func warmQuantiles(f func()) (p50, p99 time.Duration) {
	const trials = 5
	for t := 0; t < trials; t++ {
		q50, q99 := warmQuantilesOnce(f)
		if t == 0 || q50 < p50 {
			p50 = q50
		}
		if t == 0 || q99 < p99 {
			p99 = q99
		}
	}
	return p50, p99
}

func warmQuantilesOnce(f func()) (p50, p99 time.Duration) {
	const batches, per = 200, 128
	f()
	samples := make([]time.Duration, batches)
	for i := range samples {
		start := time.Now()
		for j := 0; j < per; j++ {
			f()
		}
		samples[i] = time.Since(start) / per
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[batches/2], samples[batches*99/100]
}
