package experiments

import (
	"fmt"
	"math/rand"

	"takegrant/internal/restrict"
	"takegrant/internal/simulate"
)

func init() {
	register("E17", e17AttackerStrategies)
}

// e17AttackerStrategies is an extension experiment beyond the paper's
// figures: it grades attacker sophistication against the combined
// restriction. Random and greedy corrupt populations breach unrestricted
// systems at different speeds; the oracle attacker — who synthesises a
// provable breach derivation with the repository's own analysis engine —
// breaches fastest of all. Against the guard, all three fail identically:
// Theorem 5.5's soundness does not depend on attacker skill.
func e17AttackerStrategies() Table {
	t := Table{
		ID:      "E17",
		Title:   "Extension: attacker-strategy grading",
		Claim:   "soundness is independent of attacker skill — even the oracle attacker cannot breach the guarded system",
		Columns: []string{"strategy", "unrestricted breach", "mean breach step", "guarded breach", "guard refusals"},
		Pass:    true,
	}
	spec := simulate.Spec{Levels: 3, SubjectsPerLevel: 2, DocsPerLevel: 1, ExtraRights: 3, CrossTG: 4, Seed: 4242}
	const trials, steps = 10, 150
	for _, strat := range []simulate.Strategy{
		simulate.StrategyRandom, simulate.StrategyGreedy, simulate.StrategyOracle,
	} {
		var uBreach, gBreach, uSteps, gRefused int
		for i := 0; i < trials; i++ {
			s := spec
			s.Seed = spec.Seed + int64(i)*7919
			wu, err := simulate.Hierarchy(s)
			if err != nil {
				t.Pass = false
				continue
			}
			rng := rand.New(rand.NewSource(s.Seed))
			out := simulate.AdversaryWithStrategy(wu, restrict.Unrestricted{}, steps, rng, strat)
			if out.Breached {
				uBreach++
				uSteps += out.BreachStep
			}
			wg, err := simulate.Hierarchy(s)
			if err != nil {
				t.Pass = false
				continue
			}
			rng2 := rand.New(rand.NewSource(s.Seed))
			gout := simulate.AdversaryWithStrategy(wg, restrict.NewCombined(wg.S), steps, rng2, strat)
			if gout.Breached {
				gBreach++
			}
			gRefused += gout.Refused
		}
		mean := "-"
		if uBreach > 0 {
			mean = fmt.Sprintf("%.1f", float64(uSteps)/float64(uBreach))
		}
		t.Rows = append(t.Rows, []string{
			strat.String(),
			fmt.Sprintf("%d/%d", uBreach, trials),
			mean,
			fmt.Sprintf("%d/%d", gBreach, trials),
			fmt.Sprintf("%.1f", float64(gRefused)/float64(trials)),
		})
		if gBreach != 0 {
			t.Pass = false
		}
		// The oracle and greedy attackers must actually breach the
		// unrestricted baseline.
		if strat != simulate.StrategyRandom && uBreach == 0 {
			t.Pass = false
		}
	}
	t.Notes = append(t.Notes,
		"the oracle attacker replays a derivation synthesized by the analysis engine itself; refusing its final edge is the guard's whole job")
	return t
}
