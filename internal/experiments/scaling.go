package experiments

import (
	"fmt"
	"time"

	"takegrant/internal/analysis"
	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/relang"
	"takegrant/internal/restrict"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
	"takegrant/internal/simulate"
)

func init() {
	register("E8", e8LinearAudit)
	register("E9", e9ConstantGuard)
	register("E10", e10CanShareScaling)
}

// ScalingWorld builds a hierarchical world of roughly the requested size
// for the scaling experiments and benchmarks.
func ScalingWorld(levels, subjectsPerLevel, docsPerLevel int, seed int64) *simulate.World {
	w, err := simulate.Hierarchy(simulate.Spec{
		Levels:           levels,
		SubjectsPerLevel: subjectsPerLevel,
		DocsPerLevel:     docsPerLevel,
		ExtraRights:      levels * subjectsPerLevel,
		CrossTG:          levels,
		Seed:             seed,
	})
	if err != nil {
		panic(err)
	}
	return w
}

// timeIt measures the median-ish cost of f by averaging over reps.
func timeIt(reps int, f func()) time.Duration {
	f() // warm caches
	start := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	return time.Since(start) / time.Duration(reps)
}

// e8LinearAudit checks Corollary 5.6: the whole-graph violation audit is
// linear in the number of edges. We report measured time per edge across
// growing graphs — the claim holds when the per-edge cost stays roughly
// flat while the graph grows by an order of magnitude.
func e8LinearAudit() Table {
	t := Table{
		ID:      "E8",
		Title:   "Corollary 5.6: audit time is linear in edges",
		Claim:   "testing a graph for restriction violations costs O(|E|)",
		Columns: []string{"vertices", "edges", "audit time", "ns per edge"},
		Pass:    true,
	}
	var perEdge []float64
	for _, scale := range []int{4, 8, 16, 32} {
		w := ScalingWorld(4, scale, scale, 11)
		s := w.S
		comb := restrict.NewCombined(s)
		g := w.G()
		d := timeIt(20, func() { comb.Audit(g) })
		ratio := float64(d.Nanoseconds()) / float64(g.NumEdges())
		perEdge = append(perEdge, ratio)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(g.NumVertices()), fmt.Sprint(g.NumEdges()),
			d.String(), fmt.Sprintf("%.1f", ratio),
		})
	}
	// Linear ⇒ per-edge cost roughly constant: allow generous headroom for
	// cache effects.
	if perEdge[len(perEdge)-1] > perEdge[0]*8 {
		t.Pass = false
	}
	t.Notes = append(t.Notes, "pass criterion: ns/edge grows < 8x while edges grow ~64x")
	return t
}

// e9ConstantGuard checks Corollary 5.7: the per-application restriction
// check costs O(1) — flat time as the graph grows.
func e9ConstantGuard() Table {
	t := Table{
		ID:      "E9",
		Title:   "Corollary 5.7: per-rule guard check is constant time",
		Claim:   "deciding whether one rule application violates the restriction costs O(1)",
		Columns: []string{"vertices", "edges", "check time"},
		Pass:    true,
	}
	var times []time.Duration
	for _, scale := range []int{4, 8, 16, 32} {
		w := ScalingWorld(4, scale, scale, 13)
		g := w.G()
		comb := restrict.NewCombined(w.S)
		subs := g.Subjects()
		app := rules.Take(subs[0], subs[1], subs[len(subs)-1], rights.W)
		d := timeIt(200, func() { _ = comb.Allows(g, app) })
		times = append(times, d)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(g.NumVertices()), fmt.Sprint(g.NumEdges()), d.String(),
		})
	}
	if times[len(times)-1] > times[0]*10+time.Microsecond {
		t.Pass = false
	}
	t.Notes = append(t.Notes, "pass criterion: check time flat (within noise) while the graph grows ~64x")
	return t
}

// e10CanShareScaling measures the can•share decision across growing
// graphs; the product-search implementation is linear in |E| per query up
// to the bridge-chain alternation factor.
func e10CanShareScaling() Table {
	t := Table{
		ID:      "E10",
		Title:   "Theorem 2.3 ([5,6]): can•share decision scaling",
		Claim:   "the island/bridge characterisation decides can•share in time linear in the graph",
		Columns: []string{"vertices", "edges", "decision time", "µs per edge"},
		Pass:    true,
	}
	var perEdge []float64
	for _, scale := range []int{4, 8, 16, 32} {
		w := ScalingWorld(4, scale, scale, 17)
		g := w.G()
		low := w.C.Members["L1"][0]
		top := w.Docs["L4"][0]
		d := timeIt(10, func() { analysis.CanShare(g, rights.Read, low, top) })
		ratio := float64(d.Microseconds()) / float64(g.NumEdges())
		perEdge = append(perEdge, ratio)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(g.NumVertices()), fmt.Sprint(g.NumEdges()),
			d.String(), fmt.Sprintf("%.3f", ratio),
		})
	}
	if perEdge[len(perEdge)-1] > perEdge[0]*10+1 {
		t.Pass = false
	}
	t.Notes = append(t.Notes, "single-query cost; the bench suite times the same sweep under testing.B")
	return t
}

// AblationLevels compares SCC-based rw-level computation against the
// quadratic pairwise-can•know•f reference (DESIGN.md §5).
func AblationLevels(scale int) (sccTime, pairwiseTime time.Duration, agree bool) {
	w := ScalingWorld(3, scale, scale, 19)
	g := w.G()
	var s *hierarchy.Structure
	sccTime = timeIt(5, func() { s = hierarchy.AnalyzeRW(g) })
	vs := g.Vertices()
	pairwiseTime = timeIt(1, func() {
		for _, a := range vs {
			for _, b := range vs {
				if analysis.CanKnowF(g, a, b) != (s.SameLevel(a, b) || s.Knows(a, b)) {
					_ = a
				}
			}
		}
	})
	agree = true
	for _, a := range vs {
		for _, b := range vs {
			mutual := analysis.CanKnowF(g, a, b) && analysis.CanKnowF(g, b, a)
			if mutual != s.SameLevel(a, b) {
				agree = false
			}
		}
	}
	return sccTime, pairwiseTime, agree
}

// AblationRelang compares NFA-backed product search with the lazily
// determinised DFA (DESIGN.md §5).
func AblationRelang(scale int) (nfaTime, dfaTime time.Duration, agree bool) {
	w := ScalingWorld(3, scale, scale, 23)
	g := w.G()
	subs := g.Subjects()
	nfa := relang.Compile(relang.Bridge())
	dfa := relang.Determinize(nfa)
	src := subs[0]
	nfaTime = timeIt(10, func() {
		relang.Search(g, nfa, []graph.ID{src}, relang.Options{})
	})
	dfaTime = timeIt(10, func() {
		relang.SearchDFA(g, dfa, []graph.ID{src}, relang.Options{})
	})
	res := relang.Search(g, nfa, []graph.ID{src}, relang.Options{})
	dres := relang.SearchDFA(g, dfa, []graph.ID{src}, relang.Options{})
	agree = true
	for _, v := range g.Vertices() {
		if res.Accepted(v) != dres[v] {
			agree = false
		}
	}
	return nfaTime, dfaTime, agree
}

// AblationIncremental compares the O(1) incremental guard (Cor 5.7)
// against re-auditing the whole graph after each rule (Cor 5.6 applied
// per-step).
func AblationIncremental(scale int) (incTime, reAuditTime time.Duration) {
	w := ScalingWorld(3, scale, scale, 29)
	g := w.G()
	comb := restrict.NewCombined(w.S)
	subs := g.Subjects()
	app := rules.Take(subs[0], subs[1], subs[len(subs)-1], rights.W)
	incTime = timeIt(100, func() { _ = comb.Allows(g, app) })
	reAuditTime = timeIt(20, func() { comb.Audit(g) })
	return incTime, reAuditTime
}

// AblationClosure compares lazy path-search can•know•f queries against
// eagerly materialising the de facto closure then reading the edge.
func AblationClosure(scale int) (lazyTime, eagerTime time.Duration, agree bool) {
	w := ScalingWorld(3, scale, 2, 31)
	g := w.G()
	low := w.C.Members["L1"][0]
	top := w.C.Bulletin["L3"]
	lazyTime = timeIt(10, func() { analysis.CanKnowF(g, top, low) })
	var eager *graph.Graph
	eagerTime = timeIt(2, func() {
		eager = g.Clone()
		rules.DeFactoClosure(eager)
	})
	lazy := analysis.CanKnowF(g, top, low)
	agree = lazy == analysis.KnowsBase(eager, top, low)
	return lazyTime, eagerTime, agree
}
