package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"takegrant/internal/obs"
)

func init() {
	register("E22", e22InstrumentationOverhead)
}

// nsPerOp times fn over enough iterations to smooth scheduler noise and
// returns the per-call cost in nanoseconds.
func nsPerOp(iters int, fn func(i int)) float64 {
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn(i)
	}
	return float64(time.Since(start)) / float64(iters)
}

// e22InstrumentationOverhead prices the observability plane's hot path.
// The service records every request into a log-bucketed atomic histogram
// (replacing the old mutex-guarded 1024-sample window) and optionally
// into the flight-recorder ring; both sit on the request path of a
// reference monitor whose guarded queries themselves run in microseconds,
// so the instruments must cost nanoseconds — and the histogram's
// quantiles must stay inside its documented bucket error.
//
// Three checks:
//   - Hist.Observe ≤ 100 ns/op — the CI-gated budget (measured ~17 ns:
//     three uncontended atomic adds).
//   - Flight.Record ≤ 1 µs/op — one atomic increment plus a published
//     allocation; off the budget path but priced here so a regression
//     is visible.
//   - Interpolated p50/p99/p999 over a log-normal latency population
//     within the 2-bit sub-bucket geometry's ≤12.5% relative error.
func e22InstrumentationOverhead() Table {
	t := Table{
		ID:      "E22",
		Title:   "Instrumentation overhead: atomic histogram and flight ring",
		Claim:   "per-request observability costs nanoseconds and quantiles stay within the bucket geometry's 12.5% error",
		Columns: []string{"instrument", "measured", "budget", "ok"},
		Pass:    true,
	}
	const iters = 2_000_000

	var h obs.Hist
	d := 87 * time.Microsecond
	obsNs := nsPerOp(iters, func(int) { h.Observe(d) })
	okObs := obsNs <= 100
	t.Rows = append(t.Rows, []string{
		"Hist.Observe", fmt.Sprintf("%.1f ns/op", obsNs), "≤ 100 ns/op", fmt.Sprint(okObs)})

	f := obs.NewFlight(256)
	ev := obs.FlightEvent{Kind: "request", Route: "/query/can-share", Code: 200, Dur: d}
	recNs := nsPerOp(iters/4, func(int) { f.Record(ev) })
	okRec := recNs <= 1000
	t.Rows = append(t.Rows, []string{
		"Flight.Record", fmt.Sprintf("%.1f ns/op", recNs), "≤ 1000 ns/op", fmt.Sprint(okRec)})

	// Quantile fidelity: a log-normal population spanning 3 decades —
	// the shape real request latencies take — recorded into the histogram,
	// then compared against the exact sorted-population quantiles the old
	// sample window would have reported.
	rng := rand.New(rand.NewSource(22))
	const n = 100_000
	pop := make([]time.Duration, n)
	var q obs.Hist
	for i := range pop {
		pop[i] = time.Duration(50e3 * rng.ExpFloat64() * (1 + 9*rng.Float64()))
		q.Observe(pop[i])
	}
	sorted := append([]time.Duration(nil), pop...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	snap := q.Snapshot()
	for _, qv := range []float64{0.50, 0.99, 0.999} {
		exact := float64(sorted[int(qv*float64(n-1)+0.5)])
		got := float64(snap.Quantile(qv))
		rel := (got - exact) / exact
		if rel < 0 {
			rel = -rel
		}
		ok := rel <= 0.125
		if !ok {
			t.Pass = false
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("p%g error", qv*100),
			fmt.Sprintf("%.1f%%", 100*rel), "≤ 12.5%", fmt.Sprint(ok)})
	}
	if !okObs || !okRec {
		t.Pass = false
	}
	t.Notes = append(t.Notes,
		"pass criterion: every budget row ok; quantile error vs exact sorted population",
		"single-goroutine costs; the structures are wait-free, contention adds no locking")
	return t
}
