package experiments

import (
	"fmt"
	"time"

	"takegrant/internal/analysis"
	"takegrant/internal/rights"
)

func init() {
	register("E23", e23WarmClosure)
}

// bestOf returns the fastest of k timeIt measurements. Warm closure
// queries finish in tens of nanoseconds, where a single averaged run is
// dominated by scheduler and cache noise; the minimum is the stable
// estimator of the work actually done.
func bestOf(k, reps int, f func()) time.Duration {
	best := timeIt(reps, f)
	for i := 1; i < k; i++ {
		if d := timeIt(reps, f); d < best {
			best = d
		}
	}
	return best
}

// e23WarmClosure extends the Corollary 5.6/5.7 flatness results from the
// guard to the decision procedures themselves: once the reach-closure
// rows are warm, can•share and can•know are bit-tests whose cost does not
// move while the graph grows ~64x, while the from-scratch search keeps
// growing. The closure verdicts are cross-checked against the search
// oracle at every scale — a fast wrong answer fails the experiment.
func e23WarmClosure() Table {
	t := Table{
		ID:    "E23",
		Title: "Warm verdicts are O(1): closure bit-tests vs graph scale",
		Claim: "with warm closure rows, can•share and can•know cost is independent of graph size while the fallback search grows with it",
		Columns: []string{"vertices", "edges", "warm can-share", "warm can-know",
			"cold can-share search"},
		Pass: true,
	}
	var warmShare, warmKnow []time.Duration
	for _, scale := range []int{4, 8, 16, 32} {
		w := ScalingWorld(4, scale, scale, 37)
		g := w.G()
		low := w.C.Members["L1"][0]
		mid := w.C.Members["L2"][0]
		// A probe object with in-degree one at every scale: warm can•share
		// scans y's direct sources, and the experiment must measure the
		// closure bit-test, not a deg(y) that happens to grow with the world.
		probe, err := g.AddObject("e23_probe")
		if err != nil {
			panic(err)
		}
		if err := g.AddExplicit(mid, probe, rights.R); err != nil {
			panic(err)
		}

		ix := analysis.NewReachIndex(g)
		check := func(kind string, got, want bool) {
			if got != want {
				t.Pass = false
				t.Notes = append(t.Notes,
					fmt.Sprintf("scale %d: %s closure verdict %v, search oracle says %v", scale, kind, got, want))
			}
		}
		gotS, _, _ := ix.CanShare(rights.Read, low, probe, nil, nil)
		check("can-share", gotS, analysis.CanShare(g, rights.Read, low, probe))
		gotK, _, _ := ix.CanKnow(low, probe, nil, nil)
		check("can-know", gotK, analysis.CanKnow(g, low, probe))

		ws := bestOf(5, 2000, func() { ix.CanShare(rights.Read, low, probe, nil, nil) })
		wk := bestOf(5, 2000, func() { ix.CanKnow(low, probe, nil, nil) })
		cold := timeIt(5, func() { analysis.CanShare(g, rights.Read, low, probe) })
		warmShare = append(warmShare, ws)
		warmKnow = append(warmKnow, wk)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(g.NumVertices()), fmt.Sprint(g.NumEdges()),
			ws.String(), wk.String(), cold.String(),
		})
	}
	flat := func(kind string, times []time.Duration) {
		first, last := times[0], times[len(times)-1]
		if last > 2*first {
			t.Pass = false
			t.Notes = append(t.Notes,
				fmt.Sprintf("warm %s grew %v -> %v (> 2x) across scales", kind, first, last))
		}
	}
	flat("can-share", warmShare)
	flat("can-know", warmKnow)
	t.Notes = append(t.Notes,
		"pass criterion: warm ns/op grows ≤ 2x while the graph grows ~64x, and closure verdicts match the search oracle")
	return t
}
