package experiments

import (
	"fmt"

	"takegrant/internal/analysis"
	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/relang"
	"takegrant/internal/restrict"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
	"takegrant/internal/wu"
)

func init() {
	register("E1", e1WuConspiracy)
	register("E2", e2Figure22)
	register("E3", e3Figure31)
	register("E4", e4LinearClassification)
	register("E5", e5MilitaryLattice)
	register("E6", e6Figure51)
	register("E7", e7Figure61)
	register("E15", e15ObjectClassification)
	register("E16", e16IslandKnowledge)
}

// e1WuConspiracy reproduces Figure 2.1's point: in Wu's de jure-only
// hierarchy two conspiring subjects invert the hierarchy, while the same
// workload in the paper's §4 construction is conspiracy-immune.
func e1WuConspiracy() Table {
	t := Table{
		ID:      "E1",
		Title:   "Figure 2.1 / Lemmas 2.1–2.2: conspiracy in Wu's model vs §4's",
		Claim:   "in Wu's model a lower subject obtains the top document; in the §4 model no conspiracy of any size can leak it",
		Columns: []string{"model", "levels", "low knows top doc", "breach derivation", "rwtg-levels"},
		Pass:    true,
	}
	for _, levels := range []int{2, 3, 4} {
		w, err := wu.New(levels, 2)
		if err != nil {
			t.Pass = false
			continue
		}
		breach, d, derr := w.Breachable()
		steps := "-"
		if d != nil {
			steps = fmt.Sprintf("%d steps", len(d))
		}
		rwtg := hierarchy.AnalyzeRWTG(w.G).NumLevels()
		t.Rows = append(t.Rows, []string{
			"wu[7]", fmt.Sprint(levels),
			expect(&t.Pass, breach && derr == nil, true),
			steps,
			fmt.Sprint(rwtg),
		})
		if rwtg != 1 {
			t.Pass = false
		}
		c, err := hierarchy.Linear(levels, 2)
		if err != nil {
			t.Pass = false
			continue
		}
		low := c.Members["L1"][0]
		top := c.Bulletin[fmt.Sprintf("L%d", levels)]
		knows := analysis.CanKnow(c.G, low, top)
		t.Rows = append(t.Rows, []string{
			"bishop §4", fmt.Sprint(levels),
			expect(&t.Pass, knows, false),
			"-",
			fmt.Sprint(hierarchy.AnalyzeRWTG(c.G).NumLevels()),
		})
	}
	t.Notes = append(t.Notes,
		"wu breach derivations are synthesized and replay-verified; rwtg-level count 1 means total collapse of the hierarchy")
	return t
}

// figure22 rebuilds the worked example of Figure 2.2.
func figure22() (*graph.Graph, map[string]graph.ID) {
	g := graph.New(nil)
	ids := map[string]graph.ID{
		"p": g.MustSubject("p"), "u": g.MustSubject("u"), "v": g.MustObject("v"),
		"w": g.MustSubject("w"), "x": g.MustObject("x"), "y": g.MustSubject("y"),
		"sp": g.MustSubject("sp"), "s": g.MustObject("s"), "q": g.MustObject("q"),
	}
	g.AddExplicit(ids["p"], ids["u"], rights.G)
	g.AddExplicit(ids["u"], ids["v"], rights.T)
	g.AddExplicit(ids["v"], ids["w"], rights.G)
	g.AddExplicit(ids["x"], ids["w"], rights.T)
	g.AddExplicit(ids["y"], ids["x"], rights.T)
	g.AddExplicit(ids["y"], ids["sp"], rights.T)
	g.AddExplicit(ids["sp"], ids["s"], rights.T)
	g.AddExplicit(ids["s"], ids["q"], rights.R)
	return g, ids
}

// e2Figure22 reproduces Figure 2.2: islands, bridges, spans, and the
// can•share decision they certify.
func e2Figure22() Table {
	t := Table{
		ID:      "E2",
		Title:   "Figure 2.2: islands, bridges, spans",
		Claim:   "islands {p,u},{w},{y,sp}; bridges u~w and w~y; terminal span sp→s; can•share(r,p,q) holds",
		Columns: []string{"structure", "expected", "found"},
		Pass:    true,
	}
	g, ids := figure22()
	islands := analysis.Islands(g)
	t.Rows = append(t.Rows, []string{"islands", "3",
		checkEq(&t.Pass, fmt.Sprint(len(islands)), "3")})
	t.Rows = append(t.Rows, []string{"island {p,u}", "yes",
		expect(&t.Pass, analysis.SameIsland(g, ids["p"], ids["u"]), true)})
	t.Rows = append(t.Rows, []string{"island {y,sp}", "yes",
		expect(&t.Pass, analysis.SameIsland(g, ids["y"], ids["sp"]), true)})
	_, buw := analysis.BridgeBetween(g, ids["u"], ids["w"])
	t.Rows = append(t.Rows, []string{"bridge u~w", "yes", expect(&t.Pass, buw, true)})
	_, bwy := analysis.BridgeBetween(g, ids["w"], ids["y"])
	t.Rows = append(t.Rows, []string{"bridge w~y", "yes", expect(&t.Pass, bwy, true)})
	span, sok := analysis.TerminallySpans(g, ids["sp"], ids["s"])
	word := "-"
	if sok {
		word = relang.WordOf(g.Universe(), span)
	}
	t.Rows = append(t.Rows, []string{"terminal span sp→s", "t>", checkEq(&t.Pass, word, "t>")})
	share := analysis.CanShare(g, rights.Read, ids["p"], ids["q"])
	t.Rows = append(t.Rows, []string{"can.share(r,p,q)", "yes", expect(&t.Pass, share, true)})
	d, err := analysis.SynthesizeShare(g, rights.Read, ids["p"], ids["q"])
	replayOK := err == nil
	if replayOK {
		clone := g.Clone()
		_, rerr := d.Replay(clone)
		replayOK = rerr == nil && clone.Explicit(ids["p"], ids["q"]).Has(rights.Read)
	}
	t.Rows = append(t.Rows, []string{"derivation replays", "yes", expect(&t.Pass, replayOK, true)})
	return t
}

// e3Figure31 reproduces Figure 3.1: associated words of rw-paths and
// admissibility per Theorem 3.1.
func e3Figure31() Table {
	t := Table{
		ID:      "E3",
		Title:   "Figure 3.1: rw-path words and admissibility",
		Claim:   "a path's associated word decides can•know•f: (r> ∪ w<)* with subject guards",
		Columns: []string{"path", "word", "admissible", "can.know.f"},
		Pass:    true,
	}
	type pathCase struct {
		name  string
		build func() (*graph.Graph, graph.ID, graph.ID)
		word  string
		want  bool
	}
	cases := []pathCase{
		{"s1 -r-> o <-w- s2", func() (*graph.Graph, graph.ID, graph.ID) {
			g := graph.New(nil)
			a := g.MustSubject("a")
			o := g.MustObject("o")
			b := g.MustSubject("b")
			g.AddExplicit(a, o, rights.R)
			g.AddExplicit(b, o, rights.W)
			return g, a, b
		}, "r> w<", true},
		{"o1 -r-> o2 (object reader)", func() (*graph.Graph, graph.ID, graph.ID) {
			g := graph.New(nil)
			a := g.MustObject("a")
			b := g.MustObject("b")
			g.AddExplicit(a, b, rights.R)
			return g, a, b
		}, "r>", false},
		{"s1 -r-> s2 -r-> o (spy chain)", func() (*graph.Graph, graph.ID, graph.ID) {
			g := graph.New(nil)
			a := g.MustSubject("a")
			b := g.MustSubject("b")
			o := g.MustObject("o")
			g.AddExplicit(a, b, rights.R)
			g.AddExplicit(b, o, rights.R)
			return g, a, o
		}, "r> r>", true},
		{"two consecutive objects", func() (*graph.Graph, graph.ID, graph.ID) {
			g := graph.New(nil)
			a := g.MustSubject("a")
			o1 := g.MustObject("o1")
			o2 := g.MustObject("o2")
			g.AddExplicit(a, o1, rights.R)
			g.AddExplicit(o1, o2, rights.R)
			return g, a, o2
		}, "r> r>", false},
	}
	for _, c := range cases {
		g, x, y := c.build()
		got := analysis.CanKnowF(g, x, y)
		t.Rows = append(t.Rows, []string{c.name, c.word,
			yesno(c.want), expect(&t.Pass, got, c.want)})
	}
	return t
}

// e4LinearClassification reproduces Figure 4.1 and Theorem 4.3: the full
// can•know•f matrix of a 4-level linear classification.
func e4LinearClassification() Table {
	t := Table{
		ID:      "E4",
		Title:   "Figure 4.1 / Theorem 4.3: linear classification flow matrix",
		Claim:   "can•know•f(li, lj) ⇔ i ≥ j; conspiracies change nothing (can•know agrees)",
		Columns: []string{"knower\\source", "L1", "L2", "L3", "L4"},
		Pass:    true,
	}
	c, err := hierarchy.Linear(4, 2)
	if err != nil {
		t.Pass = false
		return t
	}
	for i := 1; i <= 4; i++ {
		row := []string{fmt.Sprintf("L%d", i)}
		for j := 1; j <= 4; j++ {
			li := c.Members[fmt.Sprintf("L%d", i)][0]
			lj := c.Members[fmt.Sprintf("L%d", j)][0]
			f := analysis.CanKnowF(c.G, li, lj)
			k := analysis.CanKnow(c.G, li, lj)
			want := i >= j
			if f != want || k != want {
				t.Pass = false
			}
			row = append(row, yesno(f))
		}
		t.Rows = append(t.Rows, row)
	}
	if ok, _ := hierarchy.Secure(c.G); !ok {
		t.Pass = false
		t.Notes = append(t.Notes, "secure predicate failed")
	}
	return t
}

// e5MilitaryLattice reproduces Figure 4.2: the military classification
// lattice with incomparable categories.
func e5MilitaryLattice() Table {
	t := Table{
		ID:      "E5",
		Title:   "Figure 4.2 / Prop 4.4: military classification lattice",
		Claim:   "higher is a strict partial order; categories are incomparable; same-rank different-category subjects cannot communicate",
		Columns: []string{"property", "expected", "found"},
		Pass:    true,
	}
	c, err := hierarchy.Military(3, []string{"A", "B"}, 1)
	if err != nil {
		t.Pass = false
		return t
	}
	s := hierarchy.AnalyzeRW(c.G)
	t.Rows = append(t.Rows, []string{"partial order (Prop 4.4)", "yes",
		expect(&t.Pass, s.CheckPartialOrder() == nil, true)})
	a3 := c.Members["A3"][0]
	a1 := c.Members["A1"][0]
	b3 := c.Members["B3"][0]
	u := c.Members["U"][0]
	t.Rows = append(t.Rows, []string{"A3 > A1", "yes", expect(&t.Pass, s.Higher(a3, a1), true)})
	t.Rows = append(t.Rows, []string{"A3 ~ B3 comparable", "no",
		expect(&t.Pass, s.Comparable(s.LevelOf(a3), s.LevelOf(b3)), false)})
	t.Rows = append(t.Rows, []string{"all > U", "yes",
		expect(&t.Pass, s.Higher(a3, u) && s.Higher(b3, u) && s.Higher(a1, u), true)})
	t.Rows = append(t.Rows, []string{"A1 communicates with B1", "no",
		expect(&t.Pass, analysis.CanKnowF(c.G, a1, c.Members["B1"][0]), false)})
	t.Rows = append(t.Rows, []string{"cross-category can.know", "no",
		expect(&t.Pass, analysis.CanKnow(c.G, a3, c.Members["B1"][0]), false)})
	secOK, _ := hierarchy.Secure(c.G)
	t.Rows = append(t.Rows, []string{"secure", "yes", expect(&t.Pass, secOK, true)})
	return t
}

// e6Figure51 reproduces Figure 5.1 and Theorem 5.5: the restriction blocks
// the write-down but lets the execute right cross levels.
func e6Figure51() Table {
	t := Table{
		ID:      "E6",
		Title:   "Figure 5.1 / Theorem 5.5: the combined restriction",
		Claim:   "unrestricted rules leak (x takes w to y); restricted rules refuse w but pass e",
		Columns: []string{"action", "unrestricted", "restricted"},
		Pass:    true,
	}
	build := func() (*hierarchy.Classification, *hierarchy.Structure, graph.ID, graph.ID, graph.ID, rights.Right) {
		c, _ := hierarchy.Linear(2, 1)
		g := c.G
		x := c.Members["L2"][0]
		y := c.Bulletin["L1"]
		e := g.Universe().MustDeclare("e")
		v := g.MustObject("v")
		g.AddExplicit(x, v, rights.T)
		g.AddExplicit(v, y, rights.Of(e, rights.Write))
		return c, hierarchy.AnalyzeRW(g), x, y, v, e
	}
	// take w to y
	{
		c, s, x, y, v, _ := build()
		unres := restrict.NewGuarded(c.G.Clone(), restrict.Unrestricted{})
		uerr := unres.Apply(rules.Take(x, v, y, rights.W))
		guard := restrict.NewGuarded(c.G.Clone(), restrict.NewCombined(s))
		gerr := guard.Apply(rules.Take(x, v, y, rights.W))
		t.Rows = append(t.Rows, []string{"x takes (w to y)",
			expect(&t.Pass, uerr == nil, true) + " (breach)",
			expect(&t.Pass, gerr != nil, true) + " refused"})
	}
	// take e to y
	{
		c, s, x, y, v, e := build()
		unres := restrict.NewGuarded(c.G.Clone(), restrict.Unrestricted{})
		uerr := unres.Apply(rules.Take(x, v, y, rights.Of(e)))
		guard := restrict.NewGuarded(c.G.Clone(), restrict.NewCombined(s))
		gerr := guard.Apply(rules.Take(x, v, y, rights.Of(e)))
		t.Rows = append(t.Rows, []string{"x takes (e to y)",
			expect(&t.Pass, uerr == nil, true) + " allowed",
			expect(&t.Pass, gerr == nil, true) + " allowed"})
	}
	// static security of the figure's graph
	{
		c, _, _, _, _, _ := build()
		secOK, _ := hierarchy.Secure(c.G)
		t.Rows = append(t.Rows, []string{"graph statically secure", yesno(false),
			expect(&t.Pass, secOK, false)})
	}
	return t
}

// e7Figure61 reproduces Figure 6.1: a breach achievable with de jure rules
// alone, showing why restricting de facto rules cannot help.
func e7Figure61() Table {
	t := Table{
		ID:      "E7",
		Title:   "Figure 6.1: de jure rules alone breach security",
		Claim:   "restricting de facto rules is pointless — the take rule alone builds an explicit read-up edge",
		Columns: []string{"check", "expected", "found"},
		Pass:    true,
	}
	c, _ := hierarchy.Linear(2, 1)
	g := c.G
	low := c.Members["L1"][0]
	secret := c.Bulletin["L2"]
	mid := g.MustObject("mid")
	g.AddExplicit(low, mid, rights.T)
	g.AddExplicit(mid, secret, rights.R)
	s := hierarchy.AnalyzeRW(g)

	d, err := analysis.SynthesizeShare(g, rights.Read, low, secret)
	deJureOnly := err == nil && d.DeJureOnly()
	t.Rows = append(t.Rows, []string{"breach derivation exists", "yes",
		expect(&t.Pass, err == nil, true)})
	t.Rows = append(t.Rows, []string{"derivation is de jure only", "yes",
		expect(&t.Pass, deJureOnly, true)})
	guard := restrict.NewGuarded(g.Clone(), restrict.NewCombined(s))
	_, gerr := guard.Replay(d)
	t.Rows = append(t.Rows, []string{"combined restriction stops it", "yes",
		expect(&t.Pass, gerr != nil, true)})
	return t
}

// e15ObjectClassification reproduces Theorem 4.5: object levels and the
// impossibility of lower subjects knowing higher documents.
func e15ObjectClassification() Table {
	t := Table{
		ID:      "E15",
		Title:   "Theorem 4.5: document classification",
		Claim:   "an object sits at the lowest accessor level; no lower subject can know it however many subjects are corrupt",
		Columns: []string{"document", "level", "low can.know", "high can.know"},
		Pass:    true,
	}
	c, err := hierarchy.Linear(3, 2)
	if err != nil {
		t.Pass = false
		return t
	}
	g := c.G
	for i := 1; i <= 3; i++ {
		doc := g.MustObject(fmt.Sprintf("doc_L%d", i))
		for _, m := range c.Members[fmt.Sprintf("L%d", i)] {
			g.AddExplicit(m, doc, rights.RW)
		}
	}
	s := hierarchy.AnalyzeRW(g)
	low := c.Members["L1"][0]
	high := c.Members["L3"][0]
	for i := 1; i <= 3; i++ {
		doc, _ := g.Lookup(fmt.Sprintf("doc_L%d", i))
		lvl, ok := s.ObjectLevel(doc)
		wantLvl := s.LevelOf(c.Members[fmt.Sprintf("L%d", i)][0])
		if !ok || lvl != wantLvl {
			t.Pass = false
		}
		lowKnows := analysis.CanKnow(g, low, doc)
		highKnows := analysis.CanKnow(g, high, doc)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("doc_L%d", i),
			fmt.Sprintf("L%d", i),
			expect(&t.Pass, lowKnows, i == 1),
			expect(&t.Pass, highKnows, true),
		})
	}
	return t
}

// e16IslandKnowledge reproduces Lemma 3.3: within an island, everyone can
// know everyone.
func e16IslandKnowledge() Table {
	t := Table{
		ID:      "E16",
		Title:   "Lemma 3.3: knowledge within islands",
		Claim:   "x, y in one island ⇒ can•know(x,y) and can•know(y,x)",
		Columns: []string{"island wiring", "x knows y", "y knows x", "derivations replay"},
		Pass:    true,
	}
	wirings := []struct {
		name string
		set  rights.Set
		rev  bool
	}{
		{"x -t-> y", rights.T, false},
		{"x -g-> y", rights.G, false},
		{"x <-t- y", rights.T, true},
		{"x <-g- y", rights.G, true},
	}
	for _, wcase := range wirings {
		g := graph.New(nil)
		x := g.MustSubject("x")
		y := g.MustSubject("y")
		if wcase.rev {
			g.AddExplicit(y, x, wcase.set)
		} else {
			g.AddExplicit(x, y, wcase.set)
		}
		kxy := analysis.CanKnow(g, x, y)
		kyx := analysis.CanKnow(g, y, x)
		replays := true
		for _, pair := range [][2]graph.ID{{x, y}, {y, x}} {
			d, err := analysis.SynthesizeKnow(g, pair[0], pair[1])
			if err != nil {
				replays = false
				continue
			}
			clone := g.Clone()
			if _, err := d.Replay(clone); err != nil || !analysis.KnowsBase(clone, pair[0], pair[1]) {
				replays = false
			}
		}
		t.Rows = append(t.Rows, []string{wcase.name,
			expect(&t.Pass, kxy, true),
			expect(&t.Pass, kyx, true),
			expect(&t.Pass, replays, true)})
	}
	return t
}

func checkEq(pass *bool, got, want string) string {
	if got != want {
		*pass = false
	}
	return got
}
