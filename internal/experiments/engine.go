package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/rights"
)

func init() {
	register("E20", e20DerivationScaling)
	register("E21", e21ApplyThroughput)
}

// e20DerivationScaling compares full rw-level derivation by the flat
// CSR-backed path (hierarchy.AnalyzeRW, what the engine's rebuilds run)
// against the retained map-based reference across growing worlds. The
// speedup must come from the data layout alone — pooled scratch, interned
// label bits, array-indexed SCC state — so the experiment pins Workers: 1;
// CI machines may not have a second core to offer.
func e20DerivationScaling() Table {
	t := Table{
		ID:      "E20",
		Title:   "Hierarchy derivation: flat CSR path vs map-based reference",
		Claim:   "full rw-level derivation over the frozen snapshot beats the per-call map implementation, structures identical",
		Columns: []string{"vertices", "edges", "reference", "flat", "speedup"},
		Pass:    true,
	}
	var lastSpeedup float64
	for _, scale := range []int{4, 8, 16, 32} {
		w := ScalingWorld(4, scale, scale, 37)
		g := w.G()
		refT := timeIt(5, func() { hierarchy.AnalyzeRWReference(g) })
		var flat *hierarchy.Structure
		flatT := timeIt(5, func() {
			s, err := hierarchy.AnalyzeRWObs(g, hierarchy.Options{Workers: 1})
			if err != nil {
				panic(err)
			}
			flat = s
		})
		if !flat.EquivalentTo(hierarchy.AnalyzeRWReference(g)) {
			t.Pass = false
			t.Notes = append(t.Notes, fmt.Sprintf("scale %d: structures diverged", scale))
		}
		lastSpeedup = float64(refT) / float64(flatT)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(g.NumVertices()), fmt.Sprint(g.NumEdges()),
			refT.String(), flatT.String(), fmt.Sprintf("%.1fx", lastSpeedup),
		})
	}
	if lastSpeedup < 1.5 {
		t.Pass = false
	}
	t.Notes = append(t.Notes,
		"pass criterion: flat path ≥ 1.5x at the largest world and equivalent everywhere",
		"single worker: the gain here is data layout, not parallelism")
	return t
}

// engineMutations pre-generates a deterministic, monotone-heavy stream of
// mutations over g's live vertices: explicit/implicit right additions with
// a sprinkling of destructive severs (rate out of 100). The stream is a
// closure list so the identical sequence can replay against clones.
func engineMutations(g *graph.Graph, steps, destructiveRate int, seed int64) []func(*graph.Graph) {
	rng := rand.New(rand.NewSource(seed))
	vs := g.Vertices()
	muts := make([]func(*graph.Graph), 0, steps)
	for i := 0; i < steps; i++ {
		a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
		if a == b {
			continue
		}
		switch {
		case rng.Intn(100) < destructiveRate:
			muts = append(muts, func(g *graph.Graph) { g.RemoveExplicit(a, b, rights.RW) })
		case rng.Intn(4) == 0:
			set := rights.R
			if rng.Intn(2) == 0 {
				set = rights.W
			}
			muts = append(muts, func(g *graph.Graph) { g.AddImplicit(a, b, set) })
		default:
			set := rights.Set(1 + rng.Intn(15))
			muts = append(muts, func(g *graph.Graph) { g.AddExplicit(a, b, set) })
		}
	}
	return muts
}

// e21ApplyThroughput measures the write path the service runs per POST
// /apply: bring the rw-level structure up to date after one mutation. The
// baseline re-derives from scratch every step (the pre-engine behaviour);
// the engine patches monotone changes in place and only rebuilds after
// destructive ones. Both walk the identical mutation stream on clones of
// the same world and must land on equivalent structures.
func e21ApplyThroughput() Table {
	t := Table{
		ID:      "E21",
		Title:   "Apply throughput: incremental engine vs per-step recompute",
		Claim:   "maintaining rw-levels across a monotone-heavy mutation stream is much cheaper than re-deriving each step",
		Columns: []string{"steps", "destructive", "recompute", "incremental", "speedup"},
		Pass:    true,
	}
	w := ScalingWorld(3, 8, 8, 41)
	const steps = 200
	var lastSpeedup float64
	for _, destructiveRate := range []int{0, 5} {
		muts := engineMutations(w.G(), steps, destructiveRate, 43)

		// One untimed pass each would make every timed mutation a no-op, so
		// both sides run their stream exactly once, cold, on fresh clones.
		gFull := w.G().Clone()
		var fullStruct *hierarchy.Structure
		start := time.Now()
		for _, m := range muts {
			m(gFull)
			fullStruct = hierarchy.AnalyzeRWReference(gFull)
		}
		fullT := time.Since(start)

		gInc := w.G().Clone()
		e := hierarchy.NewEngine(gInc, 1)
		var incStruct *hierarchy.Structure
		start = time.Now()
		for _, m := range muts {
			m(gInc)
			incStruct = e.Rearm(nil)
		}
		incT := time.Since(start)

		if !incStruct.EquivalentTo(fullStruct) {
			t.Pass = false
			t.Notes = append(t.Notes, fmt.Sprintf("destructive %d%%: final structures diverged", destructiveRate))
		}
		lastSpeedup = float64(fullT) / float64(incT)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(steps), fmt.Sprintf("%d%%", destructiveRate),
			fullT.String(), incT.String(), fmt.Sprintf("%.1fx", lastSpeedup),
		})
		if lastSpeedup < 2 {
			t.Pass = false
		}
	}
	t.Notes = append(t.Notes,
		"pass criterion: engine ≥ 2x per stream and final structures equivalent",
		"durations are whole-stream totals (engine creation excluded, initial derivation included in neither)")
	return t
}
