package experiments

import (
	"takegrant/internal/analysis"
	"takegrant/internal/graph"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

func init() {
	register("E19", e19Revocation)
}

// e19Revocation exercises the remove rule and §6's observation that
// revocation cannot retract copies: once a right has been shared, revoking
// the original edge leaves every copy intact, and revoking the *enabling*
// structure before the share blocks it. can•share is monotone under added
// authority but not under removal — the experiment shows both directions.
func e19Revocation() Table {
	t := Table{
		ID:      "E19",
		Title:   "Extension (§6): revocation and private copies",
		Claim:   "revoking before the transfer blocks it; revoking after changes nothing — copies persist",
		Columns: []string{"scenario", "can.share before", "action", "can.share after", "x still holds r"},
		Pass:    true,
	}
	build := func() (*graph.Graph, graph.ID, graph.ID, graph.ID, graph.ID) {
		g := graph.New(nil)
		x := g.MustSubject("x")
		v := g.MustObject("v")
		s := g.MustSubject("s")
		y := g.MustObject("y")
		g.AddExplicit(x, v, rights.T)
		g.AddExplicit(v, s, rights.T)
		g.AddExplicit(s, y, rights.R)
		return g, x, v, s, y
	}

	// Scenario 1: revoke the take chain BEFORE x exercises it.
	{
		g, x, v, _, y := build()
		before := analysis.CanShare(g, rights.Read, x, y)
		if err := rules.Remove(x, v, rights.T).Apply(g); err != nil {
			t.Pass = false
		}
		after := analysis.CanShare(g, rights.Read, x, y)
		t.Rows = append(t.Rows, []string{
			"revoke t edge pre-transfer",
			expect(&t.Pass, before, true),
			"x removes (t to) v",
			expect(&t.Pass, after, false),
			"-",
		})
	}
	// Scenario 2: x first acquires the right, then the chain is revoked —
	// the copy persists (the §6 private-copy hazard).
	{
		g, x, v, s, y := build()
		d, err := analysis.SynthesizeShare(g, rights.Read, x, y)
		if err != nil {
			t.Pass = false
		} else if _, err := d.Replay(g); err != nil {
			t.Pass = false
		}
		rules.Remove(x, v, rights.T).Apply(g)
		// Even the owner revoking its own read leaves x's copy alone.
		rules.Remove(s, y, rights.R).Apply(g)
		holds := g.Explicit(x, y).Has(rights.Read)
		t.Rows = append(t.Rows, []string{
			"revoke everything post-transfer",
			"yes",
			"remove t chain and owner's r",
			expect(&t.Pass, analysis.CanShare(g, rights.Read, x, y), true), // x holds it: trivially shareable
			expect(&t.Pass, holds, true),
		})
	}
	// Scenario 3: revocation of the owner's edge before any transfer kills
	// the source entirely.
	{
		g, x, _, s, y := build()
		rules.Remove(s, y, rights.R).Apply(g)
		after := analysis.CanShare(g, rights.Read, x, y)
		t.Rows = append(t.Rows, []string{
			"owner self-revokes pre-transfer",
			"yes",
			"s removes (r to) y",
			expect(&t.Pass, after, false),
			"-",
		})
	}
	t.Notes = append(t.Notes,
		"the paper: \"anyone with access to the information could have made a private copy\" — raising classifications or revoking authority cannot call information back")
	return t
}
