package blp

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/restrict"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

func TestDominates(t *testing.T) {
	ts := Level{3, 0b01}  // top secret, category A
	s := Level{2, 0b01}   // secret, category A
	sb := Level{2, 0b10}  // secret, category B
	sab := Level{2, 0b11} // secret, categories A+B
	u := Level{0, 0}

	if !ts.Dominates(s) || s.Dominates(ts) {
		t.Error("authority order wrong")
	}
	if s.Dominates(sb) || sb.Dominates(s) {
		t.Error("disjoint categories comparable")
	}
	if !sab.Dominates(s) || !sab.Dominates(sb) {
		t.Error("category superset does not dominate")
	}
	for _, l := range []Level{ts, s, sb, sab} {
		if !l.Dominates(u) {
			t.Errorf("%v does not dominate unclassified", l)
		}
		if !l.Dominates(l) {
			t.Errorf("%v not reflexive", l)
		}
	}
	if s.Comparable(sb) || !s.Comparable(ts) {
		t.Error("Comparable wrong")
	}
}

func TestLatticeProperties(t *testing.T) {
	f := func(a1, c1, a2, c2 uint8) bool {
		a := Level{int(a1 % 4), uint64(c1)}
		b := Level{int(a2 % 4), uint64(c2)}
		j, m := a.Join(b), a.Meet(b)
		return j.Dominates(a) && j.Dominates(b) &&
			a.Dominates(m) && b.Dominates(m) &&
			(!a.Dominates(b) || (j == a && m == b)) &&
			(!b.Dominates(a) || (j == b && m == a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMonitorRules(t *testing.T) {
	m := NewMonitor()
	m.Classify("general", Level{3, 0b1})
	m.Classify("clerk", Level{1, 0b1})
	m.Classify("warplan", Level{3, 0b1})
	m.Classify("memo", Level{1, 0b1})

	for _, c := range []struct {
		op       string
		sub, obj string
		want     bool
	}{
		{"read", "general", "memo", true},      // read down
		{"read", "clerk", "warplan", false},    // no read up
		{"append", "clerk", "warplan", true},   // write up
		{"append", "general", "memo", false},   // no write down
		{"read", "general", "warplan", true},   // read level
		{"append", "general", "warplan", true}, // write level
	} {
		var got bool
		var err error
		if c.op == "read" {
			got, err = m.AllowRead(c.sub, c.obj)
		} else {
			got, err = m.AllowAppend(c.sub, c.obj)
		}
		if err != nil || got != c.want {
			t.Errorf("%s(%s,%s) = %v,%v want %v", c.op, c.sub, c.obj, got, err, c.want)
		}
	}
	if _, err := m.AllowRead("ghost", "memo"); err == nil {
		t.Error("unknown entity accepted")
	}
}

func TestLevelString(t *testing.T) {
	s := Level{2, 0b101}.String()
	if !strings.Contains(s, "C0") || !strings.Contains(s, "C2") || !strings.Contains(s, "2") {
		t.Errorf("String = %q", s)
	}
}

// TestSection6Equivalence is experiment E14: on a hierarchical graph, the
// paper's combined restriction and a BLP monitor with the matching
// classification agree on every take/grant decision between comparable
// levels.
func TestSection6Equivalence(t *testing.T) {
	c, err := hierarchy.Military(2, []string{"A", "B"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := c.G
	s := hierarchy.AnalyzeRW(g)

	// Classify every vertex in the monitor to mirror the builder's lattice.
	m := NewMonitor()
	lvl := func(name string) Level {
		switch {
		case name == "U":
			return Level{0, 0}
		case strings.HasPrefix(name, "A"):
			return Level{int(name[1] - '0'), 0b01}
		default:
			return Level{int(name[1] - '0'), 0b10}
		}
	}
	for lname, members := range c.Members {
		for _, v := range members {
			m.Classify(g.Name(v), lvl(lname))
		}
		m.Classify(g.Name(c.Bulletin[lname]), lvl(lname))
	}
	blpR := &Restriction{M: m, NameOf: func(v graph.ID) string { return g.Name(v) }}
	comb := restrict.NewCombined(s)

	// Every hypothetical take adding r or w between any pair of vertices.
	var apps []rules.Application
	vs := g.Vertices()
	helper := g.MustSubject("helper") // actor placeholder; decisions ignore it
	for _, src := range vs {
		for _, dst := range vs {
			if src == dst || src == helper || dst == helper {
				continue
			}
			apps = append(apps,
				rules.Application{Op: rules.OpTake, X: src, Y: helper, Z: dst, Rights: rights.R},
				rules.Application{Op: rules.OpTake, X: src, Y: helper, Z: dst, Rights: rights.W})
		}
	}
	comparable := func(a, b graph.ID) bool {
		la, lb := lvl0(m, g, a), lvl0(m, g, b)
		return la.Comparable(lb)
	}
	agree, incomparable, diffs := CompareDecisions(g, apps, blpR, comb, comparable)
	if len(diffs) != 0 {
		t.Errorf("%d disagreements on comparable levels, e.g. %+v", len(diffs), diffs[0])
	}
	if agree == 0 {
		t.Error("no decisions compared")
	}
	// The documented divergence: BLP additionally refuses flows between
	// incomparable categories.
	if incomparable == 0 {
		t.Error("expected incomparable-level divergences in a lattice")
	}
}

func lvl0(m *Monitor, g *graph.Graph, v graph.ID) Level {
	l, _ := m.LevelOf(g.Name(v))
	return l
}

func TestBLPRestrictionGuardsExecution(t *testing.T) {
	c, err := hierarchy.Linear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := c.G
	m := NewMonitor()
	m.Classify(g.Name(c.Members["L1"][0]), Level{1, 0})
	m.Classify(g.Name(c.Bulletin["L1"]), Level{1, 0})
	m.Classify(g.Name(c.Members["L2"][0]), Level{2, 0})
	m.Classify(g.Name(c.Bulletin["L2"]), Level{2, 0})
	blpR := &Restriction{M: m, NameOf: func(v graph.ID) string { return g.Name(v) }}
	low := c.Members["L1"][0]
	high := c.Members["L2"][0]
	g.AddExplicit(low, high, rights.T)
	guard := restrict.NewGuarded(g, blpR)
	if err := guard.Apply(rules.Take(low, high, c.Bulletin["L2"], rights.R)); err == nil {
		t.Error("BLP guard allowed read-up")
	}
	if err := guard.Apply(rules.Take(low, high, c.Bulletin["L2"], rights.W)); err != nil {
		t.Errorf("BLP guard refused write-up: %v", err)
	}
	// Created scratch inherits classification.
	if err := guard.Apply(rules.Create(high, "scratch", graph.Object, rights.RW)); err != nil {
		t.Fatal(err)
	}
	sc, _ := g.Lookup("scratch")
	if err := blpR.Allows(g, rules.Take(low, high, sc, rights.R)); err == nil {
		t.Error("scratch did not inherit creator's level")
	}
}

func TestRandomAgreementComparablePairs(t *testing.T) {
	// Property: on linear (totally ordered) hierarchies the two
	// restrictions agree on EVERY r/w decision.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		c, err := hierarchy.Linear(n, 1+rng.Intn(2))
		if err != nil {
			return false
		}
		g := c.G
		s := hierarchy.AnalyzeRW(g)
		m := NewMonitor()
		for i := 1; i <= n; i++ {
			name := c.Order[i-1]
			for _, v := range c.Members[name] {
				m.Classify(g.Name(v), Level{i, 0})
			}
			m.Classify(g.Name(c.Bulletin[name]), Level{i, 0})
		}
		blpR := &Restriction{M: m, NameOf: func(v graph.ID) string { return g.Name(v) }}
		comb := restrict.NewCombined(s)
		vs := g.Vertices()
		helper := g.MustSubject("helper")
		var apps []rules.Application
		for i := 0; i < 30; i++ {
			src := vs[rng.Intn(len(vs))]
			dst := vs[rng.Intn(len(vs))]
			if src == dst {
				continue
			}
			set := rights.R
			if rng.Intn(2) == 0 {
				set = rights.W
			}
			apps = append(apps, rules.Application{Op: rules.OpTake, X: src, Y: helper, Z: dst, Rights: set})
		}
		_, _, diffs := CompareDecisions(g, apps, blpR, comb,
			func(a, b graph.ID) bool { return true })
		return len(diffs) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
