// Package blp implements a small Bell–LaPadula reference monitor and the
// §6 correspondence with the paper's restriction:
//
//	"Then restriction (a) is equivalent to the refined simple security
//	 property, and restriction (b) is the no write down property."
//
// Bell–LaPadula classifies every entity with a security level — an
// authority rank plus a set of categories — ordered by dominance. The
// monitor grants read when the reader dominates the object (simple
// security: no read up) and append/write when the object dominates the
// writer (*-property: no write down). The Take-Grant model's write is not
// a viewing right, so it corresponds to BLP's append.
package blp

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Level is a Bell–LaPadula security level: an authority rank (0 =
// unclassified … 3 = top secret in the classic military instantiation)
// plus a category set (a bitmask over at most 64 compartments).
type Level struct {
	Authority  int
	Categories uint64
}

// Dominates reports whether a ≥ b in the BLP lattice: a's authority is at
// least b's and a's categories include b's.
func (a Level) Dominates(b Level) bool {
	return a.Authority >= b.Authority && a.Categories&b.Categories == b.Categories
}

// Comparable reports whether a and b are ordered either way.
func (a Level) Comparable(b Level) bool {
	return a.Dominates(b) || b.Dominates(a)
}

// Join returns the least upper bound of the two levels.
func (a Level) Join(b Level) Level {
	auth := a.Authority
	if b.Authority > auth {
		auth = b.Authority
	}
	return Level{Authority: auth, Categories: a.Categories | b.Categories}
}

// Meet returns the greatest lower bound of the two levels.
func (a Level) Meet(b Level) Level {
	auth := a.Authority
	if b.Authority < auth {
		auth = b.Authority
	}
	return Level{Authority: auth, Categories: a.Categories & b.Categories}
}

func (a Level) String() string {
	cats := make([]string, 0, bits.OnesCount64(a.Categories))
	for v := a.Categories; v != 0; {
		i := bits.TrailingZeros64(v)
		cats = append(cats, fmt.Sprintf("C%d", i))
		v &^= 1 << i
	}
	sort.Strings(cats)
	return fmt.Sprintf("(%d,{%s})", a.Authority, strings.Join(cats, ","))
}

// Monitor is a Bell–LaPadula reference monitor over named entities.
type Monitor struct {
	levels map[string]Level
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{levels: make(map[string]Level)}
}

// Classify assigns (or reassigns) an entity's level.
func (m *Monitor) Classify(name string, l Level) { m.levels[name] = l }

// LevelOf returns an entity's level.
func (m *Monitor) LevelOf(name string) (Level, bool) {
	l, ok := m.levels[name]
	return l, ok
}

// AllowRead implements the (refined) simple security property: subject may
// read object iff the subject's level dominates the object's.
func (m *Monitor) AllowRead(subject, object string) (bool, error) {
	s, o, err := m.pair(subject, object)
	if err != nil {
		return false, err
	}
	return s.Dominates(o), nil
}

// AllowAppend implements the *-property (no write down): subject may
// append to object iff the object's level dominates the subject's. This is
// Take-Grant write: placing information without viewing.
func (m *Monitor) AllowAppend(subject, object string) (bool, error) {
	s, o, err := m.pair(subject, object)
	if err != nil {
		return false, err
	}
	return o.Dominates(s), nil
}

func (m *Monitor) pair(a, b string) (Level, Level, error) {
	la, ok := m.levels[a]
	if !ok {
		return Level{}, Level{}, fmt.Errorf("blp: unknown entity %q", a)
	}
	lb, ok := m.levels[b]
	if !ok {
		return Level{}, Level{}, fmt.Errorf("blp: unknown entity %q", b)
	}
	return la, lb, nil
}
