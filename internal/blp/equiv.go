package blp

import (
	"fmt"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

// Restriction is a restrict.Restriction driven by a Bell–LaPadula monitor:
// a de jure rule may not add a read edge the simple security property
// forbids, nor a write edge the *-property forbids. It is the §6
// counterpart of the paper's combined restriction.
type Restriction struct {
	M *Monitor
	// NameOf maps graph vertices to monitor entity names.
	NameOf func(graph.ID) string
}

// Name implements restrict.Restriction.
func (r *Restriction) Name() string { return "bell-lapadula" }

// Allows implements restrict.Restriction.
func (r *Restriction) Allows(g *graph.Graph, app rules.Application) error {
	var src, dst graph.ID
	switch app.Op {
	case rules.OpTake:
		src, dst = app.X, app.Z
	case rules.OpGrant:
		src, dst = app.Y, app.Z
	default:
		return nil // create classifies via NoteCreate; remove is free
	}
	sName, dName := r.NameOf(src), r.NameOf(dst)
	if _, ok := r.M.LevelOf(sName); !ok {
		return nil // unclassified entities are unconstrained
	}
	if _, ok := r.M.LevelOf(dName); !ok {
		return nil
	}
	if app.Rights.Has(rights.Read) {
		ok, err := r.M.AllowRead(sName, dName)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("simple security forbids %s reading %s", sName, dName)
		}
	}
	if app.Rights.Has(rights.Write) {
		ok, err := r.M.AllowAppend(sName, dName)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("*-property forbids %s appending to %s", sName, dName)
		}
	}
	return nil
}

// NoteCreate implements restrict.Restriction: scratch inherits its
// creator's classification.
func (r *Restriction) NoteCreate(created, creator graph.ID) {
	if l, ok := r.M.LevelOf(r.NameOf(creator)); ok {
		r.M.Classify(r.NameOf(created), l)
	}
}

// Disagreement records a decision where the BLP monitor and a comparison
// restriction differ.
type Disagreement struct {
	App    rules.Application
	BLP    error
	Other  error
	Reason string
}

// CompareDecisions evaluates both restrictions on every given application
// and returns the disagreements. Per §6, the paper's combined restriction
// and the BLP monitor must agree whenever the two endpoints' levels are
// comparable; on incomparable levels BLP is strictly stricter (it denies,
// while the paper's "lower than" precondition never triggers).
func CompareDecisions(g *graph.Graph, apps []rules.Application,
	blpR *Restriction, other interface {
		Allows(*graph.Graph, rules.Application) error
	}, comparable func(a, b graph.ID) bool) (agree, incomparableOnly int, diffs []Disagreement) {
	for _, app := range apps {
		var src, dst graph.ID
		switch app.Op {
		case rules.OpTake:
			src, dst = app.X, app.Z
		case rules.OpGrant:
			src, dst = app.Y, app.Z
		default:
			continue
		}
		be := blpR.Allows(g, app)
		oe := other.Allows(g, app)
		if (be == nil) == (oe == nil) {
			agree++
			continue
		}
		if !comparable(src, dst) {
			incomparableOnly++
			continue
		}
		diffs = append(diffs, Disagreement{App: app, BLP: be, Other: oe,
			Reason: "comparable levels decided differently"})
	}
	return agree, incomparableOnly, diffs
}
