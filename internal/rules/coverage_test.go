package rules

import (
	"strings"
	"testing"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

func TestOpStringsAndKinds(t *testing.T) {
	names := map[Op]string{
		OpTake: "take", OpGrant: "grant", OpCreate: "create", OpRemove: "remove",
		OpPost: "post", OpPass: "pass", OpSpy: "spy", OpFind: "find",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%v.String() = %q", op, op.String())
		}
		if op.DeJure() == op.DeFacto() {
			t.Errorf("%v both/neither de jure and de facto", op)
		}
	}
	if Op(99).String() == "" || !strings.Contains(Op(99).String(), "99") {
		t.Errorf("unknown op string = %q", Op(99).String())
	}
}

func TestByNameRefsResolveInDeFactoRules(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	v := g.MustSubject("v")
	g.AddExplicit(v, x, rights.W) // v writes x
	// v creates m (r,w), then pass(x, v, m) with m by name, then
	// post(x, m, v) with m by name.
	d := Derivation{
		Create(v, "m", graph.Object, rights.RW),
		PassZRef(x, v, "m"),
		PostYRef(x, "m", v),
	}
	if _, err := d.Replay(g); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !g.Implicit(x, v).Has(rights.Read) {
		t.Error("by-name de facto chain did not exhibit the flow")
	}
}

func TestByNameUnresolved(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustSubject("y")
	app := TakeZRef(x, y, "ghost", rights.R)
	if err := app.Check(g); err == nil {
		t.Error("unresolved reference accepted")
	}
	if err := app.Apply(g); err == nil {
		t.Error("unresolved apply accepted")
	}
}

func TestFormatUnknownVertices(t *testing.T) {
	g := graph.New(nil)
	g.MustSubject("x")
	app := Take(graph.None, 5, 9, rights.R)
	text := app.Format(g)
	if !strings.Contains(text, "?") || !strings.Contains(text, "#5") {
		t.Errorf("format of invalid ids = %q", text)
	}
}

func TestCheckRejectsUnknownOp(t *testing.T) {
	g := graph.New(nil)
	g.MustSubject("x")
	app := Application{Op: Op(42), X: 0, Y: 0, Z: 0}
	if err := app.Check(g); err == nil {
		t.Error("unknown op checked")
	}
	if err := app.Apply(g); err == nil {
		t.Error("unknown op applied")
	}
}

func TestEnumerateGrantInstances(t *testing.T) {
	// x -g-> y and x -r,w-> z: grants of r and of w.
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustSubject("y")
	z := g.MustObject("z")
	g.AddExplicit(x, y, rights.G)
	g.AddExplicit(x, z, rights.RW)
	apps := Enumerate(g, &EnumerateOptions{DeJure: true})
	grants := 0
	for _, a := range apps {
		if a.Op == OpGrant {
			grants++
			if a.X != x || a.Y != y || a.Z != z {
				t.Errorf("grant roles wrong: %+v", a)
			}
		}
	}
	// grant r, grant w to z; plus grant g?? x→y g itself: z-role must
	// differ from y; x→y edge gives take/grant... only x→z carries rights
	// to push. Expect exactly 2.
	if grants != 2 {
		t.Errorf("grants = %d (%v)", grants, apps)
	}
	// Non-subject actors enumerate nothing.
	g2 := graph.New(nil)
	o1 := g2.MustObject("o1")
	o2 := g2.MustObject("o2")
	g2.AddExplicit(o1, o2, rights.TG)
	if apps := Enumerate(g2, &EnumerateOptions{DeJure: true, DeFacto: true, IncludeRemove: true}); len(apps) != 0 {
		t.Errorf("object-only graph enumerated %v", apps)
	}
}

func TestRemoveEmptySetNoop(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	g.AddExplicit(x, y, rights.R)
	if err := Remove(x, y, 0).Apply(g); err != nil {
		t.Errorf("empty remove errored: %v", err)
	}
	if g.Explicit(x, y) != rights.R {
		t.Error("empty remove changed the label")
	}
}

func TestRemoveInvalidTarget(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	if err := Remove(x, graph.ID(9), rights.R).Apply(g); err == nil {
		t.Error("remove to invalid target accepted")
	}
}
