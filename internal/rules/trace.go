package rules

import (
	"fmt"
	"strings"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// Trace replays a derivation on a clone of g and renders each step with
// the graph change it caused — the human-readable proof transcript for an
// ExplainShare / ExplainKnow result.
//
//  1. x takes (r to y) from v        + x→y explicit r
//  2. spy(a, b, c)                   + a→c implicit r
//
// Trace stops at (and reports) the first failing step.
func Trace(g *graph.Graph, d Derivation) (string, error) {
	clone := g.Clone()
	var b strings.Builder
	for i, app := range d {
		before := clone.Clone()
		if err := app.Apply(clone); err != nil {
			fmt.Fprintf(&b, "%2d. %s — FAILED: %v\n", i+1, app.Format(clone), err)
			return b.String(), fmt.Errorf("trace: step %d: %w", i+1, err)
		}
		fmt.Fprintf(&b, "%2d. %-44s %s\n", i+1, app.Format(clone), diffSummary(before, clone))
	}
	return b.String(), nil
}

// diffSummary renders the label changes between two graph states.
func diffSummary(before, after *graph.Graph) string {
	var parts []string
	u := after.Universe()
	// New vertices.
	for i := before.Cap(); i < after.Cap(); i++ {
		id := graph.ID(i)
		if after.Valid(id) {
			parts = append(parts, fmt.Sprintf("+%s %s", after.KindOf(id), after.Name(id)))
		}
	}
	for _, e := range after.Edges() {
		if gained := e.Explicit.Minus(safeExplicit(before, e.Src, e.Dst)); !gained.Empty() {
			parts = append(parts, fmt.Sprintf("+%s→%s %s",
				after.Name(e.Src), after.Name(e.Dst), gained.Format(u)))
		}
		if gained := e.Implicit.Minus(safeImplicit(before, e.Src, e.Dst)); !gained.Empty() {
			parts = append(parts, fmt.Sprintf("+%s⇢%s %s",
				after.Name(e.Src), after.Name(e.Dst), gained.Format(u)))
		}
	}
	for _, e := range before.Edges() {
		if lost := e.Explicit.Minus(safeExplicit(after, e.Src, e.Dst)); !lost.Empty() {
			parts = append(parts, fmt.Sprintf("-%s→%s %s",
				before.Name(e.Src), before.Name(e.Dst), lost.Format(u)))
		}
	}
	if len(parts) == 0 {
		return "(no change)"
	}
	return strings.Join(parts, "  ")
}

func safeExplicit(g *graph.Graph, src, dst graph.ID) rights.Set {
	if !g.Valid(src) || !g.Valid(dst) {
		return 0
	}
	return g.Explicit(src, dst)
}

func safeImplicit(g *graph.Graph, src, dst graph.ID) rights.Set {
	if !g.Valid(src) || !g.Valid(dst) {
		return 0
	}
	return g.Implicit(src, dst)
}
