package rules

import (
	"encoding/json"
	"fmt"
	"strings"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// Trace replays a derivation on a clone of g and renders each step with
// the graph change it caused — the human-readable proof transcript for an
// ExplainShare / ExplainKnow result.
//
//  1. x takes (r to y) from v        + x→y explicit r
//  2. spy(a, b, c)                   + a→c implicit r
//
// Trace stops at (and reports) the first failing step.
func Trace(g *graph.Graph, d Derivation) (string, error) {
	clone := g.Clone()
	var b strings.Builder
	for i, app := range d {
		before := clone.Clone()
		if err := app.Apply(clone); err != nil {
			fmt.Fprintf(&b, "%2d. %s — FAILED: %v\n", i+1, app.Format(clone), err)
			return b.String(), fmt.Errorf("trace: step %d: %w", i+1, err)
		}
		fmt.Fprintf(&b, "%2d. %-44s %s\n", i+1, app.Format(clone), diffSummary(before, clone))
	}
	return b.String(), nil
}

// EdgeDelta is one label change between two graph states, in vertex names.
type EdgeDelta struct {
	Src      string `json:"src"`
	Dst      string `json:"dst"`
	Rights   string `json:"rights"`
	Implicit bool   `json:"implicit,omitempty"`
}

// VertexDelta is one vertex minted by a create step.
type VertexDelta struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// StepDiff is the structured label change one application caused.
type StepDiff struct {
	Created []VertexDelta `json:"created,omitempty"`
	Added   []EdgeDelta   `json:"added,omitempty"`
	Removed []EdgeDelta   `json:"removed,omitempty"`
}

// diff computes the structured label changes between two graph states.
// Both explicit and implicit gains and losses are reported: de jure
// removes lose explicit labels, and a remove that empties an edge also
// drops any implicit label riding on it.
func diff(before, after *graph.Graph) StepDiff {
	var d StepDiff
	u := after.Universe()
	for i := before.Cap(); i < after.Cap(); i++ {
		id := graph.ID(i)
		if after.Valid(id) {
			d.Created = append(d.Created, VertexDelta{
				Name: after.Name(id), Kind: after.KindOf(id).String(),
			})
		}
	}
	for _, e := range after.Edges() {
		if gained := e.Explicit.Minus(safeExplicit(before, e.Src, e.Dst)); !gained.Empty() {
			d.Added = append(d.Added, EdgeDelta{
				Src: after.Name(e.Src), Dst: after.Name(e.Dst), Rights: gained.Format(u)})
		}
		if gained := e.Implicit.Minus(safeImplicit(before, e.Src, e.Dst)); !gained.Empty() {
			d.Added = append(d.Added, EdgeDelta{
				Src: after.Name(e.Src), Dst: after.Name(e.Dst), Rights: gained.Format(u), Implicit: true})
		}
	}
	for _, e := range before.Edges() {
		if lost := e.Explicit.Minus(safeExplicit(after, e.Src, e.Dst)); !lost.Empty() {
			d.Removed = append(d.Removed, EdgeDelta{
				Src: before.Name(e.Src), Dst: before.Name(e.Dst), Rights: lost.Format(u)})
		}
		if lost := e.Implicit.Minus(safeImplicit(after, e.Src, e.Dst)); !lost.Empty() {
			d.Removed = append(d.Removed, EdgeDelta{
				Src: before.Name(e.Src), Dst: before.Name(e.Dst), Rights: lost.Format(u), Implicit: true})
		}
	}
	return d
}

// diffSummary renders the label changes between two graph states. Explicit
// edges print with →, implicit with ⇢, losses with a leading -.
func diffSummary(before, after *graph.Graph) string {
	d := diff(before, after)
	var parts []string
	for _, v := range d.Created {
		parts = append(parts, fmt.Sprintf("+%s %s", v.Kind, v.Name))
	}
	arrow := func(e EdgeDelta) string {
		if e.Implicit {
			return "⇢"
		}
		return "→"
	}
	for _, e := range d.Added {
		parts = append(parts, fmt.Sprintf("+%s%s%s %s", e.Src, arrow(e), e.Dst, e.Rights))
	}
	for _, e := range d.Removed {
		parts = append(parts, fmt.Sprintf("-%s%s%s %s", e.Src, arrow(e), e.Dst, e.Rights))
	}
	if len(parts) == 0 {
		return "(no change)"
	}
	return strings.Join(parts, "  ")
}

// TraceStep is one derivation step in machine-readable form: the rule
// instance plus the structured diff it caused.
type TraceStep struct {
	Index int    `json:"index"` // 1-based position in the derivation
	Op    string `json:"op"`
	// Text is the same rendering Trace prints for the step.
	Text string `json:"text"`
	// X, Y, Z name the rule's role vertices ("" when the role is unused).
	X string `json:"x,omitempty"`
	Y string `json:"y,omitempty"`
	Z string `json:"z,omitempty"`
	// Rights is δ/α for the de jure rules ("" for de facto).
	Rights string   `json:"rights,omitempty"`
	Diff   StepDiff `json:"diff"`
}

// TraceSteps replays a derivation on a clone of g and returns each step
// with its structured diff — the machine-readable twin of Trace, serving
// JSON derivation traces. It stops at the first failing step, returning
// the steps completed so far alongside the error.
func TraceSteps(g *graph.Graph, d Derivation) ([]TraceStep, error) {
	clone := g.Clone()
	var out []TraceStep
	name := func(id graph.ID) string {
		if !clone.Valid(id) {
			return ""
		}
		return clone.Name(id)
	}
	u := g.Universe()
	for i, app := range d {
		before := clone.Clone()
		// Resolve role names before Apply so create's fresh vertex cannot
		// shift lookups; X/Y/Z are stable IDs on the pre-step graph.
		step := TraceStep{
			Index: i + 1,
			Op:    app.Op.String(),
			X:     name(app.X),
			Y:     name(app.Y),
			Z:     name(app.Z),
		}
		if !app.Rights.Empty() {
			step.Rights = app.Rights.Format(u)
		}
		if err := app.Apply(clone); err != nil {
			return out, fmt.Errorf("trace: step %d: %w", i+1, err)
		}
		step.Text = app.Format(clone)
		step.Diff = diff(before, clone)
		out = append(out, step)
	}
	return out, nil
}

// TraceJSON renders a derivation as a JSON array of TraceStep.
func TraceJSON(g *graph.Graph, d Derivation) ([]byte, error) {
	steps, err := TraceSteps(g, d)
	if err != nil {
		return nil, err
	}
	if steps == nil {
		steps = []TraceStep{}
	}
	return json.MarshalIndent(steps, "", "  ")
}

func safeExplicit(g *graph.Graph, src, dst graph.ID) rights.Set {
	if !g.Valid(src) || !g.Valid(dst) {
		return 0
	}
	return g.Explicit(src, dst)
}

func safeImplicit(g *graph.Graph, src, dst graph.ID) rights.Set {
	if !g.Valid(src) || !g.Valid(dst) {
		return 0
	}
	return g.Implicit(src, dst)
}
