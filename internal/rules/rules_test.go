package rules

import (
	"strings"
	"testing"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// paperTakeFixture: x -t-> y -αβ-> z as in the paper's take diagram.
func paperTakeFixture() (*graph.Graph, graph.ID, graph.ID, graph.ID) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	z := g.MustObject("z")
	g.AddExplicit(x, y, rights.T)
	g.AddExplicit(y, z, rights.RW)
	return g, x, y, z
}

func TestTakeRule(t *testing.T) {
	g, x, y, z := paperTakeFixture()
	a := Take(x, y, z, rights.R)
	if err := a.Apply(g); err != nil {
		t.Fatal(err)
	}
	if !g.Explicit(x, z).Has(rights.Read) {
		t.Error("take did not add x→z r")
	}
	// y→z label unchanged; x→y unchanged.
	if g.Explicit(y, z) != rights.RW || g.Explicit(x, y) != rights.T {
		t.Error("take altered other labels")
	}
}

func TestTakeSubsetOnly(t *testing.T) {
	g, x, y, z := paperTakeFixture()
	a := Take(x, y, z, rights.Of(rights.Grant)) // y→z has only r,w
	if err := a.Apply(g); err == nil {
		t.Error("take of right not present succeeded")
	}
	// δ = {r,w} ⊆ β works in one application.
	a = Take(x, y, z, rights.RW)
	if err := a.Apply(g); err != nil {
		t.Error(err)
	}
}

func TestTakeRequiresSubjectActor(t *testing.T) {
	g := graph.New(nil)
	x := g.MustObject("x")
	y := g.MustSubject("y")
	z := g.MustObject("z")
	g.AddExplicit(x, y, rights.T)
	g.AddExplicit(y, z, rights.R)
	if err := Take(x, y, z, rights.R).Apply(g); err == nil {
		t.Error("object actor allowed to take")
	}
}

func TestTakeRequiresExplicitT(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustSubject("y")
	z := g.MustObject("z")
	g.AddImplicit(x, y, rights.R) // implicit r, no explicit t
	g.AddExplicit(y, z, rights.R)
	if err := Take(x, y, z, rights.R).Apply(g); err == nil {
		t.Error("take allowed without explicit t edge")
	}
	// Implicit rights on y→z cannot be taken either.
	g2 := graph.New(nil)
	x2, y2, z2 := g2.MustSubject("x"), g2.MustSubject("y"), g2.MustObject("z")
	g2.AddExplicit(x2, y2, rights.T)
	g2.AddImplicit(y2, z2, rights.R)
	if err := Take(x2, y2, z2, rights.R).Apply(g2); err == nil {
		t.Error("take moved an implicit right")
	}
}

func TestGrantRule(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	z := g.MustObject("z")
	g.AddExplicit(x, y, rights.G)
	g.AddExplicit(x, z, rights.RW)
	if err := Grant(x, y, z, rights.W).Apply(g); err != nil {
		t.Fatal(err)
	}
	if !g.Explicit(y, z).Has(rights.Write) || g.Explicit(y, z).Has(rights.Read) {
		t.Errorf("grant result wrong: %v", g.Explicit(y, z))
	}
}

func TestGrantPreconditions(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	z := g.MustObject("z")
	g.AddExplicit(x, z, rights.R)
	if err := Grant(x, y, z, rights.R).Apply(g); err == nil {
		t.Error("grant without g edge succeeded")
	}
	g.AddExplicit(x, y, rights.T) // t, not g
	if err := Grant(x, y, z, rights.R).Apply(g); err == nil {
		t.Error("grant with only t edge succeeded")
	}
	g.AddExplicit(x, y, rights.G)
	if err := Grant(x, y, z, rights.W).Apply(g); err == nil {
		t.Error("grant of right not held succeeded")
	}
}

func TestDistinctnessRequired(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustSubject("y")
	g.AddExplicit(x, y, rights.Of(rights.Take, rights.Grant, rights.Read, rights.Write))
	for _, a := range []Application{
		Take(x, y, x, rights.R),
		Take(x, x, y, rights.R),
		Grant(x, y, y, rights.R),
		Remove(x, x, rights.R),
		Post(x, y, x),
		Spy(x, x, y),
	} {
		if err := a.Apply(g); err == nil {
			t.Errorf("%s with repeated vertices succeeded", a.Op)
		}
	}
}

func TestCreateRule(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	a := Create(x, "v", graph.Object, rights.TG)
	if err := a.Apply(g); err != nil {
		t.Fatal(err)
	}
	v, ok := g.Lookup("v")
	if !ok || !g.IsObject(v) {
		t.Fatal("created vertex wrong")
	}
	if g.Explicit(x, v) != rights.TG {
		t.Error("create edge label wrong")
	}
	// duplicate name
	if err := Create(x, "v", graph.Subject, 0).Apply(g); err == nil {
		t.Error("duplicate create name succeeded")
	}
	// subject creation
	b := Create(x, "s2", graph.Subject, rights.R)
	if err := b.Apply(g); err != nil {
		t.Error("subject create failed")
	} else if s2, ok := g.Lookup("s2"); !ok || !g.IsSubject(s2) {
		t.Error("created subject wrong")
	}
	// objects cannot create
	o := g.MustObject("obj")
	if err := Create(o, "w", graph.Object, 0).Apply(g); err == nil {
		t.Error("object actor allowed to create")
	}
}

func TestRemoveRule(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	g.AddExplicit(x, y, rights.RW)
	if err := Remove(x, y, rights.R).Apply(g); err != nil {
		t.Fatal(err)
	}
	if g.Explicit(x, y) != rights.W {
		t.Errorf("after remove: %v", g.Explicit(x, y))
	}
	// Removing a superset empties the edge.
	if err := Remove(x, y, rights.Of(rights.Write, rights.Take)).Apply(g); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Error("edge not deleted")
	}
}

func TestPostRule(t *testing.T) {
	// x -r-> y <-w- z, x and z subjects: implicit x→z r.
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	z := g.MustSubject("z")
	g.AddExplicit(x, y, rights.R)
	g.AddExplicit(z, y, rights.W)
	if err := Post(x, y, z).Apply(g); err != nil {
		t.Fatal(err)
	}
	if !g.Implicit(x, z).Has(rights.Read) {
		t.Error("post did not add implicit edge")
	}
	if !g.Explicit(x, z).Empty() {
		t.Error("post added explicit authority")
	}
}

func TestPostRequiresBothSubjects(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	z := g.MustObject("z") // writer is an object: cannot act
	g.AddExplicit(x, y, rights.R)
	g.AddExplicit(z, y, rights.W)
	if err := Post(x, y, z).Apply(g); err == nil {
		t.Error("post with object writer succeeded")
	}
}

func TestPassRule(t *testing.T) {
	// y -w-> x, y -r-> z with y subject: implicit x→z r; x,z may be objects.
	g := graph.New(nil)
	x := g.MustObject("x")
	y := g.MustSubject("y")
	z := g.MustObject("z")
	g.AddExplicit(y, x, rights.W)
	g.AddExplicit(y, z, rights.R)
	if err := Pass(x, y, z).Apply(g); err != nil {
		t.Fatal(err)
	}
	if !g.Implicit(x, z).Has(rights.Read) {
		t.Error("pass did not add implicit edge")
	}
}

func TestSpyRule(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustSubject("y")
	z := g.MustObject("z")
	g.AddExplicit(x, y, rights.R)
	g.AddExplicit(y, z, rights.R)
	if err := Spy(x, y, z).Apply(g); err != nil {
		t.Fatal(err)
	}
	if !g.Implicit(x, z).Has(rights.Read) {
		t.Error("spy did not add implicit edge")
	}
	// spy with object y fails
	g2 := graph.New(nil)
	x2, y2, z2 := g2.MustSubject("x"), g2.MustObject("y"), g2.MustObject("z")
	g2.AddExplicit(x2, y2, rights.R)
	g2.AddExplicit(y2, z2, rights.R)
	if err := Spy(x2, y2, z2).Apply(g2); err == nil {
		t.Error("spy through object succeeded")
	}
}

func TestFindRule(t *testing.T) {
	// y -w-> x, z -w-> y with y,z subjects: implicit x→z r.
	g := graph.New(nil)
	x := g.MustObject("x")
	y := g.MustSubject("y")
	z := g.MustSubject("z")
	g.AddExplicit(y, x, rights.W)
	g.AddExplicit(z, y, rights.W)
	if err := Find(x, y, z).Apply(g); err != nil {
		t.Fatal(err)
	}
	if !g.Implicit(x, z).Has(rights.Read) {
		t.Error("find did not add implicit edge")
	}
}

func TestDeFactoRulesUseImplicitEdges(t *testing.T) {
	// spy over an implicit first hop.
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustSubject("y")
	z := g.MustObject("z")
	g.AddImplicit(x, y, rights.R)
	g.AddExplicit(y, z, rights.R)
	if err := Spy(x, y, z).Apply(g); err != nil {
		t.Errorf("spy over implicit edge: %v", err)
	}
}

func TestFormat(t *testing.T) {
	g, x, y, z := paperTakeFixture()
	got := Take(x, y, z, rights.R).Format(g)
	if got != "x takes (r to z) from y" {
		t.Errorf("take format = %q", got)
	}
	got = Grant(x, y, z, rights.RW).Format(g)
	if got != "x grants (r,w to z) to y" {
		t.Errorf("grant format = %q", got)
	}
	got = Create(x, "v", graph.Subject, rights.TG).Format(g)
	if got != "x creates (t,g to) new subject v" {
		t.Errorf("create format = %q", got)
	}
	got = Post(x, y, z).Format(g)
	if got != "post(x, y, z)" {
		t.Errorf("post format = %q", got)
	}
}

func TestDerivationReplay(t *testing.T) {
	g, x, y, z := paperTakeFixture()
	d := Derivation{
		Take(x, y, z, rights.W),
		Create(x, "m", graph.Object, rights.Of(rights.Write)),
	}
	n, err := d.Replay(g)
	if err != nil || n != 2 {
		t.Fatalf("replay = %d,%v", n, err)
	}
	if !g.Explicit(x, z).Has(rights.Write) {
		t.Error("replay missed take")
	}
	// A failing step reports its index.
	bad := Derivation{Take(x, z, y, rights.R)} // x has no t to z... actually x→z has w only
	if _, err := bad.Replay(g); err == nil {
		t.Error("bad replay succeeded")
	}
}

func TestDeJureOnly(t *testing.T) {
	g, x, y, z := paperTakeFixture()
	_ = g
	if !(Derivation{Take(x, y, z, rights.R)}).DeJureOnly() {
		t.Error("take not de jure")
	}
	if (Derivation{Post(x, y, z)}).DeJureOnly() {
		t.Error("post counted as de jure")
	}
}

func TestLemma21ReverseTake(t *testing.T) {
	// holder -t-> receiver, holder -r-> target: receiver ends with r to target.
	g := graph.New(nil)
	holder := g.MustSubject("holder")
	receiver := g.MustSubject("receiver")
	target := g.MustObject("target")
	g.AddExplicit(holder, receiver, rights.T)
	g.AddExplicit(holder, target, rights.R)
	d := ReverseTake(NewNamer(g, "tmp"), holder, receiver, target, rights.R)
	if _, err := d.Replay(g); err != nil {
		t.Fatalf("lemma 2.1 replay: %v\n%s", err, d.Format(g))
	}
	if !g.Explicit(receiver, target).Has(rights.Read) {
		t.Error("receiver did not obtain the right")
	}
}

func TestLemma22ReverseGrant(t *testing.T) {
	// receiver -g-> holder, holder -r-> target: receiver ends with r to target.
	g := graph.New(nil)
	receiver := g.MustSubject("receiver")
	holder := g.MustSubject("holder")
	target := g.MustObject("target")
	g.AddExplicit(receiver, holder, rights.G)
	g.AddExplicit(holder, target, rights.R)
	d := ReverseGrant(NewNamer(g, "tmp"), receiver, holder, target, rights.R)
	if _, err := d.Replay(g); err != nil {
		t.Fatalf("lemma 2.2 replay: %v\n%s", err, d.Format(g))
	}
	if !g.Explicit(receiver, target).Has(rights.Read) {
		t.Error("receiver did not obtain the right")
	}
}

func TestLemmasRequireSubjectEndpoints(t *testing.T) {
	// With an object holder the derivation must fail to replay.
	g := graph.New(nil)
	holder := g.MustObject("holder")
	receiver := g.MustSubject("receiver")
	target := g.MustObject("target")
	g.AddExplicit(holder, receiver, rights.T)
	g.AddExplicit(holder, target, rights.R)
	d := ReverseTake(NewNamer(g, "tmp"), holder, receiver, target, rights.R)
	if _, err := d.Replay(g); err == nil {
		t.Error("lemma 2.1 replayed with object holder")
	}
}

func TestTakeChain(t *testing.T) {
	g := graph.New(nil)
	p := g.MustSubject("p")
	v1 := g.MustObject("v1")
	v2 := g.MustObject("v2")
	v3 := g.MustSubject("v3")
	g.AddExplicit(p, v1, rights.T)
	g.AddExplicit(v1, v2, rights.T)
	g.AddExplicit(v2, v3, rights.T)
	d := TakeChain([]graph.ID{p, v1, v2, v3})
	if len(d) != 2 {
		t.Fatalf("chain length = %d", len(d))
	}
	if _, err := d.Replay(g); err != nil {
		t.Fatal(err)
	}
	if !g.Explicit(p, v3).Has(rights.Take) {
		t.Error("chain did not deliver t to the end")
	}
	// Degenerate chains need no steps.
	if len(TakeChain([]graph.ID{p, v1})) != 0 || len(TakeChain([]graph.ID{p})) != 0 {
		t.Error("short chains produced steps")
	}
}

func TestNamerSkipsTakenNames(t *testing.T) {
	g := graph.New(nil)
	g.MustSubject("tmp1")
	nm := NewNamer(g, "tmp")
	if got := nm.Fresh(); got != "tmp2" {
		t.Errorf("Fresh = %q", got)
	}
	if got := nm.Fresh(); got != "tmp3" {
		t.Errorf("second Fresh = %q", got)
	}
}

func TestEnumerateDeJure(t *testing.T) {
	g, x, y, z := paperTakeFixture()
	_ = y
	_ = z
	apps := Enumerate(g, &EnumerateOptions{DeJure: true})
	// x can take r and w to z.
	if len(apps) != 2 {
		t.Fatalf("enumerated %d apps: %v", len(apps), apps)
	}
	for _, a := range apps {
		if a.Op != OpTake || a.X != x {
			t.Errorf("unexpected app %v", a.Format(g))
		}
		if err := a.Check(g); err != nil {
			t.Errorf("enumerated app fails check: %v", err)
		}
	}
}

func TestEnumerateSkipsNoops(t *testing.T) {
	g, x, y, z := paperTakeFixture()
	g.AddExplicit(x, z, rights.RW) // already has everything takeable
	_ = y
	apps := Enumerate(g, &EnumerateOptions{DeJure: true})
	if len(apps) != 0 {
		t.Errorf("no-op takes enumerated: %v", apps)
	}
}

func TestEnumerateDeFactoAndClosure(t *testing.T) {
	// x -r-> y <-w- z (subjects x,z): post applies; closure adds x~>z.
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	z := g.MustSubject("z")
	w := g.MustSubject("w")
	g.AddExplicit(x, y, rights.R)
	g.AddExplicit(z, y, rights.W)
	g.AddExplicit(z, w, rights.R) // then spy: x reads z, z reads w
	apps := Enumerate(g, &EnumerateOptions{DeFacto: true})
	if len(apps) == 0 {
		t.Fatal("no de facto apps found")
	}
	n := DeFactoClosure(g)
	if n < 2 {
		t.Errorf("closure added %d edges", n)
	}
	if !g.Implicit(x, z).Has(rights.Read) {
		t.Error("closure missed post x~>z")
	}
	if !g.Implicit(x, w).Has(rights.Read) {
		t.Error("closure missed spy x~>w (via implicit x~>z)")
	}
	// Idempotent.
	if DeFactoClosure(g) != 0 {
		t.Error("closure not idempotent")
	}
}

func TestEnumerateCreateBudget(t *testing.T) {
	g := graph.New(nil)
	g.MustSubject("x")
	apps := Enumerate(g, &EnumerateOptions{DeJure: true, CreateBudget: 2})
	creates := 0
	for _, a := range apps {
		if a.Op == OpCreate {
			creates++
			if err := a.Check(g); err != nil {
				t.Errorf("create check: %v", err)
			}
		}
	}
	if creates != 2 {
		t.Errorf("creates = %d", creates)
	}
}

func TestEnumerateRemove(t *testing.T) {
	g, x, y, _ := paperTakeFixture()
	_ = y
	apps := Enumerate(g, &EnumerateOptions{DeJure: true, IncludeRemove: true})
	removes := 0
	for _, a := range apps {
		if a.Op == OpRemove {
			removes++
			if a.X != x {
				t.Errorf("remove actor %v", a.X)
			}
		}
	}
	if removes != 1 { // only x→y t is removable by x (x→z doesn't exist yet)
		t.Errorf("removes = %d", removes)
	}
}

func TestFormatByNameBeforeCreateResolves(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustSubject("y")
	o := g.MustObject("o")
	g.AddExplicit(x, y, rights.T)
	g.AddExplicit(x, o, rights.R)
	d := ReverseTake(NewNamer(g, "n"), x, y, o, rights.R)
	if _, err := d.Replay(g); err != nil {
		t.Fatal(err)
	}
	text := d.Format(g)
	if !strings.Contains(text, "n1") {
		t.Errorf("derivation format lacks minted vertex name:\n%s", text)
	}
}
