package rules

import (
	"fmt"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// EnumerateOptions bounds rule-instance enumeration.
type EnumerateOptions struct {
	// DeJure / DeFacto include the respective rule families.
	DeJure  bool
	DeFacto bool
	// IncludeRemove includes remove instances (one per present right).
	IncludeRemove bool
	// CreateBudget is how many create instances (per subject, one subject
	// and one object creation carrying t,g rights) to include; the explorer
	// uses it to bound the infinite create space. 0 disables create.
	CreateBudget int
	// nameSeq mints fresh names for creates.
	nameSeq int
}

// Enumerate lists every applicable rule instance in g under the options.
// Take, grant and remove instances are emitted with singleton rights sets;
// since δ may be any subset, singleton applications compose to any δ, so
// the enumeration is complete for reachability purposes.
func Enumerate(g *graph.Graph, opts *EnumerateOptions) []Application {
	var out []Application
	subjects := g.Subjects()
	if opts.DeJure {
		for _, x := range subjects {
			// take: x -t-> y, y -δ-> z
			for _, xy := range g.Out(x) {
				if !xy.Explicit.Has(rights.Take) {
					continue
				}
				y := xy.Other
				for _, yz := range g.Out(y) {
					z := yz.Other
					if z == x || yz.Explicit.Empty() {
						continue
					}
					for _, r := range yz.Explicit.Rights() {
						if g.Explicit(x, z).Has(r) {
							continue // no-op
						}
						out = append(out, Take(x, y, z, rights.Of(r)))
					}
				}
			}
			// grant: x -g-> y, x -δ-> z
			for _, xy := range g.Out(x) {
				if !xy.Explicit.Has(rights.Grant) {
					continue
				}
				y := xy.Other
				for _, xz := range g.Out(x) {
					z := xz.Other
					if z == y || xz.Explicit.Empty() {
						continue
					}
					for _, r := range xz.Explicit.Rights() {
						if g.Explicit(y, z).Has(r) {
							continue
						}
						out = append(out, Grant(x, y, z, rights.Of(r)))
					}
				}
			}
			if opts.IncludeRemove {
				for _, xy := range g.Out(x) {
					for _, r := range xy.Explicit.Rights() {
						out = append(out, Remove(x, xy.Other, rights.Of(r)))
					}
				}
			}
			for i := 0; i < opts.CreateBudget; i++ {
				opts.nameSeq++
				out = append(out,
					Create(x, fmt.Sprintf("n%d_%d", x, opts.nameSeq), graph.Object, rights.Of(rights.Take, rights.Grant, rights.Read, rights.Write)))
			}
		}
	}
	if opts.DeFacto {
		out = append(out, enumerateDeFacto(g)...)
	}
	return out
}

func enumerateDeFacto(g *graph.Graph) []Application {
	var out []Application
	emit := func(a Application) {
		// Skip only when the flow is already recorded: an implicit edge,
		// or an explicit read a subject can exercise itself. An object's
		// explicit read edge carries no knowledge until a rule exhibits
		// the flow.
		if g.Implicit(a.X, a.Z).Has(rights.Read) {
			return
		}
		if g.Explicit(a.X, a.Z).Has(rights.Read) && g.IsSubject(a.X) {
			return
		}
		if a.Check(g) == nil {
			out = append(out, a)
		}
	}
	// post: x -r-> y <-w- z
	for _, y := range g.Vertices() {
		var readers, writers []graph.ID
		for _, h := range g.In(y) {
			if h.Combined().Has(rights.Read) && g.IsSubject(h.Other) {
				readers = append(readers, h.Other)
			}
			if h.Combined().Has(rights.Write) && g.IsSubject(h.Other) {
				writers = append(writers, h.Other)
			}
		}
		for _, x := range readers {
			for _, z := range writers {
				if x != z {
					emit(Post(x, y, z))
				}
			}
		}
	}
	// pass/spy/find keyed on the middle vertex y.
	for _, y := range g.Subjects() {
		outs := g.Out(y)
		for _, yx := range outs {
			for _, yz := range outs {
				if yx.Other == yz.Other {
					continue
				}
				// pass: y -w-> x, y -r-> z
				if yx.Combined().Has(rights.Write) && yz.Combined().Has(rights.Read) {
					emit(Pass(yx.Other, y, yz.Other))
				}
			}
		}
		// spy: x -r-> y -r-> z
		for _, xy := range g.In(y) {
			x := xy.Other
			if !xy.Combined().Has(rights.Read) || !g.IsSubject(x) {
				continue
			}
			for _, yz := range outs {
				if yz.Other != x && yz.Combined().Has(rights.Read) {
					emit(Spy(x, y, yz.Other))
				}
			}
		}
		// find: y -w-> x, z -w-> y
		for _, yx := range outs {
			x := yx.Other
			if !yx.Combined().Has(rights.Write) {
				continue
			}
			for _, zy := range g.In(y) {
				z := zy.Other
				if z != x && zy.Combined().Has(rights.Write) && g.IsSubject(z) {
					emit(Find(x, y, z))
				}
			}
		}
	}
	return out
}

// DeFactoSet selects which de facto rules a closure may use. The paper
// (§6) stresses that post/pass/spy/find are "merely one possible set";
// subsets model weaker information-flow semantics.
type DeFactoSet uint8

// The individual rule flags.
const (
	UsePost DeFactoSet = 1 << iota
	UsePass
	UseSpy
	UseFind
	// AllDeFacto is the paper's full rule set.
	AllDeFacto = UsePost | UsePass | UseSpy | UseFind
)

// Has reports whether the set includes the rule implementing op.
func (s DeFactoSet) Has(op Op) bool {
	switch op {
	case OpPost:
		return s&UsePost != 0
	case OpPass:
		return s&UsePass != 0
	case OpSpy:
		return s&UseSpy != 0
	case OpFind:
		return s&UseFind != 0
	default:
		return false
	}
}

// String names the enabled rules, e.g. "post+spy".
func (s DeFactoSet) String() string {
	if s == 0 {
		return "none"
	}
	names := ""
	for _, p := range []struct {
		f DeFactoSet
		n string
	}{{UsePost, "post"}, {UsePass, "pass"}, {UseSpy, "spy"}, {UseFind, "find"}} {
		if s&p.f != 0 {
			if names != "" {
				names += "+"
			}
			names += p.n
		}
	}
	return names
}

// DeFactoClosure repeatedly applies every applicable de facto rule until no
// rule adds a new implicit edge, materialising the full information-flow
// relation. It returns the number of implicit read edges added.
//
// The closure is a fixpoint: post/pass/spy/find consume combined labels, so
// each added implicit edge can enable further rules. Termination is
// guaranteed because only V² implicit read edges exist.
func DeFactoClosure(g *graph.Graph) int {
	return DeFactoClosureWith(g, AllDeFacto)
}

// DeFactoClosureWith is DeFactoClosure restricted to a rule subset.
func DeFactoClosureWith(g *graph.Graph, set DeFactoSet) int {
	added := 0
	for {
		apps := enumerateDeFacto(g)
		progressed := false
		for i := range apps {
			if !set.Has(apps[i].Op) {
				continue
			}
			// Re-check: an earlier application this round may have already
			// added the same implicit edge.
			if g.Implicit(apps[i].X, apps[i].Z).Has(rights.Read) {
				continue
			}
			if err := apps[i].Apply(g); err == nil {
				added++
				progressed = true
			}
		}
		if !progressed {
			return added
		}
	}
}
