package rules

import (
	"encoding/json"
	"strings"
	"testing"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

func TestTraceRendersSteps(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	v := g.MustObject("v")
	y := g.MustObject("y")
	g.AddExplicit(x, v, rights.T)
	g.AddExplicit(v, y, rights.R)
	d := Derivation{
		Take(x, v, y, rights.R),
		Create(x, "m", graph.Object, rights.RW),
		Remove(x, v, rights.T),
	}
	out, err := Trace(g, d)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"x takes (r to y) from v",
		"+x→y r",
		"+object m",
		"+x→m r,w",
		"-x→v t",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	// Original untouched.
	if g.Explicit(x, y).Has(rights.Read) {
		t.Error("trace mutated the input graph")
	}
}

func TestTraceImplicit(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	m := g.MustObject("m")
	z := g.MustSubject("z")
	g.AddExplicit(x, m, rights.R)
	g.AddExplicit(z, m, rights.W)
	out, err := Trace(g, Derivation{Post(x, m, z)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "+x⇢z r") {
		t.Errorf("implicit gain not rendered:\n%s", out)
	}
}

func TestDiffSummaryReportsImplicitLoss(t *testing.T) {
	// Regression: diffSummary used to report lost explicit edges but
	// silently drop lost implicit ones. Build before/after states directly
	// — losses of either label class must render.
	before := graph.New(nil)
	x := before.MustSubject("x")
	y := before.MustObject("y")
	before.AddExplicit(x, y, rights.T)
	if err := before.AddImplicit(x, y, rights.R); err != nil {
		t.Fatal(err)
	}
	after := before.Clone()
	if err := after.RemoveImplicit(x, y, rights.R); err != nil {
		t.Fatal(err)
	}
	if err := after.RemoveExplicit(x, y, rights.T); err != nil {
		t.Fatal(err)
	}
	out := diffSummary(before, after)
	if !strings.Contains(out, "-x→y t") {
		t.Errorf("explicit loss not rendered: %q", out)
	}
	if !strings.Contains(out, "-x⇢y r") {
		t.Errorf("implicit loss not rendered: %q", out)
	}
	// The structured diff marks the implicit loss too.
	d := diff(before, after)
	var sawImplicit bool
	for _, e := range d.Removed {
		if e.Implicit && e.Src == "x" && e.Dst == "y" && e.Rights == "r" {
			sawImplicit = true
		}
	}
	if !sawImplicit {
		t.Errorf("structured diff missing implicit loss: %+v", d.Removed)
	}
}

func TestTraceStepsJSON(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	v := g.MustObject("v")
	y := g.MustObject("y")
	g.AddExplicit(x, v, rights.T)
	g.AddExplicit(v, y, rights.R)
	d := Derivation{
		Take(x, v, y, rights.R),
		Create(x, "m", graph.Object, rights.RW),
	}
	steps, err := TraceSteps(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 {
		t.Fatalf("got %d steps", len(steps))
	}
	s0 := steps[0]
	if s0.Op != "take" || s0.X != "x" || s0.Y != "v" || s0.Z != "y" || s0.Rights != "r" {
		t.Errorf("step 1 roles wrong: %+v", s0)
	}
	if len(s0.Diff.Added) != 1 || s0.Diff.Added[0] != (EdgeDelta{Src: "x", Dst: "y", Rights: "r"}) {
		t.Errorf("step 1 diff wrong: %+v", s0.Diff)
	}
	s1 := steps[1]
	if len(s1.Diff.Created) != 1 || s1.Diff.Created[0] != (VertexDelta{Name: "m", Kind: "object"}) {
		t.Errorf("step 2 created wrong: %+v", s1.Diff)
	}
	// JSON form round-trips.
	data, err := TraceJSON(g, d)
	if err != nil {
		t.Fatal(err)
	}
	var back []TraceStep
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if len(back) != 2 || back[0].Op != "take" || back[1].Op != "create" {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	// The input graph stays untouched.
	if g.Explicit(x, y).Has(rights.Read) {
		t.Error("TraceSteps mutated the input graph")
	}
}

func TestTraceStepsStopsOnFailure(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	steps, err := TraceSteps(g, Derivation{Take(x, y, x, rights.R)})
	if err == nil {
		t.Fatal("bad step traced successfully")
	}
	if len(steps) != 0 {
		t.Errorf("failing step produced output: %+v", steps)
	}
}

func TestTraceStopsOnFailure(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	out, err := Trace(g, Derivation{Take(x, y, x, rights.R)})
	if err == nil {
		t.Fatal("bad step traced successfully")
	}
	if !strings.Contains(out, "FAILED") {
		t.Errorf("failure not rendered:\n%s", out)
	}
}

func TestDeFactoSetStrings(t *testing.T) {
	if AllDeFacto.String() != "post+pass+spy+find" {
		t.Errorf("all = %q", AllDeFacto.String())
	}
	if DeFactoSet(0).String() != "none" {
		t.Error("none wrong")
	}
	if (UseSpy | UseFind).String() != "spy+find" {
		t.Errorf("= %q", (UseSpy | UseFind).String())
	}
	if !AllDeFacto.Has(OpPost) || UseSpy.Has(OpPost) || UseSpy.Has(OpTake) {
		t.Error("Has wrong")
	}
}

func TestDeFactoClosureWithSubset(t *testing.T) {
	g := graph.New(nil)
	a := g.MustSubject("a")
	b := g.MustSubject("b")
	m := g.MustObject("m")
	g.AddExplicit(a, m, rights.R)
	g.AddExplicit(b, m, rights.W)
	// Only spy enabled: the post flow must not appear.
	clone := g.Clone()
	if n := DeFactoClosureWith(clone, UseSpy); n != 0 {
		t.Errorf("spy-only closure added %d", n)
	}
	clone = g.Clone()
	if n := DeFactoClosureWith(clone, UsePost); n != 1 {
		t.Errorf("post-only closure added %d", n)
	}
	if !clone.Implicit(a, b).Has(rights.Read) {
		t.Error("post flow missing")
	}
}
