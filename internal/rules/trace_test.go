package rules

import (
	"strings"
	"testing"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

func TestTraceRendersSteps(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	v := g.MustObject("v")
	y := g.MustObject("y")
	g.AddExplicit(x, v, rights.T)
	g.AddExplicit(v, y, rights.R)
	d := Derivation{
		Take(x, v, y, rights.R),
		Create(x, "m", graph.Object, rights.RW),
		Remove(x, v, rights.T),
	}
	out, err := Trace(g, d)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"x takes (r to y) from v",
		"+x→y r",
		"+object m",
		"+x→m r,w",
		"-x→v t",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	// Original untouched.
	if g.Explicit(x, y).Has(rights.Read) {
		t.Error("trace mutated the input graph")
	}
}

func TestTraceImplicit(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	m := g.MustObject("m")
	z := g.MustSubject("z")
	g.AddExplicit(x, m, rights.R)
	g.AddExplicit(z, m, rights.W)
	out, err := Trace(g, Derivation{Post(x, m, z)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "+x⇢z r") {
		t.Errorf("implicit gain not rendered:\n%s", out)
	}
}

func TestTraceStopsOnFailure(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	out, err := Trace(g, Derivation{Take(x, y, x, rights.R)})
	if err == nil {
		t.Fatal("bad step traced successfully")
	}
	if !strings.Contains(out, "FAILED") {
		t.Errorf("failure not rendered:\n%s", out)
	}
}

func TestDeFactoSetStrings(t *testing.T) {
	if AllDeFacto.String() != "post+pass+spy+find" {
		t.Errorf("all = %q", AllDeFacto.String())
	}
	if DeFactoSet(0).String() != "none" {
		t.Error("none wrong")
	}
	if (UseSpy | UseFind).String() != "spy+find" {
		t.Errorf("= %q", (UseSpy | UseFind).String())
	}
	if !AllDeFacto.Has(OpPost) || UseSpy.Has(OpPost) || UseSpy.Has(OpTake) {
		t.Error("Has wrong")
	}
}

func TestDeFactoClosureWithSubset(t *testing.T) {
	g := graph.New(nil)
	a := g.MustSubject("a")
	b := g.MustSubject("b")
	m := g.MustObject("m")
	g.AddExplicit(a, m, rights.R)
	g.AddExplicit(b, m, rights.W)
	// Only spy enabled: the post flow must not appear.
	clone := g.Clone()
	if n := DeFactoClosureWith(clone, UseSpy); n != 0 {
		t.Errorf("spy-only closure added %d", n)
	}
	clone = g.Clone()
	if n := DeFactoClosureWith(clone, UsePost); n != 1 {
		t.Errorf("post-only closure added %d", n)
	}
	if !clone.Implicit(a, b).Has(rights.Read) {
		t.Error("post flow missing")
	}
}
