// Package rules implements the graph-rewriting rules of the Take-Grant
// Protection Model.
//
// The de jure rules (take, grant, create, remove — §2 of the paper) transfer
// *authority*: they read and write only explicit edges, because explicit
// edges are the authorities recorded by the protection system.
//
// The de facto rules (post, pass, spy, find — §3) exhibit *information*
// flow: they add implicit read edges, may read implicit as well as explicit
// edges, and never alter explicit authority. Implicit edges cannot be
// manipulated by de jure rules.
//
// An Application is one concrete rule instance. Applications are checked
// against the paper's preconditions before mutating a graph, and sequences
// of applications (Derivation) are replayable, making them machine-checkable
// witnesses for the decision procedures in the analysis package.
package rules

import (
	"fmt"
	"strings"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// Op identifies a rewriting rule.
type Op uint8

const (
	// OpTake: x takes (δ to z) from y. Preconditions: x subject;
	// t ∈ explicit(x→y); δ ⊆ explicit(y→z); x, y, z distinct.
	// Effect: explicit(x→z) ∪= δ.
	OpTake Op = iota
	// OpGrant: x grants (δ to z) to y. Preconditions: x subject;
	// g ∈ explicit(x→y); δ ⊆ explicit(x→z); x, y, z distinct.
	// Effect: explicit(y→z) ∪= δ.
	OpGrant
	// OpCreate: x creates (δ to) new vertex y. Precondition: x subject.
	// Effect: new vertex y; explicit(x→y) = δ.
	OpCreate
	// OpRemove: x removes (α to) y. Preconditions: x subject; x ≠ y.
	// Effect: explicit(x→y) \= α (edge vanishes when both labels empty).
	OpRemove
	// OpPost: mailbox flow. Preconditions: x, z subjects, x,y,z distinct;
	// r ∈ combined(x→y); w ∈ combined(z→y).
	// Effect: implicit(x→z) ∪= {r} — x learns what z writes into y.
	OpPost
	// OpPass: courier flow. Preconditions: y subject, x,y,z distinct;
	// w ∈ combined(y→x); r ∈ combined(y→z).
	// Effect: implicit(x→z) ∪= {r} — y reads z and writes it into x.
	OpPass
	// OpSpy: transitive read. Preconditions: x, y subjects, distinct x,y,z;
	// r ∈ combined(x→y); r ∈ combined(y→z).
	// Effect: implicit(x→z) ∪= {r}.
	OpSpy
	// OpFind: relayed write. Preconditions: y, z subjects, distinct x,y,z;
	// w ∈ combined(y→x); w ∈ combined(z→y).
	// Effect: implicit(x→z) ∪= {r} — z pushes through y into x.
	OpFind
)

// NumOps is the number of rewriting rules; Op values are 0 ≤ op < NumOps,
// so NumOps-sized arrays index directly by Op (per-rule counters).
const NumOps = 8

var opNames = [NumOps]string{"take", "grant", "create", "remove", "post", "pass", "spy", "find"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// DeJure reports whether the rule transfers authority (take, grant, create,
// remove) rather than exhibiting information flow.
func (o Op) DeJure() bool { return o <= OpRemove }

// DeFacto reports whether the rule is an information-flow rule.
func (o Op) DeFacto() bool { return o > OpRemove }

// Application is one concrete rule instance. The X, Y, Z roles match the
// variable names in the paper's rule statements (see the Op constants).
type Application struct {
	Op      Op
	X, Y, Z graph.ID
	// Rights is δ for take/grant/create and α for remove; it is ignored by
	// the de facto rules, which always add {r}.
	Rights rights.Set
	// NewName and NewKind describe the vertex minted by create. Look the
	// vertex up by name after Apply to learn its ID.
	NewName string
	NewKind graph.Kind
}

// Take builds "x takes (δ to z) from y".
func Take(x, y, z graph.ID, delta rights.Set) Application {
	return Application{Op: OpTake, X: x, Y: y, Z: z, Rights: delta}
}

// Grant builds "x grants (δ to z) to y".
func Grant(x, y, z graph.ID, delta rights.Set) Application {
	return Application{Op: OpGrant, X: x, Y: y, Z: z, Rights: delta}
}

// Create builds "x creates (δ to) new {kind} vertex named name".
func Create(x graph.ID, name string, kind graph.Kind, delta rights.Set) Application {
	return Application{Op: OpCreate, X: x, NewName: name, NewKind: kind, Rights: delta}
}

// Remove builds "x removes (α to) y".
func Remove(x, y graph.ID, alpha rights.Set) Application {
	return Application{Op: OpRemove, X: x, Y: y, Rights: alpha}
}

// Post builds the post rule instance over (x, y, z).
func Post(x, y, z graph.ID) Application { return Application{Op: OpPost, X: x, Y: y, Z: z} }

// Pass builds the pass rule instance over (x, y, z).
func Pass(x, y, z graph.ID) Application { return Application{Op: OpPass, X: x, Y: y, Z: z} }

// Spy builds the spy rule instance over (x, y, z).
func Spy(x, y, z graph.ID) Application { return Application{Op: OpSpy, X: x, Y: y, Z: z} }

// Find builds the find rule instance over (x, y, z).
func Find(x, y, z graph.ID) Application { return Application{Op: OpFind, X: x, Y: y, Z: z} }

func distinct3(a, b, c graph.ID) bool { return a != b && a != c && b != c }

// resolved returns a copy of the application with any by-name parameters
// (graph.None placeholders referring to a vertex named NewName, used by
// derivations that mention vertices a preceding create will mint) replaced
// by the vertex's current ID.
func (a Application) resolved(g *graph.Graph) (Application, error) {
	if a.Op == OpCreate || a.NewName == "" {
		return a, nil
	}
	if a.X != graph.None && a.Y != graph.None && a.Z != graph.None {
		return a, nil
	}
	id, ok := g.Lookup(a.NewName)
	if !ok {
		return a, fmt.Errorf("%s: unresolved vertex %q", a.Op, a.NewName)
	}
	if a.X == graph.None {
		a.X = id
	}
	if a.Y == graph.None {
		a.Y = id
	}
	if a.Z == graph.None {
		a.Z = id
	}
	return a, nil
}

// Check verifies the rule's preconditions against g without mutating it.
func (a Application) Check(g *graph.Graph) error {
	r, err := a.resolved(g)
	if err != nil {
		return err
	}
	return r.check(g)
}

func (a *Application) check(g *graph.Graph) error {
	switch a.Op {
	case OpTake:
		if !distinct3(a.X, a.Y, a.Z) {
			return fmt.Errorf("take: vertices not distinct")
		}
		if !g.IsSubject(a.X) {
			return fmt.Errorf("take: actor %s is not a subject", safeName(g, a.X))
		}
		if !g.Explicit(a.X, a.Y).Has(rights.Take) {
			return fmt.Errorf("take: %s holds no t to %s", safeName(g, a.X), safeName(g, a.Y))
		}
		if a.Rights.Empty() || !g.Explicit(a.Y, a.Z).HasAll(a.Rights) {
			return fmt.Errorf("take: %s→%s lacks rights %s", safeName(g, a.Y), safeName(g, a.Z),
				a.Rights.Format(g.Universe()))
		}
	case OpGrant:
		if !distinct3(a.X, a.Y, a.Z) {
			return fmt.Errorf("grant: vertices not distinct")
		}
		if !g.IsSubject(a.X) {
			return fmt.Errorf("grant: actor %s is not a subject", safeName(g, a.X))
		}
		if !g.Explicit(a.X, a.Y).Has(rights.Grant) {
			return fmt.Errorf("grant: %s holds no g to %s", safeName(g, a.X), safeName(g, a.Y))
		}
		if a.Rights.Empty() || !g.Explicit(a.X, a.Z).HasAll(a.Rights) {
			return fmt.Errorf("grant: %s→%s lacks rights %s", safeName(g, a.X), safeName(g, a.Z),
				a.Rights.Format(g.Universe()))
		}
	case OpCreate:
		if !g.IsSubject(a.X) {
			return fmt.Errorf("create: actor %s is not a subject", safeName(g, a.X))
		}
		if _, taken := g.Lookup(a.NewName); taken {
			return fmt.Errorf("create: name %q already in use", a.NewName)
		}
	case OpRemove:
		if a.X == a.Y {
			return fmt.Errorf("remove: vertices not distinct")
		}
		if !g.IsSubject(a.X) {
			return fmt.Errorf("remove: actor %s is not a subject", safeName(g, a.X))
		}
		if !g.Valid(a.Y) {
			return fmt.Errorf("remove: invalid target")
		}
	case OpPost:
		if !distinct3(a.X, a.Y, a.Z) {
			return fmt.Errorf("post: vertices not distinct")
		}
		if !g.IsSubject(a.X) || !g.IsSubject(a.Z) {
			return fmt.Errorf("post: x and z must be subjects")
		}
		if !g.Combined(a.X, a.Y).Has(rights.Read) {
			return fmt.Errorf("post: %s cannot read %s", safeName(g, a.X), safeName(g, a.Y))
		}
		if !g.Combined(a.Z, a.Y).Has(rights.Write) {
			return fmt.Errorf("post: %s cannot write %s", safeName(g, a.Z), safeName(g, a.Y))
		}
	case OpPass:
		if !distinct3(a.X, a.Y, a.Z) {
			return fmt.Errorf("pass: vertices not distinct")
		}
		if !g.IsSubject(a.Y) {
			return fmt.Errorf("pass: y must be a subject")
		}
		if !g.Combined(a.Y, a.X).Has(rights.Write) {
			return fmt.Errorf("pass: %s cannot write %s", safeName(g, a.Y), safeName(g, a.X))
		}
		if !g.Combined(a.Y, a.Z).Has(rights.Read) {
			return fmt.Errorf("pass: %s cannot read %s", safeName(g, a.Y), safeName(g, a.Z))
		}
	case OpSpy:
		if !distinct3(a.X, a.Y, a.Z) {
			return fmt.Errorf("spy: vertices not distinct")
		}
		if !g.IsSubject(a.X) || !g.IsSubject(a.Y) {
			return fmt.Errorf("spy: x and y must be subjects")
		}
		if !g.Combined(a.X, a.Y).Has(rights.Read) {
			return fmt.Errorf("spy: %s cannot read %s", safeName(g, a.X), safeName(g, a.Y))
		}
		if !g.Combined(a.Y, a.Z).Has(rights.Read) {
			return fmt.Errorf("spy: %s cannot read %s", safeName(g, a.Y), safeName(g, a.Z))
		}
	case OpFind:
		if !distinct3(a.X, a.Y, a.Z) {
			return fmt.Errorf("find: vertices not distinct")
		}
		if !g.IsSubject(a.Y) || !g.IsSubject(a.Z) {
			return fmt.Errorf("find: y and z must be subjects")
		}
		if !g.Combined(a.Y, a.X).Has(rights.Write) {
			return fmt.Errorf("find: %s cannot write %s", safeName(g, a.Y), safeName(g, a.X))
		}
		if !g.Combined(a.Z, a.Y).Has(rights.Write) {
			return fmt.Errorf("find: %s cannot write %s", safeName(g, a.Z), safeName(g, a.Y))
		}
	default:
		return fmt.Errorf("rules: unknown op %v", a.Op)
	}
	return nil
}

// Apply checks the preconditions and performs the rewrite. For create, look
// the new vertex up by its NewName afterwards.
func (a Application) Apply(g *graph.Graph) error {
	r, err := a.resolved(g)
	if err != nil {
		return err
	}
	if err := r.check(g); err != nil {
		return err
	}
	switch r.Op {
	case OpTake:
		return g.AddExplicit(r.X, r.Z, r.Rights)
	case OpGrant:
		return g.AddExplicit(r.Y, r.Z, r.Rights)
	case OpCreate:
		var id graph.ID
		var err error
		if r.NewKind == graph.Subject {
			id, err = g.AddSubject(r.NewName)
		} else {
			id, err = g.AddObject(r.NewName)
		}
		if err != nil {
			return err
		}
		return g.AddExplicit(r.X, id, r.Rights)
	case OpRemove:
		return g.RemoveExplicit(r.X, r.Y, r.Rights)
	case OpPost, OpPass, OpSpy, OpFind:
		return g.AddImplicit(r.X, r.Z, rights.R)
	}
	return fmt.Errorf("rules: unknown op %v", r.Op)
}

// Format renders the application in the paper's reading, e.g.
// "p takes (r to f) from q" or "spy(p, q, f)".
func (a Application) Format(g *graph.Graph) string {
	if r, err := a.resolved(g); err == nil {
		a = r
	}
	u := g.Universe()
	switch a.Op {
	case OpTake:
		return fmt.Sprintf("%s takes (%s to %s) from %s",
			safeName(g, a.X), a.Rights.Format(u), safeName(g, a.Z), safeName(g, a.Y))
	case OpGrant:
		return fmt.Sprintf("%s grants (%s to %s) to %s",
			safeName(g, a.X), a.Rights.Format(u), safeName(g, a.Z), safeName(g, a.Y))
	case OpCreate:
		return fmt.Sprintf("%s creates (%s to) new %s %s",
			safeName(g, a.X), a.Rights.Format(u), a.NewKind, a.NewName)
	case OpRemove:
		return fmt.Sprintf("%s removes (%s to) %s",
			safeName(g, a.X), a.Rights.Format(u), safeName(g, a.Y))
	default:
		return fmt.Sprintf("%s(%s, %s, %s)", a.Op,
			safeName(g, a.X), safeName(g, a.Y), safeName(g, a.Z))
	}
}

func safeName(g *graph.Graph, id graph.ID) string {
	if g.Valid(id) {
		return g.Name(id)
	}
	if id == graph.None {
		return "?"
	}
	return fmt.Sprintf("#%d", id)
}

// Derivation is a replayable sequence of rule applications: the witness
// format produced by the analysis package's constructive decision
// procedures.
type Derivation []Application

// Replay applies each rule in order to g, stopping at the first failure.
// It returns the number of rules successfully applied.
func (d Derivation) Replay(g *graph.Graph) (int, error) {
	for i := range d {
		if err := d[i].Apply(g); err != nil {
			return i, fmt.Errorf("step %d (%s): %w", i+1, d[i].Format(g), err)
		}
	}
	return len(d), nil
}

// Format renders the derivation as a numbered listing. The graph supplies
// vertex names; pass the graph state from *before* replay — names of
// created vertices render from the application itself.
func (d Derivation) Format(g *graph.Graph) string {
	var b strings.Builder
	for i, a := range d {
		fmt.Fprintf(&b, "%2d. %s\n", i+1, a.Format(g))
	}
	return b.String()
}

// DeJureOnly reports whether every rule in the derivation is de jure.
func (d Derivation) DeJureOnly() bool {
	for _, a := range d {
		if !a.Op.DeJure() {
			return false
		}
	}
	return true
}
