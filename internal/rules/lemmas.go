package rules

import (
	"fmt"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// Namer mints vertex names that are fresh in a graph, for derivations that
// use the create rule.
type Namer struct {
	g      *graph.Graph
	prefix string
	n      int
}

// NewNamer returns a Namer producing names "<prefix>1", "<prefix>2", …
// skipping any name already present in g. Names minted are also reserved
// against each other, so a Namer stays correct while its derivation is only
// planned, not yet replayed.
func NewNamer(g *graph.Graph, prefix string) *Namer {
	return &Namer{g: g, prefix: prefix}
}

// Fresh returns the next unused name.
func (nm *Namer) Fresh() string {
	for {
		nm.n++
		name := fmt.Sprintf("%s%d", nm.prefix, nm.n)
		if _, taken := nm.g.Lookup(name); !taken {
			return name
		}
	}
}

// TakeChain returns the derivation by which chain[0] (a subject) acquires an
// explicit t edge to every later vertex of a take-path
// chain[0] -t-> chain[1] -t-> … -t-> chain[k]: for each i ≥ 2 the actor
// takes (t to chain[i]) from chain[i-1]. A chain of length ≤ 2 needs no
// steps (the direct edge already exists).
func TakeChain(chain []graph.ID) Derivation {
	var d Derivation
	for i := 2; i < len(chain); i++ {
		d = append(d, Take(chain[0], chain[i-1], chain[i], rights.T))
	}
	return d
}

// ReverseTake is the constructive content of the paper's Lemma 2.1: given
// subjects holder and receiver with an explicit edge holder -t-> receiver,
// and holder -α-> target explicit, the pair can conspire so that receiver
// obtains α to target:
//
//  1. receiver creates (t,g to) fresh vertex v
//  2. holder takes (g to v) from receiver
//  3. holder grants (α to target) to v
//  4. receiver takes (α to target) from v
//
// The returned derivation uses nm for the fresh vertex name.
func ReverseTake(nm *Namer, holder, receiver, target graph.ID, alpha rights.Set) Derivation {
	v := nm.Fresh()
	create := Create(receiver, v, graph.Object, rights.TG)
	return Derivation{
		create,
		TakeZRef(holder, receiver, v, rights.G),
		GrantYRef(holder, v, target, alpha),
		TakeYRef(receiver, v, target, alpha),
	}
}

// ReverseGrant is the constructive content of Lemma 2.2: given subjects
// receiver and holder with an explicit edge receiver -g-> holder, and
// holder -α-> target explicit, receiver obtains α to target:
//
//  1. receiver creates (t,g to) fresh vertex v
//  2. receiver grants (g to v) to holder
//  3. holder grants (α to target) to v
//  4. receiver takes (α to target) from v
func ReverseGrant(nm *Namer, receiver, holder, target graph.ID, alpha rights.Set) Derivation {
	v := nm.Fresh()
	create := Create(receiver, v, graph.Object, rights.TG)
	return Derivation{
		create,
		GrantZRef(receiver, holder, v, rights.G),
		GrantYRef(holder, v, target, alpha),
		TakeYRef(receiver, v, target, alpha),
	}
}

// The four constructors below build applications whose Y or Z role refers
// to a vertex that a preceding create in the same derivation will mint.
// Because the ID is unknown until replay, the parameter is the sentinel
// graph.None and Derivation replay resolves it by looking NewName up.

// TakeZRef builds "x takes (δ to <zName>) from y" with z resolved by name.
func TakeZRef(x, y graph.ID, zName string, delta rights.Set) Application {
	return Application{Op: OpTake, X: x, Y: y, Z: graph.None, NewName: zName, Rights: delta}
}

// TakeYRef builds "x takes (δ to z) from <yName>" with y resolved by name.
func TakeYRef(x graph.ID, yName string, z graph.ID, delta rights.Set) Application {
	return Application{Op: OpTake, X: x, Y: graph.None, Z: z, NewName: yName, Rights: delta}
}

// GrantYRef builds "x grants (δ to z) to <yName>" with y resolved by name.
func GrantYRef(x graph.ID, yName string, z graph.ID, delta rights.Set) Application {
	return Application{Op: OpGrant, X: x, Y: graph.None, Z: z, NewName: yName, Rights: delta}
}

// GrantZRef builds "x grants (δ to <zName>) to y" with z resolved by name.
func GrantZRef(x, y graph.ID, zName string, delta rights.Set) Application {
	return Application{Op: OpGrant, X: x, Y: y, Z: graph.None, NewName: zName, Rights: delta}
}

// PostYRef builds post(x, <yName>, z) with the mailbox resolved by name.
func PostYRef(x graph.ID, yName string, z graph.ID) Application {
	return Application{Op: OpPost, X: x, Y: graph.None, Z: z, NewName: yName}
}

// PassZRef builds pass(x, y, <zName>) with z resolved by name.
func PassZRef(x, y graph.ID, zName string) Application {
	return Application{Op: OpPass, X: x, Y: y, Z: graph.None, NewName: zName}
}
