// Package derived unifies the repo's incrementally maintained derived
// structures — the frozen CSR snapshot, the tg-island union-find, the
// revision-keyed query cache, the hierarchy engine's rw-level structure
// and the reach-closure rows — behind one registry with a single
// maintenance contract.
//
// Every one of those structures answers the same question ("is my cached
// derivation still the graph's derivation?") and before this package each
// answered it with its own hand-rolled wiring: the snapshot compares
// revisions, the island index nils itself from inside the mutation paths,
// the cache keys entries by (generation, revision), the engine installs
// itself as the graph's change recorder. The registry keeps those
// mechanisms — they are each the right mechanism for their structure —
// but routes the one change stream to all of them and gives each a
// uniform stats surface for /stats and /metrics.
//
// # Contract
//
// An Index receives every effective graph mutation as a graph.Change via
// Patch, called synchronously under the caller's mutation lock (the same
// contract as graph.SetRecorder: no readers are concurrent with a Patch).
// Patch returns true when the index absorbed the change — updated itself
// in place, deferred work it can replay later, or proved the change
// irrelevant — and false when it cannot stay consistent incrementally;
// the registry then calls Invalidate, after which the index must rebuild
// lazily on next use. Patch must never block on its own rebuild: lazy
// rebuild on the read path is what keeps the mutation path cheap.
package derived

import (
	"sort"
	"sync"
	"sync/atomic"

	"takegrant/internal/graph"
	"takegrant/internal/qcache"
)

// Index is one derived structure under registry maintenance.
type Index interface {
	// Name identifies the index in /stats and metrics ("snapshot",
	// "tg_islands", "qcache", "hierarchy", "reach_closure").
	Name() string
	// Patch folds one effective mutation into the index, returning false
	// when the index cannot absorb it (the registry then invalidates).
	// Called under the graph's mutation lock — never concurrent with
	// readers.
	Patch(c graph.Change) bool
	// Invalidate drops the derived state; the next use rebuilds from
	// scratch. Same locking contract as Patch.
	Invalidate()
}

// StatsReporter is optionally implemented by an Index to report its
// read-side counters. Patch and invalidate counts are kept by the
// registry itself — a reporter must not count registry dispatches, only
// its own hits (reads served from live derived state), misses (reads
// that found the state stale or absent) and rebuilds (from-scratch
// reconstructions).
type StatsReporter interface {
	IndexStats() (hits, misses, rebuilds uint64)
}

// Stats is one index's counter snapshot, as exposed in /stats and as the
// takegrant_index_* metric families.
type Stats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Patches     uint64 `json:"patches"`
	Invalidates uint64 `json:"invalidates"`
	Rebuilds    uint64 `json:"rebuilds"`
}

type cell struct {
	idx         Index
	patches     atomic.Uint64
	invalidates atomic.Uint64
}

// Registry fans the graph's change stream out to every registered index
// and aggregates their stats. Register all indexes, then Attach to the
// graph; Observe runs under the mutation lock, Stats may run concurrently
// with readers (it only touches atomics and reporter snapshots).
type Registry struct {
	mu    sync.RWMutex
	cells []*cell
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds an index to the dispatch list. Register before Attach (or
// otherwise before mutations flow); duplicate names are the caller's bug
// and simply shadow each other in Stats.
func (r *Registry) Register(idx Index) {
	r.mu.Lock()
	r.cells = append(r.cells, &cell{idx: idx})
	r.mu.Unlock()
}

// Attach installs the registry as g's change recorder, replacing any
// previously installed recorder (the hierarchy engine's self-installed
// one, in practice — the engine is then fed through the registry
// instead).
func (r *Registry) Attach(g *graph.Graph) { g.SetRecorder(r.Observe) }

// Observe dispatches one change: each index either patches itself or is
// invalidated. Called under the graph's mutation lock.
func (r *Registry) Observe(c graph.Change) {
	r.mu.RLock()
	cells := r.cells
	r.mu.RUnlock()
	for _, cl := range cells {
		if cl.idx.Patch(c) {
			cl.patches.Add(1)
		} else {
			cl.idx.Invalidate()
			cl.invalidates.Add(1)
		}
	}
}

// Stats snapshots every index's counters by name: registry-side patch and
// invalidate counts merged with the index's own hit/miss/rebuild counts
// when it reports them.
func (r *Registry) Stats() map[string]Stats {
	r.mu.RLock()
	cells := r.cells
	r.mu.RUnlock()
	out := make(map[string]Stats, len(cells))
	for _, cl := range cells {
		s := Stats{
			Patches:     cl.patches.Load(),
			Invalidates: cl.invalidates.Load(),
		}
		if sr, ok := cl.idx.(StatsReporter); ok {
			s.Hits, s.Misses, s.Rebuilds = sr.IndexStats()
		}
		out[cl.idx.Name()] = s
	}
	return out
}

// Names returns the registered index names, sorted — the stable iteration
// order for metrics exposition.
func (r *Registry) Names() []string {
	r.mu.RLock()
	cells := r.cells
	r.mu.RUnlock()
	names := make([]string, 0, len(cells))
	for _, cl := range cells {
		names = append(names, cl.idx.Name())
	}
	sort.Strings(names)
	return names
}

// snapshotIndex adapts graph.Snapshot: the frozen CSR view is keyed by
// revision, so every change is absorbed trivially — a stale snapshot is
// unreachable the moment the revision moves, and the next Graph.Snapshot
// call rebuilds. Hit/build counts come from the graph itself.
type snapshotIndex struct{ g *graph.Graph }

// Snapshot returns the registry adapter for g's frozen CSR snapshot.
func Snapshot(g *graph.Graph) Index { return snapshotIndex{g} }

func (snapshotIndex) Name() string            { return "snapshot" }
func (snapshotIndex) Patch(graph.Change) bool { return true }
func (snapshotIndex) Invalidate()             {}
func (s snapshotIndex) IndexStats() (h, m, b uint64) {
	hits, builds := s.g.SnapshotStats()
	return hits, builds, builds
}

// islandIndex adapts graph.TGIslands: the union-find is maintained
// physically inside the graph's mutation paths (they run before the
// change is recorded, and subject deletion needs edge detail a
// ChangeDestructive does not carry), so the adapter absorbs every change
// and surfaces the graph's own counters.
type islandIndex struct{ g *graph.Graph }

// Islands returns the registry adapter for g's tg-island union-find.
func Islands(g *graph.Graph) Index { return islandIndex{g} }

func (islandIndex) Name() string            { return "tg_islands" }
func (islandIndex) Patch(graph.Change) bool { return true }
func (i islandIndex) Invalidate()           { i.g.InvalidateIslandIndex() }
func (i islandIndex) IndexStats() (h, m, b uint64) {
	hits, builds, _, _ := i.g.IslandStats()
	return hits, builds, builds
}

// qcacheIndex adapts the query cache: entries are keyed by (generation,
// revision), so any change makes stale entries unreachable — absorbed by
// construction. Invalidate maps to a full reset (used when a caller swaps
// structures out from under the keys).
type qcacheIndex struct{ c *qcache.Cache }

// QCache returns the registry adapter for a query cache.
func QCache(c *qcache.Cache) Index { return qcacheIndex{c} }

func (qcacheIndex) Name() string            { return "qcache" }
func (qcacheIndex) Patch(graph.Change) bool { return true }
func (q qcacheIndex) Invalidate()           { q.c.Reset() }
func (q qcacheIndex) IndexStats() (h, m, b uint64) {
	s := q.c.Stats()
	return s.Hits, s.Misses, s.Resets
}
