package derived

import (
	"testing"

	"takegrant/internal/graph"
	"takegrant/internal/qcache"
	"takegrant/internal/rights"
)

// fakeIndex records dispatches and refuses changes by kind.
type fakeIndex struct {
	name        string
	refuse      map[graph.ChangeKind]bool
	patched     []graph.Change
	invalidated int
	hits        uint64
}

func (f *fakeIndex) Name() string { return f.name }
func (f *fakeIndex) Patch(c graph.Change) bool {
	if f.refuse[c.Kind] {
		return false
	}
	f.patched = append(f.patched, c)
	return true
}
func (f *fakeIndex) Invalidate() { f.invalidated++ }
func (f *fakeIndex) IndexStats() (hits, misses, rebuilds uint64) {
	return f.hits, 0, 0
}

func TestRegistryDispatch(t *testing.T) {
	r := NewRegistry()
	absorb := &fakeIndex{name: "absorb"}
	fragile := &fakeIndex{name: "fragile", refuse: map[graph.ChangeKind]bool{graph.ChangeDestructive: true}}
	r.Register(absorb)
	r.Register(fragile)

	r.Observe(graph.Change{Kind: graph.ChangeAddVertex, Src: 0, Dst: graph.None})
	r.Observe(graph.Change{Kind: graph.ChangeDestructive})

	if len(absorb.patched) != 2 || absorb.invalidated != 0 {
		t.Fatalf("absorb: %d patches, %d invalidates; want 2, 0", len(absorb.patched), absorb.invalidated)
	}
	if len(fragile.patched) != 1 || fragile.invalidated != 1 {
		t.Fatalf("fragile: %d patches, %d invalidates; want 1, 1", len(fragile.patched), fragile.invalidated)
	}

	stats := r.Stats()
	if s := stats["absorb"]; s.Patches != 2 || s.Invalidates != 0 {
		t.Fatalf("absorb stats = %+v; want 2 patches, 0 invalidates", s)
	}
	if s := stats["fragile"]; s.Patches != 1 || s.Invalidates != 1 {
		t.Fatalf("fragile stats = %+v; want 1 patch, 1 invalidate", s)
	}
}

func TestRegistryStatsMergeReporter(t *testing.T) {
	r := NewRegistry()
	f := &fakeIndex{name: "rep", hits: 7}
	r.Register(f)
	r.Observe(graph.Change{Kind: graph.ChangeAddVertex})
	s := r.Stats()["rep"]
	if s.Hits != 7 || s.Patches != 1 {
		t.Fatalf("merged stats = %+v; want reporter hits 7 + registry patch 1", s)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Register(&fakeIndex{name: "zeta"})
	r.Register(&fakeIndex{name: "alpha"})
	names := r.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("Names() = %v; want sorted [alpha zeta]", names)
	}
}

// TestRegistryAttachFeedsChangeStream wires a registry to a live graph and
// checks mutations flow through: effective mutations dispatch, no-op
// mutations (adding rights already present) do not.
func TestRegistryAttachFeedsChangeStream(t *testing.T) {
	g := graph.New(nil)
	r := NewRegistry()
	f := &fakeIndex{name: "probe"}
	r.Register(f)
	r.Attach(g)

	a := g.MustSubject("a")
	b := g.MustSubject("b")
	if err := g.AddExplicit(a, b, rights.TG); err != nil {
		t.Fatal(err)
	}
	n := len(f.patched)
	if n < 3 { // two vertex adds + one label add
		t.Fatalf("saw %d changes; want at least 3", n)
	}
	// Re-adding the same rights is effective-no-op: revision moves, but no
	// change is recorded — index validity must ride the change stream.
	if err := g.AddExplicit(a, b, rights.TG); err != nil {
		t.Fatal(err)
	}
	if len(f.patched) != n {
		t.Fatalf("no-op mutation dispatched a change: %d -> %d", n, len(f.patched))
	}
	if err := g.DeleteVertex(b); err != nil {
		t.Fatal(err)
	}
	last := f.patched[len(f.patched)-1]
	if last.Kind != graph.ChangeDestructive {
		t.Fatalf("vertex deletion dispatched %v; want destructive", last.Kind)
	}
}

// TestBuiltinAdapters exercises the snapshot, island and qcache adapters
// against live structures: every change is absorbed, stats surface the
// underlying counters.
func TestBuiltinAdapters(t *testing.T) {
	g := graph.New(nil)
	c := qcache.New(4)
	r := NewRegistry()
	r.Register(Snapshot(g))
	r.Register(Islands(g))
	r.Register(QCache(c))
	r.Attach(g)

	a := g.MustSubject("a")
	b := g.MustSubject("b")
	if err := g.AddExplicit(a, b, rights.TG); err != nil {
		t.Fatal(err)
	}
	g.Snapshot()
	g.Snapshot() // second call at same revision: a hit
	g.TGIslands()
	g.TGIslands()
	c.Put(qcache.Key{Kind: "k"}, 1)
	if _, ok := c.Get(qcache.Key{Kind: "k"}); !ok {
		t.Fatal("qcache get missed a just-put key")
	}

	stats := r.Stats()
	if s := stats["snapshot"]; s.Rebuilds == 0 || s.Hits == 0 {
		t.Fatalf("snapshot stats = %+v; want builds and hits", s)
	}
	if s := stats["tg_islands"]; s.Rebuilds == 0 || s.Hits == 0 {
		t.Fatalf("tg_islands stats = %+v; want builds and hits", s)
	}
	if s := stats["qcache"]; s.Hits != 1 {
		t.Fatalf("qcache stats = %+v; want 1 hit", s)
	}
	// Every change so far was absorbed by all three adapters.
	for name, s := range stats {
		if s.Invalidates != 0 {
			t.Fatalf("%s: unexpected registry invalidate: %+v", name, s)
		}
	}

	// Destructive change: adapters still absorb (their structures key by
	// revision or self-invalidate inside the graph).
	if err := g.DeleteVertex(b); err != nil {
		t.Fatal(err)
	}
	if s := r.Stats()["tg_islands"]; s.Invalidates != 0 {
		t.Fatalf("island adapter reported a registry invalidate: %+v", s)
	}
	// QCache Invalidate maps to Reset and counts as a rebuild.
	QCache(c).Invalidate()
	if s := r.Stats()["qcache"]; s.Rebuilds != 1 {
		t.Fatalf("qcache stats after reset = %+v; want 1 rebuild", s)
	}
}
